// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI). Each benchmark runs one experiment end to end at a reduced scale
// (benchmarks measure the harness; `cmd/tasterbench` prints the full
// tables). b.ReportMetric exposes the experiment's headline number so
// `go test -bench` output doubles as a results summary.
package taster_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/tasterdb/taster/internal/exec"
	"github.com/tasterdb/taster/internal/experiments"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

// benchCfg keeps the full pipeline (3 datasets × 4-6 systems × N queries)
// fast enough for -bench=. runs while preserving the paper's shapes.
var benchCfg = experiments.Config{SF: 0.004, Queries: 30, Seed: 42}

// benchTable lazily builds the grouped-aggregate benchmark input: 2M rows,
// 64 groups, two numeric measures.
var benchTable = sync.OnceValue(func() *storage.Table {
	const rows = 2_000_000
	b := storage.NewBuilder("bench", storage.Schema{
		{Name: "bench.grp", Typ: storage.Int64},
		{Name: "bench.a", Typ: storage.Float64},
		{Name: "bench.b", Typ: storage.Float64},
	})
	for i := 0; i < rows; i++ {
		b.Int(0, int64(i*2654435761%64))
		b.Float(1, float64(i%10000))
		b.Float(2, float64(i%997))
	}
	return b.Build(8)
})

func benchAggPlan() *plan.Aggregate {
	return &plan.Aggregate{
		Child:   &plan.Scan{Table: benchTable()},
		GroupBy: []string{"bench.grp"},
		Aggs: []plan.AggSpec{
			{Kind: stats.Count},
			{Kind: stats.Sum, Col: "bench.a"},
			{Kind: stats.Avg, Col: "bench.b"},
		},
	}
}

func runGroupedAgg(b *testing.B, workers int) {
	b.Helper()
	node := benchAggPlan() // forces the one-time table build
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := exec.NewContext(0.95)
		ctx.Workers = workers
		op, err := exec.Compile(node, 1, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Run(op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupedAggScanSequential is the 1-worker baseline of the
// morsel-driven executor (same morsel decomposition, no pool parallelism).
func BenchmarkGroupedAggScanSequential(b *testing.B) { runGroupedAgg(b, 1) }

// BenchmarkGroupedAggScanParallel runs the same grouped-aggregate scan with
// one worker per CPU.
func BenchmarkGroupedAggScanParallel(b *testing.B) { runGroupedAgg(b, runtime.NumCPU()) }

// BenchmarkGroupedAggScanSpeedup measures both paths back to back and
// reports the parallel speedup directly (≈ NumCPU-bound; ~1.0 on one core).
func BenchmarkGroupedAggScanSpeedup(b *testing.B) {
	node := benchAggPlan() // forces the one-time table build
	b.ResetTimer()
	run := func(workers int) time.Duration {
		start := time.Now()
		ctx := exec.NewContext(0.95)
		ctx.Workers = workers
		op, err := exec.Compile(node, 1, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Run(op); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		seq += run(1)
		par += run(runtime.NumCPU())
	}
	b.ReportMetric(float64(seq)/float64(par), "parallel-speedup-x")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// benchJoinTables lazily builds the grouped-join benchmark inputs: a 1M-row
// fact table joining a 40k-row dimension, grouped on a dimension attribute —
// the TPC-H/TPC-DS shape the parallel join executor targets.
var benchJoinTables = sync.OnceValues(func() (*storage.Table, *storage.Table) {
	const factRows, dimRows = 1_000_000, 40_000
	f := storage.NewBuilder("fact", storage.Schema{
		{Name: "fact.key", Typ: storage.Int64},
		{Name: "fact.amount", Typ: storage.Float64},
	})
	for i := 0; i < factRows; i++ {
		f.Int(0, int64(i*2654435761%dimRows))
		f.Float(1, float64(i%10000))
	}
	d := storage.NewBuilder("dim", storage.Schema{
		{Name: "dim.key", Typ: storage.Int64},
		{Name: "dim.cat", Typ: storage.Int64},
	})
	for i := 0; i < dimRows; i++ {
		d.Int(0, int64(i))
		d.Int(1, int64(i%64))
	}
	return f.Build(8), d.Build(1)
})

func benchJoinPlan() *plan.Aggregate {
	fact, dim := benchJoinTables()
	return &plan.Aggregate{
		Child: &plan.Join{
			Left: &plan.Scan{Table: fact}, Right: &plan.Scan{Table: dim},
			LeftKeys: []string{"fact.key"}, RightKeys: []string{"dim.key"},
		},
		GroupBy: []string{"dim.cat"},
		Aggs: []plan.AggSpec{
			{Kind: stats.Count},
			{Kind: stats.Sum, Col: "fact.amount"},
		},
	}
}

// runJoinVolcano runs the grouped join on the serial Volcano operators
// (HashJoinOp + HashAggOp), bypassing the parallel compiler route.
func runJoinVolcano(b *testing.B) {
	b.Helper()
	node := benchJoinPlan()
	fact, dim := benchJoinTables()
	ctx := exec.NewContext(0.95)
	j, err := exec.NewHashJoinOp(exec.NewTableScan(fact, ctx), exec.NewTableScan(dim, ctx),
		node.Child.(*plan.Join).LeftKeys, node.Child.(*plan.Join).RightKeys, ctx)
	if err != nil {
		b.Fatal(err)
	}
	agg, err := exec.NewHashAggOp(j, node.GroupBy, node.Aggs, ctx)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := exec.Run(agg); err != nil {
		b.Fatal(err)
	}
}

func runJoinParallel(b *testing.B, workers int) {
	b.Helper()
	ctx := exec.NewContext(0.95)
	ctx.Workers = workers
	op, err := exec.Compile(benchJoinPlan(), 1, ctx)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := exec.Run(op); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJoinGroupedVolcano is the serial Volcano baseline of the grouped
// join (build + probe + aggregate on one goroutine).
func BenchmarkJoinGroupedVolcano(b *testing.B) {
	benchJoinPlan() // force the one-time table build
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runJoinVolcano(b)
	}
}

// BenchmarkJoinGroupedParallel runs the same grouped join on the morsel
// executor with one worker per CPU (partitioned build + morsel probe).
func BenchmarkJoinGroupedParallel(b *testing.B) {
	benchJoinPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runJoinParallel(b, runtime.NumCPU())
	}
}

// BenchmarkJoinGroupedSpeedup measures the serial Volcano join and the
// 8-worker parallel join back to back and reports the speedup directly
// (≈ core-bound on machines with ≥8 CPUs; ~1.0 on one core).
func BenchmarkJoinGroupedSpeedup(b *testing.B) {
	benchJoinPlan()
	b.ResetTimer()
	var ser, par time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		runJoinVolcano(b)
		ser += time.Since(start)
		start = time.Now()
		runJoinParallel(b, 8)
		par += time.Since(start)
	}
	b.ReportMetric(float64(ser)/float64(par), "join-speedup-x")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// BenchmarkFigure3TPCH regenerates Fig. 3a: end-to-end time of Baseline,
// Quickr, BlinkDB 50/100% and Taster 50/100% on the TPC-H workload.
func BenchmarkFigure3TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure3("tpch", benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Runs {
			if r.System == "Taster(50%)" {
				b.ReportMetric(r.Speedup, "taster-speedup-x")
			}
		}
	}
}

// BenchmarkFigure3TPCDS regenerates Fig. 3b (TPC-DS, 50% budget).
func BenchmarkFigure3TPCDS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure3("tpcds", benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Runs {
			if r.System == "Taster(50%)" {
				b.ReportMetric(r.Speedup, "taster-speedup-x")
			}
		}
	}
}

// BenchmarkFigure3Instacart regenerates Fig. 3c (instacart, 50% budget).
func BenchmarkFigure3Instacart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure3("instacart", benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Runs {
			if r.System == "Taster(50%)" {
				b.ReportMetric(r.Speedup, "taster-speedup-x")
			}
		}
	}
}

// BenchmarkFigure4 regenerates the per-query speed-up CDF (Fig. 4).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure4(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.MedianSpeedup, "median-speedup-x")
		b.ReportMetric(f.MaxSpeedup, "max-speedup-x")
	}
}

// BenchmarkFigure5 regenerates the approximation-error CDF (Fig. 5).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.FracUnder10, "pct-queries-under-10pct-err")
		b.ReportMetric(float64(f.MissingGroups), "missing-groups")
	}
}

// BenchmarkFigure6 regenerates the workload-adaptivity trace (Fig. 6).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure6(experiments.Config{SF: 0.004, Queries: 80, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.EpochAvg[3], "epoch4-avg-sim-s")
	}
}

// BenchmarkFigure7 regenerates the user-hints comparison (Fig. 7).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure7(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.SpeedupAll, "hints-speedup-x")
		b.ReportMetric(f.SpeedupDboff, "dboff-speedup-x")
	}
}

// BenchmarkFigure8 regenerates the horizon-length comparison (Fig. 8).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure8(experiments.Config{SF: 0.004, Queries: 60, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Totals["adaptive"], "adaptive-total-sim-s")
	}
}

// BenchmarkFigure9 regenerates the storage-elasticity sweep (Fig. 9).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure9(experiments.Config{SF: 0.004, Queries: 40, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Speedups[len(f.Speedups)-1], "final-phase-speedup-x")
	}
}

// BenchmarkTableI regenerates the instacart template table (Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.TableI(experiments.Config{SF: 0.004, Queries: 10, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		agrees := 0
		for _, r := range f.Rows {
			if r.Agrees {
				agrees++
			}
		}
		b.ReportMetric(float64(agrees), "templates-matching-family")
	}
}
