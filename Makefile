GO ?= go

.PHONY: all check fmt vet build test race test-race bench bench-join bench-stream bench-serve bench-warmstart bench-partition bench-execute profile-serve

all: check

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency suite under the race detector: morsel-executor determinism,
# the concurrent serving path, and the partitioned ingest/query/spill storm.
race:
	$(GO) test -race ./internal/core/ ./internal/exec/ .

test-race: race

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# One pass over the grouped-join benchmarks: exercises the partitioned
# parallel hash join end to end (CI runs this as a smoke test).
bench-join:
	$(GO) test -run xxx -bench Join -benchtime 1x .

# Streaming-ingestion smoke: runs the error-vs-staleness experiment at a
# tiny scale and emits BENCH_streaming.json (CI collects it as the perf
# summary artifact).
bench-stream:
	$(GO) run ./cmd/tasterbench -experiment streaming -workload tpch -sf 0.002 -queries 24

# Concurrent-serving throughput: closed-loop multi-client sweep comparing
# the inline tuning round (the old per-query tuning mutex) against the
# asynchronous snapshot-published pipeline; emits BENCH_serving.json.
bench-serve:
	$(GO) run ./cmd/tasterbench -experiment serving -workload tpch -sf 0.002 -queries 96

# Steady-state serving-path microbenchmark with allocation accounting: one
# warmed engine, repeated queries, parse + cache-hit planning + pooled
# execution per op. TestExecuteServeAllocBudget holds the allocs/op line in
# the regular test run; this target prints the numbers.
bench-execute:
	$(GO) test ./internal/core -run NONE -bench ExecuteServe -benchmem

# CPU + allocation profiles of the serving sweep, for digging into the
# fast-path hot spots (tuner rounds, join probe, filter, plan cache).
# Inspect with: go tool pprof serve.cpu.pprof
profile-serve:
	$(GO) run ./cmd/tasterbench -experiment serving -workload tpch -sf 0.002 \
		-queries 96 -cpuprofile serve.cpu.pprof -memprofile serve.mem.pprof

# Restart-recovery smoke: persists half the fig3 workload's warehouse to a
# temp directory, restarts from it, and reports cold vs warm first-query
# latency plus the byte-fidelity verdict; emits BENCH_warmstart.json.
# Instacart is the recurring-template workload, so recovered synopses are
# reusable from the first post-restart queries on.
bench-warmstart:
	$(GO) run ./cmd/tasterbench -experiment warmstart -workload instacart -sf 0.002 -queries 24

# Zone-map pruning A/B on the time-clustered event table: selective range
# predicates with pruning on vs off; emits BENCH_partition.json with the
# scan-byte and simulated-seconds ratios (CI asserts the ≥2x speedup).
bench-partition:
	$(GO) run ./cmd/tasterbench -experiment partition -queries 48
