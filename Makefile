GO ?= go

.PHONY: all check fmt vet lint staticcheck govulncheck build test race race-all test-race fuzz-smoke bench bench-join bench-stream bench-serve bench-warmstart bench-partition bench-execute bench-kernels profile-serve profile-trace smoke-metrics

all: check

check: fmt vet lint build test staticcheck govulncheck

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# tasterlint is the repo's own static-analysis suite (detrand, mapiter,
# locksafe, snapshotimmut, poolsafe): it mechanically enforces the engine's
# determinism, locking, immutability and pool invariants. Required in CI;
# see "Invariants & enforcement" in docs/ARCHITECTURE.md.
lint:
	$(GO) run ./cmd/tasterlint ./...

# Third-party analyzers, gated on availability: the hermetic build image
# does not ship them, so absence is a skip with a note, not a failure.
# CI installs both before running check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency suite under the race detector: morsel-executor determinism,
# the concurrent serving path, and the partitioned ingest/query/spill storm.
race:
	$(GO) test -race ./internal/core/ ./internal/exec/ .

# Every package under the race detector (CI's required race gate; the
# `race` subset above stays as the fast local loop).
race-all:
	$(GO) test -race ./...

test-race: race

# Ten-second smoke runs of the three coverage-guided fuzz targets: the
# persistence decoders (arbitrary bytes must never panic) and the
# partition-sample merge (statistical invariants under random inputs).
fuzz-smoke:
	$(GO) test -run NONE -fuzz 'FuzzDecode$$' -fuzztime 10s ./internal/persist
	$(GO) test -run NONE -fuzz 'FuzzDecodeExpr$$' -fuzztime 10s ./internal/persist
	$(GO) test -run NONE -fuzz 'FuzzMergePartitionSamples$$' -fuzztime 10s ./internal/synopses

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# One pass over the grouped-join benchmarks: exercises the partitioned
# parallel hash join end to end (CI runs this as a smoke test).
bench-join:
	$(GO) test -run xxx -bench Join -benchtime 1x .

# Streaming-ingestion smoke: runs the error-vs-staleness experiment at a
# tiny scale and emits BENCH_streaming.json (CI collects it as the perf
# summary artifact).
bench-stream:
	$(GO) run ./cmd/tasterbench -experiment streaming -workload tpch -sf 0.002 -queries 24

# Concurrent-serving throughput: closed-loop multi-client sweep comparing
# the inline tuning round (the old per-query tuning mutex) against the
# asynchronous snapshot-published pipeline; emits BENCH_serving.json.
bench-serve:
	$(GO) run ./cmd/tasterbench -experiment serving -workload tpch -sf 0.002 -queries 96

# Steady-state serving-path microbenchmark with allocation accounting: one
# warmed engine, repeated queries, parse + cache-hit planning + pooled
# execution per op. TestExecuteServeAllocBudget holds the allocs/op line in
# the regular test run; this target prints the numbers.
bench-execute:
	$(GO) test ./internal/core -run NONE -bench ExecuteServe -benchmem

# Per-stage ns/row microbenchmarks of the vectorized hot path: the compiled
# selection-kernel filter vs the interpreted Eval fallback, and the hoisted
# agg-major observe loop vs its row-major regression baseline (CI runs this
# as a smoke test; the equivalence claims are pinned by regular tests).
bench-kernels:
	$(GO) test ./internal/exec -run NONE -bench 'BenchmarkFilter|BenchmarkAgg' -benchtime 200x

# CPU + allocation profiles of the serving sweep, for digging into the
# fast-path hot spots (tuner rounds, join probe, filter, plan cache).
# Inspect with: go tool pprof serve.cpu.pprof
profile-serve:
	$(GO) run ./cmd/tasterbench -experiment serving -workload tpch -sf 0.002 \
		-queries 96 -cpuprofile serve.cpu.pprof -memprofile serve.mem.pprof

# Runtime execution trace of the serving sweep: scheduler, GC and contention
# timelines — the profile pair's complement for latency (not CPU) questions.
# Inspect with: go tool trace serve.trace
profile-trace:
	$(GO) run ./cmd/tasterbench -experiment serving -workload tpch -sf 0.002 \
		-queries 96 -trace serve.trace

# Live-metrics smoke: runs the serving sweep with the /metrics surface up,
# scrapes it mid-run, and asserts the taster_ series are present and the
# Prometheus text parses shape-wise (HELP/TYPE per family). CI runs this to
# keep the export surface wired end to end.
smoke-metrics:
	@set -e; \
	$(GO) run ./cmd/tasterbench -experiment serving -workload tpch -sf 0.002 \
		-queries 96 -metrics-addr 127.0.0.1:9819 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	up=0; for i in $$(seq 1 60); do \
		if curl -sf http://127.0.0.1:9819/metrics >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.5; \
	done; \
	[ "$$up" = 1 ] || { echo "smoke-metrics: /metrics never came up"; exit 1; }; \
	out=$$(curl -sf http://127.0.0.1:9819/metrics); \
	echo "$$out" | grep -q '^# TYPE taster_queries_total counter' || { echo "smoke-metrics: missing taster_queries_total"; exit 1; }; \
	echo "$$out" | grep -q '^# TYPE taster_query_latency_seconds histogram' || { echo "smoke-metrics: missing latency histogram"; exit 1; }; \
	echo "$$out" | grep -q '^taster_snapshot_publishes_total ' || { echo "smoke-metrics: missing tuning series"; exit 1; }; \
	curl -sf http://127.0.0.1:9819/debug/vars | grep -q '"taster_queries_total"' || { echo "smoke-metrics: /debug/vars missing series"; exit 1; }; \
	echo "smoke-metrics: /metrics and /debug/vars healthy"; \
	wait $$pid

# Restart-recovery smoke: persists half the fig3 workload's warehouse to a
# temp directory, restarts from it, and reports cold vs warm first-query
# latency plus the byte-fidelity verdict; emits BENCH_warmstart.json.
# Instacart is the recurring-template workload, so recovered synopses are
# reusable from the first post-restart queries on.
bench-warmstart:
	$(GO) run ./cmd/tasterbench -experiment warmstart -workload instacart -sf 0.002 -queries 24

# Zone-map pruning A/B on the time-clustered event table: selective range
# predicates with pruning on vs off; emits BENCH_partition.json with the
# scan-byte and simulated-seconds ratios (CI asserts the ≥2x speedup).
bench-partition:
	$(GO) run ./cmd/tasterbench -experiment partition -queries 48
