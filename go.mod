module github.com/tasterdb/taster

go 1.24
