// Command tasterlint is taster's invariant multichecker: five
// repo-specific static analyzers that mechanically enforce the contracts
// the differential tests can only spot-check —
//
//	detrand        no wall-clock or global RNG in determinism-critical packages
//	mapiter        no order-sensitive range over a map without a dominating sort
//	locksafe       Engine.Execute never reaches tuneMu; tuneMu never taken under a finer lock
//	snapshotimmut  //taster:immutable types are frozen outside constructors
//	poolsafe       VecPool results are released, returned or handed onward
//
// Usage:
//
//	tasterlint [-only detrand,mapiter] [-list] [module-dir]
//
// With no directory argument the module containing the current directory
// is linted (the `make lint` entry point runs it at the repo root over
// every package, ./... style). Exit status is 1 when any finding is
// reported, 2 on usage or load errors.
//
// The analyzers are written against the in-repo go/analysis shim
// (internal/lint); porting them onto golang.org/x/tools/go/analysis and
// `go vet -vettool` when the dependency is vendorable is an import-path
// change, not a rewrite.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/tasterdb/taster/internal/lint"
	"github.com/tasterdb/taster/internal/lint/detrand"
	"github.com/tasterdb/taster/internal/lint/locksafe"
	"github.com/tasterdb/taster/internal/lint/mapiter"
	"github.com/tasterdb/taster/internal/lint/poolsafe"
	"github.com/tasterdb/taster/internal/lint/snapshotimmut"
)

var all = []*lint.Analyzer{
	detrand.Analyzer,
	mapiter.Analyzer,
	locksafe.Analyzer,
	snapshotimmut.Analyzer,
	poolsafe.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tasterlint [-only a,b] [-list] [module-dir]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "tasterlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root := "."
	if args := flag.Args(); len(args) == 1 {
		root = strings.TrimSuffix(args[0], "/...")
		if root == "." || root == "" {
			root = "."
		}
	} else if len(flag.Args()) > 1 {
		flag.Usage()
		os.Exit(2)
	}
	root, err := moduleRoot(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tasterlint: %v\n", err)
		os.Exit(2)
	}

	prog, err := lint.Load(root, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tasterlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tasterlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot ascends from dir to the nearest directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
