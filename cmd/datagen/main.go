// Command datagen writes the synthetic benchmark datasets to CSV files for
// inspection or for loading into other systems.
//
// Usage:
//
//	datagen [-workload tpch|tpcds|instacart] [-sf 0.01] [-out ./data]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

func main() {
	var (
		wl   = flag.String("workload", "tpch", "dataset to generate")
		sf   = flag.Float64("sf", 0.01, "scale factor")
		out  = flag.String("out", "./data", "output directory")
		seed = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	var w *workload.Workload
	switch *wl {
	case "tpch":
		w = workload.TPCH(*sf, *seed)
	case "tpcds":
		w = workload.TPCDS(*sf, *seed)
	case "instacart":
		w = workload.Instacart(*sf*5, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(1)
	}

	dir := filepath.Join(*out, w.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range w.Catalog.Names() {
		tbl, err := w.Catalog.Table(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := writeCSV(filepath.Join(dir, name+".csv"), tbl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", filepath.Join(dir, name+".csv"), tbl.NumRows())
	}
}

func writeCSV(path string, tbl *storage.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	defer cw.Flush()
	if err := cw.Write(tbl.Schema().Names()); err != nil {
		return err
	}
	row := make([]string, len(tbl.Schema()))
	for p := 0; p < tbl.Partitions(); p++ {
		for _, b := range tbl.Scan(p, storage.BatchSize) {
			for i := 0; i < b.Len(); i++ {
				for c := range row {
					row[c] = b.Vecs[c].Get(i).String()
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
