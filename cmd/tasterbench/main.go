// Command tasterbench regenerates the paper's evaluation (§VI): every
// figure and table, printed as ASCII tables of simulated cluster seconds.
//
// Usage:
//
//	tasterbench [-experiment all|fig3|fig4|fig5|fig6|fig7|fig8|fig9|tablei]
//	            [-workload tpch|tpcds|instacart] [-sf 0.004] [-queries 200]
//	            [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tasterdb/taster/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "which experiment to run")
		wl      = flag.String("workload", "tpch", "workload for fig3 (tpch|tpcds|instacart)")
		sf      = flag.Float64("sf", 0.004, "workload scale factor")
		queries = flag.Int("queries", 200, "query sequence length")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	cfg := experiments.Config{SF: *sf, Queries: *queries, Seed: *seed}

	out, err := run(*exp, *wl, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tasterbench:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func run(exp, wl string, cfg experiments.Config) (string, error) {
	switch exp {
	case "all":
		return experiments.RunAll(cfg)
	case "fig3":
		f, err := experiments.Figure3(wl, cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig4":
		f, err := experiments.Figure4(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig5":
		f, err := experiments.Figure5(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig6":
		f, err := experiments.Figure6(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig7":
		f, err := experiments.Figure7(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig8":
		f, err := experiments.Figure8(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig9":
		f, err := experiments.Figure9(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "tablei":
		f, err := experiments.TableI(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	}
	return "", fmt.Errorf("unknown experiment %q", exp)
}
