// Command tasterbench regenerates the paper's evaluation (§VI): every
// figure and table, printed as ASCII tables of simulated cluster seconds,
// plus the streaming-ingestion experiment (error vs. staleness bound).
//
// Usage:
//
//	tasterbench [-experiment all|fig3|fig4|fig5|fig6|fig7|fig8|fig9|tablei|streaming|serving|warmstart|partition]
//	            [-workload tpch|tpcds|instacart] [-sf 0.004] [-queries 200]
//	            [-seed 42] [-benchjson=true]
//	            [-cpuprofile serve.cpu.pprof] [-memprofile serve.mem.pprof]
//	            [-trace serve.trace] [-metrics-addr :9090]
//
// -metrics-addr serves the engine metrics registry live while the run is in
// flight: Prometheus text on /metrics, expvar-style JSON on /debug/vars. The
// registry is threaded into the engines the wall-clock experiments build, so
// `curl localhost:9090/metrics` during `make bench-serve` shows real serving
// counters. -trace writes a runtime/trace of the whole run for `go tool
// trace` (scheduler, GC and contention timelines — the profile pair's
// complement).
//
// The serving experiment is the concurrent-throughput sweep (inline vs.
// asynchronous tuning across client counts); it measures wall time, so it
// is excluded from -experiment all and its numbers are machine-relative.
// The warmstart experiment measures restart recovery from a persistent
// warehouse directory: cold-start vs warm-start latency over the fig3
// workload, plus a byte-fidelity check against an uninterrupted engine.
// The partition experiment A/Bs zone-map partition pruning on a
// time-clustered event table under selective range predicates, reporting
// the scan-byte and simulated-seconds ratios (answers are bit-equal).
//
// Unless -benchjson=false, every run also writes a BENCH_<experiment>.json
// perf summary (wall seconds plus the rendered report) to the working
// directory for trajectory/CI collection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"github.com/tasterdb/taster/internal/experiments"
	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/obs/httpexport"
)

func main() {
	var (
		exp         = flag.String("experiment", "all", "which experiment to run")
		wl          = flag.String("workload", "tpch", "workload for fig3/streaming (tpch|tpcds|instacart)")
		sf          = flag.Float64("sf", 0.004, "workload scale factor")
		queries     = flag.Int("queries", 200, "query sequence length")
		seed        = flag.Int64("seed", 42, "random seed")
		benchjson   = flag.Bool("benchjson", true, "write a BENCH_<experiment>.json perf summary")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile at exit to this file")
		tracefile   = flag.String("trace", "", "write a runtime/trace of the run to this file (go tool trace)")
		metricsAddr = flag.String("metrics-addr", "", "serve live engine metrics on this address (/metrics, /debug/vars)")
	)
	flag.Parse()
	cfg := experiments.Config{SF: *sf, Queries: *queries, Seed: *seed}

	if *metricsAddr != "" {
		mx := obs.NewMetrics()
		cfg.Metrics = mx
		go func() {
			if err := http.ListenAndServe(*metricsAddr, httpexport.Handler(mx.Snapshot)); err != nil {
				fmt.Fprintln(os.Stderr, "tasterbench: metrics-addr:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "tasterbench: serving metrics on %s (/metrics, /debug/vars)\n", *metricsAddr)
	}

	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: trace:", err)
			os.Exit(1)
		}
		defer trace.Stop()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	out, data, err := run(*exp, *wl, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tasterbench:", err)
		os.Exit(1)
	}
	if *memprofile != "" {
		runtime.GC() // settle retained heap so the profile shows live objects
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: memprofile:", err)
			os.Exit(1)
		}
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: memprofile:", err)
			os.Exit(1)
		}
		f.Close()
	}
	fmt.Print(out)
	if *benchjson {
		if err := writeSummary(*exp, *wl, cfg, time.Since(start).Seconds(), out, data); err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: bench summary:", err)
			os.Exit(1)
		}
	}
}

// writeSummary emits the machine-readable perf record of one run in the
// shared experiments.BenchEnvelope schema (every BENCH_*.json artifact has
// the same shape, so CI diffs are mechanical). data carries the experiment's
// structured result when it exposes one.
func writeSummary(exp, wl string, cfg experiments.Config, wall float64, report string, data any) error {
	env := experiments.NewBenchEnvelope(exp, wl, cfg, wall, report, data)
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("BENCH_%s.json", exp)
	return os.WriteFile(name, append(b, '\n'), 0o644)
}

// run executes one experiment, returning the rendered report plus (when the
// experiment exposes one) its structured result for the bench envelope.
func run(exp, wl string, cfg experiments.Config) (string, any, error) {
	type tabler interface{ Table() string }
	wrap := func(f tabler, err error) (string, any, error) {
		if err != nil {
			return "", nil, err
		}
		return f.Table(), f, nil
	}
	switch exp {
	case "all":
		out, err := experiments.RunAll(cfg)
		return out, nil, err
	case "fig3":
		return wrap(experiments.Figure3(wl, cfg))
	case "fig4":
		return wrap(experiments.Figure4(cfg))
	case "fig5":
		return wrap(experiments.Figure5(cfg))
	case "fig6":
		return wrap(experiments.Figure6(cfg))
	case "fig7":
		return wrap(experiments.Figure7(cfg))
	case "fig8":
		return wrap(experiments.Figure8(cfg))
	case "fig9":
		return wrap(experiments.Figure9(cfg))
	case "tablei":
		return wrap(experiments.TableI(cfg))
	case "streaming":
		return wrap(experiments.Streaming(wl, cfg))
	case "serving":
		return wrap(experiments.Serving(wl, cfg))
	case "warmstart":
		return wrap(experiments.WarmStart(wl, cfg))
	case "partition":
		return wrap(experiments.Partition(cfg))
	}
	return "", nil, fmt.Errorf("unknown experiment %q", exp)
}
