// Command tasterbench regenerates the paper's evaluation (§VI): every
// figure and table, printed as ASCII tables of simulated cluster seconds,
// plus the streaming-ingestion experiment (error vs. staleness bound).
//
// Usage:
//
//	tasterbench [-experiment all|fig3|fig4|fig5|fig6|fig7|fig8|fig9|tablei|streaming|serving|warmstart|partition]
//	            [-workload tpch|tpcds|instacart] [-sf 0.004] [-queries 200]
//	            [-seed 42] [-benchjson=true]
//	            [-cpuprofile serve.cpu.pprof] [-memprofile serve.mem.pprof]
//
// The serving experiment is the concurrent-throughput sweep (inline vs.
// asynchronous tuning across client counts); it measures wall time, so it
// is excluded from -experiment all and its numbers are machine-relative.
// The warmstart experiment measures restart recovery from a persistent
// warehouse directory: cold-start vs warm-start latency over the fig3
// workload, plus a byte-fidelity check against an uninterrupted engine.
// The partition experiment A/Bs zone-map partition pruning on a
// time-clustered event table under selective range predicates, reporting
// the scan-byte and simulated-seconds ratios (answers are bit-equal).
//
// Unless -benchjson=false, every run also writes a BENCH_<experiment>.json
// perf summary (wall seconds plus the rendered report) to the working
// directory for trajectory/CI collection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/tasterdb/taster/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("experiment", "all", "which experiment to run")
		wl         = flag.String("workload", "tpch", "workload for fig3/streaming (tpch|tpcds|instacart)")
		sf         = flag.Float64("sf", 0.004, "workload scale factor")
		queries    = flag.Int("queries", 200, "query sequence length")
		seed       = flag.Int64("seed", 42, "random seed")
		benchjson  = flag.Bool("benchjson", true, "write a BENCH_<experiment>.json perf summary")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit to this file")
	)
	flag.Parse()
	cfg := experiments.Config{SF: *sf, Queries: *queries, Seed: *seed}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	out, err := run(*exp, *wl, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tasterbench:", err)
		os.Exit(1)
	}
	if *memprofile != "" {
		runtime.GC() // settle retained heap so the profile shows live objects
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: memprofile:", err)
			os.Exit(1)
		}
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: memprofile:", err)
			os.Exit(1)
		}
		f.Close()
	}
	fmt.Print(out)
	if *benchjson {
		if err := writeSummary(*exp, *wl, cfg, time.Since(start).Seconds(), out); err != nil {
			fmt.Fprintln(os.Stderr, "tasterbench: bench summary:", err)
			os.Exit(1)
		}
	}
}

// benchSummary is the machine-readable perf record one run emits.
type benchSummary struct {
	Experiment  string  `json:"experiment"`
	Workload    string  `json:"workload"`
	SF          float64 `json:"sf"`
	Queries     int     `json:"queries"`
	Seed        int64   `json:"seed"`
	WallSeconds float64 `json:"wall_seconds"`
	Report      string  `json:"report"`
}

func writeSummary(exp, wl string, cfg experiments.Config, wall float64, report string) error {
	b, err := json.MarshalIndent(benchSummary{
		Experiment:  exp,
		Workload:    wl,
		SF:          cfg.SF,
		Queries:     cfg.Queries,
		Seed:        cfg.Seed,
		WallSeconds: wall,
		Report:      report,
	}, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("BENCH_%s.json", exp)
	return os.WriteFile(name, append(b, '\n'), 0o644)
}

func run(exp, wl string, cfg experiments.Config) (string, error) {
	switch exp {
	case "all":
		return experiments.RunAll(cfg)
	case "fig3":
		f, err := experiments.Figure3(wl, cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig4":
		f, err := experiments.Figure4(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig5":
		f, err := experiments.Figure5(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig6":
		f, err := experiments.Figure6(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig7":
		f, err := experiments.Figure7(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig8":
		f, err := experiments.Figure8(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "fig9":
		f, err := experiments.Figure9(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "tablei":
		f, err := experiments.TableI(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "streaming":
		f, err := experiments.Streaming(wl, cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "serving":
		f, err := experiments.Serving(wl, cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "warmstart":
		f, err := experiments.WarmStart(wl, cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	case "partition":
		f, err := experiments.Partition(cfg)
		if err != nil {
			return "", err
		}
		return f.Table(), nil
	}
	return "", fmt.Errorf("unknown experiment %q", exp)
}
