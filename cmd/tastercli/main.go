// Command tastercli is an interactive SQL shell over a generated benchmark
// dataset, answering queries approximately through Taster and printing
// estimates with their confidence intervals and the chosen plan.
//
// Usage:
//
//	tastercli [-workload tpch|tpcds|instacart] [-sf 0.01] [-budget 0.5]
//	          [-warehouse-dir DIR] [-explain] [-metrics-addr :9090]
//
// With -warehouse-dir the synopsis warehouse is disk-backed: quitting the
// shell checkpoints it, and the next start with the same directory warm-
// restarts — the synopses tasted in earlier sessions answer immediately.
//
// -explain prints an EXPLAIN-ANALYZE-style execution trace under every
// query: per-operator rows in/out, selection density, batches, materialized
// synopsis rows and stage durations. -metrics-addr serves the engine's live
// metrics (Prometheus text on /metrics, JSON on /debug/vars) while the
// shell runs.
//
// Commands: plain SQL (terminated by newline), ".synopses", ".budget N",
// ".help", ".quit".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/obs/httpexport"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

func main() {
	var (
		wl          = flag.String("workload", "tpch", "dataset to load")
		sf          = flag.Float64("sf", 0.01, "scale factor")
		budget      = flag.Float64("budget", 0.5, "storage budget as a fraction of the dataset")
		seed        = flag.Int64("seed", 42, "random seed")
		whDir       = flag.String("warehouse-dir", "", "persistent warehouse directory (empty: in-memory, cold starts)")
		explain     = flag.Bool("explain", false, "print a per-operator execution trace under every query")
		metricsAddr = flag.String("metrics-addr", "", "serve live engine metrics on this address (/metrics, /debug/vars)")
	)
	flag.Parse()

	var w *workload.Workload
	switch *wl {
	case "tpch":
		w = workload.TPCH(*sf, *seed)
	case "tpcds":
		w = workload.TPCDS(*sf, *seed)
	case "instacart":
		w = workload.Instacart(*sf*5, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(1)
	}
	var mx *obs.Metrics
	if *metricsAddr != "" {
		mx = obs.NewMetrics()
	}
	bytes, rows := w.CostScale()
	eng, err := core.Open(w.Catalog, core.Config{
		Mode:          core.ModeTaster,
		StorageBudget: int64(float64(bytes) * *budget),
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          uint64(*seed),
		Synchronous:   true, // deterministic REPL: tuning applies before the prompt returns
		WarehouseDir:  *whDir,
		Metrics:       mx,
		Trace:         *explain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tastercli:", err)
		os.Exit(1)
	}
	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, httpexport.Handler(eng.MetricsSnapshot)); err != nil {
				fmt.Fprintln(os.Stderr, "tastercli: metrics-addr:", err)
			}
		}()
		fmt.Printf("taster> serving metrics on %s (/metrics, /debug/vars)\n", *metricsAddr)
	}
	defer func() {
		// Checkpoint the warehouse so the next session warm-restarts.
		if err := eng.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tastercli: checkpoint:", err)
		}
	}()

	fmt.Printf("taster> loaded %s (%d rows, %.1f MB); tables: %v\n",
		w.Name, rows, float64(bytes)/1e6, w.Catalog.Names())
	if *whDir != "" {
		fmt.Printf("taster> warehouse dir %s: recovered %d synopses\n", *whDir, eng.Recovered())
	}
	fmt.Println(`taster> approximate queries end with "ERROR WITHIN 10% AT CONFIDENCE 95%"; .help for commands`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("taster> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println("  <SQL>            run a query (append ERROR WITHIN x% AT CONFIDENCE y% to approximate)")
			fmt.Println("  .synopses        list materialized synopses")
			fmt.Println("  .budget <bytes>  change the storage budget (elasticity)")
			fmt.Println("  .quit            exit")
		case line == ".synopses":
			for _, e := range eng.Store().Materialized() {
				d := e.Desc
				fmt.Printf("  %s [%s, %d bytes]\n", d.Label(), d.Location, d.SizeBytes())
			}
		case strings.HasPrefix(line, ".budget "):
			n, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, ".budget ")), 10, 64)
			if err != nil {
				fmt.Println("  bad budget:", err)
				continue
			}
			eng.SetStorageBudget(n)
			fmt.Println("  budget set; warehouse retuned")
		default:
			runSQL(eng, w.Catalog, line)
		}
	}
}

func runSQL(eng *core.Engine, cat *storage.Catalog, sql string) {
	q, err := sqlparser.Parse(sql, cat)
	if err != nil {
		fmt.Println("  parse error:", err)
		return
	}
	res, err := eng.Execute(q)
	if err != nil {
		fmt.Println("  exec error:", err)
		return
	}
	fmt.Println("  " + strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		if i >= 20 {
			fmt.Printf("  ... (%d more rows)\n", len(res.Rows)-20)
			break
		}
		cells := make([]string, len(row))
		for c, v := range row {
			cells[c] = v.String()
		}
		line := "  " + strings.Join(cells, " | ")
		if res.Intervals != nil && i < len(res.Intervals) {
			for _, iv := range res.Intervals[i] {
				if iv.HalfWidth > 0 {
					line += fmt.Sprintf("  (±%.3g)", iv.HalfWidth)
				}
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("  plan: %s  |  simulated %.2fs  |  wall %.1fms\n",
		res.Report.PlanDesc, res.Report.SimSeconds, res.Report.WallSeconds*1000)
	if res.Trace != "" {
		for _, l := range strings.Split(strings.TrimRight(res.Trace, "\n"), "\n") {
			fmt.Println("  " + l)
		}
	}
}
