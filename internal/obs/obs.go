// Package obs is the engine's observability layer: an engine-wide metrics
// registry (atomic counters, gauges and fixed-bucket histograms), per-query
// execution traces, and the snapshot type the export surfaces (Prometheus
// text, expvar JSON) render.
//
// The layer is designed around one hard constraint — it must never be able
// to change an answer:
//
//   - Metrics are write-only from the serving path. Nothing in planner,
//     tuner or exec ever reads a counter; MetricsSnapshot is the only read
//     API and it exists for exporters and tests.
//   - All timings flow through an injected Clock. Engines running
//     synchronously (the byte-deterministic experiment mode) inject Frozen,
//     so no wall-clock read happens on the query path at all; asynchronous
//     engines inject Wall. The detrand lint rule forbids raw time.Now in the
//     determinism-critical packages and sanctions Clock call sites only
//     under a //taster:clock annotation.
//   - Every hook type is nil-receiver safe: an engine opened without a
//     Metrics registry threads nil hooks everywhere and the whole layer
//     compiles down to a pointer test per call site. The differential test
//     in internal/core proves answers are byte-identical with the layer on
//     and off.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops), so code
// paths can thread optional counters without guarding every increment.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for the counter to stay monotone; the
// type does not enforce it, exporters report whatever was accumulated).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depths, occupancy).
// Nil-receiver safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
