package obs

import (
	"math"
	"sync"
	"testing"
)

func testHist() *Histogram {
	h := &Histogram{}
	h.init([]float64{1, 2, 4, 8})
	return h
}

func TestHistogramObserve(t *testing.T) {
	h := testHist()
	for _, v := range []float64{0.5, 1, 1.5, 3, 9, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le-semantics: 0.5 and 1 land in le=1; 1.5 in le=2; 3 in le=4;
	// nothing in le=8; 9 and 100 overflow to +Inf.
	want := []int64{2, 1, 1, 0, 2}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-115) > 1e-9 {
		t.Errorf("Sum = %g, want 115", s.Sum)
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	h.Observe(1) // uninitialized: ignored, no panic
	if s := h.Snapshot(); s.Count != 0 || len(s.Counts) != 0 {
		t.Fatalf("zero-value histogram snapshot = %+v, want empty", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := testHist(), testHist()
	a.Observe(1)
	a.Observe(3)
	b.Observe(3)
	b.Observe(9)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 {
		t.Fatalf("merged Count = %d, want 4", m.Count)
	}
	if math.Abs(m.Sum-16) > 1e-9 {
		t.Fatalf("merged Sum = %g, want 16", m.Sum)
	}
	want := []int64{1, 0, 2, 0, 1}
	for i, w := range want {
		if m.Counts[i] != w {
			t.Errorf("merged bucket %d = %d, want %d", i, m.Counts[i], w)
		}
	}

	// Merging with an empty snapshot returns the other side unchanged.
	if got := a.Snapshot().Merge(HistogramSnapshot{}); got.Count != 2 {
		t.Errorf("merge with empty: Count = %d, want 2", got.Count)
	}
	if got := (HistogramSnapshot{}).Merge(b.Snapshot()); got.Count != 2 {
		t.Errorf("empty merge with b: Count = %d, want 2", got.Count)
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	a := testHist()
	a.Observe(1)
	var b Histogram
	b.init([]float64{1, 2})
	b.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched layouts did not panic")
		}
	}()
	a.Snapshot().Merge(b.Snapshot())
}

func TestHistogramQuantile(t *testing.T) {
	h := testHist()
	// 100 observations uniform in (0, 8]: 12 in le=1 (0..1], 13 in le=2,
	// 25 in le=4, 50 in le=8 — approximated by direct bucket fills.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.08)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); math.Abs(q-4.0) > 0.5 {
		t.Errorf("p50 = %g, want ~4.0", q)
	}
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Errorf("p0 = %g, want within the first occupied bucket", q)
	}
	if q := s.Quantile(1); math.Abs(q-8.0) > 1e-9 {
		t.Errorf("p100 = %g, want 8.0", q)
	}
	// Out-of-range q clamps rather than panicking.
	if q := s.Quantile(-1); q != s.Quantile(0) {
		t.Errorf("Quantile(-1) = %g, want Quantile(0) = %g", q, s.Quantile(0))
	}
	if q := s.Quantile(2); q != s.Quantile(1) {
		t.Errorf("Quantile(2) = %g, want Quantile(1)", q)
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	h := testHist()
	h.Observe(100) // +Inf bucket only
	if q := h.Snapshot().Quantile(0.99); q != 8 {
		t.Fatalf("overflow-only p99 = %g, want clamp to highest bound 8", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty Quantile = %g, want 0", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := testHist()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != Count %d", bucketSum, s.Count)
	}
	// CAS-accumulated sum: every observation is exact in float64, so the
	// total is exact too. workers 0..7 observe w%4+0.5 each `per` times.
	var wantSum float64
	for w := 0; w < workers; w++ {
		wantSum += (float64(w%4) + 0.5) * per
	}
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("Sum = %g, want %g", s.Sum, wantSum)
	}
}
