package obs

import (
	"sync"
	"testing"
	"time"
)

// TestCounterNilSafety proves the whole hook surface is safe to call through
// nil receivers — the contract that lets an engine without metrics thread
// nil hooks everywhere.
func TestCounterNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil Counter.Value() = %d, want 0", got)
	}
	var g *Gauge
	g.Set(7)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil Gauge.Value() = %d, want 0", got)
	}
	var h *Histogram
	h.Observe(1.0) // no panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil Histogram snapshot count = %d, want 0", s.Count)
	}

	var pc *PlanCacheObs
	pc.Hit()
	pc.Miss()
	pc.Evict()
	var po *PoolObs
	po.Get()
	po.Put()
	po.Miss()
	var eo *ExecObs
	eo.Kernel()
	eo.Fallback()
	eo.Pruned(3)
	var do *DiskObs
	do.ItemWrite(10)
	do.ItemRead(10)
	do.Manifest(10)

	var m *Metrics
	if s := m.Snapshot(); s.QueriesServed != 0 {
		t.Fatalf("nil Metrics snapshot non-zero")
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Counter.Value() = %d, want 5", got)
	}
	var g Gauge
	g.Set(9)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("Gauge.Value() = %d, want 3", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Counter.Value() = %d, want %d", got, workers*per)
	}
}

// TestHookGroups exercises every hook through a real registry and checks the
// snapshot reflects each write.
func TestHookGroups(t *testing.T) {
	m := NewMetrics()
	m.PlanCache.Hit()
	m.PlanCache.Hit()
	m.PlanCache.Miss()
	m.PlanCache.Evict()
	m.Pool.Get()
	m.Pool.Put()
	m.Pool.Miss()
	m.Exec.Kernel()
	m.Exec.Fallback()
	m.Exec.Pruned(4)
	m.Exec.Pruned(0) // no-op: nothing pruned
	m.Disk.ItemWrite(100)
	m.Disk.ItemRead(40)
	m.Disk.Manifest(7)

	s := m.Snapshot()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"PlanCacheHits", s.PlanCacheHits, 2},
		{"PlanCacheMisses", s.PlanCacheMisses, 1},
		{"PlanCacheEvictions", s.PlanCacheEvictions, 1},
		{"PoolBatchGets", s.PoolBatchGets, 1},
		{"PoolBatchPuts", s.PoolBatchPuts, 1},
		{"PoolAllocMisses", s.PoolAllocMisses, 1},
		{"KernelFilterBatches", s.KernelFilterBatches, 1},
		{"FallbackFilterBatches", s.FallbackFilterBatches, 1},
		{"PrunedPartitions", s.PrunedPartitions, 4},
		{"WarehouseSpills", s.WarehouseSpills, 1},
		{"WarehouseFaultIns", s.WarehouseFaultIns, 1},
		{"ManifestWrites", s.ManifestWrites, 1},
		{"DiskWriteBytes", s.DiskWriteBytes, 107}, // 100 payload + 7 manifest
		{"DiskReadBytes", s.DiskReadBytes, 40},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestClocks(t *testing.T) {
	var f Frozen
	if !f.Now().IsZero() {
		t.Fatal("Frozen.Now() not zero time")
	}
	if d := f.Since(time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)); d != 0 {
		t.Fatalf("Frozen.Since() = %v, want 0", d)
	}
	var w Wall
	a := w.Now()
	if a.IsZero() {
		t.Fatal("Wall.Now() returned zero time")
	}
	if d := w.Since(a); d < 0 {
		t.Fatalf("Wall.Since() = %v, want >= 0", d)
	}
}

// TestFamiliesStable pins the exported series set: names are part of the
// scrape surface, so adding/renaming one must be a conscious change here and
// in the httpexport golden test.
func TestFamiliesStable(t *testing.T) {
	fams := MetricsSnapshot{}.Families()
	if len(fams) != 30 {
		t.Fatalf("Families() returned %d series, want 30", len(fams))
	}
	seen := make(map[string]bool, len(fams))
	for _, f := range fams {
		if f.Name == "" || f.Help == "" {
			t.Errorf("family %+v missing name or help", f)
		}
		if seen[f.Name] {
			t.Errorf("duplicate family name %s", f.Name)
		}
		seen[f.Name] = true
		if len(f.Name) < 8 || f.Name[:7] != "taster_" {
			t.Errorf("family %s not in the taster_ namespace", f.Name)
		}
	}
}
