package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with atomic bucket counters: cheap
// enough for per-query observation under concurrent serving (one atomic add
// per Observe, no locks, no allocation) and mergeable/exportable as a
// Prometheus cumulative histogram. Bucket bounds are upper-inclusive
// (Prometheus `le` semantics); an implicit +Inf bucket catches overflow.
//
// The zero value (no buckets) ignores observations, which keeps nil-adjacent
// paths safe; NewMetrics initializes every histogram it registers.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// init installs the bucket bounds (must be sorted ascending). Called once
// at registry construction, before any Observe.
func (h *Histogram) init(bounds []float64) {
	h.bounds = bounds
	h.counts = make([]atomic.Int64, len(bounds)+1)
}

// Observe records one value. Safe for concurrent use; a no-op on a nil or
// uninitialized histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil || len(h.counts) == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the le-bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy. Concurrent Observes may land
// between bucket reads; each bucket is individually consistent and the
// total is recomputed from the buckets so Count always equals their sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil || len(h.counts) == 0 {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after init: shared, never copied
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state: per-bucket
// counts aligned with Bounds (Counts has one extra trailing entry, the +Inf
// bucket), the total observation count, and the running sum.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Merge combines another snapshot with identical bounds into this one,
// returning the merged result (the receiver is not modified). Snapshots
// with mismatched bucket layouts do not merge meaningfully; Merge panics on
// a length mismatch to surface the bug rather than skew percentiles.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(o.Counts) == 0 {
		return s
	}
	if len(s.Counts) == 0 {
		return o
	}
	if len(s.Counts) != len(o.Counts) {
		panic("obs: merging histograms with different bucket layouts")
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank — the standard fixed-bucket
// estimator (identical to Prometheus histogram_quantile). Observations in
// the +Inf bucket clamp to the highest finite bound. Returns 0 for an empty
// snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// latencyBuckets covers query latency from 100µs to 60s in a 1-2.5-5
// progression (seconds). Fixed literals: exporter output and golden tests
// depend on the exact layout.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// batchSizeBuckets covers tuning batch sizes up to the service's maxBatch
// (256 observations per round).
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
