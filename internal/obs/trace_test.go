package obs

import (
	"strings"
	"testing"
	"time"
)

// TestTraceRender pins the EXPLAIN-ANALYZE layout: branch glyphs, stat
// lines, fused stubs. The rendering is part of the user-facing surface
// (tastercli -explain), so changes here should be deliberate.
func TestTraceRender(t *testing.T) {
	root := &TraceNode{
		Name: "Aggregate[region | SUM(amount)]", RowsOut: 5, RowsIn: 431, Batches: 1,
		Children: []*TraceNode{
			{
				Name: "Filter(amount < 100)", RowsOut: 431, PhysRows: 1000, Batches: 2,
				Duration: 800 * time.Microsecond,
				Children: []*TraceNode{
					{Name: "Scan(sales)", Fused: true},
				},
			},
		},
	}
	got := root.Render()
	want := strings.Join([]string{
		"Aggregate[region | SUM(amount)]  rows=5 in=431 batches=1 time=0s",
		"└─ Filter(amount < 100)  rows=431/1000 sel=43.1% batches=2 time=800µs",
		"   └─ Scan(sales)  (fused)",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("Render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceRenderSiblings(t *testing.T) {
	root := &TraceNode{
		Name: "Join", RowsOut: 10, Batches: 1,
		Children: []*TraceNode{
			{Name: "ScanA", RowsOut: 4, Batches: 1, Materialized: 2,
				Children: []*TraceNode{{Name: "Leaf", Fused: true}}},
			{Name: "ScanB", RowsOut: 6, Batches: 1},
		},
	}
	got := root.Render()
	for _, line := range []string{
		"├─ ScanA  rows=4 batches=1 built=2 time=0s",
		"│  └─ Leaf  (fused)", // continuation bar under a non-last sibling
		"└─ ScanB  rows=6 batches=1 time=0s",
	} {
		if !strings.Contains(got, line) {
			t.Errorf("Render output missing %q:\n%s", line, got)
		}
	}
}

func TestTraceRenderNil(t *testing.T) {
	var n *TraceNode
	if got := n.Render(); got != "" {
		t.Fatalf("nil Render = %q, want empty", got)
	}
}
