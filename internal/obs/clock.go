package obs

import "time"

// Clock is the injected time source every obs timing goes through. The
// engine picks the implementation once at Open: Wall for asynchronous
// serving (latency histograms and trace durations measure real time) and
// Frozen for synchronous byte-deterministic runs (all durations read as
// zero, so rendered traces and exported histograms are reproducible and no
// wall-clock read happens on the query path).
//
// Determinism contract: Clock values feed metrics and traces ONLY. Nothing
// read from a Clock may reach plan choice, synopsis contents or query
// results — the detrand analyzer enforces this in the critical packages by
// flagging every Clock call site not annotated //taster:clock <why>.
type Clock interface {
	// Now returns the current reading.
	Now() time.Time
	// Since returns the elapsed time since a previous reading.
	Since(t time.Time) time.Duration
}

// Wall reads the real wall clock.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// Frozen is a clock that never advances: Now is always the zero time and
// Since is always zero. Synchronous engines inject it so metric and trace
// output is byte-identical across runs.
type Frozen struct{}

// Now implements Clock.
func (Frozen) Now() time.Time { return time.Time{} }

// Since implements Clock.
func (Frozen) Since(time.Time) time.Duration { return 0 }
