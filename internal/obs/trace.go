package obs

import (
	"fmt"
	"strings"
	"time"
)

// TraceNode is one operator's execution record in a per-query trace: rows
// and batches out, physical rows touched (selection-vector density =
// RowsOut/PhysRows), synopses materialized at this node, and the inclusive
// wall duration of its Open+Next calls (zero under a frozen clock).
//
// Fused nodes are plan nodes whose work ran inside a fused physical
// operator (the morsel-driven parallel pipeline, or a filter fused into its
// scan's pruning) — they appear in the tree for plan shape but carry no
// per-operator counters of their own; the enclosing traced operator
// accounts their work.
type TraceNode struct {
	Name         string
	Fused        bool
	RowsIn       int64
	RowsOut      int64
	PhysRows     int64
	Batches      int64
	Materialized int64
	Duration     time.Duration
	Children     []*TraceNode
}

// Render formats the trace as an EXPLAIN-ANALYZE-style tree:
//
//	Aggregate[region | SUM(amount)]  rows=5 batches=1 time=1.2ms
//	└─ Filter(amount < 100)  rows=431/1000 sel=43.1% batches=2 time=800µs
//	   └─ Scan(sales)  (fused)
//
// Output is deterministic for a deterministic execution under a frozen
// clock (durations render as 0s).
func (n *TraceNode) Render() string {
	if n == nil {
		return ""
	}
	var sb strings.Builder
	n.render(&sb, "", "")
	return sb.String()
}

func (n *TraceNode) render(sb *strings.Builder, prefix, childPrefix string) {
	sb.WriteString(prefix)
	sb.WriteString(n.Name)
	if n.Fused {
		sb.WriteString("  (fused)")
	} else {
		fmt.Fprintf(sb, "  %s", n.statLine())
	}
	sb.WriteByte('\n')
	for i, c := range n.Children {
		last := i == len(n.Children)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		c.render(sb, childPrefix+branch, childPrefix+cont)
	}
}

// statLine formats one node's counters.
func (n *TraceNode) statLine() string {
	var sb strings.Builder
	if n.PhysRows > 0 && n.PhysRows != n.RowsOut {
		fmt.Fprintf(&sb, "rows=%d/%d sel=%.1f%%", n.RowsOut, n.PhysRows,
			100*float64(n.RowsOut)/float64(n.PhysRows))
	} else {
		fmt.Fprintf(&sb, "rows=%d", n.RowsOut)
	}
	if n.RowsIn > 0 && n.RowsIn != n.RowsOut {
		fmt.Fprintf(&sb, " in=%d", n.RowsIn)
	}
	fmt.Fprintf(&sb, " batches=%d", n.Batches)
	if n.Materialized > 0 {
		fmt.Fprintf(&sb, " built=%d", n.Materialized)
	}
	fmt.Fprintf(&sb, " time=%s", n.Duration)
	return sb.String()
}
