package httpexport

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tasterdb/taster/internal/obs"
)

// fixtureSnapshot builds a snapshot with a little of everything: counters,
// engine gauges, and one populated histogram.
func fixtureSnapshot() obs.MetricsSnapshot {
	m := obs.NewMetrics()
	m.QueriesServed.Add(3)
	m.QueryErrors.Inc()
	m.QueryLatencySeconds.Observe(0.0002)
	m.QueryLatencySeconds.Observe(0.003)
	m.QueryLatencySeconds.Observe(0.003)
	m.PlanCache.Hit()
	m.PlanCache.Hit()
	m.PlanCache.Miss()
	m.Exec.Pruned(7)
	s := m.Snapshot()
	s.PlanCacheEntries = 1
	s.SnapshotVersion = 5
	s.BufferBytes = 4096
	return s
}

// TestWritePromGolden pins the Prometheus text exposition for a counter, a
// gauge and the latency histogram — the scrape format is a public surface.
func TestWritePromGolden(t *testing.T) {
	var sb strings.Builder
	WriteProm(&sb, fixtureSnapshot())
	out := sb.String()

	for _, want := range []string{
		"# HELP taster_queries_total Queries served successfully.\n# TYPE taster_queries_total counter\ntaster_queries_total 3\n",
		"# TYPE taster_query_errors_total counter\ntaster_query_errors_total 1\n",
		"# TYPE taster_plan_cache_entries gauge\ntaster_plan_cache_entries 1\n",
		"taster_snapshot_version 5\n",
		"taster_buffer_bytes 4096\n",
		"taster_plan_cache_hits_total 2\n",
		"taster_plan_cache_misses_total 1\n",
		"taster_exec_pruned_partitions_total 7\n",
		// Histogram: cumulative le-buckets. 0.0002 ≤ 0.00025; both 0.003
		// observations land in le=0.005; buckets are cumulative from there.
		"# TYPE taster_query_latency_seconds histogram\n",
		"taster_query_latency_seconds_bucket{le=\"0.0001\"} 0\n",
		"taster_query_latency_seconds_bucket{le=\"0.00025\"} 1\n",
		"taster_query_latency_seconds_bucket{le=\"0.0025\"} 1\n",
		"taster_query_latency_seconds_bucket{le=\"0.005\"} 3\n",
		"taster_query_latency_seconds_bucket{le=\"60\"} 3\n",
		"taster_query_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		// Sum is the exact float64 accumulation 0.0002+0.003+0.003 in
		// shortest round-trip form.
		"taster_query_latency_seconds_sum 0.006200000000000001\n",
		"taster_query_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q\nfull output:\n%s", want, out)
		}
	}

	// Every family appears exactly once, in the fixed Families order.
	var prev int
	for _, f := range fixtureSnapshot().Families() {
		idx := strings.Index(out, "# HELP "+f.Name+" ")
		if idx < 0 {
			t.Fatalf("family %s missing from output", f.Name)
		}
		if idx < prev {
			t.Fatalf("family %s out of order", f.Name)
		}
		prev = idx
	}
}

// TestWriteVars checks the expvar JSON surface parses and carries the same
// numbers as the snapshot.
func TestWriteVars(t *testing.T) {
	var sb strings.Builder
	WriteVars(&sb, fixtureSnapshot())
	var vars map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &vars); err != nil {
		t.Fatalf("WriteVars output is not valid JSON: %v", err)
	}
	if got := vars["taster_queries_total"].(float64); got != 3 {
		t.Errorf("taster_queries_total = %v, want 3", got)
	}
	hist, ok := vars["taster_query_latency_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("taster_query_latency_seconds is %T, want object", vars["taster_query_latency_seconds"])
	}
	if got := hist["count"].(float64); got != 3 {
		t.Errorf("histogram count = %v, want 3", got)
	}
	if _, ok := hist["p99"]; !ok {
		t.Error("histogram JSON missing p99")
	}
	buckets, ok := hist["buckets"].(map[string]any)
	if !ok {
		t.Fatalf("histogram buckets missing")
	}
	if got := buckets["0.005"].(float64); got != 2 {
		t.Errorf("bucket le=0.005 = %v, want 2 (non-cumulative per-bucket counts)", got)
	}
}

// TestHandlerRoutes drives the mux end to end: content types, the index,
// and 404s for unknown paths.
func TestHandlerRoutes(t *testing.T) {
	h := Handler(fixtureSnapshot)

	for _, tc := range []struct {
		path, wantType, wantBody string
		wantCode                 int
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8", "taster_queries_total 3", 200},
		{"/debug/vars", "application/json; charset=utf-8", "taster_queries_total", 200},
		{"/", "", "metrics endpoints", 200},
		{"/nope", "", "", 404},
	} {
		req := httptest.NewRequest("GET", tc.path, nil)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != tc.wantCode {
			t.Errorf("%s: status %d, want %d", tc.path, rr.Code, tc.wantCode)
			continue
		}
		if tc.wantType != "" && rr.Header().Get("Content-Type") != tc.wantType {
			t.Errorf("%s: Content-Type %q, want %q", tc.path, rr.Header().Get("Content-Type"), tc.wantType)
		}
		if tc.wantBody != "" && !strings.Contains(rr.Body.String(), tc.wantBody) {
			t.Errorf("%s: body missing %q", tc.path, tc.wantBody)
		}
	}
}
