// Package httpexport serves an obs.MetricsSnapshot over HTTP: Prometheus
// text exposition format on /metrics and an expvar-compatible JSON dump on
// /debug/vars. It is the seed of tasterd's admin port — tasterbench and
// tastercli mount it behind their -metrics-addr flags.
//
// The handler pulls a fresh snapshot per request from an injected source
// function, so it composes with any snapshot provider: a single engine
// (Engine.MetricsSnapshot), a shared registry spanning several engines
// (Metrics.Snapshot), or a test fixture.
package httpexport

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"github.com/tasterdb/taster/internal/obs"
)

// Handler returns an http.Handler serving the snapshot source: Prometheus
// text on /metrics, expvar-style JSON on /debug/vars, and a plain index on /.
func Handler(source func() obs.MetricsSnapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, source())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteVars(w, source())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "taster metrics endpoints: /metrics (Prometheus text), /debug/vars (expvar JSON)")
	})
	return mux
}

// WriteProm renders the snapshot in Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers per family, cumulative le-buckets plus
// _sum and _count for histograms. Output order is fixed by
// MetricsSnapshot.Families, so the format is golden-testable.
func WriteProm(w io.Writer, s obs.MetricsSnapshot) {
	for _, f := range s.Families() {
		fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help)
		switch f.Kind {
		case obs.KindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", f.Name, f.Name, f.Value)
		case obs.KindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", f.Name, f.Name, f.Value)
		case obs.KindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", f.Name)
			var cum int64
			for i, bound := range f.Hist.Bounds {
				if i < len(f.Hist.Counts) {
					cum += f.Hist.Counts[i]
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.Name, promFloat(bound), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.Name, f.Hist.Count)
			fmt.Fprintf(w, "%s_sum %s\n", f.Name, promFloat(f.Hist.Sum))
			fmt.Fprintf(w, "%s_count %d\n", f.Name, f.Hist.Count)
		}
	}
}

// promFloat formats a float the way Prometheus clients do: shortest
// round-trip representation, no exponent for the bucket ranges we use.
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteVars renders the snapshot as an expvar-compatible JSON object: one
// key per family, scalars as numbers, histograms as objects carrying count,
// sum, estimated p50/p90/p99 and the per-bucket counts keyed by upper bound.
func WriteVars(w io.Writer, s obs.MetricsSnapshot) {
	vars := make(map[string]any)
	for _, f := range s.Families() {
		switch f.Kind {
		case obs.KindCounter, obs.KindGauge:
			vars[f.Name] = f.Value
		case obs.KindHistogram:
			buckets := make(map[string]int64, len(f.Hist.Bounds)+1)
			for i, bound := range f.Hist.Bounds {
				if i < len(f.Hist.Counts) {
					buckets[promFloat(bound)] = f.Hist.Counts[i]
				}
			}
			if n := len(f.Hist.Counts); n > 0 {
				buckets["+Inf"] = f.Hist.Counts[n-1]
			}
			vars[f.Name] = map[string]any{
				"count":   f.Hist.Count,
				"sum":     f.Hist.Sum,
				"p50":     f.Hist.Quantile(0.50),
				"p90":     f.Hist.Quantile(0.90),
				"p99":     f.Hist.Quantile(0.99),
				"buckets": buckets,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(vars)
}
