package obs

// Metrics is the engine-wide registry: every counter the serving path,
// tuning service, pool, disk tier and executor write. One registry may be
// shared by several engines (the bench harness restarts engines per
// configuration but keeps one registry alive for the export surface); all
// fields are independently atomic, so cross-engine sharing needs no
// coordination.
//
// Construct with NewMetrics — the zero value's histograms have no buckets
// and ignore observations.
type Metrics struct {
	// PlanCache, Pool, Exec and Disk are the hook groups leaf packages
	// receive as pointers (each is nil-safe, so an engine without metrics
	// threads nil and every hook call is one pointer test).
	PlanCache PlanCacheObs
	Pool      PoolObs
	Exec      ExecObs
	Disk      DiskObs

	// Serving path.
	QueriesServed       Counter   // Execute calls that returned a result
	QueryErrors         Counter   // Execute calls that returned an error
	QueryLatencySeconds Histogram // per-query wall latency (Wall clock only)
	IngestBatches       Counter   // Ingest calls accepted
	IngestRows          Counter   // rows appended across all ingests

	// Tuning service.
	TuningRounds       Counter   // batched rounds run (inline rounds included)
	TuningShed         Counter   // observations dropped at a full queue
	TuningQueueDepth   Gauge     // queue occupancy after the last enqueue
	TuningBatchSize    Histogram // observations folded per round
	TuningRoundSeconds Histogram // wall time per round (Wall clock only)

	// Snapshot publishes.
	SnapshotPublishes    Counter // tuning snapshots swapped in
	SnapshotIdentCarries Counter // publishes that carried the planning ident forward
}

// NewMetrics returns a ready registry with every histogram initialized.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.QueryLatencySeconds.init(latencyBuckets)
	m.TuningBatchSize.init(batchSizeBuckets)
	m.TuningRoundSeconds.init(latencyBuckets)
	return m
}

// PlanCacheObs counts the serving fast path's plan-set cache traffic. The
// cache increments these inside its own mutex; the counters stay atomic so
// a shared registry never couples two engines' cache locks.
type PlanCacheObs struct {
	Hits      Counter
	Misses    Counter
	Evictions Counter
}

// Hit records a cache hit.
func (o *PlanCacheObs) Hit() {
	if o != nil {
		o.Hits.Inc()
	}
}

// Miss records a cache miss.
func (o *PlanCacheObs) Miss() {
	if o != nil {
		o.Misses.Inc()
	}
}

// Evict records an LRU eviction.
func (o *PlanCacheObs) Evict() {
	if o != nil {
		o.Evictions.Inc()
	}
}

// PoolObs counts the vector pool's batch traffic. Gets/Puts are counted at
// batch granularity (the per-vector fast path stays atomic-free); Misses
// count fresh allocations on any pool slow path — vectors, selection
// buffers or batch headers the free lists could not serve — where the
// allocation already dwarfs the atomic add.
type PoolObs struct {
	BatchGets   Counter
	BatchPuts   Counter
	AllocMisses Counter
}

// Get records one pooled-batch acquisition.
func (o *PoolObs) Get() {
	if o != nil {
		o.BatchGets.Inc()
	}
}

// Put records one pooled-batch release back to the free lists.
func (o *PoolObs) Put() {
	if o != nil {
		o.BatchPuts.Inc()
	}
}

// Miss records a fresh allocation the pool could not serve.
func (o *PoolObs) Miss() {
	if o != nil {
		o.AllocMisses.Inc()
	}
}

// ExecObs counts executor dispatch decisions: how many filter batches ran
// on the compiled selection-vector kernels vs the interpreted fallback, and
// how many partitions zone-map pruning skipped. Counters only — the
// executor's outputs must not depend on the metrics layer, and these are
// written from morsel workers concurrently (atomics make that safe).
type ExecObs struct {
	KernelFilterBatches   Counter
	FallbackFilterBatches Counter
	PrunedPartitions      Counter
}

// Kernel records one filter batch dispatched to the compiled kernels.
func (o *ExecObs) Kernel() {
	if o != nil {
		o.KernelFilterBatches.Inc()
	}
}

// Fallback records one filter batch on the interpreted Eval path.
func (o *ExecObs) Fallback() {
	if o != nil {
		o.FallbackFilterBatches.Inc()
	}
}

// Pruned records n partitions skipped by zone-map pruning.
func (o *ExecObs) Pruned(n int64) {
	if o != nil && n > 0 {
		o.PrunedPartitions.Add(n)
	}
}

// DiskObs counts the persistent warehouse tier's traffic: spills (item
// writes), fault-ins (item reads), manifest checkpoints, and payload bytes
// both ways.
type DiskObs struct {
	Spills         Counter
	FaultIns       Counter
	ManifestWrites Counter
	WriteBytes     Counter
	ReadBytes      Counter
}

// ItemWrite records one synopsis payload spilled (n payload bytes).
func (o *DiskObs) ItemWrite(n int64) {
	if o != nil {
		o.Spills.Inc()
		o.WriteBytes.Add(n)
	}
}

// ItemRead records one synopsis payload faulted in (n payload bytes).
func (o *DiskObs) ItemRead(n int64) {
	if o != nil {
		o.FaultIns.Inc()
		o.ReadBytes.Add(n)
	}
}

// Manifest records one manifest checkpoint (n manifest bytes).
func (o *DiskObs) Manifest(n int64) {
	if o != nil {
		o.ManifestWrites.Inc()
		o.WriteBytes.Add(n)
	}
}

// Snapshot captures every registered series. Engine-level gauges that live
// outside the registry (warehouse occupancy, plan-cache entries, snapshot
// version) are zero here; Engine.MetricsSnapshot fills them in.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		QueriesServed:         m.QueriesServed.Value(),
		QueryErrors:           m.QueryErrors.Value(),
		QueryLatencySeconds:   m.QueryLatencySeconds.Snapshot(),
		IngestBatches:         m.IngestBatches.Value(),
		IngestRows:            m.IngestRows.Value(),
		PlanCacheHits:         m.PlanCache.Hits.Value(),
		PlanCacheMisses:       m.PlanCache.Misses.Value(),
		PlanCacheEvictions:    m.PlanCache.Evictions.Value(),
		TuningRounds:          m.TuningRounds.Value(),
		TuningShed:            m.TuningShed.Value(),
		TuningQueueDepth:      m.TuningQueueDepth.Value(),
		TuningBatchSize:       m.TuningBatchSize.Snapshot(),
		TuningRoundSeconds:    m.TuningRoundSeconds.Snapshot(),
		SnapshotPublishes:     m.SnapshotPublishes.Value(),
		SnapshotIdentCarries:  m.SnapshotIdentCarries.Value(),
		WarehouseSpills:       m.Disk.Spills.Value(),
		WarehouseFaultIns:     m.Disk.FaultIns.Value(),
		ManifestWrites:        m.Disk.ManifestWrites.Value(),
		DiskWriteBytes:        m.Disk.WriteBytes.Value(),
		DiskReadBytes:         m.Disk.ReadBytes.Value(),
		PoolBatchGets:         m.Pool.BatchGets.Value(),
		PoolBatchPuts:         m.Pool.BatchPuts.Value(),
		PoolAllocMisses:       m.Pool.AllocMisses.Value(),
		KernelFilterBatches:   m.Exec.KernelFilterBatches.Value(),
		FallbackFilterBatches: m.Exec.FallbackFilterBatches.Value(),
		PrunedPartitions:      m.Exec.PrunedPartitions.Value(),
	}
}

// MetricsSnapshot is a point-in-time copy of every engine metric — the one
// read surface of the layer, consumed by the exporters and tests. Fields
// marked (engine) are instantaneous gauges Engine.MetricsSnapshot samples
// from live engine state rather than the registry.
type MetricsSnapshot struct {
	QueriesServed       int64
	QueryErrors         int64
	QueryLatencySeconds HistogramSnapshot
	IngestBatches       int64
	IngestRows          int64

	PlanCacheHits      int64
	PlanCacheMisses    int64
	PlanCacheEvictions int64
	PlanCacheEntries   int64 // (engine)

	TuningRounds       int64
	TuningShed         int64
	TuningQueueDepth   int64
	TuningBatchSize    HistogramSnapshot
	TuningRoundSeconds HistogramSnapshot

	SnapshotPublishes    int64
	SnapshotIdentCarries int64
	SnapshotVersion      int64 // (engine)

	WarehouseSpills   int64
	WarehouseFaultIns int64
	ManifestWrites    int64
	DiskWriteBytes    int64
	DiskReadBytes     int64
	BufferBytes       int64 // (engine)
	WarehouseBytes    int64 // (engine)

	PoolBatchGets   int64
	PoolBatchPuts   int64
	PoolAllocMisses int64

	KernelFilterBatches   int64
	FallbackFilterBatches int64
	PrunedPartitions      int64
}

// Kind distinguishes exported series types.
type Kind uint8

// Series kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Family is one exported series: a name in Prometheus vocabulary, help
// text, and either a scalar value or a histogram snapshot.
type Family struct {
	Name  string
	Help  string
	Kind  Kind
	Value int64
	Hist  HistogramSnapshot
}

// Families enumerates the snapshot as exportable series, in a fixed order
// (exporter output is part of the golden-tested surface).
func (s MetricsSnapshot) Families() []Family {
	c := func(name, help string, v int64) Family {
		return Family{Name: name, Help: help, Kind: KindCounter, Value: v}
	}
	g := func(name, help string, v int64) Family {
		return Family{Name: name, Help: help, Kind: KindGauge, Value: v}
	}
	h := func(name, help string, hs HistogramSnapshot) Family {
		return Family{Name: name, Help: help, Kind: KindHistogram, Hist: hs}
	}
	return []Family{
		c("taster_queries_total", "Queries served successfully.", s.QueriesServed),
		c("taster_query_errors_total", "Queries that returned an error.", s.QueryErrors),
		h("taster_query_latency_seconds", "Per-query wall latency (zero under a frozen clock).", s.QueryLatencySeconds),
		c("taster_ingest_batches_total", "Ingest calls accepted.", s.IngestBatches),
		c("taster_ingest_rows_total", "Rows appended across all ingests.", s.IngestRows),
		c("taster_plan_cache_hits_total", "Plan-cache hits on the serving fast path.", s.PlanCacheHits),
		c("taster_plan_cache_misses_total", "Plan-cache misses (cold candidate enumeration).", s.PlanCacheMisses),
		c("taster_plan_cache_evictions_total", "Plan-cache LRU evictions.", s.PlanCacheEvictions),
		g("taster_plan_cache_entries", "Plan-cache entries currently resident.", s.PlanCacheEntries),
		c("taster_tuning_rounds_total", "Tuning rounds run (batched and inline).", s.TuningRounds),
		c("taster_tuning_observations_shed_total", "Observations dropped at a full tuning queue.", s.TuningShed),
		g("taster_tuning_queue_depth", "Observation-queue occupancy after the last enqueue.", s.TuningQueueDepth),
		h("taster_tuning_batch_size", "Observations folded per tuning round.", s.TuningBatchSize),
		h("taster_tuning_round_seconds", "Wall time per tuning round (zero under a frozen clock).", s.TuningRoundSeconds),
		c("taster_snapshot_publishes_total", "Tuning snapshots published.", s.SnapshotPublishes),
		c("taster_snapshot_ident_carries_total", "Publishes that carried the planning identity forward.", s.SnapshotIdentCarries),
		g("taster_snapshot_version", "Version of the currently published tuning snapshot.", s.SnapshotVersion),
		c("taster_warehouse_spills_total", "Synopsis payloads written to the disk tier.", s.WarehouseSpills),
		c("taster_warehouse_faultins_total", "Synopsis payloads faulted back from the disk tier.", s.WarehouseFaultIns),
		c("taster_warehouse_manifest_writes_total", "Manifest checkpoints written.", s.ManifestWrites),
		c("taster_disk_write_bytes_total", "Payload and manifest bytes written to the disk tier.", s.DiskWriteBytes),
		c("taster_disk_read_bytes_total", "Payload bytes read from the disk tier.", s.DiskReadBytes),
		g("taster_buffer_bytes", "In-memory synopsis buffer occupancy.", s.BufferBytes),
		g("taster_warehouse_bytes", "Warehouse tier occupancy.", s.WarehouseBytes),
		c("taster_pool_batch_gets_total", "Pooled batches acquired from the vector pool.", s.PoolBatchGets),
		c("taster_pool_batch_puts_total", "Pooled batches released back to the vector pool.", s.PoolBatchPuts),
		c("taster_pool_alloc_misses_total", "Fresh allocations the pool free lists could not serve.", s.PoolAllocMisses),
		c("taster_exec_kernel_filter_batches_total", "Filter batches dispatched to the compiled selection-vector kernels.", s.KernelFilterBatches),
		c("taster_exec_fallback_filter_batches_total", "Filter batches on the interpreted Eval fallback.", s.FallbackFilterBatches),
		c("taster_exec_pruned_partitions_total", "Partitions skipped by zone-map pruning.", s.PrunedPartitions),
	}
}
