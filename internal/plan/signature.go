package plan

import (
	"sort"
	"strings"

	"github.com/tasterdb/taster/internal/expr"
)

// Signature is the canonical identity of a logical subplan: "each synopsis
// (candidate or materialized) corresponds to a unique logical subplan – the
// one of which the results it summarizes" (paper §IV-A). Two subplans with
// equal signatures compute the same relation up to row order.
type Signature struct {
	Tables    []string // sorted base table names
	JoinPreds []string // sorted canonical join predicates "a.x=b.y"
	Filters   []string // sorted canonical filter conjuncts
	Output    []string // sorted output column names
}

// SignatureOf derives the signature of a subplan by walking it. Projections
// restrict Output; filters and joins accumulate predicates.
func SignatureOf(n Node) Signature {
	var sig Signature
	collect(n, &sig)
	out := n.Schema().Names()
	sig.Output = expr.DedupCols(out)
	sort.Strings(sig.Tables)
	sort.Strings(sig.JoinPreds)
	sort.Strings(sig.Filters)
	return sig
}

func collect(n Node, sig *Signature) {
	switch t := n.(type) {
	case *Scan:
		sig.Tables = append(sig.Tables, t.Table.Name)
	case *SynopsisScan:
		sig.Tables = append(sig.Tables, "synopsis:"+t.Label)
	case *Filter:
		for _, c := range expr.Conjuncts(t.Pred) {
			sig.Filters = append(sig.Filters, c.String())
		}
	case *Join:
		sig.JoinPreds = append(sig.JoinPreds, t.PredStrings()...)
	}
	for _, c := range n.Children() {
		collect(c, sig)
	}
}

// Key returns a deterministic string form usable as a map key.
func (s Signature) Key() string {
	return "T[" + strings.Join(s.Tables, ",") + "] J[" + strings.Join(s.JoinPreds, ",") +
		"] F[" + strings.Join(s.Filters, ",") + "] O[" + strings.Join(s.Output, ",") + "]"
}

// IndexKey returns the coarse lookup key the metadata store indexes
// synopses under: base relations plus join attributes (paper §IV-A: "all
// candidate synopses ... are indexed using their base relations as the key.
// In the case of joins, the join attribute(s) are also included").
func (s Signature) IndexKey() string {
	return "T[" + strings.Join(s.Tables, ",") + "] J[" + strings.Join(s.JoinPreds, ",") + "]"
}

// SameRelationsAndJoins reports whether two signatures cover the same base
// tables with identical join predicates — the non-negotiable part of
// subsumption (filters and projections can be compensated; tables and joins
// cannot).
func (s Signature) SameRelationsAndJoins(o Signature) bool {
	return eqSlices(s.Tables, o.Tables) && eqSlices(s.JoinPreds, o.JoinPreds)
}

func eqSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FilterPredicate reconstructs the conjunction of all filters under n
// (nil when the subplan has no filters).
func FilterPredicate(n Node) expr.Expr {
	var preds []expr.Expr
	Walk(n, func(m Node) {
		if f, ok := m.(*Filter); ok {
			preds = append(preds, expr.Conjuncts(f.Pred)...)
		}
	})
	return expr.AndAll(preds)
}

// OutputSuperset reports whether candidate's output columns cover all of
// required (after sorting/dedup). Used for projection subsumption.
func OutputSuperset(candidate, required []string) bool {
	have := make(map[string]bool, len(candidate))
	for _, c := range candidate {
		have[c] = true
	}
	for _, r := range required {
		if !have[r] {
			return false
		}
	}
	return true
}

// ColSuperset reports whether sup ⊇ sub treating both as sets. Stratification
// matching uses it (paper §IV-A: "the set of stratification attributes of
// the stored synopsis is a superset of the stratification attributes of the
// subplan").
func ColSuperset(sup, sub []string) bool { return OutputSuperset(sup, sub) }
