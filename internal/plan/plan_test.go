package plan

import (
	"strings"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

func mkTable(name string, cols ...string) *storage.Table {
	schema := make(storage.Schema, len(cols))
	for i, c := range cols {
		schema[i] = storage.Col{Name: name + "." + c, Typ: storage.Int64}
	}
	b := storage.NewBuilder(name, schema)
	for r := 0; r < 10; r++ {
		for i := range cols {
			b.Int(i, int64(r+i))
		}
	}
	return b.Build(2)
}

func samplePlan() (*Aggregate, *storage.Table, *storage.Table) {
	r := mkTable("r", "x", "y", "v")
	s := mkTable("s", "x", "z")
	j := &Join{
		Left: &Filter{
			Child: &Scan{Table: r},
			Pred:  &expr.Cmp{Op: expr.GT, L: &expr.Col{Name: "r.y"}, R: expr.Int(1)},
		},
		Right:     &Scan{Table: s},
		LeftKeys:  []string{"r.x"},
		RightKeys: []string{"s.x"},
	}
	agg := &Aggregate{
		Child:   j,
		GroupBy: []string{"s.z"},
		Aggs:    []AggSpec{{Kind: stats.Sum, Col: "r.v"}},
	}
	return agg, r, s
}

func TestSchemas(t *testing.T) {
	agg, r, s := samplePlan()
	if got := agg.Schema(); len(got) != 2 || got[0].Name != "s.z" || got[1].Name != "sum_r_v" {
		t.Fatalf("aggregate schema = %v", got)
	}
	if got := agg.Schema()[1].Typ; got != storage.Float64 {
		t.Fatalf("aggregate output type = %v", got)
	}
	j := agg.Child.(*Join)
	if len(j.Schema()) != len(r.Schema())+len(s.Schema()) {
		t.Fatal("join schema must concat inputs")
	}
	f := j.Left.(*Filter)
	if !f.Schema().Equal(r.Schema()) {
		t.Fatal("filter schema must pass through")
	}
}

func TestProjectTypeResolution(t *testing.T) {
	r := mkTable("r", "x", "v")
	p, err := NewProject(&Scan{Table: r}, []NamedExpr{
		{Name: "double_v", E: &expr.Bin{Op: expr.Mul, L: &expr.Col{Name: "r.v"}, R: expr.Int(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema()[0].Typ != storage.Int64 || p.Schema()[0].Name != "double_v" {
		t.Fatalf("project schema = %v", p.Schema())
	}
	_, err = NewProject(&Scan{Table: r}, []NamedExpr{
		{Name: "bad", E: &expr.Col{Name: "nope"}},
	})
	if err == nil {
		t.Fatal("want error for unknown column")
	}
}

func TestSynopsisOpSchemaAddsWeight(t *testing.T) {
	r := mkTable("r", "x")
	op := &SynopsisOp{Child: &Scan{Table: r}, Kind: UniformSample, P: 0.1}
	sc := op.Schema()
	if sc[len(sc)-1].Name != synopses.WeightCol {
		t.Fatalf("synopsis op schema = %v", sc)
	}
}

func TestSignatureCanonical(t *testing.T) {
	agg, _, _ := samplePlan()
	sig := SignatureOf(agg.Child)
	if len(sig.Tables) != 2 || sig.Tables[0] != "r" || sig.Tables[1] != "s" {
		t.Fatalf("tables = %v", sig.Tables)
	}
	if len(sig.JoinPreds) != 1 || sig.JoinPreds[0] != "r.x=s.x" {
		t.Fatalf("join preds = %v", sig.JoinPreds)
	}
	if len(sig.Filters) != 1 || sig.Filters[0] != "r.y > 1" {
		t.Fatalf("filters = %v", sig.Filters)
	}
	// Flipped join side must produce the same canonical predicate.
	agg2, _, _ := samplePlan()
	j2 := agg2.Child.(*Join)
	flipped := &Join{Left: j2.Right, Right: j2.Left, LeftKeys: j2.RightKeys, RightKeys: j2.LeftKeys}
	sig2 := SignatureOf(flipped)
	if sig2.JoinPreds[0] != sig.JoinPreds[0] {
		t.Fatalf("flipped join pred %q != %q", sig2.JoinPreds[0], sig.JoinPreds[0])
	}
	if !sig.SameRelationsAndJoins(sig2) {
		t.Fatal("same relations+joins must match")
	}
	if sig.Key() != sig2.Key() {
		t.Fatal("commuted joins must canonicalize to the same key")
	}
	if sig.IndexKey() != sig2.IndexKey() {
		t.Fatal("index keys must match for same tables+joins")
	}
}

func TestFilterPredicateReconstruction(t *testing.T) {
	agg, _, _ := samplePlan()
	pred := FilterPredicate(agg)
	if pred == nil || pred.String() != "r.y > 1" {
		t.Fatalf("pred = %v", pred)
	}
	if FilterPredicate(&Scan{Table: mkTable("t", "a")}) != nil {
		t.Fatal("scan has no filters")
	}
}

func TestOutputAndColSupersets(t *testing.T) {
	if !OutputSuperset([]string{"a", "b", "c"}, []string{"a", "c"}) {
		t.Fatal("superset")
	}
	if OutputSuperset([]string{"a"}, []string{"a", "b"}) {
		t.Fatal("not superset")
	}
	if !ColSuperset([]string{"x"}, nil) {
		t.Fatal("empty set is subset of anything")
	}
}

func TestBaseTablesAndWalk(t *testing.T) {
	agg, _, _ := samplePlan()
	tables := BaseTables(agg)
	if len(tables) != 2 || tables[0] != "r" || tables[1] != "s" {
		t.Fatalf("base tables = %v", tables)
	}
	count := 0
	Walk(agg, func(Node) { count++ })
	if count != 5 { // agg, join, filter, scan r, scan s
		t.Fatalf("walk visited %d nodes", count)
	}
}

func TestFormatShowsTree(t *testing.T) {
	agg, _, _ := samplePlan()
	out := Format(agg)
	if !strings.Contains(out, "Aggregate") || !strings.Contains(out, "  Join") ||
		!strings.Contains(out, "    Filter") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestAggSpecAlias(t *testing.T) {
	a := AggSpec{Kind: stats.Sum, Col: "r.v"}
	if a.DefaultAlias() != "sum_r_v" {
		t.Fatalf("alias = %q", a.DefaultAlias())
	}
	b := AggSpec{Kind: stats.Count, Alias: "n"}
	if b.DefaultAlias() != "n" {
		t.Fatalf("alias = %q", b.DefaultAlias())
	}
	c := AggSpec{Kind: stats.Count}
	if c.DefaultAlias() != "count_star" {
		t.Fatalf("alias = %q", c.DefaultAlias())
	}
}

func TestSketchJoinSchema(t *testing.T) {
	r := mkTable("r", "x", "g")
	sj := &SketchJoin{
		Probe:     &Scan{Table: r},
		ProbeKeys: []string{"r.x"},
		BuildKeys: []string{"f.x"},
		AggCol:    "f.v",
		GroupBy:   []string{"r.g"},
		Aggs:      []AggSpec{{Kind: stats.Count}, {Kind: stats.Sum, Col: "f.v"}},
	}
	sc := sj.Schema()
	if len(sc) != 3 || sc[0].Name != "r.g" || sc[0].Typ != storage.Int64 {
		t.Fatalf("sketch join schema = %v", sc)
	}
	if len(sj.Children()) != 1 {
		t.Fatal("children without build")
	}
	sj.Build = &Scan{Table: r}
	if len(sj.Children()) != 2 {
		t.Fatal("children with build")
	}
}

func TestSynopsisScanString(t *testing.T) {
	smp := &synopses.Sample{Rows: mkTable("samp", "a"), Strategy: "uniform"}
	ss := &SynopsisScan{SynopsisID: 7, Sample: smp, Label: "r"}
	if !strings.Contains(ss.String(), "#7") {
		t.Fatalf("string = %q", ss.String())
	}
	if !ss.Schema().Equal(smp.Rows.Schema()) {
		t.Fatal("schema must come from sample")
	}
}
