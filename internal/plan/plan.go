// Package plan defines the logical query plans Taster's planner operates on,
// including the synopsis operators the paper promotes to "first-class
// citizens" of planning (§IV), and the canonical subplan signatures used to
// identify and match synopses across queries.
package plan

import (
	"fmt"
	"strings"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// Node is a logical plan operator. Nodes are immutable after construction;
// rewrites build new trees sharing subtrees.
type Node interface {
	// Schema returns the output schema of the operator.
	Schema() storage.Schema
	// Children returns the input operators.
	Children() []Node
	// String renders one line for plan display.
	String() string
}

// Scan reads a base table.
type Scan struct {
	Table *storage.Table
}

// Schema implements Node.
func (s *Scan) Schema() storage.Schema { return s.Table.Schema() }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// String implements Node.
func (s *Scan) String() string { return "Scan(" + s.Table.Name + ")" }

// Filter keeps rows satisfying Pred.
type Filter struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() storage.Schema { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// String implements Node.
func (f *Filter) String() string { return "Filter(" + f.Pred.String() + ")" }

// NamedExpr pairs a projection expression with its output name.
type NamedExpr struct {
	Name string
	E    expr.Expr
}

// Project computes expressions over its input.
type Project struct {
	Child Node
	Exprs []NamedExpr

	schema storage.Schema // resolved lazily
}

// NewProject builds a projection, resolving output types against the child.
func NewProject(child Node, exprs []NamedExpr) (*Project, error) {
	schema := make(storage.Schema, 0, len(exprs))
	in := child.Schema()
	for _, ne := range exprs {
		t, err := ne.E.Type(in)
		if err != nil {
			return nil, fmt.Errorf("plan: project %s: %w", ne.Name, err)
		}
		schema = append(schema, storage.Col{Name: ne.Name, Typ: t})
	}
	return &Project{Child: child, Exprs: exprs, schema: schema}, nil
}

// Schema implements Node.
func (p *Project) Schema() storage.Schema { return p.schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// String implements Node.
func (p *Project) String() string {
	parts := make([]string, len(p.Exprs))
	for i, ne := range p.Exprs {
		parts[i] = ne.E.String() + " AS " + ne.Name
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Join is an inner equi-join on LeftKeys[i] = RightKeys[i].
type Join struct {
	Left, Right Node
	LeftKeys    []string
	RightKeys   []string
}

// Schema implements Node.
func (j *Join) Schema() storage.Schema { return j.Left.Schema().Concat(j.Right.Schema()) }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// String implements Node.
func (j *Join) String() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = j.LeftKeys[i] + " = " + j.RightKeys[i]
	}
	return "Join(" + strings.Join(parts, " AND ") + ")"
}

// PredStrings returns the canonical, order-independent join predicate
// strings ("a.x=b.y" with the lexically smaller side first).
func (j *Join) PredStrings() []string {
	out := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		l, r := j.LeftKeys[i], j.RightKeys[i]
		if r < l {
			l, r = r, l
		}
		out[i] = l + "=" + r
	}
	return out
}

// AggSpec is one aggregate in an Aggregate node.
type AggSpec struct {
	Kind  stats.AggKind
	Col   string // aggregated column; "" for COUNT(*)
	Alias string
}

// DefaultAlias returns a name like "sum_l_qty" when Alias is empty.
func (a AggSpec) DefaultAlias() string {
	if a.Alias != "" {
		return a.Alias
	}
	col := a.Col
	if col == "" {
		col = "star"
	}
	col = strings.ReplaceAll(col, ".", "_")
	return strings.ToLower(a.Kind.String()) + "_" + col
}

// Aggregate groups by GroupBy columns and computes Aggs. When its input
// carries the sampler weight column, the physical operator automatically
// switches to Horvitz-Thompson estimation.
type Aggregate struct {
	Child   Node
	GroupBy []string
	Aggs    []AggSpec
}

// Schema implements Node: group-by columns followed by aggregate outputs
// (all Float64: approximate aggregates are real-valued).
func (a *Aggregate) Schema() storage.Schema {
	in := a.Child.Schema()
	out := make(storage.Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		t := storage.Int64
		if i := in.Index(g); i >= 0 {
			t = in[i].Typ
		}
		out = append(out, storage.Col{Name: g, Typ: t})
	}
	for _, ag := range a.Aggs {
		out = append(out, storage.Col{Name: ag.DefaultAlias(), Typ: storage.Float64})
	}
	return out
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// String implements Node.
func (a *Aggregate) String() string {
	parts := make([]string, len(a.Aggs))
	for i, ag := range a.Aggs {
		col := ag.Col
		if col == "" {
			col = "*"
		}
		parts[i] = ag.Kind.String() + "(" + col + ")"
	}
	return "Aggregate(by=[" + strings.Join(a.GroupBy, ",") + "] " + strings.Join(parts, ", ") + ")"
}

// SynopsisKind enumerates the synopsis operator flavours.
type SynopsisKind uint8

// Synopsis flavours the planner injects.
const (
	UniformSample SynopsisKind = iota
	DistinctSample
	SketchJoinSynopsis
)

// String returns the flavour name.
func (k SynopsisKind) String() string {
	return [...]string{"uniform-sample", "distinct-sample", "sketch-join"}[k]
}

// SynopsisOp is the generic synopsis operator Γ^S injected below aggregators
// (paper §IV-A). It summarizes the output of Child. Whether the summary
// already exists (reuse) or will be built as a byproduct is decided later by
// the planner/tuner; the logical node carries the configuration only.
type SynopsisOp struct {
	Child     Node
	Kind      SynopsisKind
	P         float64  // sampling probability (samples)
	Delta     int      // minimum rows per stratum (distinct sample)
	StratCols []string // stratification attributes A, sorted
	Accuracy  stats.AccuracySpec
}

// Schema implements Node: sampler output carries the weight column.
func (s *SynopsisOp) Schema() storage.Schema {
	return synopses.SampleSchema(s.Child.Schema())
}

// Children implements Node.
func (s *SynopsisOp) Children() []Node { return []Node{s.Child} }

// String implements Node.
func (s *SynopsisOp) String() string {
	return fmt.Sprintf("Synopsis(%s p=%.4g δ=%d A=[%s])",
		s.Kind, s.P, s.Delta, strings.Join(s.StratCols, ","))
}

// SynopsisScan reads a materialized sample from the warehouse/buffer,
// replacing the whole subplan the sample summarizes.
type SynopsisScan struct {
	SynopsisID uint64
	Sample     *synopses.Sample
	// Label names the summarized subplan for display.
	Label string
	// InBuffer marks samples served from the in-memory buffer (no I/O cost).
	InBuffer bool
}

// Schema implements Node.
func (s *SynopsisScan) Schema() storage.Schema { return s.Sample.Rows.Schema() }

// Children implements Node.
func (s *SynopsisScan) Children() []Node { return nil }

// String implements Node.
func (s *SynopsisScan) String() string {
	return fmt.Sprintf("SynopsisScan(#%d %s)", s.SynopsisID, s.Label)
}

// SketchJoin replaces Join + Aggregate for eligible queries (paper §II,
// §IV-A): the build side is summarized into a count-min sketch keyed by the
// join key, and the probe side streams against it. Group-by columns must
// come from the probe side.
type SketchJoin struct {
	Probe     Node   // scanned side (dimension/filtered side)
	BuildDesc string // label of the summarized build subplan
	Sketch    *synopses.SketchJoin
	// SynopsisID links to the metadata store entry; 0 when the sketch is
	// built inline during this query.
	SynopsisID uint64
	// Build is the subplan to summarize when Sketch must be built now.
	Build     Node
	ProbeKeys []string // join key columns on the probe side
	BuildKeys []string // join key columns on the build side
	AggCol    string   // build-side aggregate column ("" = COUNT)
	GroupBy   []string // probe-side grouping columns
	Aggs      []AggSpec
	// CMWidth/CMDepth size the count-min planes when the sketch is built
	// inline. The planner derives the width from the build side's distinct
	// key count (collisions, not the εN bound, dominate point-query error
	// when keys are few); 0 falls back to accuracy-derived geometry.
	CMWidth int
	CMDepth int
}

// Schema implements Node: same shape as the Aggregate it replaces.
func (s *SketchJoin) Schema() storage.Schema {
	probe := s.Probe.Schema()
	out := make(storage.Schema, 0, len(s.GroupBy)+len(s.Aggs))
	for _, g := range s.GroupBy {
		t := storage.Int64
		if i := probe.Index(g); i >= 0 {
			t = probe[i].Typ
		}
		out = append(out, storage.Col{Name: g, Typ: t})
	}
	for _, ag := range s.Aggs {
		out = append(out, storage.Col{Name: ag.DefaultAlias(), Typ: storage.Float64})
	}
	return out
}

// Children implements Node.
func (s *SketchJoin) Children() []Node {
	if s.Build != nil {
		return []Node{s.Probe, s.Build}
	}
	return []Node{s.Probe}
}

// String implements Node.
func (s *SketchJoin) String() string {
	return fmt.Sprintf("SketchJoin(build=%s agg=%s)", s.BuildDesc, s.AggCol)
}

// Sort orders its input by the given columns (ascending unless Desc) and
// optionally truncates to Limit rows (0 = no limit). It sits above the
// aggregate in ORDER BY ... LIMIT queries.
type Sort struct {
	Child Node
	By    []string
	Desc  []bool
	Limit int
}

// Schema implements Node.
func (s *Sort) Schema() storage.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// String implements Node.
func (s *Sort) String() string {
	parts := make([]string, len(s.By))
	for i, b := range s.By {
		parts[i] = b
		if i < len(s.Desc) && s.Desc[i] {
			parts[i] += " DESC"
		}
	}
	out := "Sort(" + strings.Join(parts, ", ")
	if s.Limit > 0 {
		out += fmt.Sprintf(" LIMIT %d", s.Limit)
	}
	return out + ")"
}

// Format renders the plan tree indented, for logs and the REPL.
func Format(n Node) string {
	var sb strings.Builder
	var walk func(Node, int)
	walk = func(m Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(m.String())
		sb.WriteByte('\n')
		for _, c := range m.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Walk visits every node of the tree in pre-order.
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// BaseTables returns the sorted names of all base tables under n.
func BaseTables(n Node) []string {
	var out []string
	Walk(n, func(m Node) {
		if s, ok := m.(*Scan); ok {
			out = append(out, s.Table.Name)
		}
		if s, ok := m.(*SynopsisScan); ok {
			out = append(out, "synopsis:"+s.Label)
		}
	})
	return expr.DedupCols(out)
}
