package storage

import "math"

// ZoneMap summarizes one partition for predicate pruning: the per-column
// minimum and maximum value plus the row count. A scan consults the zone
// map before reading the partition — if the predicate provably rejects
// every value in [Min, Max], the partition is skipped without touching its
// payload. Zone maps are computed lazily on first use and cached on the
// (immutable) partition, so shared partitions compute them once across
// table versions.
//
//taster:immutable
type ZoneMap struct {
	Rows int
	// Min and Max hold the column bounds indexed by schema position. For an
	// empty partition both are zero Values and Rows is 0 (always prunable).
	// NaN rows are excluded from float bounds (NaN is unordered, so no
	// [Min, Max] interval can witness it) and recorded in HasNaN instead.
	Min, Max []Value
	// HasNaN marks float columns holding at least one NaN row. Such a row
	// lies outside the bounds yet satisfies any NE predicate (Go's != is
	// true for NaN against every constant), so pruning logic that reasons
	// "all rows equal Min==Max" must consult this flag.
	HasNaN []bool
}

// Zone returns the zone map of partition p, computing it on first call.
//
//taster:mutator sync.Once-guarded lazy cache: the zone map is built privately and cached once; the ZoneMap writes fill the fresh object before it is stored
func (t *Table) Zone(p int) *ZoneMap {
	part := t.parts[p]
	part.zoneOnce.Do(func() {
		z := &ZoneMap{
			Rows:   part.rows,
			Min:    make([]Value, len(part.cols)),
			Max:    make([]Value, len(part.cols)),
			HasNaN: make([]bool, len(part.cols)),
		}
		for i, c := range part.cols {
			z.Min[i], z.Max[i], z.HasNaN[i] = vectorBounds(c)
		}
		part.zone = z
	})
	return part.zone
}

// vectorBounds returns the min and max value of a vector under Value.Less
// ordering (numeric order for Int64/Float64, lexicographic for String,
// false<true for Bool), plus whether any float value is NaN. NaN values are
// skipped when forming the bounds — Value.Less cannot order them, so they
// would otherwise poison or silently escape the interval depending on
// position. Zero Values for an empty vector; NaN bounds (refused by every
// comparison downstream) for an all-NaN vector.
func vectorBounds(c *Vector) (mn, mx Value, hasNaN bool) {
	n := c.Len()
	seeded := false
	for i := 0; i < n; i++ {
		v := c.Get(i)
		if v.Typ == Float64 && math.IsNaN(v.F) {
			hasNaN = true
			continue
		}
		if !seeded {
			mn, mx, seeded = v, v, true
			continue
		}
		if v.Less(mn) {
			mn = v
		}
		if mx.Less(v) {
			mx = v
		}
	}
	if !seeded && n > 0 {
		mn, mx = c.Get(0), c.Get(0)
	}
	return mn, mx, hasNaN
}
