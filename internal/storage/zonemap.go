package storage

// ZoneMap summarizes one partition for predicate pruning: the per-column
// minimum and maximum value plus the row count. A scan consults the zone
// map before reading the partition — if the predicate provably rejects
// every value in [Min, Max], the partition is skipped without touching its
// payload. Zone maps are computed lazily on first use and cached on the
// (immutable) partition, so shared partitions compute them once across
// table versions.
type ZoneMap struct {
	Rows int
	// Min and Max hold the column bounds indexed by schema position. For an
	// empty partition both are zero Values and Rows is 0 (always prunable).
	Min, Max []Value
}

// Zone returns the zone map of partition p, computing it on first call.
func (t *Table) Zone(p int) *ZoneMap {
	part := t.parts[p]
	part.zoneOnce.Do(func() {
		z := &ZoneMap{
			Rows: part.rows,
			Min:  make([]Value, len(part.cols)),
			Max:  make([]Value, len(part.cols)),
		}
		for i, c := range part.cols {
			z.Min[i], z.Max[i] = vectorBounds(c)
		}
		part.zone = z
	})
	return part.zone
}

// vectorBounds returns the min and max value of a vector under Value.Less
// ordering (numeric order for Int64/Float64, lexicographic for String,
// false<true for Bool). Zero Values for an empty vector.
func vectorBounds(c *Vector) (mn, mx Value) {
	n := c.Len()
	if n == 0 {
		return Value{}, Value{}
	}
	mn, mx = c.Get(0), c.Get(0)
	for i := 1; i < n; i++ {
		v := c.Get(i)
		if v.Less(mn) {
			mn = v
		}
		if mx.Less(v) {
			mx = v
		}
	}
	return mn, mx
}
