package storage

import (
	"sync"

	"github.com/tasterdb/taster/internal/obs"
)

// VecPool recycles vector backing arrays and batch headers within one query
// execution. The hot serving path produces thousands of short-lived batches
// per query (filter gathers, join probe output, sampler output); without
// recycling every chunk allocates fresh slices, and under concurrent serving
// the allocator becomes the serialization point. The pool is type-segregated
// (one free list per vector type, so an int64 backing array is never reused
// as a float64 one) and sync.Pool-backed, so morsel workers may Get/Release
// concurrently without locking discipline of their own.
//
// Ownership contract: a batch obtained from GetBatch is owned by whoever
// holds it; ownership transfers downstream with the batch. The final
// consumer calls Release exactly once when it has copied out (or finished
// observing) every value. Release on a batch that did not come from a pool
// is a no-op, so consumers may release unconditionally — scans handing out
// table-owned storage are never recycled. Pooled memory must never escape
// past the result boundary: Batch.Row boxes values (copying scalars and
// string headers, which stay valid after the backing []string is reused), so
// result assembly is already a copy-out.
//
// All methods are nil-receiver safe: a nil *VecPool allocates fresh memory
// and ignores releases, keeping pool-free paths (tests, tools) identical in
// behaviour.
type VecPool struct {
	i64     sync.Pool // *Vector with Typ Int64
	f64     sync.Pool // *Vector with Typ Float64
	str     sync.Pool // *Vector with Typ String
	b       sync.Pool // *Vector with Typ Bool
	batches sync.Pool // *Batch with Vecs emptied
	sels    sync.Pool // *[]int32 selection-vector scratch

	// Obs counts pool traffic: batch gets/puts at batch granularity and
	// allocation misses on the slow paths only, so the hot reuse path pays a
	// single nil test. Write-only, nil-safe, never consulted by pool logic.
	Obs *obs.PoolObs
}

// NewVecPool returns an empty pool.
func NewVecPool() *VecPool { return &VecPool{} }

// poolFor returns the free list for a vector type.
func (p *VecPool) poolFor(t Type) *sync.Pool {
	switch t {
	case Int64:
		return &p.i64
	case Float64:
		return &p.f64
	case String:
		return &p.str
	case Bool:
		return &p.b
	}
	return nil
}

// GetVector returns an empty vector of the given type, reusing a recycled
// backing array when one is available (capacity hint n applies only to fresh
// allocations; recycled arrays keep whatever capacity they grew to).
func (p *VecPool) GetVector(t Type, n int) *Vector {
	if p == nil {
		return NewVector(t, n)
	}
	fl := p.poolFor(t)
	if fl == nil {
		return NewVector(t, n)
	}
	if v, ok := fl.Get().(*Vector); ok && v != nil {
		return v
	}
	p.Obs.Miss()
	return NewVector(t, n)
}

// putVector recycles one vector. Lengths reset to zero; String payloads are
// cleared first so recycled arrays do not pin the strings of a previous
// batch beyond their lifetime.
func (p *VecPool) putVector(v *Vector) {
	if p == nil || v == nil {
		return
	}
	switch v.Typ {
	case Int64:
		v.I64 = v.I64[:0]
	case Float64:
		v.F64 = v.F64[:0]
	case String:
		clear(v.Str)
		v.Str = v.Str[:0]
	case Bool:
		v.B = v.B[:0]
	default:
		return
	}
	p.poolFor(v.Typ).Put(v)
}

// GetSel returns an empty selection-vector scratch buffer (capacity hint n
// applies only to fresh allocations). The buffer follows the same ownership
// contract as pooled vectors: attach it to a batch (Batch.Sel) and it is
// reclaimed when the batch is released or materialized, or hand it back
// directly with PutSel.
func (p *VecPool) GetSel(n int) []int32 {
	if p == nil {
		return make([]int32, 0, n)
	}
	if s, ok := p.sels.Get().(*[]int32); ok && s != nil {
		return (*s)[:0]
	}
	p.Obs.Miss()
	return make([]int32, 0, n)
}

// PutSel recycles a selection buffer obtained from GetSel.
func (p *VecPool) PutSel(sel []int32) {
	if p == nil || sel == nil {
		return
	}
	sel = sel[:0]
	p.sels.Put(&sel)
}

// GetBatch returns an empty batch for the schema whose vectors come from the
// pool's free lists. The batch is marked pooled: Release will recycle it.
func (p *VecPool) GetBatch(schema Schema, n int) *Batch {
	if p == nil {
		return NewBatch(schema, n)
	}
	p.Obs.Get()
	var b *Batch
	if pb, ok := p.batches.Get().(*Batch); ok && pb != nil {
		b = pb
		b.Schema = schema
		if cap(b.Vecs) < len(schema) {
			b.Vecs = make([]*Vector, len(schema))
		} else {
			b.Vecs = b.Vecs[:len(schema)]
		}
	} else {
		p.Obs.Miss()
		b = &Batch{Schema: schema, Vecs: make([]*Vector, len(schema))}
	}
	for i, c := range schema {
		b.Vecs[i] = p.GetVector(c.Typ, n)
	}
	b.Sel = nil
	b.pooled = true
	return b
}

// Release recycles a pooled batch's vectors and header. Batches that did not
// come from GetBatch (table-owned scan output, operator-emitted results)
// keep their vectors, but an attached selection buffer is reclaimed either
// way — filters attach pool-owned Sel buffers to table-owned scan batches,
// and those must flow back like any pooled memory. Callers release every
// consumed batch unconditionally. Double release is a defended no-op: the
// pooled mark and Sel clear on first release.
func (p *VecPool) Release(b *Batch) {
	if p == nil || b == nil {
		return
	}
	if b.Sel != nil {
		p.PutSel(b.Sel)
		b.Sel = nil
	}
	if !b.pooled {
		return
	}
	b.pooled = false
	p.Obs.Put()
	for i, v := range b.Vecs {
		p.putVector(v)
		b.Vecs[i] = nil
	}
	b.Vecs = b.Vecs[:0]
	b.Schema = nil
	p.batches.Put(b)
}

// GatherPooled is Batch.Gather into pool-backed vectors: the returned batch
// is pooled (recycle with Release). A nil pool degrades to plain Gather.
func (b *Batch) GatherPooled(idx []int, p *VecPool) *Batch {
	if p == nil {
		return b.Gather(idx)
	}
	out := p.GetBatch(b.Schema, len(idx))
	for c, v := range b.Vecs {
		out.Vecs[c].gatherAppend(v, idx)
	}
	return out
}

// gatherAppend appends src[idx[0]], src[idx[1]], ... onto v (same type).
func (v *Vector) gatherAppend(src *Vector, idx []int) {
	switch v.Typ {
	case Int64:
		for _, i := range idx {
			v.I64 = append(v.I64, src.I64[i])
		}
	case Float64:
		for _, i := range idx {
			v.F64 = append(v.F64, src.F64[i])
		}
	case String:
		for _, i := range idx {
			v.Str = append(v.Str, src.Str[i])
		}
	case Bool:
		for _, i := range idx {
			v.B = append(v.B, src.B[i])
		}
	}
}

// Materialize resolves a batch's selection vector into a dense batch holding
// exactly the live rows, in selection order. The input batch is consumed:
// its vectors (if pooled) and its selection buffer return to the pool. A
// batch without a selection passes through untouched, so selection-oblivious
// operators can materialize every input unconditionally — this is the
// "gather only at pipeline breakers and result boundaries" half of the
// selection-vector contract (FilterOp attaches, Materialize resolves).
func (b *Batch) Materialize(p *VecPool) *Batch {
	if b == nil || b.Sel == nil {
		return b
	}
	out := p.GetBatch(b.Schema, len(b.Sel))
	for c, v := range b.Vecs {
		out.Vecs[c].AppendGather(v, b.Sel)
	}
	p.Release(b)
	return out
}

// Pooled reports whether the batch is pool-owned (diagnostics and tests).
func (b *Batch) Pooled() bool { return b.pooled }
