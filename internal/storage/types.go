// Package storage implements the columnar storage substrate that Taster
// runs on: typed column vectors, row batches, tables with lazily computed
// statistics, a catalog, and a simulated-cluster cost model.
//
// The paper runs over Spark/HDFS; this package is the single-process
// replacement described in DESIGN.md §2. All sizes are byte-accurate so that
// storage quotas and I/O costs behave like the paper's.
package storage

import "fmt"

// Type is the type of a column.
type Type uint8

// Supported column types. There are no NULLs in this engine: generators
// always fill every column, which matches the benchmark datasets the paper
// evaluates on.
const (
	Int64 Type = iota
	Float64
	String
	Bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Width returns the in-memory width in bytes of a fixed-width value of the
// type. Strings are variable-width; callers use measured lengths instead.
func (t Type) Width() int {
	switch t {
	case Int64, Float64:
		return 8
	case Bool:
		return 1
	}
	return 0
}

// Numeric reports whether the type supports arithmetic and aggregation.
func (t Type) Numeric() bool { return t == Int64 || t == Float64 }

// Value is a single dynamically typed scalar, used for constants in
// expressions and for row-at-a-time interfaces (test helpers, result rows).
type Value struct {
	Typ Type
	I   int64
	F   float64
	S   string
	B   bool
}

// IntValue returns an Int64 Value.
func IntValue(v int64) Value { return Value{Typ: Int64, I: v} }

// FloatValue returns a Float64 Value.
func FloatValue(v float64) Value { return Value{Typ: Float64, F: v} }

// StringValue returns a String Value.
func StringValue(v string) Value { return Value{Typ: String, S: v} }

// BoolValue returns a Bool Value.
func BoolValue(v bool) Value { return Value{Typ: Bool, B: v} }

// AsFloat converts any numeric value to float64; it panics on non-numeric
// types, which indicates a planner bug rather than a user error.
func (v Value) AsFloat() float64 {
	switch v.Typ {
	case Int64:
		return float64(v.I)
	case Float64:
		return v.F
	}
	panic("storage: AsFloat on non-numeric value " + v.Typ.String())
}

// Equal reports deep equality of two values (types must match too).
func (v Value) Equal(o Value) bool {
	if v.Typ != o.Typ {
		return false
	}
	switch v.Typ {
	case Int64:
		return v.I == o.I
	case Float64:
		return v.F == o.F
	case String:
		return v.S == o.S
	case Bool:
		return v.B == o.B
	}
	return false
}

// Less reports v < o for same-typed, ordered values. Bools order false<true.
func (v Value) Less(o Value) bool {
	switch v.Typ {
	case Int64:
		return v.I < o.I
	case Float64:
		return v.F < o.F
	case String:
		return v.S < o.S
	case Bool:
		return !v.B && o.B
	}
	return false
}

// String renders the value for debugging and result printing.
func (v Value) String() string {
	switch v.Typ {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	case Bool:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// Col describes one column of a schema: a (possibly qualified) name plus a
// type. Names are qualified as "table.column" once bound to the catalog.
type Col struct {
	Name string
	Typ  Type
}

// Schema is an ordered list of columns.
type Schema []Col

// Index returns the position of the named column, or -1. It first tries an
// exact match, then an unqualified suffix match ("l_qty" matches
// "lineitem.l_qty" when unambiguous).
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	match := -1
	for i, c := range s {
		if suffixMatch(c.Name, name) {
			if match >= 0 {
				return -1 // ambiguous
			}
			match = i
		}
	}
	return match
}

func suffixMatch(qualified, name string) bool {
	if len(qualified) <= len(name) {
		return false
	}
	cut := len(qualified) - len(name)
	return qualified[cut-1] == '.' && qualified[cut:] == name
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns a copy of the schema that can be mutated independently.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Concat returns the concatenation s ++ o (used by joins).
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return out
}

// Equal reports whether two schemas have identical names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}
