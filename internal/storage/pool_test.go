package storage

import (
	"sync"
	"testing"
)

func poolSchema() Schema {
	return Schema{
		{Name: "a", Typ: Int64},
		{Name: "b", Typ: Float64},
		{Name: "c", Typ: String},
		{Name: "d", Typ: Bool},
	}
}

// TestVecPoolRecycle: a released batch's backing arrays come back on the next
// GetBatch, empty and type-correct.
func TestVecPoolRecycle(t *testing.T) {
	p := NewVecPool()
	b := p.GetBatch(poolSchema(), 8)
	if !b.Pooled() {
		t.Fatal("GetBatch must mark the batch pooled")
	}
	b.Vecs[0].I64 = append(b.Vecs[0].I64, 1, 2, 3)
	b.Vecs[1].F64 = append(b.Vecs[1].F64, 1.5)
	b.Vecs[2].Str = append(b.Vecs[2].Str, "x", "y")
	b.Vecs[3].B = append(b.Vecs[3].B, true)
	arr := &b.Vecs[0].I64[0]
	p.Release(b)
	if b.Pooled() {
		t.Fatal("Release must clear the pooled mark")
	}

	b2 := p.GetBatch(poolSchema(), 8)
	if b2.Len() != 0 {
		t.Fatalf("recycled batch not empty: %d rows", b2.Len())
	}
	for i, c := range poolSchema() {
		if b2.Vecs[i].Typ != c.Typ {
			t.Fatalf("col %d: recycled type %v, want %v", i, b2.Vecs[i].Typ, c.Typ)
		}
	}
	b2.Vecs[0].I64 = append(b2.Vecs[0].I64, 9)
	if &b2.Vecs[0].I64[0] != arr {
		t.Error("int64 backing array was not recycled")
	}
}

// TestVecPoolNonPooledNoop: releasing a batch the pool never handed out must
// leave it untouched (scan output is table-owned).
func TestVecPoolNonPooledNoop(t *testing.T) {
	p := NewVecPool()
	b := NewBatch(poolSchema(), 4)
	b.Vecs[0].I64 = append(b.Vecs[0].I64, 7)
	p.Release(b)
	if len(b.Vecs) != 4 || b.Vecs[0].I64[0] != 7 {
		t.Fatal("Release mutated a non-pooled batch")
	}
}

// TestVecPoolDoubleReleaseNoop: the second release of the same batch must not
// put its vectors on the free list twice (which would alias two consumers).
func TestVecPoolDoubleReleaseNoop(t *testing.T) {
	p := NewVecPool()
	b := p.GetBatch(Schema{{Name: "a", Typ: Int64}}, 4)
	p.Release(b)
	p.Release(b) // must be a no-op
	v1 := p.GetVector(Int64, 4)
	v2 := p.GetVector(Int64, 4)
	if v1 == v2 {
		t.Fatal("double release put the same vector on the free list twice")
	}
}

// TestVecPoolNilSafe: all methods degrade to plain allocation on a nil pool.
func TestVecPoolNilSafe(t *testing.T) {
	var p *VecPool
	b := p.GetBatch(poolSchema(), 4)
	if b == nil || b.Pooled() {
		t.Fatal("nil pool GetBatch must return a fresh non-pooled batch")
	}
	p.Release(b) // must not panic
	if v := p.GetVector(Int64, 4); v == nil || v.Typ != Int64 {
		t.Fatal("nil pool GetVector must allocate")
	}
}

// TestGatherPooled: pooled gather matches plain gather value-for-value.
func TestGatherPooled(t *testing.T) {
	src := NewBatch(poolSchema(), 4)
	for i := int64(0); i < 4; i++ {
		src.Vecs[0].I64 = append(src.Vecs[0].I64, i)
		src.Vecs[1].F64 = append(src.Vecs[1].F64, float64(i)/2)
		src.Vecs[2].Str = append(src.Vecs[2].Str, string(rune('a'+i)))
		src.Vecs[3].B = append(src.Vecs[3].B, i%2 == 0)
	}
	idx := []int{3, 1}
	p := NewVecPool()
	got := src.GatherPooled(idx, p)
	want := src.Gather(idx)
	if !got.Pooled() {
		t.Fatal("GatherPooled output must be pooled")
	}
	if got.Len() != want.Len() {
		t.Fatalf("len %d, want %d", got.Len(), want.Len())
	}
	for r := 0; r < want.Len(); r++ {
		for c := range want.Vecs {
			if !got.Vecs[c].Get(r).Equal(want.Vecs[c].Get(r)) {
				t.Fatalf("row %d col %d: %v vs %v", r, c, got.Vecs[c].Get(r), want.Vecs[c].Get(r))
			}
		}
	}
	if nilGather := src.GatherPooled(idx, nil); nilGather.Pooled() {
		t.Fatal("nil-pool GatherPooled must not mark pooled")
	}
}

// TestVecPoolConcurrent: hammering Get/Release from many goroutines must be
// race-free (run under -race) and never hand the same live vector out twice.
func TestVecPoolConcurrent(t *testing.T) {
	p := NewVecPool()
	sch := poolSchema()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.GetBatch(sch, 16)
				b.Vecs[0].I64 = append(b.Vecs[0].I64, int64(w))
				for r := 0; r < b.Vecs[0].Len(); r++ {
					if b.Vecs[0].I64[r] != int64(w) {
						t.Errorf("vector aliased across goroutines")
						return
					}
				}
				p.Release(b)
			}
		}(w)
	}
	wg.Wait()
}
