package storage

import (
	"fmt"
	"sync"
)

// Table is an immutable columnar table *version*, horizontally divided into
// partitions (the analogue of the paper's Spark/HDFS partitions). Statistics
// are computed lazily on first access, exactly as the paper's engine computes
// dataset statistics "on-the-fly during the first access to any table".
//
// Data evolution never mutates a Table in place: Append produces a new
// version carrying a bumped epoch counter, and the Catalog swaps versions
// atomically. Readers that resolved an older version keep scanning a frozen
// snapshot — the executor's morsel dispenser, zero-copy scans and statistics
// all stay race-free under concurrent ingestion.
type Table struct {
	Name   string
	schema Schema
	cols   []*Vector
	rows   int
	parts  int
	epoch  uint64 // monotonically increasing version counter, bumped by Append

	statsOnce sync.Once
	stats     *TableStats
}

// NewTable builds a table from fully populated column vectors. All vectors
// must have identical lengths matching the schema.
func NewTable(name string, schema Schema, cols []*Vector, partitions int) (*Table, error) {
	if len(cols) != len(schema) {
		return nil, fmt.Errorf("storage: table %s: %d columns for %d schema entries", name, len(cols), len(schema))
	}
	rows := -1
	for i, c := range cols {
		if c.Typ != schema[i].Typ {
			return nil, fmt.Errorf("storage: table %s column %s: vector type %s != schema type %s",
				name, schema[i].Name, c.Typ, schema[i].Typ)
		}
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return nil, fmt.Errorf("storage: table %s: ragged columns (%d vs %d rows)", name, c.Len(), rows)
		}
	}
	if rows < 0 {
		rows = 0
	}
	if partitions < 1 {
		partitions = 1
	}
	return &Table{Name: name, schema: schema, cols: cols, rows: rows, parts: partitions}, nil
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// Partitions returns the partition count.
func (t *Table) Partitions() int { return t.parts }

// Epoch returns the table's version counter: 0 for a freshly built table,
// incremented by every Append. Synopsis freshness tracking records the epoch
// a synopsis was built at and compares it against the current one.
func (t *Table) Epoch() uint64 { return t.epoch }

// Append returns a new table version containing this table's rows followed
// by delta's rows, with the epoch incremented. The receiver is left fully
// intact (readers holding it keep a consistent snapshot); column payloads
// are copied so the two versions never share a mutable backing array.
// delta must have an identical schema.
//
// The copy makes each append O(current table size) — a deliberate
// simplicity/safety tradeoff: batched appends amortize it, and the zero-
// copy contract of Scan/Slice stays trivially sound. If continuous
// fine-grained ingestion ever dominates, the upgrade path is chunked
// columns that share the old version's immutable segments and append only
// the delta.
func (t *Table) Append(delta *Table) (*Table, error) {
	if !t.schema.Equal(delta.schema) {
		return nil, fmt.Errorf("storage: append to %s: schema mismatch", t.Name)
	}
	cols := make([]*Vector, len(t.cols))
	for i, c := range t.cols {
		nv := NewVector(c.Typ, c.Len()+delta.cols[i].Len())
		nv.Extend(c)
		nv.Extend(delta.cols[i])
		cols[i] = nv
	}
	nt, err := NewTable(t.Name, t.schema, cols, t.parts)
	if err != nil {
		return nil, err
	}
	nt.epoch = t.epoch + 1
	return nt, nil
}

// Column returns the full column vector at position i.
func (t *Table) Column(i int) *Vector { return t.cols[i] }

// PartitionRange returns the [lo, hi) row range of partition p.
func (t *Table) PartitionRange(p int) (lo, hi int) {
	per := (t.rows + t.parts - 1) / t.parts
	lo = p * per
	hi = lo + per
	if lo > t.rows {
		lo = t.rows
	}
	if hi > t.rows {
		hi = t.rows
	}
	return lo, hi
}

// Bytes returns the total payload size of the table in bytes. This is the
// quantity storage quotas and scan costs are charged against.
func (t *Table) Bytes() int64 {
	var n int64
	for _, c := range t.cols {
		n += c.Bytes()
	}
	return n
}

// AvgRowBytes returns the average row width in bytes (≥1).
func (t *Table) AvgRowBytes() float64 {
	if t.rows == 0 {
		return 1
	}
	w := float64(t.Bytes()) / float64(t.rows)
	if w < 1 {
		w = 1
	}
	return w
}

// Scan returns batches of up to batchSize rows covering partition p.
// The returned batches share storage with the table (zero copy).
func (t *Table) Scan(p, batchSize int) []*Batch {
	lo, hi := t.PartitionRange(p)
	return t.ScanRange(lo, hi, batchSize)
}

// ScanRange returns batches of up to batchSize rows covering rows [lo, hi).
// Batches share storage with the table (zero copy). The morsel-driven
// executor uses it to hand disjoint row ranges to workers independently of
// the table's partition layout.
func (t *Table) ScanRange(lo, hi, batchSize int) []*Batch {
	if lo < 0 {
		lo = 0
	}
	if hi > t.rows {
		hi = t.rows
	}
	var out []*Batch
	for start := lo; start < hi; start += batchSize {
		end := start + batchSize
		if end > hi {
			end = hi
		}
		b := &Batch{Schema: t.schema, Vecs: make([]*Vector, len(t.cols))}
		for i, c := range t.cols {
			b.Vecs[i] = c.Slice(start, end)
		}
		out = append(out, b)
	}
	return out
}

// ConcatTables concatenates same-schema tables in the given order into one
// table. The morsel-driven executor uses it to merge per-morsel sample
// materializations deterministically (parts are always passed in morsel
// index order).
func ConcatTables(name string, parts []*Table, partitions int) (*Table, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("storage: ConcatTables %s: no parts", name)
	}
	schema := parts[0].schema
	cols := make([]*Vector, len(schema))
	for i, c := range schema {
		cols[i] = NewVector(c.Typ, 0)
	}
	for _, p := range parts {
		if len(p.cols) != len(cols) {
			return nil, fmt.Errorf("storage: ConcatTables %s: ragged part schemas", name)
		}
		for i, c := range p.cols {
			cols[i].Extend(c)
		}
	}
	return NewTable(name, schema, cols, partitions)
}

// Builder accumulates rows for a new table.
type Builder struct {
	name   string
	schema Schema
	cols   []*Vector
}

// NewBuilder returns a Builder for the schema.
func NewBuilder(name string, schema Schema) *Builder {
	cols := make([]*Vector, len(schema))
	for i, c := range schema {
		cols[i] = NewVector(c.Typ, 0)
	}
	return &Builder{name: name, schema: schema, cols: cols}
}

// AddRow appends one row; values must match the schema order and types.
func (b *Builder) AddRow(vals ...Value) {
	if len(vals) != len(b.cols) {
		panic(fmt.Sprintf("storage: AddRow: %d values for %d columns", len(vals), len(b.cols)))
	}
	for i, v := range vals {
		b.cols[i].Append(v)
	}
}

// Int appends an int64 to column i (fast path for generators).
func (b *Builder) Int(i int, v int64) { b.cols[i].I64 = append(b.cols[i].I64, v) }

// Float appends a float64 to column i.
func (b *Builder) Float(i int, v float64) { b.cols[i].F64 = append(b.cols[i].F64, v) }

// Str appends a string to column i.
func (b *Builder) Str(i int, v string) { b.cols[i].Str = append(b.cols[i].Str, v) }

// Bool appends a bool to column i.
func (b *Builder) Bool(i int, v bool) { b.cols[i].B = append(b.cols[i].B, v) }

// CopyFrom appends the value at src[row] onto column i (same type).
func (b *Builder) CopyFrom(i int, src *Vector, row int) { b.cols[i].AppendFrom(src, row) }

// Build finalizes the table with the given partition count. It panics on a
// malformed builder (ragged columns); entry points fed by user code should
// use TryBuild instead.
func (b *Builder) Build(partitions int) *Table {
	t, err := b.TryBuild(partitions)
	if err != nil {
		panic(err)
	}
	return t
}

// TryBuild finalizes the table, returning an error for ragged columns —
// an easy mistake with the per-column Int/Float/Str fast paths.
func (b *Builder) TryBuild(partitions int) (*Table, error) {
	return NewTable(b.name, b.schema, b.cols, partitions)
}

// Catalog is a concurrency-safe registry of base tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// appendLocks holds one mutex per table name, serializing appenders of
	// the same table so the read-copy-swap in Append composes, while (a)
	// the O(table) column copy runs outside mu — readers resolving tables
	// never block on an in-flight append — and (b) unrelated tables ingest
	// in parallel.
	appendMu    sync.Mutex
	appendLocks map[string]*sync.Mutex
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table), appendLocks: make(map[string]*sync.Mutex)}
}

// appendLock returns the per-table append mutex, creating it on first use.
func (c *Catalog) appendLock(name string) *sync.Mutex {
	c.appendMu.Lock()
	defer c.appendMu.Unlock()
	l, ok := c.appendLocks[name]
	if !ok {
		l = &sync.Mutex{}
		c.appendLocks[name] = l
	}
	return l
}

// Register adds or replaces a table.
func (c *Catalog) Register(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
}

// Append atomically replaces the named table with a new version extended by
// delta's rows (same schema), returning the new version. Appenders are
// serialized (concurrent appends compose), but the column copy happens
// outside the registry lock: concurrent readers resolve tables without
// blocking and keep whichever version they already resolved.
func (c *Catalog) Append(name string, delta *Table) (*Table, error) {
	l := c.appendLock(name)
	l.Lock()
	defer l.Unlock()
	old, err := c.Table(name)
	if err != nil {
		return nil, err
	}
	nt, err := old.Append(delta)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.tables[name] = nt
	c.mu.Unlock()
	return nt, nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// Names returns all registered table names (unsorted).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// TotalBytes returns the summed payload of all registered tables; storage
// budgets in the experiments are expressed as a fraction of this.
func (c *Catalog) TotalBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, t := range c.tables {
		n += t.Bytes()
	}
	return n
}
