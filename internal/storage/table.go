package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Partition is one horizontal slice of a table version: its own column
// vectors, a version counter bumped only when an append touches this
// partition, and a lazily computed zone map. Partitions are immutable once
// published, so they are shared structurally between table versions —
// Append clones only the tail partition it extends.
//
//taster:immutable
type Partition struct {
	cols  []*Vector
	rows  int
	epoch uint64 // version of the last append that touched this partition

	zoneOnce sync.Once
	zone     *ZoneMap

	bytesOnce sync.Once
	bytes     int64
}

// Rows returns the partition's row count.
func (p *Partition) Rows() int { return p.rows }

// Epoch returns the version counter of the last append that touched this
// partition. Freshness tracking is per partition: an append into the tail
// leaves every other partition's epoch — and therefore every synopsis built
// over it — untouched.
func (p *Partition) Epoch() uint64 { return p.epoch }

// Bytes returns the partition's payload size, computed on first call and
// cached (string columns make a fresh computation O(rows), and cost
// accounting asks per query).
//
//taster:mutator sync.Once-guarded lazy cache: the single winning writer publishes the size via Once's happens-before edge
func (p *Partition) Bytes() int64 {
	p.bytesOnce.Do(func() {
		var n int64
		for _, c := range p.cols {
			n += c.Bytes()
		}
		p.bytes = n
	})
	return p.bytes
}

// Table is an immutable columnar table *version*, horizontally divided into
// fixed-size partitions (the analogue of the paper's Spark/HDFS partitions
// and of Tuple Bubbles' fixed-size bubbles). Statistics are computed lazily
// on first access, exactly as the paper's engine computes dataset statistics
// "on-the-fly during the first access to any table".
//
// Data evolution never mutates a Table in place: Append produces a new
// version carrying a bumped epoch counter, and the Catalog swaps versions
// atomically. Full partitions are shared between versions; only the tail
// partition receiving rows is cloned, so appends cost O(tail + delta) rather
// than O(table). Readers that resolved an older version keep scanning a
// frozen snapshot — the executor's morsel dispenser, zero-copy scans and
// statistics all stay race-free under concurrent ingestion.
//
//taster:immutable
type Table struct {
	Name     string
	schema   Schema
	parts    []*Partition
	offs     []int // offs[p] = first global row of partition p; len = parts+1
	partRows int   // max rows per partition; 0 = unbounded (monolithic)
	rows     int
	epoch    uint64 // monotonically increasing version counter, bumped by Append

	colsOnce sync.Once
	colsView []*Vector // lazily concatenated whole-column view

	statsOnce sync.Once
	stats     *TableStats
}

// NewTable builds a table from fully populated column vectors. All vectors
// must have identical lengths matching the schema. The partitions argument
// is a target partition *count* (legacy interface): rows are divided into
// ceil(rows/partitions)-row chunks, which also fixes the table's per-
// partition row capacity for subsequent appends.
func NewTable(name string, schema Schema, cols []*Vector, partitions int) (*Table, error) {
	if err := checkCols(name, schema, cols); err != nil {
		return nil, err
	}
	rows := 0
	if len(cols) > 0 {
		rows = cols[0].Len()
	}
	if partitions < 1 {
		partitions = 1
	}
	per := 0
	if rows > 0 && partitions > 1 {
		per = (rows + partitions - 1) / partitions
	}
	return newTableChunked(name, schema, cols, rows, per), nil
}

// NewTablePartRows builds a table from fully populated column vectors,
// chunked into partitions of at most partRows rows each (0 = one unbounded
// partition). This is the PartitionRows-configured constructor.
func NewTablePartRows(name string, schema Schema, cols []*Vector, partRows int) (*Table, error) {
	if err := checkCols(name, schema, cols); err != nil {
		return nil, err
	}
	rows := 0
	if len(cols) > 0 {
		rows = cols[0].Len()
	}
	if partRows < 0 {
		partRows = 0
	}
	return newTableChunked(name, schema, cols, rows, partRows), nil
}

func checkCols(name string, schema Schema, cols []*Vector) error {
	if len(cols) != len(schema) {
		return fmt.Errorf("storage: table %s: %d columns for %d schema entries", name, len(cols), len(schema))
	}
	rows := -1
	for i, c := range cols {
		if c.Typ != schema[i].Typ {
			return fmt.Errorf("storage: table %s column %s: vector type %s != schema type %s",
				name, schema[i].Name, c.Typ, schema[i].Typ)
		}
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return fmt.Errorf("storage: table %s: ragged columns (%d vs %d rows)", name, c.Len(), rows)
		}
	}
	return nil
}

// newTableChunked slices monolithic columns into partitions of at most
// partRows rows (0 = single partition). Slicing is zero-copy; the monolithic
// vectors double as the whole-column view.
func newTableChunked(name string, schema Schema, cols []*Vector, rows, partRows int) *Table {
	t := &Table{Name: name, schema: schema, rows: rows, partRows: partRows, colsView: cols}
	step := partRows
	if step <= 0 || step > rows {
		step = rows
	}
	if step == 0 { // empty table: one empty partition keeps scans trivial
		t.parts = []*Partition{{cols: cols}}
		t.offs = []int{0, 0}
		return t
	}
	for lo := 0; lo < rows; lo += step {
		hi := lo + step
		if hi > rows {
			hi = rows
		}
		pc := make([]*Vector, len(cols))
		for i, c := range cols {
			pc[i] = c.Slice(lo, hi)
		}
		t.parts = append(t.parts, &Partition{cols: pc, rows: hi - lo})
		t.offs = append(t.offs, lo)
	}
	t.offs = append(t.offs, rows)
	return t
}

// newTableFromParts assembles a table version directly from partitions
// (used by Append and the codec). Partitions are adopted, not copied.
func newTableFromParts(name string, schema Schema, parts []*Partition, partRows int, epoch uint64) *Table {
	t := &Table{Name: name, schema: schema, parts: parts, partRows: partRows, epoch: epoch}
	t.offs = make([]int, 0, len(parts)+1)
	for _, p := range parts {
		t.offs = append(t.offs, t.rows)
		t.rows += p.rows
	}
	t.offs = append(t.offs, t.rows)
	return t
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// Partitions returns the partition count.
func (t *Table) Partitions() int { return len(t.parts) }

// PartRows returns the per-partition row capacity (0 = unbounded).
func (t *Table) PartRows() int { return t.partRows }

// Partition returns partition p.
func (t *Table) Partition(p int) *Partition { return t.parts[p] }

// PartitionEpoch returns the epoch of the last append touching partition p.
func (t *Table) PartitionEpoch(p int) uint64 { return t.parts[p].epoch }

// PartitionRowCounts returns the per-partition row counts in partition
// order — the layout vector that per-partition freshness tracking records.
func (t *Table) PartitionRowCounts() []int64 {
	out := make([]int64, len(t.parts))
	for i, p := range t.parts {
		out[i] = int64(p.rows)
	}
	return out
}

// Epoch returns the table's version counter: 0 for a freshly built table,
// incremented by every Append. Synopsis freshness tracking records the epoch
// a synopsis was built at and compares it against the current one.
func (t *Table) Epoch() uint64 { return t.epoch }

// Append returns a new table version containing this table's rows followed
// by delta's rows, with the epoch incremented. The receiver is left fully
// intact (readers holding it keep a consistent snapshot). Full partitions
// are shared structurally with the old version; only the tail partition
// (if it has room) is cloned and extended, and overflow rows open fresh
// partitions — so an append costs O(tail + delta), not O(table), and only
// the partitions an append touches see their epoch bumped.
// delta must have an identical schema.
func (t *Table) Append(delta *Table) (*Table, error) {
	if !t.schema.Equal(delta.schema) {
		return nil, fmt.Errorf("storage: append to %s: schema mismatch", t.Name)
	}
	epoch := t.epoch + 1
	parts := make([]*Partition, len(t.parts), len(t.parts)+1)
	copy(parts, t.parts)

	dRows := delta.rows
	dCols := make([]*Vector, len(t.schema))
	for i := range dCols {
		dCols[i] = delta.Column(i)
	}
	taken := 0

	// Extend the tail partition up to capacity, cloning its vectors so the
	// old version's snapshot stays frozen.
	if n := len(parts); n > 0 && dRows > 0 {
		tail := parts[n-1]
		room := dRows
		if t.partRows > 0 {
			room = t.partRows - tail.rows
		}
		if room > dRows {
			room = dRows
		}
		if room > 0 || tail.rows == 0 {
			if room < 0 {
				room = 0
			}
			take := room
			nc := make([]*Vector, len(tail.cols))
			for i, c := range tail.cols {
				nv := NewVector(c.Typ, c.Len()+take)
				nv.Extend(c)
				nv.Extend(dCols[i].Slice(0, take))
				nc[i] = nv
			}
			parts[n-1] = &Partition{cols: nc, rows: tail.rows + take, epoch: epoch}
			taken = take
		}
	}

	// Overflow rows open fresh partitions of partRows each.
	step := t.partRows
	if step <= 0 {
		step = dRows - taken
	}
	for lo := taken; lo < dRows; lo += step {
		hi := lo + step
		if hi > dRows {
			hi = dRows
		}
		pc := make([]*Vector, len(dCols))
		for i, c := range dCols {
			nv := NewVector(c.Typ, hi-lo)
			nv.Extend(c.Slice(lo, hi))
			pc[i] = nv
		}
		parts = append(parts, &Partition{cols: pc, rows: hi - lo, epoch: epoch})
	}

	return newTableFromParts(t.Name, t.schema, parts, t.partRows, epoch), nil
}

// Repartition returns a version of the table re-chunked into partitions of
// at most partRows rows (0 = one unbounded partition). Row contents, order
// and the table epoch are preserved; per-partition epochs reset to the
// table epoch (the new layout is uniformly as fresh as the table).
//
//taster:mutator construction: the epoch writes target the freshly built table before it escapes, never the receiver
func (t *Table) Repartition(partRows int) *Table {
	if partRows < 0 {
		partRows = 0
	}
	cols := make([]*Vector, len(t.schema))
	for i := range cols {
		cols[i] = t.Column(i)
	}
	nt := newTableChunked(t.Name, t.schema, cols, t.rows, partRows)
	nt.epoch = t.epoch
	for _, p := range nt.parts {
		p.epoch = t.epoch
	}
	return nt
}

// Column returns the full column vector at position i. For multi-partition
// tables the whole-column view is concatenated lazily on first use and
// cached; row-at-a-time consumers (workload resampling, variational
// subsamples) pay the materialization once. Scans never use this view.
//
//taster:mutator sync.Once-guarded lazy cache: the single winning writer publishes via Once's happens-before edge, readers only ever see nil-then-frozen
func (t *Table) Column(i int) *Vector {
	t.colsOnce.Do(func() {
		if t.colsView != nil {
			return
		}
		if len(t.parts) == 1 {
			t.colsView = t.parts[0].cols
			return
		}
		view := make([]*Vector, len(t.schema))
		for c := range view {
			nv := NewVector(t.schema[c].Typ, t.rows)
			for _, p := range t.parts {
				nv.Extend(p.cols[c])
			}
			view[c] = nv
		}
		t.colsView = view
	})
	return t.colsView[i]
}

// PartitionRange returns the [lo, hi) global row range of partition p.
func (t *Table) PartitionRange(p int) (lo, hi int) {
	return t.offs[p], t.offs[p+1]
}

// PartitionBytes returns the payload size of partition p — the scan charge
// for one partition, which is what zone-map pruning saves.
func (t *Table) PartitionBytes(p int) int64 { return t.parts[p].Bytes() }

// Bytes returns the total payload size of the table in bytes. This is the
// quantity storage quotas and scan costs are charged against.
func (t *Table) Bytes() int64 {
	var n int64
	for _, p := range t.parts {
		n += p.Bytes()
	}
	return n
}

// AvgRowBytes returns the average row width in bytes (≥1).
func (t *Table) AvgRowBytes() float64 {
	if t.rows == 0 {
		return 1
	}
	w := float64(t.Bytes()) / float64(t.rows)
	if w < 1 {
		w = 1
	}
	return w
}

// Scan returns batches of up to batchSize rows covering partition p.
// The returned batches share storage with the table (zero copy).
func (t *Table) Scan(p, batchSize int) []*Batch {
	part := t.parts[p]
	var out []*Batch
	for start := 0; start < part.rows; start += batchSize {
		end := start + batchSize
		if end > part.rows {
			end = part.rows
		}
		out = append(out, sliceBatch(t.schema, part.cols, start, end))
	}
	return out
}

// ScanRange returns batches of up to batchSize rows covering global rows
// [lo, hi). Batches share storage with the table (zero copy) and never
// cross a partition boundary. The morsel-driven executor uses it to hand
// disjoint row ranges to workers: morsel boundaries are defined on global
// row indices, independent of the physical partition layout, which is what
// keeps results byte-identical across any PartitionRows setting.
func (t *Table) ScanRange(lo, hi, batchSize int) []*Batch {
	return t.ScanRangePruned(lo, hi, batchSize, nil)
}

// ScanRangePruned is ScanRange restricted to partitions where keep[p] is
// true (nil keep = all). The executor passes the zone-map pruning verdict;
// rows of pruned partitions are skipped without being read.
func (t *Table) ScanRangePruned(lo, hi, batchSize int, keep []bool) []*Batch {
	if lo < 0 {
		lo = 0
	}
	if hi > t.rows {
		hi = t.rows
	}
	var out []*Batch
	for p, part := range t.parts {
		plo, phi := t.offs[p], t.offs[p+1]
		if phi <= lo || plo >= hi {
			continue
		}
		if keep != nil && !keep[p] {
			continue
		}
		s := lo - plo
		if s < 0 {
			s = 0
		}
		e := hi - plo
		if e > part.rows {
			e = part.rows
		}
		for start := s; start < e; start += batchSize {
			end := start + batchSize
			if end > e {
				end = e
			}
			out = append(out, sliceBatch(t.schema, part.cols, start, end))
		}
	}
	return out
}

func sliceBatch(schema Schema, cols []*Vector, start, end int) *Batch {
	b := &Batch{Schema: schema, Vecs: make([]*Vector, len(cols))}
	for i, c := range cols {
		b.Vecs[i] = c.Slice(start, end)
	}
	return b
}

// ConcatTables concatenates same-schema tables in the given order into one
// table. The morsel-driven executor uses it to merge per-morsel sample
// materializations deterministically (parts are always passed in morsel
// index order).
func ConcatTables(name string, parts []*Table, partitions int) (*Table, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("storage: ConcatTables %s: no parts", name)
	}
	schema := parts[0].schema
	cols := make([]*Vector, len(schema))
	for i, c := range schema {
		cols[i] = NewVector(c.Typ, 0)
	}
	for _, p := range parts {
		if len(p.schema) != len(cols) {
			return nil, fmt.Errorf("storage: ConcatTables %s: ragged part schemas", name)
		}
		for i := range cols {
			cols[i].Extend(p.Column(i))
		}
	}
	return NewTable(name, schema, cols, partitions)
}

// Builder accumulates rows for a new table.
type Builder struct {
	name   string
	schema Schema
	cols   []*Vector
}

// NewBuilder returns a Builder for the schema.
func NewBuilder(name string, schema Schema) *Builder {
	cols := make([]*Vector, len(schema))
	for i, c := range schema {
		cols[i] = NewVector(c.Typ, 0)
	}
	return &Builder{name: name, schema: schema, cols: cols}
}

// AddRow appends one row; values must match the schema order and types.
func (b *Builder) AddRow(vals ...Value) {
	if len(vals) != len(b.cols) {
		panic(fmt.Sprintf("storage: AddRow: %d values for %d columns", len(vals), len(b.cols)))
	}
	for i, v := range vals {
		b.cols[i].Append(v)
	}
}

// Int appends an int64 to column i (fast path for generators).
func (b *Builder) Int(i int, v int64) { b.cols[i].I64 = append(b.cols[i].I64, v) }

// Float appends a float64 to column i.
func (b *Builder) Float(i int, v float64) { b.cols[i].F64 = append(b.cols[i].F64, v) }

// Str appends a string to column i.
func (b *Builder) Str(i int, v string) { b.cols[i].Str = append(b.cols[i].Str, v) }

// Bool appends a bool to column i.
func (b *Builder) Bool(i int, v bool) { b.cols[i].B = append(b.cols[i].B, v) }

// CopyFrom appends the value at src[row] onto column i (same type).
func (b *Builder) CopyFrom(i int, src *Vector, row int) { b.cols[i].AppendFrom(src, row) }

// Build finalizes the table with the given partition count. It panics on a
// malformed builder (ragged columns); entry points fed by user code should
// use TryBuild instead.
func (b *Builder) Build(partitions int) *Table {
	t, err := b.TryBuild(partitions)
	if err != nil {
		panic(err)
	}
	return t
}

// TryBuild finalizes the table, returning an error for ragged columns —
// an easy mistake with the per-column Int/Float/Str fast paths.
func (b *Builder) TryBuild(partitions int) (*Table, error) {
	return NewTable(b.name, b.schema, b.cols, partitions)
}

// Catalog is a concurrency-safe registry of base tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// appendLocks holds one mutex per table name, serializing appenders of
	// the same table so the read-copy-swap in Append composes, while (a)
	// the tail-partition clone runs outside mu — readers resolving tables
	// never block on an in-flight append — and (b) unrelated tables ingest
	// in parallel.
	appendMu    sync.Mutex
	appendLocks map[string]*sync.Mutex
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table), appendLocks: make(map[string]*sync.Mutex)}
}

// appendLock returns the per-table append mutex, creating it on first use.
func (c *Catalog) appendLock(name string) *sync.Mutex {
	c.appendMu.Lock()
	defer c.appendMu.Unlock()
	l, ok := c.appendLocks[name]
	if !ok {
		l = &sync.Mutex{}
		c.appendLocks[name] = l
	}
	return l
}

// Register adds or replaces a table.
func (c *Catalog) Register(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
}

// Repartition re-chunks every registered table into partitions of at most
// partRows rows. Engines call it once at open to apply Config.PartitionRows.
func (c *Catalog) Repartition(partRows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for n, t := range c.tables {
		c.tables[n] = t.Repartition(partRows)
	}
}

// Append atomically replaces the named table with a new version extended by
// delta's rows (same schema), returning the new version. Appenders are
// serialized (concurrent appends compose), but the tail clone happens
// outside the registry lock: concurrent readers resolve tables without
// blocking and keep whichever version they already resolved.
func (c *Catalog) Append(name string, delta *Table) (*Table, error) {
	l := c.appendLock(name)
	l.Lock()
	defer l.Unlock()
	old, err := c.Table(name)
	if err != nil {
		return nil, err
	}
	nt, err := old.Append(delta)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.tables[name] = nt
	c.mu.Unlock()
	return nt, nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// Names returns all registered table names, sorted. Callers iterate the
// catalog to repartition, checkpoint and report; sorting here means none
// of them can accidentally inherit map iteration order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the summed payload of all registered tables; storage
// budgets in the experiments are expressed as a fraction of this.
func (c *Catalog) TotalBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, t := range c.tables {
		n += t.Bytes()
	}
	return n
}
