package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return Schema{
		{Name: "t.id", Typ: Int64},
		{Name: "t.price", Typ: Float64},
		{Name: "t.name", Typ: String},
		{Name: "t.flag", Typ: Bool},
	}
}

func buildTestTable(t *testing.T, rows int) *Table {
	t.Helper()
	b := NewBuilder("t", testSchema())
	for i := 0; i < rows; i++ {
		b.AddRow(IntValue(int64(i)), FloatValue(float64(i)*1.5),
			StringValue(string(rune('a'+i%3))), BoolValue(i%2 == 0))
	}
	return b.Build(4)
}

func TestSchemaIndex(t *testing.T) {
	s := testSchema()
	if got := s.Index("t.id"); got != 0 {
		t.Fatalf("qualified lookup = %d, want 0", got)
	}
	if got := s.Index("price"); got != 1 {
		t.Fatalf("suffix lookup = %d, want 1", got)
	}
	if got := s.Index("missing"); got != -1 {
		t.Fatalf("missing lookup = %d, want -1", got)
	}
	amb := Schema{{Name: "a.x", Typ: Int64}, {Name: "b.x", Typ: Int64}}
	if got := amb.Index("x"); got != -1 {
		t.Fatalf("ambiguous lookup = %d, want -1", got)
	}
	if got := amb.Index("a.x"); got != 0 {
		t.Fatalf("qualified disambiguation = %d, want 0", got)
	}
}

func TestSchemaConcatClone(t *testing.T) {
	a := Schema{{Name: "a", Typ: Int64}}
	b := Schema{{Name: "b", Typ: String}}
	c := a.Concat(b)
	if len(c) != 2 || c[0].Name != "a" || c[1].Name != "b" {
		t.Fatalf("concat = %v", c)
	}
	cl := c.Clone()
	cl[0].Name = "z"
	if c[0].Name != "a" {
		t.Fatal("Clone must not alias")
	}
	if !c.Equal(a.Concat(b)) || c.Equal(a) {
		t.Fatal("Equal misbehaves")
	}
}

func TestValueOrdering(t *testing.T) {
	if !IntValue(1).Less(IntValue(2)) || IntValue(2).Less(IntValue(1)) {
		t.Fatal("int ordering")
	}
	if !StringValue("a").Less(StringValue("b")) {
		t.Fatal("string ordering")
	}
	if !BoolValue(false).Less(BoolValue(true)) {
		t.Fatal("bool ordering")
	}
	if !FloatValue(1.5).Equal(FloatValue(1.5)) || IntValue(1).Equal(FloatValue(1)) {
		t.Fatal("equality must respect type")
	}
}

func TestTableScanRoundTrip(t *testing.T) {
	const rows = 1000
	tbl := buildTestTable(t, rows)
	if tbl.NumRows() != rows {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	seen := 0
	for p := 0; p < tbl.Partitions(); p++ {
		for _, b := range tbl.Scan(p, 128) {
			for i := 0; i < b.Len(); i++ {
				row := b.Row(i)
				id := row[0].I
				if row[1].F != float64(id)*1.5 {
					t.Fatalf("row %d: price=%v", id, row[1])
				}
				seen++
			}
		}
	}
	if seen != rows {
		t.Fatalf("scanned %d rows, want %d", seen, rows)
	}
}

func TestPartitionRangesCoverAllRows(t *testing.T) {
	for _, rows := range []int{0, 1, 7, 100, 1001} {
		for _, partRows := range []int{0, 1, 3, 128} {
			tbl := buildTestTable(t, rows).Repartition(partRows)
			total := 0
			prevHi := 0
			for p := 0; p < tbl.Partitions(); p++ {
				lo, hi := tbl.PartitionRange(p)
				if lo != prevHi {
					t.Fatalf("rows=%d partRows=%d p=%d: gap lo=%d prevHi=%d", rows, partRows, p, lo, prevHi)
				}
				if partRows > 0 && hi-lo > partRows {
					t.Fatalf("rows=%d partRows=%d p=%d: oversize partition [%d,%d)", rows, partRows, p, lo, hi)
				}
				prevHi = hi
				total += hi - lo
			}
			if total != rows {
				t.Fatalf("rows=%d partRows=%d: covered %d", rows, partRows, total)
			}
		}
	}
}

func TestColumnStats(t *testing.T) {
	tbl := buildTestTable(t, 300)
	st := tbl.Stats()
	if st.Rows != 300 {
		t.Fatalf("rows=%d", st.Rows)
	}
	id := st.Columns[0]
	if id.Distinct != 300 || id.MinGroup != 1 || id.Skewed {
		t.Fatalf("id stats = %+v", id)
	}
	if id.Min != 0 || id.Max != 299 {
		t.Fatalf("id min/max = %v/%v", id.Min, id.Max)
	}
	wantMean := 299.0 / 2
	if math.Abs(id.Mean-wantMean) > 1e-9 {
		t.Fatalf("id mean = %v, want %v", id.Mean, wantMean)
	}
	name := st.Columns[2]
	if name.Distinct != 3 || name.MinGroup != 100 {
		t.Fatalf("name stats = %+v", name)
	}
}

func TestSkewDetection(t *testing.T) {
	b := NewBuilder("s", Schema{{Name: "s.v", Typ: Int64}})
	for i := 0; i < 1000; i++ {
		b.Int(0, 1) // heavy hitter
	}
	for i := 0; i < 10; i++ {
		b.Int(0, int64(100+i))
	}
	tbl := b.Build(1)
	if !tbl.Stats().Columns[0].Skewed {
		t.Fatal("heavy-tailed column not flagged skewed")
	}
	u := buildTestTable(t, 300)
	if u.Stats().Columns[2].Skewed {
		t.Fatal("uniform column flagged skewed")
	}
}

func TestGroupCountAndMinGroup(t *testing.T) {
	tbl := buildTestTable(t, 300)
	if g := tbl.GroupCount([]string{"t.name"}); g != 3 {
		t.Fatalf("GroupCount(name) = %d", g)
	}
	if g := tbl.GroupCount([]string{"t.name", "t.flag"}); g != 6 {
		t.Fatalf("GroupCount(name,flag) = %d", g)
	}
	if g := tbl.MinGroupOf([]string{"t.name", "t.flag"}); g != 50 {
		t.Fatalf("MinGroupOf(name,flag) = %d", g)
	}
	if g := tbl.GroupCount(nil); g != 1 {
		t.Fatalf("GroupCount(nil) = %d", g)
	}
}

func TestTopValues(t *testing.T) {
	tbl := buildTestTable(t, 9) // names a,b,c × 3 each
	top := tbl.TopValues("t.name", 2)
	if len(top) != 2 || top[0].Count != 3 {
		t.Fatalf("top = %+v", top)
	}
}

func TestVectorGatherSlice(t *testing.T) {
	v := NewVector(Int64, 0)
	for i := int64(0); i < 10; i++ {
		v.I64 = append(v.I64, i)
	}
	g := v.Gather([]int{9, 0, 5})
	if g.I64[0] != 9 || g.I64[1] != 0 || g.I64[2] != 5 {
		t.Fatalf("gather = %v", g.I64)
	}
	s := v.Slice(2, 5)
	if s.Len() != 3 || s.I64[0] != 2 {
		t.Fatalf("slice = %v", s.I64)
	}
}

func TestBatchGather(t *testing.T) {
	tbl := buildTestTable(t, 10)
	b := tbl.Scan(0, 100)[0]
	g := b.Gather([]int{2, 0})
	if g.Len() != 2 || g.Row(0)[0].I != 2 || g.Row(1)[0].I != 0 {
		t.Fatalf("batch gather wrong: %v", g.Row(0))
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable("x", Schema{{Name: "a", Typ: Int64}}, nil, 1); err == nil {
		t.Fatal("want error for missing columns")
	}
	bad := []*Vector{NewVector(Float64, 0)}
	if _, err := NewTable("x", Schema{{Name: "a", Typ: Int64}}, bad, 1); err == nil {
		t.Fatal("want error for type mismatch")
	}
	ragged := []*Vector{{Typ: Int64, I64: []int64{1, 2}}, {Typ: Int64, I64: []int64{1}}}
	if _, err := NewTable("x", Schema{{Name: "a", Typ: Int64}, {Name: "b", Typ: Int64}}, ragged, 1); err == nil {
		t.Fatal("want error for ragged columns")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl := buildTestTable(t, 10)
	c.Register(tbl)
	got, err := c.Table("t")
	if err != nil || got != tbl {
		t.Fatalf("Table: %v %v", got, err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Fatal("want error for unknown table")
	}
	if c.TotalBytes() != tbl.Bytes() {
		t.Fatal("TotalBytes mismatch")
	}
	if len(c.Names()) != 1 {
		t.Fatal("Names")
	}
}

func TestCostModelMonotone(t *testing.T) {
	m := DefaultCostModel()
	if m.ScanSeconds(1<<30) <= m.ScanSeconds(1<<20) {
		t.Fatal("scan cost must grow with bytes")
	}
	if m.ScanSeconds(0) != m.SeekSeconds {
		t.Fatal("empty scan should cost one seek")
	}
	if m.WriteSeconds(1<<20) <= 0 || m.CPUSeconds(1000) <= 0 || m.ShuffleSeconds(1<<20) <= 0 {
		t.Fatal("non-zero work must have non-zero cost")
	}
	if m.CPUSeconds(0) != 0 || m.WriteSeconds(0) != 0 {
		t.Fatal("zero work must be free")
	}
}

// Property: Vector append/get round-trips arbitrary int64 payloads.
func TestVectorRoundTripQuick(t *testing.T) {
	f := func(vals []int64) bool {
		v := NewVector(Int64, len(vals))
		for _, x := range vals {
			v.Append(IntValue(x))
		}
		if v.Len() != len(vals) {
			return false
		}
		for i, x := range vals {
			if v.Get(i).I != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: partition ranges always tile [0, rows) for any (rows, parts).
func TestPartitionTilingQuick(t *testing.T) {
	f := func(rows uint16, parts uint8) bool {
		p := int(parts)%16 + 1
		b := NewBuilder("q", Schema{{Name: "q.v", Typ: Int64}})
		n := int(rows) % 4096
		for i := 0; i < n; i++ {
			b.Int(0, int64(i))
		}
		tbl := b.Build(p)
		covered := 0
		for i := 0; i < tbl.Partitions(); i++ {
			lo, hi := tbl.PartitionRange(i)
			if lo > hi || hi > n {
				return false
			}
			covered += hi - lo
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
