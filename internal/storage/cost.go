package storage

// CostModel converts logical work (bytes scanned, tuples processed, bytes
// shuffled) into simulated cluster seconds. It stands in for the paper's
// 11-node Spark cluster: experiments report this deterministic "simulated
// time" next to measured wall-clock so that the paper's I/O-bound regime
// (300 GB datasets, cold OS caches) is represented even though our data is
// laptop-scale.
//
// The defaults model the paper's testbed coarsely: 11 nodes × 7-disk RAID-0
// of 7500rpm SATA (~80 MB/s each) ≈ 6 GB/s aggregate sequential read,
// a 1 GbE-class shuffle fabric, and a per-tuple CPU cost for operator work.
type CostModel struct {
	ScanBytesPerSec    float64 // aggregate cold-read bandwidth
	ShuffleBytesPerSec float64 // aggregate network bandwidth for repartitioning
	TuplesPerSec       float64 // per-core tuple processing rate × cores
	SeekSeconds        float64 // fixed per-scan startup (job launch, seeks)
	WarehouseReadFrac  float64 // synopsis-warehouse reads vs. base-table reads
	// DiskLoadBytesPerSec is the bandwidth for faulting a spilled synopsis
	// back from the persistent warehouse tier into memory. It is charged
	// only for disk-resident (payload-dropped) synopses, on top of the
	// regular warehouse read: a synopsis already cached in RAM skips it
	// entirely, which is exactly the discount ChoosePlan needs to prefer
	// warm copies over cold disk hits. Zero falls back to ScanBytesPerSec.
	DiskLoadBytesPerSec float64
	// VectorizedTupleFrac is the per-tuple cost of work running on the
	// vectorized selection-kernel path, as a fraction of the interpreted
	// per-tuple rate. The planner prices a filter by its static shape
	// (expr.KernelCompilable): compilable predicates pay this fraction,
	// interpreter-bound ones pay full rate. Zero falls back to 0.25, the
	// measured filter-kernel speedup ballpark.
	VectorizedTupleFrac float64
}

// DefaultCostModel returns the simulated cluster described above.
func DefaultCostModel() CostModel {
	return CostModel{
		ScanBytesPerSec:     6e9,
		ShuffleBytesPerSec:  1.25e9,
		TuplesPerSec:        2e9,
		SeekSeconds:         0.5,
		WarehouseReadFrac:   1.0,   // warehouse lives in the same HDFS in the paper
		DiskLoadBytesPerSec: 1.5e9, // cold synopsis fault-in: a quarter of hot-path bandwidth
		VectorizedTupleFrac: 0.25,
	}
}

// ScaledCostModel returns a cost model that treats the given dataset as a
// miniature of the paper's testbed: a full cold scan of all totalBytes takes
// ~50 simulated seconds (like 300 GB at 6 GB/s aggregate), one full CPU pass
// over all totalRows takes ~10 s, and shuffle bandwidth keeps the paper's
// disk:network ratio. Experiments use this so that speedup *ratios* match
// the I/O-bound regime of the paper even though the data is laptop-sized.
func ScaledCostModel(totalBytes, totalRows int64) CostModel {
	if totalBytes < 1 {
		totalBytes = 1
	}
	if totalRows < 1 {
		totalRows = 1
	}
	const fullScanSec = 50.0
	scanBw := float64(totalBytes) / fullScanSec
	return CostModel{
		ScanBytesPerSec:     scanBw,
		ShuffleBytesPerSec:  scanBw / 4.8, // 6 GB/s : 1.25 GB/s in the default model
		TuplesPerSec:        float64(totalRows) / 10.0,
		SeekSeconds:         0.5,
		WarehouseReadFrac:   1.0,
		DiskLoadBytesPerSec: scanBw / 4, // same 4:1 hot:cold ratio as the default model
		VectorizedTupleFrac: 0.25,
	}
}

// DiskLoadSeconds returns the cost of faulting a spilled synopsis payload
// back from the persistent warehouse tier (zero-bandwidth models fall back
// to the scan bandwidth so legacy custom models keep working).
func (m CostModel) DiskLoadSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	bw := m.DiskLoadBytesPerSec
	if bw <= 0 {
		bw = m.ScanBytesPerSec
	}
	return m.SeekSeconds + float64(bytes)/bw
}

// VectorizedFrac returns the vectorized-path per-tuple cost fraction,
// defaulting to 0.25 for legacy custom models that leave it zero.
func (m CostModel) VectorizedFrac() float64 {
	if m.VectorizedTupleFrac <= 0 {
		return 0.25
	}
	return m.VectorizedTupleFrac
}

// ScanSeconds returns the cost of a cold sequential scan of n bytes.
func (m CostModel) ScanSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return m.SeekSeconds
	}
	return m.SeekSeconds + float64(bytes)/m.ScanBytesPerSec
}

// WarehouseScanSeconds returns the cost of reading a materialized synopsis.
func (m CostModel) WarehouseScanSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return m.SeekSeconds
	}
	return m.SeekSeconds + float64(bytes)/(m.ScanBytesPerSec*m.WarehouseReadFrac)
}

// WriteSeconds returns the cost of persisting n bytes to the warehouse.
// HDFS writes with replication are slower than reads; we charge 2×.
func (m CostModel) WriteSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return 2 * float64(bytes) / m.ScanBytesPerSec
}

// CPUSeconds returns the cost of processing n tuples through one operator.
func (m CostModel) CPUSeconds(tuples int64) float64 {
	if tuples <= 0 {
		return 0
	}
	return float64(tuples) / m.TuplesPerSec
}

// ShuffleSeconds returns the cost of repartitioning n bytes across the
// cluster (hash join / aggregation exchanges).
func (m CostModel) ShuffleSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.ShuffleBytesPerSec
}
