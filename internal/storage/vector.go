package storage

import "fmt"

// Vector is a typed column of values. Exactly one of the data slices is in
// use, selected by Typ. Vectors are the unit of data flow between physical
// operators (grouped into Batches).
type Vector struct {
	Typ Type
	I64 []int64
	F64 []float64
	Str []string
	B   []bool
}

// NewVector returns an empty vector of the given type with capacity hint n.
func NewVector(t Type, n int) *Vector {
	v := &Vector{Typ: t}
	switch t {
	case Int64:
		v.I64 = make([]int64, 0, n)
	case Float64:
		v.F64 = make([]float64, 0, n)
	case String:
		v.Str = make([]string, 0, n)
	case Bool:
		v.B = make([]bool, 0, n)
	}
	return v
}

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.Typ {
	case Int64:
		return len(v.I64)
	case Float64:
		return len(v.F64)
	case String:
		return len(v.Str)
	case Bool:
		return len(v.B)
	}
	return 0
}

// Append adds a Value, which must match the vector type.
func (v *Vector) Append(val Value) {
	if val.Typ != v.Typ {
		panic(fmt.Sprintf("storage: appending %s value to %s vector", val.Typ, v.Typ))
	}
	switch v.Typ {
	case Int64:
		v.I64 = append(v.I64, val.I)
	case Float64:
		v.F64 = append(v.F64, val.F)
	case String:
		v.Str = append(v.Str, val.S)
	case Bool:
		v.B = append(v.B, val.B)
	}
}

// AppendFrom copies value at index i of src (same type) onto v.
func (v *Vector) AppendFrom(src *Vector, i int) {
	switch v.Typ {
	case Int64:
		v.I64 = append(v.I64, src.I64[i])
	case Float64:
		v.F64 = append(v.F64, src.F64[i])
	case String:
		v.Str = append(v.Str, src.Str[i])
	case Bool:
		v.B = append(v.B, src.B[i])
	}
}

// AppendGather appends src[rows[0]], src[rows[1]], ... onto v (same type):
// the batched AppendFrom, one type dispatch per column per chunk instead of
// one per value.
func (v *Vector) AppendGather(src *Vector, rows []int32) {
	switch v.Typ {
	case Int64:
		for _, r := range rows {
			v.I64 = append(v.I64, src.I64[r])
		}
	case Float64:
		for _, r := range rows {
			v.F64 = append(v.F64, src.F64[r])
		}
	case String:
		for _, r := range rows {
			v.Str = append(v.Str, src.Str[r])
		}
	case Bool:
		for _, r := range rows {
			v.B = append(v.B, src.B[r])
		}
	}
}

// Extend appends all values of src (same type) onto v.
func (v *Vector) Extend(src *Vector) {
	switch v.Typ {
	case Int64:
		v.I64 = append(v.I64, src.I64...)
	case Float64:
		v.F64 = append(v.F64, src.F64...)
	case String:
		v.Str = append(v.Str, src.Str...)
	case Bool:
		v.B = append(v.B, src.B...)
	}
}

// Get returns the i-th element boxed as a Value.
func (v *Vector) Get(i int) Value {
	switch v.Typ {
	case Int64:
		return Value{Typ: Int64, I: v.I64[i]}
	case Float64:
		return Value{Typ: Float64, F: v.F64[i]}
	case String:
		return Value{Typ: String, S: v.Str[i]}
	case Bool:
		return Value{Typ: Bool, B: v.B[i]}
	}
	return Value{}
}

// Float returns element i coerced to float64 (numeric vectors only).
func (v *Vector) Float(i int) float64 {
	switch v.Typ {
	case Int64:
		return float64(v.I64[i])
	case Float64:
		return v.F64[i]
	}
	panic("storage: Float on non-numeric vector " + v.Typ.String())
}

// Slice returns a view of [lo, hi). The returned vector shares storage.
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Typ: v.Typ}
	switch v.Typ {
	case Int64:
		out.I64 = v.I64[lo:hi]
	case Float64:
		out.F64 = v.F64[lo:hi]
	case String:
		out.Str = v.Str[lo:hi]
	case Bool:
		out.B = v.B[lo:hi]
	}
	return out
}

// Gather returns a new vector containing v[idx[0]], v[idx[1]], ...
func (v *Vector) Gather(idx []int) *Vector {
	out := NewVector(v.Typ, len(idx))
	switch v.Typ {
	case Int64:
		for _, i := range idx {
			out.I64 = append(out.I64, v.I64[i])
		}
	case Float64:
		for _, i := range idx {
			out.F64 = append(out.F64, v.F64[i])
		}
	case String:
		for _, i := range idx {
			out.Str = append(out.Str, v.Str[i])
		}
	case Bool:
		for _, i := range idx {
			out.B = append(out.B, v.B[i])
		}
	}
	return out
}

// SelBytes returns the in-memory size of the rows at sel, byte-identical to
// Gather(sel).Bytes() without materializing: shuffle-byte charges on a
// selection-carrying batch must equal the charges its gathered equivalent
// would pay.
func (v *Vector) SelBytes(sel []int32) int64 {
	switch v.Typ {
	case Int64, Float64:
		return int64(len(sel)) * 8
	case Bool:
		return int64(len(sel))
	case String:
		var n int64
		for _, i := range sel {
			n += int64(len(v.Str[i])) + 16 // string header overhead
		}
		return n
	}
	return 0
}

// Bytes returns the in-memory size of the vector payload in bytes.
func (v *Vector) Bytes() int64 {
	switch v.Typ {
	case Int64:
		return int64(len(v.I64)) * 8
	case Float64:
		return int64(len(v.F64)) * 8
	case Bool:
		return int64(len(v.B))
	case String:
		var n int64
		for _, s := range v.Str {
			n += int64(len(s)) + 16 // string header overhead
		}
		return n
	}
	return 0
}

// Batch is a horizontal slice of rows in columnar form: all vectors have the
// same length. It is the unit passed between operators.
type Batch struct {
	Schema Schema
	Vecs   []*Vector
	// Sel is the batch's selection vector: when non-nil, only the rows at
	// the listed physical indices — in that order, always ascending — are
	// live; the vectors still hold every physical row. Vectorized filters
	// attach a Sel instead of gathering survivors into fresh vectors, so a
	// selective predicate costs no per-batch copy. Sel-aware consumers
	// (the aggregation tables) iterate under it; every other consumer calls
	// Materialize first. Sel buffers come from VecPool.GetSel and are
	// reclaimed by Release/Materialize exactly like pooled vectors.
	Sel []int32
	// pooled marks batches whose vectors come from a VecPool free list; only
	// those are recycled by VecPool.Release (see pool.go for the ownership
	// contract). Scan output handing out table-owned storage stays false.
	pooled bool
}

// BatchSize is the default number of rows per batch produced by scans.
const BatchSize = 1024

// NewBatch allocates an empty batch for the schema with capacity hint n.
func NewBatch(schema Schema, n int) *Batch {
	b := &Batch{Schema: schema, Vecs: make([]*Vector, len(schema))}
	for i, c := range schema {
		b.Vecs[i] = NewVector(c.Typ, n)
	}
	return b
}

// Len returns the number of physical rows in the batch's vectors. Callers
// iterating row data must honor Sel (or use Rows for the live count).
func (b *Batch) Len() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// Rows returns the number of live rows: the selection length when a
// selection vector is attached, the physical length otherwise. Cost counters
// charge live rows so a selection-carrying batch and its gathered equivalent
// account identically.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Len()
}

// AppendRow copies row i of src into b. Schemas must be compatible.
func (b *Batch) AppendRow(src *Batch, i int) {
	for c, v := range b.Vecs {
		v.AppendFrom(src.Vecs[c], i)
	}
}

// Row returns row i boxed as a slice of Values (for tests and result sets).
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.Vecs))
	for c, v := range b.Vecs {
		out[c] = v.Get(i)
	}
	return out
}

// Gather returns a new batch with only the rows at idx, preserving order.
func (b *Batch) Gather(idx []int) *Batch {
	out := &Batch{Schema: b.Schema, Vecs: make([]*Vector, len(b.Vecs))}
	for c, v := range b.Vecs {
		out.Vecs[c] = v.Gather(idx)
	}
	return out
}
