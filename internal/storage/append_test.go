package storage

import "testing"

func twoColBuilder(name string) *Builder {
	return NewBuilder(name, Schema{
		{Name: name + ".id", Typ: Int64},
		{Name: name + ".v", Typ: Float64},
	})
}

func TestTableAppendVersions(t *testing.T) {
	b := twoColBuilder("t")
	for i := 0; i < 10; i++ {
		b.Int(0, int64(i))
		b.Float(1, float64(i))
	}
	t0 := b.Build(2)
	if t0.Epoch() != 0 {
		t.Fatalf("fresh table epoch = %d", t0.Epoch())
	}

	d := twoColBuilder("t")
	d.Int(0, 100)
	d.Float(1, 100)
	t1, err := t0.Append(d.Build(1))
	if err != nil {
		t.Fatal(err)
	}
	if t1.Epoch() != 1 || t1.NumRows() != 11 {
		t.Fatalf("t1 epoch=%d rows=%d", t1.Epoch(), t1.NumRows())
	}
	// Snapshot isolation: the old version is untouched.
	if t0.NumRows() != 10 || t0.Column(0).Len() != 10 {
		t.Fatalf("append mutated the old version: rows=%d", t0.NumRows())
	}
	if got := t1.Column(0).I64[10]; got != 100 {
		t.Fatalf("appended row = %d", got)
	}
	// Versions must not share a mutable backing array: writing through one
	// must not be observable through the other.
	t2, err := t1.Append(d.Build(1))
	if err != nil {
		t.Fatal(err)
	}
	if t2.NumRows() != 12 || t1.NumRows() != 11 {
		t.Fatal("second append broke version isolation")
	}
}

func TestTableAppendSchemaMismatch(t *testing.T) {
	a := twoColBuilder("t").Build(1)
	bad := NewBuilder("t", Schema{{Name: "t.id", Typ: Int64}}).Build(1)
	if _, err := a.Append(bad); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestCatalogAppend(t *testing.T) {
	cat := NewCatalog()
	b := twoColBuilder("t")
	b.Int(0, 1)
	b.Float(1, 1)
	cat.Register(b.Build(1))

	d := twoColBuilder("t")
	d.Int(0, 2)
	d.Float(1, 2)
	nt, err := cat.Append("t", d.Build(1))
	if err != nil {
		t.Fatal(err)
	}
	if nt.Epoch() != 1 || nt.NumRows() != 2 {
		t.Fatalf("epoch=%d rows=%d", nt.Epoch(), nt.NumRows())
	}
	cur, err := cat.Table("t")
	if err != nil || cur != nt {
		t.Fatal("catalog did not swap in the new version")
	}
	if _, err := cat.Append("missing", d.Build(1)); err == nil {
		t.Fatal("append to unknown table accepted")
	}
}
