package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary table codec. This is the on-disk representation of a materialized
// sample's row payload inside the synopsis warehouse (internal/persist): a
// self-contained little-endian record of schema, partitioning and column
// data. The layout is mirrored exactly by (*Table).EncodedBytes so storage
// quotas charge what disk actually stores.
//
// Layout (all integers little-endian). The header is partition-aware: the
// per-partition row counts and epochs round-trip, so the disk tier can
// spill and fault a table without flattening its partition layout or its
// per-partition freshness state.
//
//	u32 len + name
//	u32 partitions
//	u32 partRows (per-partition row capacity; 0 = unbounded)
//	u64 epoch
//	u32 numCols
//	u64 numRows
//	per partition: u64 rows, u64 epoch
//	per column: u32 len + name, u8 type
//	per column payload (rows concatenated in partition order):
//	  Int64/Float64: 8 bytes per row
//	  Bool:          1 byte per row
//	  String:        per row u32 len + bytes

// EncodedBytes returns the exact size EncodeTable produces for this table.
// It is the serialized-size half of the SizeBytes contract: synopsis
// payloads are charged against storage quotas at their on-disk size.
func (t *Table) EncodedBytes() int64 {
	n := int64(4+len(t.Name)) + 4 + 4 + 8 + 4 + 8 + 16*int64(len(t.parts))
	for _, c := range t.schema {
		n += 4 + int64(len(c.Name)) + 1
	}
	for _, p := range t.parts {
		for _, v := range p.cols {
			switch v.Typ {
			case Int64, Float64:
				n += int64(v.Len()) * 8
			case Bool:
				n += int64(v.Len())
			case String:
				for _, s := range v.Str {
					n += 4 + int64(len(s))
				}
			}
		}
	}
	return n
}

// EncodeTable appends the table's binary encoding to dst and returns the
// extended slice.
func EncodeTable(dst []byte, t *Table) []byte {
	dst = appendStr(dst, t.Name)
	dst = appendU32(dst, uint32(len(t.parts)))
	dst = appendU32(dst, uint32(t.partRows))
	dst = appendU64(dst, t.epoch)
	dst = appendU32(dst, uint32(len(t.schema)))
	dst = appendU64(dst, uint64(t.rows))
	for _, p := range t.parts {
		dst = appendU64(dst, uint64(p.rows))
		dst = appendU64(dst, p.epoch)
	}
	for _, c := range t.schema {
		dst = appendStr(dst, c.Name)
		dst = append(dst, byte(c.Typ))
	}
	for i := range t.schema {
		for _, p := range t.parts {
			v := p.cols[i]
			switch v.Typ {
			case Int64:
				for _, x := range v.I64 {
					dst = appendU64(dst, uint64(x))
				}
			case Float64:
				for _, x := range v.F64 {
					dst = appendU64(dst, math.Float64bits(x))
				}
			case Bool:
				for _, x := range v.B {
					if x {
						dst = append(dst, 1)
					} else {
						dst = append(dst, 0)
					}
				}
			case String:
				for _, s := range v.Str {
					dst = appendStr(dst, s)
				}
			}
		}
	}
	return dst
}

// DecodeTable reverses EncodeTable, consuming bytes from r. It validates
// every length against the remaining input so truncated or corrupt payloads
// fail cleanly instead of panicking.
func DecodeTable(r *Reader) (*Table, error) {
	name, err := r.Str()
	if err != nil {
		return nil, fmt.Errorf("storage: decode table: %w", err)
	}
	nparts, err := r.U32()
	if err != nil {
		return nil, err
	}
	partRows, err := r.U32()
	if err != nil {
		return nil, err
	}
	epoch, err := r.U64()
	if err != nil {
		return nil, err
	}
	ncols, err := r.U32()
	if err != nil {
		return nil, err
	}
	nrows64, err := r.U64()
	if err != nil {
		return nil, err
	}
	// Plausibility bounds BEFORE any shape-sized allocation: every partition
	// costs 16 header bytes, every column ≥5 schema bytes and every row ≥1
	// payload byte per column, so a crafted header claiming a shape the
	// remaining payload cannot possibly hold is rejected without allocating
	// for it.
	if int64(nparts)*16 > int64(r.Remaining()) {
		return nil, fmt.Errorf("storage: decode table %s: %d partitions exceed %d payload bytes", name, nparts, r.Remaining())
	}
	partCounts := make([]int, nparts)
	partEpochs := make([]uint64, nparts)
	var partSum uint64
	for i := range partCounts {
		pr, err := r.U64()
		if err != nil {
			return nil, err
		}
		pe, err := r.U64()
		if err != nil {
			return nil, err
		}
		if pr > nrows64 {
			return nil, fmt.Errorf("storage: decode table %s: partition %d claims %d of %d rows", name, i, pr, nrows64)
		}
		partCounts[i], partEpochs[i] = int(pr), pe
		partSum += pr
	}
	if partSum != nrows64 {
		return nil, fmt.Errorf("storage: decode table %s: partition rows sum %d != %d total", name, partSum, nrows64)
	}
	if int64(ncols)*5 > int64(r.Remaining()) {
		return nil, fmt.Errorf("storage: decode table %s: %d columns exceed %d payload bytes", name, ncols, r.Remaining())
	}
	nrows := int(nrows64)
	schema := make(Schema, ncols)
	var minRowBytes int64
	for i := range schema {
		cn, err := r.Str()
		if err != nil {
			return nil, err
		}
		tb, err := r.U8()
		if err != nil {
			return nil, err
		}
		if Type(tb) > Bool {
			return nil, fmt.Errorf("storage: decode table %s: unknown column type %d", name, tb)
		}
		schema[i] = Col{Name: cn, Typ: Type(tb)}
		switch Type(tb) {
		case Int64, Float64:
			minRowBytes += 8
		case Bool:
			minRowBytes += 1
		case String:
			minRowBytes += 4
		}
	}
	if nrows64 > 1<<40 ||
		(minRowBytes > 0 && nrows64 > uint64(r.Remaining())/uint64(minRowBytes)) {
		return nil, fmt.Errorf("storage: decode table %s: %d rows exceed %d payload bytes", name, nrows64, r.Remaining())
	}
	cols := make([]*Vector, ncols)
	for i, c := range schema {
		v := NewVector(c.Typ, nrows)
		switch c.Typ {
		case Int64:
			for j := 0; j < nrows; j++ {
				x, err := r.U64()
				if err != nil {
					return nil, err
				}
				v.I64 = append(v.I64, int64(x))
			}
		case Float64:
			for j := 0; j < nrows; j++ {
				x, err := r.U64()
				if err != nil {
					return nil, err
				}
				v.F64 = append(v.F64, math.Float64frombits(x))
			}
		case Bool:
			for j := 0; j < nrows; j++ {
				b, err := r.U8()
				if err != nil {
					return nil, err
				}
				v.B = append(v.B, b != 0)
			}
		case String:
			for j := 0; j < nrows; j++ {
				s, err := r.Str()
				if err != nil {
					return nil, err
				}
				v.Str = append(v.Str, s)
			}
		}
		cols[i] = v
	}
	// Rebuild the recorded partition layout over the decoded columns
	// (zero-copy slices), restoring each partition's epoch.
	parts := make([]*Partition, len(partCounts))
	lo := 0
	for i, pr := range partCounts {
		pc := make([]*Vector, len(cols))
		for c, v := range cols {
			pc[c] = v.Slice(lo, lo+pr)
		}
		parts[i] = &Partition{cols: pc, rows: pr, epoch: partEpochs[i]}
		lo += pr
	}
	if len(parts) == 0 {
		parts = []*Partition{{cols: cols}}
	}
	t := newTableFromParts(name, schema, parts, int(partRows), epoch)
	t.colsView = cols
	return t, nil
}

// Reader consumes a binary payload with bounds checking; every persistence
// decoder shares it so truncated inputs surface as errors, never panics.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining returns the unconsumed byte count.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// U8 reads one byte.
func (r *Reader) U8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, fmt.Errorf("storage: truncated payload at offset %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("storage: truncated payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("storage: truncated payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// F64 reads a little-endian float64.
func (r *Reader) F64() (float64, error) {
	v, err := r.U64()
	return math.Float64frombits(v), err
}

// Str reads a u32-length-prefixed string.
func (r *Reader) Str() (string, error) {
	n, err := r.U32()
	if err != nil {
		return "", err
	}
	if int(n) > r.Remaining() {
		return "", fmt.Errorf("storage: string length %d exceeds remaining %d bytes", n, r.Remaining())
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Bytes reads n raw bytes.
func (r *Reader) Bytes(n int) ([]byte, error) {
	if n < 0 || n > r.Remaining() {
		return nil, fmt.Errorf("storage: byte run %d exceeds remaining %d", n, r.Remaining())
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Rest returns every unconsumed byte.
func (r *Reader) Rest() []byte {
	b := r.b[r.off:]
	r.off = len(r.b)
	return b
}

// appendU32 appends v little-endian.
func appendU32(dst []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(dst, tmp[:]...)
}

// appendU64 appends v little-endian.
func appendU64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

// appendStr appends a u32-length-prefixed string.
func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendU32 exposes the little-endian u32 writer to the persistence codecs.
func AppendU32(dst []byte, v uint32) []byte { return appendU32(dst, v) }

// AppendU64 exposes the little-endian u64 writer to the persistence codecs.
func AppendU64(dst []byte, v uint64) []byte { return appendU64(dst, v) }

// AppendF64 appends the IEEE-754 bits of v little-endian.
func AppendF64(dst []byte, v float64) []byte { return appendU64(dst, math.Float64bits(v)) }

// AppendStr appends a u32-length-prefixed string.
func AppendStr(dst []byte, s string) []byte { return appendStr(dst, s) }
