package storage

import (
	"math"
	"sort"
)

// ColumnStats summarizes one column. The planner uses these to size samplers
// (choose p and δ from the accuracy spec), to decide between uniform and
// distinct sampling, and to detect skew when pushing synopses under filters
// (paper §IV-A: skewed predicate columns join the stratification set).
type ColumnStats struct {
	Distinct int     // exact number of distinct values
	MinGroup int     // size of the smallest value group
	MaxGroup int     // size of the largest value group
	Min      float64 // numeric columns only
	Max      float64
	Mean     float64
	Variance float64 // population variance
	Skewed   bool    // true when the value distribution is heavy-tailed
}

// CV returns the coefficient of variation (σ/|μ|), the quantity that drives
// required sample sizes for relative-error targets. Returns 1 for degenerate
// columns so sizing stays sane.
func (s ColumnStats) CV() float64 {
	if s.Mean == 0 || s.Variance <= 0 {
		return 1
	}
	cv := math.Sqrt(s.Variance) / math.Abs(s.Mean)
	if cv == 0 || math.IsNaN(cv) || math.IsInf(cv, 0) {
		return 1
	}
	return cv
}

// TableStats holds per-column statistics plus the row count.
type TableStats struct {
	Rows    int
	Columns []ColumnStats
}

// Stats returns the table statistics, computing them on first call. This is
// the "statistics of the dataset ... calculated on-the-fly during the first
// access to any table" behaviour from paper §III.
//
//taster:mutator sync.Once-guarded lazy cache: the single winning writer publishes via Once's happens-before edge, readers only ever see nil-then-frozen
func (t *Table) Stats() *TableStats {
	t.statsOnce.Do(func() {
		ts := &TableStats{Rows: t.rows, Columns: make([]ColumnStats, len(t.schema))}
		chunks := make([]*Vector, len(t.parts))
		for i := range t.schema {
			for p, part := range t.parts {
				chunks[p] = part.cols[i]
			}
			ts.Columns[i] = computeColumnStats(chunks)
		}
		t.stats = ts
	})
	return t.stats
}

// skewRatio is the MaxGroup/avgGroup threshold above which a column counts
// as skewed. 3 is a conventional heavy-hitter cutoff; the paper does not
// give a number.
const skewRatio = 3.0

// computeColumnStats folds one column's per-partition chunks into a single
// ColumnStats, iterating chunk by chunk so multi-partition tables never
// materialize a whole-column copy just for statistics.
func computeColumnStats(chunks []*Vector) ColumnStats {
	var st ColumnStats
	n := 0
	for _, c := range chunks {
		n += c.Len()
	}
	if n == 0 {
		return st
	}
	// Distinct/group statistics via a frequency map keyed by the value's
	// canonical representation. Exact counting is fine at our scales; the
	// paper computes the same statistics on a cluster.
	freq := make(map[Value]int, 1024)
	for _, c := range chunks {
		switch c.Typ {
		case Int64:
			for _, v := range c.I64 {
				freq[Value{Typ: Int64, I: v}]++
			}
		case Float64:
			for _, v := range c.F64 {
				freq[Value{Typ: Float64, F: v}]++
			}
		case String:
			for _, v := range c.Str {
				freq[Value{Typ: String, S: v}]++
			}
		case Bool:
			for _, v := range c.B {
				freq[Value{Typ: Bool, B: v}]++
			}
		}
	}
	st.Distinct = len(freq)
	st.MinGroup = n
	for _, f := range freq {
		if f < st.MinGroup {
			st.MinGroup = f
		}
		if f > st.MaxGroup {
			st.MaxGroup = f
		}
	}
	avgGroup := float64(n) / float64(st.Distinct)
	st.Skewed = float64(st.MaxGroup) > skewRatio*avgGroup && st.Distinct > 1

	if chunks[0].Typ.Numeric() {
		var sum, sumSq float64
		st.Min = math.Inf(1)
		st.Max = math.Inf(-1)
		for _, c := range chunks {
			for i := 0; i < c.Len(); i++ {
				v := c.Float(i)
				sum += v
				sumSq += v * v
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
			}
		}
		st.Mean = sum / float64(n)
		st.Variance = sumSq/float64(n) - st.Mean*st.Mean
		if st.Variance < 0 {
			st.Variance = 0
		}
	}
	return st
}

// DistinctOf returns the distinct count of the named column, or 0 when the
// column is unknown. Convenience wrapper used by the planner.
func (t *Table) DistinctOf(col string) int {
	i := t.schema.Index(col)
	if i < 0 {
		return 0
	}
	return t.Stats().Columns[i].Distinct
}

// GroupCount returns the exact number of distinct combinations of the given
// columns — the planner's estimate for "number of groups" of a GROUP BY over
// the base table. For a single column it reuses per-column stats.
func (t *Table) GroupCount(cols []string) int {
	if len(cols) == 0 {
		return 1
	}
	if len(cols) == 1 {
		if d := t.DistinctOf(cols[0]); d > 0 {
			return d
		}
		return 1
	}
	idx := make([]int, 0, len(cols))
	for _, c := range cols {
		i := t.schema.Index(c)
		if i < 0 {
			return 1
		}
		idx = append(idx, i)
	}
	seen := make(map[string]struct{}, 1024)
	var key []byte
	for _, part := range t.parts {
		for r := 0; r < part.rows; r++ {
			key = key[:0]
			for _, i := range idx {
				key = appendValueKey(key, part.cols[i], r)
			}
			seen[string(key)] = struct{}{}
		}
	}
	return len(seen)
}

// MinGroupOf returns the size of the smallest group for the given column
// set: the quantity that determines whether uniform sampling can guarantee
// k rows per group (paper §IV-A).
func (t *Table) MinGroupOf(cols []string) int {
	if len(cols) == 0 || t.rows == 0 {
		return t.rows
	}
	if len(cols) == 1 {
		i := t.schema.Index(cols[0])
		if i < 0 {
			return t.rows
		}
		return t.Stats().Columns[i].MinGroup
	}
	idx := make([]int, 0, len(cols))
	for _, c := range cols {
		i := t.schema.Index(c)
		if i < 0 {
			return t.rows
		}
		idx = append(idx, i)
	}
	counts := make(map[string]int, 1024)
	var key []byte
	for _, part := range t.parts {
		for r := 0; r < part.rows; r++ {
			key = key[:0]
			for _, i := range idx {
				key = appendValueKey(key, part.cols[i], r)
			}
			counts[string(key)]++
		}
	}
	minG := t.rows
	for _, f := range counts {
		if f < minG {
			minG = f
		}
	}
	return minG
}

func appendValueKey(key []byte, v *Vector, i int) []byte {
	switch v.Typ {
	case Int64:
		x := uint64(v.I64[i])
		key = append(key, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
			byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56), 0)
	case Float64:
		x := math.Float64bits(v.F64[i])
		key = append(key, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
			byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56), 1)
	case String:
		key = append(key, v.Str[i]...)
		key = append(key, 0xff, 2)
	case Bool:
		if v.B[i] {
			key = append(key, 1, 3)
		} else {
			key = append(key, 0, 3)
		}
	}
	return key
}

// TopValues returns up to k (value, count) pairs for a column ordered by
// descending frequency — used in tests and for skew diagnostics.
func (t *Table) TopValues(col string, k int) []ValueCount {
	i := t.schema.Index(col)
	if i < 0 {
		return nil
	}
	freq := make(map[Value]int)
	for _, part := range t.parts {
		c := part.cols[i]
		for r := 0; r < c.Len(); r++ {
			freq[c.Get(r)]++
		}
	}
	out := make([]ValueCount, 0, len(freq))
	for v, f := range freq {
		out = append(out, ValueCount{Value: v, Count: f})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value.Less(out[b].Value)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ValueCount pairs a value with its frequency.
type ValueCount struct {
	Value Value
	Count int
}
