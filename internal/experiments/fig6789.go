package experiments

import (
	"fmt"

	"github.com/tasterdb/taster/internal/baselines"
	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/tuner"
	"github.com/tasterdb/taster/internal/workload"
)

// Figure6Point is one query of the adaptivity trace: execution time plus
// warehouse occupancy, like the two series of paper Fig. 6.
type Figure6Point struct {
	Query          int
	Epoch          int
	SimSeconds     float64
	WarehouseBytes int64
	Evictions      int
	Creations      int
}

// Figure6Result is the full trace.
type Figure6Result struct {
	Points        []Figure6Point
	EpochAvg      [4]float64 // average sim seconds per epoch
	EpochStartAvg [4]float64 // average over each epoch's first 5 queries
}

// Table renders per-epoch summaries (the full trace is in Points).
func (f *Figure6Result) Table() string {
	rows := make([][]string, 0, 4)
	for e := 0; e < 4; e++ {
		rows = append(rows, []string{
			fmt.Sprintf("epoch %d", e+1),
			fmt.Sprintf("%.1f", f.EpochStartAvg[e]),
			fmt.Sprintf("%.1f", f.EpochAvg[e]),
		})
	}
	return "Figure 6 (workload adaptivity, 4 epochs × 20 TPC-H queries)\n" +
		table([]string{"epoch", "avg first-5 (s)", "avg all (s)"}, rows)
}

// Figure6 reproduces the workload-shift experiment: 80 queries in four
// epochs over the paper's template groups, budget ≈ 35 GB / 300 GB ≈ 12% of
// the dataset. The trace shows warehouse contents turning over when each
// epoch starts.
func Figure6(cfg Config) (*Figure6Result, error) {
	cfg = cfg.withDefaults()
	w, err := loadWorkload("tpch", cfg)
	if err != nil {
		return nil, err
	}
	eng := newEngine(w, core.ModeTaster, 0.12, uint64(cfg.Seed))

	out := &Figure6Result{}
	qi := 0
	for epoch := 1; epoch <= 4; epoch++ {
		queries := w.QueriesFromTemplates(workload.TPCHEpoch(epoch), 20, cfg.Seed+int64(epoch))
		sims, results, err := runSeq(eng, w.Catalog, queries)
		if err != nil {
			return nil, err
		}
		for i, s := range sims {
			rep := results[i].Report
			out.Points = append(out.Points, Figure6Point{
				Query:          qi,
				Epoch:          epoch,
				SimSeconds:     s,
				WarehouseBytes: rep.WarehouseBytes + rep.BufferBytes,
				Evictions:      len(rep.Evicted),
				Creations:      len(rep.CreatedSynopses),
			})
			out.EpochAvg[epoch-1] += s / 20
			if i < 5 {
				out.EpochStartAvg[epoch-1] += s / 5
			}
			qi++
		}
	}
	return out, nil
}

// Figure7Result compares Baseline, Taster, and Taster+hints over the
// two-database mix (paper Fig. 7), with the offline phase split into
// scrambling and sampling like the figure's stacked bars.
type Figure7Result struct {
	BaselineSec     float64
	TasterSec       float64
	HintsOfflineSec float64 // sampling part
	HintsScramble   float64 // scrambled-copy part
	HintsQuerySec   float64
	SpeedupAll      float64 // hints vs baseline, whole mix
	SpeedupVsTaster float64
	SpeedupDboff    float64 // hints vs baseline on the hinted database only
}

// Table renders the stacked bars.
func (f *Figure7Result) Table() string {
	rows := [][]string{
		{"Baseline", "0", "0", fmt.Sprintf("%.0f", f.BaselineSec), fmt.Sprintf("%.0f", f.BaselineSec)},
		{"Taster", "0", "0", fmt.Sprintf("%.0f", f.TasterSec), fmt.Sprintf("%.0f", f.TasterSec)},
		{"Taster+hints", fmt.Sprintf("%.0f", f.HintsScramble), fmt.Sprintf("%.0f", f.HintsOfflineSec),
			fmt.Sprintf("%.0f", f.HintsQuerySec),
			fmt.Sprintf("%.0f", f.HintsScramble+f.HintsOfflineSec+f.HintsQuerySec)},
	}
	return "Figure 7 (user hints, 2×TPC-H mix)\n" +
		table([]string{"system", "scramble", "offline sampling", "query exec", "total"}, rows) +
		fmt.Sprintf("speedup vs baseline: %.2fx (dboff-only %.2fx), vs Taster %.2fx\n",
			f.SpeedupAll, f.SpeedupDboff, f.SpeedupVsTaster)
}

// Figure7 runs two TPC-H instances (dboff gets lineitem hints built with
// variational subsampling; dbonl is handled fully online) with interleaved
// queries, as §VI-E describes.
func Figure7(cfg Config) (*Figure7Result, error) {
	cfg = cfg.withDefaults()
	half := cfg.Queries / 2
	if half < 10 {
		half = 10
	}
	wOff := workload.TPCH(cfg.SF, cfg.Seed)
	wOnl := workload.TPCH(cfg.SF, cfg.Seed+999)
	qOff := wOff.Queries(half, cfg.Seed+1)
	qOnl := wOnl.Queries(half, cfg.Seed+2)

	runPair := func(engOff, engOnl *core.Engine) (float64, float64, error) {
		sOff, _, err := runSeq(engOff, wOff.Catalog, qOff)
		if err != nil {
			return 0, 0, err
		}
		sOnl, _, err := runSeq(engOnl, wOnl.Catalog, qOnl)
		if err != nil {
			return 0, 0, err
		}
		return sum(sOff), sum(sOnl), nil
	}

	// Baseline.
	bOff, bOnl, err := runPair(newEngine(wOff, core.ModeExact, 1, uint64(cfg.Seed)),
		newEngine(wOnl, core.ModeExact, 1, uint64(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	// Taster without hints (50 GB / 300 GB ≈ 17% of one database; our two
	// engines split the paper's shared quota).
	tOff, tOnl, err := runPair(newEngine(wOff, core.ModeTaster, 0.3, uint64(cfg.Seed)),
		newEngine(wOnl, core.ModeTaster, 0.3, uint64(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	// Taster with hints on dboff's lineitem.
	bytes, rows := wOff.CostScale()
	model := storage.ScaledCostModel(bytes, rows)
	hintedOff := newEngine(wOff, core.ModeTaster, 0.3, uint64(cfg.Seed))
	off, err := baselines.ApplyHints(hintedOff, []baselines.Hint{{
		Table:     "lineitem",
		StratCols: []string{"lineitem.l_returnflag", "lineitem.l_linestatus", "lineitem.l_shipmode"},
		AggCols:   []string{"lineitem.l_quantity", "lineitem.l_extendedprice", "lineitem.l_discount"},
	}}, model, uint64(cfg.Seed))
	if err != nil {
		return nil, err
	}
	hOff, hOnl, err := runPair(hintedOff, newEngine(wOnl, core.ModeTaster, 0.3, uint64(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	res := &Figure7Result{
		BaselineSec:     bOff + bOnl,
		TasterSec:       tOff + tOnl,
		HintsScramble:   off.ScrambleSecs,
		HintsOfflineSec: off.SimSeconds - off.ScrambleSecs,
		HintsQuerySec:   hOff + hOnl,
	}
	hintsTotal := res.HintsScramble + res.HintsOfflineSec + res.HintsQuerySec
	res.SpeedupAll = res.BaselineSec / hintsTotal
	res.SpeedupVsTaster = res.TasterSec / hintsTotal
	res.SpeedupDboff = bOff / (hOff + off.SimSeconds)
	return res, nil
}

// Figure8Result compares fixed window lengths against the adaptive window
// (paper Fig. 8).
type Figure8Result struct {
	Totals map[string]float64 // config name → total simulated seconds
	// FinalWindow is the adaptive run's final w (paper: fluctuates 12-17).
	FinalWindow int
}

// Table renders the bars.
func (f *Figure8Result) Table() string {
	order := []string{"window 5", "window 10", "window 50", "adaptive"}
	rows := make([][]string, 0, 4)
	for _, k := range order {
		rows = append(rows, []string{k, fmt.Sprintf("%.0f", f.Totals[k])})
	}
	return "Figure 8 (horizon length, 200 TPC-H queries)\n" +
		table([]string{"config", "total sim seconds"}, rows) +
		fmt.Sprintf("adaptive window ended at w=%d\n", f.FinalWindow)
}

// Figure8 runs the same sequence under w=5, w=10, w=50 and adaptive
// (starting at 5, as §VI-C does).
func Figure8(cfg Config) (*Figure8Result, error) {
	cfg = cfg.withDefaults()
	w, err := loadWorkload("tpch", cfg)
	if err != nil {
		return nil, err
	}
	queries := w.Queries(cfg.Queries, cfg.Seed)
	bytes, rows := w.CostScale()

	mk := func(window int, adaptive bool) *core.Engine {
		return core.New(w.Catalog, core.Config{
			Mode:          core.ModeTaster,
			StorageBudget: int64(float64(bytes) * 0.12),
			BufferSize:    bytes / 8,
			CostModel:     storage.ScaledCostModel(bytes, rows),
			Seed:          uint64(cfg.Seed),
			Tuner:         tuner.Config{Window: window, Adaptive: adaptive, Alpha: 0.25, MaxWindow: 64},
			Synchronous:   true,
		})
	}
	out := &Figure8Result{Totals: map[string]float64{}}
	for _, c := range []struct {
		name     string
		window   int
		adaptive bool
	}{
		{"window 5", 5, false},
		{"window 10", 10, false},
		{"window 50", 50, false},
		{"adaptive", 5, true},
	} {
		eng := mk(c.window, c.adaptive)
		sims, results, err := runSeq(eng, w.Catalog, queries)
		if err != nil {
			return nil, err
		}
		out.Totals[c.name] = sum(sims)
		if c.adaptive && len(results) > 0 {
			out.FinalWindow = results[len(results)-1].Report.Window
		}
	}
	return out, nil
}

// Figure9Result is the storage-elasticity sweep (paper Fig. 9): average
// speed-up over Baseline per budget phase 20% → 50% → 100% → 50% → 100%.
type Figure9Result struct {
	Phases   []string
	Speedups []float64
}

// Table renders the bars.
func (f *Figure9Result) Table() string {
	rows := make([][]string, len(f.Phases))
	for i := range f.Phases {
		rows[i] = []string{f.Phases[i], fmt.Sprintf("%.2fx", f.Speedups[i])}
	}
	return "Figure 9 (storage elasticity, 250 TPC-H queries)\n" +
		table([]string{"budget phase", "avg speedup vs Baseline"}, rows)
}

// Figure9 runs one continuous sequence while the admin changes the budget
// between phases; the engine retunes on every change.
func Figure9(cfg Config) (*Figure9Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.Queries * 5 / 4 // paper uses 250 when the others use 200
	w, err := loadWorkload("tpch", cfg)
	if err != nil {
		return nil, err
	}
	queries := w.Queries(n, cfg.Seed)
	bytes, _ := w.CostScale()

	base := newEngine(w, core.ModeExact, 1, uint64(cfg.Seed))
	baseSims, _, err := runSeq(base, w.Catalog, queries)
	if err != nil {
		return nil, err
	}

	fracs := []float64{0.2, 0.5, 1.0, 0.5, 1.0}
	per := n / len(fracs)
	eng := newEngine(w, core.ModeTaster, fracs[0], uint64(cfg.Seed))
	out := &Figure9Result{}
	for phase, frac := range fracs {
		eng.SetStorageBudget(int64(float64(bytes) * frac))
		lo, hi := phase*per, (phase+1)*per
		if phase == len(fracs)-1 {
			hi = n
		}
		sims, _, err := runSeq(eng, w.Catalog, queries[lo:hi])
		if err != nil {
			return nil, err
		}
		out.Phases = append(out.Phases, fmt.Sprintf("%d%%", int(frac*100)))
		out.Speedups = append(out.Speedups, sum(baseSims[lo:hi])/sum(sims))
	}
	return out, nil
}
