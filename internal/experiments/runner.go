// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) on the scaled-down substrate: Fig. 3a-c (end-to-end time
// per system), Fig. 4 (speed-up CDF), Fig. 5 (error CDF), Fig. 6 (workload
// adaptivity), Fig. 7 (user hints), Fig. 8 (window length), Fig. 9 (storage
// elasticity) and Table I (instacart templates). Results report simulated
// cluster seconds (the paper's I/O-bound regime, via storage.ScaledCostModel)
// alongside measured wall time.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

// Config controls experiment scale. Zero values select defaults sized for
// a laptop run of the full suite in minutes.
type Config struct {
	SF      float64 // workload scale factor (default 0.004)
	Queries int     // length of the query sequence (default 200, like §VI-A)
	Seed    int64
	// Metrics, when non-nil, is threaded into the engines the wall-clock
	// experiments construct (currently the Serving sweep), so a live
	// -metrics-addr export surface has real counters to show while a bench
	// runs. The figure experiments stay metrics-free: they are the
	// byte-reproducibility baseline.
	Metrics *obs.Metrics `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.SF <= 0 {
		c.SF = 0.004
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// loadWorkload builds the named workload at the config's scale.
func loadWorkload(name string, cfg Config) (*workload.Workload, error) {
	switch name {
	case "tpch":
		return workload.TPCH(cfg.SF, cfg.Seed), nil
	case "tpcds":
		return workload.TPCDS(cfg.SF, cfg.Seed), nil
	case "instacart":
		return workload.Instacart(cfg.SF*5, cfg.Seed), nil
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", name)
}

// newEngine builds an engine over the workload with a budget expressed as a
// fraction of the dataset size. Experiments run the tuner synchronously:
// every figure replays a fixed query sequence and must be byte-identical
// across runs, which the inline tuning round guarantees (the asynchronous
// pipeline's throughput is measured separately by the Serving experiment).
func newEngine(w *workload.Workload, mode core.Mode, budgetFrac float64, seed uint64) *core.Engine {
	bytes, rows := w.CostScale()
	return core.New(w.Catalog, core.Config{
		Mode:          mode,
		StorageBudget: int64(float64(bytes) * budgetFrac),
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          seed,
		Synchronous:   true,
	})
}

// runSeq executes the SQL sequence, returning per-query simulated seconds.
func runSeq(eng *core.Engine, cat *storage.Catalog, queries []string) ([]float64, []*core.Result, error) {
	sims := make([]float64, 0, len(queries))
	results := make([]*core.Result, 0, len(queries))
	for _, sql := range queries {
		q, err := sqlparser.Parse(sql, cat)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %w\nSQL: %s", err, sql)
		}
		res, err := eng.Execute(q)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %w\nSQL: %s", err, sql)
		}
		sims = append(sims, res.Report.SimSeconds)
		results = append(results, res)
	}
	return sims, results, nil
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// CDF summarizes a distribution at fixed percentiles.
type CDF struct {
	Values []float64 // sorted ascending
}

// NewCDF sorts a copy of the values.
func NewCDF(vals []float64) CDF {
	v := append([]float64(nil), vals...)
	sort.Float64s(v)
	return CDF{Values: v}
}

// Percentile returns the p-th percentile (p ∈ [0,100]).
func (c CDF) Percentile(p float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(c.Values)-1))
	return c.Values[idx]
}

// FractionBelow returns the fraction of values ≤ x.
func (c CDF) FractionBelow(x float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(c.Values, x)
	// include equal values
	for n < len(c.Values) && c.Values[n] <= x {
		n++
	}
	return float64(n) / float64(len(c.Values))
}

// table renders an ASCII table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "| %-*s ", width[i], c)
		}
		sb.WriteString("|\n")
	}
	line(header)
	for i := range header {
		sb.WriteString("|" + strings.Repeat("-", width[i]+2))
	}
	sb.WriteString("|\n")
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
