package experiments

import (
	"fmt"
	"math/rand"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

// PartitionResult is the zone-map pruning sweep: a time-clustered fact
// table, tiled into fixed-size partitions, is queried with selective
// day-range aggregates by two otherwise identical engines — pruning on
// versus off. Answers are bit-equal by construction (pruning is sound; the
// differential harness proves it); what differs is work: bytes scanned and
// simulated cluster seconds.
type PartitionResult struct {
	Rows          int
	PartitionRows int
	Partitions    int
	Queries       int
	SpanFrac      float64 // fraction of the day domain each query touches
	// Totals over the query sequence.
	PrunedSim   float64
	FullSim     float64
	PrunedBytes int64
	FullBytes   int64
	// SimSpeedup = FullSim/PrunedSim; BytesRatio = FullBytes/PrunedBytes.
	SimSpeedup float64
	BytesRatio float64
	// ResultsEqual reports bit-equality of the two engines' row streams.
	ResultsEqual bool
}

// Table renders the experiment.
func (r *PartitionResult) Table() string {
	rows := [][]string{
		{"pruning off", fmt.Sprintf("%.1f", r.FullSim), fmt.Sprintf("%d", r.FullBytes), "reference"},
		{"pruning on", fmt.Sprintf("%.1f", r.PrunedSim), fmt.Sprintf("%d", r.PrunedBytes),
			fmt.Sprintf("%.1fx sim, %.1fx bytes, equal=%v", r.SimSpeedup, r.BytesRatio, r.ResultsEqual)},
	}
	return fmt.Sprintf("Partition pruning (%d rows, %d partitions of %d, %d queries @ %.0f%% day span) — simulated cluster seconds\n",
		r.Rows, r.Partitions, r.PartitionRows, r.Queries, r.SpanFrac*100) +
		table([]string{"engine", "total sim", "base bytes", "notes"}, rows)
}

// partitionDays is the day domain of the synthetic event table.
const partitionDays = 365

// partitionTable builds the time-clustered fact table: rows arrive in day
// order (the natural clustering of any append-only event log), so zone maps
// over fixed-size partitions carry tight day ranges and a selective day
// predicate provably excludes most partitions.
func partitionTable(rows int, seed int64) *storage.Catalog {
	r := rand.New(rand.NewSource(seed))
	b := storage.NewBuilder("events", storage.Schema{
		{Name: "events.day", Typ: storage.Int64},
		{Name: "events.region", Typ: storage.Int64},
		{Name: "events.amount", Typ: storage.Float64},
	})
	for i := 0; i < rows; i++ {
		b.Int(0, int64(i*partitionDays/rows))
		b.Int(1, int64(r.Intn(8)))
		b.Float(2, float64(r.Intn(1000))/4+1)
	}
	cat := storage.NewCatalog()
	cat.Register(b.Build(1))
	return cat
}

// partitionQuery is one selective day-range aggregate.
func partitionQuery(cat *storage.Catalog, lo, hi int64) *planner.Query {
	events, _ := cat.Table("events")
	return &planner.Query{
		Tables: []planner.TableRef{{Name: "events", Table: events}},
		Filter: &expr.Logic{
			Op: expr.And,
			L:  &expr.Cmp{Op: expr.GE, L: &expr.Col{Name: "events.day"}, R: &expr.Const{Val: storage.IntValue(lo)}},
			R:  &expr.Cmp{Op: expr.LE, L: &expr.Col{Name: "events.day"}, R: &expr.Const{Val: storage.IntValue(hi)}},
		},
		GroupBy:  []string{"events.region"},
		Aggs:     []plan.AggSpec{{Kind: stats.Sum, Col: "events.amount"}},
		Exact:    true,
		Accuracy: stats.DefaultAccuracy,
	}
}

// Partition runs the pruning sweep. Scale: rows grow with cfg.SF (the
// default 0.004 gives 20000 rows in 32 partitions), query count follows
// cfg.Queries capped at 64 — the sweep is A/B at fixed data, not a figure
// replay, so a short sequence already saturates the ratio.
func Partition(cfg Config) (*PartitionResult, error) {
	cfg = cfg.withDefaults()
	rows := int(5e6 * cfg.SF)
	if rows < 20000 {
		rows = 20000
	}
	partRows := rows / 32
	queries := cfg.Queries
	if queries > 64 {
		queries = 64
	}
	const spanFrac = 0.05

	out := &PartitionResult{
		Rows:          rows,
		PartitionRows: partRows,
		Queries:       queries,
		SpanFrac:      spanFrac,
	}

	run := func(disable bool) (float64, int64, [][][]storage.Value, error) {
		cat := partitionTable(rows, cfg.Seed)
		e := core.New(cat, core.Config{
			Mode:           core.ModeExact,
			StorageBudget:  cat.TotalBytes(),
			BufferSize:     cat.TotalBytes(),
			CostModel:      storage.ScaledCostModel(cat.TotalBytes(), int64(rows)),
			Seed:           uint64(cfg.Seed),
			PartitionRows:  partRows,
			DisablePruning: disable,
		})
		// Re-resolve: core.New retiles the catalog per PartitionRows.
		events, _ := cat.Table("events")
		out.Partitions = events.Partitions()
		r := rand.New(rand.NewSource(cfg.Seed + 1))
		days := float64(partitionDays)
		span := int64(days * spanFrac)
		var sim float64
		var bytes int64
		var results [][][]storage.Value
		for i := 0; i < queries; i++ {
			lo := int64(r.Intn(partitionDays - int(span)))
			res, err := e.Execute(partitionQuery(cat, lo, lo+span))
			if err != nil {
				return 0, 0, nil, err
			}
			sim += res.Report.SimSeconds
			bytes += res.Report.ScanBytes
			results = append(results, res.Rows)
		}
		return sim, bytes, results, nil
	}

	var prunedRows, fullRows [][][]storage.Value
	var err error
	if out.FullSim, out.FullBytes, fullRows, err = run(true); err != nil {
		return nil, err
	}
	if out.PrunedSim, out.PrunedBytes, prunedRows, err = run(false); err != nil {
		return nil, err
	}
	out.SimSpeedup = safeRatio(out.FullSim, out.PrunedSim)
	out.BytesRatio = safeRatio(float64(out.FullBytes), float64(out.PrunedBytes))
	out.ResultsEqual = equalRowRuns(prunedRows, fullRows)
	return out, nil
}

// equalRowRuns compares two sequences of result-row sets value by value.
func equalRowRuns(a, b [][][]storage.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if len(a[i][j]) != len(b[i][j]) {
				return false
			}
			for c := range a[i][j] {
				if !a[i][j][c].Equal(b[i][j][c]) {
					return false
				}
			}
		}
	}
	return true
}
