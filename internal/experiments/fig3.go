package experiments

import (
	"fmt"

	"github.com/tasterdb/taster/internal/baselines"
	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/storage"
)

// SystemRun is one bar of Fig. 3: a system's offline and query-execution
// time over the whole sequence.
type SystemRun struct {
	System     string
	OfflineSec float64 // simulated offline phase (BlinkDB sampling)
	QuerySec   float64 // simulated query execution, summed
	Speedup    float64 // Baseline query time / this system's total time
}

// Figure3Result is the full figure for one workload.
type Figure3Result struct {
	Workload string
	Queries  int
	Runs     []SystemRun
}

// Table renders the figure as rows.
func (f *Figure3Result) Table() string {
	rows := make([][]string, 0, len(f.Runs))
	for _, r := range f.Runs {
		rows = append(rows, []string{
			r.System,
			fmt.Sprintf("%.0f", r.OfflineSec),
			fmt.Sprintf("%.0f", r.QuerySec),
			fmt.Sprintf("%.0f", r.OfflineSec+r.QuerySec),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return fmt.Sprintf("Figure 3 (%s, %d queries) — simulated cluster seconds\n", f.Workload, f.Queries) +
		table([]string{"system", "offline", "query exec", "total", "speedup"}, rows)
}

// Figure3 reproduces Fig. 3a/b/c: end-to-end execution time of the 200-query
// random workload for Baseline, Quickr, BlinkDB and Taster. TPC-H also runs
// the 100% budget variants (paper §VI-A). BlinkDB receives the whole query
// sequence as its oracle, exactly as the paper's footnote 2 grants it.
func Figure3(workloadName string, cfg Config) (*Figure3Result, error) {
	cfg = cfg.withDefaults()
	w, err := loadWorkload(workloadName, cfg)
	if err != nil {
		return nil, err
	}
	queries := w.Queries(cfg.Queries, cfg.Seed)
	bytes, rows := w.CostScale()
	model := storage.ScaledCostModel(bytes, rows)

	out := &Figure3Result{Workload: workloadName, Queries: cfg.Queries}

	// Baseline.
	base := newEngine(w, core.ModeExact, 1, uint64(cfg.Seed))
	baseSims, _, err := runSeq(base, w.Catalog, queries)
	if err != nil {
		return nil, err
	}
	baseTotal := sum(baseSims)
	out.Runs = append(out.Runs, SystemRun{System: "Baseline", QuerySec: baseTotal, Speedup: 1})

	// Quickr.
	quickr := newEngine(w, core.ModeQuickr, 1, uint64(cfg.Seed))
	qSims, _, err := runSeq(quickr, w.Catalog, queries)
	if err != nil {
		return nil, err
	}
	out.Runs = append(out.Runs, SystemRun{
		System: "Quickr", QuerySec: sum(qSims), Speedup: baseTotal / sum(qSims),
	})

	budgets := []float64{0.5}
	if workloadName == "tpch" {
		budgets = []float64{0.5, 1.0}
	}
	for _, frac := range budgets {
		pct := int(frac * 100)

		// BlinkDB at this budget, oracle-fed.
		bdb, off, err := baselines.BlinkDBOffline(w.Catalog, queries,
			int64(float64(bytes)*frac), model, uint64(cfg.Seed))
		if err != nil {
			return nil, err
		}
		bSims, _, err := runSeq(bdb, w.Catalog, queries)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, SystemRun{
			System:     fmt.Sprintf("BlinkDB(%d%%)", pct),
			OfflineSec: off.SimSeconds,
			QuerySec:   sum(bSims),
			Speedup:    baseTotal / (off.SimSeconds + sum(bSims)),
		})

		// Taster at this budget, no oracle, no offline phase.
		taster := newEngine(w, core.ModeTaster, frac, uint64(cfg.Seed))
		tSims, _, err := runSeq(taster, w.Catalog, queries)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, SystemRun{
			System:   fmt.Sprintf("Taster(%d%%)", pct),
			QuerySec: sum(tSims),
			Speedup:  baseTotal / sum(tSims),
		})
	}
	return out, nil
}
