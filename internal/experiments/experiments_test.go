package experiments

import (
	"strings"
	"testing"
)

// tiny is the smallest configuration exercising all machinery quickly.
var tiny = Config{SF: 0.004, Queries: 24, Seed: 7}

func TestFigure3TPCHShape(t *testing.T) {
	f, err := Figure3("tpch", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 6 {
		t.Fatalf("TPC-H must have 6 bars (incl. 100%% budgets), got %d", len(f.Runs))
	}
	byName := map[string]SystemRun{}
	for _, r := range f.Runs {
		byName[r.System] = r
	}
	base := byName["Baseline"]
	taster := byName["Taster(50%)"]
	quickr := byName["Quickr"]
	blinkdb := byName["BlinkDB(50%)"]
	// Paper Fig. 3a shape: Taster beats Quickr substantially and at least
	// matches BlinkDB; everyone beats Baseline; only BlinkDB pays offline.
	if taster.QuerySec >= base.QuerySec {
		t.Fatalf("Taster %.0f must beat Baseline %.0f", taster.QuerySec, base.QuerySec)
	}
	if taster.QuerySec >= quickr.QuerySec {
		t.Fatalf("Taster %.0f must beat Quickr %.0f (reuse!)", taster.QuerySec, quickr.QuerySec)
	}
	if taster.Speedup < blinkdb.Speedup {
		t.Fatalf("Taster %.2fx must at least match BlinkDB %.2fx", taster.Speedup, blinkdb.Speedup)
	}
	if blinkdb.OfflineSec <= 0 || taster.OfflineSec != 0 || quickr.OfflineSec != 0 {
		t.Fatal("only BlinkDB pays an offline phase")
	}
	// 50% vs 100% budget gap small for Taster (paper: <10%; allow slack).
	t100 := byName["Taster(100%)"]
	gap := (taster.QuerySec - t100.QuerySec) / t100.QuerySec
	if gap < -0.05 || gap > 0.35 {
		t.Fatalf("Taster 50%%/100%% gap = %.2f, want small", gap)
	}
	if !strings.Contains(f.Table(), "Taster(50%)") {
		t.Fatal("table rendering")
	}
}

func TestFigure3OtherWorkloads(t *testing.T) {
	for _, wl := range []string{"tpcds", "instacart"} {
		f, err := Figure3(wl, tiny)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if len(f.Runs) != 4 {
			t.Fatalf("%s must have 4 bars, got %d", wl, len(f.Runs))
		}
		var base, taster SystemRun
		for _, r := range f.Runs {
			if r.System == "Baseline" {
				base = r
			}
			if strings.HasPrefix(r.System, "Taster") {
				taster = r
			}
		}
		if taster.QuerySec >= base.QuerySec {
			t.Fatalf("%s: Taster %.0f must beat Baseline %.0f", wl, taster.QuerySec, base.QuerySec)
		}
	}
	if _, err := Figure3("nope", tiny); err == nil {
		t.Fatal("want unknown workload error")
	}
}

func TestFigure4SpeedupCDF(t *testing.T) {
	// Fig. 4 needs a longer sequence than `tiny` for reuse to warm up.
	f, err := Figure4(Config{SF: 0.004, Queries: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: less than ~10% of queries slow down (planning overhead); allow
	// headroom at tiny scale.
	if f.FracSlowedDown > 0.35 {
		t.Fatalf("%.0f%% of queries slowed down", 100*f.FracSlowedDown)
	}
	if f.MedianSpeedup <= 1 {
		t.Fatalf("median speedup %.2f must exceed 1", f.MedianSpeedup)
	}
	if f.Speedups.Percentile(90) < 2 {
		t.Fatalf("p90 speedup %.2f too low", f.Speedups.Percentile(90))
	}
	if f.MaxSpeedup < f.MedianSpeedup {
		t.Fatal("max < median?")
	}
	if f.Table() == "" {
		t.Fatal("render")
	}
}

func TestFigure5ErrorCDF(t *testing.T) {
	f, err := Figure5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: no missing groups, >93% of queries under 10% error, all <12%.
	// Tiny scale has fewer rows per group; we verify the qualitative bar.
	if f.MissingGroups > 0 {
		t.Fatalf("%d missing groups (distinct sampler must prevent this)", f.MissingGroups)
	}
	if f.FracUnder10 < 0.6 {
		t.Fatalf("only %.0f%% of queries under 10%% error", 100*f.FracUnder10)
	}
	if f.MaxError > 0.5 {
		t.Fatalf("max error %.2f too large", f.MaxError)
	}
	if f.Table() == "" {
		t.Fatal("render")
	}
}

func TestFigure6Adaptivity(t *testing.T) {
	f, err := Figure6(Config{SF: 0.004, Queries: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 80 {
		t.Fatalf("points = %d", len(f.Points))
	}
	// The warehouse must actually turn over across epochs: some evictions
	// and creations happen after the first epoch (shifting interests).
	evictions, creations := 0, 0
	for _, p := range f.Points[20:] {
		evictions += p.Evictions
		creations += p.Creations
	}
	if evictions == 0 || creations == 0 {
		t.Fatalf("no warehouse turnover across epochs (evict=%d create=%d)", evictions, creations)
	}
	// Warehouse occupancy stays within the budget at every point.
	for _, p := range f.Points {
		if p.WarehouseBytes < 0 {
			t.Fatal("negative occupancy")
		}
	}
	if f.Table() == "" {
		t.Fatal("render")
	}
}

func TestFigure7Hints(t *testing.T) {
	f, err := Figure7(Config{SF: 0.004, Queries: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.HintsScramble <= 0 || f.HintsOfflineSec <= 0 {
		t.Fatalf("offline phases must cost: %+v", f)
	}
	// Paper Fig. 7 shape: hints beat both baseline and plain Taster on the
	// full mix, and help most on the hinted database.
	if f.SpeedupAll <= 1 {
		t.Fatalf("hints total speedup %.2f must exceed 1", f.SpeedupAll)
	}
	if f.SpeedupDboff < f.SpeedupAll*0.8 {
		t.Fatalf("dboff speedup %.2f should be at least comparable to overall %.2f",
			f.SpeedupDboff, f.SpeedupAll)
	}
	if f.Table() == "" {
		t.Fatal("render")
	}
}

func TestFigure8WindowLengths(t *testing.T) {
	f, err := Figure8(Config{SF: 0.004, Queries: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"window 5", "window 10", "window 50", "adaptive"} {
		if f.Totals[k] <= 0 {
			t.Fatalf("missing config %q", k)
		}
	}
	// Paper: adaptive at least matches the best static setting (within
	// noise at tiny scale).
	best := f.Totals["window 5"]
	for _, k := range []string{"window 10", "window 50"} {
		if f.Totals[k] < best {
			best = f.Totals[k]
		}
	}
	if f.Totals["adaptive"] > best*1.25 {
		t.Fatalf("adaptive %.0f much worse than best static %.0f", f.Totals["adaptive"], best)
	}
	if f.FinalWindow < 2 {
		t.Fatalf("final window = %d", f.FinalWindow)
	}
	if f.Table() == "" {
		t.Fatal("render")
	}
}

func TestFigure9Elasticity(t *testing.T) {
	f, err := Figure9(Config{SF: 0.004, Queries: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Phases) != 5 || f.Phases[0] != "20%" || f.Phases[2] != "100%" {
		t.Fatalf("phases = %v", f.Phases)
	}
	for i, s := range f.Speedups {
		if s <= 0 {
			t.Fatalf("phase %d speedup %.2f", i, s)
		}
	}
	// Paper Fig. 9 shape: the tight 20% phase must not beat the roomy
	// steady-state 100% phase (index 4, after warm-up).
	if f.Speedups[0] > f.Speedups[4] {
		t.Fatalf("20%% budget (%.2fx) outperformed steady 100%% (%.2fx)",
			f.Speedups[0], f.Speedups[4])
	}
	if f.Table() == "" {
		t.Fatal("render")
	}
}

func TestTableI(t *testing.T) {
	f, err := TableI(Config{SF: 0.004, Queries: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 templates", len(f.Rows))
	}
	agrees := 0
	for _, r := range f.Rows {
		if r.Agrees {
			agrees++
		}
	}
	// Taster's planner should respect the paper's sketch/sample designation
	// for most templates.
	if agrees < 6 {
		t.Fatalf("only %d/8 templates match their Table-I family:\n%s", agrees, f.Table())
	}
}

func TestCDFHelpers(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	if c.Percentile(0) != 1 || c.Percentile(100) != 3 {
		t.Fatal("percentiles")
	}
	if c.FractionBelow(2) != 2.0/3 {
		t.Fatalf("FractionBelow = %v", c.FractionBelow(2))
	}
	empty := NewCDF(nil)
	if empty.Percentile(50) != 0 || empty.FractionBelow(1) != 0 {
		t.Fatal("empty CDF")
	}
}

func TestStreamingExperiment(t *testing.T) {
	s, err := Streaming("tpch", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 3 || s.Appends == 0 {
		t.Fatalf("rows=%d appends=%d", len(s.Rows), s.Appends)
	}
	fresh, unbounded := s.Rows[0], s.Rows[2]
	if fresh.MaxStaleness != 0 || unbounded.MaxStaleness >= 0 {
		t.Fatalf("policy order: %+v", s.Rows)
	}
	// The fresh-only policy may never answer from a synopsis that missed
	// appended rows, so it can only reuse less (and build at least as much)
	// than the unbounded baseline over the identical stream.
	if fresh.ReuseQueries > unbounded.ReuseQueries {
		t.Fatalf("fresh-only reused %d > unbounded %d", fresh.ReuseQueries, unbounded.ReuseQueries)
	}
	if !strings.Contains(s.Table(), "staleness bound") {
		t.Fatal("table rendering")
	}
}

func TestServingExperimentSmoke(t *testing.T) {
	// Throughput numbers are machine-relative wall time; the smoke test
	// asserts the sweep's structure — both engine variants complete the
	// closed loop at every client count — not its magnitudes.
	s, err := Serving("tpch", Config{SF: 0.002, Queries: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("client sweep rows = %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if r.InlineQPS <= 0 || r.AsyncQPS <= 0 {
			t.Fatalf("clients=%d: qps inline=%v async=%v", r.Clients, r.InlineQPS, r.AsyncQPS)
		}
	}
	// Hit rates must be monotone-ish across the sweep: each engine warms
	// until a full pass adds no plan-cache misses, so the timed loop starts
	// from a cache-resident steady state at every client count and no row may
	// collapse far below its neighbours (the historical failure mode was a
	// 26% two-client row between 81% and 89%). Residual tuning rearrangements
	// under contention still cost a few misses, hence the slack band rather
	// than strict monotonicity.
	for i, r := range s.Rows {
		if i > 0 && r.HitRate < s.Rows[i-1].HitRate-0.25 {
			t.Fatalf("clients=%d: plan-cache hit rate %.0f%% collapsed below the %d-client row's %.0f%%",
				r.Clients, 100*r.HitRate, s.Rows[i-1].Clients, 100*s.Rows[i-1].HitRate)
		}
	}
	if !strings.Contains(s.Table(), "closed-loop throughput") {
		t.Fatal("table rendering")
	}
}

// TestPartitionPruningSpeedup is the PR's perf acceptance criterion: on the
// time-clustered selective-predicate workload, zone-map pruning must cut
// simulated time by at least 2x (it should do far better on scan bytes)
// while leaving every answer bit-equal.
func TestPartitionPruningSpeedup(t *testing.T) {
	r, err := Partition(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ResultsEqual {
		t.Fatal("pruning changed query answers")
	}
	if r.SimSpeedup < 2 {
		t.Fatalf("pruning speedup %.2fx < 2x (pruned %.1f vs full %.1f sim seconds)",
			r.SimSpeedup, r.PrunedSim, r.FullSim)
	}
	if r.BytesRatio < 2 {
		t.Fatalf("scan-byte ratio %.2fx < 2x", r.BytesRatio)
	}
	if r.Partitions < 2 {
		t.Fatalf("table tiled into %d partitions; pruning cannot fire", r.Partitions)
	}
	if !strings.Contains(r.Table(), "Partition pruning") {
		t.Fatal("table rendering")
	}
}
