package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

// ServingRow is one client count's closed-loop throughput measurement,
// inline (synchronous tuning round on the query path — the pre-refactor
// engine) versus asynchronous (lock-free serving against the published
// tuning snapshot).
type ServingRow struct {
	Clients   int
	InlineQPS float64
	AsyncQPS  float64
	Speedup   float64 // async / inline
	Dropped   int64   // observations the async tuner shed under this load
}

// ServingResult is the concurrent-serving throughput experiment: a
// closed-loop multi-client sweep showing how query throughput scales with
// client count once tuning is off the per-query critical path. Unlike the
// figure experiments it measures wall time, so absolute numbers are
// machine-dependent; the inline column is the single-tuning-mutex ceiling
// the async column is compared against on the same machine.
type ServingResult struct {
	Workload string
	Queries  int // closed-loop queries per engine run
	MaxProcs int
	Rows     []ServingRow
}

// Table renders the sweep.
func (s *ServingResult) Table() string {
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d", r.Clients),
			fmt.Sprintf("%.0f", r.InlineQPS),
			fmt.Sprintf("%.0f", r.AsyncQPS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.Dropped),
		}
	}
	return fmt.Sprintf("Concurrent serving (%s, %d queries/run, GOMAXPROCS=%d): closed-loop throughput\n",
		s.Workload, s.Queries, s.MaxProcs) +
		table([]string{"clients", "inline q/s", "async q/s", "speedup", "shed obs"}, rows)
}

// servingClients is the closed-loop client sweep.
var servingClients = []int{1, 2, 4, 8}

// Serving measures concurrent-query throughput for each client count under
// both tuning disciplines. Each run is closed-loop: the clients jointly
// drain the same query sequence (parse + plan + execute per query, exactly
// the serving path) as fast as the engine lets them. Engines run with
// Workers=1 so intra-query morsel parallelism does not mask inter-query
// scaling — the quantity under test is how many queries the engine serves
// at once, not how fast one query runs.
func Serving(wl string, cfg Config) (*ServingResult, error) {
	cfg = cfg.withDefaults()
	w, err := loadWorkload(wl, cfg)
	if err != nil {
		return nil, err
	}
	queries := w.Queries(cfg.Queries, cfg.Seed)
	out := &ServingResult{Workload: wl, Queries: cfg.Queries, MaxProcs: runtime.GOMAXPROCS(0)}

	for _, clients := range servingClients {
		inline, _, err := servingRun(w, queries, clients, cfg, true)
		if err != nil {
			return nil, err
		}
		async, dropped, err := servingRun(w, queries, clients, cfg, false)
		if err != nil {
			return nil, err
		}
		row := ServingRow{Clients: clients, InlineQPS: inline, AsyncQPS: async, Dropped: dropped}
		if inline > 0 {
			row.Speedup = async / inline
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// servingRun drives one engine with the given client count and returns its
// closed-loop throughput (plus shed-observation count for async engines).
func servingRun(w *workload.Workload, queries []string, clients int, cfg Config, synchronous bool) (qps float64, dropped int64, err error) {
	bytes, rows := w.CostScale()
	eng := core.New(w.Catalog, core.Config{
		Mode:          core.ModeTaster,
		StorageBudget: bytes / 2,
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          uint64(cfg.Seed),
		Workers:       1,
		Synchronous:   synchronous,
	})
	defer eng.Close()

	var next int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(queries) {
					return
				}
				q, perr := sqlparser.Parse(queries[i], w.Catalog)
				if perr != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("serving: %w\nSQL: %s", perr, queries[i]))
					return
				}
				if _, xerr := eng.Execute(q); xerr != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("serving: %w\nSQL: %s", xerr, queries[i]))
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if e, ok := firstErr.Load().(error); ok && e != nil {
		return 0, 0, e
	}
	eng.Quiesce() // settle the tuner before reading its accounting
	if wall <= 0 {
		wall = 1e-9
	}
	return float64(len(queries)) / wall, eng.TuningStats().Dropped, nil
}
