package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/tuner"
	"github.com/tasterdb/taster/internal/workload"
)

// ServingRow is one client count's closed-loop throughput measurement,
// inline (synchronous tuning round on the query path — the pre-refactor
// engine) versus asynchronous (lock-free serving against the published
// tuning snapshot plus the plan-cache fast path).
type ServingRow struct {
	Clients   int
	InlineQPS float64
	AsyncQPS  float64
	Speedup   float64 // async / inline
	// Efficiency is per-client scaling: AsyncQPS / (Clients × 1-client
	// AsyncQPS). 1.0 is perfect linear scaling; on a single-core host the
	// interesting property is that it stays near 1/Clients·constant — i.e.
	// adding clients must not collapse absolute throughput.
	Efficiency float64
	// HitRate is the async engine's plan-cache hit fraction over the timed
	// closed loop (hits / lookups, warmup excluded). In steady state the
	// only misses left are snapshot-identity advances from residual tuning
	// rearrangements.
	HitRate float64
	Dropped int64 // observations the async tuner shed under this load
	// P50Millis/P99Millis are the async engine's per-query latency
	// percentiles over the timed closed loop; InlineP50Millis/
	// InlineP99Millis the inline engine's. Mean throughput alone cannot
	// distinguish flat scaling (every query slower) from tail collapse (a
	// few queries stall behind the tuning mutex) — the tail columns are
	// what the ROADMAP's flat-scaling diagnosis needs.
	P50Millis       float64
	P99Millis       float64
	InlineP50Millis float64
	InlineP99Millis float64
}

// ServingResult is the concurrent-serving throughput experiment: a
// closed-loop multi-client sweep showing how query throughput scales with
// client count once tuning is off the per-query critical path and repeated
// query shapes are served from the plan cache. Unlike the figure experiments
// it measures wall time, so absolute numbers are machine-dependent; the
// inline column is the single-tuning-mutex ceiling the async column is
// compared against on the same machine.
type ServingResult struct {
	Workload string
	Queries  int // distinct query instances per engine run
	Passes   int // closed-loop passes over the instance list
	MaxProcs int
	Rows     []ServingRow
}

// Table renders the sweep.
func (s *ServingResult) Table() string {
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d", r.Clients),
			fmt.Sprintf("%.0f", r.InlineQPS),
			fmt.Sprintf("%.0f", r.AsyncQPS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.2f", r.Efficiency),
			fmt.Sprintf("%.0f%%", 100*r.HitRate),
			fmt.Sprintf("%d", r.Dropped),
			fmt.Sprintf("%.2f", r.P50Millis),
			fmt.Sprintf("%.2f", r.P99Millis),
		}
	}
	return fmt.Sprintf("Concurrent serving (%s, %d queries x %d passes/run, GOMAXPROCS=%d): closed-loop throughput\n",
		s.Workload, s.Queries, s.Passes, s.MaxProcs) +
		table([]string{"clients", "inline q/s", "async q/s", "speedup", "scaling eff", "cache hit", "shed obs", "p50 ms", "p99 ms"}, rows)
}

// servingClients is the closed-loop client sweep.
var servingClients = []int{1, 2, 4, 8}

// servingPasses is how many times the timed closed loop drains the query
// list. Serving workloads repeat (dashboards and reports re-issue identical
// shapes), and repetition is what the plan-cache fast path exists for; the
// inline engine serves the same total, so the comparison stays
// apples-to-apples.
const servingPasses = 6

// Serving measures concurrent-query throughput for each client count under
// both tuning disciplines. Each run is closed-loop: the clients jointly
// drain the same query sequence servingPasses times (parse + plan + execute
// per query, exactly the serving path) as fast as the engine lets them.
// Engines run with Workers=1 so intra-query morsel parallelism does not mask
// inter-query scaling — the quantity under test is how many queries the
// engine serves at once, not how fast one query runs.
//
// The sweep forces GOMAXPROCS above 1 (inherited GOMAXPROCS=1 environments
// would otherwise serialize every client on a single P, measuring the
// scheduler's time-slicing instead of the engine's concurrency): all
// available cores, and at least 2 so the lock-free serving claim is
// exercised by genuinely interleaved clients even on one-core hosts.
func Serving(wl string, cfg Config) (*ServingResult, error) {
	procs := runtime.NumCPU()
	if procs < 2 {
		procs = 2
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	cfg = cfg.withDefaults()
	w, err := loadWorkload(wl, cfg)
	if err != nil {
		return nil, err
	}
	queries := w.Queries(cfg.Queries, cfg.Seed)
	out := &ServingResult{Workload: wl, Queries: cfg.Queries, Passes: servingPasses, MaxProcs: runtime.GOMAXPROCS(0)}

	var asyncBase float64
	for _, clients := range servingClients {
		inline, err := servingRun(w, queries, clients, cfg, true)
		if err != nil {
			return nil, err
		}
		async, err := servingRun(w, queries, clients, cfg, false)
		if err != nil {
			return nil, err
		}
		st := async.st
		row := ServingRow{
			Clients: clients, InlineQPS: inline.qps, AsyncQPS: async.qps,
			Dropped:   st.Dropped,
			P50Millis: async.p50Millis, P99Millis: async.p99Millis,
			InlineP50Millis: inline.p50Millis, InlineP99Millis: inline.p99Millis,
		}
		if inline.qps > 0 {
			row.Speedup = async.qps / inline.qps
		}
		if asyncBase == 0 {
			asyncBase = async.qps
		}
		if asyncBase > 0 {
			row.Efficiency = async.qps / (float64(clients) * asyncBase)
		}
		if lookups := st.PlanCacheHits + st.PlanCacheMisses; lookups > 0 {
			row.HitRate = float64(st.PlanCacheHits) / float64(lookups)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// servingMeasure is one servingRun's outcome: closed-loop throughput, the
// per-query latency percentiles over the timed loop, and the async tuning
// accounting (zero value for synchronous engines, which run neither the
// service nor the plan cache).
type servingMeasure struct {
	qps       float64
	p50Millis float64
	p99Millis float64
	st        core.TuningStats
}

// servingRun drives one engine with the given client count and measures its
// timed closed loop.
func servingRun(w *workload.Workload, queries []string, clients int, cfg Config, synchronous bool) (servingMeasure, error) {
	bytes, rows := w.CostScale()
	// The warehouse gets a comfortable budget (4x the dataset; the figure
	// experiments keep their constrained quotas): storage pressure makes the
	// tuner oscillate admissions/evictions, and every rearrangement both
	// forces synopsis rebuilds and advances the snapshot identity that keys
	// the plan cache. This sweep measures serving concurrency, not
	// storage-pressure churn.
	eng := core.New(w.Catalog, core.Config{
		Mode:          core.ModeTaster,
		StorageBudget: bytes * 4,
		BufferSize:    bytes,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          uint64(cfg.Seed),
		Workers:       1,
		Synchronous:   synchronous,
		// The tuning window must cover the repeating query list: the default
		// adaptive window tops out at 64 queries, and with more distinct
		// shapes than window slots a synopsis serving the shapes currently
		// outside the window loses its in-window benefits every round, gets
		// evicted, and is re-admitted when its shape comes around again. That
		// perpetual rearrangement advances the snapshot ident each round and
		// shreds the plan cache (the historical 2-client 26% hit-rate
		// anomaly). Two full cycles of the list let every shape stay
		// benefit-visible, so the keep set — and with it the ident — goes
		// quiescent once warm. Like the 4x storage budget above: this sweep
		// measures serving concurrency, not retention churn.
		Tuner: tuner.Config{
			Window:    2 * len(queries),
			Alpha:     0.25,
			Adaptive:  false,
			MaxWindow: 2 * len(queries),
		},
		// Thread the bench harness's registry through (nil disables the obs
		// layer): a live -metrics-addr export shows real serving counters
		// while the sweep runs.
		Metrics: cfg.Metrics,
	})
	defer eng.Close()

	// Untimed warmup: serial passes over the query list until the warehouse
	// stops rearranging AND the plan cache stops taking misses (bounded),
	// then a quiesce. The timed closed loop below then measures steady-state
	// serving — the tuner's warmup pipeline (a synopsis is observed, then
	// selected by a round, then materialized by a later repetition, then
	// promoted) takes several passes to settle under asynchronous publish
	// gating, and letting it smear across the timed passes would dominate
	// run-to-run variance on short sweeps. The miss condition matters
	// separately from the move condition: the move count can plateau one
	// pass before the snapshot identity that keys the plan cache stops
	// advancing, and a sweep that starts timing in that window reports a
	// collapsed hit rate for whichever client count drew the short straw
	// (historically the 2-client row: 26% against 81%/89% neighbours).
	warmPass := func() (st core.TuningStats, err error) {
		for _, sql := range queries {
			q, perr := sqlparser.Parse(sql, w.Catalog)
			if perr != nil {
				return st, fmt.Errorf("serving warmup: %w\nSQL: %s", perr, sql)
			}
			if _, xerr := eng.Execute(q); xerr != nil {
				return st, fmt.Errorf("serving warmup: %w\nSQL: %s", xerr, sql)
			}
		}
		eng.Quiesce()
		return eng.TuningStats(), nil
	}
	prevMoves, prevMisses := int64(-1), int64(-1)
	for pass := 0; pass < 12; pass++ {
		wst, werr := warmPass()
		if werr != nil {
			return servingMeasure{}, werr
		}
		moves := wst.Admitted + wst.Refreshed + wst.Evicted + wst.Promoted
		if moves == prevMoves && wst.PlanCacheMisses == prevMisses {
			break
		}
		prevMoves, prevMisses = moves, wst.PlanCacheMisses
	}
	warm := eng.TuningStats() // subtracted below: report timed-loop cache behaviour only

	total := servingPasses * len(queries)
	// Per-query wall latency, recorded by work-item index: every i is claimed
	// by exactly one client, so the slice needs no lock.
	lats := make([]float64, total)
	var next int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= total {
					return
				}
				sql := queries[i%len(queries)]
				qstart := time.Now()
				q, perr := sqlparser.Parse(sql, w.Catalog)
				if perr != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("serving: %w\nSQL: %s", perr, sql))
					return
				}
				if _, xerr := eng.Execute(q); xerr != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("serving: %w\nSQL: %s", xerr, sql))
					return
				}
				lats[i] = time.Since(qstart).Seconds()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if e, ok := firstErr.Load().(error); ok && e != nil {
		return servingMeasure{}, e
	}
	eng.Quiesce() // settle the tuner before reading its accounting
	if wall <= 0 {
		wall = 1e-9
	}
	st := eng.TuningStats()
	st.PlanCacheHits -= warm.PlanCacheHits
	st.PlanCacheMisses -= warm.PlanCacheMisses
	st.Dropped -= warm.Dropped
	cdf := NewCDF(lats)
	return servingMeasure{
		qps:       float64(total) / wall,
		p50Millis: cdf.Percentile(50) * 1000,
		p99Millis: cdf.Percentile(99) * 1000,
		st:        st,
	}, nil
}
