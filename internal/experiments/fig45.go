package experiments

import (
	"fmt"
	"math"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/storage"
)

// Figure4Result is the CDF of per-query speed-up of Taster over Baseline
// (paper Fig. 4: <10% of queries slow down, >50% sped up more than 6×,
// max ≈13× via sketches).
type Figure4Result struct {
	Speedups       CDF
	FracSlowedDown float64 // speedup < 1
	FracAbove6x    float64
	MaxSpeedup     float64
	MedianSpeedup  float64
}

// Table renders CDF landmarks.
func (f *Figure4Result) Table() string {
	rows := [][]string{
		{"queries slowed down", fmt.Sprintf("%.1f%%", 100*f.FracSlowedDown)},
		{"median speed-up", fmt.Sprintf("%.2fx", f.MedianSpeedup)},
		{"queries sped up >6x", fmt.Sprintf("%.1f%%", 100*f.FracAbove6x)},
		{"max speed-up", fmt.Sprintf("%.2fx", f.MaxSpeedup)},
		{"p10 / p50 / p90", fmt.Sprintf("%.2fx / %.2fx / %.2fx",
			f.Speedups.Percentile(10), f.Speedups.Percentile(50), f.Speedups.Percentile(90))},
	}
	return "Figure 4 (per-query speed-up CDF, TPC-H)\n" + table([]string{"metric", "value"}, rows)
}

// Figure4 reproduces the per-query speed-up CDF on TPC-H.
func Figure4(cfg Config) (*Figure4Result, error) {
	cfg = cfg.withDefaults()
	w, err := loadWorkload("tpch", cfg)
	if err != nil {
		return nil, err
	}
	queries := w.Queries(cfg.Queries, cfg.Seed)

	base := newEngine(w, core.ModeExact, 1, uint64(cfg.Seed))
	baseSims, _, err := runSeq(base, w.Catalog, queries)
	if err != nil {
		return nil, err
	}
	taster := newEngine(w, core.ModeTaster, 0.5, uint64(cfg.Seed))
	tSims, _, err := runSeq(taster, w.Catalog, queries)
	if err != nil {
		return nil, err
	}
	speedups := make([]float64, len(queries))
	for i := range queries {
		speedups[i] = baseSims[i] / tSims[i]
	}
	cdf := NewCDF(speedups)
	out := &Figure4Result{
		Speedups:       cdf,
		FracSlowedDown: cdf.FractionBelow(1.0 - 1e-9),
		FracAbove6x:    1 - cdf.FractionBelow(6.0),
		MaxSpeedup:     cdf.Percentile(100),
		MedianSpeedup:  cdf.Percentile(50),
	}
	return out, nil
}

// Figure5Result is the CDF of per-query relative error (paper Fig. 5: no
// missing groups, >93% of queries under 10% error, all under 12%).
type Figure5Result struct {
	Errors        CDF
	MissingGroups int     // total groups present exactly but absent approximately
	FracUnder10   float64 // queries with mean group error < 10%
	MaxError      float64
}

// Table renders the landmarks.
func (f *Figure5Result) Table() string {
	rows := [][]string{
		{"missing groups (total)", fmt.Sprintf("%d", f.MissingGroups)},
		{"queries with error <10%", fmt.Sprintf("%.1f%%", 100*f.FracUnder10)},
		{"max per-query error", fmt.Sprintf("%.1f%%", 100*f.MaxError)},
		{"p50 / p90 / p99 error", fmt.Sprintf("%.1f%% / %.1f%% / %.1f%%",
			100*f.Errors.Percentile(50), 100*f.Errors.Percentile(90), 100*f.Errors.Percentile(99))},
	}
	return "Figure 5 (approximation error CDF, TPC-H)\n" + table([]string{"metric", "value"}, rows)
}

// Figure5 runs the TPC-H sequence through Taster and through the exact
// engine, then compares per-group aggregates. A query's error is the mean
// relative error across its groups and aggregate columns.
func Figure5(cfg Config) (*Figure5Result, error) {
	cfg = cfg.withDefaults()
	w, err := loadWorkload("tpch", cfg)
	if err != nil {
		return nil, err
	}
	queries := w.Queries(cfg.Queries, cfg.Seed)

	exact := newEngine(w, core.ModeExact, 1, uint64(cfg.Seed))
	_, exactRes, err := runSeq(exact, w.Catalog, queries)
	if err != nil {
		return nil, err
	}
	taster := newEngine(w, core.ModeTaster, 0.5, uint64(cfg.Seed))
	_, tasterRes, err := runSeq(taster, w.Catalog, queries)
	if err != nil {
		return nil, err
	}

	out := &Figure5Result{}
	var perQuery []float64
	for i := range queries {
		errv, missing := resultError(exactRes[i], tasterRes[i])
		perQuery = append(perQuery, errv)
		out.MissingGroups += missing
	}
	out.Errors = NewCDF(perQuery)
	out.FracUnder10 = out.Errors.FractionBelow(0.10)
	out.MaxError = out.Errors.Percentile(100)
	return out, nil
}

// resultError compares an approximate result against the exact one. Group
// identity is the tuple of group-by values (the leading non-aggregate
// columns); error averages |approx−exact|/|exact| over matched cells.
func resultError(exact, approx *core.Result) (meanErr float64, missing int) {
	nGroupCols := len(exact.Columns) - len(exact.Intervals[0])
	if len(exact.Intervals) == 0 {
		nGroupCols = len(exact.Columns)
	}
	key := func(row []storage.Value) string {
		s := ""
		for i := 0; i < nGroupCols; i++ {
			s += row[i].String() + "\x00"
		}
		return s
	}
	approxRows := make(map[string][]storage.Value, len(approx.Rows))
	for _, r := range approx.Rows {
		approxRows[key(r)] = r
	}
	var total float64
	var cells int
	for _, er := range exact.Rows {
		ar, ok := approxRows[key(er)]
		if !ok {
			missing++
			continue
		}
		for c := nGroupCols; c < len(er); c++ {
			ev, av := er[c].F, ar[c].F
			if ev == 0 {
				continue
			}
			total += math.Abs(av-ev) / math.Abs(ev)
			cells++
		}
	}
	if cells == 0 {
		return 0, missing
	}
	return total / float64(cells), missing
}
