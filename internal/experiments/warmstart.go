package experiments

import (
	"fmt"
	"os"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

// WarmStartResult is the restart-recovery experiment: the engine serves the
// first half of the fig3 workload into a persistent warehouse directory,
// shuts down cleanly, and the second half is then served three ways — by an
// engine that never stopped (the fidelity reference), by a warm restart
// recovering the directory, and by a cold restart that lost all state and
// must re-taste the workload.
type WarmStartResult struct {
	Workload string
	Queries  int
	SplitAt  int
	// Recovered is the number of synopses the warm restart reinstated.
	Recovered int
	// FirstReuseIdx is the second-half index of the first query the warm
	// engine answers from a RECOVERED synopsis (-1 if none): the random
	// fig3 sequence mixes templates, so the first few post-restart queries
	// may not match any recovered synopsis — the restart's value shows at
	// the first query servable from the recovered warehouse. Recurring-
	// template workloads (instacart) hit one almost immediately; highly
	// varied ones (random tpch at tiny scale) may never.
	FirstReuseIdx int
	// First-query probe: the first warehouse-servable template of the
	// second half is issued as the VERY FIRST query to two fresh restarts
	// of the same engine — one recovering the warehouse directory (warm),
	// one that lost it (cold). The warm replica answers from the recovered
	// synopsis; the cold replica must pay the exact/build plan. This is
	// the latency a client sees from a restarted serving replica.
	ColdFirstSim float64
	WarmFirstSim float64
	// Total simulated seconds over the second half.
	ColdTotalSim float64
	WarmTotalSim float64
	RefTotalSim  float64 // uninterrupted engine, same queries
	// FidelityOK reports whether the warm restart's second-half answers and
	// plan choices were byte-identical to the uninterrupted engine's.
	FidelityOK bool
}

// Table renders the experiment.
func (r *WarmStartResult) Table() string {
	rows := [][]string{
		{"uninterrupted", "—", fmt.Sprintf("%.1f", r.RefTotalSim), "—", "reference"},
		{"warm restart", fmt.Sprintf("%.2f", r.WarmFirstSim), fmt.Sprintf("%.1f", r.WarmTotalSim),
			fmt.Sprintf("%d", r.Recovered), fmt.Sprintf("fidelity=%v", r.FidelityOK)},
		{"cold restart", fmt.Sprintf("%.2f", r.ColdFirstSim), fmt.Sprintf("%.1f", r.ColdTotalSim), "0",
			fmt.Sprintf("%.1fx first-reuse penalty", safeRatio(r.ColdFirstSim, r.WarmFirstSim))},
	}
	return fmt.Sprintf("Warm restart (%s, %d queries, restart after %d; first warehouse-served query at +%d) — simulated cluster seconds\n",
		r.Workload, r.Queries, r.SplitAt, r.FirstReuseIdx) +
		table([]string{"restart", "first-reuse query", "2nd-half total", "recovered", "notes"}, rows)
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// WarmStart runs the restart-recovery experiment over the fig3 workload.
func WarmStart(workloadName string, cfg Config) (*WarmStartResult, error) {
	cfg = cfg.withDefaults()
	w, err := loadWorkload(workloadName, cfg)
	if err != nil {
		return nil, err
	}
	queries := w.Queries(cfg.Queries, cfg.Seed)
	split := len(queries) / 2
	out := &WarmStartResult{Workload: workloadName, Queries: len(queries), SplitAt: split}

	refDir, err := os.MkdirTemp("", "taster-warmstart-ref-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(refDir)
	warmDir, err := os.MkdirTemp("", "taster-warmstart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(warmDir)

	// Uninterrupted reference: runs the whole sequence against its own
	// warehouse directory, so its spill/fault cost dynamics are the same
	// the restarted engine experiences.
	ref, err := newPersistentEngine(w, refDir, cfg)
	if err != nil {
		return nil, err
	}
	refSims, refResults, err := runSeq(ref, w.Catalog, queries)
	if err != nil {
		return nil, err
	}
	if err := ref.Close(); err != nil {
		return nil, err
	}
	out.RefTotalSim = sum(refSims[split:])
	wantRenders := renderRuns(refResults[split:])

	// Interrupted engine: first half, clean shutdown, warm reopen.
	e1, err := newPersistentEngine(w, warmDir, cfg)
	if err != nil {
		return nil, err
	}
	if _, _, err := runSeq(e1, w.Catalog, queries[:split]); err != nil {
		return nil, err
	}
	if err := e1.Close(); err != nil {
		return nil, err
	}
	// Snapshot the restart point: the probe replica below must restart
	// from the shutdown state, not from wherever the fidelity run leaves
	// the directory.
	probeDir, err := os.MkdirTemp("", "taster-warmstart-probe-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(probeDir)
	if err := os.CopyFS(probeDir, os.DirFS(warmDir)); err != nil {
		return nil, err
	}
	warm, err := newPersistentEngine(w, warmDir, cfg)
	if err != nil {
		return nil, err
	}
	out.Recovered = warm.Recovered()
	recoveredIDs := make(map[uint64]bool)
	for _, it := range warm.Warehouse().WarehouseItems() {
		recoveredIDs[it.ID] = true
	}
	for _, it := range warm.Warehouse().BufferItems() {
		recoveredIDs[it.ID] = true
	}
	warmSims, warmResults, err := runSeq(warm, w.Catalog, queries[split:])
	if err != nil {
		return nil, err
	}
	if err := warm.Close(); err != nil {
		return nil, err
	}
	out.WarmTotalSim = sum(warmSims)
	out.FidelityOK = renderEqual(wantRenders, renderRuns(warmResults))
	out.FirstReuseIdx = -1
	for i, res := range warmResults {
		for _, id := range res.Report.UsedSynopses {
			if recoveredIDs[id] {
				out.FirstReuseIdx = i
				break
			}
		}
		if out.FirstReuseIdx >= 0 {
			break
		}
	}

	// Cold restart: all tuned state lost; the second half re-tastes.
	cold := newEngine(w, core.ModeTaster, 0.5, uint64(cfg.Seed))
	coldSims, _, err := runSeq(cold, w.Catalog, queries[split:])
	if err != nil {
		return nil, err
	}
	out.ColdTotalSim = sum(coldSims)

	// First-query probe: the first warehouse-servable template, issued as
	// the very first query to a warm replica (fresh restart from the
	// snapshot) and to a cold replica.
	probeIdx := out.FirstReuseIdx
	if probeIdx < 0 {
		probeIdx = 0
	}
	probeSQL := []string{queries[split+probeIdx]}
	warmProbe, err := newPersistentEngine(w, probeDir, cfg)
	if err != nil {
		return nil, err
	}
	wp, _, err := runSeq(warmProbe, w.Catalog, probeSQL)
	if err != nil {
		return nil, err
	}
	if err := warmProbe.Close(); err != nil {
		return nil, err
	}
	coldProbe := newEngine(w, core.ModeTaster, 0.5, uint64(cfg.Seed))
	cp, _, err := runSeq(coldProbe, w.Catalog, probeSQL)
	if err != nil {
		return nil, err
	}
	out.WarmFirstSim = wp[0]
	out.ColdFirstSim = cp[0]
	return out, nil
}

// newPersistentEngine mirrors newEngine (synchronous, 50% budget, scaled
// cost model) with a disk-backed warehouse.
func newPersistentEngine(w *workload.Workload, dir string, cfg Config) (*core.Engine, error) {
	bytes, rows := w.CostScale()
	return core.Open(w.Catalog, core.Config{
		Mode:          core.ModeTaster,
		StorageBudget: bytes / 2,
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          uint64(cfg.Seed),
		Synchronous:   true,
		WarehouseDir:  dir,
	})
}

// renderRuns flattens results into comparable strings (plan choice, plan
// tree, every cell, every interval).
func renderRuns(results []*core.Result) []string {
	out := make([]string, len(results))
	for i, res := range results {
		s := res.Report.PlanDesc + "\n" + res.Report.PlanTree + "\n"
		for r, row := range res.Rows {
			for _, v := range row {
				s += v.String() + "|"
			}
			if r < len(res.Intervals) {
				for _, iv := range res.Intervals[r] {
					s += fmt.Sprintf("%v±%v", iv.Estimate, iv.HalfWidth)
				}
			}
			s += "\n"
		}
		out[i] = s
	}
	return out
}

func renderEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
