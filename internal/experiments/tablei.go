package experiments

import (
	"fmt"
	"strings"

	"github.com/tasterdb/taster/internal/core"
)

// TableIRow describes one instacart micro-benchmark template: the paper's
// Table I, plus which synopsis family Taster's planner actually chose for
// it (validating the sketch/sample split the template names claim).
type TableIRow struct {
	Template   string
	Kind       string // "sketch" | "sample" per the paper
	ExampleSQL string
	ChosenPlan string // plan family Taster settled on
	Agrees     bool   // chosen family matches the paper's designation
}

// TableIResult is the rendered table.
type TableIResult struct {
	Rows []TableIRow
}

// Table renders Table I.
func (t *TableIResult) Table() string {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		agree := "yes"
		if !r.Agrees {
			agree = "NO"
		}
		rows[i] = []string{r.Template, r.Kind, r.ChosenPlan, agree}
	}
	return "Table I (instacart micro-benchmark templates)\n" +
		table([]string{"template", "paper family", "Taster's steady-state plan", "agrees"}, rows)
}

// TableI instantiates every instacart template, runs each several times so
// the tuner warms up, and records the plan family Taster converges to.
func TableI(cfg Config) (*TableIResult, error) {
	cfg = cfg.withDefaults()
	w, err := loadWorkload("instacart", cfg)
	if err != nil {
		return nil, err
	}
	eng := newEngine(w, core.ModeTaster, 0.5, uint64(cfg.Seed))

	out := &TableIResult{}
	for _, tmpl := range w.Templates {
		queries := w.QueriesFromTemplates([]string{tmpl.Name}, 6, cfg.Seed)
		_, results, err := runSeq(eng, w.Catalog, queries)
		if err != nil {
			return nil, err
		}
		last := results[len(results)-1].Report
		family := planFamily(last.PlanDesc)
		out.Rows = append(out.Rows, TableIRow{
			Template:   tmpl.Name,
			Kind:       tmpl.Kind,
			ExampleSQL: queries[0],
			ChosenPlan: last.PlanDesc,
			Agrees:     family == tmpl.Kind || family == "exact", // exact = conservative fallback
		})
	}
	return out, nil
}

func planFamily(desc string) string {
	switch {
	case strings.Contains(desc, "sketch"):
		return "sketch"
	case strings.Contains(desc, "sample"):
		return "sample"
	default:
		return "exact"
	}
}

// RunAll executes every experiment and returns the rendered report — what
// cmd/tasterbench prints and EXPERIMENTS.md records.
func RunAll(cfg Config) (string, error) {
	var sb strings.Builder
	for _, wl := range []string{"tpch", "tpcds", "instacart"} {
		f3, err := Figure3(wl, cfg)
		if err != nil {
			return "", fmt.Errorf("figure3 %s: %w", wl, err)
		}
		sb.WriteString(f3.Table() + "\n")
	}
	f4, err := Figure4(cfg)
	if err != nil {
		return "", fmt.Errorf("figure4: %w", err)
	}
	sb.WriteString(f4.Table() + "\n")
	f5, err := Figure5(cfg)
	if err != nil {
		return "", fmt.Errorf("figure5: %w", err)
	}
	sb.WriteString(f5.Table() + "\n")
	f6, err := Figure6(cfg)
	if err != nil {
		return "", fmt.Errorf("figure6: %w", err)
	}
	sb.WriteString(f6.Table() + "\n")
	f7, err := Figure7(cfg)
	if err != nil {
		return "", fmt.Errorf("figure7: %w", err)
	}
	sb.WriteString(f7.Table() + "\n")
	f8, err := Figure8(cfg)
	if err != nil {
		return "", fmt.Errorf("figure8: %w", err)
	}
	sb.WriteString(f8.Table() + "\n")
	f9, err := Figure9(cfg)
	if err != nil {
		return "", fmt.Errorf("figure9: %w", err)
	}
	sb.WriteString(f9.Table() + "\n")
	ti, err := TableI(cfg)
	if err != nil {
		return "", fmt.Errorf("tableI: %w", err)
	}
	sb.WriteString(ti.Table() + "\n")
	// The stream replays once per policy, so RunAll caps its length to keep
	// the full-suite runtime bounded (direct -experiment streaming runs are
	// uncapped and report exactly what was requested).
	scfg := cfg
	if scfg.Queries > 60 {
		scfg.Queries = 60
	}
	st, err := Streaming("tpch", scfg)
	if err != nil {
		return "", fmt.Errorf("streaming: %w", err)
	}
	sb.WriteString(st.Table() + "\n")
	return sb.String(), nil
}
