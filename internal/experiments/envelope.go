package experiments

// BenchSchemaVersion identifies the BenchEnvelope layout. Bump it whenever a
// field is added, removed or re-typed, so CI artifact diffs across commits
// can tell a schema change from a regression.
const BenchSchemaVersion = 1

// BenchEnvelope is the one schema every BENCH_<experiment>.json perf summary
// is written in: a version stamp, the experiment identity, an echo of the
// run configuration, the wall time, the rendered ASCII report, and — when
// the experiment exposes one — its structured result (e.g. ServingResult
// with per-client-count p50/p99 latencies). Keeping every emitter on this
// envelope makes artifact diffs mechanical: same keys, same nesting, for
// every experiment.
type BenchEnvelope struct {
	SchemaVersion int     `json:"schema_version"`
	Experiment    string  `json:"experiment"`
	Workload      string  `json:"workload"`
	SF            float64 `json:"sf"`
	Queries       int     `json:"queries"`
	Seed          int64   `json:"seed"`
	WallSeconds   float64 `json:"wall_seconds"`
	Report        string  `json:"report"`
	Data          any     `json:"data,omitempty"`
}

// NewBenchEnvelope stamps the shared envelope for one experiment run.
func NewBenchEnvelope(experiment, workload string, cfg Config, wallSeconds float64, report string, data any) BenchEnvelope {
	cfg = cfg.withDefaults()
	return BenchEnvelope{
		SchemaVersion: BenchSchemaVersion,
		Experiment:    experiment,
		Workload:      workload,
		SF:            cfg.SF,
		Queries:       cfg.Queries,
		Seed:          cfg.Seed,
		WallSeconds:   wallSeconds,
		Report:        report,
		Data:          data,
	}
}
