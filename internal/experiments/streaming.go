package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

// StreamingRow summarizes one bounded-staleness policy over the same
// append/query stream.
type StreamingRow struct {
	Policy       string  // rendered MaxStaleness setting
	MaxStaleness float64 // the configured bound (<0 = unbounded)
	SimSeconds   float64 // total simulated cluster seconds (Taster engine)
	MeanRelErr   float64 // mean relative error vs. exact on the same data
	ReuseQueries int     // queries answered from a materialized synopsis
	Builds       int     // synopses materialized
	Refreshes    int     // materializations that replaced a stale copy
}

// StreamingResult is the online-ingestion experiment: error and refresh
// behavior as a function of the staleness bound.
type StreamingResult struct {
	Workload string
	Ops      int
	Appends  int
	Rows     []StreamingRow
}

// Table renders the streaming experiment.
func (s *StreamingResult) Table() string {
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{
			r.Policy,
			fmt.Sprintf("%.2f", r.SimSeconds),
			fmt.Sprintf("%.2f%%", r.MeanRelErr*100),
			fmt.Sprintf("%d", r.ReuseQueries),
			fmt.Sprintf("%d", r.Builds),
			fmt.Sprintf("%d", r.Refreshes),
		}
	}
	return fmt.Sprintf("Streaming ingestion (%s, %d ops incl. %d appends): error vs. staleness bound\n",
		s.Workload, s.Ops, s.Appends) +
		table([]string{"staleness bound", "sim s", "mean rel err", "reuse queries", "builds", "refreshes"}, rows)
}

// streamPolicies are the bounded-staleness settings the experiment sweeps:
// fresh-only, a moderate bound, and no bound (the pre-ingestion behavior of
// serving whatever is materialized, kept as the baseline that shows why the
// bound exists).
var streamPolicies = []struct {
	name string
	max  float64
}{
	{"0 (fresh only)", 0},
	{"0.15", 0.15},
	{"unbounded", -1},
}

// Streaming runs the same deterministic append/query stream under each
// staleness policy, measuring answer error against an exact engine over the
// identical evolving data. cfg.Queries is the stream's query count.
func Streaming(wl string, cfg Config) (*StreamingResult, error) {
	cfg = cfg.withDefaults()
	nq := cfg.Queries // the stream replays once per policy; RunAll clamps
	out := &StreamingResult{Workload: wl}
	// Exact ground truth per query-op index, computed on the first policy
	// pass and reused: the stream (and the data it evolves) is identical
	// for every policy, so re-running the exact engine would triple the
	// most expensive part of the experiment for byte-identical answers.
	var truths []*core.Result

	for _, pol := range streamPolicies {
		// Fresh workload per policy: appends mutate the catalog, so every
		// policy must start from the identical dataset; generators are
		// deterministic for (sf, seed).
		w, err := loadWorkload(wl, cfg)
		if err != nil {
			return nil, err
		}
		// Aggressive drift: 10% of the fact table every 4 queries, so the
		// staleness policies visibly separate within a short stream.
		ops, err := w.Stream(workload.StreamConfig{Queries: nq, AppendEvery: 4, BatchFrac: 0.1, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		bytes, rows := w.CostScale()
		eng := core.New(w.Catalog, core.Config{
			Mode:          core.ModeTaster,
			StorageBudget: bytes / 2,
			BufferSize:    bytes / 8,
			CostModel:     storage.ScaledCostModel(bytes, rows),
			Seed:          uint64(cfg.Seed),
			MaxStaleness:  pol.max,
			Synchronous:   true, // byte-identical replay across policies
		})
		// Ground truth is valid across policies ONLY because every policy
		// replays the identical stream over identical data; the exact
		// engine exists solely to fill cache misses (the first pass).
		var exact *core.Engine

		row := StreamingRow{Policy: pol.name, MaxStaleness: pol.max}
		errSum, errN := 0.0, 0
		appends, qi := 0, 0
		for _, op := range ops {
			if op.Append != nil {
				if _, err := eng.Ingest(op.Append.Table, op.Append.Rows); err != nil {
					return nil, fmt.Errorf("streaming ingest: %w", err)
				}
				appends++
				continue
			}
			q, err := sqlparser.Parse(op.SQL, w.Catalog)
			if err != nil {
				return nil, fmt.Errorf("streaming: %w\nSQL: %s", err, op.SQL)
			}
			ngroup := len(q.GroupBy)
			res, err := eng.Execute(q)
			if err != nil {
				return nil, fmt.Errorf("streaming: %w\nSQL: %s", err, op.SQL)
			}
			var truth *core.Result
			if qi < len(truths) {
				truth = truths[qi]
			} else {
				if exact == nil {
					exact = core.New(w.Catalog, core.Config{
						Mode:      core.ModeExact,
						CostModel: storage.ScaledCostModel(bytes, rows),
					})
				}
				qe, err := sqlparser.Parse(op.SQL, w.Catalog)
				if err != nil {
					return nil, err
				}
				if truth, err = exact.Execute(qe); err != nil {
					return nil, fmt.Errorf("streaming exact: %w\nSQL: %s", err, op.SQL)
				}
				truths = append(truths, truth)
			}
			qi++
			if e, n := relErrors(res, truth, ngroup); n > 0 {
				errSum += e
				errN += n
			}
			row.SimSeconds += res.Report.SimSeconds
			if len(res.Report.UsedSynopses) > 0 {
				row.ReuseQueries++
			}
			row.Builds += len(res.Report.CreatedSynopses)
			row.Refreshes += len(res.Report.Refreshed)
		}
		if errN > 0 {
			row.MeanRelErr = errSum / float64(errN)
		}
		out.Ops = len(ops)
		out.Appends = appends
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// relErrors sums the per-group relative error of the first aggregate column
// against the exact result, keyed by the grouping prefix. Every exact group
// contributes: one the approximate result omits entirely (a stale sample
// can miss a rare group) counts as 100% error — exactly the staleness
// damage this experiment exists to measure.
func relErrors(approx, truth *core.Result, ngroup int) (sum float64, n int) {
	if ngroup >= len(truth.Columns) {
		return 0, 0
	}
	approxByKey := make(map[string]float64, len(approx.Rows))
	for _, r := range approx.Rows {
		approxByKey[groupKeyOf(r, ngroup)] = r[ngroup].AsFloat()
	}
	for _, r := range truth.Rows {
		want := r[ngroup].AsFloat()
		denom := math.Abs(want)
		if denom < 1e-9 {
			continue
		}
		got, ok := approxByKey[groupKeyOf(r, ngroup)]
		if !ok {
			sum++ // missing group: 100% relative error
			n++
			continue
		}
		sum += math.Abs(got-want) / denom
		n++
	}
	return sum, n
}

// groupKeyOf encodes the grouping prefix of a result row as a map key,
// length-prefixing each value so embedded delimiters cannot collide (the
// same encoding discipline as the executor's group keys).
func groupKeyOf(row []storage.Value, ngroup int) string {
	var sb strings.Builder
	for i := 0; i < ngroup; i++ {
		v := row[i].String()
		fmt.Fprintf(&sb, "%d:%s", len(v), v)
	}
	return sb.String()
}
