package exec

import (
	"fmt"
	"math"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// TestGroupKeyLengthPrefixedStrings is the regression test for the NUL
// collision: under the old 0x00-terminated encoding the two-column keys
// ("a\x00\x03b","c") and ("a","b\x00\x03c") serialize to identical bytes, so
// HashAgg (and the join hash table, which shares groupKey) merged distinct
// keys into one group. Length-prefixed encoding keeps them apart.
func TestGroupKeyLengthPrefixedStrings(t *testing.T) {
	b := storage.NewBuilder("nul", storage.Schema{
		{Name: "nul.a", Typ: storage.String},
		{Name: "nul.b", Typ: storage.String},
	})
	b.Str(0, "a\x00\x03b")
	b.Str(1, "c")
	b.Str(0, "a")
	b.Str(1, "b\x00\x03c")
	tbl := b.Build(1)

	batch := tbl.ScanRange(0, 2, 16)[0]
	k0 := string(groupKey(nil, batch.Vecs, []int{0, 1}, 0))
	k1 := string(groupKey(nil, batch.Vecs, []int{0, 1}, 1))
	if k0 == k1 {
		t.Fatalf("NUL-embedded keys collide: %q", k0)
	}

	// End to end: the two rows must form two groups, not one.
	ctx := NewContext(0.95)
	agg := &plan.Aggregate{
		Child:   &plan.Scan{Table: tbl},
		GroupBy: []string{"nul.a", "nul.b"},
		Aggs:    []plan.AggSpec{{Kind: stats.Count}},
	}
	rows := allRows(runPlan(t, agg, ctx))
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2 (NUL-embedded strings merged)", len(rows))
	}
}

// TestHashJoinChunksHighFanoutOutput: a skewed build key with thousands of
// duplicates must not inflate one output batch; the prober emits fixed-size
// chunks and carries its probe position across Next calls.
func TestHashJoinChunksHighFanoutOutput(t *testing.T) {
	build := storage.NewBuilder("dup", storage.Schema{
		{Name: "dup.k", Typ: storage.Int64},
		{Name: "dup.v", Typ: storage.Int64},
	})
	for i := 0; i < 3000; i++ {
		build.Int(0, 7)
		build.Int(1, int64(i))
	}
	probe := storage.NewBuilder("p", storage.Schema{
		{Name: "p.k", Typ: storage.Int64},
	})
	for i := 0; i < 5; i++ {
		probe.Int(0, 7)
	}
	ctx := NewContext(0.95)
	j, err := NewHashJoinOp(NewTableScan(probe.Build(1), ctx), NewTableScan(build.Build(1), ctx),
		[]string{"p.k"}, []string{"dup.k"}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range out {
		if b.Len() > joinBatchRows {
			t.Fatalf("output batch of %d rows exceeds cap %d", b.Len(), joinBatchRows)
		}
		total += b.Len()
	}
	if total != 5*3000 {
		t.Fatalf("join rows = %d, want 15000", total)
	}
	if len(out) < 15000/joinBatchRows {
		t.Fatalf("high-fanout join emitted %d batches; chunking not in effect", len(out))
	}
	// Build-side values must cycle in ascending order for every probe row
	// (output columns: p.k, dup.k, dup.v).
	if v := out[0].Vecs[2].I64[0]; v != 0 {
		t.Fatalf("first match value = %d, want 0 (ascending match order)", v)
	}
}

// TestHashJoinEmptyBuildEarlyOut: an empty inner relation must cost O(1) —
// the probe side is never opened, so no base bytes, shuffle bytes or CPU
// tuples are charged for a provably match-free scan.
func TestHashJoinEmptyBuildEarlyOut(t *testing.T) {
	empty := storage.NewBuilder("none", storage.Schema{
		{Name: "none.id", Typ: storage.Int64},
	}).Build(1)
	ctx := NewContext(0.95)
	j, err := NewHashJoinOp(NewTableScan(bigOrders(20000), ctx), NewTableScan(empty, ctx),
		[]string{"orders.cust"}, []string{"none.id"}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty build produced %d batches", len(out))
	}
	if ctx.Stats.BaseBytes != 0 || ctx.Stats.ShuffleBytes != 0 || ctx.Stats.CPUTuples != 0 {
		t.Fatalf("empty-build join charged work: %+v", *ctx.Stats)
	}
}

// regionsTable joins against customersTable's region column.
func regionsTable() *storage.Table {
	b := storage.NewBuilder("reg", storage.Schema{
		{Name: "reg.name", Typ: storage.String},
		{Name: "reg.rank", Typ: storage.Int64},
	})
	b.Str(0, "east")
	b.Int(1, 1)
	b.Str(0, "west")
	b.Int(1, 2)
	return b.Build(1)
}

// volcanoFingerprint runs a hand-built Volcano operator tree and canonicalizes
// rows plus intervals, mirroring fingerprint().
func volcanoFingerprint(t *testing.T, op Operator) string {
	t.Helper()
	out, err := Run(op)
	if err != nil {
		t.Fatal(err)
	}
	s := fmt.Sprintf("%v", allRows(out))
	if rep, ok := op.(IntervalReporter); ok {
		s += fmt.Sprintf("|%v", rep.Intervals())
	}
	return s
}

// TestParallelJoinMatchesVolcanoExact: an exact (unsampled) join pipeline on
// the morsel executor must reproduce the serial Volcano HashJoin+HashAgg bit
// for bit — rows, intervals and cost counters — at every worker count.
func TestParallelJoinMatchesVolcanoExact(t *testing.T) {
	fact := bigOrders(20000)
	agg := &plan.Aggregate{
		Child: &plan.Join{
			Left: &plan.Scan{Table: fact}, Right: &plan.Scan{Table: customersTable()},
			LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
		},
		GroupBy: []string{"cust.region"},
		Aggs: []plan.AggSpec{
			{Kind: stats.Count},
			{Kind: stats.Sum, Col: "orders.amount"},
		},
	}

	vctx := NewContext(0.95)
	vj, err := NewHashJoinOp(NewTableScan(fact, vctx), NewTableScan(customersTable(), vctx),
		[]string{"orders.cust"}, []string{"cust.id"}, vctx)
	if err != nil {
		t.Fatal(err)
	}
	vop, err := NewHashAggOp(vj, agg.GroupBy, agg.Aggs, vctx)
	if err != nil {
		t.Fatal(err)
	}
	want := volcanoFingerprint(t, vop)

	for _, workers := range []int{1, 2, 4, 8} {
		pctx := NewContext(0.95)
		pctx.Workers = workers
		pctx.MorselRows = 512
		op, err := Compile(agg, 7, pctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := op.(*ParallelAggOp); !ok {
			t.Fatalf("join pipeline compiled to %T", op)
		}
		out, err := Run(op)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%v|%v", allRows(out), op.(IntervalReporter).Intervals())
		if got != want {
			t.Fatalf("workers=%d: parallel join diverges from Volcano:\n%.200s\nvs\n%.200s", workers, got, want)
		}
		if pctx.Stats.BaseBytes != vctx.Stats.BaseBytes || pctx.Stats.CPUTuples != vctx.Stats.CPUTuples ||
			pctx.Stats.ShuffleBytes != vctx.Stats.ShuffleBytes || pctx.Stats.OutputRows != vctx.Stats.OutputRows {
			t.Fatalf("workers=%d: cost counters diverge: parallel %+v vs volcano %+v",
				workers, *pctx.Stats, *vctx.Stats)
		}
	}
}

// TestParallelMultiJoinMatchesVolcanoExact covers a two-join spine
// (fact ⋈ dim ⋈ dim-of-dim) with a string join key on the second hop.
func TestParallelMultiJoinMatchesVolcanoExact(t *testing.T) {
	fact := bigOrders(12000)
	agg := &plan.Aggregate{
		Child: &plan.Join{
			Left: &plan.Join{
				Left: &plan.Scan{Table: fact}, Right: &plan.Scan{Table: customersTable()},
				LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
			},
			Right:    &plan.Scan{Table: regionsTable()},
			LeftKeys: []string{"cust.region"}, RightKeys: []string{"reg.name"},
		},
		GroupBy: []string{"reg.rank"},
		Aggs:    []plan.AggSpec{{Kind: stats.Count}, {Kind: stats.Avg, Col: "orders.amount"}},
	}

	vctx := NewContext(0.95)
	vj1, err := NewHashJoinOp(NewTableScan(fact, vctx), NewTableScan(customersTable(), vctx),
		[]string{"orders.cust"}, []string{"cust.id"}, vctx)
	if err != nil {
		t.Fatal(err)
	}
	vj2, err := NewHashJoinOp(vj1, NewTableScan(regionsTable(), vctx),
		[]string{"cust.region"}, []string{"reg.name"}, vctx)
	if err != nil {
		t.Fatal(err)
	}
	vop, err := NewHashAggOp(vj2, agg.GroupBy, agg.Aggs, vctx)
	if err != nil {
		t.Fatal(err)
	}
	want := volcanoFingerprint(t, vop)

	for _, workers := range []int{1, 4} {
		pctx := NewContext(0.95)
		pctx.Workers = workers
		pctx.MorselRows = 1000
		got := fingerprint(t, agg, pctx, 7)
		if got != want {
			t.Fatalf("workers=%d: two-join spine diverges from Volcano", workers)
		}
	}
}

// TestParallelJoinDeterministicAcrossWorkerCounts: with samplers on both the
// probe spine and the build side, results must stay byte-identical at any
// worker count (the ParallelAggOp determinism contract extended to joins).
func TestParallelJoinDeterministicAcrossWorkerCounts(t *testing.T) {
	fact := bigOrders(30000)
	node := &plan.Aggregate{
		Child: &plan.Join{
			Left: &plan.Filter{
				Child: &plan.SynopsisOp{Child: &plan.Scan{Table: fact}, Kind: plan.UniformSample, P: 0.25},
				Pred:  &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "orders.id"}, R: expr.Int(25000)},
			},
			Right:    &plan.SynopsisOp{Child: &plan.Scan{Table: customersTable()}, Kind: plan.UniformSample, P: 0.8},
			LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
		},
		GroupBy: []string{"cust.region"},
		Aggs:    []plan.AggSpec{{Kind: stats.Count}, {Kind: stats.Sum, Col: "orders.amount"}},
	}
	var base string
	for _, workers := range []int{1, 2, 4, 8} {
		ctx := NewContext(0.95)
		ctx.Workers = workers
		ctx.MorselRows = 1000
		fp := fingerprint(t, node, ctx, 42)
		if base == "" {
			base = fp
		} else if fp != base {
			t.Fatalf("workers=%d diverges from workers=1 on sampled join pipeline", workers)
		}
	}
}

// TestJoinBothSidesSampledWeights: joining two independently sampled inputs
// must multiply their HT weights — exactly 1/(pL·pR) for uniform samplers —
// and aggregates over the joined stream must bracket the exact answer within
// their confidence intervals.
func TestJoinBothSidesSampledWeights(t *testing.T) {
	fact := bigOrders(20000)
	join := &plan.Join{
		Left:     &plan.SynopsisOp{Child: &plan.Scan{Table: fact}, Kind: plan.UniformSample, P: 0.5},
		Right:    &plan.SynopsisOp{Child: &plan.Scan{Table: customersTable()}, Kind: plan.UniformSample, P: 0.8},
		LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
	}

	// Bare Volcano join: every output weight is the exact product of the two
	// uniform inverse inclusion probabilities.
	ctx := NewContext(0.95)
	jo, err := Compile(join, 3, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(jo)
	if err != nil {
		t.Fatal(err)
	}
	wantW := 1 / (0.5 * 0.8)
	n := 0
	for _, b := range out {
		wv := b.Vecs[len(b.Vecs)-1]
		for _, w := range wv.F64 {
			if math.Abs(w-wantW) > 1e-12 {
				t.Fatalf("join weight = %v, want %v (product of side weights)", w, wantW)
			}
		}
		n += b.Len()
	}
	if n == 0 {
		t.Fatal("sampled join produced no rows")
	}

	// Aggregates over the both-sides-sampled join (parallel executor) must
	// bracket the exact per-region sums within their intervals. The build
	// side uses a distinct sample stratified on the join key so no customer
	// vanishes: a uniformly sampled build can drop whole dimension rows,
	// whose inclusion variance the per-row HT intervals cannot observe.
	exact := map[string]float64{}
	for i := 0; i < 20000; i++ {
		region := "east"
		if (i%10)%2 == 1 {
			region = "west"
		}
		exact[region] += float64(i)
	}
	agg := &plan.Aggregate{
		Child: &plan.Join{
			Left: &plan.SynopsisOp{Child: &plan.Scan{Table: fact}, Kind: plan.UniformSample, P: 0.5},
			Right: &plan.SynopsisOp{
				Child: &plan.Scan{Table: customersTable()},
				Kind:  plan.DistinctSample, P: 0.3, Delta: 1, StratCols: []string{"cust.id"},
			},
			LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
		},
		GroupBy: []string{"cust.region"},
		Aggs:    []plan.AggSpec{{Kind: stats.Sum, Col: "orders.amount"}},
	}
	actx := NewContext(0.95)
	actx.Workers = 4
	aop, err := Compile(agg, 3, actx)
	if err != nil {
		t.Fatal(err)
	}
	aout, err := Run(aop)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(aout)
	if len(rows) != 2 {
		t.Fatalf("regions = %d", len(rows))
	}
	ivs := aop.(IntervalReporter).Intervals()
	for i, r := range rows {
		iv := ivs[i][0]
		if iv.HalfWidth <= 0 {
			t.Fatalf("sampled join aggregate must carry CI, got %+v", iv)
		}
		truth := exact[r[0].S]
		if dev := math.Abs(iv.Estimate - truth); dev > 4*iv.HalfWidth {
			t.Fatalf("region %v: estimate %v vs exact %v exceeds 4 half-widths (%v)",
				r[0].S, iv.Estimate, truth, iv.HalfWidth)
		}
	}
}

// TestParallelJoinEmptyBuildEarlyOut: the parallel pipeline must short-
// circuit an empty build side exactly like the Volcano operator — correct
// aggregate semantics, no probe scan charged.
func TestParallelJoinEmptyBuildEarlyOut(t *testing.T) {
	fact := bigOrders(20000)
	mk := func(groupBy []string) *plan.Aggregate {
		return &plan.Aggregate{
			Child: &plan.Join{
				Left: &plan.Scan{Table: fact},
				Right: &plan.Filter{
					Child: &plan.Scan{Table: customersTable()},
					Pred:  &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "cust.id"}, R: expr.Int(-1)},
				},
				LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
			},
			GroupBy: groupBy,
			Aggs:    []plan.AggSpec{{Kind: stats.Count}},
		}
	}

	// Global aggregate: one zero row. Grouped: no rows.
	ctx := NewContext(0.95)
	ctx.Workers = 4
	rows := allRows(runPlan(t, mk(nil), ctx))
	if len(rows) != 1 || rows[0][0].F != 0 {
		t.Fatalf("global aggregate over empty join = %v, want one zero row", rows)
	}
	if ctx.Stats.BaseBytes >= fact.Bytes() {
		t.Fatalf("empty-build pipeline scanned the probe side (BaseBytes=%d)", ctx.Stats.BaseBytes)
	}
	if ctx.Stats.ShuffleBytes != 0 {
		t.Fatalf("empty-build pipeline charged phantom shuffle: %d", ctx.Stats.ShuffleBytes)
	}
	ctx2 := NewContext(0.95)
	ctx2.Workers = 4
	if rows := allRows(runPlan(t, mk([]string{"orders.cust"}), ctx2)); len(rows) != 0 {
		t.Fatalf("grouped aggregate over empty join = %d rows", len(rows))
	}
}

// TestParallelJoinSampleMaterialization: a sampler below the join still
// materializes its per-morsel parts into one deterministic sample when the
// pipeline runs with joins on the spine.
func TestParallelJoinSampleMaterialization(t *testing.T) {
	fact := bigOrders(30000)
	syn := &plan.SynopsisOp{
		Child: &plan.Scan{Table: fact},
		Kind:  plan.DistinctSample, P: 0.05, Delta: 12, StratCols: []string{"orders.cust"},
	}
	agg := &plan.Aggregate{
		Child: &plan.Join{
			Left: syn, Right: &plan.Scan{Table: customersTable()},
			LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
		},
		GroupBy: []string{"cust.region"},
		Aggs:    []plan.AggSpec{{Kind: stats.Count}},
	}
	build := func(workers int) *synopses.Sample {
		ctx := NewContext(0.95)
		ctx.Workers = workers
		ctx.MorselRows = 1000
		ctx.MaterializeSamples[syn] = "orders_join_sample"
		fingerprint(t, agg, ctx, 11)
		if len(ctx.Stats.BuiltSamples) != 1 {
			t.Fatalf("built samples = %d", len(ctx.Stats.BuiltSamples))
		}
		return ctx.Stats.BuiltSamples[0].Sample
	}
	s1, s8 := build(1), build(8)
	if s1.Rows.NumRows() != s8.Rows.NumRows() || s1.Rows.Bytes() != s8.Rows.Bytes() {
		t.Fatalf("materialized sample differs across worker counts: %d vs %d rows",
			s1.Rows.NumRows(), s8.Rows.NumRows())
	}
	if s1.SourceRows != 30000 {
		t.Fatalf("source rows = %d", s1.SourceRows)
	}
}

// TestParallelMultiJoinEmptyInnerMatchesVolcano: with an empty *inner* build
// on a two-join spine, the parallel path must drain exactly the builds the
// nested Volcano operators would (top-down until the first empty one) so
// cost counters stay bit-equal.
func TestParallelMultiJoinEmptyInnerMatchesVolcano(t *testing.T) {
	fact := bigOrders(12000)
	emptyCust := &plan.Filter{
		Child: &plan.Scan{Table: customersTable()},
		Pred:  &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "cust.id"}, R: expr.Int(-1)},
	}
	agg := &plan.Aggregate{
		Child: &plan.Join{
			Left: &plan.Join{
				Left: &plan.Scan{Table: fact}, Right: emptyCust,
				LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
			},
			Right:    &plan.Scan{Table: regionsTable()},
			LeftKeys: []string{"cust.region"}, RightKeys: []string{"reg.name"},
		},
		Aggs: []plan.AggSpec{{Kind: stats.Count}},
	}

	vctx := NewContext(0.95)
	// Mirror the compiled form of Filter-over-Scan: the scan carries the
	// filter predicate as its zone-prune expression.
	vcust := NewTableScan(customersTable(), vctx)
	vcust.Prune = emptyCust.Pred
	vj1, err := NewHashJoinOp(NewTableScan(fact, vctx),
		NewFilterOp(vcust, emptyCust.Pred, vctx), // empty build
		[]string{"orders.cust"}, []string{"cust.id"}, vctx)
	if err != nil {
		t.Fatal(err)
	}
	vj2, err := NewHashJoinOp(vj1, NewTableScan(regionsTable(), vctx),
		[]string{"cust.region"}, []string{"reg.name"}, vctx)
	if err != nil {
		t.Fatal(err)
	}
	vop, err := NewHashAggOp(vj2, nil, agg.Aggs, vctx)
	if err != nil {
		t.Fatal(err)
	}
	want := volcanoFingerprint(t, vop)

	pctx := NewContext(0.95)
	pctx.Workers = 4
	got := fingerprint(t, agg, pctx, 7)
	if got != want {
		t.Fatalf("empty-inner multi-join diverges from Volcano:\n%s\nvs\n%s", got, want)
	}
	if pctx.Stats.BaseBytes != vctx.Stats.BaseBytes || pctx.Stats.CPUTuples != vctx.Stats.CPUTuples ||
		pctx.Stats.ShuffleBytes != vctx.Stats.ShuffleBytes || pctx.Stats.OutputRows != vctx.Stats.OutputRows {
		t.Fatalf("empty-inner counters diverge: parallel %+v vs volcano %+v", *pctx.Stats, *vctx.Stats)
	}
	// The probe (fact) side must not have been scanned by either path.
	if pctx.Stats.BaseBytes >= fact.Bytes() {
		t.Fatalf("early-out did not skip the probe scan (BaseBytes=%d)", pctx.Stats.BaseBytes)
	}
}

// TestEmptyBuildStillMaterializesSampler: when the tuner asked this pipeline
// to materialize its sampler, an empty build side must not skip the probe
// pass — the synopsis is a byproduct the warehouse is waiting for.
func TestEmptyBuildStillMaterializesSampler(t *testing.T) {
	fact := bigOrders(20000)
	syn := &plan.SynopsisOp{
		Child: &plan.Scan{Table: fact},
		Kind:  plan.UniformSample, P: 0.2,
	}
	agg := &plan.Aggregate{
		Child: &plan.Join{
			Left: syn,
			Right: &plan.Filter{
				Child: &plan.Scan{Table: customersTable()},
				Pred:  &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "cust.id"}, R: expr.Int(-1)},
			},
			LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
		},
		Aggs: []plan.AggSpec{{Kind: stats.Count}},
	}
	ctx := NewContext(0.95)
	ctx.Workers = 4
	ctx.MaterializeSamples[syn] = "byproduct"
	rows := allRows(runPlan(t, agg, ctx))
	if len(rows) != 1 || rows[0][0].F != 0 {
		t.Fatalf("empty-join aggregate = %v, want one zero row", rows)
	}
	if len(ctx.Stats.BuiltSamples) != 1 {
		t.Fatalf("materializing run over empty build produced %d samples, want 1",
			len(ctx.Stats.BuiltSamples))
	}
	s := ctx.Stats.BuiltSamples[0].Sample
	if s.SourceRows != 20000 || s.Rows.NumRows() == 0 {
		t.Fatalf("byproduct sample malformed: source=%d rows=%d", s.SourceRows, s.Rows.NumRows())
	}

	// Without the materialization request the same plan early-outs: no
	// samples, no probe scan.
	ctx2 := NewContext(0.95)
	ctx2.Workers = 4
	runPlan(t, agg, ctx2)
	if len(ctx2.Stats.BuiltSamples) != 0 {
		t.Fatal("non-materializing run must not build samples")
	}
	if ctx2.Stats.BaseBytes >= fact.Bytes() {
		t.Fatalf("non-materializing empty-join run scanned the probe side (BaseBytes=%d)", ctx2.Stats.BaseBytes)
	}

	// The Volcano operator honors the same exception.
	vctx := NewContext(0.95)
	vctx.MaterializeSamples[syn] = "byproduct"
	sop, err := NewSamplerOp(NewTableScan(fact, vctx), syn, 42, vctx)
	if err != nil {
		t.Fatal(err)
	}
	vj, err := NewHashJoinOp(sop,
		NewFilterOp(NewTableScan(customersTable(), vctx),
			&expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "cust.id"}, R: expr.Int(-1)}, vctx),
		[]string{"orders.cust"}, []string{"cust.id"}, vctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(vj); err != nil {
		t.Fatal(err)
	}
	if len(vctx.Stats.BuiltSamples) != 1 {
		t.Fatalf("Volcano materializing run over empty build produced %d samples", len(vctx.Stats.BuiltSamples))
	}
}

// TestEmptyBuildStillMaterializesBuildSideSampler: the materializing sampler
// can live inside a *deeper build subtree* (when the planner's fact table is
// not the spine leaf); an empty shallower build must not early-out past it.
func TestEmptyBuildStillMaterializesBuildSideSampler(t *testing.T) {
	fact := bigOrders(20000)
	syn := &plan.SynopsisOp{
		Child: &plan.Scan{Table: fact},
		Kind:  plan.UniformSample, P: 0.2,
	}
	agg := &plan.Aggregate{
		Child: &plan.Join{
			Left: &plan.Join{
				Left: &plan.Scan{Table: customersTable()}, Right: syn, // sampler in the build subtree
				LeftKeys: []string{"cust.id"}, RightKeys: []string{"orders.cust"},
			},
			Right: &plan.Filter{ // empty shallower build
				Child: &plan.Scan{Table: regionsTable()},
				Pred:  &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "reg.rank"}, R: expr.Int(0)},
			},
			LeftKeys: []string{"cust.region"}, RightKeys: []string{"reg.name"},
		},
		Aggs: []plan.AggSpec{{Kind: stats.Count}},
	}
	ctx := NewContext(0.95)
	ctx.Workers = 4
	ctx.MaterializeSamples[syn] = "buildside_byproduct"
	rows := allRows(runPlan(t, agg, ctx))
	if len(rows) != 1 || rows[0][0].F != 0 {
		t.Fatalf("empty-join aggregate = %v, want one zero row", rows)
	}
	if len(ctx.Stats.BuiltSamples) != 1 {
		t.Fatalf("build-side sampler materialized %d samples, want 1", len(ctx.Stats.BuiltSamples))
	}
	if s := ctx.Stats.BuiltSamples[0].Sample; s.SourceRows != 20000 || s.Rows.NumRows() == 0 {
		t.Fatalf("byproduct sample malformed: source=%d rows=%d", s.SourceRows, s.Rows.NumRows())
	}
}
