package exec

import (
	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

// tracedOp wraps a compiled operator with per-query trace recording: rows
// and batches emitted, physical rows touched (for selection density), and
// the inclusive wall duration of Open+Next. Batches pass through untouched
// — tracing observes the stream, never copies or mutates it, which is what
// keeps traced and untraced executions byte-identical (proven by the obs
// differential test in internal/core).
type tracedOp struct {
	child Operator
	node  *obs.TraceNode
	clock obs.Clock
}

// traceWrap wraps op with trace recording keyed to its plan node; a no-op
// (returns op unchanged) when the context has tracing off.
func traceWrap(op Operator, n plan.Node, ctx *Context) Operator {
	if ctx.TraceNodes == nil {
		return op
	}
	tn := &obs.TraceNode{Name: n.String()}
	ctx.TraceNodes[n] = tn
	clock := ctx.Clock
	if clock == nil {
		clock = obs.Frozen{}
	}
	return &tracedOp{child: op, node: tn, clock: clock}
}

// Open implements Operator.
func (t *tracedOp) Open() error {
	start := t.clock.Now() //taster:clock trace timings are recorded after execution and never feed results
	err := t.child.Open()
	t.node.Duration += t.clock.Since(start) //taster:clock trace timings are recorded after execution and never feed results
	return err
}

// Next implements Operator.
func (t *tracedOp) Next() (*storage.Batch, error) {
	start := t.clock.Now() //taster:clock trace timings are recorded after execution and never feed results
	b, err := t.child.Next()
	t.node.Duration += t.clock.Since(start) //taster:clock trace timings are recorded after execution and never feed results
	if b != nil {
		t.node.Batches++
		t.node.RowsOut += int64(b.Rows())
		t.node.PhysRows += int64(b.Len())
	}
	return b, err
}

// Close implements Operator.
func (t *tracedOp) Close() error { return t.child.Close() }

// Schema implements Operator.
func (t *tracedOp) Schema() storage.Schema { return t.child.Schema() }

// Intervals forwards IntervalReporter so result assembly sees the terminal
// aggregate's intervals through the wrapper (nil when the wrapped operator
// is not a reporter — the same result assembly reads from an unwrapped
// non-reporter root).
func (t *tracedOp) Intervals() [][]stats.Interval {
	if rep, ok := t.child.(IntervalReporter); ok {
		return rep.Intervals()
	}
	return nil
}

// BuildTraceTree assembles the per-query trace tree for a compiled plan:
// every node Compile traced carries its recorded counters; nodes whose work
// ran inside a fused operator (morsel pipelines, pruning-fused scans)
// appear as fused stubs. built counts the synopses materialized per plan
// node (attached after the run, from RunStats). RowsIn derives from the
// traced children's output.
func BuildTraceTree(root plan.Node, nodes map[plan.Node]*obs.TraceNode, built map[plan.Node]int64) *obs.TraceNode {
	tn := nodes[root]
	if tn == nil {
		tn = &obs.TraceNode{Name: root.String(), Fused: true}
	}
	tn.Materialized += built[root]
	for _, c := range root.Children() {
		child := BuildTraceTree(c, nodes, built)
		tn.Children = append(tn.Children, child)
		if !child.Fused {
			tn.RowsIn += child.RowsOut
		}
	}
	return tn
}
