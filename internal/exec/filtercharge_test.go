package exec

import (
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/storage"
)

// batchFeed replays fixed batches as an operator, charging nothing itself so
// tests can observe exactly what the operator under test charges.
type batchFeed struct {
	schema  storage.Schema
	batches []*storage.Batch
	pos     int
}

func (f *batchFeed) Open() error { f.pos = 0; return nil }
func (f *batchFeed) Next() (*storage.Batch, error) {
	if f.pos >= len(f.batches) {
		return nil, nil
	}
	b := f.batches[f.pos]
	f.pos++
	return b, nil
}
func (f *batchFeed) Close() error           { return nil }
func (f *batchFeed) Schema() storage.Schema { return f.schema }

// TestFilterChargesEvaluatedRows: CPUTuples must count every row the
// predicate evaluated — selective filters do per-input-row work, and a batch
// where nothing survives is not free. (Regression: the charge used to be
// len(idx), the survivor count, which understated CPU on selective filters
// and charged zero for fully-filtered batches.)
func TestFilterChargesEvaluatedRows(t *testing.T) {
	schema := storage.Schema{{Name: "v", Typ: storage.Int64}}
	mk := func(vals ...int64) *storage.Batch {
		b := storage.NewBatch(schema, len(vals))
		b.Vecs[0].I64 = append(b.Vecs[0].I64, vals...)
		return b
	}
	// Three batches: all pass (4 rows), some pass (3 rows, 1 survivor), none
	// pass (5 rows). 12 rows evaluated, 5 survive.
	feed := &batchFeed{schema: schema, batches: []*storage.Batch{
		mk(10, 11, 12, 13),
		mk(10, 1, 2),
		mk(1, 2, 3, 4, 5),
	}}
	ctx := NewContext(0.95)
	pred := &expr.Cmp{Op: expr.GE, L: &expr.Col{Name: "v"}, R: expr.Int(10)}
	f := NewFilterOp(feed, pred, ctx)
	out, err := Run(f)
	if err != nil {
		t.Fatal(err)
	}
	survived := 0
	for _, b := range out {
		survived += b.Len()
	}
	if survived != 5 {
		t.Fatalf("survivors = %d, want 5", survived)
	}
	if ctx.Stats.CPUTuples != 12 {
		t.Fatalf("CPUTuples = %d, want 12 (rows evaluated, not %d survivors)",
			ctx.Stats.CPUTuples, survived)
	}
}
