package exec

import (
	"fmt"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
)

// Compile lowers a logical plan into a physical operator tree. The seed
// drives every random choice (sampling) so runs are reproducible; the
// context collects cost counters and materialized byproducts. With tracing
// enabled (Context.TraceNodes non-nil) every compiled operator is wrapped
// with a per-node trace recorder; the wrap observes the batch stream
// without touching it, so traced and untraced runs are byte-identical.
func Compile(n plan.Node, seed uint64, ctx *Context) (Operator, error) {
	op, err := compile(n, seed, ctx)
	if err != nil {
		return nil, err
	}
	return traceWrap(op, n, ctx), nil
}

// compile is the per-node lowering; recursion goes through Compile so
// every interior operator gets its trace wrap.
func compile(n plan.Node, seed uint64, ctx *Context) (Operator, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return NewTableScan(t.Table, ctx), nil

	case *plan.SynopsisScan:
		return NewSynopsisScan(t.Sample, t.InBuffer, ctx), nil

	case *plan.Filter:
		// A filter directly above a base-table scan drives zone-map pruning:
		// the scan skips partitions whose zones prove the predicate
		// unsatisfiable. The FilterOp stays on top, so the output stream is
		// identical with pruning on or off — pruning only reduces the scanned
		// bytes and tuples.
		if sc, ok := t.Child.(*plan.Scan); ok && !ctx.DisablePrune {
			ts := NewTableScan(sc.Table, ctx)
			ts.Prune = t.Pred
			return NewFilterOp(traceWrap(ts, sc, ctx), t.Pred, ctx), nil
		}
		child, err := Compile(t.Child, seed, ctx)
		if err != nil {
			return nil, err
		}
		return NewFilterOp(child, t.Pred, ctx), nil

	case *plan.Project:
		child, err := Compile(t.Child, seed, ctx)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(t.Exprs))
		exprs := make([]expr.Expr, len(t.Exprs))
		for i, ne := range t.Exprs {
			names[i], exprs[i] = ne.Name, ne.E
		}
		return NewProjectOp(child, names, exprs, ctx)

	case *plan.Join:
		left, err := Compile(t.Left, seed, ctx)
		if err != nil {
			return nil, err
		}
		right, err := Compile(t.Right, seed*31+7, ctx)
		if err != nil {
			return nil, err
		}
		return NewHashJoinOp(left, right, t.LeftKeys, t.RightKeys, ctx)

	case *plan.Aggregate:
		// Scan→sample→filter→join→aggregate chains — single-table and
		// left-deep join plans alike — run on the morsel-driven parallel
		// executor; every other shape (sketch-joins, projections) keeps the
		// Volcano operators.
		if pipe, ok := matchParallelAgg(t); ok {
			return NewParallelAggOp(pipe, seed, ctx)
		}
		child, err := Compile(t.Child, seed, ctx)
		if err != nil {
			return nil, err
		}
		return NewHashAggOp(child, t.GroupBy, t.Aggs, ctx)

	case *plan.SynopsisOp:
		child, err := Compile(t.Child, seed, ctx)
		if err != nil {
			return nil, err
		}
		return NewSamplerOp(child, t, seed, ctx)

	case *plan.SketchJoin:
		probe, err := Compile(t.Probe, seed, ctx)
		if err != nil {
			return nil, err
		}
		var build Operator
		if t.Sketch == nil && t.Build != nil {
			build, err = Compile(t.Build, seed*131+13, ctx)
			if err != nil {
				return nil, err
			}
		}
		return NewSketchJoinOp(t, probe, build, seed, ctx)

	case *plan.Sort:
		child, err := Compile(t.Child, seed, ctx)
		if err != nil {
			return nil, err
		}
		return NewSortOp(child, t.By, t.Desc, t.Limit, ctx)
	}
	return nil, fmt.Errorf("exec: cannot compile plan node %T", n)
}
