package exec

import (
	"fmt"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// SketchJoinOp executes the sketch-join (paper §II): the build side is
// summarized into a count-min sketch keyed by the join key (reused from the
// warehouse when available, built inline otherwise), and the probe side
// streams against it while grouping on probe-side columns. The whole
// Join+Aggregate pair collapses into this one operator.
type SketchJoinOp struct {
	Node    *plan.SketchJoin
	Probe   Operator
	BuildOp Operator // nil when Node.Sketch is already materialized

	ctx    *Context
	schema storage.Schema
	sketch *synopses.SketchJoin

	probeKeyIdx []int
	groupIdx    []int
	aggProbeIdx []int // probe-side column per agg, -1 when agg uses build side
	weightIdx   int

	emitted   bool
	intervals [][]stats.Interval
}

type sjGroup struct {
	keyVals []storage.Value
	den     float64 // Σ w·count(key): COUNT(*) of the join result
	num     float64 // Σ w·sum(key): SUM(build agg col)
	probe   []float64
	errDen  float64
	errNum  float64
	errProb []float64
}

// NewSketchJoinOp prepares the operator; seed is used when the sketch must
// be built inline.
func NewSketchJoinOp(node *plan.SketchJoin, probe, build Operator, seed uint64, ctx *Context) (*SketchJoinOp, error) {
	op := &SketchJoinOp{Node: node, Probe: probe, BuildOp: build, ctx: ctx, sketch: node.Sketch}
	ps := probe.Schema()
	for _, k := range node.ProbeKeys {
		i := ps.Index(k)
		if i < 0 {
			return nil, fmt.Errorf("exec: sketch join: probe key %q not in %v", k, ps.Names())
		}
		op.probeKeyIdx = append(op.probeKeyIdx, i)
	}
	for _, g := range node.GroupBy {
		i := ps.Index(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: sketch join: group column %q not in %v", g, ps.Names())
		}
		op.groupIdx = append(op.groupIdx, i)
		op.schema = append(op.schema, ps[i])
	}
	for _, ag := range node.Aggs {
		idx := -1
		if ag.Col != "" && ag.Col != node.AggCol {
			idx = ps.Index(ag.Col)
			if idx < 0 {
				return nil, fmt.Errorf("exec: sketch join: aggregate column %q neither build agg nor probe column", ag.Col)
			}
		}
		op.aggProbeIdx = append(op.aggProbeIdx, idx)
		op.schema = append(op.schema, storage.Col{Name: ag.DefaultAlias(), Typ: storage.Float64})
	}
	op.weightIdx = ps.Index(synopses.WeightCol)
	if op.sketch == nil && build == nil {
		return nil, fmt.Errorf("exec: sketch join: no materialized sketch and no build input")
	}
	if op.sketch == nil {
		if node.CMWidth > 0 {
			d := node.CMDepth
			if d < 1 {
				d = 4
			}
			op.sketch = synopses.NewSketchJoinWD(node.CMWidth, d, node.BuildKeys, node.AggCol, seed)
		} else {
			eps, delta := stats.CMGeometry(stats.AccuracySpec{RelError: 0.1, Confidence: ctx.Confidence})
			op.sketch = synopses.NewSketchJoin(eps, delta, node.BuildKeys, node.AggCol, seed)
		}
	}
	return op, nil
}

// Open implements Operator: builds the sketch from the build side if needed.
func (s *SketchJoinOp) Open() error {
	if err := s.Probe.Open(); err != nil {
		return err
	}
	if s.BuildOp == nil {
		return nil
	}
	if err := s.BuildOp.Open(); err != nil {
		return err
	}
	bs := s.BuildOp.Schema()
	keyIdx := make([]int, 0, len(s.Node.BuildKeys))
	for _, k := range s.Node.BuildKeys {
		i := bs.Index(k)
		if i < 0 {
			return fmt.Errorf("exec: sketch join: build key %q not in %v", k, bs.Names())
		}
		keyIdx = append(keyIdx, i)
	}
	aggIdx := -1
	if s.Node.AggCol != "" {
		aggIdx = bs.Index(s.Node.AggCol)
		if aggIdx < 0 {
			return fmt.Errorf("exec: sketch join: build agg column %q not in %v", s.Node.AggCol, bs.Names())
		}
	}
	wIdx := bs.Index(synopses.WeightCol)
	for {
		b, err := s.BuildOp.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		b = b.Materialize(s.ctx.Pool)
		s.ctx.Stats.CPUTuples += int64(b.Len())
		for i := 0; i < b.Len(); i++ {
			w := 1.0
			if wIdx >= 0 {
				w = b.Vecs[wIdx].F64[i]
			}
			s.sketch.AddRow(b.Vecs, keyIdx, aggIdx, i, w)
		}
		s.ctx.Pool.Release(b)
	}
	s.ctx.Stats.BuiltSketches = append(s.ctx.Stats.BuiltSketches, BuiltSketch{Op: s.Node, Sketch: s.sketch})
	return nil
}

// Next implements Operator: drains the probe side and emits all groups.
func (s *SketchJoinOp) Next() (*storage.Batch, error) {
	if s.emitted {
		return nil, nil
	}
	groups := make(map[string]*sjGroup, 256)
	errC := s.sketch.Count.ExpectedErrorBound()
	errS := s.sketch.Sum.ExpectedErrorBound()
	var key []byte
	for {
		b, err := s.Probe.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		b = b.Materialize(s.ctx.Pool)
		n := b.Len()
		s.ctx.Stats.CPUTuples += int64(n)
		for i := 0; i < n; i++ {
			cnt, sum := s.sketch.Estimate(b.Vecs, s.probeKeyIdx, i)
			w := 1.0
			if s.weightIdx >= 0 {
				w = b.Vecs[s.weightIdx].F64[i]
			}
			key = groupKey(key, b.Vecs, s.groupIdx, i)
			g, ok := groups[string(key)]
			if !ok {
				g = &sjGroup{
					probe:   make([]float64, len(s.Node.Aggs)),
					errProb: make([]float64, len(s.Node.Aggs)),
				}
				for _, gi := range s.groupIdx {
					g.keyVals = append(g.keyVals, b.Vecs[gi].Get(i))
				}
				groups[string(key)] = g
			}
			g.den += w * cnt
			g.num += w * sum
			g.errDen += w * errC
			g.errNum += w * errS
			for k, pi := range s.aggProbeIdx {
				if pi >= 0 {
					pv := b.Vecs[pi].Float(i)
					g.probe[k] += w * cnt * pv
					a := pv
					if a < 0 {
						a = -a
					}
					g.errProb[k] += w * errC * a
				}
			}
		}
		s.ctx.Pool.Release(b)
	}
	s.emitted = true

	all := make([]*sjGroup, 0, len(groups))
	//taster:sorted emission order is fixed by sortRowsByValues below — group keys are unique, so the value sort is total and launders map order
	for _, g := range groups {
		all = append(all, g)
	}
	keys := make([][]storage.Value, len(all))
	for i, g := range all {
		keys[i] = g.keyVals
	}
	order := sortRowsByValues(keys)

	out := storage.NewBatch(s.schema, len(all))
	s.intervals = make([][]stats.Interval, 0, len(all))
	for _, oi := range order {
		g := all[oi]
		// Sketch estimates only ever overestimate; groups whose entire mass
		// is attributable to collision noise are spurious — drop them.
		if g.den <= g.errDen && g.den < 1 {
			continue
		}
		for c, v := range g.keyVals {
			out.Vecs[c].Append(v)
		}
		rowIv := make([]stats.Interval, len(s.Node.Aggs))
		for k, ag := range s.Node.Aggs {
			iv := s.groupInterval(g, k, ag)
			rowIv[k] = iv
			out.Vecs[len(s.groupIdx)+k].F64 = append(out.Vecs[len(s.groupIdx)+k].F64, iv.Estimate)
		}
		s.intervals = append(s.intervals, rowIv)
	}
	s.ctx.Stats.OutputRows += int64(out.Len())
	return out, nil
}

// groupInterval derives estimate and a conservative error bound for one
// aggregate cell. CM bounds are one-sided (overestimates), reported here as
// symmetric half-widths.
func (s *SketchJoinOp) groupInterval(g *sjGroup, k int, ag plan.AggSpec) stats.Interval {
	switch {
	case ag.Kind == stats.Count:
		return stats.Interval{Estimate: g.den, HalfWidth: g.errDen}
	case ag.Kind == stats.Sum && s.aggProbeIdx[k] < 0:
		return stats.Interval{Estimate: g.num, HalfWidth: g.errNum}
	case ag.Kind == stats.Sum:
		return stats.Interval{Estimate: g.probe[k], HalfWidth: g.errProb[k]}
	case ag.Kind == stats.Avg && s.aggProbeIdx[k] < 0:
		if g.den == 0 {
			return stats.Interval{}
		}
		r := g.num / g.den
		hw := (g.errNum + abs(r)*g.errDen) / g.den
		return stats.Interval{Estimate: r, HalfWidth: hw}
	case ag.Kind == stats.Avg:
		if g.den == 0 {
			return stats.Interval{}
		}
		r := g.probe[k] / g.den
		hw := (g.errProb[k] + abs(r)*g.errDen) / g.den
		return stats.Interval{Estimate: r, HalfWidth: hw}
	}
	return stats.Interval{}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Close implements Operator.
func (s *SketchJoinOp) Close() error {
	err := s.Probe.Close()
	if s.BuildOp != nil {
		if e := s.BuildOp.Close(); err == nil {
			err = e
		}
	}
	return err
}

// Schema implements Operator.
func (s *SketchJoinOp) Schema() storage.Schema { return s.schema }

// Intervals implements IntervalReporter.
func (s *SketchJoinOp) Intervals() [][]stats.Interval { return s.intervals }
