package exec

import (
	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/storage"
)

// FilterOp drops rows failing the predicate.
type FilterOp struct {
	Child Operator
	Pred  expr.Expr
	ctx   *Context
	idx   []int // selection scratch, reused across batches
}

// NewFilterOp wraps child with a predicate.
func NewFilterOp(child Operator, pred expr.Expr, ctx *Context) *FilterOp {
	return &FilterOp{Child: child, Pred: pred, ctx: ctx}
}

// Open implements Operator.
func (f *FilterOp) Open() error { return f.Child.Open() }

// Next implements Operator.
func (f *FilterOp) Next() (*storage.Batch, error) {
	for {
		b, err := f.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		idx, err := expr.EvalBoolInto(f.Pred, b, f.idx[:0])
		if err != nil {
			return nil, err
		}
		f.idx = idx
		// Charge every row the predicate evaluated, not just survivors:
		// selective filters do the same CPU work per input row, and the
		// fully-filtered batch below must not be free either.
		f.ctx.Stats.CPUTuples += int64(b.Len())
		if len(idx) == 0 {
			f.ctx.Pool.Release(b)
			continue
		}
		if len(idx) == b.Len() {
			return b, nil
		}
		out := b.GatherPooled(idx, f.ctx.Pool)
		f.ctx.Pool.Release(b)
		return out, nil
	}
}

// Close implements Operator.
func (f *FilterOp) Close() error { return f.Child.Close() }

// Schema implements Operator.
func (f *FilterOp) Schema() storage.Schema { return f.Child.Schema() }

// ProjectOp computes named expressions per batch.
type ProjectOp struct {
	Child  Operator
	Exprs  []projExpr
	schema storage.Schema
	ctx    *Context
}

type projExpr struct {
	name string
	e    expr.Expr
}

// NewProjectOp builds a projection operator; output types are resolved
// against the child schema.
func NewProjectOp(child Operator, names []string, exprs []expr.Expr, ctx *Context) (*ProjectOp, error) {
	in := child.Schema()
	schema := make(storage.Schema, len(exprs))
	pes := make([]projExpr, len(exprs))
	for i, e := range exprs {
		t, err := e.Type(in)
		if err != nil {
			return nil, err
		}
		schema[i] = storage.Col{Name: names[i], Typ: t}
		pes[i] = projExpr{name: names[i], e: e}
	}
	return &ProjectOp{Child: child, Exprs: pes, schema: schema, ctx: ctx}, nil
}

// Open implements Operator.
func (p *ProjectOp) Open() error { return p.Child.Open() }

// Next implements Operator.
func (p *ProjectOp) Next() (*storage.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	out := &storage.Batch{Schema: p.schema, Vecs: make([]*storage.Vector, len(p.Exprs))}
	for i, pe := range p.Exprs {
		v, err := pe.e.Eval(b)
		if err != nil {
			return nil, err
		}
		out.Vecs[i] = v
	}
	p.ctx.Stats.CPUTuples += int64(b.Len())
	return out, nil
}

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.Child.Close() }

// Schema implements Operator.
func (p *ProjectOp) Schema() storage.Schema { return p.schema }
