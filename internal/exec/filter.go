package exec

import (
	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/storage"
)

// FilterOp drops rows failing the predicate. Column-vs-constant predicates
// compile to selection-vector kernels (expr.CompileFilter): survivors are
// recorded as a selection vector attached to the input batch instead of being
// gathered into fresh vectors, so a filter costs no per-batch copy and
// downstream sel-aware consumers (the aggregation tables) fold rows straight
// from the scan's columns. Expressions outside the kernel subset — or any
// filter when Context.DisableKernels is set — take the interpreted fallback:
// Eval to a boolean vector, then gather, exactly the pre-kernel path. Both
// paths select the same rows bit-for-bit and charge the same cost counters.
type FilterOp struct {
	Child Operator
	Pred  expr.Expr
	ctx   *Context
	idx   []int        // fallback selection scratch, reused across batches
	prog  *expr.Filter // compiled kernels; nil on the fallback path
	sc    expr.Scratch
}

// NewFilterOp wraps child with a predicate, compiling it to selection
// kernels when its shape allows.
func NewFilterOp(child Operator, pred expr.Expr, ctx *Context) *FilterOp {
	f := &FilterOp{Child: child, Pred: pred, ctx: ctx}
	if !ctx.DisableKernels {
		f.prog, _ = expr.CompileFilter(pred, child.Schema())
	}
	return f
}

// Open implements Operator.
func (f *FilterOp) Open() error { return f.Child.Open() }

// Next implements Operator.
func (f *FilterOp) Next() (*storage.Batch, error) {
	for {
		b, err := f.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		// Charge every row the predicate evaluated, not just survivors:
		// selective filters do the same CPU work per input row, and the
		// fully-filtered batch below must not be free either. Live rows
		// (Rows, not Len): a batch arriving with a selection already attached
		// only has its selected rows evaluated.
		f.ctx.Stats.CPUTuples += int64(b.Rows())
		if f.prog != nil {
			f.ctx.Obs.Kernel()
			in := b.Sel // nil = dense batch: kernels stream the raw columns
			out := f.prog.Refine(b, in, f.ctx.Pool.GetSel(b.Len()), &f.sc)
			if in != nil {
				b.Sel = nil
				f.ctx.Pool.PutSel(in)
			}
			if len(out) == 0 {
				f.ctx.Pool.PutSel(out)
				f.ctx.Pool.Release(b)
				continue
			}
			if in == nil && len(out) == b.Len() {
				f.ctx.Pool.PutSel(out)
				return b, nil
			}
			b.Sel = out
			return b, nil
		}
		f.ctx.Obs.Fallback()
		b = b.Materialize(f.ctx.Pool)
		idx, err := expr.EvalBoolInto(f.Pred, b, f.idx[:0])
		if err != nil {
			return nil, err
		}
		f.idx = idx
		if len(idx) == 0 {
			f.ctx.Pool.Release(b)
			continue
		}
		if len(idx) == b.Len() {
			return b, nil
		}
		out := b.GatherPooled(idx, f.ctx.Pool)
		f.ctx.Pool.Release(b)
		return out, nil
	}
}

// Close implements Operator.
func (f *FilterOp) Close() error { return f.Child.Close() }

// Schema implements Operator.
func (f *FilterOp) Schema() storage.Schema { return f.Child.Schema() }

// ProjectOp computes named expressions per batch.
type ProjectOp struct {
	Child  Operator
	Exprs  []projExpr
	schema storage.Schema
	ctx    *Context
}

type projExpr struct {
	name string
	e    expr.Expr
}

// NewProjectOp builds a projection operator; output types are resolved
// against the child schema.
func NewProjectOp(child Operator, names []string, exprs []expr.Expr, ctx *Context) (*ProjectOp, error) {
	in := child.Schema()
	schema := make(storage.Schema, len(exprs))
	pes := make([]projExpr, len(exprs))
	for i, e := range exprs {
		t, err := e.Type(in)
		if err != nil {
			return nil, err
		}
		schema[i] = storage.Col{Name: names[i], Typ: t}
		pes[i] = projExpr{name: names[i], e: e}
	}
	return &ProjectOp{Child: child, Exprs: pes, schema: schema, ctx: ctx}, nil
}

// Open implements Operator.
func (p *ProjectOp) Open() error { return p.Child.Open() }

// Next implements Operator.
func (p *ProjectOp) Next() (*storage.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	// Eval is selection-oblivious; resolve any attached selection first.
	b = b.Materialize(p.ctx.Pool)
	out := &storage.Batch{Schema: p.schema, Vecs: make([]*storage.Vector, len(p.Exprs))}
	for i, pe := range p.Exprs {
		v, err := pe.e.Eval(b)
		if err != nil {
			return nil, err
		}
		out.Vecs[i] = v
	}
	p.ctx.Stats.CPUTuples += int64(b.Len())
	return out, nil
}

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.Child.Close() }

// Schema implements Operator.
func (p *ProjectOp) Schema() storage.Schema { return p.schema }
