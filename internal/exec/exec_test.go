package exec

import (
	"math"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// orders: 1000 rows, 10 customers, amount = row index.
func ordersTable() *storage.Table {
	b := storage.NewBuilder("orders", storage.Schema{
		{Name: "orders.id", Typ: storage.Int64},
		{Name: "orders.cust", Typ: storage.Int64},
		{Name: "orders.amount", Typ: storage.Float64},
	})
	for i := 0; i < 1000; i++ {
		b.Int(0, int64(i))
		b.Int(1, int64(i%10))
		b.Float(2, float64(i))
	}
	return b.Build(3)
}

// customers: 10 rows with a region each (2 regions).
func customersTable() *storage.Table {
	b := storage.NewBuilder("cust", storage.Schema{
		{Name: "cust.id", Typ: storage.Int64},
		{Name: "cust.region", Typ: storage.String},
	})
	for i := 0; i < 10; i++ {
		region := "east"
		if i%2 == 1 {
			region = "west"
		}
		b.Int(0, int64(i))
		b.Str(1, region)
	}
	return b.Build(1)
}

func runPlan(t *testing.T, n plan.Node, ctx *Context) []*storage.Batch {
	t.Helper()
	op, err := Compile(n, 42, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(op)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func allRows(batches []*storage.Batch) [][]storage.Value {
	var rows [][]storage.Value
	for _, b := range batches {
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.Row(i))
		}
	}
	return rows
}

func TestScanCountsBytes(t *testing.T) {
	tbl := ordersTable()
	ctx := NewContext(0.95)
	out := runPlan(t, &plan.Scan{Table: tbl}, ctx)
	if n := len(allRows(out)); n != 1000 {
		t.Fatalf("scanned %d rows", n)
	}
	if ctx.Stats.BaseBytes != tbl.Bytes() {
		t.Fatalf("BaseBytes = %d, want %d", ctx.Stats.BaseBytes, tbl.Bytes())
	}
	if ctx.Stats.SimulatedSeconds(storage.DefaultCostModel()) <= 0 {
		t.Fatal("simulated time must be positive")
	}
}

func TestFilterProject(t *testing.T) {
	tbl := ordersTable()
	ctx := NewContext(0.95)
	f := &plan.Filter{
		Child: &plan.Scan{Table: tbl},
		Pred:  &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "orders.id"}, R: expr.Int(10)},
	}
	p, err := plan.NewProject(f, []plan.NamedExpr{
		{Name: "double", E: &expr.Bin{Op: expr.Mul, L: &expr.Col{Name: "orders.amount"}, R: expr.Int(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(runPlan(t, p, ctx))
	if len(rows) != 10 {
		t.Fatalf("filtered rows = %d", len(rows))
	}
	if rows[3][0].F != 6 {
		t.Fatalf("projected value = %v", rows[3][0])
	}
}

func TestHashJoin(t *testing.T) {
	ctx := NewContext(0.95)
	j := &plan.Join{
		Left:      &plan.Scan{Table: ordersTable()},
		Right:     &plan.Scan{Table: customersTable()},
		LeftKeys:  []string{"orders.cust"},
		RightKeys: []string{"cust.id"},
	}
	rows := allRows(runPlan(t, j, ctx))
	if len(rows) != 1000 {
		t.Fatalf("join rows = %d, want 1000 (every order matches)", len(rows))
	}
	// Output schema: orders cols ++ cust cols.
	if len(rows[0]) != 5 {
		t.Fatalf("join width = %d", len(rows[0]))
	}
	if ctx.Stats.ShuffleBytes <= 0 {
		t.Fatal("join must charge shuffle bytes")
	}
}

func TestHashJoinErrors(t *testing.T) {
	ctx := NewContext(0.95)
	if _, err := NewHashJoinOp(NewTableScan(ordersTable(), ctx), NewTableScan(customersTable(), ctx),
		[]string{"nope"}, []string{"cust.id"}, ctx); err == nil {
		t.Fatal("want unknown left key error")
	}
	if _, err := NewHashJoinOp(NewTableScan(ordersTable(), ctx), NewTableScan(customersTable(), ctx),
		[]string{"orders.cust"}, []string{"nope"}, ctx); err == nil {
		t.Fatal("want unknown right key error")
	}
	if _, err := NewHashJoinOp(NewTableScan(ordersTable(), ctx), NewTableScan(customersTable(), ctx),
		nil, nil, ctx); err == nil {
		t.Fatal("want empty key error")
	}
}

func TestExactAggregate(t *testing.T) {
	ctx := NewContext(0.95)
	agg := &plan.Aggregate{
		Child:   &plan.Scan{Table: ordersTable()},
		GroupBy: []string{"orders.cust"},
		Aggs: []plan.AggSpec{
			{Kind: stats.Count},
			{Kind: stats.Sum, Col: "orders.amount"},
			{Kind: stats.Avg, Col: "orders.amount"},
			{Kind: stats.Min, Col: "orders.amount"},
			{Kind: stats.Max, Col: "orders.amount"},
		},
	}
	op, err := Compile(agg, 1, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(op)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(out)
	if len(rows) != 10 {
		t.Fatalf("groups = %d", len(rows))
	}
	// Group 0: ids 0,10,...,990 → count 100, sum 49500, avg 495, min 0, max 990.
	g0 := rows[0]
	if g0[0].I != 0 {
		t.Fatalf("first group = %v (must be sorted)", g0[0])
	}
	if g0[1].F != 100 || g0[2].F != 49500 || g0[3].F != 495 || g0[4].F != 0 || g0[5].F != 990 {
		t.Fatalf("group 0 aggregates = %v", g0)
	}
	// Exact execution → zero-width intervals.
	ivs := op.(IntervalReporter).Intervals()
	if len(ivs) != 10 {
		t.Fatalf("interval rows = %d", len(ivs))
	}
	for _, row := range ivs {
		for _, iv := range row {
			if iv.HalfWidth != 0 {
				t.Fatalf("exact interval has width: %+v", iv)
			}
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	ctx := NewContext(0.95)
	if _, err := NewHashAggOp(NewTableScan(ordersTable(), ctx), []string{"nope"}, nil, ctx); err == nil {
		t.Fatal("want unknown group column error")
	}
	if _, err := NewHashAggOp(NewTableScan(ordersTable(), ctx), nil,
		[]plan.AggSpec{{Kind: stats.Sum, Col: "nope"}}, ctx); err == nil {
		t.Fatal("want unknown agg column error")
	}
	if _, err := NewHashAggOp(NewTableScan(customersTable(), ctx), nil,
		[]plan.AggSpec{{Kind: stats.Sum, Col: "cust.region"}}, ctx); err == nil {
		t.Fatal("want non-numeric agg error")
	}
	if _, err := NewHashAggOp(NewTableScan(ordersTable(), ctx), nil,
		[]plan.AggSpec{{Kind: stats.Sum}}, ctx); err == nil {
		t.Fatal("want missing column error")
	}
}

func TestSampledAggregateWithinError(t *testing.T) {
	ctx := NewContext(0.95)
	syn := &plan.SynopsisOp{
		Child: &plan.Scan{Table: ordersTable()},
		Kind:  plan.DistinctSample,
		P:     0.3, Delta: 20, StratCols: []string{"orders.cust"},
	}
	agg := &plan.Aggregate{
		Child:   syn,
		GroupBy: []string{"orders.cust"},
		Aggs:    []plan.AggSpec{{Kind: stats.Sum, Col: "orders.amount"}, {Kind: stats.Count}},
	}
	op, err := Compile(agg, 7, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(op)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(out)
	if len(rows) != 10 {
		t.Fatalf("missing groups: %d/10", len(rows))
	}
	// The honest check is against the reported CI: the true value must fall
	// within a few half-widths (4σ-ish) of every estimate, and within 1
	// half-width for most groups (95% nominal coverage).
	ivs := op.(IntervalReporter).Intervals()
	covered := 0
	for i, row := range rows {
		cust := row[0].I
		trueSum := 0.0
		for v := int64(cust); v < 1000; v += 10 {
			trueSum += float64(v)
		}
		iv := ivs[i][0]
		if iv.HalfWidth <= 0 {
			t.Fatalf("sampled aggregate must carry CI, got %+v", iv)
		}
		dev := math.Abs(iv.Estimate - trueSum)
		if dev > 4*iv.HalfWidth {
			t.Fatalf("group %d: estimate %v vs %v exceeds 4 half-widths (%v)",
				cust, iv.Estimate, trueSum, iv.HalfWidth)
		}
		if dev <= iv.HalfWidth {
			covered++
		}
		cnt := row[2].F
		if math.Abs(cnt-100) > 60 {
			t.Fatalf("group %d count estimate %v", cust, cnt)
		}
	}
	if covered < 6 {
		t.Fatalf("only %d/10 groups inside their 95%% CI", covered)
	}
}

func TestSamplerMaterializesByproduct(t *testing.T) {
	ctx := NewContext(0.95)
	syn := &plan.SynopsisOp{
		Child: &plan.Scan{Table: ordersTable()},
		Kind:  plan.UniformSample,
		P:     0.5,
	}
	ctx.MaterializeSamples[syn] = "orders_sample"
	agg := &plan.Aggregate{
		Child: syn,
		Aggs:  []plan.AggSpec{{Kind: stats.Count}},
	}
	runPlan(t, agg, ctx)
	if len(ctx.Stats.BuiltSamples) != 1 {
		t.Fatalf("built samples = %d", len(ctx.Stats.BuiltSamples))
	}
	s := ctx.Stats.BuiltSamples[0].Sample
	if s.SourceRows != 1000 || s.Strategy != "uniform" {
		t.Fatalf("sample = %+v", s)
	}
	if n := s.Rows.NumRows(); n < 400 || n > 600 {
		t.Fatalf("sample rows = %d, want ≈500", n)
	}
	if s.Rows.Name != "orders_sample" {
		t.Fatalf("sample name = %q", s.Rows.Name)
	}
}

func TestSamplerErrors(t *testing.T) {
	ctx := NewContext(0.95)
	syn := &plan.SynopsisOp{
		Child:     &plan.Scan{Table: ordersTable()},
		Kind:      plan.DistinctSample,
		P:         0.1,
		Delta:     5,
		StratCols: []string{"nope"},
	}
	if _, err := Compile(syn, 1, ctx); err == nil {
		t.Fatal("want unknown stratification column error")
	}
	bad := &plan.SynopsisOp{Child: &plan.Scan{Table: ordersTable()}, Kind: plan.SketchJoinSynopsis}
	if _, err := Compile(bad, 1, ctx); err == nil {
		t.Fatal("want unsupported kind error")
	}
}

func TestJoinOfSampledSideCarriesWeights(t *testing.T) {
	ctx := NewContext(0.95)
	syn := &plan.SynopsisOp{
		Child: &plan.Scan{Table: ordersTable()},
		Kind:  plan.UniformSample,
		P:     0.5,
	}
	j := &plan.Join{
		Left:      syn,
		Right:     &plan.Scan{Table: customersTable()},
		LeftKeys:  []string{"orders.cust"},
		RightKeys: []string{"cust.id"},
	}
	agg := &plan.Aggregate{
		Child:   j,
		GroupBy: []string{"cust.region"},
		Aggs:    []plan.AggSpec{{Kind: stats.Count}},
	}
	rows := allRows(runPlan(t, agg, ctx))
	if len(rows) != 2 {
		t.Fatalf("regions = %d", len(rows))
	}
	// Each region truly has 500 orders; HT estimate should be close.
	for _, r := range rows {
		if math.Abs(r[1].F-500) > 150 {
			t.Fatalf("region %v count = %v, want ≈500", r[0], r[1].F)
		}
	}
	// Join schema must contain exactly one weight column, at the end.
	jo, err := Compile(j, 3, ctx)
	if err != nil {
		t.Fatal(err)
	}
	sc := jo.Schema()
	wcount := 0
	for _, c := range sc {
		if c.Name == synopses.WeightCol {
			wcount++
		}
	}
	if wcount != 1 || sc[len(sc)-1].Name != synopses.WeightCol {
		t.Fatalf("join schema weights wrong: %v", sc.Names())
	}
}

func TestSketchJoinOpInlineBuild(t *testing.T) {
	ctx := NewContext(0.95)
	node := &plan.SketchJoin{
		Probe:     &plan.Scan{Table: customersTable()},
		Build:     &plan.Scan{Table: ordersTable()},
		ProbeKeys: []string{"cust.id"},
		BuildKeys: []string{"orders.cust"},
		AggCol:    "orders.amount",
		GroupBy:   []string{"cust.region"},
		Aggs: []plan.AggSpec{
			{Kind: stats.Count},
			{Kind: stats.Sum, Col: "orders.amount"},
		},
	}
	op, err := Compile(node, 5, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(op)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(out)
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	// True totals: east (even custs) count 500, sum = Σ even-cust amounts.
	var eastSum, westSum float64
	for i := 0; i < 1000; i++ {
		if (i%10)%2 == 0 {
			eastSum += float64(i)
		} else {
			westSum += float64(i)
		}
	}
	for _, r := range rows {
		wantCount, wantSum := 500.0, eastSum
		if r[0].S == "west" {
			wantSum = westSum
		}
		if math.Abs(r[1].F-wantCount)/wantCount > 0.05 {
			t.Fatalf("region %v count = %v, want ≈%v", r[0], r[1].F, wantCount)
		}
		if math.Abs(r[2].F-wantSum)/wantSum > 0.05 {
			t.Fatalf("region %v sum = %v, want ≈%v", r[0], r[2].F, wantSum)
		}
	}
	if len(ctx.Stats.BuiltSketches) != 1 {
		t.Fatal("inline build must record the sketch for retention")
	}
	ivs := op.(IntervalReporter).Intervals()
	if len(ivs) != 2 || ivs[0][0].HalfWidth <= 0 {
		t.Fatalf("sketch intervals = %+v", ivs)
	}
}

func TestSketchJoinOpReuseMaterialized(t *testing.T) {
	orders := ordersTable()
	sk, err := synopses.BuildSketchJoin(orders, []string{"orders.cust"}, "orders.amount", 0.001, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(0.95)
	node := &plan.SketchJoin{
		Probe:     &plan.Scan{Table: customersTable()},
		Sketch:    sk,
		ProbeKeys: []string{"cust.id"},
		BuildKeys: []string{"orders.cust"},
		AggCol:    "orders.amount",
		GroupBy:   []string{"cust.region"},
		Aggs:      []plan.AggSpec{{Kind: stats.Avg, Col: "orders.amount"}},
	}
	rows := allRows(runPlan(t, node, ctx))
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	// Reuse path must not rescan the orders table.
	if ctx.Stats.BaseBytes >= orders.Bytes() {
		t.Fatalf("BaseBytes = %d includes build side; reuse must avoid it", ctx.Stats.BaseBytes)
	}
	// AVG(amount) per region ≈ 495 (east) / 500 (west lean).
	for _, r := range rows {
		if r[1].F < 400 || r[1].F > 600 {
			t.Fatalf("avg = %v", r[1].F)
		}
	}
	if len(ctx.Stats.BuiltSketches) != 0 {
		t.Fatal("reuse path must not record a new sketch")
	}
}

func TestSketchJoinErrors(t *testing.T) {
	ctx := NewContext(0.95)
	node := &plan.SketchJoin{
		Probe:     &plan.Scan{Table: customersTable()},
		ProbeKeys: []string{"cust.id"},
		BuildKeys: []string{"orders.cust"},
		GroupBy:   []string{"cust.region"},
	}
	if _, err := NewSketchJoinOp(node, NewTableScan(customersTable(), ctx), nil, 1, ctx); err == nil {
		t.Fatal("want error: no sketch and no build input")
	}
	bad := &plan.SketchJoin{
		Probe:     &plan.Scan{Table: customersTable()},
		Build:     &plan.Scan{Table: ordersTable()},
		ProbeKeys: []string{"nope"},
	}
	if _, err := Compile(bad, 1, ctx); err == nil {
		t.Fatal("want unknown probe key error")
	}
}

func TestSynopsisScanChargesWarehouseBytes(t *testing.T) {
	tbl := ordersTable()
	smp := synopses.BuildSampleFromTable("s", tbl, synopses.NewUniformSampler(0.2, 3), nil)
	ctx := NewContext(0.95)
	ss := &plan.SynopsisScan{SynopsisID: 1, Sample: smp, Label: "orders"}
	runPlan(t, ss, ctx)
	if ctx.Stats.WarehouseBytes != smp.Rows.Bytes() {
		t.Fatalf("WarehouseBytes = %d, want %d", ctx.Stats.WarehouseBytes, smp.Rows.Bytes())
	}
	if ctx.Stats.BaseBytes != 0 {
		t.Fatal("synopsis scan must not charge base bytes")
	}
	// Buffer-resident scans are free of I/O.
	ctx2 := NewContext(0.95)
	ss2 := &plan.SynopsisScan{SynopsisID: 1, Sample: smp, Label: "orders", InBuffer: true}
	runPlan(t, ss2, ctx2)
	if ctx2.Stats.WarehouseBytes != 0 {
		t.Fatal("buffer scan must be free")
	}
}

func TestAggregateOverSynopsisScanIsHT(t *testing.T) {
	tbl := ordersTable()
	smp := synopses.BuildSampleFromTable("s", tbl,
		synopses.NewDistinctSampler(0.3, 10, []int{1}, 11), []string{"orders.cust"})
	ctx := NewContext(0.95)
	agg := &plan.Aggregate{
		Child:   &plan.SynopsisScan{SynopsisID: 2, Sample: smp, Label: "orders"},
		GroupBy: []string{"orders.cust"},
		Aggs:    []plan.AggSpec{{Kind: stats.Count}},
	}
	rows := allRows(runPlan(t, agg, ctx))
	if len(rows) != 10 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r[1].F-100) > 50 {
			t.Fatalf("HT count = %v, want ≈100", r[1].F)
		}
	}
}

func TestSortAndLimit(t *testing.T) {
	ctx := NewContext(0.95)
	agg := &plan.Aggregate{
		Child:   &plan.Scan{Table: ordersTable()},
		GroupBy: []string{"orders.cust"},
		Aggs:    []plan.AggSpec{{Kind: stats.Sum, Col: "orders.amount"}},
	}
	srt := &plan.Sort{Child: agg, By: []string{"sum_orders_amount"}, Desc: []bool{true}, Limit: 3}
	op, err := Compile(srt, 1, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(op)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(out)
	if len(rows) != 3 {
		t.Fatalf("limit produced %d rows", len(rows))
	}
	if rows[0][1].F < rows[1][1].F || rows[1][1].F < rows[2][1].F {
		t.Fatalf("descending order violated: %v", rows)
	}
	// Intervals permuted alongside.
	ivs := op.(IntervalReporter).Intervals()
	if len(ivs) != 3 {
		t.Fatalf("sorted intervals = %d", len(ivs))
	}
	if _, err := NewSortOp(NewTableScan(ordersTable(), ctx), []string{"nope"}, nil, 0, ctx); err == nil {
		t.Fatal("want unknown sort column error")
	}
}

func TestCompileUnknownNode(t *testing.T) {
	ctx := NewContext(0.95)
	if _, err := Compile(nil, 1, ctx); err == nil {
		t.Fatal("want error for nil node")
	}
}

func TestNewContextDefaults(t *testing.T) {
	c := NewContext(0)
	if c.Confidence != stats.DefaultAccuracy.Confidence {
		t.Fatalf("confidence = %v", c.Confidence)
	}
}
