package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// DefaultMorselRows is the default morsel granularity: the row-range unit
// workers claim from the shared dispenser. Small enough that skewed filters
// cannot stall the pool on one straggler morsel, large enough that the
// claim-and-merge overhead stays negligible.
const DefaultMorselRows = 4096

// parallelPipeline is a leaf-to-aggregate operator spine the morsel executor
// can run: Scan|SynopsisScan → {SynopsisOp | Filter | Join}* → Aggregate.
// The spine follows each Join's left (probe) input; build (right) subtrees
// are arbitrary plans compiled onto the Volcano operators and hashed once
// into shared partitioned tables. The planner emits exactly this shape for
// single-table and left-deep join plans — exact, inline sampler builds and
// sample-reuse alike — which makes it the hot path of every grouped
// aggregation.
type parallelPipeline struct {
	leaf      *storage.Table // base table or the sample's row table
	leafBase  bool           // true: charge BaseBytes; false: synopsis bytes
	leafFree  bool           // buffer-resident synopsis: no I/O charge
	leafBytes int64

	// chain lists the spine nodes between leaf (exclusive) and aggregate
	// (exclusive), bottom-up. At most one SynopsisOp; any number of Joins.
	chain   []plan.Node
	sampler *plan.SynopsisOp // the chain's sampler node, if any
	agg     *plan.Aggregate
}

// matchParallelAgg recognizes the pipeline shape. It returns ok=false for
// trees with sketch-joins, projections or nested samplers — those keep the
// Volcano path.
func matchParallelAgg(a *plan.Aggregate) (*parallelPipeline, bool) {
	p := &parallelPipeline{agg: a}
	n := a.Child
	var down []plan.Node // top-down spine nodes
	for {
		switch t := n.(type) {
		case *plan.Filter:
			down = append(down, t)
			n = t.Child
		case *plan.Join:
			down = append(down, t)
			n = t.Left
		case *plan.SynopsisOp:
			if p.sampler != nil || t.Kind == plan.SketchJoinSynopsis {
				return nil, false
			}
			p.sampler = t
			down = append(down, t)
			n = t.Child
		case *plan.Scan:
			p.leaf = t.Table
			p.leafBase = true
			p.leafBytes = t.Table.Bytes()
		case *plan.SynopsisScan:
			p.leaf = t.Sample.Rows
			p.leafFree = t.InBuffer
			p.leafBytes = t.Sample.Rows.Bytes()
		default:
			return nil, false
		}
		if p.leaf != nil {
			break
		}
	}
	// Reverse to bottom-up order for per-morsel chain construction.
	for i := len(down) - 1; i >= 0; i-- {
		p.chain = append(p.chain, down[i])
	}
	return p, true
}

// pipelineJoinState is one join of the spine: its compiled build-side
// subtree, the resolved column binding, and — once the op runs — the shared
// hash-partitioned table every probe worker reads.
type pipelineJoinState struct {
	node  *plan.Join
	build Operator
	spec  *joinSpec
	table *joinTable
}

// ParallelAggOp executes a matched pipeline with morsel-driven parallelism:
// each join's build side runs once and is hashed by the worker pool into a
// shared partitioned joinTable; then the leaf's rows are split into
// fixed-size morsels, the pool claims morsels from an atomic dispenser, and
// each worker runs the full scan→sample→filter→probe→partial-aggregate
// pipeline on its morsel with worker-local state. Partial hash tables are
// merged in morsel index order once all morsels are done.
//
// Determinism contract: every morsel's sampler draws from the RNG stream
// SplitSeed(seed, morselIdx) and the distinct sampler's per-instance
// requirement is PartitionDelta(δ, morsels), so the set of sampled rows, the
// merged aggregates and the materialized sample bytes depend only on
// (input, seed, morsel size) — never on the worker count or on scheduling.
// Join probes inherit the contract for free: the build table's match lists
// are ascending build-row indices regardless of partition count, and each
// morsel probes them in its own input order. Running with Workers=1 and
// Workers=N yields byte-identical results; exact (unsampled) pipelines are
// additionally byte-identical to the Volcano operators, cost counters
// included.
type ParallelAggOp struct {
	pipe  *parallelPipeline
	joins []*pipelineJoinState // spine joins, bottom-up
	seed  uint64
	ctx   *Context
	spec  *aggSpec

	emitted   bool
	intervals [][]stats.Interval
}

// NewParallelAggOp compiles the spine's join build sides, binds the
// aggregation columns against the spine's physical output schema, and
// validates the sampler configuration up front, mirroring the Volcano
// constructors' error behaviour.
func NewParallelAggOp(pipe *parallelPipeline, seed uint64, ctx *Context) (*ParallelAggOp, error) {
	// Resolve the physical schema along the spine. Build sides use the same
	// seed derivation as the Volcano Compile path (left spine keeps the seed,
	// every right subtree derives seed*31+7), so a sampled build side draws
	// the same rows under either executor.
	cur := pipe.leaf.Schema()
	var joins []*pipelineJoinState
	for _, n := range pipe.chain {
		switch t := n.(type) {
		case *plan.SynopsisOp:
			cur = synopses.SampleSchema(cur)
		case *plan.Join:
			build, err := Compile(t.Right, seed*31+7, ctx)
			if err != nil {
				return nil, err
			}
			spec, err := resolveJoinSpec(cur, build.Schema(), t.LeftKeys, t.RightKeys)
			if err != nil {
				return nil, err
			}
			joins = append(joins, &pipelineJoinState{node: t, build: build, spec: spec})
			cur = spec.schema
		}
	}
	spec, err := resolveAggSpec(cur, pipe.agg.GroupBy, pipe.agg.Aggs)
	if err != nil {
		return nil, err
	}
	// Validate the chain eagerly (sampler strat columns, filter types) by
	// building a throwaway morsel pipeline over zero rows.
	if _, err := buildMorselChain(pipe, joins, 0, 1, seed, NewContext(ctx.Confidence)); err != nil {
		return nil, err
	}
	return &ParallelAggOp{pipe: pipe, joins: joins, seed: seed, ctx: ctx, spec: spec}, nil
}

// morselResult is everything one morsel produced: its partial hash table,
// its local cost counters and any per-morsel materialized sample parts.
type morselResult struct {
	table *aggTable
	stats RunStats
	err   error
}

// Open implements Operator.
func (p *ParallelAggOp) Open() error {
	p.emitted = false
	p.intervals = nil
	return nil
}

// Next implements Operator: the first call runs the whole morsel pool and
// emits the merged result as a single batch.
func (p *ParallelAggOp) Next() (*storage.Batch, error) {
	if p.emitted {
		return nil, nil
	}
	p.emitted = true

	rows := p.pipe.leaf.NumRows()
	morselRows := p.ctx.MorselRows
	if morselRows <= 0 {
		morselRows = DefaultMorselRows
	}
	nMorsels := (rows + morselRows - 1) / morselRows
	if nMorsels < 1 {
		nMorsels = 1
	}
	workers := p.ctx.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	// Run and hash every join's build side once; the resulting partitioned
	// tables are shared read-only by all probe workers. Builds run top-down
	// — the order the nested Volcano HashJoinOps open theirs in — so cost
	// counters stay bit-equal to the serial path. An empty build side proves
	// the inner join — and hence the whole pipeline input — empty, so the
	// probe scan is normally skipped entirely (O(1) early-out, no phantom
	// scan or shuffle charges, deeper builds never drained), matching the
	// Volcano operator. The exception is a run with a pending sampler
	// materialization: the sampler may sit on the probe spine or inside a
	// deeper build subtree (the planner's fact branch is not always the
	// spine leaf), so — like the Volcano HashJoinOp — any requested
	// byproduct disables the early-out and every build plus the probe pass
	// still runs.
	materializes := len(p.ctx.MaterializeSamples) > 0
	emptyJoin := false
	for k := len(p.joins) - 1; k >= 0; k-- {
		js := p.joins[k]
		if err := js.build.Open(); err != nil {
			return nil, err
		}
		built, err := drainBuild(js.build, p.ctx)
		cerr := js.build.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
		js.table = buildJoinTable(js.spec, built, workers)
		if js.table.empty() {
			emptyJoin = true
			if !materializes {
				break
			}
		}
	}
	if emptyJoin && !materializes {
		out, intervals := newAggTable(p.spec).emit(p.ctx.Confidence)
		p.intervals = intervals
		p.ctx.Stats.OutputRows += int64(out.Len())
		return out, nil
	}

	if workers > nMorsels {
		workers = nMorsels
	}

	// Zone-map pruning: when the spine is sampler-free and a Filter sits
	// directly above a base-table leaf, partitions whose zones refute the
	// predicate are skipped — the filter would drop every one of their rows
	// anyway, so the merged result is bit-identical; only the scanned bytes
	// and tuple counts shrink. Morsel geometry stays on the global row grid
	// (nMorsels is unchanged), so worker-count determinism is untouched; a
	// fully pruned morsel simply yields no batches. Sampler pipelines never
	// prune: their per-morsel RNG streams are keyed to raw row positions.
	keep, leafBytes := []bool(nil), p.pipe.leafBytes
	if p.pipe.leafBase && p.pipe.sampler == nil && !p.ctx.DisablePrune && len(p.pipe.chain) > 0 {
		if f, ok := p.pipe.chain[0].(*plan.Filter); ok {
			keep, leafBytes = pruneKeep(p.pipe.leaf, f.Pred)
			p.ctx.Obs.Pruned(prunedCount(keep))
		}
	}

	// Charge the leaf scan once, exactly as the Volcano scan operators do.
	switch {
	case p.pipe.leafBase:
		p.ctx.Stats.BaseBytes += leafBytes
	case !p.pipe.leafFree:
		p.ctx.Stats.WarehouseBytes += p.pipe.leafBytes
	}

	results := make([]morselResult, nMorsels)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= nMorsels {
					return
				}
				results[i] = p.runMorsel(i, nMorsels, morselRows, keep)
			}
		}()
	}
	wg.Wait()

	// Merge in morsel index order: float accumulation and sample
	// concatenation stay bit-reproducible across worker counts.
	global := newAggTable(p.spec)
	var parts []*synopses.Sample
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, r.err
		}
		p.ctx.Stats.CPUTuples += r.stats.CPUTuples
		p.ctx.Stats.ShuffleBytes += r.stats.ShuffleBytes
		for _, bs := range r.stats.BuiltSamples {
			parts = append(parts, bs.Sample)
		}
		global.merge(r.table)
	}

	if p.pipe.sampler != nil && len(parts) > 0 {
		name := p.ctx.MaterializeSamples[p.pipe.sampler]
		merged, err := synopses.MergeSamples(name, parts)
		if err != nil {
			return nil, err
		}
		// The merged sample carries the node's logical configuration, not
		// the per-morsel δ' each instance ran with.
		merged.Delta = p.pipe.sampler.Delta
		merged.Seed = p.seed
		p.ctx.Stats.BuiltSamples = append(p.ctx.Stats.BuiltSamples,
			BuiltSample{Op: p.pipe.sampler, Sample: merged})
	}

	out, intervals := global.emit(p.ctx.Confidence)
	p.intervals = intervals
	p.ctx.Stats.OutputRows += int64(out.Len())
	return out, nil
}

// Close implements Operator.
func (p *ParallelAggOp) Close() error {
	// Build-side concatenations are pool-owned (drainBuild); recycle them.
	// Probe output only ever holds copies, never references into them.
	for _, js := range p.joins {
		if js.table != nil && js.table.rows != nil {
			p.ctx.Pool.Release(js.table.rows)
			js.table.rows = nil
		}
	}
	return nil
}

// Schema implements Operator.
func (p *ParallelAggOp) Schema() storage.Schema { return p.spec.schema }

// Intervals implements IntervalReporter.
func (p *ParallelAggOp) Intervals() [][]stats.Interval { return p.intervals }

// runMorsel executes the pipeline over morsel i with fully local state. keep
// is the zone-prune survivor mask (nil = scan everything).
func (p *ParallelAggOp) runMorsel(i, nMorsels, morselRows int, keep []bool) morselResult {
	mctx := &Context{
		Confidence:         p.ctx.Confidence,
		Stats:              &RunStats{},
		MaterializeSamples: p.ctx.MaterializeSamples,
		Pool:               p.ctx.Pool, // sync.Pool-backed: safe across workers
		DisableKernels:     p.ctx.DisableKernels,
		Obs:                p.ctx.Obs, // atomic counters: safe across workers
	}
	root, err := buildMorselChain(p.pipe, p.joins, i, nMorsels, p.seed, mctx)
	if err != nil {
		return morselResult{err: err}
	}
	lo := i * morselRows
	hi := lo + morselRows
	root.src.batches = p.pipe.leaf.ScanRangePruned(lo, hi, storage.BatchSize, keep)

	table := newAggTable(p.spec)
	if err := root.op.Open(); err != nil {
		return morselResult{err: err}
	}
	defer root.op.Close()
	for {
		b, err := root.op.Next()
		if err != nil {
			return morselResult{err: err}
		}
		if b == nil {
			break
		}
		mctx.Stats.ShuffleBytes += batchBytes(b)
		mctx.Stats.CPUTuples += int64(b.Rows())
		table.observe(b)
		mctx.Pool.Release(b)
	}
	return morselResult{table: table, stats: *mctx.Stats}
}

// morselChain couples the top operator of a per-morsel pipeline with its
// leaf, so the caller can install the morsel's batches before running.
type morselChain struct {
	op  Operator
	src *morselScan
}

// buildMorselChain instantiates the pipeline's operator chain for one morsel:
// a morsel-local scan, then per-node Filter/Sampler/probe operators. Sampler
// instances get the morsel's split seed and partitioned δ; probe operators
// share the join states' pre-built hash tables.
func buildMorselChain(pipe *parallelPipeline, joins []*pipelineJoinState, morsel, nMorsels int, seed uint64, mctx *Context) (*morselChain, error) {
	src := &morselScan{schema: pipe.leaf.Schema(), ctx: mctx}
	var cur Operator = src
	ji := 0
	for _, n := range pipe.chain {
		switch t := n.(type) {
		case *plan.Filter:
			cur = NewFilterOp(cur, t.Pred, mctx)
		case *plan.Join:
			cur = &morselProbeOp{child: cur, st: joins[ji], ctx: mctx}
			ji++
		case *plan.SynopsisOp:
			delta := synopses.PartitionDelta(t.Delta, nMorsels)
			op, err := newSamplerOpDelta(cur, t, delta, synopses.SplitSeed(seed, uint64(morsel)), mctx)
			if err != nil {
				return nil, err
			}
			cur = op
		}
	}
	return &morselChain{op: cur, src: src}, nil
}

// morselProbeOp probes one morsel's stream against a join's shared hash
// table with a morsel-local prober, charging probe shuffle and output CPU to
// the morsel's context exactly as the Volcano HashJoinOp does.
type morselProbeOp struct {
	child  Operator
	st     *pipelineJoinState
	ctx    *Context
	prober joinProber
}

// Open implements Operator.
func (o *morselProbeOp) Open() error {
	o.prober = joinProber{spec: o.st.spec, table: o.st.table, pool: o.ctx.Pool}
	return o.child.Open()
}

// Next implements Operator.
func (o *morselProbeOp) Next() (*storage.Batch, error) {
	if o.st.table.empty() {
		// Only reachable when the pipeline materializes a sampler byproduct
		// (plain empty joins early-out before the pool starts): drain the
		// child so samplers below this join still observe their stream, and
		// emit nothing.
		for {
			b, err := o.child.Next()
			if err != nil || b == nil {
				return nil, err
			}
			o.ctx.Stats.ShuffleBytes += batchBytes(b)
			o.ctx.Pool.Release(b)
		}
	}
	out, err := o.prober.next(func() (*storage.Batch, error) {
		b, err := o.child.Next()
		if b != nil {
			// Prober walks physical indices: resolve selections first, like
			// the Volcano HashJoinOp (same bytes either way).
			b = b.Materialize(o.ctx.Pool)
			o.ctx.Stats.ShuffleBytes += batchBytes(b)
		}
		return b, err
	})
	if out != nil {
		o.ctx.Stats.CPUTuples += int64(out.Len())
	}
	return out, err
}

// Close implements Operator.
func (o *morselProbeOp) Close() error { return o.child.Close() }

// Schema implements Operator.
func (o *morselProbeOp) Schema() storage.Schema { return o.st.spec.schema }

// morselScan feeds one morsel's pre-sliced batches into a per-morsel
// pipeline. I/O is charged once by ParallelAggOp, not per morsel; CPU tuples
// are charged here like any scan.
type morselScan struct {
	schema  storage.Schema
	ctx     *Context
	batches []*storage.Batch
	pos     int
}

// Open implements Operator.
func (s *morselScan) Open() error {
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *morselScan) Next() (*storage.Batch, error) {
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	s.ctx.Stats.CPUTuples += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (s *morselScan) Close() error { return nil }

// Schema implements Operator.
func (s *morselScan) Schema() storage.Schema { return s.schema }
