package exec

import (
	"fmt"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// bigOrders is ordersTable scaled up enough to span many morsels at the
// test's reduced morsel size.
func bigOrders(rows int) *storage.Table {
	b := storage.NewBuilder("orders", storage.Schema{
		{Name: "orders.id", Typ: storage.Int64},
		{Name: "orders.cust", Typ: storage.Int64},
		{Name: "orders.amount", Typ: storage.Float64},
	})
	for i := 0; i < rows; i++ {
		b.Int(0, int64(i))
		b.Int(1, int64(i%10))
		b.Float(2, float64(i))
	}
	return b.Build(4)
}

// fingerprint canonicalizes an operator run: all rows plus all intervals.
func fingerprint(t *testing.T, n plan.Node, ctx *Context, seed uint64) string {
	t.Helper()
	op, err := Compile(n, seed, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(op)
	if err != nil {
		t.Fatal(err)
	}
	s := fmt.Sprintf("%v", allRows(out))
	if rep, ok := op.(IntervalReporter); ok {
		s += fmt.Sprintf("|%v", rep.Intervals())
	}
	return s
}

func TestParallelAggCompilesForPipelineShapes(t *testing.T) {
	tbl := ordersTable()
	agg := &plan.Aggregate{
		Child:   &plan.Filter{Child: &plan.Scan{Table: tbl}, Pred: &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "orders.id"}, R: expr.Int(500)}},
		GroupBy: []string{"orders.cust"},
		Aggs:    []plan.AggSpec{{Kind: stats.Sum, Col: "orders.amount"}},
	}
	op, err := Compile(agg, 1, NewContext(0.95))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*ParallelAggOp); !ok {
		t.Fatalf("single-table aggregate compiled to %T, want *ParallelAggOp", op)
	}

	// Join pipelines run on the parallel executor too (PR 2).
	j := &plan.Aggregate{
		Child: &plan.Join{
			Left: &plan.Scan{Table: tbl}, Right: &plan.Scan{Table: customersTable()},
			LeftKeys: []string{"orders.cust"}, RightKeys: []string{"cust.id"},
		},
		Aggs: []plan.AggSpec{{Kind: stats.Count}},
	}
	op, err = Compile(j, 1, NewContext(0.95))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*ParallelAggOp); !ok {
		t.Fatalf("join aggregate compiled to %T, want *ParallelAggOp", op)
	}

	// Projection spines keep the Volcano path.
	proj, err := plan.NewProject(&plan.Scan{Table: tbl}, []plan.NamedExpr{
		{Name: "amount", E: &expr.Col{Name: "orders.amount"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := &plan.Aggregate{Child: proj, Aggs: []plan.AggSpec{{Kind: stats.Sum, Col: "amount"}}}
	op, err = Compile(pr, 1, NewContext(0.95))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*ParallelAggOp); ok {
		t.Fatal("projection aggregate must not use the parallel executor")
	}
}

func TestParallelAggMatchesSequentialVolcanoExact(t *testing.T) {
	// Exact aggregation carries no randomness, so the morsel executor must
	// reproduce the Volcano operator bit for bit, including cost counters.
	tbl := bigOrders(20000)
	agg := &plan.Aggregate{
		Child:   &plan.Scan{Table: tbl},
		GroupBy: []string{"orders.cust"},
		Aggs: []plan.AggSpec{
			{Kind: stats.Count},
			{Kind: stats.Sum, Col: "orders.amount"},
			{Kind: stats.Avg, Col: "orders.amount"},
		},
	}
	pctx := NewContext(0.95)
	pctx.Workers = 8
	pctx.MorselRows = 512
	got := fingerprint(t, agg, pctx, 7)

	vctx := NewContext(0.95)
	vop, err := NewHashAggOp(NewTableScan(tbl, vctx), agg.GroupBy, agg.Aggs, vctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(vop)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v|%v", allRows(out), vop.Intervals())
	if got != want {
		t.Fatalf("parallel exact aggregate diverges from Volcano:\n%.200s\nvs\n%.200s", got, want)
	}
	if pctx.Stats.BaseBytes != vctx.Stats.BaseBytes || pctx.Stats.CPUTuples != vctx.Stats.CPUTuples ||
		pctx.Stats.ShuffleBytes != vctx.Stats.ShuffleBytes || pctx.Stats.OutputRows != vctx.Stats.OutputRows {
		t.Fatalf("cost counters diverge: parallel %+v vs volcano %+v", *pctx.Stats, *vctx.Stats)
	}
}

func TestParallelAggDeterministicAcrossWorkerCounts(t *testing.T) {
	// The determinism contract: at a fixed seed and morsel size, results are
	// byte-identical for any worker count — including the sampled paths.
	tbl := bigOrders(30000)
	for _, node := range []plan.Node{
		&plan.Aggregate{ // uniform sampler
			Child:   &plan.SynopsisOp{Child: &plan.Scan{Table: tbl}, Kind: plan.UniformSample, P: 0.2},
			GroupBy: []string{"orders.cust"},
			Aggs:    []plan.AggSpec{{Kind: stats.Count}, {Kind: stats.Sum, Col: "orders.amount"}},
		},
		&plan.Aggregate{ // distinct sampler below a filter
			Child: &plan.Filter{
				Child: &plan.SynopsisOp{
					Child: &plan.Scan{Table: tbl},
					Kind:  plan.DistinctSample, P: 0.1, Delta: 16, StratCols: []string{"orders.cust"},
				},
				Pred: &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "orders.id"}, R: expr.Int(25000)},
			},
			GroupBy: []string{"orders.cust"},
			Aggs:    []plan.AggSpec{{Kind: stats.Sum, Col: "orders.amount"}},
		},
	} {
		var base string
		for _, workers := range []int{1, 3, 8, 16} {
			ctx := NewContext(0.95)
			ctx.Workers = workers
			ctx.MorselRows = 1000
			fp := fingerprint(t, node, ctx, 42)
			if base == "" {
				base = fp
			} else if fp != base {
				t.Fatalf("workers=%d diverges from workers=1 on %s", workers, node.String())
			}
		}
	}
}

func TestParallelAggMergesMaterializedSample(t *testing.T) {
	tbl := bigOrders(30000)
	syn := &plan.SynopsisOp{
		Child: &plan.Scan{Table: tbl},
		Kind:  plan.DistinctSample, P: 0.05, Delta: 12, StratCols: []string{"orders.cust"},
	}
	agg := &plan.Aggregate{
		Child:   syn,
		GroupBy: []string{"orders.cust"},
		Aggs:    []plan.AggSpec{{Kind: stats.Count}},
	}

	build := func(workers int) *synopses.Sample {
		ctx := NewContext(0.95)
		ctx.Workers = workers
		ctx.MorselRows = 1000
		ctx.MaterializeSamples[syn] = "orders_sample"
		fingerprint(t, agg, ctx, 11)
		if len(ctx.Stats.BuiltSamples) != 1 {
			t.Fatalf("built samples = %d", len(ctx.Stats.BuiltSamples))
		}
		return ctx.Stats.BuiltSamples[0].Sample
	}

	s1 := build(1)
	s8 := build(8)
	if s1.SourceRows != 30000 || s8.SourceRows != 30000 {
		t.Fatalf("source rows = %d / %d, want 30000", s1.SourceRows, s8.SourceRows)
	}
	if s1.Strategy != "distinct" || s1.Delta != 12 {
		t.Fatalf("merged sample config = %s δ=%d, want distinct δ=12", s1.Strategy, s1.Delta)
	}
	if s1.Rows.Name != "orders_sample" {
		t.Fatalf("sample name = %q", s1.Rows.Name)
	}
	if s1.Rows.NumRows() != s8.Rows.NumRows() || s1.Rows.Bytes() != s8.Rows.Bytes() {
		t.Fatalf("materialized sample differs across worker counts: %d rows/%d bytes vs %d rows/%d bytes",
			s1.Rows.NumRows(), s1.Rows.Bytes(), s8.Rows.NumRows(), s8.Rows.Bytes())
	}
	// Every stratum must be covered (the distinct sampler's guarantee holds
	// per morsel, hence globally).
	custs := make(map[int64]bool)
	for i := 0; i < s8.Rows.NumRows(); i++ {
		custs[s8.Rows.Column(1).I64[i]] = true
	}
	if len(custs) != 10 {
		t.Fatalf("sample covers %d/10 strata", len(custs))
	}
}

func TestParallelAggEmptyInput(t *testing.T) {
	empty := storage.NewBuilder("e", storage.Schema{
		{Name: "e.k", Typ: storage.Int64},
		{Name: "e.v", Typ: storage.Float64},
	}).Build(1)
	// Global aggregate over empty input: one row, COUNT 0.
	agg := &plan.Aggregate{
		Child: &plan.Scan{Table: empty},
		Aggs:  []plan.AggSpec{{Kind: stats.Count}},
	}
	ctx := NewContext(0.95)
	ctx.Workers = 4
	rows := allRows(runPlan(t, agg, ctx))
	if len(rows) != 1 || rows[0][0].F != 0 {
		t.Fatalf("global aggregate over empty input = %v, want one zero row", rows)
	}
	// Grouped aggregate over empty input: no rows.
	gagg := &plan.Aggregate{
		Child:   &plan.Scan{Table: empty},
		GroupBy: []string{"e.k"},
		Aggs:    []plan.AggSpec{{Kind: stats.Count}},
	}
	ctx2 := NewContext(0.95)
	if rows := allRows(runPlan(t, gagg, ctx2)); len(rows) != 0 {
		t.Fatalf("grouped aggregate over empty input = %v rows", rows)
	}
}

func TestParallelAggSamplerErrors(t *testing.T) {
	ctx := NewContext(0.95)
	agg := &plan.Aggregate{
		Child: &plan.SynopsisOp{
			Child: &plan.Scan{Table: ordersTable()},
			Kind:  plan.DistinctSample, P: 0.1, Delta: 5, StratCols: []string{"nope"},
		},
		Aggs: []plan.AggSpec{{Kind: stats.Count}},
	}
	if _, err := Compile(agg, 1, ctx); err == nil {
		t.Fatal("want unknown stratification column error from parallel compile")
	}
}
