package exec

import (
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// Per-stage microbenchmarks of the vectorized hot path (`make bench-kernels`):
// the filter stage (compiled selection kernels vs the interpreted Eval
// fallback) and aggTable.observe (the hoisted agg-major loop vs a row-major
// reference that re-derives the weight/aggregate dispatch per row, i.e. the
// pre-hoisting loop structure). Each benchmark reports ns/row so the stages
// compare on one scale; the *_rowmajor numbers are the regression baseline the
// hoisted loops must stay well under.

const benchRows = 4096

// benchAggBatch: f (float payload), i (int payload), g (8-way int group),
// plus the sampler weight column for the weighted variants.
func benchAggBatch(weighted bool) *storage.Batch {
	schema := storage.Schema{
		{Name: "t.f", Typ: storage.Float64},
		{Name: "t.i", Typ: storage.Int64},
		{Name: "t.g", Typ: storage.Int64},
	}
	if weighted {
		schema = append(schema, storage.Col{Name: synopses.WeightCol, Typ: storage.Float64})
	}
	b := storage.NewBatch(schema, benchRows)
	for r := 0; r < benchRows; r++ {
		b.Vecs[0].F64 = append(b.Vecs[0].F64, float64(r%100)+0.5)
		b.Vecs[1].I64 = append(b.Vecs[1].I64, int64(r%1000))
		b.Vecs[2].I64 = append(b.Vecs[2].I64, int64(r%8))
		if weighted {
			b.Vecs[3].F64 = append(b.Vecs[3].F64, 1.0+float64(r%3))
		}
	}
	return b
}

// benchPred is a fused two-conjunct column-vs-constant predicate (~45%
// selective) squarely inside the kernel subset.
func benchPred() expr.Expr {
	return &expr.Logic{Op: expr.And,
		L: &expr.Cmp{Op: expr.GT, L: &expr.Col{Name: "t.f"}, R: &expr.Const{Val: storage.FloatValue(25)}},
		R: &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "t.i"}, R: &expr.Const{Val: storage.IntValue(900)}},
	}
}

func reportPerRow(b *testing.B, rowsPerOp int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(rowsPerOp)), "ns/row")
}

// BenchmarkFilterKernel measures the compiled selection-kernel filter stage:
// refine a dense batch into a selection vector, no row gather.
func BenchmarkFilterKernel(b *testing.B) {
	batch := benchAggBatch(false)
	prog, ok := expr.CompileFilter(benchPred(), batch.Schema)
	if !ok {
		b.Fatal("benchmark predicate fell outside the kernel subset")
	}
	out := make([]int32, 0, benchRows)
	var sc expr.Scratch
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		out = prog.Refine(batch, nil, out[:0], &sc)
	}
	reportPerRow(b, benchRows)
	if len(out) == 0 {
		b.Fatal("predicate selected nothing")
	}
}

// BenchmarkFilterEval measures the interpreted fallback the kernels replace:
// Eval the predicate tree to boolean vectors, collect true indices.
func BenchmarkFilterEval(b *testing.B) {
	batch := benchAggBatch(false)
	pred := benchPred()
	var idx []int
	var err error
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		idx, err = expr.EvalBoolInto(pred, batch, idx[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPerRow(b, benchRows)
	if len(idx) == 0 {
		b.Fatal("predicate selected nothing")
	}
}

// rowMajorObserve folds a batch with the pre-hoisting loop structure: one pass
// over rows, re-deriving the group pointer, weight-column presence and each
// aggregate's column binding inside the row loop. It is the regression
// baseline for aggTable.observe; both produce identical accumulator state.
func rowMajorObserve(t *aggTable, b *storage.Batch) {
	n := b.Len()
	for i := 0; i < n; i++ {
		var g *aggGroup
		if len(t.spec.groupIdx) == 0 {
			g = t.singleGroup()
		} else {
			g = t.canonicalGroup(b, i)
		}
		w := 1.0
		if t.spec.weightIdx >= 0 {
			w = b.Vecs[t.spec.weightIdx].F64[i]
		}
		for k := range t.spec.aggs {
			y := 1.0
			if ci := t.spec.aggIdx[k]; ci >= 0 {
				y = b.Vecs[ci].Float(i)
			}
			g.accs[k].Observe(y, w)
		}
	}
}

func benchObserve(b *testing.B, groupBy []string, weighted, hoisted bool) {
	batch := benchAggBatch(weighted)
	aggs := []plan.AggSpec{
		{Kind: stats.Sum, Col: "t.f"},
		{Kind: stats.Count},
	}
	spec, err := resolveAggSpec(batch.Schema, groupBy, aggs)
	if err != nil {
		b.Fatal(err)
	}
	table := newAggTable(spec)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if hoisted {
			table.observe(batch)
		} else {
			rowMajorObserve(table, batch)
		}
	}
	reportPerRow(b, benchRows)
}

func BenchmarkAggUngrouped(b *testing.B)         { benchObserve(b, nil, false, true) }
func BenchmarkAggUngroupedRowMajor(b *testing.B) { benchObserve(b, nil, false, false) }
func BenchmarkAggUngroupedWeighted(b *testing.B) { benchObserve(b, nil, true, true) }
func BenchmarkAggUngroupedWeightedRowMajor(b *testing.B) {
	benchObserve(b, nil, true, false)
}
func BenchmarkAggGrouped(b *testing.B)         { benchObserve(b, []string{"t.g"}, false, true) }
func BenchmarkAggGroupedRowMajor(b *testing.B) { benchObserve(b, []string{"t.g"}, false, false) }
func BenchmarkAggGroupedWeighted(b *testing.B) { benchObserve(b, []string{"t.g"}, true, true) }
func BenchmarkAggGroupedWeightedRowMajor(b *testing.B) {
	benchObserve(b, []string{"t.g"}, true, false)
}

// TestObserveHoistingMatchesRowMajor pins the hoisting refactor's equivalence
// claim outside the benchmarks: the agg-major hoisted observe and the
// row-major reference must produce bit-identical emitted estimates, grouped
// and ungrouped, weighted and unweighted, dense and under a selection vector.
func TestObserveHoistingMatchesRowMajor(t *testing.T) {
	for _, groupBy := range [][]string{nil, {"t.g"}} {
		for _, weighted := range []bool{false, true} {
			batch := benchAggBatch(weighted)
			aggs := []plan.AggSpec{{Kind: stats.Sum, Col: "t.f"}, {Kind: stats.Count}, {Kind: stats.Avg, Col: "t.i"}}
			spec, err := resolveAggSpec(batch.Schema, groupBy, aggs)
			if err != nil {
				t.Fatal(err)
			}
			hoisted, reference := newAggTable(spec), newAggTable(spec)
			hoisted.observe(batch)
			rowMajorObserve(reference, batch)
			ha, hIv := hoisted.emit(0.95)
			ra, rIv := reference.emit(0.95)
			if ha.Len() != ra.Len() {
				t.Fatalf("groupBy=%v weighted=%v: %d vs %d groups", groupBy, weighted, ha.Len(), ra.Len())
			}
			for c := range ha.Vecs {
				for i := 0; i < ha.Len(); i++ {
					if !ha.Vecs[c].Get(i).Equal(ra.Vecs[c].Get(i)) {
						t.Fatalf("groupBy=%v weighted=%v: row %d col %d: %v vs %v",
							groupBy, weighted, i, c, ha.Vecs[c].Get(i), ra.Vecs[c].Get(i))
					}
				}
			}
			for i := range hIv {
				for k := range hIv[i] {
					if hIv[i][k] != rIv[i][k] {
						t.Fatalf("groupBy=%v weighted=%v: interval %d/%d differs", groupBy, weighted, i, k)
					}
				}
			}
		}
	}
}
