package exec

import (
	"fmt"
	"sort"

	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

// SortOp materializes its input, orders it by the sort columns and emits a
// single batch (optionally truncated to a limit). When the child reports
// confidence intervals, the sort permutes them alongside the rows so the
// final result stays row-aligned.
type SortOp struct {
	Child Operator
	By    []string
	Desc  []bool
	Limit int
	ctx   *Context

	byIdx     []int
	emitted   bool
	intervals [][]stats.Interval
}

// NewSortOp resolves the sort columns against the child schema.
func NewSortOp(child Operator, by []string, desc []bool, limit int, ctx *Context) (*SortOp, error) {
	s := &SortOp{Child: child, By: by, Desc: desc, Limit: limit, ctx: ctx}
	for _, c := range by {
		i := child.Schema().Index(c)
		if i < 0 {
			return nil, fmt.Errorf("exec: sort: column %q not in %v", c, child.Schema().Names())
		}
		s.byIdx = append(s.byIdx, i)
	}
	return s, nil
}

// Open implements Operator.
func (s *SortOp) Open() error {
	s.emitted = false
	s.intervals = nil
	return s.Child.Open()
}

// Next implements Operator.
func (s *SortOp) Next() (*storage.Batch, error) {
	if s.emitted {
		return nil, nil
	}
	all := storage.NewBatch(s.Child.Schema(), 0)
	var childIvs [][]stats.Interval
	for {
		b, err := s.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		b = b.Materialize(s.ctx.Pool)
		for i := 0; i < b.Len(); i++ {
			all.AppendRow(b, i)
		}
	}
	if rep, ok := s.Child.(IntervalReporter); ok {
		childIvs = rep.Intervals()
	}
	s.emitted = true

	n := all.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, c := range s.byIdx {
			va, vb := all.Vecs[c].Get(idx[a]), all.Vecs[c].Get(idx[b])
			if va.Equal(vb) {
				continue
			}
			less := va.Less(vb)
			if k < len(s.Desc) && s.Desc[k] {
				return !less
			}
			return less
		}
		return false
	})
	if s.Limit > 0 && s.Limit < len(idx) {
		idx = idx[:s.Limit]
	}
	out := all.Gather(idx)
	if childIvs != nil && len(childIvs) == n {
		s.intervals = make([][]stats.Interval, len(idx))
		for i, j := range idx {
			s.intervals[i] = childIvs[j]
		}
	}
	s.ctx.Stats.CPUTuples += int64(n)
	return out, nil
}

// Close implements Operator.
func (s *SortOp) Close() error { return s.Child.Close() }

// Schema implements Operator.
func (s *SortOp) Schema() storage.Schema { return s.Child.Schema() }

// Intervals implements IntervalReporter.
func (s *SortOp) Intervals() [][]stats.Interval { return s.intervals }
