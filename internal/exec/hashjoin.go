package exec

import (
	"fmt"

	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// HashJoinOp is an inner equi-join: it builds a hash table over the right
// input, then streams the left input against it. If either input carries a
// sampler weight column, the join merges them into a single trailing weight
// column whose value is the product of the sides' weights (joining two
// independent samples multiplies inclusion probabilities).
type HashJoinOp struct {
	Left, Right Operator
	leftKeys    []int
	rightKeys   []int

	ctx    *Context
	schema storage.Schema

	leftWeight  int // index of weight col in left schema, -1 if none
	rightWeight int
	leftCols    []int // left columns copied to output (weight excluded)
	rightCols   []int

	built      *storage.Batch // all right rows concatenated
	hash       map[string][]int
	outWeights bool
}

// NewHashJoinOp resolves join key columns by name and prepares the operator.
func NewHashJoinOp(left, right Operator, leftKeys, rightKeys []string, ctx *Context) (*HashJoinOp, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash join needs equal, non-empty key lists")
	}
	j := &HashJoinOp{Left: left, Right: right, ctx: ctx}
	ls, rs := left.Schema(), right.Schema()
	for _, k := range leftKeys {
		i := ls.Index(k)
		if i < 0 {
			return nil, fmt.Errorf("exec: hash join: left key %q not in %v", k, ls.Names())
		}
		j.leftKeys = append(j.leftKeys, i)
	}
	for _, k := range rightKeys {
		i := rs.Index(k)
		if i < 0 {
			return nil, fmt.Errorf("exec: hash join: right key %q not in %v", k, rs.Names())
		}
		j.rightKeys = append(j.rightKeys, i)
	}
	j.leftWeight = ls.Index(synopses.WeightCol)
	j.rightWeight = rs.Index(synopses.WeightCol)
	j.outWeights = j.leftWeight >= 0 || j.rightWeight >= 0
	for i, c := range ls {
		if i == j.leftWeight {
			continue
		}
		j.schema = append(j.schema, c)
		j.leftCols = append(j.leftCols, i)
	}
	for i, c := range rs {
		if i == j.rightWeight {
			continue
		}
		j.schema = append(j.schema, c)
		j.rightCols = append(j.rightCols, i)
	}
	if j.outWeights {
		j.schema = append(j.schema, storage.Col{Name: synopses.WeightCol, Typ: storage.Float64})
	}
	return j, nil
}

// Open implements Operator: it drains and hashes the right (build) input.
func (j *HashJoinOp) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	rs := j.Right.Schema()
	j.built = storage.NewBatch(rs, 0)
	j.hash = make(map[string][]int, 1024)
	var key []byte
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		j.ctx.Stats.ShuffleBytes += batchBytes(b)
		base := j.built.Len()
		for i := 0; i < b.Len(); i++ {
			j.built.AppendRow(b, i)
			key = groupKey(key, b.Vecs, j.rightKeys, i)
			j.hash[string(key)] = append(j.hash[string(key)], base+i)
		}
	}
	return nil
}

// Next implements Operator.
func (j *HashJoinOp) Next() (*storage.Batch, error) {
	for {
		b, err := j.Left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		j.ctx.Stats.ShuffleBytes += batchBytes(b)
		out := storage.NewBatch(j.schema, b.Len())
		var key []byte
		for i := 0; i < b.Len(); i++ {
			key = groupKey(key, b.Vecs, j.leftKeys, i)
			matches := j.hash[string(key)]
			for _, m := range matches {
				col := 0
				for _, lc := range j.leftCols {
					out.Vecs[col].AppendFrom(b.Vecs[lc], i)
					col++
				}
				for _, rc := range j.rightCols {
					out.Vecs[col].AppendFrom(j.built.Vecs[rc], m)
					col++
				}
				if j.outWeights {
					w := 1.0
					if j.leftWeight >= 0 {
						w *= b.Vecs[j.leftWeight].F64[i]
					}
					if j.rightWeight >= 0 {
						w *= j.built.Vecs[j.rightWeight].F64[m]
					}
					out.Vecs[col].F64 = append(out.Vecs[col].F64, w)
				}
			}
		}
		if out.Len() == 0 {
			continue
		}
		j.ctx.Stats.CPUTuples += int64(out.Len())
		return out, nil
	}
}

// Close implements Operator.
func (j *HashJoinOp) Close() error {
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Schema implements Operator.
func (j *HashJoinOp) Schema() storage.Schema { return j.schema }

func batchBytes(b *storage.Batch) int64 {
	var n int64
	for _, v := range b.Vecs {
		n += v.Bytes()
	}
	return n
}
