package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// joinBatchRows caps the number of joined rows emitted per output batch. A
// high-fanout join (skewed key) would otherwise accumulate every match for a
// probe batch into one unbounded output batch; the prober instead carries its
// probe position across Next calls and emits fixed-size chunks.
const joinBatchRows = storage.BatchSize

// joinSpec is the resolved column binding of one equi-join: key and payload
// column positions on both sides plus the output schema. It is computed once
// and shared by every prober of the join (one per morsel in the parallel
// executor, exactly one in the Volcano operator).
//
// If either input carries a sampler weight column, the join merges them into
// a single trailing weight column whose value is the product of the sides'
// weights (joining two independent samples multiplies inclusion
// probabilities).
type joinSpec struct {
	leftKeys  []int
	rightKeys []int

	leftWeight  int // index of weight col in left schema, -1 if none
	rightWeight int
	leftCols    []int // left columns copied to output (weight excluded)
	rightCols   []int
	outWeights  bool

	schema storage.Schema
}

// resolveJoinSpec binds join key columns by name against both input schemas.
func resolveJoinSpec(ls, rs storage.Schema, leftKeys, rightKeys []string) (*joinSpec, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash join needs equal, non-empty key lists")
	}
	j := &joinSpec{}
	for _, k := range leftKeys {
		i := ls.Index(k)
		if i < 0 {
			return nil, fmt.Errorf("exec: hash join: left key %q not in %v", k, ls.Names())
		}
		j.leftKeys = append(j.leftKeys, i)
	}
	for _, k := range rightKeys {
		i := rs.Index(k)
		if i < 0 {
			return nil, fmt.Errorf("exec: hash join: right key %q not in %v", k, rs.Names())
		}
		j.rightKeys = append(j.rightKeys, i)
	}
	j.leftWeight = ls.Index(synopses.WeightCol)
	j.rightWeight = rs.Index(synopses.WeightCol)
	j.outWeights = j.leftWeight >= 0 || j.rightWeight >= 0
	for i, c := range ls {
		if i == j.leftWeight {
			continue
		}
		j.schema = append(j.schema, c)
		j.leftCols = append(j.leftCols, i)
	}
	for i, c := range rs {
		if i == j.rightWeight {
			continue
		}
		j.schema = append(j.schema, c)
		j.rightCols = append(j.rightCols, i)
	}
	if j.outWeights {
		j.schema = append(j.schema, storage.Col{Name: synopses.WeightCol, Typ: storage.Float64})
	}
	return j, nil
}

// joinTable is the materialized, hashed build side of one join:
// hash-partitioned sub-tables mapping key bytes to build row indices. Once
// built it is immutable and safe for concurrent probing.
//
// Partitioning is observation-invariant: each key's match list always holds
// every build row with that key in ascending row order, regardless of the
// partition count — only which sub-table owns the key changes. Probe results
// are therefore byte-identical for any partition/worker count.
type joinTable struct {
	spec  *joinSpec
	rows  *storage.Batch // all build rows concatenated, in input order
	parts []map[string][]int
}

func (t *joinTable) empty() bool { return t == nil || t.rows == nil || t.rows.Len() == 0 }

func (t *joinTable) lookup(key []byte) []int {
	if len(t.parts) == 1 {
		return t.parts[0][string(key)]
	}
	return t.parts[fnv1a(key)%uint64(len(t.parts))][string(key)]
}

// fnv1a hashes key bytes to a partition; any stable byte hash works, the
// choice only affects load balance, never results.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// drainBuild materializes an operator's full output in input order, charging
// shuffle bytes (the build side of a hash join is exchanged in the simulated
// cluster). Consumed batches are released: the joinTable keeps only the
// copied concatenation.
func drainBuild(op Operator, ctx *Context) (*storage.Batch, error) {
	rows := storage.NewBatch(op.Schema(), 0)
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		ctx.Stats.ShuffleBytes += batchBytes(b)
		for i := 0; i < b.Len(); i++ {
			rows.AppendRow(b, i)
		}
		ctx.Pool.Release(b)
	}
}

// buildJoinTable hashes the materialized build rows into `workers`
// hash-partitioned sub-tables using up to `workers` goroutines. Phase 1
// splits the rows into fixed-size chunks claimed from an atomic dispenser and
// computes each row's key bytes and partition; phase 2 builds each
// partition's map by walking the rows in index order, so every match list is
// ascending no matter which worker built it.
func buildJoinTable(spec *joinSpec, rows *storage.Batch, workers int) *joinTable {
	t := &joinTable{spec: spec, rows: rows}
	n := rows.Len()
	if n == 0 {
		return t
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		m := make(map[string][]int, 1024)
		var key []byte
		for i := 0; i < n; i++ {
			key = groupKey(key, rows.Vecs, spec.rightKeys, i)
			m[string(key)] = append(m[string(key)], i)
		}
		t.parts = []map[string][]int{m}
		return t
	}

	keys := make([]string, n)
	nParts := uint64(workers)
	nChunks := (n + DefaultMorselRows - 1) / DefaultMorselRows
	// chunkParts[c][p] lists chunk c's row indices owned by partition p
	// (int32: build sides are bounded far below 2^31 rows by memory), so
	// phase 2 is O(n) total instead of every partition rescanning all rows.
	chunkParts := make([][][]int32, nChunks)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var key []byte
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * DefaultMorselRows
				hi := lo + DefaultMorselRows
				if hi > n {
					hi = n
				}
				local := make([][]int32, nParts)
				for i := lo; i < hi; i++ {
					key = groupKey(key, rows.Vecs, spec.rightKeys, i)
					keys[i] = string(key)
					p := fnv1a(key) % nParts
					local[p] = append(local[p], int32(i))
				}
				chunkParts[c] = local
			}
		}()
	}
	wg.Wait()

	// Phase 2: partition p concatenates its index lists in chunk order, so
	// every match list is ascending regardless of which worker built it.
	t.parts = make([]map[string][]int, workers)
	var pnext int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(atomic.AddInt64(&pnext, 1)) - 1
				if p >= workers {
					return
				}
				m := make(map[string][]int, n/workers+1)
				for c := 0; c < nChunks; c++ {
					for _, i := range chunkParts[c][p] {
						m[keys[i]] = append(m[keys[i]], int(i))
					}
				}
				t.parts[p] = m
			}
		}()
	}
	wg.Wait()
	return t
}

// joinProber streams probe batches against a built joinTable, emitting joined
// output in chunks of at most joinBatchRows rows. It carries the probe
// position (current batch, row, and match offset) across calls, so a skewed
// key with huge fanout never inflates a single output batch.
type joinProber struct {
	spec  *joinSpec
	table *joinTable
	pool  *storage.VecPool

	cur      *storage.Batch
	curRow   int
	matches  []int
	matchPos int
	pending  bool
	key      []byte
}

// next pulls probe batches via fetch until it has filled one output chunk (or
// the probe side is exhausted). It returns nil at end of stream and never
// returns an empty batch.
func (p *joinProber) next(fetch func() (*storage.Batch, error)) (*storage.Batch, error) {
	var out *storage.Batch
	for {
		if p.cur == nil {
			b, err := fetch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if out != nil && out.Len() > 0 {
					return out, nil
				}
				return nil, nil
			}
			if b.Len() == 0 {
				continue
			}
			p.cur, p.curRow, p.pending = b, 0, false
		}
		for p.curRow < p.cur.Len() {
			if !p.pending {
				p.key = groupKey(p.key, p.cur.Vecs, p.spec.leftKeys, p.curRow)
				p.matches = p.table.lookup(p.key)
				p.matchPos = 0
				p.pending = true
			}
			if p.matchPos < len(p.matches) && out == nil {
				out = p.pool.GetBatch(p.spec.schema, joinBatchRows)
			}
			for p.matchPos < len(p.matches) {
				if out.Len() >= joinBatchRows {
					return out, nil
				}
				p.emit(out, p.curRow, p.matches[p.matchPos])
				p.matchPos++
			}
			p.pending = false
			p.curRow++
		}
		// The probe batch is fully emitted (emit copies values out), so its
		// memory can be recycled before fetching the next one.
		p.pool.Release(p.cur)
		p.cur = nil
	}
}

func (p *joinProber) emit(out *storage.Batch, row, m int) {
	col := 0
	for _, lc := range p.spec.leftCols {
		out.Vecs[col].AppendFrom(p.cur.Vecs[lc], row)
		col++
	}
	for _, rc := range p.spec.rightCols {
		out.Vecs[col].AppendFrom(p.table.rows.Vecs[rc], m)
		col++
	}
	if p.spec.outWeights {
		w := 1.0
		if p.spec.leftWeight >= 0 {
			w *= p.cur.Vecs[p.spec.leftWeight].F64[row]
		}
		if p.spec.rightWeight >= 0 {
			w *= p.table.rows.Vecs[p.spec.rightWeight].F64[m]
		}
		out.Vecs[col].F64 = append(out.Vecs[col].F64, w)
	}
}

// HashJoinOp is the Volcano inner equi-join: it builds a hash table over the
// right input, then streams the left input against it in bounded chunks. An
// empty build side short-circuits: the probe side is never opened, so an
// empty inner relation costs O(1) instead of a full match-free probe scan
// (and charges no phantom shuffle bytes for it). The exception is a run that
// materializes sampler byproducts: the probe side is then still drained —
// emitting nothing — so a materializing SamplerOp below the join produces
// the synopsis the tuner asked for.
type HashJoinOp struct {
	Left, Right Operator

	spec *joinSpec
	ctx  *Context

	table     *joinTable
	prober    joinProber
	probeOpen bool
}

// NewHashJoinOp resolves join key columns by name and prepares the operator.
func NewHashJoinOp(left, right Operator, leftKeys, rightKeys []string, ctx *Context) (*HashJoinOp, error) {
	spec, err := resolveJoinSpec(left.Schema(), right.Schema(), leftKeys, rightKeys)
	if err != nil {
		return nil, err
	}
	return &HashJoinOp{Left: left, Right: right, spec: spec, ctx: ctx}, nil
}

// Open implements Operator: it drains and hashes the right (build) input,
// opening the left (probe) input only when the build side is non-empty or a
// sampler byproduct may be pending below it.
func (j *HashJoinOp) Open() error {
	j.probeOpen = false
	if err := j.Right.Open(); err != nil {
		return err
	}
	rows, err := drainBuild(j.Right, j.ctx)
	if err != nil {
		return err
	}
	j.table = buildJoinTable(j.spec, rows, 1)
	if j.table.empty() && len(j.ctx.MaterializeSamples) == 0 {
		return nil
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.probeOpen = true
	j.prober = joinProber{spec: j.spec, table: j.table, pool: j.ctx.Pool}
	return nil
}

// Next implements Operator.
func (j *HashJoinOp) Next() (*storage.Batch, error) {
	if j.table.empty() {
		if !j.probeOpen {
			return nil, nil
		}
		// Materializing run over an empty build: drain the probe side so
		// sampler byproducts below the join are still built, emit nothing.
		for {
			b, err := j.Left.Next()
			if err != nil || b == nil {
				return nil, err
			}
			j.ctx.Stats.ShuffleBytes += batchBytes(b)
			j.ctx.Pool.Release(b)
		}
	}
	out, err := j.prober.next(func() (*storage.Batch, error) {
		b, err := j.Left.Next()
		if b != nil {
			j.ctx.Stats.ShuffleBytes += batchBytes(b)
		}
		return b, err
	})
	if out != nil {
		j.ctx.Stats.CPUTuples += int64(out.Len())
	}
	return out, err
}

// Close implements Operator.
func (j *HashJoinOp) Close() error {
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Schema implements Operator.
func (j *HashJoinOp) Schema() storage.Schema { return j.spec.schema }

func batchBytes(b *storage.Batch) int64 {
	var n int64
	for _, v := range b.Vecs {
		n += v.Bytes()
	}
	return n
}
