package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// joinBatchRows caps the number of joined rows emitted per output batch. A
// high-fanout join (skewed key) would otherwise accumulate every match for a
// probe batch into one unbounded output batch; the prober instead carries its
// probe position across Next calls and emits fixed-size chunks.
const joinBatchRows = storage.BatchSize

// joinSpec is the resolved column binding of one equi-join: key and payload
// column positions on both sides plus the output schema. It is computed once
// and shared by every prober of the join (one per morsel in the parallel
// executor, exactly one in the Volcano operator).
//
// If either input carries a sampler weight column, the join merges them into
// a single trailing weight column whose value is the product of the sides'
// weights (joining two independent samples multiplies inclusion
// probabilities).
type joinSpec struct {
	leftKeys  []int
	rightKeys []int

	leftWeight  int // index of weight col in left schema, -1 if none
	rightWeight int
	leftCols    []int // left columns copied to output (weight excluded)
	rightCols   []int
	outWeights  bool

	// fixedKey marks a single-column join whose key type is identical and
	// fixed-width (int64/float64/bool) on both sides: the table is then
	// keyed by the fixedWord encoding instead of byte strings, removing the
	// per-probe-row key build and string hashing. The type-identity
	// requirement keeps the match relation exactly groupKey's: word
	// encodings of different types can collide (uint64(n) vs Float64bits),
	// but the byte keys carry a type tag and never match across types.
	fixedKey bool

	schema storage.Schema
}

// resolveJoinSpec binds join key columns by name against both input schemas.
func resolveJoinSpec(ls, rs storage.Schema, leftKeys, rightKeys []string) (*joinSpec, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash join needs equal, non-empty key lists")
	}
	j := &joinSpec{}
	for _, k := range leftKeys {
		i := ls.Index(k)
		if i < 0 {
			return nil, fmt.Errorf("exec: hash join: left key %q not in %v", k, ls.Names())
		}
		j.leftKeys = append(j.leftKeys, i)
	}
	for _, k := range rightKeys {
		i := rs.Index(k)
		if i < 0 {
			return nil, fmt.Errorf("exec: hash join: right key %q not in %v", k, rs.Names())
		}
		j.rightKeys = append(j.rightKeys, i)
	}
	if len(j.leftKeys) == 1 {
		lt, rt := ls[j.leftKeys[0]].Typ, rs[j.rightKeys[0]].Typ
		j.fixedKey = lt == rt && lt != storage.String
	}
	j.leftWeight = ls.Index(synopses.WeightCol)
	j.rightWeight = rs.Index(synopses.WeightCol)
	j.outWeights = j.leftWeight >= 0 || j.rightWeight >= 0
	for i, c := range ls {
		if i == j.leftWeight {
			continue
		}
		j.schema = append(j.schema, c)
		j.leftCols = append(j.leftCols, i)
	}
	for i, c := range rs {
		if i == j.rightWeight {
			continue
		}
		j.schema = append(j.schema, c)
		j.rightCols = append(j.rightCols, i)
	}
	if j.outWeights {
		j.schema = append(j.schema, storage.Col{Name: synopses.WeightCol, Typ: storage.Float64})
	}
	return j, nil
}

// joinTable is the materialized, hashed build side of one join:
// hash-partitioned sub-tables mapping key bytes to build row indices. Once
// built it is immutable and safe for concurrent probing.
//
// Partitioning is observation-invariant: each key's match list always holds
// every build row with that key in ascending row order, regardless of the
// partition count — only which sub-table owns the key changes. Probe results
// are therefore byte-identical for any partition/worker count.
type joinTable struct {
	spec  *joinSpec
	rows  *storage.Batch // all build rows concatenated, in input order
	parts []map[string][]int32

	// The spec.fixedKey fast path replaces parts with a CSR layout keyed by
	// the single key column's fixedWord encoding: fixedIdx maps a word to a
	// dense key id, and key k's match list is fixedRows[fixedOffs[k]:
	// fixedOffs[k+1]] — one index array and one offset array total, no
	// per-key slice allocations. Match lists are identical to the byte-keyed
	// tables' (the word encoding is injective within the key type); only the
	// build/probe hashing cost changes.
	fixedIdx  map[uint64]int32
	fixedOffs []int32
	fixedRows []int32
}

func (t *joinTable) empty() bool { return t == nil || t.rows == nil || t.rows.Len() == 0 }

func (t *joinTable) lookup(key []byte) []int32 {
	if len(t.parts) == 1 {
		return t.parts[0][string(key)]
	}
	return t.parts[fnv1a(key)%uint64(len(t.parts))][string(key)]
}

func (t *joinTable) lookupWord(w uint64) []int32 {
	k, ok := t.fixedIdx[w]
	if !ok {
		return nil
	}
	return t.fixedRows[t.fixedOffs[k]:t.fixedOffs[k+1]]
}

// fnv1a hashes key bytes to a partition; any stable byte hash works, the
// choice only affects load balance, never results.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// drainBuild materializes an operator's full output in input order, charging
// shuffle bytes (the build side of a hash join is exchanged in the simulated
// cluster). Consumed batches are released: the joinTable keeps only the
// copied concatenation.
func drainBuild(op Operator, ctx *Context) (*storage.Batch, error) {
	// Collect first, copy second: the concatenation is then allocated at its
	// final size in one shot (row-at-a-time appends from zero capacity paid a
	// realloc cascade per query) and copied column-major.
	var bufs []*storage.Batch
	total := 0
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		ctx.Stats.ShuffleBytes += batchBytes(b)
		bufs = append(bufs, b)
		total += b.Rows()
	}
	rows := ctx.Pool.GetBatch(op.Schema(), total)
	for _, b := range bufs {
		for c, v := range rows.Vecs {
			if b.Sel != nil {
				v.AppendGather(b.Vecs[c], b.Sel)
			} else {
				v.Extend(b.Vecs[c])
			}
		}
		ctx.Pool.Release(b)
	}
	return rows, nil
}

// buildJoinTable hashes the materialized build rows into `workers`
// hash-partitioned sub-tables using up to `workers` goroutines. Phase 1
// splits the rows into fixed-size chunks claimed from an atomic dispenser and
// computes each row's key bytes and partition; phase 2 builds each
// partition's map by walking the rows in index order, so every match list is
// ascending no matter which worker built it.
func buildJoinTable(spec *joinSpec, rows *storage.Batch, workers int) *joinTable {
	t := &joinTable{spec: spec, rows: rows}
	n := rows.Len()
	if n == 0 {
		return t
	}
	if workers < 1 {
		workers = 1
	}
	if spec.fixedKey {
		buildFixedJoinTable(t, rows)
		return t
	}
	if workers == 1 {
		m := make(map[string][]int32, 1024)
		var key []byte
		for i := 0; i < n; i++ {
			key = groupKey(key, rows.Vecs, spec.rightKeys, i)
			m[string(key)] = append(m[string(key)], int32(i))
		}
		t.parts = []map[string][]int32{m}
		return t
	}

	keys := make([]string, n)
	nParts := uint64(workers)
	nChunks := (n + DefaultMorselRows - 1) / DefaultMorselRows
	// chunkParts[c][p] lists chunk c's row indices owned by partition p
	// (int32: build sides are bounded far below 2^31 rows by memory), so
	// phase 2 is O(n) total instead of every partition rescanning all rows.
	chunkParts := make([][][]int32, nChunks)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var key []byte
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * DefaultMorselRows
				hi := lo + DefaultMorselRows
				if hi > n {
					hi = n
				}
				local := make([][]int32, nParts)
				for i := lo; i < hi; i++ {
					key = groupKey(key, rows.Vecs, spec.rightKeys, i)
					keys[i] = string(key)
					p := fnv1a(key) % nParts
					local[p] = append(local[p], int32(i))
				}
				chunkParts[c] = local
			}
		}()
	}
	wg.Wait()

	// Phase 2: partition p concatenates its index lists in chunk order, so
	// every match list is ascending regardless of which worker built it.
	t.parts = make([]map[string][]int32, workers)
	var pnext int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(atomic.AddInt64(&pnext, 1)) - 1
				if p >= workers {
					return
				}
				m := make(map[string][]int32, n/workers+1)
				for c := 0; c < nChunks; c++ {
					for _, i := range chunkParts[c][p] {
						m[keys[i]] = append(m[keys[i]], i)
					}
				}
				t.parts[p] = m
			}
		}()
	}
	wg.Wait()
	return t
}

// buildFixedJoinTable is buildJoinTable's spec.fixedKey variant: a CSR build
// keyed by the single key column's fixedWord instead of groupKey bytes.
// fixedWord mirrors groupKey's per-type encoding (two's complement,
// Float64bits, 0/1), so word equality is exactly byte-key equality within
// the type and every match list comes out identical — ascending row order
// falls out of the forward fill pass. The build is three O(n) integer passes
// with a single map and three flat arrays; it is not worth parallelizing, so
// the workers argument of the byte-keyed build has no analogue here.
func buildFixedJoinTable(t *joinTable, rows *storage.Batch) {
	n := rows.Len()
	kv := rows.Vecs[t.spec.rightKeys[0]]

	// Pass 1: assign dense key ids in first-appearance order.
	idx := make(map[uint64]int32, 1024)
	keyOf := make([]int32, n)
	nk := int32(0)
	for i := 0; i < n; i++ {
		w := fixedWord(kv, i)
		k, ok := idx[w]
		if !ok {
			k = nk
			nk++
			idx[w] = k
		}
		keyOf[i] = k
	}

	// Pass 2: per-key counts -> exclusive prefix offsets.
	offs := make([]int32, nk+1)
	for _, k := range keyOf {
		offs[k+1]++
	}
	for k := int32(0); k < nk; k++ {
		offs[k+1] += offs[k]
	}

	// Pass 3: fill each key's region in ascending row order, using a cursor
	// copy of the offsets.
	cur := make([]int32, nk)
	copy(cur, offs[:nk])
	rowIdx := make([]int32, n)
	for i := 0; i < n; i++ {
		k := keyOf[i]
		rowIdx[cur[k]] = int32(i)
		cur[k]++
	}

	t.fixedIdx, t.fixedOffs, t.fixedRows = idx, offs, rowIdx
}

// joinProber streams probe batches against a built joinTable, emitting joined
// output in chunks of at most joinBatchRows rows. It carries the probe
// position (current batch, row, and match offset) across calls, so a skewed
// key with huge fanout never inflates a single output batch.
type joinProber struct {
	spec  *joinSpec
	table *joinTable
	pool  *storage.VecPool

	cur      *storage.Batch
	curRow   int
	matches  []int32
	matchPos int
	pending  bool
	key      []byte

	// lrows/mrows accumulate the (probe row, build row) pairs of the output
	// chunk under construction; flush gathers them into the output batch
	// column-major, one type dispatch per column instead of one per value.
	// lrows indices are relative to cur, so the pairs are flushed before cur
	// is released.
	lrows []int32
	mrows []int32
}

// next pulls probe batches via fetch until it has filled one output chunk (or
// the probe side is exhausted). It returns nil at end of stream and never
// returns an empty batch.
func (p *joinProber) next(fetch func() (*storage.Batch, error)) (*storage.Batch, error) {
	var out *storage.Batch
	for {
		if p.cur == nil {
			b, err := fetch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if out != nil && out.Len() > 0 {
					return out, nil
				}
				return nil, nil
			}
			if b.Len() == 0 {
				continue
			}
			p.cur, p.curRow, p.pending = b, 0, false
		}
		for p.curRow < p.cur.Len() {
			if !p.pending {
				if p.spec.fixedKey {
					p.matches = p.table.lookupWord(fixedWord(p.cur.Vecs[p.spec.leftKeys[0]], p.curRow))
				} else {
					p.key = groupKey(p.key, p.cur.Vecs, p.spec.leftKeys, p.curRow)
					p.matches = p.table.lookup(p.key)
				}
				p.matchPos = 0
				p.pending = true
			}
			if p.matchPos < len(p.matches) {
				if out == nil {
					out = p.pool.GetBatch(p.spec.schema, joinBatchRows)
				}
				room := joinBatchRows - out.Len() - len(p.lrows)
				take := len(p.matches) - p.matchPos
				if take > room {
					take = room
				}
				row := int32(p.curRow)
				for _, m := range p.matches[p.matchPos : p.matchPos+take] {
					p.lrows = append(p.lrows, row)
					p.mrows = append(p.mrows, m)
				}
				p.matchPos += take
				if p.matchPos < len(p.matches) {
					// Chunk filled mid-fanout: emit it and resume this row's
					// remaining matches on the next call.
					p.flush(out)
					return out, nil
				}
			}
			p.pending = false
			p.curRow++
			if out != nil && out.Len()+len(p.lrows) >= joinBatchRows {
				p.flush(out)
				return out, nil
			}
		}
		// The probe batch is fully consumed; gather any pairs still
		// referencing it before its memory is recycled.
		p.flush(out)
		p.pool.Release(p.cur)
		p.cur = nil
	}
}

// flush gathers the accumulated pairs into out column-major. Pair order is
// exactly the row-at-a-time emit order, so output batches are byte-identical
// to the pre-gather prober's.
func (p *joinProber) flush(out *storage.Batch) {
	if len(p.lrows) == 0 {
		return
	}
	col := 0
	for _, lc := range p.spec.leftCols {
		out.Vecs[col].AppendGather(p.cur.Vecs[lc], p.lrows)
		col++
	}
	for _, rc := range p.spec.rightCols {
		out.Vecs[col].AppendGather(p.table.rows.Vecs[rc], p.mrows)
		col++
	}
	if p.spec.outWeights {
		dst := out.Vecs[col].F64
		lw, rw := p.spec.leftWeight, p.spec.rightWeight
		for i, row := range p.lrows {
			w := 1.0
			if lw >= 0 {
				w *= p.cur.Vecs[lw].F64[row]
			}
			if rw >= 0 {
				w *= p.table.rows.Vecs[rw].F64[p.mrows[i]]
			}
			dst = append(dst, w)
		}
		out.Vecs[col].F64 = dst
	}
	p.lrows, p.mrows = p.lrows[:0], p.mrows[:0]
}

// HashJoinOp is the Volcano inner equi-join: it builds a hash table over the
// right input, then streams the left input against it in bounded chunks. An
// empty build side short-circuits: the probe side is never opened, so an
// empty inner relation costs O(1) instead of a full match-free probe scan
// (and charges no phantom shuffle bytes for it). The exception is a run that
// materializes sampler byproducts: the probe side is then still drained —
// emitting nothing — so a materializing SamplerOp below the join produces
// the synopsis the tuner asked for.
type HashJoinOp struct {
	Left, Right Operator

	spec *joinSpec
	ctx  *Context

	table     *joinTable
	prober    joinProber
	probeOpen bool
}

// NewHashJoinOp resolves join key columns by name and prepares the operator.
func NewHashJoinOp(left, right Operator, leftKeys, rightKeys []string, ctx *Context) (*HashJoinOp, error) {
	spec, err := resolveJoinSpec(left.Schema(), right.Schema(), leftKeys, rightKeys)
	if err != nil {
		return nil, err
	}
	return &HashJoinOp{Left: left, Right: right, spec: spec, ctx: ctx}, nil
}

// Open implements Operator: it drains and hashes the right (build) input,
// opening the left (probe) input only when the build side is non-empty or a
// sampler byproduct may be pending below it.
func (j *HashJoinOp) Open() error {
	j.probeOpen = false
	if err := j.Right.Open(); err != nil {
		return err
	}
	rows, err := drainBuild(j.Right, j.ctx)
	if err != nil {
		return err
	}
	j.table = buildJoinTable(j.spec, rows, 1)
	if j.table.empty() && len(j.ctx.MaterializeSamples) == 0 {
		return nil
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.probeOpen = true
	j.prober = joinProber{spec: j.spec, table: j.table, pool: j.ctx.Pool}
	return nil
}

// Next implements Operator.
func (j *HashJoinOp) Next() (*storage.Batch, error) {
	if j.table.empty() {
		if !j.probeOpen {
			return nil, nil
		}
		// Materializing run over an empty build: drain the probe side so
		// sampler byproducts below the join are still built, emit nothing.
		for {
			b, err := j.Left.Next()
			if err != nil || b == nil {
				return nil, err
			}
			j.ctx.Stats.ShuffleBytes += batchBytes(b)
			j.ctx.Pool.Release(b)
		}
	}
	out, err := j.prober.next(func() (*storage.Batch, error) {
		b, err := j.Left.Next()
		if b != nil {
			// The prober walks rows by physical index; resolve any selection
			// first (the dense batch's bytes equal the selection's SelBytes,
			// so the shuffle charge is order-independent).
			b = b.Materialize(j.ctx.Pool)
			j.ctx.Stats.ShuffleBytes += batchBytes(b)
		}
		return b, err
	})
	if out != nil {
		j.ctx.Stats.CPUTuples += int64(out.Len())
	}
	return out, err
}

// Close implements Operator. The build-side concatenation is pool-owned
// (drainBuild); releasing it here recycles the largest per-query allocation
// of the join. Emitted output only ever holds copies, never references into
// it.
func (j *HashJoinOp) Close() error {
	if j.table != nil && j.table.rows != nil {
		j.ctx.Pool.Release(j.table.rows)
		j.table.rows = nil
	}
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Schema implements Operator.
func (j *HashJoinOp) Schema() storage.Schema { return j.spec.schema }

// batchBytes is the live-row payload size of a batch: selection-carrying
// batches charge exactly what their gathered equivalent would, so shuffle
// accounting is identical whether a filter attached a selection or gathered.
func batchBytes(b *storage.Batch) int64 {
	var n int64
	if b.Sel != nil {
		for _, v := range b.Vecs {
			n += v.SelBytes(b.Sel)
		}
		return n
	}
	for _, v := range b.Vecs {
		n += v.Bytes()
	}
	return n
}
