package exec

import (
	"fmt"
	"math"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// aggSpec is the resolved column binding of one aggregation: group and
// aggregate column positions in the input schema plus the output schema. It
// is computed once and shared by every partial hash table of the aggregation
// (one per morsel in the parallel executor, exactly one in the Volcano
// operator).
type aggSpec struct {
	groupBy []string
	aggs    []plan.AggSpec

	groupIdx  []int
	aggIdx    []int // column index per agg, -1 for COUNT(*)
	weightIdx int
	schema    storage.Schema
}

// resolveAggSpec binds group/aggregate columns against the input schema.
func resolveAggSpec(in storage.Schema, groupBy []string, aggs []plan.AggSpec) (*aggSpec, error) {
	s := &aggSpec{groupBy: groupBy, aggs: aggs}
	for _, g := range groupBy {
		i := in.Index(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: aggregate: group column %q not in %v", g, in.Names())
		}
		s.groupIdx = append(s.groupIdx, i)
		s.schema = append(s.schema, in[i])
	}
	for _, ag := range aggs {
		idx := -1
		if ag.Col != "" {
			idx = in.Index(ag.Col)
			if idx < 0 {
				return nil, fmt.Errorf("exec: aggregate: column %q not in %v", ag.Col, in.Names())
			}
			if !in[idx].Typ.Numeric() && ag.Kind != stats.Count {
				return nil, fmt.Errorf("exec: %s over non-numeric column %q", ag.Kind, ag.Col)
			}
		} else if ag.Kind != stats.Count {
			return nil, fmt.Errorf("exec: %s requires a column", ag.Kind)
		}
		s.aggIdx = append(s.aggIdx, idx)
		s.schema = append(s.schema, storage.Col{Name: ag.DefaultAlias(), Typ: storage.Float64})
	}
	s.weightIdx = in.Index(synopses.WeightCol)
	return s, nil
}

type aggGroup struct {
	keyVals []storage.Value
	accs    []*stats.GroupAccumulator
}

// aggTable is one hash table of group accumulators — a complete aggregation
// state that can observe batches and merge with tables built over disjoint
// input partitions.
//
// The canonical state is groups, keyed by the deterministic groupKey byte
// encoding — merge and emit only ever see that map. observe, the hot loop,
// avoids building a byte key per row whenever every group column is
// fixed-width (int64/float64/bool, at most two columns): rows resolve through
// fixed1/fixed2, word-keyed dictionaries caching the canonical group pointer,
// and only a dictionary miss pays for the byte key. The word encodings reuse
// groupKey's value identity (float keys by IEEE bits, so -0.0 and every NaN
// payload are distinct groups on both paths).
type aggTable struct {
	spec   *aggSpec
	groups map[string]*aggGroup
	key    []byte // scratch buffer

	fixed1    map[uint64]*aggGroup    // one fixed-width group column
	fixed2    map[[2]uint64]*aggGroup // two fixed-width group columns
	rowGroups []*aggGroup             // per-batch scratch: each live row's group
}

func newAggTable(spec *aggSpec) *aggTable {
	t := &aggTable{spec: spec, groups: make(map[string]*aggGroup, 64)}
	// spec.schema leads with the group columns, so schema[i] is the type of
	// group column i. String keys are variable-width and stay on the byte-key
	// path.
	fixed := len(spec.groupIdx) >= 1 && len(spec.groupIdx) <= 2
	for i := range spec.groupIdx {
		if spec.schema[i].Typ == storage.String {
			fixed = false
		}
	}
	if fixed {
		if len(spec.groupIdx) == 1 {
			t.fixed1 = make(map[uint64]*aggGroup, 64)
		} else {
			t.fixed2 = make(map[[2]uint64]*aggGroup, 64)
		}
	}
	return t
}

func (t *aggTable) newGroup(b *storage.Batch, row int) *aggGroup {
	g := &aggGroup{accs: make([]*stats.GroupAccumulator, len(t.spec.aggs))}
	for k, ag := range t.spec.aggs {
		g.accs[k] = stats.NewGroupAccumulator(ag.Kind)
	}
	if b != nil {
		for _, gi := range t.spec.groupIdx {
			g.keyVals = append(g.keyVals, b.Vecs[gi].Get(row))
		}
	}
	return g
}

// observe folds one batch — honoring its selection vector — into the table.
//
// The loop is two-pass and aggregate-major: pass one resolves every live
// row's group pointer (hot path: fixed-width word dictionaries; fallback:
// per-row byte keys), pass two folds each aggregate column in a tight loop
// with the weight-column and aggregate-column dispatch hoisted out of the row
// loop. Each GroupAccumulator still executes Observe(y, w) on exactly the
// same (y, w) sequence as the historical row-major interpreted loop —
// accumulators are per (group, aggregate) and rows arrive in row order — so
// the accumulated floating-point state is bit-identical.
func (t *aggTable) observe(b *storage.Batch) {
	if b.Rows() == 0 {
		return
	}
	sel := b.Sel
	var wcol []float64
	if t.spec.weightIdx >= 0 {
		wcol = b.Vecs[t.spec.weightIdx].F64
	}

	if len(t.spec.groupIdx) == 0 {
		// Ungrouped fast path: one group, each aggregate folds its raw
		// column slice directly.
		g := t.singleGroup()
		for k := range t.spec.aggs {
			observeSingle(g.accs[k], b, sel, t.spec.aggIdx[k], wcol)
		}
		return
	}

	gs := t.resolveGroups(b, sel)
	for k := range t.spec.aggs {
		observeGrouped(gs, k, b, sel, t.spec.aggIdx[k], wcol)
	}
}

// singleGroup returns the table's sole group (no GROUP BY), creating it on
// first use with the same empty key the byte-key path would produce.
func (t *aggTable) singleGroup() *aggGroup {
	g, ok := t.groups[""]
	if !ok {
		g = t.newGroup(nil, 0)
		t.groups[""] = g
	}
	return g
}

// canonicalGroup resolves row i's group through the canonical byte-key map,
// creating the group on first encounter.
func (t *aggTable) canonicalGroup(b *storage.Batch, i int) *aggGroup {
	t.key = groupKey(t.key, b.Vecs, t.spec.groupIdx, i)
	g, ok := t.groups[string(t.key)]
	if !ok {
		g = t.newGroup(b, i)
		t.groups[string(t.key)] = g
	}
	return g
}

// fixedWord encodes row i of a fixed-width group column as one word, with the
// same value identity as groupKey's byte encoding.
func fixedWord(v *storage.Vector, i int) uint64 {
	switch v.Typ {
	case storage.Int64:
		return uint64(v.I64[i])
	case storage.Float64:
		return math.Float64bits(v.F64[i])
	default: // Bool
		if v.B[i] {
			return 1
		}
		return 0
	}
}

// resolveGroups maps every live row to its group pointer (returned slice is
// the reused rowGroups scratch, indexed by live-row position). A run of equal
// keys — common on clustered input — resolves once.
func (t *aggTable) resolveGroups(b *storage.Batch, sel []int32) []*aggGroup {
	gs := t.rowGroups[:0]
	switch {
	case t.fixed1 != nil:
		v := b.Vecs[t.spec.groupIdx[0]]
		var lastW uint64
		var lastG *aggGroup
		resolve := func(i int) {
			w := fixedWord(v, i)
			if lastG == nil || w != lastW {
				g, ok := t.fixed1[w]
				if !ok {
					g = t.canonicalGroup(b, i)
					t.fixed1[w] = g
				}
				lastW, lastG = w, g
			}
			gs = append(gs, lastG)
		}
		if sel == nil {
			n := b.Len()
			for i := 0; i < n; i++ {
				resolve(i)
			}
		} else {
			for _, i := range sel {
				resolve(int(i))
			}
		}
	case t.fixed2 != nil:
		v0 := b.Vecs[t.spec.groupIdx[0]]
		v1 := b.Vecs[t.spec.groupIdx[1]]
		var lastW [2]uint64
		var lastG *aggGroup
		resolve := func(i int) {
			w := [2]uint64{fixedWord(v0, i), fixedWord(v1, i)}
			if lastG == nil || w != lastW {
				g, ok := t.fixed2[w]
				if !ok {
					g = t.canonicalGroup(b, i)
					t.fixed2[w] = g
				}
				lastW, lastG = w, g
			}
			gs = append(gs, lastG)
		}
		if sel == nil {
			n := b.Len()
			for i := 0; i < n; i++ {
				resolve(i)
			}
		} else {
			for _, i := range sel {
				resolve(int(i))
			}
		}
	default:
		// Variable-width keys (string group columns or >2 columns): the
		// canonical byte-key per row, as the interpreted loop always did.
		if sel == nil {
			n := b.Len()
			for i := 0; i < n; i++ {
				gs = append(gs, t.canonicalGroup(b, i))
			}
		} else {
			for _, i := range sel {
				gs = append(gs, t.canonicalGroup(b, int(i)))
			}
		}
	}
	t.rowGroups = gs
	return gs
}

// observeSingle folds one aggregate column of the batch into a single
// accumulator — the ungrouped fast path. All dispatch (COUNT(*) vs column,
// column type, weighted vs not, selection vs dense) happens before the row
// loop; each loop body is Observe over raw slice reads. The non-numeric
// default keeps the interpreted path's Vector.Float behaviour (it panics on
// non-numeric columns, which resolveAggSpec rules out for everything but
// COUNT over a column — whose y values it faithfully reproduces... by
// panicking identically if ever reached with a string column).
func observeSingle(acc *stats.GroupAccumulator, b *storage.Batch, sel []int32, ci int, wcol []float64) {
	if ci < 0 { // COUNT(*): y = 1 per row
		switch {
		case wcol == nil && sel == nil:
			n := b.Len()
			for i := 0; i < n; i++ {
				acc.Observe(1, 1)
			}
		case wcol == nil:
			for range sel {
				acc.Observe(1, 1)
			}
		case sel == nil:
			for _, w := range wcol {
				acc.Observe(1, w)
			}
		default:
			for _, i := range sel {
				acc.Observe(1, wcol[i])
			}
		}
		return
	}
	v := b.Vecs[ci]
	switch v.Typ {
	case storage.Float64:
		col := v.F64
		switch {
		case wcol == nil && sel == nil:
			for _, y := range col {
				acc.Observe(y, 1)
			}
		case wcol == nil:
			for _, i := range sel {
				acc.Observe(col[i], 1)
			}
		case sel == nil:
			for i, y := range col {
				acc.Observe(y, wcol[i])
			}
		default:
			for _, i := range sel {
				acc.Observe(col[i], wcol[i])
			}
		}
	case storage.Int64:
		col := v.I64
		switch {
		case wcol == nil && sel == nil:
			for _, y := range col {
				acc.Observe(float64(y), 1)
			}
		case wcol == nil:
			for _, i := range sel {
				acc.Observe(float64(col[i]), 1)
			}
		case sel == nil:
			for i, y := range col {
				acc.Observe(float64(y), wcol[i])
			}
		default:
			for _, i := range sel {
				acc.Observe(float64(col[i]), wcol[i])
			}
		}
	default:
		if sel == nil {
			n := b.Len()
			for i := 0; i < n; i++ {
				w := 1.0
				if wcol != nil {
					w = wcol[i]
				}
				acc.Observe(v.Float(i), w)
			}
		} else {
			for _, i := range sel {
				w := 1.0
				if wcol != nil {
					w = wcol[i]
				}
				acc.Observe(v.Float(int(i)), w)
			}
		}
	}
}

// observeGrouped is observeSingle with per-row accumulators: gs holds each
// live row's group (live-row position aligned with sel), k selects the
// aggregate.
func observeGrouped(gs []*aggGroup, k int, b *storage.Batch, sel []int32, ci int, wcol []float64) {
	if ci < 0 { // COUNT(*): y = 1 per row
		switch {
		case wcol == nil && sel == nil:
			for _, g := range gs {
				g.accs[k].Observe(1, 1)
			}
		case wcol == nil:
			for _, g := range gs {
				g.accs[k].Observe(1, 1)
			}
		case sel == nil:
			for j, g := range gs {
				g.accs[k].Observe(1, wcol[j])
			}
		default:
			for j, i := range sel {
				gs[j].accs[k].Observe(1, wcol[i])
			}
		}
		return
	}
	v := b.Vecs[ci]
	switch v.Typ {
	case storage.Float64:
		col := v.F64
		switch {
		case wcol == nil && sel == nil:
			for j, g := range gs {
				g.accs[k].Observe(col[j], 1)
			}
		case wcol == nil:
			for j, i := range sel {
				gs[j].accs[k].Observe(col[i], 1)
			}
		case sel == nil:
			for j, g := range gs {
				g.accs[k].Observe(col[j], wcol[j])
			}
		default:
			for j, i := range sel {
				gs[j].accs[k].Observe(col[i], wcol[i])
			}
		}
	case storage.Int64:
		col := v.I64
		switch {
		case wcol == nil && sel == nil:
			for j, g := range gs {
				g.accs[k].Observe(float64(col[j]), 1)
			}
		case wcol == nil:
			for j, i := range sel {
				gs[j].accs[k].Observe(float64(col[i]), 1)
			}
		case sel == nil:
			for j, g := range gs {
				g.accs[k].Observe(float64(col[j]), wcol[j])
			}
		default:
			for j, i := range sel {
				gs[j].accs[k].Observe(float64(col[i]), wcol[i])
			}
		}
	default:
		if sel == nil {
			for j, g := range gs {
				w := 1.0
				if wcol != nil {
					w = wcol[j]
				}
				g.accs[k].Observe(v.Float(j), w)
			}
		} else {
			for j, i := range sel {
				w := 1.0
				if wcol != nil {
					w = wcol[i]
				}
				gs[j].accs[k].Observe(v.Float(int(i)), w)
			}
		}
	}
}

// merge folds o into t. Accumulator merging sums floating-point state, so
// callers needing bit-reproducible output must merge partial tables in a
// deterministic order (the morsel executor merges in morsel index order).
func (t *aggTable) merge(o *aggTable) {
	for key, og := range o.groups {
		g, ok := t.groups[key]
		if !ok {
			t.groups[key] = og
			continue
		}
		for k := range g.accs {
			g.accs[k].Merge(og.accs[k])
		}
	}
}

// emit renders the table as one batch with groups in deterministic (sorted)
// order, plus the row-aligned confidence intervals. SQL semantics: a global
// aggregate (no GROUP BY) over empty input still yields one row (COUNT 0,
// zero-valued aggregates).
func (t *aggTable) emit(confidence float64) (*storage.Batch, [][]stats.Interval) {
	if len(t.groups) == 0 && len(t.spec.groupBy) == 0 {
		t.groups[""] = t.newGroup(nil, 0)
	}

	all := make([]*aggGroup, 0, len(t.groups))
	//taster:sorted emission order is fixed by sortRowsByValues below — group keys are unique, so the value sort is total and launders map order
	for _, g := range t.groups {
		all = append(all, g)
	}
	keys := make([][]storage.Value, len(all))
	for i, g := range all {
		keys[i] = g.keyVals
	}
	order := sortRowsByValues(keys)

	out := storage.NewBatch(t.spec.schema, len(all))
	intervals := make([][]stats.Interval, 0, len(all))
	for _, oi := range order {
		g := all[oi]
		for c, v := range g.keyVals {
			out.Vecs[c].Append(v)
		}
		rowIv := make([]stats.Interval, len(t.spec.aggs))
		for k, acc := range g.accs {
			iv := acc.Interval(confidence)
			rowIv[k] = iv
			out.Vecs[len(t.spec.groupIdx)+k].F64 = append(out.Vecs[len(t.spec.groupIdx)+k].F64, iv.Estimate)
		}
		intervals = append(intervals, rowIv)
	}
	return out, intervals
}

// HashAggOp groups rows and computes aggregates. When the input carries the
// sampler weight column it transparently switches to Horvitz-Thompson
// estimation with the single-pass per-group variance tracking of paper
// §IV-B; on unweighted input the results are exact (zero-width intervals).
type HashAggOp struct {
	Child   Operator
	GroupBy []string
	Aggs    []plan.AggSpec

	ctx  *Context
	spec *aggSpec

	table     *aggTable
	emitted   bool
	intervals [][]stats.Interval
}

// NewHashAggOp resolves columns and prepares the aggregation.
func NewHashAggOp(child Operator, groupBy []string, aggs []plan.AggSpec, ctx *Context) (*HashAggOp, error) {
	spec, err := resolveAggSpec(child.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &HashAggOp{Child: child, GroupBy: groupBy, Aggs: aggs, ctx: ctx, spec: spec}, nil
}

// Open implements Operator.
func (a *HashAggOp) Open() error {
	a.table = newAggTable(a.spec)
	a.emitted = false
	a.intervals = nil
	return a.Child.Open()
}

// Next implements Operator: drains the child, then emits one batch with all
// groups in deterministic (sorted) order.
func (a *HashAggOp) Next() (*storage.Batch, error) {
	if a.emitted {
		return nil, nil
	}
	for {
		b, err := a.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		a.ctx.Stats.ShuffleBytes += batchBytes(b)
		a.ctx.Stats.CPUTuples += int64(b.Rows())
		a.table.observe(b)
		a.ctx.Pool.Release(b)
	}
	a.emitted = true

	out, intervals := a.table.emit(a.ctx.Confidence)
	a.intervals = intervals
	a.ctx.Stats.OutputRows += int64(out.Len())
	return out, nil
}

// Close implements Operator.
func (a *HashAggOp) Close() error { return a.Child.Close() }

// Schema implements Operator.
func (a *HashAggOp) Schema() storage.Schema { return a.spec.schema }

// Intervals implements IntervalReporter.
func (a *HashAggOp) Intervals() [][]stats.Interval { return a.intervals }
