package exec

import (
	"fmt"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// HashAggOp groups rows and computes aggregates. When the input carries the
// sampler weight column it transparently switches to Horvitz-Thompson
// estimation with the single-pass per-group variance tracking of paper
// §IV-B; on unweighted input the results are exact (zero-width intervals).
type HashAggOp struct {
	Child   Operator
	GroupBy []string
	Aggs    []plan.AggSpec

	ctx    *Context
	schema storage.Schema

	groupIdx  []int
	aggIdx    []int // column index per agg, -1 for COUNT(*)
	weightIdx int

	groups    map[string]*aggGroup
	emitted   bool
	intervals [][]stats.Interval
}

type aggGroup struct {
	keyVals []storage.Value
	accs    []*stats.GroupAccumulator
}

// NewHashAggOp resolves columns and prepares the aggregation.
func NewHashAggOp(child Operator, groupBy []string, aggs []plan.AggSpec, ctx *Context) (*HashAggOp, error) {
	a := &HashAggOp{Child: child, GroupBy: groupBy, Aggs: aggs, ctx: ctx}
	in := child.Schema()
	for _, g := range groupBy {
		i := in.Index(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: aggregate: group column %q not in %v", g, in.Names())
		}
		a.groupIdx = append(a.groupIdx, i)
		a.schema = append(a.schema, in[i])
	}
	for _, ag := range aggs {
		idx := -1
		if ag.Col != "" {
			idx = in.Index(ag.Col)
			if idx < 0 {
				return nil, fmt.Errorf("exec: aggregate: column %q not in %v", ag.Col, in.Names())
			}
			if !in[idx].Typ.Numeric() && ag.Kind != stats.Count {
				return nil, fmt.Errorf("exec: %s over non-numeric column %q", ag.Kind, ag.Col)
			}
		} else if ag.Kind != stats.Count {
			return nil, fmt.Errorf("exec: %s requires a column", ag.Kind)
		}
		a.aggIdx = append(a.aggIdx, idx)
		a.schema = append(a.schema, storage.Col{Name: ag.DefaultAlias(), Typ: storage.Float64})
	}
	a.weightIdx = in.Index(synopses.WeightCol)
	return a, nil
}

// Open implements Operator.
func (a *HashAggOp) Open() error {
	a.groups = make(map[string]*aggGroup, 256)
	a.emitted = false
	a.intervals = nil
	return a.Child.Open()
}

// Next implements Operator: drains the child, then emits one batch with all
// groups in deterministic (sorted) order.
func (a *HashAggOp) Next() (*storage.Batch, error) {
	if a.emitted {
		return nil, nil
	}
	var key []byte
	for {
		b, err := a.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		a.ctx.Stats.ShuffleBytes += batchBytes(b)
		n := b.Len()
		a.ctx.Stats.CPUTuples += int64(n)
		for i := 0; i < n; i++ {
			key = groupKey(key, b.Vecs, a.groupIdx, i)
			g, ok := a.groups[string(key)]
			if !ok {
				g = &aggGroup{accs: make([]*stats.GroupAccumulator, len(a.Aggs))}
				for k, ag := range a.Aggs {
					g.accs[k] = stats.NewGroupAccumulator(ag.Kind)
				}
				for _, gi := range a.groupIdx {
					g.keyVals = append(g.keyVals, b.Vecs[gi].Get(i))
				}
				a.groups[string(key)] = g
			}
			w := 1.0
			if a.weightIdx >= 0 {
				w = b.Vecs[a.weightIdx].F64[i]
			}
			for k := range a.Aggs {
				y := 1.0
				if ci := a.aggIdx[k]; ci >= 0 {
					y = b.Vecs[ci].Float(i)
				}
				g.accs[k].Observe(y, w)
			}
		}
	}
	a.emitted = true

	// SQL semantics: a global aggregate (no GROUP BY) over empty input
	// still yields one row (COUNT 0, zero-valued aggregates).
	if len(a.groups) == 0 && len(a.GroupBy) == 0 {
		g := &aggGroup{accs: make([]*stats.GroupAccumulator, len(a.Aggs))}
		for k, ag := range a.Aggs {
			g.accs[k] = stats.NewGroupAccumulator(ag.Kind)
		}
		a.groups[""] = g
	}

	// Deterministic output: sort groups by key values.
	all := make([]*aggGroup, 0, len(a.groups))
	for _, g := range a.groups {
		all = append(all, g)
	}
	keys := make([][]storage.Value, len(all))
	for i, g := range all {
		keys[i] = g.keyVals
	}
	order := sortRowsByValues(keys)

	out := storage.NewBatch(a.schema, len(all))
	a.intervals = make([][]stats.Interval, 0, len(all))
	for _, oi := range order {
		g := all[oi]
		for c, v := range g.keyVals {
			out.Vecs[c].Append(v)
		}
		rowIv := make([]stats.Interval, len(a.Aggs))
		for k, acc := range g.accs {
			iv := acc.Interval(a.ctx.Confidence)
			rowIv[k] = iv
			out.Vecs[len(a.groupIdx)+k].F64 = append(out.Vecs[len(a.groupIdx)+k].F64, iv.Estimate)
		}
		a.intervals = append(a.intervals, rowIv)
	}
	a.ctx.Stats.OutputRows += int64(out.Len())
	return out, nil
}

// Close implements Operator.
func (a *HashAggOp) Close() error { return a.Child.Close() }

// Schema implements Operator.
func (a *HashAggOp) Schema() storage.Schema { return a.schema }

// Intervals implements IntervalReporter.
func (a *HashAggOp) Intervals() [][]stats.Interval { return a.intervals }
