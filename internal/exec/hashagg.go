package exec

import (
	"fmt"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// aggSpec is the resolved column binding of one aggregation: group and
// aggregate column positions in the input schema plus the output schema. It
// is computed once and shared by every partial hash table of the aggregation
// (one per morsel in the parallel executor, exactly one in the Volcano
// operator).
type aggSpec struct {
	groupBy []string
	aggs    []plan.AggSpec

	groupIdx  []int
	aggIdx    []int // column index per agg, -1 for COUNT(*)
	weightIdx int
	schema    storage.Schema
}

// resolveAggSpec binds group/aggregate columns against the input schema.
func resolveAggSpec(in storage.Schema, groupBy []string, aggs []plan.AggSpec) (*aggSpec, error) {
	s := &aggSpec{groupBy: groupBy, aggs: aggs}
	for _, g := range groupBy {
		i := in.Index(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: aggregate: group column %q not in %v", g, in.Names())
		}
		s.groupIdx = append(s.groupIdx, i)
		s.schema = append(s.schema, in[i])
	}
	for _, ag := range aggs {
		idx := -1
		if ag.Col != "" {
			idx = in.Index(ag.Col)
			if idx < 0 {
				return nil, fmt.Errorf("exec: aggregate: column %q not in %v", ag.Col, in.Names())
			}
			if !in[idx].Typ.Numeric() && ag.Kind != stats.Count {
				return nil, fmt.Errorf("exec: %s over non-numeric column %q", ag.Kind, ag.Col)
			}
		} else if ag.Kind != stats.Count {
			return nil, fmt.Errorf("exec: %s requires a column", ag.Kind)
		}
		s.aggIdx = append(s.aggIdx, idx)
		s.schema = append(s.schema, storage.Col{Name: ag.DefaultAlias(), Typ: storage.Float64})
	}
	s.weightIdx = in.Index(synopses.WeightCol)
	return s, nil
}

type aggGroup struct {
	keyVals []storage.Value
	accs    []*stats.GroupAccumulator
}

// aggTable is one hash table of group accumulators — a complete aggregation
// state that can observe batches and merge with tables built over disjoint
// input partitions.
type aggTable struct {
	spec   *aggSpec
	groups map[string]*aggGroup
	key    []byte // scratch buffer
}

func newAggTable(spec *aggSpec) *aggTable {
	return &aggTable{spec: spec, groups: make(map[string]*aggGroup, 64)}
}

func (t *aggTable) newGroup(b *storage.Batch, row int) *aggGroup {
	g := &aggGroup{accs: make([]*stats.GroupAccumulator, len(t.spec.aggs))}
	for k, ag := range t.spec.aggs {
		g.accs[k] = stats.NewGroupAccumulator(ag.Kind)
	}
	if b != nil {
		for _, gi := range t.spec.groupIdx {
			g.keyVals = append(g.keyVals, b.Vecs[gi].Get(row))
		}
	}
	return g
}

// observe folds one batch into the table.
func (t *aggTable) observe(b *storage.Batch) {
	n := b.Len()
	for i := 0; i < n; i++ {
		t.key = groupKey(t.key, b.Vecs, t.spec.groupIdx, i)
		g, ok := t.groups[string(t.key)]
		if !ok {
			g = t.newGroup(b, i)
			t.groups[string(t.key)] = g
		}
		w := 1.0
		if t.spec.weightIdx >= 0 {
			w = b.Vecs[t.spec.weightIdx].F64[i]
		}
		for k := range t.spec.aggs {
			y := 1.0
			if ci := t.spec.aggIdx[k]; ci >= 0 {
				y = b.Vecs[ci].Float(i)
			}
			g.accs[k].Observe(y, w)
		}
	}
}

// merge folds o into t. Accumulator merging sums floating-point state, so
// callers needing bit-reproducible output must merge partial tables in a
// deterministic order (the morsel executor merges in morsel index order).
func (t *aggTable) merge(o *aggTable) {
	for key, og := range o.groups {
		g, ok := t.groups[key]
		if !ok {
			t.groups[key] = og
			continue
		}
		for k := range g.accs {
			g.accs[k].Merge(og.accs[k])
		}
	}
}

// emit renders the table as one batch with groups in deterministic (sorted)
// order, plus the row-aligned confidence intervals. SQL semantics: a global
// aggregate (no GROUP BY) over empty input still yields one row (COUNT 0,
// zero-valued aggregates).
func (t *aggTable) emit(confidence float64) (*storage.Batch, [][]stats.Interval) {
	if len(t.groups) == 0 && len(t.spec.groupBy) == 0 {
		t.groups[""] = t.newGroup(nil, 0)
	}

	all := make([]*aggGroup, 0, len(t.groups))
	//taster:sorted emission order is fixed by sortRowsByValues below — group keys are unique, so the value sort is total and launders map order
	for _, g := range t.groups {
		all = append(all, g)
	}
	keys := make([][]storage.Value, len(all))
	for i, g := range all {
		keys[i] = g.keyVals
	}
	order := sortRowsByValues(keys)

	out := storage.NewBatch(t.spec.schema, len(all))
	intervals := make([][]stats.Interval, 0, len(all))
	for _, oi := range order {
		g := all[oi]
		for c, v := range g.keyVals {
			out.Vecs[c].Append(v)
		}
		rowIv := make([]stats.Interval, len(t.spec.aggs))
		for k, acc := range g.accs {
			iv := acc.Interval(confidence)
			rowIv[k] = iv
			out.Vecs[len(t.spec.groupIdx)+k].F64 = append(out.Vecs[len(t.spec.groupIdx)+k].F64, iv.Estimate)
		}
		intervals = append(intervals, rowIv)
	}
	return out, intervals
}

// HashAggOp groups rows and computes aggregates. When the input carries the
// sampler weight column it transparently switches to Horvitz-Thompson
// estimation with the single-pass per-group variance tracking of paper
// §IV-B; on unweighted input the results are exact (zero-width intervals).
type HashAggOp struct {
	Child   Operator
	GroupBy []string
	Aggs    []plan.AggSpec

	ctx  *Context
	spec *aggSpec

	table     *aggTable
	emitted   bool
	intervals [][]stats.Interval
}

// NewHashAggOp resolves columns and prepares the aggregation.
func NewHashAggOp(child Operator, groupBy []string, aggs []plan.AggSpec, ctx *Context) (*HashAggOp, error) {
	spec, err := resolveAggSpec(child.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &HashAggOp{Child: child, GroupBy: groupBy, Aggs: aggs, ctx: ctx, spec: spec}, nil
}

// Open implements Operator.
func (a *HashAggOp) Open() error {
	a.table = newAggTable(a.spec)
	a.emitted = false
	a.intervals = nil
	return a.Child.Open()
}

// Next implements Operator: drains the child, then emits one batch with all
// groups in deterministic (sorted) order.
func (a *HashAggOp) Next() (*storage.Batch, error) {
	if a.emitted {
		return nil, nil
	}
	for {
		b, err := a.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		a.ctx.Stats.ShuffleBytes += batchBytes(b)
		a.ctx.Stats.CPUTuples += int64(b.Len())
		a.table.observe(b)
		a.ctx.Pool.Release(b)
	}
	a.emitted = true

	out, intervals := a.table.emit(a.ctx.Confidence)
	a.intervals = intervals
	a.ctx.Stats.OutputRows += int64(out.Len())
	return out, nil
}

// Close implements Operator.
func (a *HashAggOp) Close() error { return a.Child.Close() }

// Schema implements Operator.
func (a *HashAggOp) Schema() storage.Schema { return a.spec.schema }

// Intervals implements IntervalReporter.
func (a *HashAggOp) Intervals() [][]stats.Interval { return a.intervals }
