package exec

import (
	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// TableScan reads a base table partition by partition, charging cold-scan
// bytes to the run stats. When Prune is set (the predicate of the Filter
// directly above the scan), partitions whose zone maps prove the predicate
// unsatisfiable are skipped and their bytes never charged — the result
// stream above the filter is unchanged, only the cost shrinks.
type TableScan struct {
	Table *storage.Table
	Prune expr.Expr
	ctx   *Context

	batches []*storage.Batch
	pos     int
}

// NewTableScan returns a scan over the whole table.
func NewTableScan(t *storage.Table, ctx *Context) *TableScan {
	return &TableScan{Table: t, ctx: ctx}
}

// pruneKeep evaluates pred against every partition's zone map and returns
// the survivor mask plus the surviving byte total. A nil mask means nothing
// was pruned (scan everything); bytes then equals t.Bytes() exactly, so an
// ineffective prune charges the same as no prune at all.
func pruneKeep(t *storage.Table, pred expr.Expr) ([]bool, int64) {
	if pred == nil {
		return nil, t.Bytes()
	}
	sch := t.Schema()
	keep := make([]bool, t.Partitions())
	var bytes int64
	pruned := false
	for p := range keep {
		if expr.ZonePrunes(pred, sch, t.Zone(p)) {
			pruned = true
			continue
		}
		keep[p] = true
		bytes += t.PartitionBytes(p)
	}
	if !pruned {
		return nil, bytes
	}
	return keep, bytes
}

// Open implements Operator.
func (s *TableScan) Open() error {
	s.batches = s.batches[:0]
	keep, bytes := pruneKeep(s.Table, s.Prune)
	for p := 0; p < s.Table.Partitions(); p++ {
		if keep != nil && !keep[p] {
			continue
		}
		s.batches = append(s.batches, s.Table.Scan(p, storage.BatchSize)...)
	}
	s.pos = 0
	s.ctx.Stats.BaseBytes += bytes
	s.ctx.Obs.Pruned(prunedCount(keep))
	return nil
}

// prunedCount counts the partitions a survivor mask skipped (0 for the nil
// nothing-pruned mask).
func prunedCount(keep []bool) int64 {
	var n int64
	for _, k := range keep {
		if !k {
			n++
		}
	}
	return n
}

// Next implements Operator.
func (s *TableScan) Next() (*storage.Batch, error) {
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	s.ctx.Stats.CPUTuples += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (s *TableScan) Close() error { return nil }

// Schema implements Operator.
func (s *TableScan) Schema() storage.Schema { return s.Table.Schema() }

// SynopsisScan reads a materialized sample, charging warehouse bytes. The
// InBuffer flag marks samples served from the in-memory buffer, which are
// free of I/O cost (the paper's buffer is persisted RDDs).
type SynopsisScan struct {
	Sample   *synopses.Sample
	InBuffer bool
	ctx      *Context

	batches []*storage.Batch
	pos     int
}

// NewSynopsisScan returns a scan over a materialized sample.
func NewSynopsisScan(s *synopses.Sample, inBuffer bool, ctx *Context) *SynopsisScan {
	return &SynopsisScan{Sample: s, InBuffer: inBuffer, ctx: ctx}
}

// Open implements Operator.
func (s *SynopsisScan) Open() error {
	s.batches = s.batches[:0]
	t := s.Sample.Rows
	for p := 0; p < t.Partitions(); p++ {
		s.batches = append(s.batches, t.Scan(p, storage.BatchSize)...)
	}
	s.pos = 0
	if !s.InBuffer {
		s.ctx.Stats.WarehouseBytes += t.Bytes()
	}
	return nil
}

// Next implements Operator.
func (s *SynopsisScan) Next() (*storage.Batch, error) {
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	s.ctx.Stats.CPUTuples += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (s *SynopsisScan) Close() error { return nil }

// Schema implements Operator.
func (s *SynopsisScan) Schema() storage.Schema { return s.Sample.Rows.Schema() }
