package exec

import (
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// TableScan reads a base table partition by partition, charging cold-scan
// bytes to the run stats.
type TableScan struct {
	Table *storage.Table
	ctx   *Context

	batches []*storage.Batch
	pos     int
}

// NewTableScan returns a scan over the whole table.
func NewTableScan(t *storage.Table, ctx *Context) *TableScan {
	return &TableScan{Table: t, ctx: ctx}
}

// Open implements Operator.
func (s *TableScan) Open() error {
	s.batches = s.batches[:0]
	for p := 0; p < s.Table.Partitions(); p++ {
		s.batches = append(s.batches, s.Table.Scan(p, storage.BatchSize)...)
	}
	s.pos = 0
	s.ctx.Stats.BaseBytes += s.Table.Bytes()
	return nil
}

// Next implements Operator.
func (s *TableScan) Next() (*storage.Batch, error) {
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	s.ctx.Stats.CPUTuples += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (s *TableScan) Close() error { return nil }

// Schema implements Operator.
func (s *TableScan) Schema() storage.Schema { return s.Table.Schema() }

// SynopsisScan reads a materialized sample, charging warehouse bytes. The
// InBuffer flag marks samples served from the in-memory buffer, which are
// free of I/O cost (the paper's buffer is persisted RDDs).
type SynopsisScan struct {
	Sample   *synopses.Sample
	InBuffer bool
	ctx      *Context

	batches []*storage.Batch
	pos     int
}

// NewSynopsisScan returns a scan over a materialized sample.
func NewSynopsisScan(s *synopses.Sample, inBuffer bool, ctx *Context) *SynopsisScan {
	return &SynopsisScan{Sample: s, InBuffer: inBuffer, ctx: ctx}
}

// Open implements Operator.
func (s *SynopsisScan) Open() error {
	s.batches = s.batches[:0]
	t := s.Sample.Rows
	for p := 0; p < t.Partitions(); p++ {
		s.batches = append(s.batches, t.Scan(p, storage.BatchSize)...)
	}
	s.pos = 0
	if !s.InBuffer {
		s.ctx.Stats.WarehouseBytes += t.Bytes()
	}
	return nil
}

// Next implements Operator.
func (s *SynopsisScan) Next() (*storage.Batch, error) {
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	s.ctx.Stats.CPUTuples += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (s *SynopsisScan) Close() error { return nil }

// Schema implements Operator.
func (s *SynopsisScan) Schema() storage.Schema { return s.Sample.Rows.Schema() }
