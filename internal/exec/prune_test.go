package exec

import (
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

// Zone-map pruning at the executor layer. orders.amount equals the row
// index, so the Build(3) layout clusters amount into three disjoint ranges
// and a range predicate provably excludes whole partitions. Every test here
// holds the same contract: pruning changes the scan-byte charge, never the
// rows.

// amountAbove is a filter the zone maps can reason about: it keeps only the
// last of ordersTable's three partitions.
func amountAbove(v float64) expr.Expr {
	return &expr.Cmp{
		Op: expr.GE,
		L:  &expr.Col{Name: "orders.amount"},
		R:  &expr.Const{Val: storage.FloatValue(v)},
	}
}

func mustSameRows(t *testing.T, label string, a, b [][]storage.Value) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: row count %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		for c := range a[i] {
			if !a[i][c].Equal(b[i][c]) {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, c, a[i][c], b[i][c])
			}
		}
	}
}

// TestVolcanoPrunedScanMatchesUnpruned: the compiled Filter-over-Scan prunes
// provably excluded partitions; rows are identical, bytes charge only the
// surviving partitions.
func TestVolcanoPrunedScanMatchesUnpruned(t *testing.T) {
	tbl := ordersTable()
	f := &plan.Filter{Child: &plan.Scan{Table: tbl}, Pred: amountAbove(700)}

	on := NewContext(0.95)
	pruned := runPlan(t, f, on)
	off := NewContext(0.95)
	off.DisablePrune = true
	full := runPlan(t, f, off)

	mustSameRows(t, "volcano prune on-vs-off", allRows(pruned), allRows(full))
	if n := len(allRows(pruned)); n != 300 {
		t.Fatalf("filter kept %d rows, want 300", n)
	}
	if off.Stats.BaseBytes != tbl.Bytes() {
		t.Fatalf("unpruned charge = %d, want full %d", off.Stats.BaseBytes, tbl.Bytes())
	}
	// amount >= 700 zone-excludes partitions [0,334) and [334,667): only the
	// last partition's bytes may be charged.
	want := tbl.PartitionBytes(tbl.Partitions() - 1)
	if on.Stats.BaseBytes != want {
		t.Fatalf("pruned charge = %d, want last partition's %d", on.Stats.BaseBytes, want)
	}
}

// TestVolcanoPruneAllPartitions: a predicate no row can satisfy prunes every
// partition — zero rows, zero base bytes, no error.
func TestVolcanoPruneAllPartitions(t *testing.T) {
	ctx := NewContext(0.95)
	f := &plan.Filter{Child: &plan.Scan{Table: ordersTable()}, Pred: amountAbove(1e9)}
	if n := len(allRows(runPlan(t, f, ctx))); n != 0 {
		t.Fatalf("impossible predicate returned %d rows", n)
	}
	if ctx.Stats.BaseBytes != 0 {
		t.Fatalf("fully pruned scan charged %d bytes", ctx.Stats.BaseBytes)
	}
}

// TestParallelAggPruneMatchesVolcano: the morsel-parallel aggregation path
// prunes the same partitions as the Volcano path — identical rows AND
// identical cost counters, pruning on or off. Counter identity between the
// two runtimes is the repo-wide invariant that keeps plan costing honest.
func TestParallelAggPruneMatchesVolcano(t *testing.T) {
	mk := func(workers int, disable bool) (*Context, [][]storage.Value) {
		ctx := NewContext(0.95)
		ctx.Workers = workers
		ctx.DisablePrune = disable
		agg := &plan.Aggregate{
			Child:   &plan.Filter{Child: &plan.Scan{Table: ordersTable()}, Pred: amountAbove(700)},
			GroupBy: []string{"orders.cust"},
			Aggs:    []plan.AggSpec{{Kind: stats.Sum, Col: "orders.amount"}},
		}
		return ctx, allRows(runPlan(t, agg, ctx))
	}

	volcano, vRows := mk(1, false)
	parallel, pRows := mk(4, false)
	mustSameRows(t, "parallel-vs-volcano pruned", pRows, vRows)
	v, p := volcano.Stats, parallel.Stats
	if v.BaseBytes != p.BaseBytes || v.WarehouseBytes != p.WarehouseBytes ||
		v.CPUTuples != p.CPUTuples || v.ShuffleBytes != p.ShuffleBytes ||
		v.OutputRows != p.OutputRows {
		t.Fatalf("pruned counters diverge: volcano %+v vs parallel %+v", v, p)
	}

	_, fullRows := mk(4, true)
	mustSameRows(t, "parallel prune on-vs-off", pRows, fullRows)
	if parallel.Stats.BaseBytes >= ordersTable().Bytes() {
		t.Fatalf("pruning charged %d bytes, not below full %d", parallel.Stats.BaseBytes, ordersTable().Bytes())
	}
}
