package exec

import (
	"fmt"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// SamplerOp is the pipelined sampler operator the planner injects below
// aggregators (paper §IV-A). It forwards passing rows downstream with their
// HT weight appended, and — when the tuner chose this plan for its reusable
// synopsis — simultaneously materializes the very same rows into a Sample
// (the "byproduct of query execution" materialization of paper §III).
type SamplerOp struct {
	Child Operator
	Node  *plan.SynopsisOp

	ctx     *Context
	sampler synopses.Sampler
	schema  storage.Schema

	matBuilder *synopses.SampleBuilder
	matCols    []string
}

// NewSamplerOp builds the sampler described by the plan node. The context's
// MaterializeSamples map decides whether the output is also materialized.
func NewSamplerOp(child Operator, node *plan.SynopsisOp, seed uint64, ctx *Context) (*SamplerOp, error) {
	return newSamplerOpDelta(child, node, node.Delta, seed, ctx)
}

// newSamplerOpDelta is NewSamplerOp with an explicit per-instance δ: when the
// morsel executor runs one sampler instance per morsel, each instance carries
// δ' = PartitionDelta(δ, morsels) (paper §II), not the full requirement.
func newSamplerOpDelta(child Operator, node *plan.SynopsisOp, delta int, seed uint64, ctx *Context) (*SamplerOp, error) {
	in := child.Schema()
	op := &SamplerOp{Child: child, Node: node, ctx: ctx}
	op.schema = synopses.SampleSchema(in)

	switch node.Kind {
	case plan.UniformSample:
		op.sampler = synopses.NewUniformSampler(node.P, seed)
	case plan.DistinctSample:
		idxs := make([]int, 0, len(node.StratCols))
		for _, c := range node.StratCols {
			i := in.Index(c)
			if i < 0 {
				return nil, fmt.Errorf("exec: sampler: stratification column %q not in %v", c, in.Names())
			}
			idxs = append(idxs, i)
		}
		op.sampler = synopses.NewDistinctSampler(node.P, delta, idxs, seed)
	default:
		return nil, fmt.Errorf("exec: sampler: unsupported synopsis kind %s", node.Kind)
	}

	if name, ok := ctx.MaterializeSamples[node]; ok {
		op.matBuilder = synopses.NewSampleBuilder(name, in)
		op.matCols = node.StratCols
	}
	return op, nil
}

// Open implements Operator.
func (s *SamplerOp) Open() error { return s.Child.Open() }

// Next implements Operator.
func (s *SamplerOp) Next() (*storage.Batch, error) {
	for {
		b, err := s.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.finishMaterialization()
			return nil, nil
		}
		// The sampler's per-row decisions are keyed to dense row positions
		// (reproducibility contract); resolve any selection so a filtered
		// stream reads exactly as its gathered equivalent did.
		b = b.Materialize(s.ctx.Pool)
		n := b.Len()
		s.ctx.Stats.CPUTuples += int64(n)
		out := s.ctx.Pool.GetBatch(s.schema, n/4+1)
		wcol := len(s.schema) - 1
		for i := 0; i < n; i++ {
			var d synopses.Decision
			if s.matBuilder != nil {
				d = s.matBuilder.Offer(s.sampler, b.Vecs, i)
			} else {
				d = s.sampler.Decide(b.Vecs, i)
			}
			if !d.Pass {
				continue
			}
			for c := 0; c < wcol; c++ {
				out.Vecs[c].AppendFrom(b.Vecs[c], i)
			}
			out.Vecs[wcol].F64 = append(out.Vecs[wcol].F64, d.Weight)
		}
		// Sampling and materialization both copy rows out, so the input batch
		// can be recycled whether or not any row passed.
		s.ctx.Pool.Release(b)
		if out.Len() == 0 {
			s.ctx.Pool.Release(out)
			continue
		}
		return out, nil
	}
}

func (s *SamplerOp) finishMaterialization() {
	if s.matBuilder == nil {
		return
	}
	sample := s.matBuilder.Build(s.sampler, 1)
	sample.StratCols = append([]string(nil), s.matCols...)
	s.ctx.Stats.BuiltSamples = append(s.ctx.Stats.BuiltSamples, BuiltSample{Op: s.Node, Sample: sample})
	s.matBuilder = nil
}

// Close implements Operator.
func (s *SamplerOp) Close() error { return s.Child.Close() }

// Schema implements Operator.
func (s *SamplerOp) Schema() storage.Schema { return s.schema }
