// Package exec implements the physical, batch-at-a-time (Volcano-with-
// vectors) execution engine: scans, filters, projections, hash joins,
// weighted hash aggregation with single-pass error tracking, the sampler
// operators (pipelined, with materialization as a byproduct — paper §III),
// the sketch-join operator, and the compiler from logical plans.
//
// Scan→sample→filter→join→aggregate chains — the hot path of every grouped
// aggregation, single-table or join-shaped — compile to the morsel-driven
// ParallelAggOp instead of the Volcano operators: join build sides are hashed
// once into partitioned shared tables, workers claim fixed-size row-range
// morsels of the probe side from a shared dispenser and merge per-worker
// partial hash tables, with per-morsel RNG streams split deterministically
// from the query seed so results are byte-identical at any worker count.
package exec

import (
	"math"
	"sort"

	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// Operator is a physical operator producing batches until nil (EOF).
type Operator interface {
	// Open prepares the operator (and its inputs) for execution.
	Open() error
	// Next returns the next batch, or nil at end of stream.
	Next() (*storage.Batch, error)
	// Close releases resources; safe after partial consumption.
	Close() error
	// Schema returns the operator's output schema.
	Schema() storage.Schema
}

// RunStats accumulates the logical work counters the simulated-cluster cost
// model converts to seconds, plus every synopsis built as a byproduct of the
// run (paper §III: "all synopses are constructed as byproducts of query
// answering").
type RunStats struct {
	BaseBytes      int64 // cold bytes scanned from base tables
	WarehouseBytes int64 // bytes scanned from materialized synopses
	CPUTuples      int64 // tuples pushed through operators
	ShuffleBytes   int64 // bytes exchanged for joins/aggregations
	OutputRows     int64

	BuiltSamples  []BuiltSample
	BuiltSketches []BuiltSketch
}

// BuiltSample records a sample materialized during execution.
type BuiltSample struct {
	Op     *plan.SynopsisOp
	Sample *synopses.Sample
}

// BuiltSketch records a sketch-join synopsis built during execution.
type BuiltSketch struct {
	Op     *plan.SketchJoin
	Sketch *synopses.SketchJoin
}

// SimulatedSeconds converts the counters into simulated cluster time. The
// seek charge models per-query job startup and is paid once, matching the
// planner's cost convention.
func (s *RunStats) SimulatedSeconds(m storage.CostModel) float64 {
	sec := m.CPUSeconds(s.CPUTuples) + m.ShuffleSeconds(s.ShuffleBytes)
	if s.BaseBytes > 0 || s.WarehouseBytes > 0 {
		sec += m.SeekSeconds
	}
	sec += float64(s.BaseBytes) / m.ScanBytesPerSec
	sec += float64(s.WarehouseBytes) / (m.ScanBytesPerSec * m.WarehouseReadFrac)
	return sec
}

// Context carries per-run state shared by the operator tree.
type Context struct {
	Confidence float64 // confidence level for reported intervals
	Stats      *RunStats
	// MaterializeSamples maps SynopsisOp nodes whose output the tuner chose
	// to keep; the sampler operator tees into a builder for each. The map is
	// fully populated before execution starts and only read afterwards, so
	// parallel workers may consult it without locking.
	MaterializeSamples map[*plan.SynopsisOp]string // node → synopsis name
	// Workers is the intra-query parallelism degree of the morsel-driven
	// executor; 0 means runtime.NumCPU(). Results are byte-identical for any
	// value (see ParallelAggOp).
	Workers int
	// MorselRows overrides the morsel granularity (rows per morsel); 0 means
	// DefaultMorselRows. Changing it changes the per-morsel sampler streams,
	// so it is part of a query's reproducibility key.
	MorselRows int
	// DisablePrune turns zone-map partition pruning off. Pruning is sound —
	// it never changes results, only the scan-byte and tuple charges — so the
	// flag exists for A/B cost measurement and the pruning soundness tests.
	DisablePrune bool
	// DisableKernels forces every filter onto the interpreted Eval fallback
	// instead of the compiled selection-vector kernels. The two paths are
	// bit-identical — results and cost counters — so the flag exists only for
	// the differential harness and kernel benchmarks. It is deliberately
	// invisible to the planner: plan choice keys on the static
	// expr.KernelCompilable, never on this switch.
	DisableKernels bool
	// Pool recycles batch/vector memory between operators of this run. Batches
	// transfer ownership downstream; the final consumer releases after copying
	// out (storage.VecPool documents the contract). A nil pool degrades every
	// pool-aware operator to plain allocation, so results never depend on it.
	Pool *storage.VecPool
	// Obs receives the executor's dispatch counters (kernel-vs-fallback
	// filter batches, zone-pruned partitions). Metrics are write-only from
	// execution — nothing here reads them back — and every hook is safe on
	// the nil default, so an engine without a metrics registry threads nil
	// and pays one pointer test per batch. Morsel workers share the pointer;
	// the counters are atomic.
	Obs *obs.ExecObs
	// TraceNodes, when non-nil, enables per-operator tracing: Compile wraps
	// every compiled operator and records its counters into this map, keyed
	// by the plan node it implements. Per-query state — never shared across
	// runs or copied into morsel contexts (fused pipelines account their
	// work at the enclosing traced operator).
	TraceNodes map[plan.Node]*obs.TraceNode
	// Clock times traced operators. Always non-nil (NewContext defaults to
	// the frozen clock); the engine injects the wall clock only for
	// asynchronous runs, so synchronous traces render with zero durations
	// and stay byte-reproducible.
	Clock obs.Clock
}

// NewContext returns a context with fresh stats at the given confidence.
func NewContext(confidence float64) *Context {
	if confidence <= 0 || confidence >= 1 {
		confidence = stats.DefaultAccuracy.Confidence
	}
	return &Context{
		Confidence:         confidence,
		Stats:              &RunStats{},
		MaterializeSamples: make(map[*plan.SynopsisOp]string),
		Pool:               storage.NewVecPool(),
		Clock:              obs.Frozen{},
	}
}

// IntervalReporter is implemented by the terminal aggregation operators;
// after the stream is drained it reports the confidence interval of every
// aggregate cell, row-aligned with the emitted output.
type IntervalReporter interface {
	Intervals() [][]stats.Interval
}

// Run opens, drains and closes an operator, returning all batches.
func Run(op Operator) ([]*storage.Batch, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []*storage.Batch
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		// Result boundary: resolve any selection vector so callers see dense
		// batches (and the selection buffer returns to the pool).
		b = b.Materialize(nil)
		if b.Len() > 0 {
			out = append(out, b)
		}
	}
}

// groupKey builds a deterministic byte key from selected columns of a row.
func groupKey(dst []byte, vecs []*storage.Vector, cols []int, row int) []byte {
	dst = dst[:0]
	for _, c := range cols {
		v := vecs[c]
		switch v.Typ {
		case storage.Int64:
			x := uint64(v.I64[row])
			dst = append(dst, 1, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
				byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
		case storage.Float64:
			x := math.Float64bits(v.F64[row])
			dst = append(dst, 2, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
				byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
		case storage.String:
			// Length-prefixed, not NUL-terminated: a terminator byte lets
			// NUL-embedded strings collide across column boundaries (e.g. the
			// two-column keys ("a\x00\x03b","c") and ("a","b\x00\x03c") encode
			// to the same bytes under termination).
			s := v.Str[row]
			n := uint32(len(s))
			dst = append(dst, 3, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
			dst = append(dst, s...)
		case storage.Bool:
			if v.B[row] {
				dst = append(dst, 4, 1)
			} else {
				dst = append(dst, 4, 0)
			}
		}
	}
	return dst
}

// sortRowsByValues orders row indices by the given value tuples
// lexicographically — used for deterministic aggregate output.
func sortRowsByValues(keys [][]storage.Value) []int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range ka {
			if ka[i].Equal(kb[i]) {
				continue
			}
			return ka[i].Less(kb[i])
		}
		return false
	})
	return idx
}
