package synopses

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/tasterdb/taster/internal/storage"
)

// FM is a Flajolet-Martin probabilistic counting sketch (PCSA variant) for
// distinct-count estimation, cited by the paper for COUNT DISTINCT and join
// size estimation. It keeps m bitmaps; element x sets bit ρ(h(x)) in bitmap
// h(x) mod m, and the estimate is m/φ · 2^(mean lowest-unset-bit).
type FM struct {
	maps []uint64
	m    int
	seed uint64
}

// fmPhi is the Flajolet-Martin magic correction constant.
const fmPhi = 0.77351

// NewFM returns an FM sketch with m bitmaps (standard error ≈ 0.78/√m).
func NewFM(m int, seed uint64) *FM {
	if m < 1 {
		m = 64
	}
	return &FM{maps: make([]uint64, m), m: m, seed: seed}
}

// Add inserts a key.
func (f *FM) Add(key uint64) {
	h := mix64(key ^ f.seed)
	idx := h % uint64(f.m)
	rest := mix64(h ^ 0xabcdef1234567890)
	r := bits.TrailingZeros64(rest | (1 << 63)) // ρ: position of lowest 1-bit
	f.maps[idx] |= 1 << r
}

// Estimate returns the approximate number of distinct keys inserted.
func (f *FM) Estimate() float64 {
	sum := 0
	for _, bm := range f.maps {
		// R = index of lowest zero bit.
		r := bits.TrailingZeros64(^bm)
		sum += r
	}
	mean := float64(sum) / float64(f.m)
	return float64(f.m) / fmPhi * math.Pow(2, mean)
}

// Merge ORs another sketch into this one.
func (f *FM) Merge(o *FM) error {
	if f.m != o.m || f.seed != o.seed {
		return fmt.Errorf("synopses: merging incompatible FM sketches")
	}
	for i := range f.maps {
		f.maps[i] |= o.maps[i]
	}
	return nil
}

// SizeBytes returns the sketch's serialized size (== len(Encode())).
func (f *FM) SizeBytes() int64 { return EnvelopeBytes + 16 + int64(8*f.m) }

// Encode serializes the sketch: m, seed, bitmaps.
func (f *FM) Encode() []byte {
	buf := appendEnvelope(make([]byte, 0, f.SizeBytes()), KindFM)
	buf = storage.AppendU64(buf, uint64(f.m))
	buf = storage.AppendU64(buf, f.seed)
	for _, bm := range f.maps {
		buf = storage.AppendU64(buf, bm)
	}
	return buf
}

// DecodeFM reverses Encode.
func DecodeFM(b []byte) (*FM, error) {
	r, err := envelopePayload(b, KindFM)
	if err != nil {
		return nil, err
	}
	m, err := r.U64()
	if err != nil {
		return nil, err
	}
	seed, err := r.U64()
	if err != nil {
		return nil, err
	}
	if m < 1 || m > 1<<28 || r.Remaining() < int(8*m) {
		return nil, fmt.Errorf("synopses: corrupt FM header (m=%d, %d payload bytes)", m, r.Remaining())
	}
	f := NewFM(int(m), seed)
	for i := range f.maps {
		v, err := r.U64()
		if err != nil {
			return nil, err
		}
		f.maps[i] = v
	}
	return f, nil
}
