package synopses

import (
	"math"
	"strings"
	"testing"

	"github.com/tasterdb/taster/internal/storage"
)

func partSample(t *testing.T, rows, sourceRows int) *Sample {
	t.Helper()
	src := storage.Schema{{Name: "t.v", Typ: storage.Float64}}
	sb := NewSampleBuilder("part", src)
	vec := storage.NewVector(storage.Float64, rows)
	for i := 0; i < rows; i++ {
		vec.F64 = append(vec.F64, float64(i))
	}
	for i := 0; i < rows; i++ {
		sb.Append([]*storage.Vector{vec}, i, 1)
	}
	s := sb.Build(NewUniformSampler(0.5, 1), 1)
	s.SourceRows = sourceRows
	return s
}

func TestMergeSamplesValidatesSourceRows(t *testing.T) {
	good := partSample(t, 2, 10)

	if _, err := MergeSamples("m", []*Sample{good, partSample(t, 2, -1)}); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative SourceRows accepted: %v", err)
	}
	if _, err := MergeSamples("m", []*Sample{good, partSample(t, 2, 0)}); err == nil ||
		!strings.Contains(err.Error(), "zero input") {
		t.Fatalf("rows-from-zero-input accepted: %v", err)
	}
	if _, err := MergeSamples("m", []*Sample{partSample(t, 2, math.MaxInt), good}); err == nil ||
		!strings.Contains(err.Error(), "overflow") {
		t.Fatalf("SourceRows overflow accepted: %v", err)
	}

	// Empty parts (zero rows from zero input) are legitimate morsel output.
	m, err := MergeSamples("m", []*Sample{good, partSample(t, 0, 0), partSample(t, 3, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if m.SourceRows != 15 || m.Rows.NumRows() != 5 {
		t.Fatalf("merged SourceRows=%d rows=%d", m.SourceRows, m.Rows.NumRows())
	}
}
