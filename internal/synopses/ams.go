package synopses

import (
	"fmt"
	"math"
	"sort"
)

// AMS is an Alon-Matias-Szegedy sketch (tug-of-war variant): s2 independent
// groups of s1 ±1-hashed counters. It estimates the second frequency moment
// F2 = Σ f(x)², and the inner product of two streams — the classic join-size
// estimator the paper cites ([6]).
type AMS struct {
	s1, s2 int
	seed   uint64
	hash   pairwise
	cells  []float64 // row-major: cells[g*s1 + j], one hash per (g,j) pair
}

// NewAMS returns a sketch with s1 counters averaged per group (variance
// control) and s2 groups combined by median (confidence control).
func NewAMS(s1, s2 int, seed uint64) *AMS {
	if s1 < 1 {
		s1 = 16
	}
	if s2 < 1 {
		s2 = 5
	}
	return &AMS{
		s1: s1, s2: s2, seed: seed,
		hash:  newPairwise(s1*s2, seed),
		cells: make([]float64, s1*s2),
	}
}

// Add inserts key with the given weight (frequency increment).
func (a *AMS) Add(key uint64, weight float64) {
	for i := range a.cells {
		a.cells[i] += weight * float64(a.hash.sign(i, key))
	}
}

// F2 estimates Σ f(x)² by median-of-means over the counter squares.
func (a *AMS) F2() float64 {
	return a.medianOfMeans(func(i int) float64 { return a.cells[i] * a.cells[i] })
}

// JoinSize estimates Σ f(x)·g(x) given another sketch built with the same
// geometry and seed over the other relation's join column.
func (a *AMS) JoinSize(b *AMS) (float64, error) {
	if a.s1 != b.s1 || a.s2 != b.s2 || a.seed != b.seed {
		return 0, fmt.Errorf("synopses: join-size estimate over incompatible AMS sketches")
	}
	return a.medianOfMeans(func(i int) float64 { return a.cells[i] * b.cells[i] }), nil
}

func (a *AMS) medianOfMeans(cell func(int) float64) float64 {
	means := make([]float64, a.s2)
	for g := 0; g < a.s2; g++ {
		sum := 0.0
		for j := 0; j < a.s1; j++ {
			sum += cell(g*a.s1 + j)
		}
		means[g] = sum / float64(a.s1)
	}
	sort.Float64s(means)
	mid := len(means) / 2
	if len(means)%2 == 1 {
		return means[mid]
	}
	return (means[mid-1] + means[mid]) / 2
}

// Merge adds another sketch elementwise (same stream split across nodes).
func (a *AMS) Merge(b *AMS) error {
	if a.s1 != b.s1 || a.s2 != b.s2 || a.seed != b.seed {
		return fmt.Errorf("synopses: merging incompatible AMS sketches")
	}
	for i := range a.cells {
		a.cells[i] += b.cells[i]
	}
	return nil
}

// RelativeStdError returns the expected relative standard error of the F2
// estimate, O(1/√s1).
func (a *AMS) RelativeStdError() float64 { return math.Sqrt(2 / float64(a.s1)) }

// SizeBytes returns the sketch's serialized size.
func (a *AMS) SizeBytes() int64 { return int64(8*len(a.cells)) + 24 }
