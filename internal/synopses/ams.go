package synopses

import (
	"fmt"
	"math"
	"sort"

	"github.com/tasterdb/taster/internal/storage"
)

// AMS is an Alon-Matias-Szegedy sketch (tug-of-war variant): s2 independent
// groups of s1 ±1-hashed counters. It estimates the second frequency moment
// F2 = Σ f(x)², and the inner product of two streams — the classic join-size
// estimator the paper cites ([6]).
type AMS struct {
	s1, s2 int
	seed   uint64
	hash   pairwise
	cells  []float64 // row-major: cells[g*s1 + j], one hash per (g,j) pair
}

// NewAMS returns a sketch with s1 counters averaged per group (variance
// control) and s2 groups combined by median (confidence control).
func NewAMS(s1, s2 int, seed uint64) *AMS {
	if s1 < 1 {
		s1 = 16
	}
	if s2 < 1 {
		s2 = 5
	}
	return &AMS{
		s1: s1, s2: s2, seed: seed,
		hash:  newPairwise(s1*s2, seed),
		cells: make([]float64, s1*s2),
	}
}

// Add inserts key with the given weight (frequency increment).
func (a *AMS) Add(key uint64, weight float64) {
	for i := range a.cells {
		a.cells[i] += weight * float64(a.hash.sign(i, key))
	}
}

// F2 estimates Σ f(x)² by median-of-means over the counter squares.
func (a *AMS) F2() float64 {
	return a.medianOfMeans(func(i int) float64 { return a.cells[i] * a.cells[i] })
}

// JoinSize estimates Σ f(x)·g(x) given another sketch built with the same
// geometry and seed over the other relation's join column.
func (a *AMS) JoinSize(b *AMS) (float64, error) {
	if a.s1 != b.s1 || a.s2 != b.s2 || a.seed != b.seed {
		return 0, fmt.Errorf("synopses: join-size estimate over incompatible AMS sketches")
	}
	return a.medianOfMeans(func(i int) float64 { return a.cells[i] * b.cells[i] }), nil
}

func (a *AMS) medianOfMeans(cell func(int) float64) float64 {
	means := make([]float64, a.s2)
	for g := 0; g < a.s2; g++ {
		sum := 0.0
		for j := 0; j < a.s1; j++ {
			sum += cell(g*a.s1 + j)
		}
		means[g] = sum / float64(a.s1)
	}
	sort.Float64s(means)
	mid := len(means) / 2
	if len(means)%2 == 1 {
		return means[mid]
	}
	return (means[mid-1] + means[mid]) / 2
}

// Merge adds another sketch elementwise (same stream split across nodes).
func (a *AMS) Merge(b *AMS) error {
	if a.s1 != b.s1 || a.s2 != b.s2 || a.seed != b.seed {
		return fmt.Errorf("synopses: merging incompatible AMS sketches")
	}
	for i := range a.cells {
		a.cells[i] += b.cells[i]
	}
	return nil
}

// RelativeStdError returns the expected relative standard error of the F2
// estimate, O(1/√s1).
func (a *AMS) RelativeStdError() float64 { return math.Sqrt(2 / float64(a.s1)) }

// SizeBytes returns the sketch's serialized size (== len(Encode())).
func (a *AMS) SizeBytes() int64 { return EnvelopeBytes + 24 + int64(8*len(a.cells)) }

// Encode serializes the sketch: s1, s2, seed, cells. The hash functions are
// reconstructed from the geometry and seed on decode.
func (a *AMS) Encode() []byte {
	buf := appendEnvelope(make([]byte, 0, a.SizeBytes()), KindAMS)
	buf = storage.AppendU64(buf, uint64(a.s1))
	buf = storage.AppendU64(buf, uint64(a.s2))
	buf = storage.AppendU64(buf, a.seed)
	for _, c := range a.cells {
		buf = storage.AppendF64(buf, c)
	}
	return buf
}

// DecodeAMS reverses Encode.
func DecodeAMS(b []byte) (*AMS, error) {
	r, err := envelopePayload(b, KindAMS)
	if err != nil {
		return nil, err
	}
	s1, err := r.U64()
	if err != nil {
		return nil, err
	}
	s2, err := r.U64()
	if err != nil {
		return nil, err
	}
	seed, err := r.U64()
	if err != nil {
		return nil, err
	}
	// Per-dimension caps BEFORE the product: a crafted header with huge
	// s1·s2 must not wrap the uint64 multiplication past the bound.
	if s1 < 1 || s2 < 1 || s1 > 1<<14 || s2 > 1<<14 || r.Remaining() < int(8*s1*s2) {
		return nil, fmt.Errorf("synopses: corrupt AMS header (s1=%d s2=%d, %d payload bytes)", s1, s2, r.Remaining())
	}
	a := NewAMS(int(s1), int(s2), seed)
	for i := range a.cells {
		v, err := r.F64()
		if err != nil {
			return nil, err
		}
		a.cells[i] = v
	}
	return a, nil
}
