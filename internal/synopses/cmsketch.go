package synopses

import (
	"fmt"
	"math"

	"github.com/tasterdb/taster/internal/storage"
)

// CMSketch is a count-min sketch (Cormode & Muthukrishnan): a w×d array of
// counters with d pairwise-independent hash functions. Point queries
// overestimate by at most εN with probability ≥ 1−δ when w = ⌈e/ε⌉ and
// d = ⌈ln(1/δ)⌉, where N is the L1 norm of all frequencies (paper §II, §IV-B).
//
// Counters are float64 so the same structure serves both frequency counting
// (Add with weight 1) and the sketch-join's SUM-valued variant (Add with the
// aggregated measure); the estimate keeps the min-over-rows guarantee because
// all weights are non-negative.
type CMSketch struct {
	w, d  int
	seed  uint64
	hash  pairwise
	cells []float64 // row-major: cells[row*w + col]
	n     float64   // L1 norm of inserted weights
	// occupied counts nonzero cells, maintained incrementally on both
	// 0→nonzero and nonzero→0 transitions (the sketch-join's SUM plane takes
	// signed measures, so cells can cancel back to exact zero).
	// ExpectedErrorBound runs on the per-query serving path and must not
	// rescan all w×d cells each call.
	occupied int
}

// NewCMSketch returns a sketch with εN additive error at confidence 1−δ.
func NewCMSketch(eps, delta float64, seed uint64) *CMSketch {
	if eps <= 0 {
		eps = 0.001
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	w := int(math.Ceil(math.E / eps))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return NewCMSketchWD(w, d, seed)
}

// NewCMSketchWD returns a sketch with explicit width and depth.
func NewCMSketchWD(w, d int, seed uint64) *CMSketch {
	if w < 1 {
		w = 1
	}
	if d < 1 {
		d = 1
	}
	return &CMSketch{
		w: w, d: d, seed: seed,
		hash:  newPairwise(d, seed),
		cells: make([]float64, w*d),
	}
}

// Width returns the number of counters per row.
func (s *CMSketch) Width() int { return s.w }

// Depth returns the number of rows (hash functions).
func (s *CMSketch) Depth() int { return s.d }

// Seed returns the hash seed; merges require equal seeds and dimensions.
func (s *CMSketch) Seed() uint64 { return s.seed }

// N returns the L1 norm of all inserted weights.
func (s *CMSketch) N() float64 { return s.n }

// Add inserts key with the given non-negative weight.
func (s *CMSketch) Add(key uint64, weight float64) {
	for r := 0; r < s.d; r++ {
		c := r*s.w + int(s.hash.at(r, key)%uint64(s.w))
		old := s.cells[c]
		s.cells[c] += weight
		if old == 0 && s.cells[c] != 0 {
			s.occupied++
		} else if old != 0 && s.cells[c] == 0 {
			s.occupied--
		}
	}
	s.n += weight
}

// Estimate returns the point estimate f̂(key) = min over rows. It never
// underestimates the true weight.
func (s *CMSketch) Estimate(key uint64) float64 {
	est := math.Inf(1)
	for r := 0; r < s.d; r++ {
		c := int(s.hash.at(r, key) % uint64(s.w))
		if v := s.cells[r*s.w+c]; v < est {
			est = v
		}
	}
	if math.IsInf(est, 1) {
		return 0
	}
	return est
}

// ErrorBound returns the additive error bound εN implied by the sketch
// geometry and current load.
func (s *CMSketch) ErrorBound() float64 {
	return math.E / float64(s.w) * s.n
}

// ExpectedErrorBound returns a load-aware expected overestimation bound for
// point queries: a point estimate is inflated only when every one of the d
// rows suffers a collision, which happens with probability ≈ fill^d (fill =
// occupied-cell fraction); the expected inflation is then ~N/w. The εN
// worst-case bound is hopelessly pessimistic for lightly loaded sketches —
// exactly the regime the planner sizes sketch-joins into.
func (s *CMSketch) ExpectedErrorBound() float64 {
	if s.occupied == 0 {
		return 0
	}
	fill := float64(s.occupied) / float64(len(s.cells))
	return s.n / float64(s.w) * math.Pow(fill, float64(s.d))
}

// Merge adds o into s cell-wise. Sketches must share geometry and seed
// (the paper merges per-node sketches pair-wise to summarize a whole RDD).
func (s *CMSketch) Merge(o *CMSketch) error {
	if s.w != o.w || s.d != o.d || s.seed != o.seed {
		return fmt.Errorf("synopses: merging incompatible CM sketches (%dx%d/%d vs %dx%d/%d)",
			s.w, s.d, s.seed, o.w, o.d, o.seed)
	}
	for i := range s.cells {
		old := s.cells[i]
		s.cells[i] += o.cells[i]
		if old == 0 && s.cells[i] != 0 {
			s.occupied++
		} else if old != 0 && s.cells[i] == 0 {
			s.occupied--
		}
	}
	s.n += o.n
	return nil
}

// SizeBytes returns the serialized size — exactly len(Encode()) — charged
// against storage quotas.
func (s *CMSketch) SizeBytes() int64 {
	return EnvelopeBytes + s.payloadBytes()
}

// payloadBytes is the envelope-free payload size: w, d, seed, n + cells.
func (s *CMSketch) payloadBytes() int64 { return 32 + int64(8*len(s.cells)) }

// Encode serializes the sketch (versioned envelope + payload).
func (s *CMSketch) Encode() []byte {
	buf := appendEnvelope(make([]byte, 0, s.SizeBytes()), KindCMSketch)
	return s.appendPayload(buf)
}

// appendPayload writes the envelope-free sketch body; the sketch-join codec
// nests it inside its own record.
func (s *CMSketch) appendPayload(buf []byte) []byte {
	buf = storage.AppendU64(buf, uint64(s.w))
	buf = storage.AppendU64(buf, uint64(s.d))
	buf = storage.AppendU64(buf, s.seed)
	buf = storage.AppendF64(buf, s.n)
	for _, c := range s.cells {
		buf = storage.AppendF64(buf, c)
	}
	return buf
}

// DecodeCMSketch reverses Encode.
func DecodeCMSketch(b []byte) (*CMSketch, error) {
	r, err := envelopePayload(b, KindCMSketch)
	if err != nil {
		return nil, err
	}
	return decodeCMPayload(r)
}

// decodeCMPayload reads one envelope-free sketch body from r.
func decodeCMPayload(r *storage.Reader) (*CMSketch, error) {
	w64, err := r.U64()
	if err != nil {
		return nil, err
	}
	d64, err := r.U64()
	if err != nil {
		return nil, err
	}
	seed, err := r.U64()
	if err != nil {
		return nil, err
	}
	n, err := r.F64()
	if err != nil {
		return nil, err
	}
	w, d := int(w64), int(d64)
	if w < 1 || d < 1 || w > 1<<28 || d > 1<<10 || r.Remaining() < 8*w*d {
		return nil, fmt.Errorf("synopses: corrupt CM sketch header (w=%d d=%d, %d payload bytes)", w, d, r.Remaining())
	}
	s := NewCMSketchWD(w, d, seed)
	s.n = n
	for i := range s.cells {
		v, err := r.F64()
		if err != nil {
			return nil, err
		}
		s.cells[i] = v
		if v != 0 {
			s.occupied++
		}
	}
	return s, nil
}
