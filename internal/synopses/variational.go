package synopses

import (
	"math"

	"github.com/tasterdb/taster/internal/storage"
)

// This file implements the VerdictDB-style offline pipeline the paper uses
// for the user-hints experiment (§VI-E): (1) create a "scrambled" (shuffled)
// clone of the table, (2) extract a sample whose rows carry a variational
// subsample id, (3) estimate errors at query time from the spread of
// per-subsample aggregates instead of tuple-level variance formulas, which
// is what lets VerdictDB get away with smaller samples.

// SubsampleCol is the appended variational subsample id attribute.
const SubsampleCol = "__vsub"

// Scramble returns a row-shuffled clone of the table (the scrambled copy
// VerdictDB materializes offline). The shuffle is a seeded Fisher-Yates, so
// results are reproducible. Callers charge the copy's I/O to the offline
// phase.
func Scramble(tbl *storage.Table, seed uint64) *storage.Table {
	n := tbl.NumRows()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r := newRng(seed)
	for i := n - 1; i > 0; i-- {
		j := int(r.next() * float64(i+1))
		if j > i {
			j = i
		}
		perm[i], perm[j] = perm[j], perm[i]
	}
	b := storage.NewBuilder(tbl.Name+"_scrambled", tbl.Schema().Clone())
	for _, i := range perm {
		for c := 0; c < len(tbl.Schema()); c++ {
			b.CopyFrom(c, tbl.Column(c), i)
		}
	}
	return b.Build(tbl.Partitions())
}

// VariationalSample draws a uniform sample of ratio p from a (scrambled)
// table and tags each sampled row with one of ns = ⌈√(p·n)⌉ subsample ids.
// The sample schema is source ++ __weight ++ __vsub.
func VariationalSample(name string, tbl *storage.Table, p float64, seed uint64) *Sample {
	if p <= 0 {
		p = 0.01
	}
	if p > 1 {
		p = 1
	}
	schema := SampleSchema(tbl.Schema())
	schema = append(schema, storage.Col{Name: SubsampleCol, Typ: storage.Int64})
	b := storage.NewBuilder(name, schema)
	widx, sidx := len(schema)-2, len(schema)-1

	expected := p * float64(tbl.NumRows())
	ns := int(math.Ceil(math.Sqrt(expected)))
	if ns < 1 {
		ns = 1
	}
	r := newRng(seed)
	src := 0
	kept := 0
	for pt := 0; pt < tbl.Partitions(); pt++ {
		for _, batch := range tbl.Scan(pt, storage.BatchSize) {
			for i := 0; i < batch.Len(); i++ {
				src++
				if r.next() >= p {
					continue
				}
				for c := 0; c < len(tbl.Schema()); c++ {
					b.CopyFrom(c, batch.Vecs[c], i)
				}
				b.Float(widx, 1/p)
				b.Int(sidx, int64(mix64(uint64(kept)^seed)%uint64(ns)))
				kept++
			}
		}
	}
	return &Sample{
		Rows:       b.Build(tbl.Partitions()),
		Strategy:   "variational",
		P:          p,
		SourceRows: src,
		Seed:       seed,
	}
}

// VariationalVariance estimates Var(θ̂) of a full-sample estimator from the
// per-subsample estimates θ̂_j, each computed over a subsample of size
// subSize, with sampleSize rows in the full sample: the b-out-of-n bootstrap
// rescaling Var(θ̂_n) ≈ (b/n)·Var_j(θ̂_b,j).
func VariationalVariance(subEstimates []float64, subSize, sampleSize int) float64 {
	m := len(subEstimates)
	if m < 2 || subSize < 1 || sampleSize < 1 {
		return 0
	}
	mean := 0.0
	for _, v := range subEstimates {
		mean += v
	}
	mean /= float64(m)
	varSum := 0.0
	for _, v := range subEstimates {
		d := v - mean
		varSum += d * d
	}
	sampleVar := varSum / float64(m-1)
	return sampleVar * float64(subSize) / float64(sampleSize)
}
