package synopses

import (
	"fmt"
	"sort"

	"github.com/tasterdb/taster/internal/storage"
)

// SpaceSaving is the Metwally et al. heavy-hitters summary. The distinct
// sampler uses it (or a CM sketch) as its per-key counter so that "at least
// δ rows per distinct value" can be tracked in space logarithmic in the
// number of rows (paper §II cites [12] for this implementation strategy).
type SpaceSaving struct {
	capacity int
	counts   map[uint64]ssEntry
}

type ssEntry struct {
	count uint64
	err   uint64 // overestimation bound for this key
}

// NewSpaceSaving returns a summary tracking at most capacity keys.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{capacity: capacity, counts: make(map[uint64]ssEntry, capacity)}
}

// Inc increments key's count and returns the (possibly overestimated) new
// count. Overestimation only ever inflates counts, so a distinct sampler
// backed by SpaceSaving may pass slightly fewer than δ frequency-check rows
// for cold keys, never more — the same trade the paper's sketch-backed
// implementation makes.
func (s *SpaceSaving) Inc(key uint64) uint64 {
	if e, ok := s.counts[key]; ok {
		e.count++
		s.counts[key] = e
		return e.count
	}
	if len(s.counts) < s.capacity {
		s.counts[key] = ssEntry{count: 1}
		return 1
	}
	// Evict the minimum-count key and inherit its count as error bound.
	// Ties break toward the smallest key: several entries usually share
	// the minimum count, and letting map iteration order pick the victim
	// would make the summary's contents — and every count and encoding
	// derived from it — differ between identical runs.
	var minKey uint64
	minCount := ^uint64(0)
	//taster:sorted the strict (count, key) lexicographic argmin is total — every iteration order converges on the same victim
	for k, e := range s.counts {
		if e.count < minCount || (e.count == minCount && k < minKey) {
			minCount, minKey = e.count, k
		}
	}
	delete(s.counts, minKey)
	e := ssEntry{count: minCount + 1, err: minCount}
	s.counts[key] = e
	return e.count
}

// Count returns the current (over)estimate for key; 0 if never seen and the
// summary has spare capacity, otherwise the minimum count in the summary.
func (s *SpaceSaving) Count(key uint64) uint64 {
	if e, ok := s.counts[key]; ok {
		return e.count
	}
	if len(s.counts) < s.capacity {
		return 0
	}
	minCount := ^uint64(0)
	for _, e := range s.counts {
		if e.count < minCount {
			minCount = e.count
		}
	}
	return minCount
}

// Top returns up to k (key, count) pairs with the highest counts, ordered
// by descending count with ascending key as the tie-break. The tie-break
// does double duty: it fixes the order of equal-count entries AND decides
// which of them survive the cut at k, neither of which may depend on map
// iteration order.
func (s *SpaceSaving) Top(k int) []KeyCount {
	out := make([]KeyCount, 0, len(s.counts))
	for key, e := range s.counts {
		out = append(out, KeyCount{Key: key, Count: e.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// KeyCount pairs a hashed key with a count.
type KeyCount struct {
	Key   uint64
	Count uint64
}

// SizeBytes returns the summary's serialized size (== len(Encode())), the
// quantity storage quotas charge — identical semantics to every other
// synopsis type.
func (s *SpaceSaving) SizeBytes() int64 { return EnvelopeBytes + 16 + int64(len(s.counts))*24 }

// Encode serializes the summary: capacity, entry count, then (key, count,
// err) triples sorted by key so the encoding is deterministic despite map
// iteration order.
func (s *SpaceSaving) Encode() []byte {
	buf := appendEnvelope(make([]byte, 0, s.SizeBytes()), KindHeavyHitters)
	buf = storage.AppendU64(buf, uint64(s.capacity))
	buf = storage.AppendU64(buf, uint64(len(s.counts)))
	keys := make([]uint64, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		e := s.counts[k]
		buf = storage.AppendU64(buf, k)
		buf = storage.AppendU64(buf, e.count)
		buf = storage.AppendU64(buf, e.err)
	}
	return buf
}

// DecodeSpaceSaving reverses Encode.
func DecodeSpaceSaving(b []byte) (*SpaceSaving, error) {
	r, err := envelopePayload(b, KindHeavyHitters)
	if err != nil {
		return nil, err
	}
	capacity, err := r.U64()
	if err != nil {
		return nil, err
	}
	n, err := r.U64()
	if err != nil {
		return nil, err
	}
	if capacity < 1 || capacity > 1<<26 || n > capacity || r.Remaining() < int(24*n) {
		return nil, fmt.Errorf("synopses: corrupt SpaceSaving header (cap=%d n=%d, %d payload bytes)", capacity, n, r.Remaining())
	}
	// Size the map from the actual entry count, not the configured
	// capacity: a crafted header must not drive a huge preallocation.
	s := &SpaceSaving{capacity: int(capacity), counts: make(map[uint64]ssEntry, n)}
	for i := uint64(0); i < n; i++ {
		k, err := r.U64()
		if err != nil {
			return nil, err
		}
		cnt, err := r.U64()
		if err != nil {
			return nil, err
		}
		e, err := r.U64()
		if err != nil {
			return nil, err
		}
		if _, dup := s.counts[k]; dup {
			return nil, fmt.Errorf("synopses: corrupt SpaceSaving payload: duplicate key %d", k)
		}
		s.counts[k] = ssEntry{count: cnt, err: e}
	}
	return s, nil
}

// KeyCounter is the per-key counting interface the distinct sampler draws
// on. Exact (map-based) counting is used in tests and small builds; the
// sketch-backed counters bound memory like the paper's implementation.
type KeyCounter interface {
	// Inc records one more occurrence of key and returns the updated count
	// estimate (may overestimate, never underestimates for CM; SpaceSaving
	// overestimates for retained keys).
	Inc(key uint64) uint64
	// SizeBytes reports memory charged to the synopsis build.
	SizeBytes() int64
}

// ExactCounter counts keys exactly in a map.
type ExactCounter struct{ m map[uint64]uint64 }

// NewExactCounter returns an empty exact counter.
func NewExactCounter() *ExactCounter { return &ExactCounter{m: make(map[uint64]uint64)} }

// Inc implements KeyCounter.
func (c *ExactCounter) Inc(key uint64) uint64 {
	c.m[key]++
	return c.m[key]
}

// SizeBytes implements KeyCounter.
func (c *ExactCounter) SizeBytes() int64 { return int64(len(c.m))*16 + 8 }

// CMCounter counts keys in a count-min sketch: constant space, counts may
// overestimate under heavy collision load.
type CMCounter struct{ s *CMSketch }

// NewCMCounter returns a CM-backed counter with the given geometry.
func NewCMCounter(w, d int, seed uint64) *CMCounter {
	return &CMCounter{s: NewCMSketchWD(w, d, seed)}
}

// Inc implements KeyCounter.
func (c *CMCounter) Inc(key uint64) uint64 {
	c.s.Add(key, 1)
	return uint64(c.s.Estimate(key))
}

// SizeBytes implements KeyCounter.
func (c *CMCounter) SizeBytes() int64 { return c.s.SizeBytes() }
