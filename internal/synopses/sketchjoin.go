package synopses

import (
	"fmt"

	"github.com/tasterdb/taster/internal/storage"
)

// SketchJoin is the paper's sketch-join synopsis (§II): a count-min sketch
// built on the relation over which the aggregation takes place, keyed by the
// join key, holding both the tuple count and the running aggregate per key.
// At query time it is probed like the hash side of a hash join: for each
// probe-side row, the sketch yields the estimated COUNT and SUM contribution
// of all matching build-side tuples. Its few-MB footprint is what makes it
// "ideal for materialization and re-use" per the paper.
type SketchJoin struct {
	Count   *CMSketch // per-key tuple counts
	Sum     *CMSketch // per-key sums of the aggregate column (0 if none)
	KeyCols []string  // build-side join column names
	AggCol  string    // build-side aggregate column name ("" for COUNT-only)
	seed    uint64
}

// NewSketchJoin returns an empty sketch-join synopsis with the given CM
// geometry (shared by the count and sum planes).
func NewSketchJoin(eps, delta float64, keyCols []string, aggCol string, seed uint64) *SketchJoin {
	return &SketchJoin{
		Count:   NewCMSketch(eps, delta, seed),
		Sum:     NewCMSketch(eps, delta, seed^0xabad1dea),
		KeyCols: append([]string(nil), keyCols...),
		AggCol:  aggCol,
		seed:    seed,
	}
}

// NewSketchJoinWD returns an empty sketch-join with explicit width/depth —
// used when the planner sizes the sketch from the build side's distinct key
// count so that point-query collisions stay rare.
func NewSketchJoinWD(w, d int, keyCols []string, aggCol string, seed uint64) *SketchJoin {
	return &SketchJoin{
		Count:   NewCMSketchWD(w, d, seed),
		Sum:     NewCMSketchWD(w, d, seed^0xabad1dea),
		KeyCols: append([]string(nil), keyCols...),
		AggCol:  aggCol,
		seed:    seed,
	}
}

// Seed returns the hash seed used for key hashing; probe-side key hashing
// must use the same seed.
func (sj *SketchJoin) Seed() uint64 { return sj.seed }

// AddRow folds row i of the build side into the sketch. keyIdxs locate the
// join columns; aggIdx locates the aggregate column (-1 for COUNT-only).
// Weighted build-side rows (sampled inputs) scale both planes by weight.
func (sj *SketchJoin) AddRow(vecs []*storage.Vector, keyIdxs []int, aggIdx, i int, weight float64) {
	key := RowKey(vecs, keyIdxs, i, sj.seed)
	sj.Count.Add(key, weight)
	if aggIdx >= 0 {
		sj.Sum.Add(key, vecs[aggIdx].Float(i)*weight)
	}
}

// EstimateKey returns the estimated (count, sum) of build-side tuples whose
// join key hashes to key.
func (sj *SketchJoin) EstimateKey(key uint64) (count, sum float64) {
	return sj.Count.Estimate(key), sj.Sum.Estimate(key)
}

// Estimate computes the key for row i of probe-side vectors and returns the
// estimated (count, sum).
func (sj *SketchJoin) Estimate(vecs []*storage.Vector, keyIdxs []int, i int) (count, sum float64) {
	key := RowKey(vecs, keyIdxs, i, sj.seed)
	return sj.EstimateKey(key)
}

// Merge combines two partition-local sketch-joins (pair-wise addition of the
// planes, paper §II).
func (sj *SketchJoin) Merge(o *SketchJoin) error {
	if sj.AggCol != o.AggCol || len(sj.KeyCols) != len(o.KeyCols) {
		return fmt.Errorf("synopses: merging sketch-joins over different definitions")
	}
	if err := sj.Count.Merge(o.Count); err != nil {
		return err
	}
	return sj.Sum.Merge(o.Sum)
}

// SizeBytes returns the serialized footprint (== len(Encode())) charged to
// storage quotas: envelope + seed + agg column + key columns + the two
// nested envelope-free CM planes.
func (sj *SketchJoin) SizeBytes() int64 {
	n := int64(EnvelopeBytes) + 8 + 4 + int64(len(sj.AggCol)) + 4
	for _, c := range sj.KeyCols {
		n += 4 + int64(len(c))
	}
	n += sj.Count.payloadBytes() + sj.Sum.payloadBytes()
	return n
}

// Encode serializes the sketch-join: seed, aggregate column, key columns,
// then the count and sum CM planes (envelope-free payloads, back to back).
func (sj *SketchJoin) Encode() []byte {
	buf := appendEnvelope(make([]byte, 0, sj.SizeBytes()), KindSketchJoin)
	buf = storage.AppendU64(buf, sj.seed)
	buf = storage.AppendStr(buf, sj.AggCol)
	buf = storage.AppendU32(buf, uint32(len(sj.KeyCols)))
	for _, c := range sj.KeyCols {
		buf = storage.AppendStr(buf, c)
	}
	buf = sj.Count.appendPayload(buf)
	return sj.Sum.appendPayload(buf)
}

// DecodeSketchJoin reverses Encode.
func DecodeSketchJoin(b []byte) (*SketchJoin, error) {
	r, err := envelopePayload(b, KindSketchJoin)
	if err != nil {
		return nil, err
	}
	seed, err := r.U64()
	if err != nil {
		return nil, err
	}
	aggCol, err := r.Str()
	if err != nil {
		return nil, err
	}
	nKeys, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int(nKeys) > r.Remaining() {
		return nil, fmt.Errorf("synopses: corrupt sketch-join key count %d", nKeys)
	}
	keys := make([]string, nKeys)
	for i := range keys {
		if keys[i], err = r.Str(); err != nil {
			return nil, err
		}
	}
	count, err := decodeCMPayload(r)
	if err != nil {
		return nil, err
	}
	sum, err := decodeCMPayload(r)
	if err != nil {
		return nil, err
	}
	return &SketchJoin{Count: count, Sum: sum, KeyCols: keys, AggCol: aggCol, seed: seed}, nil
}

// BuildSketchJoin streams an entire table into a new sketch-join synopsis —
// the offline/byproduct materialization path.
func BuildSketchJoin(tbl *storage.Table, keyCols []string, aggCol string, eps, delta float64, seed uint64) (*SketchJoin, error) {
	keyIdxs := make([]int, 0, len(keyCols))
	for _, c := range keyCols {
		i := tbl.Schema().Index(c)
		if i < 0 {
			return nil, fmt.Errorf("synopses: sketch-join: unknown key column %q", c)
		}
		keyIdxs = append(keyIdxs, i)
	}
	aggIdx := -1
	if aggCol != "" {
		aggIdx = tbl.Schema().Index(aggCol)
		if aggIdx < 0 {
			return nil, fmt.Errorf("synopses: sketch-join: unknown aggregate column %q", aggCol)
		}
	}
	sj := NewSketchJoin(eps, delta, keyCols, aggCol, seed)
	for p := 0; p < tbl.Partitions(); p++ {
		for _, b := range tbl.Scan(p, storage.BatchSize) {
			for i := 0; i < b.Len(); i++ {
				sj.AddRow(b.Vecs, keyIdxs, aggIdx, i, 1)
			}
		}
	}
	return sj, nil
}
