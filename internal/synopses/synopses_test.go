package synopses

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tasterdb/taster/internal/storage"
)

func TestCMSketchExactWhenSparse(t *testing.T) {
	s := NewCMSketchWD(1024, 4, 42)
	for k := uint64(0); k < 50; k++ {
		s.Add(k, float64(k+1))
	}
	for k := uint64(0); k < 50; k++ {
		if got := s.Estimate(k); got != float64(k+1) {
			t.Fatalf("estimate(%d) = %v, want %v", k, got, k+1)
		}
	}
	if s.N() != 50*51/2 {
		t.Fatalf("N = %v", s.N())
	}
}

func TestCMSketchNeverUnderestimates(t *testing.T) {
	s := NewCMSketchWD(64, 4, 7)
	truth := make(map[uint64]float64)
	r := newRng(99)
	for i := 0; i < 20000; i++ {
		k := uint64(r.next() * 500)
		s.Add(k, 1)
		truth[k]++
	}
	for k, f := range truth {
		if est := s.Estimate(k); est < f {
			t.Fatalf("CM underestimated key %d: est=%v true=%v", k, est, f)
		}
	}
}

func TestCMSketchErrorBound(t *testing.T) {
	// With w = ⌈e/ε⌉ the additive error should be ≤ εN w.h.p.
	eps, delta := 0.01, 0.01
	s := NewCMSketch(eps, delta, 3)
	truth := make(map[uint64]float64)
	r := newRng(5)
	for i := 0; i < 100000; i++ {
		k := uint64(r.next() * 10000)
		s.Add(k, 1)
		truth[k]++
	}
	bound := eps * s.N()
	violations := 0
	for k, f := range truth {
		if s.Estimate(k)-f > bound {
			violations++
		}
	}
	if frac := float64(violations) / float64(len(truth)); frac > delta {
		t.Fatalf("error bound violated for %.2f%% of keys (> δ=%v)", 100*frac, delta)
	}
	if s.ErrorBound() <= 0 {
		t.Fatal("ErrorBound must be positive after inserts")
	}
}

func TestCMSketchMerge(t *testing.T) {
	a := NewCMSketchWD(256, 3, 11)
	b := NewCMSketchWD(256, 3, 11)
	whole := NewCMSketchWD(256, 3, 11)
	for k := uint64(0); k < 100; k++ {
		a.Add(k, 1)
		b.Add(k, 2)
		whole.Add(k, 3)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if a.Estimate(k) != whole.Estimate(k) {
			t.Fatalf("merged estimate differs at %d", k)
		}
	}
	c := NewCMSketchWD(128, 3, 11)
	if err := a.Merge(c); err == nil {
		t.Fatal("want geometry mismatch error")
	}
	d := NewCMSketchWD(256, 3, 12)
	if err := a.Merge(d); err == nil {
		t.Fatal("want seed mismatch error")
	}
}

func TestCMSketchEncodeDecode(t *testing.T) {
	s := NewCMSketchWD(32, 3, 9)
	for k := uint64(0); k < 500; k++ {
		s.Add(k, float64(k%7))
	}
	enc := s.Encode()
	if int64(len(enc)) != s.SizeBytes() {
		t.Fatalf("encoded size %d != SizeBytes %d", len(enc), s.SizeBytes())
	}
	got, err := DecodeCMSketch(enc)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		if got.Estimate(k) != s.Estimate(k) {
			t.Fatalf("decode mismatch at key %d", k)
		}
	}
	if _, err := DecodeCMSketch(enc[:10]); err == nil {
		t.Fatal("want error for truncated payload")
	}
	enc[0] = 0xff // corrupt width
	if _, err := DecodeCMSketch(enc); err == nil {
		t.Fatal("want error for corrupt header")
	}
}

// Property: CM estimates dominate true counts for arbitrary key multisets.
func TestCMSketchDominanceQuick(t *testing.T) {
	f := func(keys []uint8) bool {
		s := NewCMSketchWD(64, 3, 1)
		truth := map[uint64]float64{}
		for _, k := range keys {
			s.Add(uint64(k), 1)
			truth[uint64(k)]++
		}
		for k, v := range truth {
			if s.Estimate(k) < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 0.01, 21)
	for k := uint64(0); k < 1000; k++ {
		b.Add(k * 3)
	}
	for k := uint64(0); k < 1000; k++ {
		if !b.MayContain(k * 3) {
			t.Fatalf("false negative for %d", k*3)
		}
	}
	fp := 0
	for k := uint64(0); k < 10000; k++ {
		if b.MayContain(1<<40 + k) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
	if b.FalsePositiveRate() <= 0 || b.FalsePositiveRate() >= 1 {
		t.Fatalf("FP estimate out of range: %v", b.FalsePositiveRate())
	}
}

func TestBloomMerge(t *testing.T) {
	a := NewBloom(100, 0.01, 5)
	b := NewBloom(100, 0.01, 5)
	a.Add(1)
	b.Add(2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.MayContain(1) || !a.MayContain(2) {
		t.Fatal("merge lost elements")
	}
	c := NewBloom(100, 0.01, 6)
	if err := a.Merge(c); err == nil {
		t.Fatal("want seed mismatch error")
	}
	if a.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}

func TestFMEstimate(t *testing.T) {
	for _, n := range []int{1000, 10000} {
		f := NewFM(256, 77)
		for k := 0; k < n; k++ {
			f.Add(uint64(k) * 2654435761)
		}
		est := f.Estimate()
		if est < float64(n)*0.6 || est > float64(n)*1.6 {
			t.Fatalf("FM estimate for %d distinct = %v (outside ±60%%)", n, est)
		}
		// Duplicates must not change the estimate.
		before := f.Estimate()
		for k := 0; k < n; k++ {
			f.Add(uint64(k) * 2654435761)
		}
		if f.Estimate() != before {
			t.Fatal("FM must be insensitive to duplicates")
		}
	}
}

func TestFMMerge(t *testing.T) {
	a, b, whole := NewFM(128, 3), NewFM(128, 3), NewFM(128, 3)
	for k := uint64(0); k < 5000; k++ {
		whole.Add(k)
		if k%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatalf("merged FM estimate %v != whole %v", a.Estimate(), whole.Estimate())
	}
	if err := a.Merge(NewFM(64, 3)); err == nil {
		t.Fatal("want geometry mismatch error")
	}
}

func TestAMSF2(t *testing.T) {
	a := NewAMS(256, 7, 13)
	// 100 keys × frequency 10 → F2 = 100·10² = 10000.
	for k := uint64(0); k < 100; k++ {
		for i := 0; i < 10; i++ {
			a.Add(k, 1)
		}
	}
	est := a.F2()
	if est < 5000 || est > 20000 {
		t.Fatalf("F2 estimate = %v, want ≈10000", est)
	}
	if a.RelativeStdError() <= 0 {
		t.Fatal("RelativeStdError")
	}
}

func TestAMSJoinSize(t *testing.T) {
	// R has keys 0..99 each ×5; S has keys 0..99 each ×3 → |R⋈S| = 100·15.
	r := NewAMS(512, 7, 99)
	s := NewAMS(512, 7, 99)
	for k := uint64(0); k < 100; k++ {
		for i := 0; i < 5; i++ {
			r.Add(k, 1)
		}
		for i := 0; i < 3; i++ {
			s.Add(k, 1)
		}
	}
	est, err := r.JoinSize(s)
	if err != nil {
		t.Fatal(err)
	}
	if est < 750 || est > 3000 {
		t.Fatalf("join size estimate = %v, want ≈1500", est)
	}
	if _, err := r.JoinSize(NewAMS(512, 7, 98)); err == nil {
		t.Fatal("want seed mismatch error")
	}
	// Merge: two halves of R's stream must equal whole.
	h1, h2 := NewAMS(64, 3, 4), NewAMS(64, 3, 4)
	whole := NewAMS(64, 3, 4)
	for k := uint64(0); k < 200; k++ {
		whole.Add(k, 1)
		if k < 100 {
			h1.Add(k, 1)
		} else {
			h2.Add(k, 1)
		}
	}
	if err := h1.Merge(h2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1.F2()-whole.F2()) > 1e-9 {
		t.Fatal("AMS merge must equal whole-stream sketch")
	}
}

func TestSpaceSaving(t *testing.T) {
	s := NewSpaceSaving(10)
	// Heavy key 1 appears 100 times among noise.
	for i := 0; i < 100; i++ {
		s.Inc(1)
	}
	for k := uint64(100); k < 150; k++ {
		s.Inc(k)
	}
	if c := s.Count(1); c < 100 {
		t.Fatalf("heavy hitter count %d < 100 (SpaceSaving must not underestimate retained keys)", c)
	}
	top := s.Top(1)
	if len(top) != 1 || top[0].Key != 1 {
		t.Fatalf("top-1 = %+v, want key 1", top)
	}
	if s.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}

func TestExactAndCMCounters(t *testing.T) {
	for _, c := range []KeyCounter{NewExactCounter(), NewCMCounter(1024, 4, 5)} {
		for i := 0; i < 5; i++ {
			got := c.Inc(42)
			if got < uint64(i+1) {
				t.Fatalf("count after %d incs = %d", i+1, got)
			}
		}
		if c.SizeBytes() <= 0 {
			t.Fatal("SizeBytes")
		}
	}
}

func sampleInput(rows int, groups int64) *storage.Table {
	b := storage.NewBuilder("src", storage.Schema{
		{Name: "src.g", Typ: storage.Int64},
		{Name: "src.v", Typ: storage.Float64},
	})
	for i := 0; i < rows; i++ {
		b.Int(0, int64(i)%groups)
		b.Float(1, float64(i))
	}
	return b.Build(4)
}

func TestUniformSamplerHTSum(t *testing.T) {
	tbl := sampleInput(50000, 10)
	smp := NewUniformSampler(0.1, 123)
	s := BuildSampleFromTable("s", tbl, smp, nil)
	if s.Strategy != "uniform" || s.P != 0.1 {
		t.Fatalf("sample meta: %+v", s)
	}
	// HT estimate of SUM(v) should be within a few percent of the truth.
	truth := float64(50000) * float64(49999) / 2
	wi := s.Rows.Schema().Index(WeightCol)
	vi := s.Rows.Schema().Index("src.v")
	est := 0.0
	for p := 0; p < s.Rows.Partitions(); p++ {
		for _, b := range s.Rows.Scan(p, storage.BatchSize) {
			for i := 0; i < b.Len(); i++ {
				est += b.Vecs[vi].F64[i] * b.Vecs[wi].F64[i]
			}
		}
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.05 {
		t.Fatalf("HT sum rel error %.3f > 5%%", rel)
	}
	// Sample size ≈ p·n.
	if n := s.Rows.NumRows(); n < 4000 || n > 6000 {
		t.Fatalf("sample rows = %d, want ≈5000", n)
	}
	if s.SourceRows != 50000 {
		t.Fatalf("SourceRows = %d", s.SourceRows)
	}
}

func TestDistinctSamplerGuaranteesGroups(t *testing.T) {
	// 100 groups; 99 tiny (5 rows), 1 huge. Uniform sampling at 1% would
	// miss most tiny groups; the distinct sampler must keep ≥min(δ,size)
	// rows of every group.
	b := storage.NewBuilder("sk", storage.Schema{
		{Name: "sk.g", Typ: storage.Int64},
		{Name: "sk.v", Typ: storage.Float64},
	})
	for g := int64(1); g < 100; g++ {
		for i := 0; i < 5; i++ {
			b.Int(0, g)
			b.Float(1, 1)
		}
	}
	for i := 0; i < 100000; i++ {
		b.Int(0, 0)
		b.Float(1, 1)
	}
	tbl := b.Build(1)
	delta := 3
	smp := NewDistinctSampler(0.01, delta, []int{0}, 7)
	s := BuildSampleFromTable("d", tbl, smp, []string{"sk.g"})
	counts := map[int64]int{}
	gi := s.Rows.Schema().Index("sk.g")
	for p := 0; p < s.Rows.Partitions(); p++ {
		for _, batch := range s.Rows.Scan(p, storage.BatchSize) {
			for i := 0; i < batch.Len(); i++ {
				counts[batch.Vecs[gi].I64[i]]++
			}
		}
	}
	for g := int64(0); g < 100; g++ {
		if counts[g] < delta {
			t.Fatalf("group %d has %d rows, want ≥ δ=%d", g, counts[g], delta)
		}
	}
	// The huge group must have been thinned: far fewer than 100000 rows.
	if counts[0] > 5000 {
		t.Fatalf("huge group kept %d rows; sampler not thinning", counts[0])
	}
}

func TestDistinctSamplerWeights(t *testing.T) {
	tbl := sampleInput(20000, 4)
	smp := NewDistinctSampler(0.05, 10, []int{0}, 3)
	s := BuildSampleFromTable("d", tbl, smp, []string{"src.g"})
	// HT COUNT estimate = Σ weights ≈ true row count.
	wi := s.Rows.Schema().Index(WeightCol)
	est := 0.0
	for p := 0; p < s.Rows.Partitions(); p++ {
		for _, b := range s.Rows.Scan(p, storage.BatchSize) {
			for i := 0; i < b.Len(); i++ {
				w := b.Vecs[wi].F64[i]
				if w != 1 && math.Abs(w-20) > 1e-9 {
					t.Fatalf("weight %v not in {1, 1/p}", w)
				}
				est += w
			}
		}
	}
	if rel := math.Abs(est-20000) / 20000; rel > 0.1 {
		t.Fatalf("HT count rel error %.3f > 10%%", rel)
	}
}

func TestDistinctSamplerSketchBacked(t *testing.T) {
	tbl := sampleInput(10000, 50)
	smp := NewDistinctSamplerSketch(0.05, 5, []int{0}, 2048, 4, 3)
	s := BuildSampleFromTable("d", tbl, smp, []string{"src.g"})
	if s.Rows.NumRows() == 0 {
		t.Fatal("sketch-backed distinct sampler produced empty sample")
	}
	if smp.MemBytes() <= 0 {
		t.Fatal("MemBytes")
	}
	// CM overcounting can only reduce frequency-check passes, so the sample
	// can be at most slightly smaller than the exact-counter sample.
	exact := BuildSampleFromTable("e", tbl, NewDistinctSampler(0.05, 5, []int{0}, 3), []string{"src.g"})
	if s.Rows.NumRows() > exact.Rows.NumRows()*2 {
		t.Fatalf("sketch-backed sample unexpectedly larger: %d vs %d", s.Rows.NumRows(), exact.Rows.NumRows())
	}
}

func TestPartitionDelta(t *testing.T) {
	if PartitionDelta(100, 1) != 100 {
		t.Fatal("D=1 keeps δ")
	}
	if got := PartitionDelta(100, 4); got != 50 {
		t.Fatalf("PartitionDelta(100,4) = %d, want 2·100/4 = 50", got)
	}
	if got := PartitionDelta(10, 3); got != 7 {
		t.Fatalf("PartitionDelta(10,3) = %d, want ⌈20/3⌉ = 7", got)
	}
}

func TestStratifiedSample(t *testing.T) {
	tbl := sampleInput(10000, 10) // 10 groups × 1000 rows
	s, err := StratifiedSample("st", tbl, []string{"src.g"}, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	gi := s.Rows.Schema().Index("src.g")
	wi := s.Rows.Schema().Index(WeightCol)
	for p := 0; p < s.Rows.Partitions(); p++ {
		for _, b := range s.Rows.Scan(p, storage.BatchSize) {
			for i := 0; i < b.Len(); i++ {
				counts[b.Vecs[gi].I64[i]]++
				if w := b.Vecs[wi].F64[i]; math.Abs(w-20) > 1e-9 {
					t.Fatalf("stratified weight = %v, want n_g/cap = 20", w)
				}
			}
		}
	}
	for g := int64(0); g < 10; g++ {
		if counts[g] < 20 || counts[g] > 100 {
			t.Fatalf("group %d: %d rows, want ≈cap=50", g, counts[g])
		}
	}
	if _, err := StratifiedSample("st", tbl, []string{"nope"}, 50, 7); err == nil {
		t.Fatal("want unknown column error")
	}
}

func TestSketchJoinEstimates(t *testing.T) {
	// Build side: key k ∈ [0,100) appears k+1 times with value 2.0 each.
	b := storage.NewBuilder("f", storage.Schema{
		{Name: "f.k", Typ: storage.Int64},
		{Name: "f.v", Typ: storage.Float64},
	})
	for k := int64(0); k < 100; k++ {
		for i := int64(0); i <= k; i++ {
			b.Int(0, k)
			b.Float(1, 2)
		}
	}
	tbl := b.Build(2)
	sj, err := BuildSketchJoin(tbl, []string{"f.k"}, "f.v", 0.001, 0.01, 17)
	if err != nil {
		t.Fatal(err)
	}
	probe := storage.NewBatch(storage.Schema{{Name: "p.k", Typ: storage.Int64}}, 1)
	probe.Vecs[0].Append(storage.IntValue(42))
	cnt, sum := sj.Estimate(probe.Vecs, []int{0}, 0)
	if cnt < 43 || cnt > 43*1.1 {
		t.Fatalf("count estimate = %v, want ≈43", cnt)
	}
	if sum < 86 || sum > 86*1.1 {
		t.Fatalf("sum estimate = %v, want ≈86", sum)
	}
	if sj.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
	if _, err := BuildSketchJoin(tbl, []string{"nope"}, "f.v", 0.01, 0.01, 1); err == nil {
		t.Fatal("want unknown key column error")
	}
	if _, err := BuildSketchJoin(tbl, []string{"f.k"}, "nope", 0.01, 0.01, 1); err == nil {
		t.Fatal("want unknown agg column error")
	}
}

func TestSketchJoinMerge(t *testing.T) {
	mk := func() *SketchJoin { return NewSketchJoin(0.01, 0.01, []string{"k"}, "v", 9) }
	a, b, whole := mk(), mk(), mk()
	vec := []*storage.Vector{
		{Typ: storage.Int64, I64: []int64{7}},
		{Typ: storage.Float64, F64: []float64{3}},
	}
	a.AddRow(vec, []int{0}, 1, 0, 1)
	b.AddRow(vec, []int{0}, 1, 0, 1)
	whole.AddRow(vec, []int{0}, 1, 0, 1)
	whole.AddRow(vec, []int{0}, 1, 0, 1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	ca, sa := a.Estimate(vec, []int{0}, 0)
	cw, sw := whole.Estimate(vec, []int{0}, 0)
	if ca != cw || sa != sw {
		t.Fatalf("merged (%v,%v) != whole (%v,%v)", ca, sa, cw, sw)
	}
}

func TestScrambleIsPermutation(t *testing.T) {
	tbl := sampleInput(1000, 10)
	sc := Scramble(tbl, 5)
	if sc.NumRows() != tbl.NumRows() {
		t.Fatalf("scramble changed row count: %d", sc.NumRows())
	}
	sum := func(t2 *storage.Table) float64 {
		vi := t2.Schema().Index("src.v")
		total := 0.0
		for p := 0; p < t2.Partitions(); p++ {
			for _, b := range t2.Scan(p, storage.BatchSize) {
				for i := 0; i < b.Len(); i++ {
					total += b.Vecs[vi].F64[i]
				}
			}
		}
		return total
	}
	if sum(sc) != sum(tbl) {
		t.Fatal("scramble must preserve multiset of rows")
	}
	// Must actually move rows around.
	if sc.Column(1).F64[0] == tbl.Column(1).F64[0] &&
		sc.Column(1).F64[1] == tbl.Column(1).F64[1] &&
		sc.Column(1).F64[2] == tbl.Column(1).F64[2] {
		t.Fatal("scramble left prefix unchanged (suspicious)")
	}
}

func TestVariationalSample(t *testing.T) {
	tbl := sampleInput(20000, 10)
	s := VariationalSample("vs", Scramble(tbl, 1), 0.1, 2)
	if s.Strategy != "variational" {
		t.Fatalf("strategy = %q", s.Strategy)
	}
	si := s.Rows.Schema().Index(SubsampleCol)
	if si < 0 {
		t.Fatal("missing subsample column")
	}
	subs := map[int64]int{}
	for p := 0; p < s.Rows.Partitions(); p++ {
		for _, b := range s.Rows.Scan(p, storage.BatchSize) {
			for i := 0; i < b.Len(); i++ {
				subs[b.Vecs[si].I64[i]]++
			}
		}
	}
	// ns ≈ √2000 ≈ 45 subsamples.
	if len(subs) < 20 || len(subs) > 60 {
		t.Fatalf("subsample count = %d, want ≈45", len(subs))
	}
}

func TestVariationalVariance(t *testing.T) {
	// Identical subsample estimates → zero variance.
	if v := VariationalVariance([]float64{5, 5, 5}, 10, 100); v != 0 {
		t.Fatalf("variance of constants = %v", v)
	}
	v := VariationalVariance([]float64{4, 6}, 10, 100)
	if math.Abs(v-0.2) > 1e-12 { // Var=2, scaled by 10/100
		t.Fatalf("variance = %v, want 0.2", v)
	}
	if VariationalVariance([]float64{1}, 10, 100) != 0 {
		t.Fatal("single estimate must yield 0")
	}
}

func TestRowKeyComposite(t *testing.T) {
	vecs := []*storage.Vector{
		{Typ: storage.Int64, I64: []int64{1, 1, 2}},
		{Typ: storage.String, Str: []string{"a", "b", "a"}},
	}
	k0 := RowKey(vecs, []int{0, 1}, 0, 9)
	k1 := RowKey(vecs, []int{0, 1}, 1, 9)
	k2 := RowKey(vecs, []int{0, 1}, 2, 9)
	if k0 == k1 || k0 == k2 || k1 == k2 {
		t.Fatal("composite keys must distinguish rows")
	}
	// Same logical values hash equal.
	vecs2 := []*storage.Vector{
		{Typ: storage.Int64, I64: []int64{1}},
		{Typ: storage.String, Str: []string{"a"}},
	}
	if RowKey(vecs2, []int{0, 1}, 0, 9) != k0 {
		t.Fatal("equal rows must produce equal keys")
	}
}

func TestHashValueTyped(t *testing.T) {
	if HashValue(storage.IntValue(5), 1) == HashValue(storage.FloatValue(5), 1) {
		t.Fatal("int and float keys must hash differently")
	}
	if HashValue(storage.BoolValue(true), 1) == HashValue(storage.BoolValue(false), 1) {
		t.Fatal("bool values must hash differently")
	}
	if HashValue(storage.StringValue("x"), 1) == HashValue(storage.StringValue("x"), 2) {
		t.Fatal("seed must matter")
	}
}

// Property: sampler weights are always either 1 (frequency pass) or 1/p.
func TestSamplerWeightsQuick(t *testing.T) {
	f := func(seed uint16) bool {
		tbl := sampleInput(2000, 7)
		smp := NewDistinctSampler(0.2, 2, []int{0}, uint64(seed))
		s := BuildSampleFromTable("q", tbl, smp, nil)
		wi := s.Rows.Schema().Index(WeightCol)
		for p := 0; p < s.Rows.Partitions(); p++ {
			for _, b := range s.Rows.Scan(p, storage.BatchSize) {
				for i := 0; i < b.Len(); i++ {
					w := b.Vecs[wi].F64[i]
					if w != 1 && math.Abs(w-5) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
