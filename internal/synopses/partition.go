package synopses

import (
	"fmt"
	"math"

	"github.com/tasterdb/taster/internal/storage"
)

// Per-partition mini-samples.
//
// A partitioned table carries one uniform Bernoulli mini-sample per
// partition, built with a *chunk-aligned* RNG discipline: the decision for
// global row r is draw number r mod ChunkRows of the stream
// SplitSeed(seed, r/ChunkRows). Because the draw for a row depends only on
// the row's global position — never on which partition holds it or where
// a build started — per-partition samples merged in partition order are
// bit-identical to a whole-table sample at the same seed, for *any*
// partition layout. That identity is what lets the planner answer a
// cross-partition query from merged mini-samples with exactly the estimate
// a monolithic engine would produce (and what the differential harness
// asserts).
//
// The discipline works for uniform sampling only: a uniform sampler draws
// exactly once per row, so the stream position is a pure function of the
// row index and the generator can be seeked (the SplitMix64 counter state
// advances by a fixed increment per draw). Distinct samplers draw
// data-dependently and stay whole-table.

// ChunkRows is the fixed chunk width (in global rows) of the chunk-aligned
// RNG discipline. It deliberately equals the executor's default morsel size
// but is an independent constant: changing morsel geometry must not change
// sample contents.
const ChunkRows = 4096

// skip advances the generator by n draws without consuming them: the
// SplitMix64 counter state moves by a fixed increment per draw, so seeking
// is one multiply. This is what lets a build start mid-chunk (a partition
// boundary rarely lands on a chunk boundary) and still produce the draws a
// from-the-start build would.
func (r *rng) skip(n uint64) { r.state += n * 0x9e3779b97f4a7c15 }

// BuildUniformRangeSample builds a uniform Bernoulli sample of global rows
// [lo, hi) of tbl under the chunk-aligned discipline. Seed is the
// per-table sampling seed, shared by every partition's build.
func BuildUniformRangeSample(name string, tbl *storage.Table, lo, hi int, p float64, seed uint64, stratCols []string) *Sample {
	if p <= 0 {
		p = 0.01
	}
	if p > 1 {
		p = 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi > tbl.NumRows() {
		hi = tbl.NumRows()
	}
	sb := NewSampleBuilder(name, tbl.Schema())
	var rnd *rng
	chunk := -1
	g := lo
	for _, batch := range tbl.ScanRange(lo, hi, storage.BatchSize) {
		for i := 0; i < batch.Len(); i++ {
			if c := g / ChunkRows; c != chunk {
				rnd = newRng(SplitSeed(seed, uint64(c)))
				rnd.skip(uint64(g - c*ChunkRows))
				chunk = c
			}
			if rnd.next() < p {
				sb.Append(batch.Vecs, i, 1/p)
			}
			g++
		}
	}
	s := &Sample{
		Rows:       sb.b.Build(1),
		Strategy:   "uniform",
		P:          p,
		SourceRows: hi - lo,
		Seed:       seed,
		StratCols:  append([]string(nil), stratCols...),
	}
	return s
}

// BuildPartitionSample builds the mini-sample of partition part of tbl —
// BuildUniformRangeSample over the partition's global row range.
func BuildPartitionSample(name string, tbl *storage.Table, part int, p float64, seed uint64, stratCols []string) *Sample {
	lo, hi := tbl.PartitionRange(part)
	return BuildUniformRangeSample(name, tbl, lo, hi, p, seed, stratCols)
}

// PartitionedSample bundles the per-partition mini-samples of one table in
// partition order. It is itself a synopsis (kind 8 in the persist codec):
// the disk tier can spill or fault it as one record, and Merged answers
// whole-table queries.
type PartitionedSample struct {
	Table    string
	PartRows int // the table's per-partition row capacity when built
	Parts    []*Sample
}

// Merged concatenates the per-partition samples, in partition order, into
// one whole-table sample. Under the chunk-aligned discipline the result is
// bit-identical to a sample built over the unpartitioned table.
func (ps *PartitionedSample) Merged(name string) (*Sample, error) {
	return MergeSamples(name, ps.Parts)
}

// SizeBytes returns the serialized size (== len(Encode())).
func (ps *PartitionedSample) SizeBytes() int64 {
	n := int64(EnvelopeBytes) + 4 + int64(len(ps.Table)) + 4 + 4
	for _, p := range ps.Parts {
		n += 4 + p.SizeBytes()
	}
	return n
}

// Encode serializes the partitioned sample: table metadata followed by each
// part's own self-describing record, length-prefixed.
func (ps *PartitionedSample) Encode() []byte {
	buf := appendEnvelope(make([]byte, 0, ps.SizeBytes()), KindPartitionedSample)
	buf = storage.AppendStr(buf, ps.Table)
	buf = storage.AppendU32(buf, uint32(ps.PartRows))
	buf = storage.AppendU32(buf, uint32(len(ps.Parts)))
	for _, p := range ps.Parts {
		enc := p.Encode()
		buf = storage.AppendU32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf
}

// DecodePartitionedSample reverses Encode.
func DecodePartitionedSample(b []byte) (*PartitionedSample, error) {
	r, err := envelopePayload(b, KindPartitionedSample)
	if err != nil {
		return nil, err
	}
	ps := &PartitionedSample{}
	if ps.Table, err = r.Str(); err != nil {
		return nil, err
	}
	pr, err := r.U32()
	if err != nil {
		return nil, err
	}
	ps.PartRows = int(pr)
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int(n) > r.Remaining() {
		return nil, fmt.Errorf("synopses: corrupt partitioned sample part count %d", n)
	}
	ps.Parts = make([]*Sample, n)
	for i := range ps.Parts {
		ln, err := r.U32()
		if err != nil {
			return nil, err
		}
		raw, err := r.Bytes(int(ln))
		if err != nil {
			return nil, err
		}
		if ps.Parts[i], err = DecodeSample(raw); err != nil {
			return nil, fmt.Errorf("synopses: partitioned sample part %d: %w", i, err)
		}
	}
	return ps, nil
}

// MergePartitionSamples is MergeSamples with the associativity guarantee
// spelled out: merging [a, b, c] equals merging [merge([a, b]), c] equals
// merging [a, merge([b, c])], because concatenation in part order and
// SourceRows addition are both associative. The fuzz target
// FuzzMergePartitionSamples holds this invariant over arbitrary splits.
func MergePartitionSamples(name string, parts []*Sample) (*Sample, error) {
	return MergeSamples(name, parts)
}

// estimatorTotal is the Horvitz-Thompson weighted-sum estimate a sample
// yields for SUM(col) over its source relation — the scalar the
// differential harness compares between merged per-partition samples and
// whole-table samples. Exposed for tests.
func estimatorTotal(s *Sample, col string) (float64, error) {
	ci := s.Rows.Schema().Index(col)
	wi := s.Rows.Schema().Index(WeightCol)
	if ci < 0 || wi < 0 {
		return 0, fmt.Errorf("synopses: estimatorTotal: missing column %q or weight", col)
	}
	var total float64
	for p := 0; p < s.Rows.Partitions(); p++ {
		for _, b := range s.Rows.Scan(p, storage.BatchSize) {
			for i := 0; i < b.Len(); i++ {
				total += b.Vecs[ci].Float(i) * b.Vecs[wi].Float(i)
			}
		}
	}
	if math.IsNaN(total) {
		return 0, fmt.Errorf("synopses: estimatorTotal: NaN estimate")
	}
	return total, nil
}
