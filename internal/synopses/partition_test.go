package synopses

import (
	"math"
	"testing"

	"github.com/tasterdb/taster/internal/storage"
)

// The chunk-aligned sampling discipline's central claim: per-partition
// mini-samples merged in partition order are BYTE-identical to a
// whole-table sample at the same seed, for any partition layout. The
// differential harness in internal/core observes this through query
// results; these tests hold it at the synopsis layer where it is provable
// byte by byte.

// partEquivTable builds a deterministic fact-like table: int key, float
// measure, string dimension.
func partEquivTable(rows, parts int) *storage.Table {
	b := storage.NewBuilder("pe", storage.Schema{
		{Name: "pe.k", Typ: storage.Int64},
		{Name: "pe.v", Typ: storage.Float64},
		{Name: "pe.s", Typ: storage.String},
	})
	names := []string{"ae", "be", "ce", "de"}
	for i := 0; i < rows; i++ {
		b.Int(0, int64(i%97))
		b.Float(1, float64(i%13)+0.25)
		b.Str(2, names[i%len(names)])
	}
	return b.Build(parts)
}

// TestMergedPartitionSamplesEqualWholeTable: for several layouts — aligned,
// chunk-misaligned (prime partition sizes), single-partition — building one
// mini-sample per partition and merging in order reproduces the monolithic
// sample byte for byte, and therefore yields the identical
// Horvitz-Thompson estimate.
func TestMergedPartitionSamplesEqualWholeTable(t *testing.T) {
	const rows, seed, p = 10007, 42, 0.05
	base := partEquivTable(rows, 1)
	whole := BuildUniformRangeSample("pe_s", base, 0, rows, p, seed, []string{"pe.k"})
	wholeBytes := whole.Encode()
	wantTotal, err := estimatorTotal(whole, "pe.v")
	if err != nil {
		t.Fatal(err)
	}
	if whole.Rows.NumRows() == 0 {
		t.Fatal("whole-table sample is empty; equivalence is vacuous")
	}

	for _, partRows := range []int{389, 1000, ChunkRows, 3 * ChunkRows, rows} {
		tbl := base.Repartition(partRows)
		parts := make([]*Sample, tbl.Partitions())
		for i := range parts {
			parts[i] = BuildPartitionSample("pe_p", tbl, i, p, seed, []string{"pe.k"})
		}
		merged, err := MergePartitionSamples("pe_s", parts)
		if err != nil {
			t.Fatalf("partRows=%d: %v", partRows, err)
		}
		if got := merged.Encode(); string(got) != string(wholeBytes) {
			t.Fatalf("partRows=%d: merged sample differs from whole-table sample (%d vs %d bytes)",
				partRows, len(got), len(wholeBytes))
		}
		got, err := estimatorTotal(merged, "pe.v")
		if err != nil {
			t.Fatalf("partRows=%d: %v", partRows, err)
		}
		if math.Float64bits(got) != math.Float64bits(wantTotal) {
			t.Fatalf("partRows=%d: estimate %v != whole-table %v", partRows, got, wantTotal)
		}
	}
}

// FuzzMergePartitionSamples drives the equivalence over arbitrary tilings:
// any two cut points split [0, rows) into three ranges whose range-samples,
// merged in order, must be byte-identical to the whole-table sample — and
// the merge must be associative (merging a pre-merged prefix gives the same
// bytes). Also holds the validation edge: a SourceRows sum that would
// overflow int is rejected as corruption, never wrapped.
func FuzzMergePartitionSamples(f *testing.F) {
	f.Add(uint16(1000), uint64(7), uint16(50), uint16(300), uint16(700))
	f.Add(uint16(0), uint64(1), uint16(10), uint16(0), uint16(0))
	f.Add(uint16(2048), uint64(99), uint16(999), uint16(4095), uint16(1))
	f.Add(uint16(777), uint64(3), uint16(1), uint16(776), uint16(777))

	f.Fuzz(func(t *testing.T, nRows uint16, seed uint64, pMille, cutA, cutB uint16) {
		rows := int(nRows % 2049)
		p := float64(pMille%1000+1) / 1000
		a, b := int(cutA)%(rows+1), int(cutB)%(rows+1)
		if a > b {
			a, b = b, a
		}
		tbl := partEquivTable(rows, 1)
		whole := BuildUniformRangeSample("fz", tbl, 0, rows, p, seed, nil)

		s1 := BuildUniformRangeSample("fz1", tbl, 0, a, p, seed, nil)
		s2 := BuildUniformRangeSample("fz2", tbl, a, b, p, seed, nil)
		s3 := BuildUniformRangeSample("fz3", tbl, b, rows, p, seed, nil)

		flat, err := MergePartitionSamples("fz", []*Sample{s1, s2, s3})
		if err != nil {
			t.Fatalf("merge [a b c]: %v", err)
		}
		if string(flat.Encode()) != string(whole.Encode()) {
			t.Fatalf("rows=%d cuts=(%d,%d) p=%v: merged tiling differs from whole-table sample", rows, a, b, p)
		}

		pre, err := MergePartitionSamples("fz12", []*Sample{s1, s2})
		if err != nil {
			t.Fatalf("merge [a b]: %v", err)
		}
		nested, err := MergePartitionSamples("fz", []*Sample{pre, s3})
		if err != nil {
			t.Fatalf("merge [[a b] c]: %v", err)
		}
		if string(nested.Encode()) != string(flat.Encode()) {
			t.Fatalf("rows=%d cuts=(%d,%d): merge is not associative", rows, a, b)
		}

		// Overflow guard: only reachable when a later part contributes rows.
		if s3.SourceRows > 0 {
			huge := *s1
			huge.SourceRows = math.MaxInt
			if _, err := MergeSamples("fz", []*Sample{&huge, s3}); err == nil {
				t.Fatal("SourceRows overflow accepted")
			}
		}
	})
}
