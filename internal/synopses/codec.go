package synopses

import (
	"fmt"

	"github.com/tasterdb/taster/internal/storage"
)

// Versioned binary codec envelope shared by every synopsis type. Each
// synopsis's Encode produces a fully self-describing record:
//
//	[4]byte magic "TSYN" | u8 version | u8 kind | u16 reserved | payload
//
// The kind byte lets internal/persist sniff a stored payload and dispatch
// to the right decoder; the version byte gates format evolution (decoders
// reject versions they do not understand instead of misreading them).
// SizeBytes() of every synopsis equals len(Encode()) exactly — storage
// quotas charge what disk actually stores (asserted in internal/persist's
// codec tests).

// EnvelopeBytes is the fixed size of the codec envelope.
const EnvelopeBytes = 8

// CodecVersion is the current serialization format version. Version 2
// introduced the partition-aware table layout (per-partition row counts and
// epochs in the header) inside sample payloads.
const CodecVersion = 2

// Codec kind bytes identifying each synopsis type inside the envelope.
const (
	KindSample            byte = 1
	KindCMSketch          byte = 2
	KindAMS               byte = 3
	KindFM                byte = 4
	KindBloom             byte = 5
	KindHeavyHitters      byte = 6
	KindSketchJoin        byte = 7
	KindPartitionedSample byte = 8
)

var codecMagic = [4]byte{'T', 'S', 'Y', 'N'}

// appendEnvelope writes the codec header for the given kind.
func appendEnvelope(dst []byte, kind byte) []byte {
	dst = append(dst, codecMagic[:]...)
	return append(dst, CodecVersion, kind, 0, 0)
}

// EnvelopeKind returns the kind byte of an encoded synopsis after
// validating magic and version.
func EnvelopeKind(b []byte) (byte, error) {
	if len(b) < EnvelopeBytes {
		return 0, fmt.Errorf("synopses: payload too short for codec envelope (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != codecMagic {
		return 0, fmt.Errorf("synopses: bad codec magic %q", b[:4])
	}
	if b[4] != CodecVersion {
		return 0, fmt.Errorf("synopses: unsupported codec version %d (want %d)", b[4], CodecVersion)
	}
	return b[5], nil
}

// envelopePayload validates the envelope against the expected kind and
// returns a bounds-checked reader over the payload.
func envelopePayload(b []byte, kind byte) (*storage.Reader, error) {
	got, err := EnvelopeKind(b)
	if err != nil {
		return nil, err
	}
	if got != kind {
		return nil, fmt.Errorf("synopses: codec kind %d, want %d", got, kind)
	}
	return storage.NewReader(b[EnvelopeBytes:]), nil
}
