// Package synopses implements every summary structure Taster materializes:
// count-min sketches (counts and sums), Bloom filters, Flajolet-Martin
// distinct-count sketches, AMS F2 sketches, SpaceSaving heavy hitters,
// uniform / distinct / stratified samples with Horvitz-Thompson weights,
// VerdictDB-style variational subsampling, and the sketch-join synopsis.
//
// All structures are single-pass ("pipelineable") and mergeable
// ("partitionable"), the two requirements paper §II imposes.
package synopses

import (
	"math"

	"github.com/tasterdb/taster/internal/storage"
)

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashBytes returns the FNV-1a hash of b seeded with seed.
func hashBytes(b []byte, seed uint64) uint64 {
	h := uint64(fnvOffset) ^ seed
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// hashString is hashBytes for strings without allocation.
func hashString(s string, seed uint64) uint64 {
	h := uint64(fnvOffset) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mix64 finalizes a 64-bit value (SplitMix64 finalizer), giving good
// avalanche behaviour for integer keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SplitSeed derives an independent child seed from a parent seed and a
// stream index. The morsel-driven executor gives every morsel the stream
// SplitSeed(querySeed, morselIdx), so sampling decisions depend only on the
// morsel's position in the input — never on which worker processed it or in
// what order — which is what makes parallel runs byte-identical to
// single-worker runs at the same seed.
func SplitSeed(seed, idx uint64) uint64 {
	return mix64(mix64(seed+0x9e3779b97f4a7c15) ^ (idx+1)*0xbf58476d1ce4e5b9)
}

// SeedFromString hashes an arbitrary string into a seed, used to derive
// per-query executor seeds from the canonical plan text so that the
// randomness a query sees does not depend on its arrival order under
// concurrent serving.
func SeedFromString(s string, seed uint64) uint64 {
	return mix64(hashString(s, seed))
}

// HashValue hashes a single storage value with a seed. Int64(5) and
// Float64(5.0) hash differently: key identity is typed.
func HashValue(v storage.Value, seed uint64) uint64 {
	switch v.Typ {
	case storage.Int64:
		return mix64(uint64(v.I) ^ mix64(seed) ^ 0x1)
	case storage.Float64:
		return mix64(math.Float64bits(v.F) ^ mix64(seed) ^ 0x2)
	case storage.String:
		return hashString(v.S, seed)
	case storage.Bool:
		x := uint64(0x3)
		if v.B {
			x = 0x4
		}
		return mix64(x ^ mix64(seed))
	}
	return 0
}

// HashVectorElem hashes element i of a vector without boxing.
func HashVectorElem(v *storage.Vector, i int, seed uint64) uint64 {
	switch v.Typ {
	case storage.Int64:
		return mix64(uint64(v.I64[i]) ^ mix64(seed) ^ 0x1)
	case storage.Float64:
		return mix64(math.Float64bits(v.F64[i]) ^ mix64(seed) ^ 0x2)
	case storage.String:
		return hashString(v.Str[i], seed)
	case storage.Bool:
		x := uint64(0x3)
		if v.B[i] {
			x = 0x4
		}
		return mix64(x ^ mix64(seed))
	}
	return 0
}

// RowKey combines the values of the given columns of row i into a composite
// 64-bit key, used for group-by hashing, stratification and join keys.
func RowKey(vecs []*storage.Vector, cols []int, i int, seed uint64) uint64 {
	h := mix64(seed ^ 0x9e3779b97f4a7c15)
	for _, c := range cols {
		h = mix64(h ^ HashVectorElem(vecs[c], i, seed))
	}
	return h
}

// pairwise is a family of pairwise-independent hash functions over uint64,
// h_i(x) = (a_i·x + b_i) with a final mix, indexed by row. CM sketches and
// AMS sketches draw their per-row hashes from it.
type pairwise struct {
	a, b []uint64
}

// newPairwise derives d hash functions deterministically from a seed, so
// sketches built independently (e.g. per partition) with the same seed are
// mergeable.
func newPairwise(d int, seed uint64) pairwise {
	p := pairwise{a: make([]uint64, d), b: make([]uint64, d)}
	s := seed
	for i := 0; i < d; i++ {
		s = mix64(s + 0x9e3779b97f4a7c15)
		p.a[i] = s | 1 // multiplier must be odd
		s = mix64(s + 0x9e3779b97f4a7c15)
		p.b[i] = s
	}
	return p
}

// at returns h_row(x).
func (p pairwise) at(row int, x uint64) uint64 {
	return mix64(p.a[row]*x + p.b[row])
}

// sign returns ±1 from h_row(x) for AMS sketches.
func (p pairwise) sign(row int, x uint64) int64 {
	if p.at(row, x)&1 == 1 {
		return 1
	}
	return -1
}
