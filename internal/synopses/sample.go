package synopses

import (
	"fmt"
	"math"

	"github.com/tasterdb/taster/internal/storage"
)

// WeightCol is the name of the weight attribute every sampler appends
// (paper §II: "each sampler appends an additional attribute that represents
// the weight associated with the row").
const WeightCol = "__weight"

// Decision is a sampler's verdict for one input row.
type Decision struct {
	Pass   bool
	Weight float64
}

// Sampler decides row by row whether input passes and with what
// Horvitz-Thompson weight. Implementations are single-pass (pipelineable).
type Sampler interface {
	// Decide examines row i of the given column vectors.
	Decide(vecs []*storage.Vector, row int) Decision
	// MemBytes reports the construction-time memory footprint.
	MemBytes() int64
	// Describe returns a short human-readable description.
	Describe() string
}

// rng is a small deterministic counter-based PRNG (SplitMix64) so sample
// construction is reproducible for a given seed.
type rng struct {
	state uint64
}

func newRng(seed uint64) *rng { return &rng{state: mix64(seed ^ 0x5851f42d4c957f2d)} }

// next returns a uniform float64 in [0, 1).
func (r *rng) next() float64 {
	r.state += 0x9e3779b97f4a7c15
	return float64(mix64(r.state)>>11) / float64(1<<53)
}

// UniformSampler is Γ^U_p: each row passes independently with probability p
// and weight 1/p.
type UniformSampler struct {
	P   float64
	rnd *rng
}

// NewUniformSampler returns a uniform sampler with probability p.
func NewUniformSampler(p float64, seed uint64) *UniformSampler {
	if p <= 0 {
		p = 0.01
	}
	if p > 1 {
		p = 1
	}
	return &UniformSampler{P: p, rnd: newRng(seed)}
}

// Decide implements Sampler.
func (s *UniformSampler) Decide(_ []*storage.Vector, _ int) Decision {
	if s.rnd.next() < s.P {
		return Decision{Pass: true, Weight: 1 / s.P}
	}
	return Decision{}
}

// MemBytes implements Sampler; the uniform sampler is O(1).
func (s *UniformSampler) MemBytes() int64 { return 16 }

// Describe implements Sampler.
func (s *UniformSampler) Describe() string { return fmt.Sprintf("uniform(p=%.4g)", s.P) }

// DistinctSampler is Γ^D_{p,A,δ}: it passes at least δ rows for every
// distinct combination of the stratification columns A (weight 1), and
// subsequent rows of the same combination with probability p (weight 1/p).
// Per-key counting goes through a KeyCounter: exact in tests, sketch-backed
// (logarithmic space, paper §II) in production mode.
type DistinctSampler struct {
	P         float64
	Delta     int
	StratIdxs []int // column positions of A in the input vectors
	counter   KeyCounter
	rnd       *rng
	seed      uint64
}

// NewDistinctSampler returns a distinct sampler over the given stratification
// column positions using an exact counter.
func NewDistinctSampler(p float64, delta int, stratIdxs []int, seed uint64) *DistinctSampler {
	return newDistinctSampler(p, delta, stratIdxs, NewExactCounter(), seed)
}

// NewDistinctSamplerSketch is NewDistinctSampler with a CM-sketch-backed
// counter of the given geometry, bounding memory like the paper's
// heavy-hitters implementation.
func NewDistinctSamplerSketch(p float64, delta int, stratIdxs []int, w, d int, seed uint64) *DistinctSampler {
	return newDistinctSampler(p, delta, stratIdxs, NewCMCounter(w, d, seed), seed)
}

func newDistinctSampler(p float64, delta int, stratIdxs []int, c KeyCounter, seed uint64) *DistinctSampler {
	if p <= 0 {
		p = 0.01
	}
	if p > 1 {
		p = 1
	}
	if delta < 1 {
		delta = 1
	}
	return &DistinctSampler{P: p, Delta: delta, StratIdxs: stratIdxs, counter: c, rnd: newRng(seed), seed: seed}
}

// PartitionDelta returns the per-instance minimum row requirement when the
// sampler runs with distribution factor D: δ' = δ/D + ε with ε = δ/D
// (paper §II), i.e. 2δ/D rounded up.
func PartitionDelta(delta, d int) int {
	if d <= 1 {
		return delta
	}
	return int(math.Ceil(2 * float64(delta) / float64(d)))
}

// Decide implements Sampler.
func (s *DistinctSampler) Decide(vecs []*storage.Vector, row int) Decision {
	key := RowKey(vecs, s.StratIdxs, row, s.seed)
	cnt := s.counter.Inc(key)
	if cnt <= uint64(s.Delta) {
		return Decision{Pass: true, Weight: 1}
	}
	if s.rnd.next() < s.P {
		return Decision{Pass: true, Weight: 1 / s.P}
	}
	return Decision{}
}

// MemBytes implements Sampler.
func (s *DistinctSampler) MemBytes() int64 { return s.counter.SizeBytes() + 32 }

// Describe implements Sampler.
func (s *DistinctSampler) Describe() string {
	return fmt.Sprintf("distinct(p=%.4g, δ=%d, |A|=%d)", s.P, s.Delta, len(s.StratIdxs))
}

// Sample is a materialized weighted sample of some relation (base table or
// subplan output). Rows carries the source schema plus the weight column.
type Sample struct {
	Rows       *storage.Table
	Strategy   string // "uniform" | "distinct" | "stratified" | "variational"
	P          float64
	Delta      int
	StratCols  []string // stratification column names (source schema)
	SourceRows int      // rows of the summarized input
	Seed       uint64
}

// SizeBytes returns the serialized size (== len(Encode())) charged against
// storage quotas: the sample's configuration metadata plus its row payload
// in the binary table encoding — exactly what the persistent warehouse tier
// stores on disk.
func (s *Sample) SizeBytes() int64 {
	n := int64(EnvelopeBytes) + 4 + int64(len(s.Strategy)) + 8 + 8 + 8 + 8 + 4
	for _, c := range s.StratCols {
		n += 4 + int64(len(c))
	}
	return n + s.Rows.EncodedBytes()
}

// Encode serializes the sample: configuration metadata followed by the row
// table. The whole record round-trips bit-exactly (float weights included),
// which is what makes warm restarts answer-identical to uninterrupted runs.
func (s *Sample) Encode() []byte {
	buf := appendEnvelope(make([]byte, 0, s.SizeBytes()), KindSample)
	buf = storage.AppendStr(buf, s.Strategy)
	buf = storage.AppendF64(buf, s.P)
	buf = storage.AppendU64(buf, uint64(int64(s.Delta)))
	buf = storage.AppendU64(buf, s.Seed)
	buf = storage.AppendU64(buf, uint64(int64(s.SourceRows)))
	buf = storage.AppendU32(buf, uint32(len(s.StratCols)))
	for _, c := range s.StratCols {
		buf = storage.AppendStr(buf, c)
	}
	return storage.EncodeTable(buf, s.Rows)
}

// DecodeSample reverses Encode.
func DecodeSample(b []byte) (*Sample, error) {
	r, err := envelopePayload(b, KindSample)
	if err != nil {
		return nil, err
	}
	s := &Sample{}
	if s.Strategy, err = r.Str(); err != nil {
		return nil, err
	}
	if s.P, err = r.F64(); err != nil {
		return nil, err
	}
	delta, err := r.U64()
	if err != nil {
		return nil, err
	}
	s.Delta = int(int64(delta))
	if s.Seed, err = r.U64(); err != nil {
		return nil, err
	}
	src, err := r.U64()
	if err != nil {
		return nil, err
	}
	s.SourceRows = int(int64(src))
	nStrat, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int(nStrat) > r.Remaining() {
		return nil, fmt.Errorf("synopses: corrupt sample stratification count %d", nStrat)
	}
	if nStrat > 0 {
		s.StratCols = make([]string, nStrat)
		for i := range s.StratCols {
			if s.StratCols[i], err = r.Str(); err != nil {
				return nil, err
			}
		}
	}
	if s.Rows, err = storage.DecodeTable(r); err != nil {
		return nil, err
	}
	return s, nil
}

// SampleSchema returns the source schema extended with the weight column.
func SampleSchema(src storage.Schema) storage.Schema {
	out := src.Clone()
	return append(out, storage.Col{Name: WeightCol, Typ: storage.Float64})
}

// SampleBuilder accumulates sampled rows plus weights into a Sample.
type SampleBuilder struct {
	b          *storage.Builder
	widx       int
	srcCols    int
	sourceRows int
}

// NewSampleBuilder returns a builder producing a sample table with the given
// name over the source schema.
func NewSampleBuilder(name string, src storage.Schema) *SampleBuilder {
	schema := SampleSchema(src)
	return &SampleBuilder{b: storage.NewBuilder(name, schema), widx: len(schema) - 1, srcCols: len(src)}
}

// Offer routes row i of the vectors through the sampler, appending it with
// its weight when it passes. It returns the decision so callers (the exec
// sampler operator) can forward passing rows downstream too.
func (sb *SampleBuilder) Offer(smp Sampler, vecs []*storage.Vector, row int) Decision {
	sb.sourceRows++
	d := smp.Decide(vecs, row)
	if d.Pass {
		sb.Append(vecs, row, d.Weight)
	}
	return d
}

// Append adds row i with an explicit weight (used when the pass decision was
// made elsewhere).
func (sb *SampleBuilder) Append(vecs []*storage.Vector, row int, weight float64) {
	for c := 0; c < sb.srcCols; c++ {
		sb.b.CopyFrom(c, vecs[c], row)
	}
	sb.b.Float(sb.widx, weight)
}

// Build finalizes the sample.
func (sb *SampleBuilder) Build(smp Sampler, partitions int) *Sample {
	s := &Sample{Rows: sb.b.Build(partitions), SourceRows: sb.sourceRows}
	switch t := smp.(type) {
	case *UniformSampler:
		s.Strategy, s.P = "uniform", t.P
	case *DistinctSampler:
		s.Strategy, s.P, s.Delta = "distinct", t.P, t.Delta
	default:
		s.Strategy = "custom"
	}
	return s
}

// MergeSamples concatenates per-partition samples of the same relation into
// one sample ("partitionable", paper §II). Parts must share a schema and be
// given in a deterministic order (the morsel executor passes them in morsel
// index order); configuration metadata is taken from the first part and
// SourceRows are summed.
//
// SourceRows underpins the sample's estimation semantics (how much input
// the weights extrapolate over), so parts are validated here: a negative
// count, a part that emitted rows from zero input, or a sum overflowing
// int are all rejected as corruption rather than propagated.
func MergeSamples(name string, parts []*Sample) (*Sample, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("synopses: MergeSamples %s: no parts", name)
	}
	tables := make([]*storage.Table, len(parts))
	sourceRows := 0
	for i, p := range parts {
		switch {
		case p.SourceRows < 0:
			return nil, fmt.Errorf("synopses: MergeSamples %s: part %d has negative SourceRows %d", name, i, p.SourceRows)
		case p.SourceRows == 0 && p.Rows.NumRows() > 0:
			return nil, fmt.Errorf("synopses: MergeSamples %s: part %d emitted %d rows from zero input", name, i, p.Rows.NumRows())
		case p.SourceRows > math.MaxInt-sourceRows:
			return nil, fmt.Errorf("synopses: MergeSamples %s: SourceRows sum overflows at part %d", name, i)
		}
		tables[i] = p.Rows
		sourceRows += p.SourceRows
	}
	rows, err := storage.ConcatTables(name, tables, 1)
	if err != nil {
		return nil, err
	}
	out := *parts[0]
	out.Rows = rows
	out.SourceRows = sourceRows
	out.StratCols = append([]string(nil), parts[0].StratCols...)
	return &out, nil
}

// BuildSampleFromTable scans an entire table through a sampler and
// materializes the result — the offline path used by baselines and hints.
// stratCols records the stratification set for matching purposes.
func BuildSampleFromTable(name string, tbl *storage.Table, smp Sampler, stratCols []string) *Sample {
	sb := NewSampleBuilder(name, tbl.Schema())
	for p := 0; p < tbl.Partitions(); p++ {
		for _, batch := range tbl.Scan(p, storage.BatchSize) {
			for i := 0; i < batch.Len(); i++ {
				sb.Offer(smp, batch.Vecs, i)
			}
		}
	}
	s := sb.Build(smp, tbl.Partitions())
	s.StratCols = append([]string(nil), stratCols...)
	return s
}

// StratifiedSample builds a classic blocking stratified sample capping each
// group of the given columns at cap rows (BlinkDB's sample family). Groups
// with at most cap rows are taken whole with weight 1; larger groups are
// subsampled with probability cap/n_g and weight n_g/cap. This requires two
// passes, which is exactly why the paper's *online* path uses the distinct
// sampler instead.
func StratifiedSample(name string, tbl *storage.Table, stratCols []string, cap int, seed uint64) (*Sample, error) {
	idxs := make([]int, 0, len(stratCols))
	for _, c := range stratCols {
		i := tbl.Schema().Index(c)
		if i < 0 {
			return nil, fmt.Errorf("synopses: stratified sample: unknown column %q", c)
		}
		idxs = append(idxs, i)
	}
	if cap < 1 {
		cap = 1
	}
	// Pass 1: group sizes.
	sizes := make(map[uint64]int)
	for p := 0; p < tbl.Partitions(); p++ {
		for _, batch := range tbl.Scan(p, storage.BatchSize) {
			for i := 0; i < batch.Len(); i++ {
				sizes[RowKey(batch.Vecs, idxs, i, seed)]++
			}
		}
	}
	// Pass 2: emit.
	sb := NewSampleBuilder(name, tbl.Schema())
	rnd := newRng(seed ^ 0xfeed)
	for p := 0; p < tbl.Partitions(); p++ {
		for _, batch := range tbl.Scan(p, storage.BatchSize) {
			for i := 0; i < batch.Len(); i++ {
				sb.sourceRows++
				n := sizes[RowKey(batch.Vecs, idxs, i, seed)]
				if n <= cap {
					sb.Append(batch.Vecs, i, 1)
					continue
				}
				pr := float64(cap) / float64(n)
				if rnd.next() < pr {
					sb.Append(batch.Vecs, i, 1/pr)
				}
			}
		}
	}
	s := &Sample{
		Rows:       sb.b.Build(tbl.Partitions()),
		Strategy:   "stratified",
		Delta:      cap,
		StratCols:  append([]string(nil), stratCols...),
		SourceRows: sb.sourceRows,
		Seed:       seed,
	}
	return s, nil
}
