package synopses

import (
	"fmt"
	"math"

	"github.com/tasterdb/taster/internal/storage"
)

// Bloom is a classic Bloom filter (Bloom 1970), the synopsis the paper cites
// for approximating EXISTS subqueries and membership tests. False positives
// occur with probability ≈ (1−e^{−kn/m})^k; false negatives never.
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // hash functions
	seed uint64
	n    int // inserted elements
}

// NewBloom sizes a filter for n expected elements at false-positive rate p:
// m = −n·ln p / (ln 2)², k = (m/n)·ln 2.
func NewBloom(n int, p float64, seed uint64) *Bloom {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k, seed: seed}
}

// Add inserts a key.
func (b *Bloom) Add(key uint64) {
	h1 := mix64(key ^ b.seed)
	h2 := mix64(h1 ^ 0x9e3779b97f4a7c15)
	for i := 0; i < b.k; i++ {
		// Kirsch-Mitzenmacher double hashing.
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.n++
}

// MayContain reports whether key may have been inserted. False positives
// possible; false negatives impossible.
func (b *Bloom) MayContain(key uint64) bool {
	h1 := mix64(key ^ b.seed)
	h2 := mix64(h1 ^ 0x9e3779b97f4a7c15)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// FalsePositiveRate returns the expected FP rate at the current load.
func (b *Bloom) FalsePositiveRate() float64 {
	return math.Pow(1-math.Exp(-float64(b.k)*float64(b.n)/float64(b.m)), float64(b.k))
}

// Merge ORs o into b; geometries and seeds must match.
func (b *Bloom) Merge(o *Bloom) error {
	if b.m != o.m || b.k != o.k || b.seed != o.seed {
		return fmt.Errorf("synopses: merging incompatible Bloom filters")
	}
	for i := range b.bits {
		b.bits[i] |= o.bits[i]
	}
	b.n += o.n
	return nil
}

// SizeBytes returns the filter's serialized size (== len(Encode())).
func (b *Bloom) SizeBytes() int64 { return EnvelopeBytes + 32 + int64(8*len(b.bits)) }

// Encode serializes the filter: m, k, seed, n, bit words.
func (b *Bloom) Encode() []byte {
	buf := appendEnvelope(make([]byte, 0, b.SizeBytes()), KindBloom)
	buf = storage.AppendU64(buf, b.m)
	buf = storage.AppendU64(buf, uint64(b.k))
	buf = storage.AppendU64(buf, b.seed)
	buf = storage.AppendU64(buf, uint64(b.n))
	for _, w := range b.bits {
		buf = storage.AppendU64(buf, w)
	}
	return buf
}

// DecodeBloom reverses Encode.
func DecodeBloom(buf []byte) (*Bloom, error) {
	r, err := envelopePayload(buf, KindBloom)
	if err != nil {
		return nil, err
	}
	m, err := r.U64()
	if err != nil {
		return nil, err
	}
	k, err := r.U64()
	if err != nil {
		return nil, err
	}
	seed, err := r.U64()
	if err != nil {
		return nil, err
	}
	n, err := r.U64()
	if err != nil {
		return nil, err
	}
	words := int((m + 63) / 64)
	if m < 1 || k < 1 || m > 1<<34 || r.Remaining() < 8*words {
		return nil, fmt.Errorf("synopses: corrupt Bloom header (m=%d k=%d, %d payload bytes)", m, k, r.Remaining())
	}
	b := &Bloom{bits: make([]uint64, words), m: m, k: int(k), seed: seed, n: int(n)}
	for i := range b.bits {
		v, err := r.U64()
		if err != nil {
			return nil, err
		}
		b.bits[i] = v
	}
	return b, nil
}
