package persist

import (
	"os"
	"path/filepath"
	"testing"
)

func TestItemFileRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := Encode(fixtureSample())
	if err := st.WriteItem(7, payload); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadItem(7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatal("payload mismatch")
	}
	ids, err := st.ItemIDs()
	if err != nil || len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("ItemIDs = %v, %v", ids, err)
	}
	if err := st.RemoveItem(7); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveItem(7); err != nil {
		t.Fatalf("double remove must be a no-op: %v", err)
	}
	if _, err := st.ReadItem(7); err == nil {
		t.Fatal("reading a removed item must fail")
	}
}

func TestItemFileValidation(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := Encode(fixtureCM())
	if err := st.WriteItem(3, payload); err != nil {
		t.Fatal(err)
	}
	path := st.ItemPath(3)

	// Truncation (torn write).
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadItem(3); err == nil {
		t.Fatal("truncated item passed validation")
	}

	// Bit flip in the payload (checksum).
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 1
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadItem(3); err == nil {
		t.Fatal("corrupt item passed checksum")
	}

	// Wrong id under the right name.
	if err := st.WriteItem(4, payload); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.ItemPath(4), path); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadItem(3); err == nil {
		t.Fatal("id-mismatched item passed validation")
	}
}

func TestManifestAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.LoadManifest(); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	m1 := &Manifest{QueryCount: 10, Window: 12, Items: []ItemRecord{{ID: 1, Tier: TierWarehouse, Kind: KindSample, Size: 100}}}
	if err := st.WriteManifest(m1); err != nil {
		t.Fatal(err)
	}
	m2 := &Manifest{QueryCount: 20, Window: 9}
	if err := st.WriteManifest(m2); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.LoadManifest()
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.QueryCount != 20 || got.Window != 9 || len(got.Items) != 0 {
		t.Fatalf("manifest = %+v, want the second write", got)
	}
	// No temp droppings left behind.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.Name() != "MANIFEST.json" {
			t.Fatalf("unexpected file %q after manifest writes", de.Name())
		}
	}
}

func TestManifestVersionGate(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte(`{"version":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadManifest(); err == nil {
		t.Fatal("future-version manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadManifest(); err == nil {
		t.Fatal("torn manifest accepted")
	}
}

func TestEntryRecordRoundTrip(t *testing.T) {
	// Conversion fidelity for a descriptor with every field populated is
	// covered end to end by core's warm-restart tests; here we pin the
	// filter-predicate encoding through the record layer.
	for _, e := range fixtureExprs() {
		var rec EntryRecord
		rec.ID = 5
		if e != nil {
			b, err := EncodeExpr(nil, e)
			if err != nil {
				t.Fatal(err)
			}
			rec.Filter = b
		}
		d, _, _, err := rec.Entry()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case e == nil && d.FilterPred != nil:
			t.Fatal("nil filter decoded non-nil")
		case e != nil && (d.FilterPred == nil || d.FilterPred.String() != e.String()):
			t.Fatalf("filter round trip: %v", d.FilterPred)
		}
	}
}

func TestOpenStoreClearsTornTempFiles(t *testing.T) {
	dir := t.TempDir()
	torn := filepath.Join(dir, ".tmp-123456")
	if err := os.WriteFile(torn, []byte("half a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn temp file survived OpenStore")
	}
}
