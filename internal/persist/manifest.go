package persist

import (
	"fmt"

	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
)

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// Manifest is the engine checkpoint the warehouse directory carries: the
// warehouse item index plus everything a restarted engine needs to keep
// serving the workload as if it had never stopped — synopsis descriptors
// with their benefit histories (the tuner's gain inputs), observed table
// versions (so bounded staleness still holds), the sliding-window state,
// and the query-id high-water mark. Payload bytes live in the per-item
// files; the manifest only indexes them.
type Manifest struct {
	Version int `json:"version"`
	// NextSynopsisID seeds the metadata store's id allocator so descriptors
	// interned after restart never collide with recovered ones.
	NextSynopsisID uint64 `json:"next_synopsis_id"`
	// QueryCount is the engine's query-id high-water mark; window records
	// and benefit lists reference query ids, so restarted queries must not
	// reuse them.
	QueryCount int64 `json:"query_count"`
	// Window/SinceAdapt/History checkpoint the tuner's sliding window.
	Window     int            `json:"window"`
	SinceAdapt int            `json:"since_adapt"`
	History    []WindowRecord `json:"history,omitempty"`
	// Tables records the last observed version of every ingested relation.
	Tables map[string]TableVersion `json:"tables,omitempty"`
	// Items indexes the materialized synopses (payloads in item files).
	Items []ItemRecord `json:"items,omitempty"`
	// Entries carries every synopsis descriptor the metadata store knew,
	// materialized or not — candidate benefit histories drive the tuner's
	// gains, so dropping them would make the first post-restart round evict
	// the entire recovered warehouse.
	Entries []EntryRecord `json:"entries,omitempty"`
}

// WindowRecord is one sliding-window observation.
type WindowRecord struct {
	QueryID   int     `json:"query_id"`
	ExactCost float64 `json:"exact_cost"`
}

// TableVersion is a base relation's observed (epoch, rows).
type TableVersion struct {
	Epoch uint64 `json:"epoch"`
	Rows  int64  `json:"rows"`
}

// Item tier and kind labels used in ItemRecord.
const (
	TierBuffer    = "buffer"
	TierWarehouse = "warehouse"
	KindSample    = "sample"
	KindSketch    = "sketch"
)

// ItemRecord is one materialized synopsis's warehouse metadata.
type ItemRecord struct {
	ID     uint64 `json:"id"`
	Tier   string `json:"tier"`
	Kind   string `json:"kind"`
	Size   int64  `json:"size"`
	Rows   int64  `json:"rows,omitempty"`
	Pinned bool   `json:"pinned,omitempty"`
	// Loaded records whether the payload was cached in RAM at checkpoint
	// time; recovery eagerly reloads those so post-restart plan costs match
	// the uninterrupted engine's.
	Loaded bool `json:"loaded,omitempty"`
}

// EntryRecord is the wire form of one metadata-store entry.
type EntryRecord struct {
	ID         uint64   `json:"id"`
	Kind       uint8    `json:"kind"`
	SigTables  []string `json:"sig_tables,omitempty"`
	SigJoins   []string `json:"sig_joins,omitempty"`
	SigFilters []string `json:"sig_filters,omitempty"`
	SigOutput  []string `json:"sig_output,omitempty"`
	// Filter is the binary expression encoding of the descriptor's filter
	// predicate (EncodeExpr); empty means no filter.
	Filter    []byte   `json:"filter,omitempty"`
	StratCols []string `json:"strat_cols,omitempty"`
	P         float64  `json:"p,omitempty"`
	Delta     int      `json:"delta,omitempty"`
	BuildKeys []string `json:"build_keys,omitempty"`
	AggCol    string   `json:"agg_col,omitempty"`
	AggCols   []string `json:"agg_cols,omitempty"`
	// Partition scopes the synopsis to one partition of its base relation
	// (1-based; 0 = whole table). Dropping it on recovery would promote a
	// partition-scoped sample to whole-table scope — a correctness bug —
	// so it round-trips verbatim.
	Partition  int              `json:"partition,omitempty"`
	RelError   float64          `json:"rel_error,omitempty"`
	Confidence float64          `json:"confidence,omitempty"`
	EstSize    int64            `json:"est_size,omitempty"`
	ActualSize int64            `json:"actual_size,omitempty"`
	Location   uint8            `json:"location,omitempty"`
	Pinned     bool             `json:"pinned,omitempty"`
	BuildEpoch uint64           `json:"build_epoch,omitempty"`
	BuildRows  int64            `json:"build_rows,omitempty"`
	BuiltBy    map[string]int64 `json:"built_by,omitempty"`
	Benefits   []BenefitRecord  `json:"benefits,omitempty"`
}

// BenefitRecord is one recorded query benefit.
type BenefitRecord struct {
	QueryID   int     `json:"query_id"`
	CostWith  float64 `json:"cost_with"`
	CostExact float64 `json:"cost_exact"`
}

// EntryRecordOf converts a metadata-store entry snapshot to its wire form.
func EntryRecordOf(e *meta.Entry) (EntryRecord, error) {
	d := e.Desc
	rec := EntryRecord{
		ID:         d.ID,
		Kind:       uint8(d.Kind),
		SigTables:  d.Sig.Tables,
		SigJoins:   d.Sig.JoinPreds,
		SigFilters: d.Sig.Filters,
		SigOutput:  d.Sig.Output,
		StratCols:  d.StratCols,
		P:          d.P,
		Delta:      d.Delta,
		BuildKeys:  d.BuildKeys,
		AggCol:     d.AggCol,
		AggCols:    d.AggCols,
		Partition:  d.Partition,
		RelError:   d.Accuracy.RelError,
		Confidence: d.Accuracy.Confidence,
		EstSize:    d.EstSizeBytes,
		ActualSize: d.ActualSize,
		Location:   uint8(d.Location),
		Pinned:     d.Pinned,
		BuildEpoch: d.BuildEpoch,
		BuildRows:  d.BuildRows,
		BuiltBy:    e.BuiltByTable(),
	}
	if d.FilterPred != nil {
		b, err := EncodeExpr(nil, d.FilterPred)
		if err != nil {
			return EntryRecord{}, fmt.Errorf("persist: entry #%d: %w", d.ID, err)
		}
		rec.Filter = b
	}
	for _, b := range e.Benefits {
		rec.Benefits = append(rec.Benefits, BenefitRecord{
			QueryID: b.QueryID, CostWith: b.CostWith, CostExact: b.CostExact,
		})
	}
	return rec, nil
}

// Entry converts the wire form back to descriptor, benefits and per-table
// build rows, ready for meta.Store.Restore.
func (r EntryRecord) Entry() (meta.Descriptor, []meta.QueryBenefit, map[string]int64, error) {
	if r.Kind > uint8(plan.SketchJoinSynopsis) {
		return meta.Descriptor{}, nil, nil, fmt.Errorf("persist: entry #%d: unknown synopsis kind %d", r.ID, r.Kind)
	}
	if r.Location > uint8(meta.LocWarehouse) {
		return meta.Descriptor{}, nil, nil, fmt.Errorf("persist: entry #%d: unknown location %d", r.ID, r.Location)
	}
	d := meta.Descriptor{
		ID:   r.ID,
		Kind: plan.SynopsisKind(r.Kind),
		Sig: plan.Signature{
			Tables: r.SigTables, JoinPreds: r.SigJoins,
			Filters: r.SigFilters, Output: r.SigOutput,
		},
		StratCols:    r.StratCols,
		P:            r.P,
		Delta:        r.Delta,
		BuildKeys:    r.BuildKeys,
		AggCol:       r.AggCol,
		AggCols:      r.AggCols,
		Partition:    r.Partition,
		Accuracy:     stats.AccuracySpec{RelError: r.RelError, Confidence: r.Confidence},
		EstSizeBytes: r.EstSize,
		ActualSize:   r.ActualSize,
		Location:     meta.Location(r.Location),
		Pinned:       r.Pinned,
		BuildEpoch:   r.BuildEpoch,
		BuildRows:    r.BuildRows,
	}
	if len(r.Filter) > 0 {
		e, err := DecodeExpr(r.Filter)
		if err != nil {
			return meta.Descriptor{}, nil, nil, fmt.Errorf("persist: entry #%d filter: %w", r.ID, err)
		}
		d.FilterPred = e
	}
	var benefits []meta.QueryBenefit
	for _, b := range r.Benefits {
		benefits = append(benefits, meta.QueryBenefit{
			QueryID: b.QueryID, CostWith: b.CostWith, CostExact: b.CostExact,
		})
	}
	return d, benefits, r.BuiltBy, nil
}
