package persist

import (
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// fixtureExprs covers every expression node kind the codec handles.
func fixtureExprs() []expr.Expr {
	return []expr.Expr{
		nil,
		&expr.Col{Name: "sales.region"},
		expr.Int(42),
		expr.Float(3.25),
		expr.Str("west"),
		&expr.Const{Val: storage.BoolValue(true)},
		&expr.Cmp{Op: expr.LE, L: &expr.Col{Name: "sales.qty"}, R: expr.Float(10)},
		&expr.Bin{Op: expr.Mul, L: &expr.Col{Name: "sales.qty"}, R: expr.Float(1.1)},
		&expr.Not{E: &expr.Cmp{Op: expr.EQ, L: &expr.Col{Name: "a.b"}, R: expr.Int(1)}},
		&expr.In{E: &expr.Col{Name: "sales.region"}, Vals: []storage.Value{
			storage.StringValue("east"), storage.StringValue("west"),
		}},
		&expr.Logic{
			Op: expr.And,
			L:  &expr.Cmp{Op: expr.GT, L: &expr.Col{Name: "sales.price"}, R: expr.Float(5)},
			R: &expr.Logic{
				Op: expr.Or,
				L:  &expr.Cmp{Op: expr.NE, L: &expr.Col{Name: "sales.store"}, R: expr.Int(3)},
				R:  &expr.In{E: &expr.Col{Name: "sales.cat"}, Vals: []storage.Value{storage.IntValue(1)}},
			},
		},
	}
}

// fixtureSample builds a deterministic sample with every column type.
func fixtureSample() *synopses.Sample {
	b := storage.NewBuilder("synopsis_7", storage.Schema{
		{Name: "s.id", Typ: storage.Int64},
		{Name: "s.amount", Typ: storage.Float64},
		{Name: "s.region", Typ: storage.String},
		{Name: "s.flag", Typ: storage.Bool},
		{Name: synopses.WeightCol, Typ: storage.Float64},
	})
	for i := 0; i < 57; i++ {
		b.Int(0, int64(i*3))
		b.Float(1, float64(i)*1.25+0.125)
		b.Str(2, fmt.Sprintf("region-%d", i%5))
		b.Bool(3, i%2 == 0)
		b.Float(4, 1/(0.01+float64(i%7)))
	}
	return &synopses.Sample{
		Rows:       b.Build(3),
		Strategy:   "distinct",
		P:          0.0125,
		Delta:      11,
		StratCols:  []string{"s.region", "s.flag"},
		SourceRows: 4096,
		Seed:       0xfeedface,
	}
}

func fixtureCM() *synopses.CMSketch {
	s := synopses.NewCMSketchWD(64, 4, 99)
	for i := uint64(0); i < 500; i++ {
		s.Add(i%37, float64(i%5)+0.5)
	}
	return s
}

func fixtureAMS() *synopses.AMS {
	a := synopses.NewAMS(16, 5, 7)
	for i := uint64(0); i < 300; i++ {
		a.Add(i%23, 1)
	}
	return a
}

func fixtureFM() *synopses.FM {
	f := synopses.NewFM(64, 3)
	for i := uint64(0); i < 1000; i++ {
		f.Add(i)
	}
	return f
}

func fixtureBloom() *synopses.Bloom {
	b := synopses.NewBloom(200, 0.01, 5)
	for i := uint64(0); i < 150; i++ {
		b.Add(i * 7)
	}
	return b
}

func fixtureSS() *synopses.SpaceSaving {
	// Capacity above the distinct-key count: SpaceSaving's eviction picks
	// min-count victims in map order, so an evicting fixture would not be
	// deterministic enough for a golden byte test.
	s := synopses.NewSpaceSaving(16)
	for i := uint64(0); i < 100; i++ {
		s.Inc(i % 13)
	}
	return s
}

func fixtureSketchJoin() *synopses.SketchJoin {
	sj := synopses.NewSketchJoinWD(128, 4, []string{"sales.product", "sales.store"}, "sales.qty", 42)
	b := storage.NewBuilder("t", storage.Schema{
		{Name: "sales.product", Typ: storage.Int64},
		{Name: "sales.store", Typ: storage.Int64},
		{Name: "sales.qty", Typ: storage.Float64},
	})
	for i := 0; i < 200; i++ {
		b.Int(0, int64(i%17))
		b.Int(1, int64(i%3))
		b.Float(2, float64(i%9)+0.5)
	}
	tbl := b.Build(1)
	for _, batch := range tbl.Scan(0, storage.BatchSize) {
		for i := 0; i < batch.Len(); i++ {
			sj.AddRow(batch.Vecs, []int{0, 1}, 2, i, 1)
		}
	}
	return sj
}

// fixturePartitioned builds a deterministic partitioned-sample bundle (kind
// 8): per-partition chunk-aligned mini-samples of a 3-partition table. The
// embedded samples carry v2 (partition-aware) table envelopes, so this
// fixture pins that layout in the golden CRCs and seeds the fuzzer with it.
func fixturePartitioned() *synopses.PartitionedSample {
	b := storage.NewBuilder("pt", storage.Schema{
		{Name: "pt.k", Typ: storage.Int64},
		{Name: "pt.v", Typ: storage.Float64},
	})
	for i := 0; i < 300; i++ {
		b.Int(0, int64(i%23))
		b.Float(1, float64(i%11)+0.5)
	}
	tbl := b.Build(1).Repartition(128)
	parts := make([]*synopses.Sample, tbl.Partitions())
	for i := range parts {
		parts[i] = synopses.BuildPartitionSample("pt_s", tbl, i, 0.2, 42, []string{"pt.k"})
	}
	return &synopses.PartitionedSample{Table: "pt", PartRows: 128, Parts: parts}
}

// fixtures returns one instance of every synopsis type.
func fixtures() map[string]Synopsis {
	return map[string]Synopsis{
		"sample":       fixtureSample(),
		"cmsketch":     fixtureCM(),
		"ams":          fixtureAMS(),
		"fm":           fixtureFM(),
		"bloom":        fixtureBloom(),
		"heavyhitters": fixtureSS(),
		"sketchjoin":   fixtureSketchJoin(),
		"partitioned":  fixturePartitioned(),
	}
}

// TestSizeBytesEqualsEncodedLength is the SizeBytes unification contract:
// storage quotas charge exactly what disk stores, for every synopsis type.
func TestSizeBytesEqualsEncodedLength(t *testing.T) {
	for name, s := range fixtures() {
		enc := Encode(s)
		if int64(len(enc)) != s.SizeBytes() {
			t.Errorf("%s: len(Encode) = %d, SizeBytes = %d", name, len(enc), s.SizeBytes())
		}
	}
}

// TestCodecRoundTrip: Decode(Encode(x)) reproduces x exactly, and
// re-encoding the decoded value is byte-identical (the codec is a
// bijection on its image — what warm-restart fidelity rests on).
func TestCodecRoundTrip(t *testing.T) {
	for name, s := range fixtures() {
		enc := Encode(s)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(s, dec) {
			t.Errorf("%s: round trip mismatch:\n got %#v\nwant %#v", name, dec, s)
		}
		re := Encode(dec)
		if string(re) != string(enc) {
			t.Errorf("%s: re-encode differs (%d vs %d bytes)", name, len(re), len(enc))
		}
	}
}

// Golden CRCs pin the byte-level format: a codec change that silently
// alters the on-disk layout (breaking old warehouses) must fail here and
// force a deliberate version bump.
// Regenerated for codec version 2 (partition-aware table layout).
var goldenCRC = map[string]uint32{
	"sample":       0xa5a4db1d,
	"cmsketch":     0x54e515ce,
	"ams":          0x4553ba84,
	"fm":           0x35945572,
	"bloom":        0x830316fc,
	"heavyhitters": 0x3b79f647,
	"sketchjoin":   0xda5006a8,
	"partitioned":  0xfe927199,
}

func TestCodecGolden(t *testing.T) {
	for name, s := range fixtures() {
		got := crc32.ChecksumIEEE(Encode(s))
		if want, ok := goldenCRC[name]; !ok || got != want {
			t.Errorf("%s: encoding CRC = %#08x, golden %#08x — format changed? bump CodecVersion and regenerate", name, got, goldenCRC[name])
		}
	}
}

// TestDecodeRejectsCorruption: flipping the kind byte, truncating, and
// garbage all fail cleanly (no panics, no misreads).
func TestDecodeRejectsCorruption(t *testing.T) {
	for name, s := range fixtures() {
		enc := Encode(s)
		if _, err := Decode(enc[:len(enc)/2]); err == nil {
			t.Errorf("%s: truncated payload decoded", name)
		}
		bad := append([]byte(nil), enc...)
		bad[5] ^= 0x55 // kind byte
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: wrong-kind payload decoded", name)
		}
		ver := append([]byte(nil), enc...)
		ver[4] = 99
		if _, err := Decode(ver); err == nil {
			t.Errorf("%s: future-version payload decoded", name)
		}
	}
	if _, err := Decode([]byte("not a synopsis")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("nil decoded")
	}
}

// TestExprCodecRoundTrip round-trips predicate trees through the binary
// expression codec (descriptors persist their filter predicates with it).
func TestExprCodecRoundTrip(t *testing.T) {
	exprs := fixtureExprs()
	for i, e := range exprs {
		b, err := EncodeExpr(nil, e)
		if err != nil {
			t.Fatalf("expr %d: encode: %v", i, err)
		}
		dec, err := DecodeExpr(b)
		if err != nil {
			t.Fatalf("expr %d: decode: %v", i, err)
		}
		switch {
		case e == nil && dec == nil:
		case e == nil || dec == nil:
			t.Fatalf("expr %d: nil mismatch", i)
		case e.String() != dec.String():
			t.Errorf("expr %d: %q != %q", i, dec.String(), e.String())
		}
		if e != nil && !reflect.DeepEqual(e, dec) {
			t.Errorf("expr %d: structural mismatch", i)
		}
	}
}
