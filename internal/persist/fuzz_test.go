package persist

import (
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the synopsis decoder: it must never
// panic, and whenever it accepts an input, re-encoding the decoded value
// must reproduce a decodable record of the same type (the codec's image is
// closed under round-trips). Seeds cover every synopsis kind — see
// testdata/fuzz/FuzzDecode and the f.Add calls below.
func FuzzDecode(f *testing.F) {
	for _, s := range fixtures() {
		f.Add(Encode(s))
	}
	// Adversarial seeds: truncations and header mutations of a valid record.
	enc := Encode(fixtureCM())
	f.Add(enc[:4])
	f.Add(enc[:len(enc)-1])
	mut := append([]byte(nil), enc...)
	mut[5] = 0xff
	f.Add(mut)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return
		}
		re := Encode(s)
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded record undecodable: %v", err)
		}
		if reflect.TypeOf(s) != reflect.TypeOf(s2) {
			t.Fatalf("round trip changed type: %T vs %T", s, s2)
		}
	})
}

// FuzzDecodeExpr: the predicate decoder must never panic and must
// round-trip every tree it accepts (canonical string form is the identity
// plan signatures rely on).
func FuzzDecodeExpr(f *testing.F) {
	for _, e := range fixtureExprs() {
		b, err := EncodeExpr(nil, e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{exprIn, exprCol, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{exprNot, exprNot, exprNil})

	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := DecodeExpr(b)
		if err != nil || e == nil {
			return
		}
		re, err := EncodeExpr(nil, e)
		if err != nil {
			t.Fatalf("decoded expression unencodable: %v", err)
		}
		e2, err := DecodeExpr(re)
		if err != nil {
			t.Fatalf("re-encoded expression undecodable: %v", err)
		}
		if e.String() != e2.String() {
			t.Fatalf("round trip changed expression: %q vs %q", e.String(), e2.String())
		}
	})
}
