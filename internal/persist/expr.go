package persist

import (
	"fmt"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/storage"
)

// Binary codec for filter predicates. Synopsis descriptors carry their
// subplan's filter conjunction as an expression tree (the subsumption
// matcher runs implication checks on it), so recovering a warehouse from
// disk must recover the trees too — the canonical string form is
// display-oriented and has no parser. Node tags, one byte each:
//
//	0 nil, 1 Col, 2 Const, 3 Bin, 4 Cmp, 5 Logic, 6 Not, 7 In

const (
	exprNil   byte = 0
	exprCol   byte = 1
	exprConst byte = 2
	exprBin   byte = 3
	exprCmp   byte = 4
	exprLogic byte = 5
	exprNot   byte = 6
	exprIn    byte = 7
)

// maxExprDepth bounds decoder recursion so corrupt input cannot overflow
// the stack; real predicates are a handful of levels deep.
const maxExprDepth = 256

// EncodeExpr appends e's binary encoding to dst (nil encodes as one tag
// byte, so "no filter" round-trips).
func EncodeExpr(dst []byte, e expr.Expr) ([]byte, error) {
	switch x := e.(type) {
	case nil:
		return append(dst, exprNil), nil
	case *expr.Col:
		dst = append(dst, exprCol)
		return storage.AppendStr(dst, x.Name), nil
	case *expr.Const:
		dst = append(dst, exprConst)
		return appendValue(dst, x.Val), nil
	case *expr.Bin:
		dst = append(dst, exprBin, byte(x.Op))
		dst, err := EncodeExpr(dst, x.L)
		if err != nil {
			return dst, err
		}
		return EncodeExpr(dst, x.R)
	case *expr.Cmp:
		dst = append(dst, exprCmp, byte(x.Op))
		dst, err := EncodeExpr(dst, x.L)
		if err != nil {
			return dst, err
		}
		return EncodeExpr(dst, x.R)
	case *expr.Logic:
		dst = append(dst, exprLogic, byte(x.Op))
		dst, err := EncodeExpr(dst, x.L)
		if err != nil {
			return dst, err
		}
		return EncodeExpr(dst, x.R)
	case *expr.Not:
		dst = append(dst, exprNot)
		return EncodeExpr(dst, x.E)
	case *expr.In:
		dst = append(dst, exprIn)
		dst, err := EncodeExpr(dst, x.E)
		if err != nil {
			return dst, err
		}
		dst = storage.AppendU32(dst, uint32(len(x.Vals)))
		for _, v := range x.Vals {
			dst = appendValue(dst, v)
		}
		return dst, nil
	}
	return dst, fmt.Errorf("persist: cannot encode expression type %T", e)
}

// DecodeExpr reverses EncodeExpr over a whole payload.
func DecodeExpr(b []byte) (expr.Expr, error) {
	r := storage.NewReader(b)
	e, err := decodeExpr(r, 0)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after expression", r.Remaining())
	}
	return e, nil
}

func decodeExpr(r *storage.Reader, depth int) (expr.Expr, error) {
	if depth > maxExprDepth {
		return nil, fmt.Errorf("persist: expression nesting exceeds %d", maxExprDepth)
	}
	tag, err := r.U8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case exprNil:
		return nil, nil
	case exprCol:
		name, err := r.Str()
		if err != nil {
			return nil, err
		}
		return &expr.Col{Name: name}, nil
	case exprConst:
		v, err := readValue(r)
		if err != nil {
			return nil, err
		}
		return &expr.Const{Val: v}, nil
	case exprBin, exprCmp, exprLogic:
		op, err := r.U8()
		if err != nil {
			return nil, err
		}
		l, err := decodeExpr(r, depth+1)
		if err != nil {
			return nil, err
		}
		rhs, err := decodeExpr(r, depth+1)
		if err != nil {
			return nil, err
		}
		if l == nil || rhs == nil {
			return nil, fmt.Errorf("persist: nil operand in binary expression")
		}
		switch tag {
		case exprBin:
			if expr.BinOp(op) > expr.Div {
				return nil, fmt.Errorf("persist: unknown arithmetic op %d", op)
			}
			return &expr.Bin{Op: expr.BinOp(op), L: l, R: rhs}, nil
		case exprCmp:
			if expr.CmpOp(op) > expr.GE {
				return nil, fmt.Errorf("persist: unknown comparison op %d", op)
			}
			return &expr.Cmp{Op: expr.CmpOp(op), L: l, R: rhs}, nil
		default:
			if expr.LogicOp(op) > expr.Or {
				return nil, fmt.Errorf("persist: unknown logic op %d", op)
			}
			return &expr.Logic{Op: expr.LogicOp(op), L: l, R: rhs}, nil
		}
	case exprNot:
		e, err := decodeExpr(r, depth+1)
		if err != nil {
			return nil, err
		}
		if e == nil {
			return nil, fmt.Errorf("persist: NOT of nil expression")
		}
		return &expr.Not{E: e}, nil
	case exprIn:
		e, err := decodeExpr(r, depth+1)
		if err != nil {
			return nil, err
		}
		if e == nil {
			return nil, fmt.Errorf("persist: IN over nil expression")
		}
		n, err := r.U32()
		if err != nil {
			return nil, err
		}
		if int(n) > r.Remaining() {
			return nil, fmt.Errorf("persist: IN list length %d exceeds payload", n)
		}
		vals := make([]storage.Value, n)
		for i := range vals {
			if vals[i], err = readValue(r); err != nil {
				return nil, err
			}
		}
		return &expr.In{E: e, Vals: vals}, nil
	}
	return nil, fmt.Errorf("persist: unknown expression tag %d", tag)
}

// appendValue writes a typed scalar: u8 type + payload.
func appendValue(dst []byte, v storage.Value) []byte {
	dst = append(dst, byte(v.Typ))
	switch v.Typ {
	case storage.Int64:
		return storage.AppendU64(dst, uint64(v.I))
	case storage.Float64:
		return storage.AppendF64(dst, v.F)
	case storage.String:
		return storage.AppendStr(dst, v.S)
	case storage.Bool:
		if v.B {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	return dst
}

func readValue(r *storage.Reader) (storage.Value, error) {
	tb, err := r.U8()
	if err != nil {
		return storage.Value{}, err
	}
	switch storage.Type(tb) {
	case storage.Int64:
		x, err := r.U64()
		return storage.IntValue(int64(x)), err
	case storage.Float64:
		x, err := r.F64()
		return storage.FloatValue(x), err
	case storage.String:
		s, err := r.Str()
		return storage.StringValue(s), err
	case storage.Bool:
		b, err := r.U8()
		return storage.BoolValue(b != 0), err
	}
	return storage.Value{}, fmt.Errorf("persist: unknown value type %d", tb)
}
