// Package persist implements the synopsis warehouse's persistent tier: a
// versioned binary codec for every synopsis type plus warehouse item
// metadata, and a crash-safe disk store (one payload file per item plus a
// manifest written via write-temp-fsync-rename) that warehouse.Manager and
// core.Engine use to spill, reload and recover materialized synopses.
//
// The codec is the contract behind SizeBytes(): every synopsis's quota
// charge equals the byte length persist.Encode produces for it, so the
// tuner's storage accounting is exactly what disk stores. Encoded records
// are self-describing (magic, version, kind — see internal/synopses
// codec.go), which lets Decode dispatch without out-of-band typing and lets
// recovery reject foreign or corrupt files cleanly.
package persist

import (
	"fmt"

	"github.com/tasterdb/taster/internal/synopses"
)

// Synopsis is any serializable synopsis value.
type Synopsis interface {
	// SizeBytes reports the serialized size; for every type in this
	// repository it equals len(Encode(x)).
	SizeBytes() int64
}

// Encode serializes any synopsis type into its versioned binary record.
// It panics on an unknown type — callers pass values produced by this
// repository's planner/executor, so an unknown type is a programming error,
// not input corruption.
func Encode(s Synopsis) []byte {
	switch x := s.(type) {
	case *synopses.Sample:
		return x.Encode()
	case *synopses.CMSketch:
		return x.Encode()
	case *synopses.AMS:
		return x.Encode()
	case *synopses.FM:
		return x.Encode()
	case *synopses.Bloom:
		return x.Encode()
	case *synopses.SpaceSaving:
		return x.Encode()
	case *synopses.SketchJoin:
		return x.Encode()
	case *synopses.PartitionedSample:
		return x.Encode()
	}
	panic(fmt.Sprintf("persist: Encode: unknown synopsis type %T", s))
}

// Decode reverses Encode, dispatching on the record's kind byte. The
// concrete type of the result matches the encoded kind.
func Decode(b []byte) (Synopsis, error) {
	kind, err := synopses.EnvelopeKind(b)
	if err != nil {
		return nil, err
	}
	switch kind {
	case synopses.KindSample:
		return synopses.DecodeSample(b)
	case synopses.KindCMSketch:
		return synopses.DecodeCMSketch(b)
	case synopses.KindAMS:
		return synopses.DecodeAMS(b)
	case synopses.KindFM:
		return synopses.DecodeFM(b)
	case synopses.KindBloom:
		return synopses.DecodeBloom(b)
	case synopses.KindHeavyHitters:
		return synopses.DecodeSpaceSaving(b)
	case synopses.KindSketchJoin:
		return synopses.DecodeSketchJoin(b)
	case synopses.KindPartitionedSample:
		return synopses.DecodePartitionedSample(b)
	}
	return nil, fmt.Errorf("persist: unknown synopsis kind %d", kind)
}
