package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/tasterdb/taster/internal/obs"
)

// Store is the warehouse's disk backing: a flat directory holding one
// payload file per materialized synopsis plus a manifest describing the
// engine state the files belong to.
//
// Crash-safety contract:
//
//   - Item files are self-validating (magic, id, length, CRC32 of the
//     payload) and written via write-temp-fsync-rename, so a reader never
//     observes a half-written payload under its final name; a torn file
//     left by a crashed rename or a truncated disk fails validation.
//   - The manifest is the authoritative index and is itself written via
//     write-temp-fsync-rename. Item files are written BEFORE the manifest
//     that references them; recovery therefore resolves every crash window
//     to a consistent view: an orphan payload file (spill completed,
//     manifest not yet updated) is garbage-collected, and a manifest entry
//     whose payload file is missing or corrupt (eviction raced the crash,
//     or the spill tore) is dropped, never served.
type Store struct {
	dir string

	// Obs counts spills, fault-ins, manifest writes and the payload bytes
	// moved. Write-only and nil-safe; set once right after OpenStore, before
	// the store is shared.
	Obs *obs.DiskObs
}

// OpenStore opens (creating if needed) a warehouse directory. Stale
// .tmp-* files — writes torn by a crash before their rename — are cleared
// here so repeated crash/restart cycles cannot leak disk space.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	if des, err := os.ReadDir(dir); err == nil {
		for _, de := range des {
			if strings.HasPrefix(de.Name(), ".tmp-") {
				_ = os.Remove(filepath.Join(dir, de.Name()))
			}
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

const (
	manifestName   = "MANIFEST.json"
	itemPrefix     = "item_"
	itemSuffix     = ".syn"
	itemFileMagic  = uint32(0x5449544d) // "TITM"
	itemHeaderSize = 4 + 1 + 3 + 8 + 8 + 4
)

// ItemPath returns the payload file path for a synopsis id.
func (s *Store) ItemPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%d%s", itemPrefix, id, itemSuffix))
}

// WriteItem durably stores one synopsis payload (a persist.Encode record)
// under the item's id. The file carries its own id, length and CRC so a
// crash mid-write (caught by the temp-rename) or later corruption (caught
// by the checksum) is detected at read time.
func (s *Store) WriteItem(id uint64, payload []byte) error {
	buf := make([]byte, 0, itemHeaderSize+len(payload))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], itemFileMagic)
	buf = append(buf, tmp[:4]...)
	buf = append(buf, 1, 0, 0, 0) // version, reserved
	binary.LittleEndian.PutUint64(tmp[:], id)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(payload)))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, payload...)
	if err := s.writeDurably(s.ItemPath(id), buf); err != nil {
		return err
	}
	s.Obs.ItemWrite(int64(len(payload)))
	return nil
}

// ReadItem loads and validates one synopsis payload.
func (s *Store) ReadItem(id uint64) ([]byte, error) {
	b, err := os.ReadFile(s.ItemPath(id))
	if err != nil {
		return nil, err
	}
	if len(b) < itemHeaderSize {
		return nil, fmt.Errorf("persist: item %d: truncated header (%d bytes)", id, len(b))
	}
	if binary.LittleEndian.Uint32(b[:4]) != itemFileMagic {
		return nil, fmt.Errorf("persist: item %d: bad magic", id)
	}
	if b[4] != 1 {
		return nil, fmt.Errorf("persist: item %d: unsupported file version %d", id, b[4])
	}
	if got := binary.LittleEndian.Uint64(b[8:16]); got != id {
		return nil, fmt.Errorf("persist: item %d: file claims id %d", id, got)
	}
	n := binary.LittleEndian.Uint64(b[16:24])
	want := binary.LittleEndian.Uint32(b[24:28])
	payload := b[itemHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("persist: item %d: payload %d bytes, header says %d", id, len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("persist: item %d: checksum mismatch", id)
	}
	s.Obs.ItemRead(int64(len(payload)))
	return payload, nil
}

// RemoveItem deletes an item's payload file (missing is not an error: an
// eviction may race a crash that already lost the file).
func (s *Store) RemoveItem(id uint64) error {
	err := os.Remove(s.ItemPath(id))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// ItemIDs lists the synopsis ids that have payload files, sorted.
func (s *Store) ItemIDs() ([]uint64, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []uint64
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, itemPrefix) || !strings.HasSuffix(name, itemSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, itemPrefix), itemSuffix), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// WriteManifest atomically replaces the manifest: the JSON is written to a
// temp file, fsynced, and renamed over the old manifest, so a crash leaves
// either the previous manifest or the new one — never a torn mix.
func (s *Store) WriteManifest(m *Manifest) error {
	m.Version = ManifestVersion
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("persist: marshal manifest: %w", err)
	}
	if err := s.writeDurably(filepath.Join(s.dir, manifestName), append(b, '\n')); err != nil {
		return err
	}
	s.Obs.Manifest(int64(len(b)) + 1)
	return nil
}

// LoadManifest reads the manifest; ok is false when none exists (a fresh
// or wiped warehouse directory — a cold start, not an error).
func (s *Store) LoadManifest() (m *Manifest, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	m = &Manifest{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, false, fmt.Errorf("persist: corrupt manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, false, fmt.Errorf("persist: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	return m, true, nil
}

// writeDurably implements write-temp-fsync-rename, the crash-safe publish
// idiom every durable write in the store goes through. The directory is
// fsynced after the rename on a best-effort basis (some filesystems do not
// support directory syncs; recovery validation covers the gap).
func (s *Store) writeDurably(path string, b []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
