package core

import (
	"math"
	"testing"

	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

// Differential harness: the partitioned storage layout is supposed to be
// invisible to query answers. The tests below drive the identical randomized
// instacart stream — interleaved queries and append batches — through
// engines that differ only in partition layout (or worker count) and demand
// bit-equal results.
//
// Layout-obliviousness rests on three invariants the engine layers maintain:
//   - morsel boundaries are global-row-based, never partition-based, so
//     float accumulation order is identical for any layout;
//   - uniform sampling draws per global row from a chunk-aligned RNG stream
//     (synopses.ChunkRows), so a sample over [0,N) is byte-identical no
//     matter how [0,N) is tiled into partitions;
//   - zone-map pruning only skips partitions whose zone provably rejects
//     the filter, so the post-filter stream is unchanged.

// diffStreamCfg fixes the randomized workload every differential engine
// replays: appends mutate each engine's private catalog, and the TPC-H
// generator plus Stream are deterministic for (scale, seed), so every engine
// sees byte-identical data and operations. The 18 TPC-H templates cover
// uniform samples, distinct samplers, sketch joins and exact fallbacks, so
// the layout-equivalence claim is exercised across every synopsis kind.
var diffStreamCfg = workload.StreamConfig{
	Queries:     30,
	AppendEvery: 6,
	BatchFrac:   0.05,
	Seed:        11,
}

// diffRun is one engine's observable output over the stream: every result
// row, every confidence interval, and the per-query synopsis-reuse count.
type diffRun struct {
	rows [][]storage.Value
	ivs  [][]stats.Interval
	used []int
}

// runDifferentialStream replays the fixed stream through a fresh engine.
// partitionRows shapes the layout (0 keeps the generator's build layout; a
// huge value yields a single monolithic partition).
func runDifferentialStream(t *testing.T, mode Mode, partitionRows, workers int, disablePrune bool) diffRun {
	t.Helper()
	return runDifferentialStreamFull(t, mode, partitionRows, workers, disablePrune, false, 0)
}

// runDifferentialStreamPinned additionally pins the planner's parallelism
// factor (0 leaves the default, which tracks Workers). The worker-identity
// tests need the pin: the worker count deliberately enters the cost model —
// more workers make morsel-parallel plans cheaper relative to serial sketch
// paths — so plan CHOICE varies with Workers by design. What must never vary
// is the chosen plan's EXECUTION, and pinning parallelism isolates exactly
// that claim.
func runDifferentialStreamPinned(t *testing.T, mode Mode, partitionRows, workers int, disablePrune bool, planParallelism float64) diffRun {
	t.Helper()
	return runDifferentialStreamFull(t, mode, partitionRows, workers, disablePrune, false, planParallelism)
}

// runDifferentialStreamFull additionally exposes the kernel-disable switch:
// disableKernels forces every filter onto the interpreted Eval fallback, the
// reference semantics the compiled selection kernels must match bit-for-bit.
func runDifferentialStreamFull(t *testing.T, mode Mode, partitionRows, workers int, disablePrune, disableKernels bool, planParallelism float64) diffRun {
	t.Helper()
	w := workload.TPCH(0.004, 3)
	ops, err := w.Stream(diffStreamCfg)
	if err != nil {
		t.Fatal(err)
	}
	bytes, rows := w.CostScale()
	e := New(w.Catalog, Config{
		Mode:           mode,
		StorageBudget:  bytes / 2,
		BufferSize:     bytes / 8,
		CostModel:      storage.ScaledCostModel(bytes, rows),
		Seed:           7,
		Workers:        workers,
		PartitionRows:  partitionRows,
		DisablePruning: disablePrune,
		DisableKernels: disableKernels,
		// Serve within 15% drift: appends are 5% batches, so a strict
		// fresh-only policy would disqualify everything after the first
		// append and the reuse path would go untested.
		MaxStaleness: 0.15,
		Synchronous:  true,
	})
	if planParallelism > 0 {
		e.pl.Parallelism = planParallelism
	}
	var run diffRun
	for _, op := range ops {
		if op.Append != nil {
			if _, err := e.Ingest(op.Append.Table, op.Append.Rows); err != nil {
				t.Fatalf("ingest %s: %v", op.Append.Table, err)
			}
			continue
		}
		q, err := sqlparser.Parse(op.SQL, w.Catalog)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, op.SQL)
		}
		res, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, op.SQL)
		}
		run.rows = append(run.rows, res.Rows...)
		run.ivs = append(run.ivs, res.Intervals...)
		run.used = append(run.used, len(res.Report.UsedSynopses))
	}
	return run
}

// mustEqualRuns asserts two runs are bit-identical: same values (floats via
// math.Float64bits, so NaN payloads and signed zeros cannot hide behind ==;
// everything else via storage.Value.Equal), same interval bits, same reuse
// profile.
func mustEqualRuns(t *testing.T, label string, a, b diffRun) {
	t.Helper()
	valueEq := func(x, y storage.Value) bool {
		if x.Typ == storage.Float64 && y.Typ == storage.Float64 {
			return math.Float64bits(x.F) == math.Float64bits(y.F)
		}
		return x.Equal(y)
	}
	if len(a.rows) != len(b.rows) {
		t.Fatalf("%s: row count differs: %d vs %d", label, len(a.rows), len(b.rows))
	}
	for i := range a.rows {
		if len(a.rows[i]) != len(b.rows[i]) {
			t.Fatalf("%s: row %d width differs: %d vs %d", label, i, len(a.rows[i]), len(b.rows[i]))
		}
		for c := range a.rows[i] {
			if !valueEq(a.rows[i][c], b.rows[i][c]) {
				t.Fatalf("%s: row %d col %d differs: %v vs %v", label, i, c, a.rows[i][c], b.rows[i][c])
			}
		}
	}
	if len(a.ivs) != len(b.ivs) {
		t.Fatalf("%s: interval row count differs: %d vs %d", label, len(a.ivs), len(b.ivs))
	}
	for i := range a.ivs {
		if len(a.ivs[i]) != len(b.ivs[i]) {
			t.Fatalf("%s: interval row %d width differs", label, i)
		}
		for c := range a.ivs[i] {
			x, y := a.ivs[i][c], b.ivs[i][c]
			if math.Float64bits(x.Estimate) != math.Float64bits(y.Estimate) ||
				math.Float64bits(x.HalfWidth) != math.Float64bits(y.HalfWidth) {
				t.Fatalf("%s: interval %d/%d differs: %+v vs %+v", label, i, c, x, y)
			}
		}
	}
	if len(a.used) != len(b.used) {
		t.Fatalf("%s: query count differs: %d vs %d", label, len(a.used), len(b.used))
	}
	for i := range a.used {
		if a.used[i] != b.used[i] {
			t.Fatalf("%s: query %d synopsis-reuse count differs: %d vs %d", label, i, a.used[i], b.used[i])
		}
	}
}

// monolithicRows retiles every table into a single partition: Repartition
// caps the partition length at the table's row count, so any bound larger
// than the biggest table yields the pre-partitioning layout.
const monolithicRows = 1 << 30

// TestDifferentialExactPartitionedVsMonolithic: with zone-map pruning
// active, exact answers over a finely partitioned layout must be bit-equal
// to the monolithic engine's — pruning may only skip partitions that
// provably contain no qualifying row, never change a result.
func TestDifferentialExactPartitionedVsMonolithic(t *testing.T) {
	// 797 is prime: partition boundaries land nowhere near the 4096-row
	// morsel grid or sampling chunks, so any accidental dependence on
	// aligned layouts would surface here.
	part := runDifferentialStream(t, ModeExact, 797, 4, false)
	mono := runDifferentialStream(t, ModeExact, monolithicRows, 4, false)
	mustEqualRuns(t, "exact part-vs-mono", part, mono)
}

// TestDifferentialTasterLayoutOblivious: the full self-tuning engine —
// sample builds, staleness accounting, plan choice, reuse — is oblivious to
// the partition layout once pruning (the one deliberate, cost-only
// layout-dependent behavior) is switched off. Chunk-aligned sampling makes
// synopses identical for any tiling; everything downstream must follow.
func TestDifferentialTasterLayoutOblivious(t *testing.T) {
	part := runDifferentialStream(t, ModeTaster, 797, 4, true)
	mono := runDifferentialStream(t, ModeTaster, monolithicRows, 4, true)
	mustEqualRuns(t, "taster part-vs-mono", part, mono)
	// The stream must actually exercise reuse, or the equivalence above is
	// vacuous for the synopsis path.
	reused := 0
	for _, u := range part.used {
		reused += u
	}
	if reused == 0 {
		t.Fatal("stream never reused a synopsis; differential coverage is vacuous")
	}
}

// TestDifferentialWorkersUnderIngest: the acceptance criterion — the
// partitioned engine, pruning enabled, yields byte-identical results at
// worker counts 1, 4 and 8 while appends land mid-stream.
func TestDifferentialWorkersUnderIngest(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeTaster} {
		w1 := runDifferentialStreamPinned(t, mode, 797, 1, false, 4)
		w4 := runDifferentialStreamPinned(t, mode, 797, 4, false, 4)
		w8 := runDifferentialStreamPinned(t, mode, 797, 8, false, 4)
		mustEqualRuns(t, "workers 1 vs 4", w1, w4)
		mustEqualRuns(t, "workers 1 vs 8", w1, w8)
	}
}

// TestDifferentialPruningSoundEndToEnd: same engine, same layout, pruning
// on vs off — answers must be bit-equal (pruning is cost-only), and on the
// partitioned layout pruning must actually have pruned something, which
// shows up as a strictly smaller base-scan byte charge on at least one
// query. This is the engine-level face of the zone-map soundness property
// tests in internal/expr and internal/exec.
func TestDifferentialPruningSoundEndToEnd(t *testing.T) {
	on := runDifferentialStream(t, ModeExact, 797, 4, false)
	off := runDifferentialStream(t, ModeExact, 797, 4, true)
	mustEqualRuns(t, "prune on-vs-off", on, off)
}

// TestDifferentialKernelsStream: the compiled selection-vector kernels must be
// bit-identical to the interpreted Eval path over the full randomized stream —
// in both engine modes, with appends landing mid-stream. The planner is NOT
// pinned: plan costing keys on the predicate's static KernelCompilable shape,
// never on the runtime switch, so both engines must choose identical plans and
// any divergence here is a real kernel bug, not a plan-choice artifact.
func TestDifferentialKernelsStream(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeTaster} {
		on := runDifferentialStreamFull(t, mode, 797, 4, false, false, 0)
		off := runDifferentialStreamFull(t, mode, 797, 4, false, true, 0)
		mustEqualRuns(t, "kernels on-vs-off", on, off)
	}
}

// nanCatalog builds a table whose float column carries the full IEEE bestiary
// — NaN, ±Inf, −0.0 — interleaved with ordinary values, plus int, string and
// group columns. This is the data the kernel NaN contract bites on: ordered
// comparisons must drop NaN rows, <> must keep them, and NOT must be a set
// complement rather than an operator negation.
func nanCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	b := storage.NewBuilder("mets", storage.Schema{
		{Name: "mets.grp", Typ: storage.Int64},
		{Name: "mets.metric", Typ: storage.Float64},
		{Name: "mets.qty", Typ: storage.Int64},
		{Name: "mets.tag", Typ: storage.String},
	})
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}
	tags := []string{"alpha", "beta", "", "gamma"}
	for i := 0; i < 20000; i++ {
		b.Int(0, int64(i%8))
		if i%11 == 0 {
			b.Float(1, specials[(i/11)%len(specials)])
		} else {
			b.Float(1, float64(i%200)-50.5)
		}
		b.Int(2, int64(i%97))
		b.Str(3, tags[i%len(tags)])
	}
	cat.Register(b.Build(4))
	return cat
}

// nanQueries exercise every kernel shape over the NaN-bearing table: ordered
// float compares (NaN must vanish), <> (NaN must survive), fused integer
// conjuncts, string IN, and a BETWEEN that folds specials into a SUM so the
// NaN propagates into the aggregate state where a single bit of drift shows.
var nanQueries = []string{
	`SELECT grp, SUM(metric), COUNT(*) FROM mets WHERE metric > 10 GROUP BY grp`,
	`SELECT COUNT(*) FROM mets WHERE metric <> 50.5`,
	`SELECT grp, COUNT(*) FROM mets WHERE metric <= 0 GROUP BY grp`,
	`SELECT SUM(metric) FROM mets WHERE qty >= 10 AND qty < 60 AND grp = 3`,
	`SELECT grp, COUNT(*) FROM mets WHERE tag IN ('alpha', '') GROUP BY grp`,
	`SELECT SUM(metric), AVG(qty) FROM mets WHERE grp BETWEEN 2 AND 5`,
	`SELECT grp, SUM(qty) FROM mets WHERE metric < 1000000 GROUP BY grp`,
}

// runNaNQueries executes the fixed NaN query set on a fresh exact-mode engine.
func runNaNQueries(t *testing.T, workers int, disablePrune, disableKernels bool) diffRun {
	t.Helper()
	cat := nanCatalog()
	e := New(cat, Config{
		Mode:           ModeExact,
		StorageBudget:  cat.TotalBytes(),
		BufferSize:     cat.TotalBytes(),
		CostModel:      storage.ScaledCostModel(cat.TotalBytes(), 20000),
		Seed:           7,
		Workers:        workers,
		PartitionRows:  97,
		DisablePruning: disablePrune,
		DisableKernels: disableKernels,
		Synchronous:    true,
	})
	var run diffRun
	for _, sql := range nanQueries {
		q, err := sqlparser.Parse(sql, cat)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, sql)
		}
		res, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, sql)
		}
		run.rows = append(run.rows, res.Rows...)
		run.used = append(run.used, len(res.Report.UsedSynopses))
	}
	return run
}

// TestDifferentialKernelsNaN: the ISSUE's acceptance matrix — kernels on vs
// off over NaN-bearing columns at workers 1, 4 and 8, pruning on and off —
// must be bit-equal everywhere, and every worker count must agree with every
// other. Float rows compare Float64bits-strict, so a kernel that mis-sorts a
// NaN row — or perturbs a NaN payload through the aggregate — cannot hide.
func TestDifferentialKernelsNaN(t *testing.T) {
	for _, prune := range []bool{false, true} {
		var kernelRuns []diffRun
		for _, workers := range []int{1, 4, 8} {
			on := runNaNQueries(t, workers, prune, false)
			off := runNaNQueries(t, workers, prune, true)
			mustEqualRuns(t, "nan kernels on-vs-off", on, off)
			kernelRuns = append(kernelRuns, on)
		}
		mustEqualRuns(t, "nan workers 1 vs 4", kernelRuns[0], kernelRuns[1])
		mustEqualRuns(t, "nan workers 1 vs 8", kernelRuns[0], kernelRuns[2])
	}
}
