package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
)

// mixedQueries returns a fresh list of query constructors — Execute mutates
// the Query in place, so every run needs its own values. The mix covers the
// morsel-parallelized single-table path, the Volcano join path, filters and
// an exact (MIN) query.
func mixedQueries(e *Engine) []func() *planner.Query {
	sales, _ := e.Catalog().Table("sales")
	products, _ := e.Catalog().Table("products")
	single := func(agg stats.AggKind, col string) func() *planner.Query {
		return func() *planner.Query {
			return &planner.Query{
				Tables:   []planner.TableRef{{Name: "sales", Table: sales}},
				GroupBy:  []string{"sales.product"},
				Aggs:     []plan.AggSpec{{Kind: agg, Col: col}},
				Accuracy: stats.DefaultAccuracy,
			}
		}
	}
	join := func() *planner.Query {
		return &planner.Query{
			Tables: []planner.TableRef{{Name: "sales", Table: sales}, {Name: "products", Table: products}},
			Joins: []planner.JoinPred{{
				LeftTable: "sales", LeftCol: "sales.product",
				RightTable: "products", RightCol: "products.id",
			}},
			GroupBy:  []string{"products.category"},
			Aggs:     []plan.AggSpec{{Kind: stats.Sum, Col: "sales.qty"}},
			Accuracy: stats.DefaultAccuracy,
		}
	}
	filtered := func() *planner.Query {
		q := single(stats.Sum, "sales.qty")()
		q.Filter = &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "sales.product"}, R: expr.Int(20)}
		return q
	}
	exact := func() *planner.Query {
		q := single(stats.Min, "sales.price")() // MIN forces the exact plan
		return q
	}
	return []func() *planner.Query{
		single(stats.Sum, "sales.qty"),
		join,
		filtered,
		single(stats.Avg, "sales.price"),
		exact,
		single(stats.Count, ""),
	}
}

// resultFingerprint canonicalizes a result for byte-identity comparison.
func resultFingerprint(r *Result) string {
	return fmt.Sprintf("%v|%v|%v", r.Columns, r.Rows, r.Intervals)
}

// TestConcurrentQuickrMatchesSequential issues a mixed workload against one
// Quickr engine from many goroutines and asserts every query's result is
// byte-identical to a sequential run at the same seed. Quickr never shares
// synopsis state between queries, and the executor seed derives from the
// plan (not the arrival order), so interleaving must not change any answer.
// Run with -race to also verify the read path is race-free.
func TestConcurrentQuickrMatchesSequential(t *testing.T) {
	const rounds = 4 // each query from the mix runs this many times

	build := func() (*Engine, []func() *planner.Query) {
		e := testEngine(ModeQuickr)
		mix := mixedQueries(e)
		var qs []func() *planner.Query
		for r := 0; r < rounds; r++ {
			qs = append(qs, mix...)
		}
		return e, qs
	}

	// Sequential reference.
	seqEngine, seqQs := build()
	want := make([]string, len(seqQs))
	for i, mk := range seqQs {
		res, err := seqEngine.Execute(mk())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultFingerprint(res)
	}

	// Concurrent run: goroutines claim query indexes from an atomic counter.
	parEngine, parQs := build()
	got := make([]string, len(parQs))
	errs := make([]error, len(parQs))
	var next int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(parQs) {
					return
				}
				res, err := parEngine.Execute(parQs[i]())
				if err != nil {
					errs[i] = err
					continue
				}
				got[i] = resultFingerprint(res)
			}
		}()
	}
	wg.Wait()

	for i := range got {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("query %d diverges under concurrency:\nconcurrent %.160s\nsequential %.160s", i, got[i], want[i])
		}
	}
}

// TestConcurrentTasterServing hammers a full Taster engine (tuning, synopsis
// materialization, reuse, eviction and elastic budget changes all active)
// from many goroutines. Reuse decisions legitimately depend on arrival
// order, so this test asserts invariants — correct group counts, accurate
// answers, quota respected, telemetry consistent — rather than byte
// identity; under -race it proves the serving path is data-race-free.
func TestConcurrentTasterServing(t *testing.T) {
	e := testEngine(ModeTaster)
	truth := exactAnswer(t)
	mix := mixedQueries(e)

	const goroutines = 8
	const perG = 6
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g == 0 && i == 3 {
					// An elastic budget change in mid-flight traffic.
					e.SetStorageBudget(e.Catalog().TotalBytes() / 2)
				}
				mk := mix[(g*perG+i)%len(mix)]
				res, err := e.Execute(mk())
				if err != nil {
					errCh <- err
					return
				}
				if len(res.Rows) == 0 {
					errCh <- fmt.Errorf("goroutine %d query %d: empty result", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The join query's answers must stay accurate after the storm.
	res, err := e.Execute(catQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		want := truth[r[0].I]
		got := r[1].F
		if rel := abs(got-want) / want; rel > 0.15 {
			t.Fatalf("category %d: rel error %.3f after concurrent serving", r[0].I, rel)
		}
	}
	// Telemetry: one report per executed query, IDs unique.
	reps := e.Reports()
	seen := make(map[int]bool, len(reps))
	for _, r := range reps {
		if seen[r.QueryID] {
			t.Fatalf("duplicate query ID %d in reports", r.QueryID)
		}
		seen[r.QueryID] = true
	}
	if len(reps) != goroutines*perG+1 {
		t.Fatalf("reports = %d, want %d", len(reps), goroutines*perG+1)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
