package core

import (
	"sync"
	"testing"

	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

// Fast-path differential harness: the plan cache is supposed to be invisible
// to query answers. A hit replays the candidate set a cold PlanWith against
// the same (table epochs, snapshot identity) state would rebuild; plan
// choice, execution seeding and benefit recording all still run per query.
// The tests below drive the PR-6 randomized stream — interleaved queries and
// append batches — through asynchronous engines that differ only in whether
// the cache is enabled, and demand bit-equal results. Drain() after every
// Execute pins the background tuning rounds to deterministic boundaries, so
// both engines see the identical snapshot sequence.

// runFastPathStream replays the fixed differential stream through a fresh
// asynchronous ModeTaster engine with the given plan cache size (negative
// disables caching), then replays every query twice back to back. The
// stream's 30 query instances are pairwise distinct (randomized parameters),
// so in-stream occurrences never share a key, and the tuner's occasional
// steady-state rearrangements advance the snapshot identity every ~20 rounds
// — repeats must land inside one identity window to hit, which back-to-back
// pairs (one tuning round apart) reliably do. The first of each pair re-keys
// the instance against the post-append epochs (a miss, by construction); the
// second is the lookup that actually traverses the hit path.
func runFastPathStream(t *testing.T, cacheSize, workers int) (diffRun, TuningStats) {
	t.Helper()
	w := workload.TPCH(0.004, 3)
	ops, err := w.Stream(diffStreamCfg)
	if err != nil {
		t.Fatal(err)
	}
	bytes, rows := w.CostScale()
	e := New(w.Catalog, Config{
		Mode:          ModeTaster,
		StorageBudget: bytes / 2,
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          7,
		Workers:       workers,
		MaxStaleness:  0.15,
		PlanCacheSize: cacheSize,
	})
	defer e.Close()
	// Pin plan costing as in runDifferentialStreamPinned: worker count
	// deliberately enters the cost model, and these tests vary Workers while
	// asserting identical plan choice.
	e.pl.Parallelism = 4

	var run diffRun
	exec1 := func(sql string) {
		q, err := sqlparser.Parse(sql, w.Catalog)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, sql)
		}
		res, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, sql)
		}
		// Determinism barrier: fold this query's observation (and byproduct
		// admissions) into the published snapshot before the next query plans.
		e.Drain()
		run.rows = append(run.rows, res.Rows...)
		run.ivs = append(run.ivs, res.Intervals...)
		run.used = append(run.used, len(res.Report.UsedSynopses))
	}
	var sqls []string
	for _, op := range ops {
		if op.Append != nil {
			if _, err := e.Ingest(op.Append.Table, op.Append.Rows); err != nil {
				t.Fatalf("ingest %s: %v", op.Append.Table, err)
			}
			continue
		}
		sqls = append(sqls, op.SQL)
		exec1(op.SQL)
	}
	for _, sql := range sqls {
		exec1(sql)
		exec1(sql)
	}
	return run, e.TuningStats()
}

// TestDifferentialPlanCacheTransparent: the acceptance criterion — at worker
// counts 1, 4 and 8, with appends landing mid-stream (epoch invalidations)
// and a snapshot republish after every query, the cached engine's answers
// are bit-identical to the cache-disabled engine's. The hit assertion keeps
// the equivalence non-vacuous: at least part of the replayed stream must
// actually have been served from the cache.
func TestDifferentialPlanCacheTransparent(t *testing.T) {
	var hot1 diffRun
	for i, workers := range []int{1, 4, 8} {
		cold, coldStats := runFastPathStream(t, -1, workers)
		hot, hotStats := runFastPathStream(t, 4096, workers)
		label := map[int]string{1: "workers=1", 4: "workers=4", 8: "workers=8"}[workers]
		mustEqualRuns(t, "cached vs cold "+label, cold, hot)
		if hotStats.PlanCacheHits == 0 {
			t.Fatalf("%s: cached run never hit; differential coverage is vacuous (stats %+v)", label, hotStats)
		}
		if coldStats.PlanCacheHits != 0 || coldStats.PlanCacheMisses != 0 {
			t.Fatalf("%s: disabled cache must not count lookups (stats %+v)", label, coldStats)
		}
		// The cached runs must also agree with each other across worker
		// counts: hit-path execution is worker-oblivious like everything else.
		if i == 0 {
			hot1 = hot
		} else {
			mustEqualRuns(t, "cached workers=1 vs "+label, hot1, hot)
		}
	}
}

// TestPlanCacheHitDeterministicAndInvalidated: steady-state behaviour of one
// repeated template on a single engine — repeats converge to the hit path,
// hit-path answers are bit-identical to each other, and an ingest-driven
// epoch bump forces the next lookup to miss (invalidation by construction).
func TestPlanCacheHitDeterministicAndInvalidated(t *testing.T) {
	w := workload.TPCH(0.004, 3)
	ops, err := w.Stream(diffStreamCfg)
	if err != nil {
		t.Fatal(err)
	}
	var sql string
	var app *workload.AppendBatch
	for _, op := range ops {
		if op.Append != nil && app == nil {
			app = op.Append
		}
		if op.Append == nil && sql == "" {
			sql = op.SQL
		}
	}
	if sql == "" || app == nil {
		t.Fatal("stream has no query or no append")
	}
	bytes, rows := w.CostScale()
	e := New(w.Catalog, Config{
		Mode:          ModeTaster,
		StorageBudget: bytes / 2,
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          7,
		Workers:       2,
		MaxStaleness:  0.15,
	})
	defer e.Close()

	exec1 := func() diffRun {
		q, err := sqlparser.Parse(sql, w.Catalog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		e.Drain()
		return diffRun{rows: res.Rows, ivs: res.Intervals, used: []int{len(res.Report.UsedSynopses)}}
	}

	// Warmup repeats: the first execution misses and may materialize a
	// byproduct (whose admission advances the snapshot identity); once the
	// warehouse stops rearranging, the identity carries forward across the
	// per-query republishes and repeats hit.
	var prev, last diffRun
	for i := 0; i < 8; i++ {
		prev, last = last, exec1()
	}
	st := e.TuningStats()
	if st.PlanCacheHits == 0 {
		t.Fatalf("8 identical repeats never hit the plan cache (stats %+v)", st)
	}
	// The last two repeats are both steady-state: same key, same plan set,
	// same plan text, same seed — their answers must be bit-identical.
	mustEqualRuns(t, "steady-state repeats", prev, last)

	// Ingest bumps the bound table epochs: the next lookup keys differently
	// and must miss — a stale entry is never consulted.
	if _, err := e.Ingest(app.Table, app.Rows); err != nil {
		t.Fatal(err)
	}
	before := e.TuningStats()
	exec1()
	after := e.TuningStats()
	if after.PlanCacheMisses != before.PlanCacheMisses+1 {
		t.Fatalf("post-ingest lookup must miss: before %+v after %+v", before, after)
	}
}

// TestPlanCacheStorm: Execute vs Ingest vs cache eviction under -race. An
// undersized cache (2 entries, ~18 query templates) churns the LRU while
// four query goroutines and one ingest goroutine run concurrently; the test
// asserts race-freedom (via the -race harness), that every query succeeds,
// and that evictions actually happened so the churn is not hypothetical.
func TestPlanCacheStorm(t *testing.T) {
	w := workload.TPCH(0.004, 3)
	ops, err := w.Stream(workload.StreamConfig{Queries: 24, AppendEvery: 4, BatchFrac: 0.05, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var sqls []string
	var appends []*workload.AppendBatch
	for _, op := range ops {
		if op.Append != nil {
			appends = append(appends, op.Append)
		} else {
			sqls = append(sqls, op.SQL)
		}
	}
	bytes, rows := w.CostScale()
	e := New(w.Catalog, Config{
		Mode:          ModeTaster,
		StorageBudget: bytes / 2,
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          7,
		Workers:       2,
		MaxStaleness:  0.15,
		PlanCacheSize: 2,
	})
	defer e.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2*len(sqls); i++ {
				sql := sqls[(g+i)%len(sqls)]
				q, err := sqlparser.Parse(sql, w.Catalog)
				if err != nil {
					t.Errorf("parse: %v", err)
					return
				}
				if _, err := e.Execute(q); err != nil {
					t.Errorf("execute: %v\nSQL: %s", err, sql)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, a := range appends {
			if _, err := e.Ingest(a.Table, a.Rows); err != nil {
				t.Errorf("ingest %s: %v", a.Table, err)
				return
			}
		}
	}()
	wg.Wait()
	e.Quiesce()
	st := e.TuningStats()
	if st.PlanCacheEvictions == 0 {
		t.Fatalf("storm never evicted from the undersized cache (stats %+v)", st)
	}
	if st.PlanCacheMisses == 0 {
		t.Fatalf("storm never missed (stats %+v)", st)
	}
}
