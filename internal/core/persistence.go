package core

import (
	"fmt"

	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/persist"
	"github.com/tasterdb/taster/internal/synopses"
	"github.com/tasterdb/taster/internal/tuner"
	"github.com/tasterdb/taster/internal/warehouse"
)

// diskSpiller adapts the persist store to the warehouse's Spiller
// interface: payloads cross as versioned binary records (persist.Encode).
type diskSpiller struct{ db *persist.Store }

// Spill implements warehouse.Spiller.
func (d diskSpiller) Spill(id uint64, p *warehouse.Payload) error {
	switch {
	case p.Sample != nil:
		return d.db.WriteItem(id, persist.Encode(p.Sample))
	case p.Sketch != nil:
		return d.db.WriteItem(id, persist.Encode(p.Sketch))
	}
	return fmt.Errorf("core: spilling synopsis #%d: empty payload", id)
}

// Load implements warehouse.Spiller.
func (d diskSpiller) Load(id uint64) (*warehouse.Payload, error) {
	b, err := d.db.ReadItem(id)
	if err != nil {
		return nil, err
	}
	s, err := persist.Decode(b)
	if err != nil {
		return nil, err
	}
	switch x := s.(type) {
	case *synopses.Sample:
		return &warehouse.Payload{Sample: x}, nil
	case *synopses.SketchJoin:
		return &warehouse.Payload{Sketch: x}, nil
	}
	return nil, fmt.Errorf("core: item %d holds a %T, not a warehouse synopsis", id, s)
}

// Remove implements warehouse.Spiller.
func (d diskSpiller) Remove(id uint64) error { return d.db.RemoveItem(id) }

// recoverLocked replays the warehouse directory's manifest into an empty
// engine: metadata entries (descriptors, benefit histories, freshness),
// observed table versions, the tuner's sliding window, the query-id
// high-water mark, and both warehouse tiers. Crash windows resolve to a
// consistent view — a manifest entry whose payload file is missing,
// truncated or checksum-broken is dropped (its metadata reverts to
// LocNone, so the planner simply re-tastes it), and payload files no
// manifest references are garbage-collected. Items whose payload was
// cached at checkpoint time are reloaded eagerly so post-restart plan
// costs match the uninterrupted engine's. Returns the number of items
// restored. Called from Open before the engine escapes.
func (e *Engine) recoverLocked() (int, error) {
	m, ok, err := e.db.LoadManifest()
	if err != nil {
		return 0, err
	}
	if !ok {
		// Fresh directory (or one whose manifest never made it to disk):
		// a cold start. Orphan payload files carry no recoverable identity
		// without a manifest, so clear them out.
		ids, err := e.db.ItemIDs()
		if err != nil {
			return 0, err
		}
		for _, id := range ids {
			_ = e.db.RemoveItem(id)
		}
		return 0, nil
	}

	for _, rec := range m.Entries {
		d, benefits, builtBy, err := rec.Entry()
		if err != nil {
			return 0, fmt.Errorf("core: recovering warehouse: %w", err)
		}
		if err := e.store.Restore(d, benefits, builtBy); err != nil {
			return 0, fmt.Errorf("core: recovering warehouse: %w", err)
		}
	}
	e.store.SeedNextID(m.NextSynopsisID)
	for t, v := range m.Tables {
		e.store.ObserveVersion(t, v.Epoch, v.Rows)
	}
	e.tn.Restore(m.Window, m.SinceAdapt, windowObservations(m.History))
	e.queryCount.Store(m.QueryCount)

	sp := diskSpiller{e.db}
	restored := 0
	inManifest := make(map[uint64]bool, len(m.Items))
	for _, ir := range m.Items {
		inManifest[ir.ID] = true
		kind := warehouse.SampleItem
		if ir.Kind == persist.KindSketch {
			kind = warehouse.SketchItem
		}
		// Validate the payload file up front (header, id, length, CRC): a
		// spill torn by a crash must not occupy quota as an unloadable
		// item. The manifest row must also describe THESE bytes — a crash
		// between a refresh's payload overwrite and the manifest write
		// leaves an internally valid file of a different build; since
		// SizeBytes == encoded length, a size mismatch detects it and the
		// item drops to re-taste rather than serving bytes its recorded
		// metadata (size, rows, freshness) does not describe.
		payload, err := e.db.ReadItem(ir.ID)
		if err != nil || int64(len(payload)) != ir.Size {
			e.dropRecovered(ir.ID)
			continue
		}
		// Build the item fully BEFORE placing it in a tier: an item whose
		// eager decode fails must never be restored at all — in particular
		// a pinned one, which no later path could evict. Checkpoint-cached
		// items decode straight from the just-validated bytes (one disk
		// read, not a re-load through the spiller).
		var it *warehouse.Item
		if ir.Loaded {
			s, err := persist.Decode(payload)
			if err != nil {
				e.dropRecovered(ir.ID)
				continue
			}
			switch x := s.(type) {
			case *synopses.Sample:
				it = warehouse.NewSampleItem(ir.ID, x)
			case *synopses.SketchJoin:
				it = warehouse.NewSketchItem(ir.ID, x)
			}
			if it == nil || it.Kind() != kind {
				e.dropRecovered(ir.ID) // manifest kind and payload disagree
				continue
			}
			it.Pinned = ir.Pinned
		} else {
			it = warehouse.RestoredItem(ir.ID, kind, ir.Size, ir.Rows, ir.Pinned, sp)
		}
		if err := e.wh.RestoreItem(it, ir.Tier == persist.TierBuffer); err != nil {
			// The restart may run under a smaller quota than the checkpoint;
			// overflow items are dropped, not squeezed in.
			e.dropRecovered(ir.ID)
			continue
		}
		restored++
	}
	// Manifest entries that claim materialization but have no item row
	// (e.g. a checkpoint raced an eviction) revert to candidates.
	for _, ent := range e.store.Materialized() {
		if !e.wh.Has(ent.Desc.ID) {
			e.store.SetLocation(ent.Desc.ID, meta.LocNone)
		}
	}
	// Garbage-collect payload files the manifest does not reference — a
	// spill that completed after the last durable manifest write.
	ids, err := e.db.ItemIDs()
	if err != nil {
		return restored, err
	}
	for _, id := range ids {
		if !inManifest[id] {
			_ = e.db.RemoveItem(id)
		}
	}
	return restored, nil
}

// dropRecovered reverts one unrecoverable item to the consistent
// "never materialized" state.
func (e *Engine) dropRecovered(id uint64) {
	_ = e.db.RemoveItem(id)
	e.store.SetLocation(id, meta.LocNone)
}

// checkpointLocked writes the engine's durable state to the warehouse
// directory: payload files are already on disk (spilled at promotion
// time), so a checkpoint is one crash-safe manifest write indexing them
// plus the metadata the next incarnation needs. withBufferPayloads
// additionally persists the in-memory buffer tier's payloads — the clean-
// shutdown path, letting a warm restart resume with byproducts that would
// otherwise be volatile. Caller holds tuneMu.
func (e *Engine) checkpointLocked(withBufferPayloads bool) error {
	if e.db == nil {
		return nil
	}
	w, sinceAdapt, hist := e.tn.Checkpoint()
	m := &persist.Manifest{
		NextSynopsisID: e.store.NextID(),
		QueryCount:     e.queryCount.Load(),
		Window:         w,
		SinceAdapt:     sinceAdapt,
		History:        windowRecords(hist),
	}
	for t, v := range e.store.TableVersions() {
		if m.Tables == nil {
			m.Tables = make(map[string]persist.TableVersion)
		}
		m.Tables[t] = persist.TableVersion{Epoch: v.Epoch, Rows: v.Rows}
	}
	for _, ent := range e.store.Entries() {
		rec, err := persist.EntryRecordOf(ent)
		if err != nil {
			return err
		}
		m.Entries = append(m.Entries, rec)
	}
	view := e.wh.View()
	sp := diskSpiller{e.db}
	for _, it := range view.BufferItems() {
		if withBufferPayloads {
			p, err := itemPayload(it)
			if err != nil {
				return err
			}
			if err := sp.Spill(it.ID, p); err != nil {
				return err
			}
		}
		m.Items = append(m.Items, itemRecord(it, persist.TierBuffer))
	}
	for _, it := range view.WarehouseItems() {
		m.Items = append(m.Items, itemRecord(it, persist.TierWarehouse))
	}
	return e.db.WriteManifest(m)
}

// noteCheckpointLocked runs a background-round checkpoint, remembering the
// first failure (surfaced by Close) instead of failing the serving path —
// the next round retries, and recovery validation keeps any partial state
// consistent. Caller holds tuneMu.
func (e *Engine) noteCheckpointLocked() {
	if err := e.checkpointLocked(false); err != nil && e.persistErr == nil {
		e.persistErr = err
	}
}

// itemRecord converts a warehouse item to its manifest row.
func itemRecord(it *warehouse.Item, tier string) persist.ItemRecord {
	kind := persist.KindSample
	if it.Kind() == warehouse.SketchItem {
		kind = persist.KindSketch
	}
	return persist.ItemRecord{
		ID:     it.ID,
		Tier:   tier,
		Kind:   kind,
		Size:   it.Size,
		Rows:   it.Rows,
		Pinned: it.Pinned,
		Loaded: it.Loaded(),
	}
}

// itemPayload extracts an item's in-memory payload (buffer items are
// always loaded).
func itemPayload(it *warehouse.Item) (*warehouse.Payload, error) {
	if it.Kind() == warehouse.SketchItem {
		sk, err := it.Sketch()
		if err != nil {
			return nil, err
		}
		return &warehouse.Payload{Sketch: sk}, nil
	}
	s, err := it.Sample()
	if err != nil {
		return nil, err
	}
	return &warehouse.Payload{Sample: s}, nil
}

// windowRecords converts tuner observations to manifest rows.
func windowRecords(obs []tuner.Observation) []persist.WindowRecord {
	out := make([]persist.WindowRecord, len(obs))
	for i, o := range obs {
		out[i] = persist.WindowRecord{QueryID: o.QueryID, ExactCost: o.ExactCost}
	}
	return out
}

// windowObservations is the inverse of windowRecords.
func windowObservations(recs []persist.WindowRecord) []tuner.Observation {
	out := make([]tuner.Observation, len(recs))
	for i, r := range recs {
		out[i] = tuner.Observation{QueryID: r.QueryID, ExactCost: r.ExactCost}
	}
	return out
}
