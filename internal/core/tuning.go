package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/tuner"
	"github.com/tasterdb/taster/internal/warehouse"
)

// tuningSnapshot is the immutable tuning state the lock-free serving path
// reads: the warehouse view the last tuning round left behind, the selected
// synopsis set S* with its marginal gains, per-member staleness as of the
// publish, and the sliding-window length. A new snapshot is swapped in
// atomically (RCU-style) after every background batch, elastic budget
// change, pinned-hint install or ingest; readers holding an older snapshot
// keep a coherent — merely slightly stale — view of the world, which is
// exactly the staleness budget asynchronous tuning trades for a lock-free
// hot path. All fields are read-only after publish.
//
//taster:immutable
type tuningSnapshot struct {
	wh        *warehouse.View
	keep      map[uint64]bool
	gains     map[uint64]float64
	staleness map[uint64]float64
	window    int
	version   uint64
	// ident is the snapshot's *planning* identity: it advances only when
	// the state the planner's candidate enumeration reads — the warehouse
	// item set (pointer-wise, so refreshes count) or any materialized
	// item's staleness — materially changed since the previous publish.
	// Publishes that merely slid the window or recomputed gains carry the
	// previous ident forward: those inputs feed plan *choice*, which the
	// serving path re-runs on every query anyway. The plan cache keys on
	// ident, so per-batch republishes under a steady workload do not evict
	// it, while every rearrangement orphans stale entries by construction.
	ident uint64
	// viewStale is the staleness of every materialized item at publish
	// time, kept for the next publish's ident comparison.
	viewStale map[uint64]float64
}

// chooseFromSnapshot runs the §V plan-choice rule against published state:
// the same scoring as the synchronous round, with synopsis presence and
// staleness read from the snapshot instead of live stores. Materialization
// is gated on the published S* — a synopsis first seen by this query
// becomes materializable only after a background round has selected it,
// which delays warmup by one batch and is the price of never tuning on the
// critical path.
func chooseFromSnapshot(ps *planner.PlanSet, snap *tuningSnapshot) tuner.Decision {
	chosen := tuner.ChoosePlan(ps, snap.keep, snap.gains, snap.window, snap.wh.Has,
		func(id uint64) float64 { return snap.staleness[id] })
	dec := tuner.Decision{Chosen: chosen, Keep: snap.keep, Gains: snap.gains}
	for _, cs := range chosen.Creates {
		if snap.keep[cs.Entry.Desc.ID] {
			dec.Materialize = append(dec.Materialize, cs)
		}
	}
	return dec
}

// republishLocked re-publishes the snapshot from current warehouse/store
// state, carrying forward the last published keep/gain sets — the idiom
// every non-round publisher (Ingest, PinSample, Quiesce) uses. Caller
// holds tuneMu.
func (e *Engine) republishLocked() {
	prev := e.snap.Load()
	e.publishLocked(prev.keep, prev.gains)
}

// publishLocked swaps in a fresh tuning snapshot built from the current
// warehouse view, tuner window and the given keep/gain state. Caller holds
// tuneMu (or is the constructor, before the engine escapes), which is what
// orders publishes.
func (e *Engine) publishLocked(keep map[uint64]bool, gains map[uint64]float64) {
	ids := make([]uint64, 0, len(keep))
	//taster:sorted ids only feeds StalenessOf, which returns a keyed map — element order cannot reach any output
	for id := range keep {
		ids = append(ids, id)
	}
	view := e.wh.View()
	viewIDs := make([]uint64, 0, 16)
	for _, it := range view.BufferItems() {
		viewIDs = append(viewIDs, it.ID)
	}
	for _, it := range view.WarehouseItems() {
		viewIDs = append(viewIDs, it.ID)
	}
	viewStale := e.store.StalenessOf(viewIDs)
	prev := e.snap.Load()
	e.snapVersion++
	ident := e.snapVersion
	carried := prev != nil && prev.wh.SameContents(view) && sameStaleMap(prev.viewStale, viewStale)
	if carried {
		ident = prev.ident
	}
	if e.mx != nil {
		e.mx.SnapshotPublishes.Inc()
		if carried {
			e.mx.SnapshotIdentCarries.Inc()
		}
	}
	e.snap.Store(&tuningSnapshot{
		wh:        view,
		keep:      keep,
		gains:     gains,
		staleness: e.store.StalenessOf(ids),
		window:    e.tn.Window(),
		version:   e.snapVersion,
		ident:     ident,
		viewStale: viewStale,
	})
}

// sameStaleMap compares two staleness maps exactly: any drift in any
// materialized item's staleness must advance the planning identity, since
// the planner's staleness gate and cost penalty read it.
func sameStaleMap(a, b map[uint64]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for id, s := range a {
		if o, ok := b[id]; !ok || o != s {
			return false
		}
	}
	return true
}

// builtSynopsis is a byproduct built during execution, awaiting admission:
// the item plus the source versions its build plan actually scanned.
type builtSynopsis struct {
	item       *warehouse.Item
	id         uint64
	srcEpoch   uint64
	srcByTable map[string]int64
}

// observation is one served query's contribution to tuning: the window
// record (plain values — the caller's Query may be legally reused by a
// later Execute, so nothing of the plan set is retained past the query's
// own Execute call), the synopses its chosen plan read (exempt from
// eviction for one round), and any byproducts awaiting admission.
type observation struct {
	obs   tuner.Observation
	uses  []uint64
	built []builtSynopsis
}

// TuningStats is the background tuning service's cumulative accounting.
type TuningStats struct {
	// Rounds is the number of batches tuned (== snapshot publishes from the
	// service; elastic/pin/ingest publishes are not rounds).
	Rounds int64
	// Observations is the number of served queries folded into the window.
	Observations int64
	// Dropped counts observations shed because the queue was full; their
	// byproducts were discarded and their window contribution lost.
	Dropped int64
	// Admitted/Refreshed/Evicted/Promoted count warehouse rearrangements
	// applied by the service.
	Admitted  int64
	Refreshed int64
	Evicted   int64
	Promoted  int64
	// SnapshotVersion is the version of the currently published snapshot.
	SnapshotVersion uint64
	// PlanCacheHits/Misses/Evictions account the serving fast path's
	// plan-set cache (all zero when Config.PlanCacheSize disables it).
	PlanCacheHits      int64
	PlanCacheMisses    int64
	PlanCacheEvictions int64
}

// tuningService is the engine's background tuner: a single goroutine
// draining the bounded observation queue into batched tuning rounds. One
// round = admissions, window observations, one set selection, the derived
// evictions/promotions, and exactly one snapshot publish.
type tuningService struct {
	eng     *Engine
	obsCh   chan *observation
	flushCh chan chan struct{}
	done    chan struct{}
	exited  chan struct{}
	closed  sync.Once
	dropped atomic.Int64

	// stats fields below are written under eng.tuneMu.
	stats TuningStats
}

func newTuningService(e *Engine, queue int) *tuningService {
	s := &tuningService{
		eng:     e,
		obsCh:   make(chan *observation, queue),
		flushCh: make(chan chan struct{}),
		done:    make(chan struct{}),
		exited:  make(chan struct{}),
	}
	go s.loop()
	return s
}

// enqueue hands an observation to the service without ever blocking the
// serving path: when the queue is full the observation is shed (counted in
// TuningStats.Dropped) — under overload the engine keeps answering queries
// at full speed and tuning fidelity degrades instead of latency.
func (s *tuningService) enqueue(o *observation) bool {
	select {
	case s.obsCh <- o:
		if mx := s.eng.mx; mx != nil {
			mx.TuningQueueDepth.Set(int64(len(s.obsCh)))
		}
		return true
	default:
		s.dropped.Add(1)
		if mx := s.eng.mx; mx != nil {
			mx.TuningShed.Inc()
		}
		return false
	}
}

// loop is the service goroutine: batch up whatever has queued, tune, and
// publish. A flush request (Drain) processes the entire backlog before
// acking, which is the determinism barrier tests and experiments use.
func (s *tuningService) loop() {
	defer close(s.exited)
	for {
		// Shutdown takes priority: a Go select picks randomly among ready
		// cases, so without this check a closed done channel could lose to
		// a busy observation queue indefinitely and the service would keep
		// tuning after Close.
		select {
		case <-s.done:
			return
		default:
		}
		select {
		case <-s.done:
			return
		case o := <-s.obsCh:
			// Pace the round so the batch can fill: under sustained traffic a
			// hair-trigger service runs one micro-round per observation, and
			// every warmup rearrangement then lands in its own publish — each
			// of which can advance the snapshot identity that keys the plan
			// cache, keeping hit windows pathologically short. Waiting one
			// batch delay coalesces rearrangements into few publishes; tuning
			// is off the query critical path, so the only cost is snapshot
			// freshness lagging by at most the delay. Drain bypasses the
			// pacing (the flush case below never waits).
			select {
			case <-s.done:
				return
			case ack := <-s.flushCh:
				s.runBatch(s.gather(o))
				for {
					batch := s.gather(nil)
					if len(batch) == 0 {
						break
					}
					s.runBatch(batch)
				}
				close(ack)
				continue
			case <-time.After(tuneBatchDelay):
			}
			s.runBatch(s.gather(o))
		case ack := <-s.flushCh:
			// A flush must clear the whole backlog, not just one batch:
			// gather caps at maxBatch so a deep queue still publishes at a
			// steady cadence, but Drain's contract is "everything enqueued
			// before the call is tuned" — keep rounding until dry.
			for {
				batch := s.gather(nil)
				if len(batch) == 0 {
					break
				}
				s.runBatch(batch)
			}
			close(ack)
		}
	}
}

// maxBatch bounds one round's observation count so a deep backlog still
// publishes fresh snapshots at a steady cadence instead of one giant round.
const maxBatch = 256

// tuneBatchDelay is how long the service lets a batch fill after its first
// observation arrives before running the round (see the pacing comment in
// loop). It bounds how far published tuning state can lag the served
// workload when traffic is light.
const tuneBatchDelay = 20 * time.Millisecond

// gather drains the queue non-blockingly into a batch seeded with head.
func (s *tuningService) gather(head *observation) []*observation {
	var batch []*observation
	if head != nil {
		batch = append(batch, head)
	}
	for len(batch) < maxBatch {
		select {
		case o := <-s.obsCh:
			batch = append(batch, o)
		default:
			return batch
		}
	}
	return batch
}

// runBatch applies one asynchronous tuning round under the tuning mutex:
// byproduct admissions first (so set selection sees them materialized),
// then the batched §V round, then the warehouse rearrangement, and finally
// one snapshot publish that makes the whole rearrangement visible to the
// serving path at once — queries never observe a half-applied synopsis set.
func (s *tuningService) runBatch(batch []*observation) {
	e := s.eng
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	roundStart := e.clock.Now() //taster:clock round timing is observability-only; the round's decisions never read it

	protect := make(map[uint64]bool)
	obs := make([]tuner.Observation, 0, len(batch))
	for _, o := range batch {
		for _, b := range o.built {
			stored, refreshed := e.admitLocked(b.item, b.id, b.srcEpoch, b.srcByTable)
			if stored {
				s.stats.Admitted++
			}
			if refreshed {
				s.stats.Refreshed++
			}
		}
		for _, id := range o.uses {
			protect[id] = true
		}
		obs = append(obs, o.obs)
	}

	dec := e.tn.TuneBatch(obs, protect)
	// One warehouse call applies the whole rearrangement (single lock hold,
	// single view publish) instead of re-copying the tiers per synopsis.
	evicted, promoted := e.wh.ApplyMoves(dec.Evict, dec.Promote)
	for _, id := range evicted {
		e.store.SetLocation(id, meta.LocNone)
	}
	for _, id := range promoted {
		e.store.SetLocation(id, meta.LocWarehouse)
	}
	s.stats.Evicted += int64(len(evicted))
	s.stats.Promoted += int64(len(promoted))
	s.stats.Rounds++
	s.stats.Observations += int64(len(batch))
	if e.mx != nil {
		e.mx.TuningRounds.Inc()
		e.mx.TuningBatchSize.Observe(float64(len(batch)))
		e.mx.TuningRoundSeconds.Observe(e.clock.Since(roundStart).Seconds()) //taster:clock round timing is observability-only; the round's decisions never read it
	}
	e.publishLocked(dec.Keep, dec.Gains)
	if e.db != nil {
		// Durable index of this round's layout; payload files were written
		// at spill time, so one manifest write checkpoints the whole round.
		e.noteCheckpointLocked()
	}
}

// Drain blocks until every observation enqueued before the call has been
// tuned and the resulting snapshot published — the barrier that makes
// sequential Execute→Drain loops deterministic. No-op for synchronous and
// baseline engines.
func (e *Engine) Drain() {
	if e.svc == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case e.svc.flushCh <- ack:
		<-ack
	case <-e.svc.done:
	}
}

// Quiesce drains the tuning pipeline and then republishes the snapshot
// from current store/warehouse state. After it returns, the published
// tuning state reflects every completed query and ingest — experiments use
// it as the settle point before reading results. No-op for synchronous and
// baseline engines.
func (e *Engine) Quiesce() {
	if e.svc == nil {
		return
	}
	e.Drain()
	e.tuneMu.Lock()
	e.republishLocked()
	e.tuneMu.Unlock()
}

// Close stops the background tuning service and waits for its goroutine to
// exit: after Close returns, no batch runs and no snapshot publish happens
// unless triggered by another engine entry point. Observations still queued
// are discarded — call Drain first if they matter.
//
// With a persistent warehouse (Config.WarehouseDir), Close then writes the
// final checkpoint: the buffer tier's payloads (volatile byproducts during
// normal operation) are spilled alongside the already-durable warehouse
// tier, and the manifest indexes the complete state — the clean-shutdown
// half of the warm-restart contract. The returned error reports a failed
// final checkpoint or the first failed background one; memory-resident
// engines always return nil. Safe to call multiple times, so callers may
// always defer it.
func (e *Engine) Close() error {
	if e.svc != nil {
		e.svc.closed.Do(func() { close(e.svc.done) })
		<-e.svc.exited
	}
	if e.db == nil {
		return nil
	}
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	if err := e.checkpointLocked(true); err != nil {
		return err
	}
	return e.persistErr
}

// TuningStats returns the background service's cumulative accounting (zero
// value for synchronous and baseline engines).
func (e *Engine) TuningStats() TuningStats {
	if e.svc == nil {
		return TuningStats{}
	}
	e.tuneMu.Lock()
	st := e.svc.stats
	e.tuneMu.Unlock()
	st.Dropped = e.svc.dropped.Load()
	st.SnapshotVersion = e.snap.Load().version
	if e.planCache != nil {
		cs := e.planCache.Stats()
		st.PlanCacheHits = cs.Hits
		st.PlanCacheMisses = cs.Misses
		st.PlanCacheEvictions = cs.Evictions
	}
	return st
}
