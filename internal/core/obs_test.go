package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

// obsRun replays the fixed differential stream through an engine with the
// full observability layer on — metrics registry wired into pool, plan
// cache, executor and disk hooks, plus per-query tracing — and returns the
// run's observable output alongside the engine metrics and a sample trace.
func obsRun(t *testing.T, workers int, disablePrune bool) (diffRun, obs.MetricsSnapshot, string) {
	t.Helper()
	w := workload.TPCH(0.004, 3)
	ops, err := w.Stream(diffStreamCfg)
	if err != nil {
		t.Fatal(err)
	}
	bytes, rows := w.CostScale()
	mx := obs.NewMetrics()
	e := New(w.Catalog, Config{
		Mode:           ModeTaster,
		StorageBudget:  bytes / 2,
		BufferSize:     bytes / 8,
		CostModel:      storage.ScaledCostModel(bytes, rows),
		Seed:           7,
		Workers:        workers,
		PartitionRows:  797,
		DisablePruning: disablePrune,
		MaxStaleness:   0.15,
		Synchronous:    true,
		Metrics:        mx,
		Trace:          true,
	})
	var run diffRun
	var trace string
	for _, op := range ops {
		if op.Append != nil {
			if _, err := e.Ingest(op.Append.Table, op.Append.Rows); err != nil {
				t.Fatalf("ingest %s: %v", op.Append.Table, err)
			}
			continue
		}
		q, err := sqlparser.Parse(op.SQL, w.Catalog)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, op.SQL)
		}
		res, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, op.SQL)
		}
		if res.Trace != "" {
			trace = res.Trace
		}
		run.rows = append(run.rows, res.Rows...)
		run.ivs = append(run.ivs, res.Intervals...)
		run.used = append(run.used, len(res.Report.UsedSynopses))
	}
	return run, e.MetricsSnapshot(), trace
}

// TestDifferentialObsOnVsOff is the observability layer's answer-neutrality
// proof: the full self-tuning engine with metrics AND tracing enabled must
// produce byte-identical rows, intervals and synopsis-reuse profiles to the
// bare engine — across worker counts 1/4/8 and with pruning on and off. The
// metrics side must also be non-vacuous: the run has to have actually
// counted queries, pool traffic and tuning rounds, and at least one query
// must have rendered a trace.
func TestDifferentialObsOnVsOff(t *testing.T) {
	for _, prune := range []bool{false, true} {
		for _, workers := range []int{1, 4, 8} {
			bare := runDifferentialStreamFull(t, ModeTaster, 797, workers, prune, false, 0)
			instr, snap, trace := obsRun(t, workers, prune)
			mustEqualRuns(t, "obs on-vs-off", bare, instr)

			if snap.QueriesServed != int64(diffStreamCfg.Queries) {
				t.Fatalf("QueriesServed = %d, want %d", snap.QueriesServed, diffStreamCfg.Queries)
			}
			if snap.QueryErrors != 0 {
				t.Fatalf("QueryErrors = %d, want 0", snap.QueryErrors)
			}
			if snap.IngestBatches == 0 || snap.IngestRows == 0 {
				t.Fatal("ingest counters stayed zero over a stream with appends")
			}
			if snap.TuningRounds == 0 || snap.SnapshotPublishes == 0 {
				t.Fatal("tuning counters stayed zero on a synchronous engine")
			}
			if snap.PoolBatchGets == 0 {
				t.Fatal("pool counters stayed zero: the hook wiring is dead")
			}
			if snap.KernelFilterBatches+snap.FallbackFilterBatches == 0 {
				t.Fatal("filter dispatch counters stayed zero")
			}
			if !prune && workers > 1 && snap.PrunedPartitions == 0 {
				t.Fatal("pruning enabled on a partitioned layout but no partition was ever pruned")
			}
			if prune && snap.PrunedPartitions != 0 {
				t.Fatalf("pruning disabled but PrunedPartitions = %d", snap.PrunedPartitions)
			}
			if trace == "" {
				t.Fatal("tracing enabled but no query rendered a trace")
			}
			if !strings.Contains(trace, "rows=") || !strings.Contains(trace, "batches=") {
				t.Fatalf("trace missing stat line:\n%s", trace)
			}
			// Frozen clock under Synchronous: durations must render as 0s,
			// or the trace would not be byte-reproducible.
			if strings.Contains(trace, "time=") && !strings.Contains(trace, "time=0s") {
				t.Fatalf("synchronous trace carries nonzero durations:\n%s", trace)
			}
		}
	}
}

// TestObsTraceDeterministic: two identical runs must render byte-identical
// traces (frozen clock, deterministic execution) — the trace is part of the
// reproducible surface, not a debug-only best effort.
func TestObsTraceDeterministic(t *testing.T) {
	_, _, a := obsRun(t, 4, false)
	_, _, b := obsRun(t, 4, false)
	if a != b {
		t.Fatalf("traces differ across identical runs:\n--- a\n%s--- b\n%s", a, b)
	}
}

// TestMetricsSnapshotRaceStorm hammers MetricsSnapshot concurrently with
// Execute, Ingest and SetStorageBudget on an asynchronous engine. Run under
// -race this proves the read surface never races the write path: every
// counter is atomic, the snapshot holds no locks, and the engine gauges it
// samples (plan-cache len, snapshot version, warehouse usage) are themselves
// safe against tuning.
func TestMetricsSnapshotRaceStorm(t *testing.T) {
	cat := testCatalog()
	mx := obs.NewMetrics()
	e := New(cat, Config{
		Mode:          ModeTaster,
		StorageBudget: cat.TotalBytes(),
		BufferSize:    cat.TotalBytes(),
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
		Metrics:       mx,
	})
	defer e.Close()

	mix := mixedQueries(e)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := e.Execute(mix[(i+g)%len(mix)]()); err != nil {
					t.Errorf("execute: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20 && !stop.Load(); i++ {
			if _, err := e.Ingest("sales", salesDelta(200, 40)); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		total := cat.TotalBytes()
		for i := 0; i < 20 && !stop.Load(); i++ {
			e.SetStorageBudget(total / int64(1+i%3))
		}
	}()

	// The storm itself: snapshot readers racing everything above, rendering
	// families and quantiles so every snapshot field is actually read. Keep
	// snapshotting until the writers have demonstrably produced traffic (or
	// a generous iteration cap trips — queries take milliseconds each).
	var last obs.MetricsSnapshot
	for i := 0; i < 200_000; i++ {
		last = e.MetricsSnapshot()
		for _, f := range last.Families() {
			if f.Kind == obs.KindHistogram {
				f.Hist.Quantile(0.99)
			}
		}
		if last.QueriesServed >= 20 && last.IngestBatches >= 5 {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if last.QueriesServed == 0 {
		t.Fatal("no snapshot ever observed a served query; the storm was vacuous")
	}
	s := e.MetricsSnapshot()
	if s.QueriesServed == 0 || s.IngestBatches == 0 {
		t.Fatalf("final snapshot missing traffic: %+v", s)
	}
}

// BenchmarkExecuteServeObs is BenchmarkExecuteServe with the metrics layer
// on: the same steady-state fast path, now paying one atomic add per hook.
// Compare against BenchmarkExecuteServe to see the layer's cost; the
// acceptance budget is <5% regression, and the allocation tripwire below
// holds the same allocs/op line as the bare path — the metrics layer must
// not allocate per query.
func BenchmarkExecuteServeObs(b *testing.B) {
	e, w, queries := newServeBench(b, obs.NewMetrics())
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := queries[i%len(queries)]
		q, err := sqlparser.Parse(sql, w.Catalog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExecuteServeObsAllocBudget holds the instrumented serving path to the
// same allocation budget as the bare one: counters are atomic adds and the
// latency histogram observes lock- and allocation-free, so turning metrics
// on must not add a single steady-state allocation per query.
func TestExecuteServeObsAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget benchmark skipped in -short mode")
	}
	const budget = 2_300 // same line as TestExecuteServeAllocBudget
	res := testing.Benchmark(BenchmarkExecuteServeObs)
	if got := res.AllocsPerOp(); got > budget {
		t.Fatalf("instrumented serving path allocates %d allocs/op, budget is %d — the metrics layer is allocating per query", got, budget)
	}
}
