package core

import (
	"testing"

	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/tuner"
	"github.com/tasterdb/taster/internal/workload"
)

// newServeBench builds a warmed asynchronous engine plus the query list the
// serving benchmarks replay: every query executed once (so synopses are
// observed, selected and materialized) and the tuner quiesced, leaving the
// steady-state fast path — plan-cache hit, snapshot plan choice, pooled
// execution — as the measured quantity. mx, when non-nil, enables the
// metrics layer (BenchmarkExecuteServeObs measures its serving-path cost).
func newServeBench(tb testing.TB, mx *obs.Metrics) (*Engine, *workload.Workload, []string) {
	tb.Helper()
	w := workload.TPCH(0.002, 3)
	queries := w.Queries(48, 42)
	bytes, rows := w.CostScale()
	e := New(w.Catalog, Config{
		Mode:          ModeTaster,
		StorageBudget: bytes * 4,
		BufferSize:    bytes,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          42,
		Workers:       1,
		Metrics:       mx,
		// Window the tuner over the whole repeating list (see the serving
		// experiment): with fewer window slots than distinct shapes the keep
		// set churns forever, the snapshot ident advances every round, and
		// the benchmark measures cache-miss replanning instead of the
		// steady-state fast path it exists to pin.
		Tuner: tuner.Config{
			Window:    2 * 48,
			Alpha:     0.25,
			Adaptive:  false,
			MaxWindow: 2 * 48,
		},
	})
	for pass := 0; pass < 3; pass++ {
		for _, sql := range queries {
			q, err := sqlparser.Parse(sql, w.Catalog)
			if err != nil {
				tb.Fatal(err)
			}
			if _, err := e.Execute(q); err != nil {
				tb.Fatal(err)
			}
		}
		e.Quiesce()
	}
	return e, w, queries
}

// BenchmarkExecuteServe measures the steady-state serving path per query:
// parse + cache-hit planning + snapshot plan choice + pooled execution.
// Run with -benchmem; TestExecuteServeAllocBudget holds the allocs/op line.
func BenchmarkExecuteServe(b *testing.B) {
	e, w, queries := newServeBench(b, nil)
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := queries[i%len(queries)]
		q, err := sqlparser.Parse(sql, w.Catalog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExecuteServeAllocBudget is the CI allocation-regression tripwire: the
// steady-state serving path must stay under an allocs/op budget. The budget
// is ~1.6x the measured baseline (~1.45k allocs/op with the engine-wide
// vector pool, pooled selection vectors on the kernel filter path, and the
// plan cache), so it tolerates noise and workload drift but fails on a
// regression of the pooling or caching machinery itself.
func TestExecuteServeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget benchmark skipped in -short mode")
	}
	const budget = 2_300 // allocs per served query, steady state
	res := testing.Benchmark(BenchmarkExecuteServe)
	if got := res.AllocsPerOp(); got > budget {
		t.Fatalf("serving fast path allocates %d allocs/op, budget is %d — pooled execution or plan caching regressed", got, budget)
	}
}
