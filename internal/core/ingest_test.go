package core

import (
	"math"
	"sync"
	"testing"

	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// salesDelta builds an append batch for the test catalog's sales table with
// a value distribution deliberately unlike the seed data, so answers over
// the evolved table shift measurably.
func salesDelta(n int, qty float64) *storage.Table {
	b := storage.NewBuilder("sales", storage.Schema{
		{Name: "sales.product", Typ: storage.Int64},
		{Name: "sales.qty", Typ: storage.Float64},
		{Name: "sales.price", Typ: storage.Float64},
	})
	for i := 0; i < n; i++ {
		b.Int(0, int64(i%40))
		b.Float(1, qty)
		b.Float(2, 10)
	}
	return b.Build(1)
}

// exactOn answers the test query exactly over the engine's current catalog
// state (shares the catalog, so it sees ingested rows).
func exactOn(t *testing.T, e *Engine) map[int64]float64 {
	t.Helper()
	ex := New(e.Catalog(), Config{Mode: ModeExact, CostModel: storage.ScaledCostModel(e.Catalog().TotalBytes(), 1)})
	res, err := ex.Execute(catQuery(ex))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]float64)
	for _, r := range res.Rows {
		out[r[0].I] = r[1].F
	}
	return out
}

// TestIngestBoundsStaleness is the PR's acceptance scenario: materialize a
// sample, append rows that shift the answer, query again. Under the default
// fresh-only policy the engine must NOT silently serve the frozen sample —
// the pre-ingestion behavior — but refresh it (or answer another way) so the
// result tracks the evolved data within the accuracy bound.
func TestIngestBoundsStaleness(t *testing.T) {
	e := testEngine(ModeTaster) // MaxStaleness 0: fresh-only
	for i := 0; i < 6; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := e.Execute(catQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Report.UsedSynopses) == 0 {
		t.Fatal("test setup: engine must be reusing a synopsis before the append")
	}
	reused := warm.Report.UsedSynopses[0]

	// Double the table with rows whose qty distribution is ~10x the seed's.
	epoch, err := e.Ingest("sales", salesDelta(30000, 40))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch after first ingest = %d", epoch)
	}
	if s := e.Store().Staleness(reused); s < 0.4 {
		t.Fatalf("synopsis staleness after doubling append = %v, want ~0.5", s)
	}

	truth := exactOn(t, e)
	res, err := e.Execute(catQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	// The frozen sample would miss all 30000 new rows (~85% of the total
	// qty mass), so any answer within 15% of the evolved truth proves the
	// stale snapshot was not silently served.
	for _, r := range res.Rows {
		want := truth[r[0].I]
		if rel := math.Abs(r[1].F-want) / want; rel > 0.15 {
			t.Fatalf("cat %d: rel error vs evolved data %.3f > 15%% (stale answer served?)", r[0].I, rel)
		}
	}
	// Whatever synopsis answered must itself be fresh under the bound.
	for _, id := range res.Report.UsedSynopses {
		if s := e.Store().Staleness(id); s > 1e-9 {
			t.Fatalf("fresh-only policy served synopsis #%d with staleness %v", id, s)
		}
	}

	// Subsequent queries converge back to reuse over the evolved table, and
	// the reused synopsis reflects the new epoch.
	var last *Result
	for i := 0; i < 5; i++ {
		if last, err = e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	if len(last.Report.UsedSynopses) == 0 {
		t.Fatalf("no reuse after refresh cycle: %+v", last.Report)
	}
}

// TestIngestRefreshReplacesStaleCopy drives the refresh path explicitly:
// after an append, a rebuild of the same descriptor must replace the stored
// stale copy (Report.Refreshed) rather than no-op against it.
func TestIngestRefreshReplacesStaleCopy(t *testing.T) {
	e := testEngine(ModeTaster)
	for i := 0; i < 6; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Ingest("sales", salesDelta(30000, 40)); err != nil {
		t.Fatal(err)
	}
	refreshed := 0
	for i := 0; i < 6; i++ {
		res, err := e.Execute(catQuery(e))
		if err != nil {
			t.Fatal(err)
		}
		refreshed += len(res.Report.Refreshed)
	}
	if refreshed == 0 {
		t.Fatal("no synopsis was refreshed after the append")
	}
}

// TestIngestRefreshesPinnedSample: a pinned hint must not become dead
// weight after ingestion — the refresh path replaces its payload in place,
// carrying the pin, so it serves queries again under the fresh-only policy.
func TestIngestRefreshesPinnedSample(t *testing.T) {
	e := testEngine(ModeTaster)
	sales, _ := e.Catalog().Table("sales")
	smp := synopses.BuildSampleFromTable("hint", sales,
		synopses.NewDistinctSampler(0.01, 10, []int{0}, 3),
		[]string{"sales.product"})
	id, err := e.PinSample("sales", smp,
		[]string{"sales.product"}, []string{"sales.qty", "sales.price"},
		stats.AccuracySpec{RelError: 0.05, Confidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("sales", salesDelta(30000, 40)); err != nil {
		t.Fatal(err)
	}
	if s := e.Store().Staleness(id); s < 0.4 {
		t.Fatalf("pinned sample staleness after append = %v", s)
	}
	// Rebuild the hint over the evolved table and re-pin: the stored copy
	// must be refreshed in place (not rejected as a duplicate), stay
	// pinned, and read fresh again.
	cur, _ := e.Catalog().Table("sales")
	smp2 := synopses.BuildSampleFromTable("hint", cur,
		synopses.NewDistinctSampler(0.01, 10, []int{0}, 3),
		[]string{"sales.product"})
	id2, err := e.PinSample("sales", smp2,
		[]string{"sales.product"}, []string{"sales.qty", "sales.price"},
		stats.AccuracySpec{RelError: 0.05, Confidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("re-pin interned a new descriptor: %d vs %d", id2, id)
	}
	if s := e.Store().Staleness(id); s > 1e-9 {
		t.Fatalf("refreshed pinned sample still stale: %v", s)
	}
	it, _, ok := e.Warehouse().Get(id)
	if !ok || !it.Pinned {
		t.Fatal("refresh did not keep the pinned copy")
	}
	if got, err := it.Sample(); err != nil || got != smp2 {
		t.Fatalf("refresh did not replace the pinned copy in place: %v %v", got, err)
	}
	e.SetStorageBudget(1)
	if !e.Warehouse().Has(id) {
		t.Fatal("refreshed pinned sample lost its pin")
	}
}

// TestIngestDeterministicAcrossWorkers: the acceptance criterion's
// byte-identical guarantee extends to the ingest path — the same
// query/append/query sequence yields identical rows at any worker count.
func TestIngestDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) [][]storage.Value {
		cat := testCatalog()
		e := New(cat, Config{
			Mode:          ModeTaster,
			StorageBudget: cat.TotalBytes(),
			BufferSize:    cat.TotalBytes(),
			CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
			Seed:          7,
			Workers:       workers,
			Synchronous:   true, // worker-count identity is a sequential-pipeline property
		})
		var rows [][]storage.Value
		for i := 0; i < 3; i++ {
			res, err := e.Execute(catQuery(e))
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, res.Rows...)
		}
		if _, err := e.Ingest("sales", salesDelta(5000, 40)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			res, err := e.Execute(catQuery(e))
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, res.Rows...)
		}
		return rows
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("row count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for c := range a[i] {
			if !a[i][c].Equal(b[i][c]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, c, a[i][c], b[i][c])
			}
		}
	}
}

// TestIngestConcurrentWithExecute exercises the lock discipline under the
// race detector: queries, ingests and elastic budget changes in flight at
// once must neither race nor error.
func TestIngestConcurrentWithExecute(t *testing.T) {
	e := testEngine(ModeTaster)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := e.Execute(catQuery(e)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := e.Ingest("sales", salesDelta(500, 40)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		budgets := []int64{1 << 20, 1 << 26, 1 << 18, 1 << 27}
		for _, b := range budgets {
			e.SetStorageBudget(b)
		}
	}()
	wg.Wait()
}

// TestShrinkOverflowReachesZero: after any elastic shrink, the fallback
// eviction must bring the warehouse within quota whenever unpinned synopses
// exist — a failed tuner round or delete must not strand overflow.
func TestShrinkOverflowReachesZero(t *testing.T) {
	e := testEngine(ModeTaster)
	for i := 0; i < 6; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	for _, budget := range []int64{1 << 16, 1 << 12, 64, 1} {
		e.SetStorageBudget(budget)
		if e.Warehouse().Overflow() > 0 {
			for _, it := range e.Warehouse().WarehouseItems() {
				if !it.Pinned {
					t.Fatalf("budget %d: overflow %d with unpinned item #%d still stored",
						budget, e.Warehouse().Overflow(), it.ID)
				}
			}
		}
	}
}
