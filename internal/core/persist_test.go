package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

// persistEngine builds a synchronous engine over its own catalog with a
// disk-backed warehouse. The tiny buffer forces admissions to overflow to
// the warehouse tier, so spill/reload paths are exercised from the first
// materialization on.
func persistEngine(cat *storage.Catalog, dir string, tinyBuffer bool) (*Engine, error) {
	buf := cat.TotalBytes()
	if tinyBuffer {
		buf = 1 << 10
	}
	return Open(cat, Config{
		Mode:          ModeTaster,
		StorageBudget: cat.TotalBytes(),
		BufferSize:    buf,
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
		Synchronous:   true,
		WarehouseDir:  dir,
	})
}

// persistQuery returns the i-th query of a small recurring workload: the
// grouped join plus single-table variants, cycling so reuse kicks in.
func persistQuery(e *Engine, i int) *planner.Query {
	sales, _ := e.Catalog().Table("sales")
	products, _ := e.Catalog().Table("products")
	switch i % 3 {
	case 0, 1:
		return &planner.Query{
			Tables: []planner.TableRef{{Name: "sales", Table: sales}, {Name: "products", Table: products}},
			Joins: []planner.JoinPred{{
				LeftTable: "sales", LeftCol: "sales.product",
				RightTable: "products", RightCol: "products.id",
			}},
			GroupBy:  []string{"products.category"},
			Aggs:     []plan.AggSpec{{Kind: stats.Sum, Col: "sales.qty"}},
			Accuracy: stats.DefaultAccuracy,
		}
	default:
		return &planner.Query{
			Tables:   []planner.TableRef{{Name: "sales", Table: sales}},
			GroupBy:  []string{"sales.product"},
			Aggs:     []plan.AggSpec{{Kind: stats.Sum, Col: "sales.price"}},
			Accuracy: stats.DefaultAccuracy,
		}
	}
}

// renderResult flattens everything fidelity cares about: the chosen plan,
// the full plan tree, and every result cell with its interval.
func renderResult(res *Result) string {
	out := res.Report.PlanDesc + "\n" + res.Report.PlanTree + "\n"
	for i, row := range res.Rows {
		for _, v := range row {
			out += v.String() + "|"
		}
		if i < len(res.Intervals) {
			for _, iv := range res.Intervals[i] {
				out += fmt.Sprintf("%v±%v", iv.Estimate, iv.HalfWidth)
			}
		}
		out += "\n"
	}
	return out
}

// TestWarmRestartFidelity is the acceptance criterion: an engine closed
// and reopened from its warehouse directory serves the remaining workload
// with byte-identical answers and plan choices to an engine that never
// stopped.
func TestWarmRestartFidelity(t *testing.T) {
	const total, split = 12, 6

	// Uninterrupted reference (its own directory: persistence enabled, so
	// spill/fault cost dynamics match the restarted engine's).
	refCat := testCatalog()
	ref, err := persistEngine(refCat, t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < total; i++ {
		res, err := ref.Execute(persistQuery(ref, i))
		if err != nil {
			t.Fatal(err)
		}
		if i >= split {
			want = append(want, renderResult(res))
		}
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: first half, clean close, warm reopen, second half.
	dir := t.TempDir()
	cat := testCatalog()
	e1, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < split; i++ {
		if _, err := e1.Execute(persistQuery(e1, i)); err != nil {
			t.Fatal(err)
		}
	}
	bufBytes, whBytes := e1.wh.Usage()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Recovered() == 0 {
		t.Fatal("warm restart recovered no synopses")
	}
	if b2, w2 := e2.wh.Usage(); b2 != bufBytes || w2 != whBytes {
		t.Fatalf("recovered usage %d/%d, want %d/%d", b2, w2, bufBytes, whBytes)
	}
	for i := split; i < total; i++ {
		res, err := e2.Execute(persistQuery(e2, i))
		if err != nil {
			t.Fatal(err)
		}
		if got := renderResult(res); got != want[i-split] {
			t.Fatalf("query %d diverged after warm restart:\ngot:\n%s\nwant:\n%s", i, got, want[i-split])
		}
	}
}

// TestWarmRestartBeatsColdStart: the recovered warehouse serves the first
// post-restart query from a synopsis, while a cold-started engine must run
// the expensive exact/build plan — the latency gap the warmstart
// experiment measures.
func TestWarmRestartBeatsColdStart(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	e1, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := e1.Execute(persistQuery(e1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	wres, err := warm.Execute(persistQuery(warm, 0))
	if err != nil {
		t.Fatal(err)
	}

	cold, err := persistEngine(testCatalog(), t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	cres, err := cold.Execute(persistQuery(cold, 0))
	if err != nil {
		t.Fatal(err)
	}

	if len(wres.Report.UsedSynopses) == 0 {
		t.Fatalf("warm first query did not reuse a recovered synopsis (plan %q)", wres.Report.PlanDesc)
	}
	if wres.Report.SimSeconds >= cres.Report.SimSeconds {
		t.Fatalf("warm first query (%.3fs) not faster than cold start (%.3fs)",
			wres.Report.SimSeconds, cres.Report.SimSeconds)
	}
}

// TestCrashRecoveryTruncatedSpill simulates the crash windows: the engine
// dies without Close (stale manifest), one spilled payload file is
// truncated mid-write, and an orphan payload file has no manifest entry.
// Recovery must converge to a consistent view — the torn item reverts to
// never-materialized, the orphan is garbage-collected, and the engine
// keeps answering correctly.
func TestCrashRecoveryTruncatedSpill(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	e1, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := e1.Execute(persistQuery(e1, i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the last durable manifest is whatever the tuning rounds
	// checkpointed. There must be spilled payloads to corrupt.
	files, err := filepath.Glob(filepath.Join(dir, "item_*.syn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spilled payload files (%v)", err)
	}
	// Truncate one payload mid-file (torn write).
	st, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], st.Size()/2); err != nil {
		t.Fatal(err)
	}
	// Drop an orphan alongside (spill that outran the manifest).
	orphan := filepath.Join(dir, "item_999999.syn")
	if err := os.WriteFile(orphan, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, statErr := os.Stat(orphan); !os.IsNotExist(statErr) {
		t.Fatal("orphan payload file survived recovery")
	}
	if _, statErr := os.Stat(files[0]); !os.IsNotExist(statErr) {
		t.Fatal("truncated payload file survived recovery")
	}
	// Consistency: every materialized entry is present in the warehouse,
	// and everything the warehouse holds is loadable.
	for _, ent := range e2.Store().Materialized() {
		it, _, ok := e2.Warehouse().Get(ent.Desc.ID)
		if !ok {
			t.Fatalf("entry #%d claims %v but is not stored", ent.Desc.ID, ent.Desc.Location)
		}
		if err := it.EagerLoad(); err != nil {
			t.Fatalf("recovered item #%d unloadable: %v", ent.Desc.ID, err)
		}
	}
	// And the engine still serves every workload query.
	truth := exactAnswer(t)
	res, err := e2.Execute(persistQuery(e2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(truth) {
		t.Fatalf("post-recovery query lost groups: %d != %d", len(res.Rows), len(truth))
	}
}

// TestColdStartWipedManifest: payload files without a manifest carry no
// recoverable identity; Open must treat the directory as cold, clear it,
// and serve normally.
func TestColdStartWipedManifest(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	e1, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e1.Execute(persistQuery(e1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "MANIFEST.json")); err != nil {
		t.Fatal(err)
	}
	e2, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Recovered() != 0 {
		t.Fatalf("recovered %d items without a manifest", e2.Recovered())
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "item_*.syn")); len(files) != 0 {
		t.Fatalf("unreferenced payload files not cleared: %v", files)
	}
	if _, err := e2.Execute(persistQuery(e2, 0)); err != nil {
		t.Fatal(err)
	}
}

// TestRestartUnderSmallerBudget: reopening with a shrunken warehouse quota
// must drop overflow items (files included) instead of restoring over
// quota.
func TestRestartUnderSmallerBudget(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	e1, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := e1.Execute(persistQuery(e1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(cat, Config{
		Mode:          ModeTaster,
		StorageBudget: 1 << 10, // far below the checkpointed usage
		BufferSize:    1 << 10,
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
		Synchronous:   true,
		WarehouseDir:  dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, wu := e2.wh.Usage(); wu > 1<<10 {
		t.Fatalf("restored over quota: %d", wu)
	}
	for _, ent := range e2.Store().Materialized() {
		if !e2.Warehouse().Has(ent.Desc.ID) {
			t.Fatalf("entry #%d location %v inconsistent with dropped item", ent.Desc.ID, ent.Desc.Location)
		}
	}
	if _, err := e2.Execute(persistQuery(e2, 0)); err != nil {
		t.Fatal(err)
	}
}

// TestSpillLoadExecuteStorm races the disk-backed warehouse end to end:
// concurrent Executes (faulting spilled payloads in on the serving path)
// against the background tuner (spilling promotions, removing evictions)
// and elastic budget churn. Run under -race by the concurrency suite.
func TestSpillLoadExecuteStorm(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	e, err := Open(cat, Config{
		Mode:          ModeTaster,
		StorageBudget: cat.TotalBytes(),
		BufferSize:    1 << 10, // overflow admissions straight to disk
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
		WarehouseDir:  dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 4, 12
	var wg sync.WaitGroup
	errCh := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := e.Execute(persistQuery(e, i+c)); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			e.SetStorageBudget(cat.TotalBytes() / int64(1+i%3))
			e.Drain()
		}
		e.SetStorageBudget(cat.TotalBytes())
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	e.Quiesce()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The directory must reopen cleanly after the storm.
	e2, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for _, ent := range e2.Store().Materialized() {
		if !e2.Warehouse().Has(ent.Desc.ID) {
			t.Fatalf("entry #%d inconsistent after storm restart", ent.Desc.ID)
		}
	}
}

// TestIngestFreshnessSurvivesCrash: Ingest must checkpoint the observed
// table version — a crash right after an append must not recover synopses
// as fresh against pre-ingest row counts (stale serving across restart).
func TestIngestFreshnessSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	e1, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize something over sales, then append without Close (crash).
	var builtID uint64
	for i := 0; i < 6 && builtID == 0; i++ {
		res, err := e1.Execute(persistQuery(e1, i))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range res.Report.CreatedSynopses {
			builtID = id
		}
	}
	if builtID == 0 {
		t.Fatal("workload built no synopsis")
	}
	delta := storage.NewBuilder("sales", storage.Schema{
		{Name: "sales.product", Typ: storage.Int64},
		{Name: "sales.qty", Typ: storage.Float64},
		{Name: "sales.price", Typ: storage.Float64},
	})
	for i := 0; i < 15000; i++ {
		delta.Int(0, int64(i%40))
		delta.Float(1, 3)
		delta.Float(2, 9.5)
	}
	if _, err := e1.Ingest("sales", delta.Build(1)); err != nil {
		t.Fatal(err)
	}
	wantStale := e1.Store().Staleness(builtID)
	if wantStale <= 0 {
		t.Fatalf("synopsis #%d not stale after ingest", builtID)
	}
	// Crash (no Close). The recovered engine must still see the synopsis
	// as stale against the appended table version.
	e2, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.Store().Staleness(builtID); got < wantStale-1e-9 {
		t.Fatalf("staleness after crash-recovery = %v, want >= %v (stale-serving regression)", got, wantStale)
	}
}
