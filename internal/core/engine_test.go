package core

import (
	"math"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

func testCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	sales := storage.NewBuilder("sales", storage.Schema{
		{Name: "sales.product", Typ: storage.Int64},
		{Name: "sales.qty", Typ: storage.Float64},
		{Name: "sales.price", Typ: storage.Float64},
	})
	for i := 0; i < 30000; i++ {
		sales.Int(0, int64(i%40))
		sales.Float(1, float64(i%7+1))
		sales.Float(2, float64(i%100)+0.5)
	}
	cat.Register(sales.Build(4))

	products := storage.NewBuilder("products", storage.Schema{
		{Name: "products.id", Typ: storage.Int64},
		{Name: "products.category", Typ: storage.Int64},
	})
	for i := 0; i < 40; i++ {
		products.Int(0, int64(i))
		products.Int(1, int64(i%4))
	}
	cat.Register(products.Build(1))
	return cat
}

// testEngine builds a synchronous-mode engine: the inline tuning round
// keeps these behavioural tests deterministic. The asynchronous pipeline
// has its own suite in async_test.go.
func testEngine(mode Mode) *Engine {
	cat := testCatalog()
	return New(cat, Config{
		Mode:          mode,
		StorageBudget: cat.TotalBytes(), // 100% budget
		BufferSize:    cat.TotalBytes(),
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
		Synchronous:   true,
	})
}

func catQuery(e *Engine) *planner.Query {
	sales, _ := e.Catalog().Table("sales")
	products, _ := e.Catalog().Table("products")
	return &planner.Query{
		Tables: []planner.TableRef{{Name: "sales", Table: sales}, {Name: "products", Table: products}},
		Joins: []planner.JoinPred{{
			LeftTable: "sales", LeftCol: "sales.product",
			RightTable: "products", RightCol: "products.id",
		}},
		GroupBy:  []string{"products.category"},
		Aggs:     []plan.AggSpec{{Kind: stats.Sum, Col: "sales.qty"}},
		Accuracy: stats.DefaultAccuracy,
	}
}

func exactAnswer(t *testing.T) map[int64]float64 {
	t.Helper()
	e := testEngine(ModeExact)
	res, err := e.Execute(catQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]float64)
	for _, r := range res.Rows {
		out[r[0].I] = r[1].F
	}
	return out
}

func TestExactModeAnswers(t *testing.T) {
	truth := exactAnswer(t)
	if len(truth) != 4 {
		t.Fatalf("categories = %d", len(truth))
	}
	total := 0.0
	for _, v := range truth {
		total += v
	}
	want := 0.0
	for i := 0; i < 30000; i++ {
		want += float64(i%7 + 1)
	}
	if math.Abs(total-want) > 1e-6 {
		t.Fatalf("exact total %v != %v", total, want)
	}
}

func TestTasterConvergesToReuse(t *testing.T) {
	e := testEngine(ModeTaster)
	truth := exactAnswer(t)

	var first, last *Result
	for i := 0; i < 6; i++ {
		res, err := e.Execute(catQuery(e))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		}
		last = res
		// Group coverage: all 4 categories, every run.
		if len(res.Rows) != 4 {
			t.Fatalf("run %d: %d groups (missing groups!)", i, len(res.Rows))
		}
		for _, r := range res.Rows {
			want := truth[r[0].I]
			if rel := math.Abs(r[1].F-want) / want; rel > 0.15 {
				t.Fatalf("run %d cat %d: rel error %.3f > 15%%", i, r[0].I, rel)
			}
		}
	}
	// By the last run, the engine must be reusing a synopsis and the
	// simulated time must have dropped well below the first (cold) run.
	if len(last.Report.UsedSynopses) == 0 {
		t.Fatalf("no synopsis reuse by run 6: %+v", last.Report)
	}
	coldScan := first.Report.SimSeconds - 2.0 // strip tuning overhead
	warmScan := last.Report.SimSeconds - 2.0
	if warmScan > coldScan*0.5 {
		t.Fatalf("reuse did not speed up: cold %.3f warm %.3f", coldScan, warmScan)
	}
	// Telemetry must show materialization happened at some point.
	created := 0
	for _, r := range e.Reports() {
		created += len(r.CreatedSynopses)
	}
	if created == 0 {
		t.Fatal("no synopses were materialized")
	}
}

func TestQuickrNeverReuses(t *testing.T) {
	e := testEngine(ModeQuickr)
	for i := 0; i < 3; i++ {
		res, err := e.Execute(catQuery(e))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Report.UsedSynopses) != 0 || len(res.Report.CreatedSynopses) != 0 {
			t.Fatalf("quickr must not reuse/materialize: %+v", res.Report)
		}
	}
	// Warehouse must stay empty.
	if items := e.Warehouse().WarehouseItems(); len(items) != 0 {
		t.Fatalf("quickr warehouse has %d items", len(items))
	}
	bu, _ := e.Warehouse().Usage()
	if bu != 0 {
		t.Fatal("quickr buffer must stay empty")
	}
}

func TestExactModeForcesExactPlans(t *testing.T) {
	e := testEngine(ModeExact)
	res, err := e.Execute(catQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.PlanDesc != "exact" {
		t.Fatalf("plan = %q", res.Report.PlanDesc)
	}
	for _, row := range res.Intervals {
		for _, iv := range row {
			if iv.HalfWidth != 0 {
				t.Fatal("exact mode must have zero-width intervals")
			}
		}
	}
}

func TestStorageElasticityEvicts(t *testing.T) {
	e := testEngine(ModeTaster)
	for i := 0; i < 5; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	// Shrink to zero: everything must go.
	e.SetStorageBudget(0)
	if items := e.Warehouse().WarehouseItems(); len(items) != 0 {
		t.Fatalf("%d items survive zero budget", len(items))
	}
	// Engine still answers queries (exact or inline-sampled).
	res, err := e.Execute(catQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatal("query after shrink must still answer")
	}
}

func TestPinSampleServesQueries(t *testing.T) {
	e := testEngine(ModeTaster)
	sales, _ := e.Catalog().Table("sales")
	smp := synopses.BuildSampleFromTable("hint", sales,
		synopses.NewDistinctSampler(0.01, 10, []int{0}, 3),
		[]string{"sales.product"})
	id, err := e.PinSample("sales", smp,
		[]string{"sales.product"}, []string{"sales.qty", "sales.price"},
		stats.AccuracySpec{RelError: 0.05, Confidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// Two fact-side aggregates make the query sketch-ineligible, so the
	// pinned sample is the only sub-exact plan.
	q := catQuery(e)
	q.Aggs = []plan.AggSpec{
		{Kind: stats.Sum, Col: "sales.qty"},
		{Kind: stats.Sum, Col: "sales.price"},
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range res.Report.UsedSynopses {
		if u == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("first query must already reuse the pinned sample, used=%v plan=%s",
			res.Report.UsedSynopses, res.Report.PlanDesc)
	}
	// Pinned samples survive elasticity shocks.
	e.SetStorageBudget(1)
	if !e.Warehouse().Has(id) {
		t.Fatal("pinned sample evicted by quota change")
	}
}

func TestAccuracyDefaultApplied(t *testing.T) {
	e := testEngine(ModeTaster)
	q := catQuery(e)
	q.Accuracy = stats.AccuracySpec{} // invalid → default
	if _, err := e.Execute(q); err != nil {
		t.Fatal(err)
	}
	if !q.Accuracy.Valid() {
		t.Fatal("default accuracy not applied")
	}
}

func TestFilteredQueryCompensation(t *testing.T) {
	// Build a general synopsis with an unfiltered query, then check a
	// filtered query still returns correct (restricted) groups — the
	// paper's Employees/gender example.
	e := testEngine(ModeTaster)
	for i := 0; i < 4; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	q := catQuery(e)
	q.Filter = &expr.Cmp{Op: expr.LT, L: &expr.Col{Name: "products.category"}, R: expr.Int(2)}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("filtered groups = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].I >= 2 {
			t.Fatalf("filter violated: category %d in result", r[0].I)
		}
	}
}

func TestReportsAccumulate(t *testing.T) {
	e := testEngine(ModeTaster)
	for i := 0; i < 3; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	reps := e.Reports()
	if len(reps) != 3 {
		t.Fatalf("reports = %d", len(reps))
	}
	for i, r := range reps {
		if r.QueryID != i || r.SimSeconds <= 0 || r.PlanTree == "" {
			t.Fatalf("report %d malformed: %+v", i, r)
		}
	}
}
