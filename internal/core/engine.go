// Package core wires Taster together: for every query it runs the
// cost-based planner, hands the candidates to the tuner, applies the
// tuner's eviction/promotion decisions to the synopsis warehouse, executes
// the chosen physical plan (materializing synopses as byproducts into the
// in-memory buffer), and updates the metadata store — the full §III
// execution workflow.
//
// Concurrency model: Engine is safe for concurrent use. Planning and
// execution run concurrently across goroutines — the metadata store, the
// warehouse manager and the catalog are internally locked, and the
// morsel-driven executor parallelizes within each query too. Only the
// tuner's window state and the eviction/promotion step it mandates
// serialize (on tuneMu); per-engine counters and telemetry serialize on mu.
// Each *planner.Query value must be used by one Execute call at a time (the
// engine assigns its ID and defaults its accuracy in place).
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/tasterdb/taster/internal/exec"
	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
	"github.com/tasterdb/taster/internal/tuner"
	"github.com/tasterdb/taster/internal/warehouse"
)

// Mode selects the engine's behaviour, letting the same machinery serve as
// the paper's baselines.
type Mode uint8

// Engine modes.
const (
	// ModeTaster is the full system: online approximation + materialization
	// + reuse + tuning.
	ModeTaster Mode = iota
	// ModeQuickr injects samplers per query but never materializes or
	// reuses synopses (the online-AQP baseline, paper §VI).
	ModeQuickr
	// ModeExact always runs the exact plan (the vanilla-SparkSQL baseline).
	ModeExact
	// ModeOffline answers from pre-built (pinned) synopses when one
	// matches and falls back to the exact plan otherwise — no query-time
	// sampling, no materialization. This is the BlinkDB-style behaviour.
	ModeOffline
)

// String returns the mode name.
func (m Mode) String() string { return [...]string{"taster", "quickr", "exact", "offline"}[m] }

// Config configures an Engine.
type Config struct {
	// Mode selects full Taster or a baseline behaviour.
	Mode Mode
	// StorageBudget is the warehouse quota in bytes (the paper expresses it
	// as a fraction of the dataset size).
	StorageBudget int64
	// BufferSize is the in-memory synopsis buffer quota in bytes.
	BufferSize int64
	// CostModel is the simulated cluster; zero value → defaults.
	CostModel storage.CostModel
	// Tuner configures the sliding window; zero value → defaults.
	Tuner tuner.Config
	// DefaultAccuracy applies to queries without an ERROR WITHIN clause.
	DefaultAccuracy stats.AccuracySpec
	// Seed drives all sampling randomness.
	Seed uint64
	// TuneOverheadSeconds is the per-query simulated planning+tuning
	// overhead (the paper measures ~2 s for Taster's centralized tuner).
	// Negative means "use the mode default" (2.0 taster / 0.2 quickr / 0).
	TuneOverheadSeconds float64
	// Workers caps the morsel-driven executor's intra-query parallelism;
	// 0 means runtime.NumCPU(). Results are byte-identical for any value.
	// An explicit value (>0) additionally informs the planner's cost model:
	// parallelizable pipeline CPU work is divided by it, so plan choice
	// reflects the parallel runtime. The default 0 leaves plan costing at
	// serial parallelism so plan choice stays machine-independent.
	Workers int
	// MaxStaleness bounds synopsis staleness under online ingestion: a
	// materialized synopsis that has missed more than this fraction of its
	// source rows (see meta.Entry.Staleness) is disqualified from answering
	// queries; within the bound, reuse is discounted proportionally so
	// refresh builds win as data drifts. 0 (the default) serves only fully
	// fresh synopses; negative disables the bound.
	MaxStaleness float64
}

// Report is the per-query telemetry the experiments aggregate.
type Report struct {
	QueryID         int
	Mode            Mode
	PlanDesc        string
	PlanTree        string
	UsedSynopses    []uint64
	CreatedSynopses []uint64
	// Refreshed lists created synopses that replaced a stale stored copy.
	Refreshed      []uint64
	Evicted        []uint64
	Promoted       []uint64
	EstimatedCost  float64 // planner's estimate for the chosen plan
	EstimatedExact float64 // planner's estimate for the exact plan
	SimSeconds     float64 // measured simulated cluster time (incl. overhead)
	WallSeconds    float64
	WarehouseBytes int64 // warehouse usage after the query
	BufferBytes    int64
	Window         int // tuner window length after the query
}

// Result is a completed query: rows plus estimation intervals and telemetry.
type Result struct {
	Columns   []string
	Rows      [][]storage.Value
	Intervals [][]stats.Interval
	Report    Report
}

// Engine is a Taster instance over a catalog.
type Engine struct {
	cfg   Config
	cat   *storage.Catalog
	store *meta.Store
	wh    *warehouse.Manager
	pl    *planner.Planner
	tn    *tuner.Tuner

	// mu guards the per-engine counters and telemetry only.
	mu         sync.Mutex
	queryCount int
	reports    []Report

	// tuneMu serializes the tuner's window state and the warehouse
	// eviction/promotion step it mandates — the only part of the query path
	// that cannot run concurrently. Planning and execution never hold it.
	tuneMu sync.Mutex
}

// New creates an engine. A zero CostModel or Tuner config is replaced by
// defaults; the default accuracy defaults to the paper's 10%@95%.
func New(cat *storage.Catalog, cfg Config) *Engine {
	if cfg.CostModel == (storage.CostModel{}) {
		cfg.CostModel = storage.DefaultCostModel()
	}
	if cfg.Tuner == (tuner.Config{}) {
		cfg.Tuner = tuner.DefaultConfig()
	}
	if !cfg.DefaultAccuracy.Valid() {
		cfg.DefaultAccuracy = stats.DefaultAccuracy
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 64 << 20
	}
	if cfg.StorageBudget <= 0 {
		cfg.StorageBudget = 256 << 20
	}
	if cfg.TuneOverheadSeconds < 0 {
		switch cfg.Mode {
		case ModeTaster:
			cfg.TuneOverheadSeconds = 2.0
		case ModeQuickr:
			cfg.TuneOverheadSeconds = 0.2
		default:
			cfg.TuneOverheadSeconds = 0
		}
	}
	store := meta.NewStore()
	wh := warehouse.NewManager(cfg.BufferSize, cfg.StorageBudget)
	pl := planner.New(store, wh, cfg.CostModel)
	pl.Seed = cfg.Seed
	pl.MaxStaleness = cfg.MaxStaleness
	if cfg.Workers > 0 {
		pl.Parallelism = float64(cfg.Workers)
	}
	return &Engine{
		cfg:   cfg,
		cat:   cat,
		store: store,
		wh:    wh,
		pl:    pl,
		tn:    tuner.New(cfg.Tuner, store, wh),
	}
}

// Catalog returns the engine's table catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Store exposes the metadata store (read-mostly; used by experiments).
func (e *Engine) Store() *meta.Store { return e.store }

// Warehouse exposes the warehouse manager (used by experiments and hints).
func (e *Engine) Warehouse() *warehouse.Manager { return e.wh }

// Reports returns the per-query telemetry collected so far.
func (e *Engine) Reports() []Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Report(nil), e.reports...)
}

// Execute plans, tunes and runs one query. It is safe to call from many
// goroutines: planning and execution proceed concurrently, and only the
// tuning step serializes.
func (e *Engine) Execute(q *planner.Query) (*Result, error) {
	start := time.Now()

	e.mu.Lock()
	q.ID = e.queryCount
	e.queryCount++
	e.mu.Unlock()

	if !q.Accuracy.Valid() {
		q.Accuracy = e.cfg.DefaultAccuracy
	}
	if e.cfg.Mode == ModeExact {
		q.Exact = true
	}

	ps, err := e.pl.Plan(q)
	if err != nil {
		return nil, err
	}

	rep := Report{QueryID: q.ID, Mode: e.cfg.Mode, EstimatedExact: ps.Exact.Cost}

	var dec tuner.Decision
	switch e.cfg.Mode {
	case ModeTaster:
		// Tuning mutates the sliding window and rearranges the warehouse;
		// it is the serialization point of the engine. Evictions and
		// promotions apply under the same critical section so concurrent
		// queries never see a half-applied synopsis set.
		e.tuneMu.Lock()
		dec = e.tn.Tune(ps)
		for _, id := range dec.Evict {
			if err := e.wh.Delete(id); err == nil {
				e.store.SetLocation(id, meta.LocNone)
				rep.Evicted = append(rep.Evicted, id)
			}
		}
		for _, id := range dec.Promote {
			if err := e.wh.Promote(id); err == nil {
				e.store.SetLocation(id, meta.LocWarehouse)
				rep.Promoted = append(rep.Promoted, id)
			}
		}
		rep.Window = e.tn.Window()
		e.tuneMu.Unlock()
	case ModeQuickr:
		// Quickr: best per-query plan with no reuse and no materialization.
		// The paper's Quickr implements only the sampler operators — no
		// sketch-joins — so sketch plans are out of scope for this mode.
		dec.Chosen = ps.Exact
		for _, c := range ps.Candidates {
			if _, isSketch := c.Root.(*plan.SketchJoin); isSketch {
				continue
			}
			if len(c.Uses) == 0 && c.Cost < dec.Chosen.Cost {
				dec.Chosen = c
			}
		}
		rep.Window = e.windowLen()
	case ModeOffline:
		// BlinkDB-style: reuse a pre-built sample when one matches, else
		// run exact; never sample at query time.
		dec.Chosen = ps.Exact
		for _, c := range ps.Candidates {
			if len(c.Creates) == 0 && c.Cost < dec.Chosen.Cost {
				dec.Chosen = c
			}
		}
		rep.Window = e.windowLen()
	default:
		dec.Chosen = ps.Exact
		rep.Window = e.windowLen()
	}

	rep.PlanDesc = dec.Chosen.Desc
	rep.EstimatedCost = dec.Chosen.Cost
	rep.UsedSynopses = dec.Chosen.Uses

	// Execute. The executor seed derives from the canonical plan text, not
	// the query's arrival number, so the randomness a query sees — and with
	// it the sampled result — is reproducible under concurrent serving
	// regardless of interleaving.
	ctx := exec.NewContext(q.Accuracy.Confidence)
	ctx.Workers = e.cfg.Workers
	matNames := make(map[*plan.SynopsisOp]uint64)
	keepSketch := make(map[*plan.SketchJoin]uint64)
	for _, cs := range dec.Materialize {
		if cs.SampleNode != nil {
			ctx.MaterializeSamples[cs.SampleNode] = fmt.Sprintf("synopsis_%d", cs.Entry.Desc.ID)
			matNames[cs.SampleNode] = cs.Entry.Desc.ID
		}
		if cs.SketchNode != nil {
			keepSketch[cs.SketchNode] = cs.Entry.Desc.ID
		}
	}
	planTree := plan.Format(dec.Chosen.Root)
	op, err := exec.Compile(dec.Chosen.Root, synopses.SeedFromString(planTree, e.cfg.Seed), ctx)
	if err != nil {
		return nil, err
	}
	batches, err := exec.Run(op)
	if err != nil {
		return nil, err
	}

	// Store byproducts in the buffer (decoupled from the warehouse write).
	for _, bs := range ctx.Stats.BuiltSamples {
		id, ok := matNames[bs.Op]
		if !ok {
			continue
		}
		if e.admit(warehouse.NewSampleItem(id, bs.Sample), id, rep.QueryID, bs.Op) {
			rep.Refreshed = append(rep.Refreshed, id)
		}
		rep.CreatedSynopses = append(rep.CreatedSynopses, id)
	}
	for _, bk := range ctx.Stats.BuiltSketches {
		id, ok := keepSketch[bk.Op]
		if !ok {
			continue
		}
		// A sketch's source is its build side only (the probe tables are
		// not summarized), so freshness derives from that subplan.
		if e.admit(warehouse.NewSketchItem(id, bk.Sketch), id, rep.QueryID, bk.Op.Build) {
			rep.Refreshed = append(rep.Refreshed, id)
		}
		rep.CreatedSynopses = append(rep.CreatedSynopses, id)
	}

	res := assemble(op, batches)
	res.Report = rep
	res.Report.SimSeconds = ctx.Stats.SimulatedSeconds(e.cfg.CostModel) + e.cfg.TuneOverheadSeconds
	res.Report.WallSeconds = time.Since(start).Seconds()
	res.Report.BufferBytes, res.Report.WarehouseBytes = e.wh.Usage()
	res.Report.PlanTree = planTree
	e.mu.Lock()
	e.reports = append(e.reports, res.Report)
	e.mu.Unlock()
	return res, nil
}

// windowLen reads the tuner's current window length under the tuning lock.
func (e *Engine) windowLen() int {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	return e.tn.Window()
}

// admit places a freshly built synopsis in the buffer, overflowing to the
// warehouse, dropping it if neither tier has room. Admission is atomic in
// the warehouse manager, so two queries concurrently building the same
// synopsis converge on one stored copy; it also takes tuneMu so the
// store-then-set-location pair can never interleave with the tuner's
// delete-then-set-location pair (which would strand a stale location in
// the metadata store).
//
// When a stored copy exists but this rebuild scanned strictly more source
// rows, the rebuild is a *refresh*: the stale copy is atomically replaced
// (pins carry over; plans already executing against the old item keep
// their immutable snapshot). Returns whether a refresh replacement
// happened.
//
// src is the executed subplan the synopsis summarizes; freshness is read
// from the table versions *bound into that plan*, not the current catalog,
// so an append racing between execution and admission registers as
// staleness instead of being silently absorbed (for sketches and
// multi-table samples alike).
func (e *Engine) admit(it *warehouse.Item, id uint64, queryID int, src plan.Node) (refreshed bool) {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	srcEpoch, srcByTable := boundVersion(src)
	if ent, ok := e.store.Get(id); ok && e.wh.Has(id) {
		// Compare builds per table where possible: summed epochs can alias
		// across distinct version vectors (plan binding is not an atomic
		// cut across tables), but per-table row counts are monotone under
		// append and recorded on both sides.
		newer := ent.Desc.BuildEpoch < srcEpoch
		if bt := ent.BuiltByTable(); len(bt) > 0 {
			newer = false
			for t, r := range srcByTable {
				if r > bt[t] { // absent table reads 0: any rows count as newer
					newer = true
				}
			}
		}
		if !newer {
			// The stored copy is at least as fresh as this rebuild (a
			// concurrent build from a newer snapshot won the race, or an
			// equally-stale rebuild): keep its copy AND its metadata —
			// stamping this build's version could mislabel fresh data as
			// stale, and churning an equal copy would report a refresh
			// that recovered nothing.
			return false
		}
		// Genuine refresh: this rebuild scanned strictly more source rows.
		// Replace in place — pins carry over (a refresh is not an
		// eviction), and on failure (rebuild fits nowhere) the stale copy
		// and its metadata stay, so the staleness policy keeps seeing it
		// for what it is.
		res, err := e.wh.Refresh(it)
		if err != nil {
			return false
		}
		loc := meta.LocWarehouse
		if res == warehouse.AdmitBuffer {
			loc = meta.LocBuffer
		}
		e.store.SetLocation(id, loc)
		e.store.SetActualSize(id, it.Size)
		e.store.SetFreshness(id, srcEpoch, srcByTable)
		return true
	}
	switch e.wh.Admit(it) {
	case warehouse.AdmitBuffer:
		e.store.SetLocation(id, meta.LocBuffer)
	case warehouse.AdmitWarehouse:
		e.store.SetLocation(id, meta.LocWarehouse)
	default:
		// Both tiers full: the synopsis was dropped, but metadata remembers
		// the measured size for better future decisions.
		e.store.SetActualSize(id, it.Size)
		return false
	}
	e.store.SetActualSize(id, it.Size)
	e.store.SetFreshness(id, srcEpoch, srcByTable)
	return false
}

// boundVersion reports the base-table versions bound into the subplan —
// the exact data the build actually scanned: the summed epoch over the
// distinct tables plus each table's row count (a self-joined table counts
// once; both scans bind the same version).
func boundVersion(src plan.Node) (epoch uint64, byTable map[string]int64) {
	byTable = make(map[string]int64)
	if src == nil {
		return 0, byTable
	}
	plan.Walk(src, func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			if _, seen := byTable[s.Table.Name]; !seen {
				epoch += s.Table.Epoch()
				byTable[s.Table.Name] = int64(s.Table.NumRows())
			}
		}
	})
	return epoch, byTable
}

// Ingest appends a batch of rows to a base table (schema must match) and
// marks every synopsis summarizing that relation as having unseen rows —
// the engine's online data-evolution entry point. It is safe under
// concurrent Execute: the catalog swaps in a new immutable table version
// under its own lock (running queries keep the snapshot they resolved), and
// the metadata store updates epochs under the store lock. Returns the
// table's new epoch.
func (e *Engine) Ingest(table string, delta *storage.Table) (uint64, error) {
	// Mark affected synopses BEFORE the new version is published: a query
	// planning in between sees old data with stale-marked synopses (which
	// merely forgoes reuse) rather than new data with synopses still
	// reported fresh (which would violate the staleness bound).
	added := int64(delta.NumRows())
	e.store.MarkUnseen(table, added)
	nt, err := e.cat.Append(table, delta)
	if err != nil {
		e.store.MarkUnseen(table, -added) // roll the pre-mark back
		return 0, fmt.Errorf("core: ingest into %s: %w", table, err)
	}
	// Publish the version and release the pre-mark in one atomic store
	// operation, so no reader ever counts the appended rows twice.
	e.store.PublishAppend(table, nt.Epoch(), int64(nt.NumRows()), added)
	return nt.Epoch(), nil
}

// assemble converts operator output into a Result.
func assemble(op exec.Operator, batches []*storage.Batch) *Result {
	res := &Result{Columns: op.Schema().Names()}
	for _, b := range batches {
		for i := 0; i < b.Len(); i++ {
			res.Rows = append(res.Rows, b.Row(i))
		}
	}
	if rep, ok := op.(exec.IntervalReporter); ok {
		res.Intervals = rep.Intervals()
	}
	return res
}

// SetStorageBudget changes the warehouse quota at runtime and immediately
// retunes, evicting the lowest-gain synopses until the warehouse fits —
// the paper's storage elasticity (§V, §VI-D).
func (e *Engine) SetStorageBudget(bytes int64) {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	e.wh.SetWarehouseQuota(bytes)
	if e.cfg.Mode != ModeTaster {
		return
	}
	dec := e.tn.Retune()
	for _, id := range dec.Evict {
		if err := e.wh.Delete(id); err == nil {
			e.store.SetLocation(id, meta.LocNone)
		}
	}
	// A shrink can leave overflow even after set-based eviction (e.g. all
	// remaining synopses beneficial); drop the lowest-marginal-gain
	// leftovers — larger size breaking ties, so each eviction frees the
	// most bytes per unit of forfeited gain — until the quota holds.
	// Failed deletes are skipped, not fatal: one undeletable item must not
	// leave the warehouse permanently over quota.
	if e.wh.Overflow() > 0 {
		items := e.wh.WarehouseItems()
		sort.Slice(items, func(i, j int) bool {
			gi, gj := dec.Gains[items[i].ID], dec.Gains[items[j].ID]
			if gi != gj {
				return gi < gj
			}
			if items[i].Size != items[j].Size {
				return items[i].Size > items[j].Size
			}
			return items[i].ID < items[j].ID
		})
		for _, it := range items {
			if e.wh.Overflow() <= 0 {
				break
			}
			if it.Pinned {
				continue
			}
			if err := e.wh.Delete(it.ID); err != nil {
				continue
			}
			e.store.SetLocation(it.ID, meta.LocNone)
		}
	}
}

// PinSample registers an offline-built sample (user hints, §V): it is
// placed directly in the warehouse, marked pinned, and the tuner will never
// evict it. stratCols/aggCols/accuracy describe what queries it can serve.
func (e *Engine) PinSample(table string, s *synopses.Sample, stratCols, aggCols []string, acc stats.AccuracySpec) (uint64, error) {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	tbl, err := e.cat.Table(table)
	if err != nil {
		return 0, err
	}
	desc := meta.Descriptor{
		Kind:      plan.DistinctSample,
		Sig:       plan.SignatureOf(&plan.Scan{Table: tbl}),
		StratCols: stratCols,
		P:         s.P,
		Delta:     s.Delta,
		AggCols:   aggCols,
		Accuracy:  acc,
		Pinned:    true,
	}
	if s.Strategy == "uniform" || s.Strategy == "variational" {
		desc.Kind = plan.UniformSample
	}
	entry := e.store.Intern(desc)
	id := entry.Desc.ID
	e.store.SetPinned(id, true)
	it := warehouse.NewSampleItem(id, s)
	it.Pinned = true
	loc := meta.LocWarehouse
	if e.wh.Has(id) {
		// Re-pinning an already-stored sample (e.g. a rebuilt hint after
		// ingestion) refreshes the stored copy in place.
		res, err := e.wh.Refresh(it)
		if err != nil {
			return 0, fmt.Errorf("core: pinning sample: %w", err)
		}
		if res == warehouse.AdmitBuffer {
			loc = meta.LocBuffer
		}
	} else if err := e.wh.PutWarehouse(it); err != nil {
		return 0, fmt.Errorf("core: pinning sample: %w", err)
	}
	e.store.SetActualSize(id, it.Size)
	e.store.SetLocation(id, loc)
	// Freshness is anchored to the rows the sample actually scanned (its
	// validated SourceRows), matching admit's plan-bound convention: an
	// ingest racing the offline build — or a hint built from partial data —
	// registers as staleness instead of being silently absorbed by the
	// catalog's current row count.
	rows := int64(s.SourceRows)
	if rows <= 0 {
		rows = int64(tbl.NumRows())
	}
	e.store.SetFreshness(id, tbl.Epoch(), map[string]int64{table: rows})
	return id, nil
}
