// Package core wires Taster together: for every query it runs the
// cost-based planner, chooses the physical plan, executes it (materializing
// synopses as byproducts into the in-memory buffer), and updates the
// metadata store — the full §III execution workflow — while a tuner decides
// which synopses the quota-bounded warehouse keeps.
//
// Concurrency model: Engine is safe for concurrent use, and in the default
// asynchronous ModeTaster configuration the serving path is lock-free with
// respect to tuning. Queries plan, choose and execute against an immutable
// tuning snapshot (warehouse view + the tuner's published keep/gain state)
// loaded with one atomic pointer read; each served query enqueues a plan
// observation on a bounded channel, and a background tuning service drains
// those observations in batches, runs the §V tuning round, applies
// evictions/promotions/byproduct admissions, and publishes a new snapshot
// RCU-style. Execute never takes the tuning mutex. Config.Synchronous
// restores the inline round (tune-before-execute under tuneMu) for
// byte-deterministic experiments; see docs/ARCHITECTURE.md for the full
// design. Each *planner.Query value must be used by one Execute call at a
// time (the engine assigns its ID and defaults its accuracy in place).
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tasterdb/taster/internal/exec"
	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/persist"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
	"github.com/tasterdb/taster/internal/tuner"
	"github.com/tasterdb/taster/internal/warehouse"
)

// Mode selects the engine's behaviour, letting the same machinery serve as
// the paper's baselines.
type Mode uint8

// Engine modes.
const (
	// ModeTaster is the full system: online approximation + materialization
	// + reuse + tuning.
	ModeTaster Mode = iota
	// ModeQuickr injects samplers per query but never materializes or
	// reuses synopses (the online-AQP baseline, paper §VI).
	ModeQuickr
	// ModeExact always runs the exact plan (the vanilla-SparkSQL baseline).
	ModeExact
	// ModeOffline answers from pre-built (pinned) synopses when one
	// matches and falls back to the exact plan otherwise — no query-time
	// sampling, no materialization. This is the BlinkDB-style behaviour.
	ModeOffline
)

// String returns the mode name.
func (m Mode) String() string { return [...]string{"taster", "quickr", "exact", "offline"}[m] }

// Config configures an Engine.
type Config struct {
	// Mode selects full Taster or a baseline behaviour.
	Mode Mode
	// StorageBudget is the warehouse quota in bytes (the paper expresses it
	// as a fraction of the dataset size).
	StorageBudget int64
	// BufferSize is the in-memory synopsis buffer quota in bytes.
	BufferSize int64
	// CostModel is the simulated cluster; zero value → defaults.
	CostModel storage.CostModel
	// Tuner configures the sliding window; zero value → defaults.
	Tuner tuner.Config
	// DefaultAccuracy applies to queries without an ERROR WITHIN clause.
	DefaultAccuracy stats.AccuracySpec
	// Seed drives all sampling randomness.
	Seed uint64
	// TuneOverheadSeconds is the per-query simulated planning+tuning
	// overhead (the paper measures ~2 s for Taster's centralized tuner).
	// It is charged to SimSeconds in ModeTaster only — the baselines run no
	// tuner, and inflating them would misstate every speedup the
	// experiments report. Negative means "use the mode default" (2.0 in
	// ModeTaster, 0 elsewhere).
	TuneOverheadSeconds float64
	// Workers caps the morsel-driven executor's intra-query parallelism;
	// 0 means runtime.NumCPU(). Results are byte-identical for any value.
	// An explicit value (>0) additionally informs the planner's cost model:
	// parallelizable pipeline CPU work is divided by it, so plan choice
	// reflects the parallel runtime. The default 0 leaves plan costing at
	// serial parallelism so plan choice stays machine-independent.
	Workers int
	// PartitionRows splits every catalog table into fixed-size partitions of
	// this many rows (the last partition may be shorter; appends extend it
	// and open new partitions past it). Each partition carries a zone map
	// that drives partition pruning and scopes synopsis freshness, so an
	// append touching one partition never stales synopses of its siblings.
	// 0 (the default) leaves tables as registered — effectively monolithic.
	// Query results are byte-identical for any value; only costs change.
	PartitionRows int
	// DisablePruning turns zone-map partition pruning off in both the
	// executor and the planner's cost model. Pruning is sound (results are
	// identical either way); the switch exists for A/B cost measurement —
	// the partition experiment runs the same workload with pruning on and
	// off and reports the scan-byte and simulated-time ratio.
	DisablePruning bool
	// DisableKernels forces the executor's filters onto the interpreted
	// Eval fallback instead of the compiled selection-vector kernels. The
	// kernels are bit-identical to the interpreter by contract, so this
	// switch exists only for differential testing and benchmarking; it is
	// invisible to the planner (plan choice keys on the predicate's static
	// expr.KernelCompilable shape, never on this runtime switch).
	DisableKernels bool
	// MaxStaleness bounds synopsis staleness under online ingestion: a
	// materialized synopsis that has missed more than this fraction of its
	// source rows (see meta.Entry.Staleness) is disqualified from answering
	// queries; within the bound, reuse is discounted proportionally so
	// refresh builds win as data drifts. 0 (the default) serves only fully
	// fresh synopses; negative disables the bound.
	MaxStaleness float64
	// Synchronous disables the asynchronous tuning service in ModeTaster:
	// every Execute runs the full tuning round inline under the tuning
	// mutex, exactly as before the snapshot-publish refactor. Plan choice,
	// materialization, eviction and promotion then see the current query's
	// own observation, which makes sequential runs byte-deterministic — the
	// experiments and the paper-figure reproductions rely on it. The
	// default (false) serves queries lock-free against the published
	// snapshot and applies tuning in the background.
	Synchronous bool
	// PlanCacheSize bounds the serving fast path's plan-set cache (in
	// entries). Asynchronous ModeTaster memoizes candidate enumeration per
	// (canonical query signature, table epochs, snapshot identity): a
	// repeated query shape skips planner.PlanWith entirely and only re-runs
	// plan choice against the published gains. Invalidation is by
	// construction — ingests bump table epochs and warehouse rearrangements
	// bump the snapshot identity, so stale entries are never consulted. 0
	// (the default) means 4096 entries; negative disables caching.
	// Synchronous and baseline modes never cache (their tuning rounds
	// consume the plan set's query identity inline).
	PlanCacheSize int
	// ObservationQueue bounds the asynchronous tuning service's observation
	// channel (default 1024). When the queue is full — the tuner is behind
	// sustained traffic — new observations are dropped rather than blocking
	// the serving path: tuning fidelity degrades gracefully while query
	// latency stays flat. Dropped counts surface in TuningStats.
	ObservationQueue int
	// ReportCap bounds the in-memory per-query telemetry ring (default
	// 4096). Sustained traffic overwrites the oldest reports; Reports()
	// always returns the newest ReportCap entries, oldest first.
	ReportCap int
	// Metrics, when non-nil, is the registry every engine layer writes its
	// counters into (plan cache, pool, disk tier, executor dispatch, tuning
	// service, serving path). The registry is strictly write-only from the
	// serving and tuning paths — no engine decision ever reads it — so
	// enabling metrics cannot change any answer or plan choice. One registry
	// may be shared by several engines. Nil (the default) compiles the whole
	// layer down to nil-pointer tests.
	Metrics *obs.Metrics
	// Trace enables per-query execution traces: every Execute records
	// per-operator row/batch/selectivity counters and stage durations and
	// renders them as an EXPLAIN-ANALYZE tree on Result.Trace. Tracing
	// observes the batch stream without touching it — traced and untraced
	// runs are byte-identical (enforced by TestObsDifferential).
	Trace bool
	// Clock is the timing source for query latency, tuning-round durations
	// and trace stage timings. Nil selects the wall clock, or the frozen
	// clock under Config.Synchronous so deterministic runs stay
	// byte-reproducible (all durations zero). Injected for tests.
	Clock obs.Clock
	// WarehouseDir makes the warehouse tier disk-backed and the engine
	// restartable: synopses promoted to the warehouse are durably written
	// there (payloads dropped from RAM, faulted back lazily on reuse), a
	// crash-safe manifest checkpoints the tuning state after every round,
	// and Open replays it on start — a warm restart serves the workload
	// with the same answers and plan choices as an uninterrupted engine.
	// Empty (the default) keeps both tiers memory-resident.
	WarehouseDir string
}

// Report is the per-query telemetry the experiments aggregate.
type Report struct {
	QueryID         int
	Mode            Mode
	PlanDesc        string
	PlanTree        string
	UsedSynopses    []uint64
	CreatedSynopses []uint64
	// Refreshed lists created synopses that replaced a stale stored copy.
	// Under asynchronous tuning admissions happen in the background, so
	// refreshes are not attributable to the creating query; they surface in
	// TuningStats instead and this field stays empty.
	Refreshed []uint64
	// Evicted/Promoted list the warehouse rearrangements of this query's
	// inline tuning round (synchronous mode only; the asynchronous service
	// accounts them in TuningStats).
	Evicted        []uint64
	Promoted       []uint64
	EstimatedCost  float64 // planner's estimate for the chosen plan
	EstimatedExact float64 // planner's estimate for the exact plan
	SimSeconds     float64 // measured simulated cluster time (incl. overhead)
	ScanBytes      int64   // base-table bytes actually scanned (post zone-map pruning)
	WallSeconds    float64
	WarehouseBytes int64 // warehouse usage after the query
	BufferBytes    int64
	Window         int // tuner window length (as published) after the query
}

// Result is a completed query: rows plus estimation intervals and telemetry.
type Result struct {
	Columns   []string
	Rows      [][]storage.Value
	Intervals [][]stats.Interval
	Report    Report
	// Trace is the rendered per-operator execution trace (empty unless
	// Config.Trace is set).
	Trace string
}

// Engine is a Taster instance over a catalog.
type Engine struct {
	cfg   Config
	cat   *storage.Catalog
	store *meta.Store
	wh    *warehouse.Manager
	pl    *planner.Planner
	tn    *tuner.Tuner

	// queryCount assigns query IDs without any lock.
	queryCount atomic.Int64
	// reports is the capped telemetry ring; it has its own short lock and
	// is never held across planning, tuning or execution.
	reports *reportRing

	// tuneMu serializes the tuner's window state and every warehouse/
	// metadata rearrangement (the background service's batches, elastic
	// budget changes, pinned-hint installs, and synchronous-mode inline
	// rounds). In the default asynchronous ModeTaster configuration the
	// Execute path never acquires it — queries read the published snapshot
	// instead.
	tuneMu sync.Mutex

	// snap is the RCU-published tuning snapshot the lock-free serving path
	// reads; snapVersion (under tuneMu) numbers publishes.
	snap        atomic.Pointer[tuningSnapshot]
	snapVersion uint64

	// svc is the background tuning service (nil in synchronous mode and in
	// the baseline modes, which run no tuner).
	svc *tuningService

	// planCache memoizes plan sets for the lock-free serving path (nil when
	// disabled or in modes without the asynchronous service).
	planCache *planner.PlanCache

	// vecPool recycles batch/vector memory across every query this engine
	// serves (sync.Pool-backed, so concurrent Executes share it safely).
	// Per-query pools would recycle only within one query and rebuild their
	// capacity from scratch each time; the engine-wide pool keeps warm
	// backing arrays across the whole serving workload.
	vecPool *storage.VecPool

	// db is the warehouse directory's disk store (nil without
	// Config.WarehouseDir); persistErr remembers the first failed
	// background checkpoint (written under tuneMu, surfaced by Close);
	// recovered counts the items the manifest replay reinstated.
	db         *persist.Store
	persistErr error
	recovered  int

	// mx is the metrics registry (Config.Metrics; nil disables the layer)
	// and clock the injected timing source (always non-nil after Open).
	mx    *obs.Metrics
	clock obs.Clock
}

// New creates an engine. A zero CostModel or Tuner config is replaced by
// defaults; the default accuracy defaults to the paper's 10%@95%. New
// panics when Config.WarehouseDir is set and the directory cannot be
// opened or its manifest is unrecoverable — restartable engines should use
// Open, which returns the error instead.
func New(cat *storage.Catalog, cfg Config) *Engine {
	e, err := Open(cat, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Open creates an engine, recovering persisted warehouse state when
// Config.WarehouseDir names a directory with a previous incarnation's
// manifest (warm restart). Individually corrupt or truncated item files —
// a crash mid-spill — are dropped to a consistent never-materialized
// state, not errors; only an unopenable directory or an unreadable
// manifest fails Open.
func Open(cat *storage.Catalog, cfg Config) (*Engine, error) {
	if cfg.CostModel == (storage.CostModel{}) {
		cfg.CostModel = storage.DefaultCostModel()
	}
	if cfg.Tuner == (tuner.Config{}) {
		cfg.Tuner = tuner.DefaultConfig()
	}
	if !cfg.DefaultAccuracy.Valid() {
		cfg.DefaultAccuracy = stats.DefaultAccuracy
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 64 << 20
	}
	if cfg.StorageBudget <= 0 {
		cfg.StorageBudget = 256 << 20
	}
	if cfg.TuneOverheadSeconds < 0 {
		if cfg.Mode == ModeTaster {
			cfg.TuneOverheadSeconds = 2.0
		} else {
			cfg.TuneOverheadSeconds = 0
		}
	}
	if cfg.ObservationQueue <= 0 {
		cfg.ObservationQueue = 1024
	}
	if cfg.ReportCap <= 0 {
		cfg.ReportCap = 4096
	}
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = 4096
	}
	if cfg.PartitionRows > 0 {
		cat.Repartition(cfg.PartitionRows)
	}
	var db *persist.Store
	var sp warehouse.Spiller
	if cfg.WarehouseDir != "" {
		var err error
		if db, err = persist.OpenStore(cfg.WarehouseDir); err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			// Before the spiller wraps it, so recovery fault-ins count too.
			db.Obs = &cfg.Metrics.Disk
		}
		sp = diskSpiller{db}
	}
	store := meta.NewStore()
	// Register every table's partition layout up front, so partition-scoped
	// staleness never has to fall back to its conservative layout-unknown
	// path before the first ingest.
	for _, name := range cat.Names() {
		if t, err := cat.Table(name); err == nil {
			store.ObservePartitions(name, t.PartitionRowCounts())
		}
	}
	wh := warehouse.NewManagerWithSpiller(cfg.BufferSize, cfg.StorageBudget, sp)
	pl := planner.New(store, wh, cfg.CostModel)
	pl.Seed = cfg.Seed
	pl.MaxStaleness = cfg.MaxStaleness
	pl.DisablePruning = cfg.DisablePruning
	if cfg.Workers > 0 {
		pl.Parallelism = float64(cfg.Workers)
	}
	e := &Engine{
		cfg:     cfg,
		cat:     cat,
		store:   store,
		wh:      wh,
		pl:      pl,
		tn:      tuner.New(cfg.Tuner, store, wh),
		reports: newReportRing(cfg.ReportCap),
		vecPool: storage.NewVecPool(),
		db:      db,
		mx:      cfg.Metrics,
		clock:   cfg.Clock,
	}
	if e.clock == nil {
		// Synchronous runs are the byte-deterministic configuration; freezing
		// the clock keeps their latency histograms, round timings and traces
		// reproducible (all durations zero). Asynchronous serving measures
		// real wall time.
		if cfg.Synchronous {
			e.clock = obs.Frozen{}
		} else {
			e.clock = obs.Wall{}
		}
	}
	if e.mx != nil {
		e.vecPool.Obs = &e.mx.Pool
	}
	// Replay the manifest before the engine escapes: recovery runs
	// single-threaded, so no lock ordering applies yet.
	keep, gains := map[uint64]bool{}, map[uint64]float64{}
	if db != nil {
		n, err := e.recoverLocked()
		if err != nil {
			return nil, err
		}
		e.recovered = n
		if n > 0 && cfg.Mode == ModeTaster {
			// Seed the published keep/gain state from the restored window so
			// the lock-free serving path can materialize and protect the
			// recovered set from the first query on (synchronous rounds
			// recompute it per query anyway). Retune mutates nothing.
			dec := e.tn.Retune()
			keep, gains = dec.Keep, dec.Gains
		}
	}
	// Publish the initial snapshot so the serving path always finds one,
	// then start the background service for asynchronous Taster mode.
	e.publishLocked(keep, gains)
	if cfg.Mode == ModeTaster && !cfg.Synchronous {
		e.svc = newTuningService(e, cfg.ObservationQueue)
		if cfg.PlanCacheSize > 0 {
			e.planCache = planner.NewPlanCache(cfg.PlanCacheSize)
			if e.mx != nil {
				e.planCache.Obs = &e.mx.PlanCache
			}
		}
	}
	return e, nil
}

// Recovered reports how many materialized synopses the manifest replay
// reinstated at Open (0 for cold starts and memory-resident engines).
func (e *Engine) Recovered() int { return e.recovered }

// Catalog returns the engine's table catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Store exposes the metadata store (read-mostly; used by experiments).
func (e *Engine) Store() *meta.Store { return e.store }

// Warehouse exposes the warehouse manager (used by experiments and hints).
func (e *Engine) Warehouse() *warehouse.Manager { return e.wh }

// Reports returns the per-query telemetry collected so far: the newest
// Config.ReportCap reports, oldest first.
func (e *Engine) Reports() []Report { return e.reports.list() }

// Execute plans, chooses and runs one query. It is safe to call from many
// goroutines; in the default asynchronous ModeTaster configuration it
// acquires no engine-wide mutex — tuning state arrives via the published
// snapshot and leaves as a queued observation.
func (e *Engine) Execute(q *planner.Query) (res *Result, err error) {
	start := time.Now()
	if e.mx != nil {
		mstart := e.clock.Now() //taster:clock serving metrics are recorded after the result is final and never feed it
		defer func() {
			if err != nil {
				e.mx.QueryErrors.Inc()
				return
			}
			e.mx.QueriesServed.Inc()
			e.mx.QueryLatencySeconds.Observe(e.clock.Since(mstart).Seconds()) //taster:clock serving metrics are recorded after the result is final and never feed it
		}()
	}

	q.ID = int(e.queryCount.Add(1)) - 1

	if !q.Accuracy.Valid() {
		q.Accuracy = e.cfg.DefaultAccuracy
	}
	if e.cfg.Mode == ModeExact {
		q.Exact = true
	}

	// Asynchronous Taster: one snapshot load covers planning AND plan
	// choice, so both see the same instant of tuning state.
	var snap *tuningSnapshot
	var ps *planner.PlanSet
	switch {
	case e.svc != nil && e.planCache != nil:
		// Fast path: the cache key embeds the query's canonical signature,
		// every bound table's epoch, and the snapshot identity, so a hit is
		// guaranteed to be the plan set a cold PlanWith against this exact
		// state would rebuild. Only candidate enumeration is skipped —
		// plan choice below still scores against the live published gains,
		// and the benefit window still records this repetition.
		snap = e.snap.Load()
		if err = q.Validate(); err != nil {
			return nil, err
		}
		key := planner.CacheKey(q, snap.ident)
		if hit, ok := e.planCache.Get(key); ok {
			ps = hit
			e.pl.RecordReuseBenefits(ps, q.ID)
		} else if ps, err = e.pl.PlanWith(q, snap.wh); err == nil {
			e.planCache.Put(key, ps)
		}
	case e.svc != nil:
		snap = e.snap.Load()
		ps, err = e.pl.PlanWith(q, snap.wh)
	default:
		ps, err = e.pl.Plan(q)
	}
	if err != nil {
		return nil, err
	}

	rep := Report{QueryID: q.ID, Mode: e.cfg.Mode, EstimatedExact: ps.Exact.Cost}

	var dec tuner.Decision
	switch {
	case e.cfg.Mode == ModeTaster && e.svc != nil:
		// Lock-free serving: score candidates against the published keep
		// set and gains; materialize exactly the creates the last published
		// S* wants. The observation (and with it this query's influence on
		// the window) is enqueued after execution.
		dec = chooseFromSnapshot(ps, snap)
		rep.Window = snap.window
	case e.cfg.Mode == ModeTaster:
		// Synchronous mode: tuning mutates the sliding window and
		// rearranges the warehouse inline; it is the serialization point of
		// the engine. Evictions and promotions apply under the same
		// critical section so concurrent queries never see a half-applied
		// synopsis set.
		//taster:locked synchronous ModeTaster is the documented serialization point; the lock-free contract applies to the e.svc != nil branch, which never reaches here
		e.tuneMu.Lock()
		roundStart := e.clock.Now() //taster:clock round timing is observability-only; the round's decisions never read it
		dec = e.tn.Tune(ps)
		for _, id := range dec.Evict {
			if err := e.wh.Delete(id); err == nil {
				e.store.SetLocation(id, meta.LocNone)
				rep.Evicted = append(rep.Evicted, id)
			}
		}
		for _, id := range dec.Promote {
			if err := e.wh.Promote(id); err == nil {
				e.store.SetLocation(id, meta.LocWarehouse)
				rep.Promoted = append(rep.Promoted, id)
			}
		}
		rep.Window = e.tn.Window()
		if e.mx != nil {
			e.mx.TuningRounds.Inc()
			e.mx.TuningBatchSize.Observe(1)
			e.mx.TuningRoundSeconds.Observe(e.clock.Since(roundStart).Seconds()) //taster:clock round timing is observability-only; the round's decisions never read it
		}
		if e.db != nil && len(rep.Evicted)+len(rep.Promoted) > 0 {
			// The round rearranged the warehouse (promotions spilled
			// payload files, evictions removed them): index the new layout
			// in the manifest before serving continues.
			e.noteCheckpointLocked()
		}
		e.tuneMu.Unlock()
	case e.cfg.Mode == ModeQuickr:
		// Quickr: best per-query plan with no reuse and no materialization.
		// The paper's Quickr implements only the sampler operators — no
		// sketch-joins — so sketch plans are out of scope for this mode.
		dec.Chosen = ps.Exact
		for _, c := range ps.Candidates {
			if _, isSketch := c.Root.(*plan.SketchJoin); isSketch {
				continue
			}
			if len(c.Uses) == 0 && c.Cost < dec.Chosen.Cost {
				dec.Chosen = c
			}
		}
		rep.Window = e.windowLen()
	case e.cfg.Mode == ModeOffline:
		// BlinkDB-style: reuse a pre-built sample when one matches, else
		// run exact; never sample at query time.
		dec.Chosen = ps.Exact
		for _, c := range ps.Candidates {
			if len(c.Creates) == 0 && c.Cost < dec.Chosen.Cost {
				dec.Chosen = c
			}
		}
		rep.Window = e.windowLen()
	default:
		dec.Chosen = ps.Exact
		rep.Window = e.windowLen()
	}

	rep.PlanDesc = dec.Chosen.Desc
	rep.EstimatedCost = dec.Chosen.Cost
	rep.UsedSynopses = dec.Chosen.Uses

	// Execute. The executor seed derives from the canonical plan text, not
	// the query's arrival number, so the randomness a query sees — and with
	// it the sampled result — is reproducible under concurrent serving
	// regardless of interleaving.
	ctx := exec.NewContext(q.Accuracy.Confidence)
	ctx.Pool = e.vecPool // engine-wide: recycles batches across queries
	ctx.Workers = e.cfg.Workers
	ctx.DisablePrune = e.cfg.DisablePruning
	ctx.DisableKernels = e.cfg.DisableKernels
	if e.mx != nil {
		ctx.Obs = &e.mx.Exec
	}
	if e.cfg.Trace {
		ctx.TraceNodes = make(map[plan.Node]*obs.TraceNode)
		ctx.Clock = e.clock
	}
	matNames := make(map[*plan.SynopsisOp]uint64)
	keepSketch := make(map[*plan.SketchJoin]uint64)
	for _, cs := range dec.Materialize {
		if cs.SampleNode != nil {
			ctx.MaterializeSamples[cs.SampleNode] = fmt.Sprintf("synopsis_%d", cs.Entry.Desc.ID)
			matNames[cs.SampleNode] = cs.Entry.Desc.ID
		}
		if cs.SketchNode != nil {
			keepSketch[cs.SketchNode] = cs.Entry.Desc.ID
		}
	}
	planTree := plan.Format(dec.Chosen.Root)
	op, err := exec.Compile(dec.Chosen.Root, synopses.SeedFromString(planTree, e.cfg.Seed), ctx)
	if err != nil {
		return nil, err
	}
	batches, err := exec.Run(op)
	if err != nil {
		return nil, err
	}

	// Byproducts: freshness is read from the table versions *bound into
	// the executed plan*, not the current catalog, so an append racing
	// between execution and admission registers as staleness instead of
	// being silently absorbed (for sketches and multi-table samples alike;
	// a sketch's source is its build side only — the probe tables are not
	// summarized).
	var built []builtSynopsis
	for _, bs := range ctx.Stats.BuiltSamples {
		id, ok := matNames[bs.Op]
		if !ok {
			continue
		}
		ep, byTable := boundVersion(bs.Op)
		built = append(built, builtSynopsis{
			item: warehouse.NewSampleItem(id, bs.Sample), id: id,
			srcEpoch: ep, srcByTable: byTable,
		})
		rep.CreatedSynopses = append(rep.CreatedSynopses, id)
	}
	for _, bk := range ctx.Stats.BuiltSketches {
		id, ok := keepSketch[bk.Op]
		if !ok {
			continue
		}
		ep, byTable := boundVersion(bk.Op.Build)
		built = append(built, builtSynopsis{
			item: warehouse.NewSketchItem(id, bk.Sketch), id: id,
			srcEpoch: ep, srcByTable: byTable,
		})
		rep.CreatedSynopses = append(rep.CreatedSynopses, id)
	}
	if e.svc != nil {
		// Asynchronous: hand the byproducts and the plan observation to the
		// tuning service; admission, window accounting, set selection and
		// the snapshot publish all happen off this query's critical path.
		// Only values are enqueued — q may be reused by a later Execute.
		e.svc.enqueue(&observation{
			obs:   tuner.Observation{QueryID: q.ID, ExactCost: ps.Exact.Cost},
			uses:  dec.Chosen.Uses,
			built: built,
		})
	} else if len(built) > 0 {
		// Inline byproduct admission runs only when no tuning service
		// exists (synchronous mode again — the svc branch above enqueued
		// instead and the lock-free path never reaches here).
		//taster:locked synchronous-mode inline admission; the e.svc != nil serving path enqueues and never takes this branch
		e.tuneMu.Lock()
		changed := false
		for _, b := range built {
			stored, refreshed := e.admitLocked(b.item, b.id, b.srcEpoch, b.srcByTable)
			changed = changed || stored
			if refreshed {
				rep.Refreshed = append(rep.Refreshed, b.id)
			}
		}
		if e.db != nil && changed {
			e.noteCheckpointLocked()
		}
		e.tuneMu.Unlock()
	}

	res = assemble(op, batches)
	res.Report = rep
	res.Report.SimSeconds = ctx.Stats.SimulatedSeconds(e.cfg.CostModel)
	if e.cfg.Mode == ModeTaster {
		// Only the full system runs the centralized tuner; charging the
		// overhead to the baselines would inflate them (§VI fairness).
		res.Report.SimSeconds += e.cfg.TuneOverheadSeconds
	}
	res.Report.ScanBytes = ctx.Stats.BaseBytes
	res.Report.WallSeconds = time.Since(start).Seconds()
	res.Report.BufferBytes, res.Report.WarehouseBytes = e.wh.Usage()
	res.Report.PlanTree = planTree
	if ctx.TraceNodes != nil {
		// Materialization counts attach per plan node after the run: rows for
		// samples (the synopsis payload the node teed off), 1 per sketch.
		built := make(map[plan.Node]int64)
		for _, bs := range ctx.Stats.BuiltSamples {
			built[bs.Op] += int64(bs.Sample.Rows.NumRows())
		}
		for _, bk := range ctx.Stats.BuiltSketches {
			built[bk.Op]++
		}
		res.Trace = exec.BuildTraceTree(dec.Chosen.Root, ctx.TraceNodes, built).Render()
	}
	e.reports.push(res.Report)
	return res, nil
}

// MetricsSnapshot samples the engine's metrics registry and fills in the
// engine-level gauges the registry cannot know (warehouse occupancy,
// plan-cache residency, published snapshot version). Safe to call
// concurrently with Execute/Ingest/SetStorageBudget — every registry series
// is atomic and the gauges read from their own synchronized sources. With no
// Config.Metrics the counters are all zero and only the gauges are live.
func (e *Engine) MetricsSnapshot() obs.MetricsSnapshot {
	s := e.mx.Snapshot()
	s.PlanCacheEntries = int64(e.planCache.Len())
	if snap := e.snap.Load(); snap != nil {
		s.SnapshotVersion = int64(snap.version)
	}
	s.BufferBytes, s.WarehouseBytes = e.wh.Usage()
	return s
}

// windowLen reads the tuner's current window length under the tuning lock.
// Only the non-Taster baseline modes (Quickr, Offline, Exact) call this
// from Execute — the asynchronous serving path reads the window from the
// published snapshot instead.
func (e *Engine) windowLen() int {
	//taster:locked report-only read for baseline modes; the lock-free ModeTaster serving path reads snap.window and never calls windowLen
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	return e.tn.Window()
}

// admitLocked places a freshly built synopsis in the buffer, overflowing to
// the warehouse, dropping it if neither tier has room. The caller holds
// tuneMu, so the store-then-set-location pair can never interleave with the
// tuner's delete-then-set-location pair (which would strand a stale
// location in the metadata store); admission itself is atomic in the
// warehouse manager, so two queries concurrently building the same synopsis
// converge on one stored copy.
//
// When a stored copy exists but this rebuild scanned strictly more source
// rows, the rebuild is a *refresh*: the stale copy is atomically replaced
// (pins carry over; plans already executing against the old item keep
// their immutable snapshot). Returns whether this build landed in a tier
// (false when dropped for space or superseded by an at-least-as-fresh
// stored copy) and whether it was a refresh replacement. srcEpoch/
// srcByTable are the build plan's bound source versions (see boundVersion).
func (e *Engine) admitLocked(it *warehouse.Item, id uint64, srcEpoch uint64, srcByTable map[string]int64) (stored, refreshed bool) {
	if ent, ok := e.store.Get(id); ok && e.wh.Has(id) {
		// Compare builds per table where possible: summed epochs can alias
		// across distinct version vectors (plan binding is not an atomic
		// cut across tables), but per-table row counts are monotone under
		// append and recorded on both sides.
		newer := ent.Desc.BuildEpoch < srcEpoch
		if bt := ent.BuiltByTable(); len(bt) > 0 {
			newer = false
			for t, r := range srcByTable {
				if r > bt[t] { // absent table reads 0: any rows count as newer
					newer = true
				}
			}
		}
		if !newer {
			// The stored copy is at least as fresh as this rebuild (a
			// concurrent build from a newer snapshot won the race, or an
			// equally-stale rebuild): keep its copy AND its metadata —
			// stamping this build's version could mislabel fresh data as
			// stale, and churning an equal copy would report a refresh
			// that recovered nothing.
			return false, false
		}
		// Genuine refresh: this rebuild scanned strictly more source rows.
		// Replace in place — pins carry over (a refresh is not an
		// eviction), and on failure (rebuild fits nowhere) the stale copy
		// and its metadata stay, so the staleness policy keeps seeing it
		// for what it is.
		res, err := e.wh.Refresh(it)
		if err != nil {
			return false, false
		}
		loc := meta.LocWarehouse
		if res == warehouse.AdmitBuffer {
			loc = meta.LocBuffer
		}
		e.store.SetLocation(id, loc)
		e.store.SetActualSize(id, it.Size)
		e.store.SetFreshness(id, srcEpoch, srcByTable)
		return true, true
	}
	switch e.wh.Admit(it) {
	case warehouse.AdmitBuffer:
		e.store.SetLocation(id, meta.LocBuffer)
	case warehouse.AdmitWarehouse:
		e.store.SetLocation(id, meta.LocWarehouse)
	default:
		// Both tiers full: the synopsis was dropped, but metadata remembers
		// the measured size for better future decisions.
		e.store.SetActualSize(id, it.Size)
		return false, false
	}
	e.store.SetActualSize(id, it.Size)
	e.store.SetFreshness(id, srcEpoch, srcByTable)
	return true, false
}

// boundVersion reports the base-table versions bound into the subplan —
// the exact data the build actually scanned: the summed epoch over the
// distinct tables plus each table's row count (a self-joined table counts
// once; both scans bind the same version).
func boundVersion(src plan.Node) (epoch uint64, byTable map[string]int64) {
	byTable = make(map[string]int64)
	if src == nil {
		return 0, byTable
	}
	plan.Walk(src, func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			if _, seen := byTable[s.Table.Name]; !seen {
				epoch += s.Table.Epoch()
				byTable[s.Table.Name] = int64(s.Table.NumRows())
			}
		}
	})
	return epoch, byTable
}

// Ingest appends a batch of rows to a base table (schema must match) and
// marks every synopsis summarizing that relation as having unseen rows —
// the engine's online data-evolution entry point. It is safe under
// concurrent Execute: the catalog swaps in a new immutable table version
// under its own lock (running queries keep the snapshot they resolved), and
// the metadata store updates epochs under the store lock. Under
// asynchronous tuning it also republishes the tuning snapshot, so the
// serving path's refresh credits see the new staleness immediately rather
// than at the next observation batch. Returns the table's new epoch.
func (e *Engine) Ingest(table string, delta *storage.Table) (uint64, error) {
	// Mark affected synopses BEFORE the new version is published: a query
	// planning in between sees old data with stale-marked synopses (which
	// merely forgoes reuse) rather than new data with synopses still
	// reported fresh (which would violate the staleness bound).
	added := int64(delta.NumRows())
	e.store.MarkUnseen(table, added)
	nt, err := e.cat.Append(table, delta)
	if err != nil {
		e.store.MarkUnseen(table, -added) // roll the pre-mark back
		return 0, fmt.Errorf("core: ingest into %s: %w", table, err)
	}
	// Publish the version, the new partition layout and the pre-mark release
	// in one atomic store operation, so no reader ever counts the appended
	// rows twice and partition-scoped staleness can attribute the append to
	// exactly the partitions it landed in.
	e.store.PublishAppendParts(table, nt.Epoch(), int64(nt.NumRows()), added, nt.PartitionRowCounts())
	if e.mx != nil {
		e.mx.IngestBatches.Inc()
		e.mx.IngestRows.Add(added)
	}
	if e.svc != nil || e.db != nil {
		e.tuneMu.Lock()
		if e.svc != nil {
			e.republishLocked()
		}
		if e.db != nil {
			// The observed table version is durable state: a crash that
			// recovered a pre-ingest manifest would report the affected
			// synopses fresh against the old row counts — the stale-serving
			// bug the freshness epochs exist to prevent, reintroduced
			// across restarts.
			e.noteCheckpointLocked()
		}
		e.tuneMu.Unlock()
	}
	return nt.Epoch(), nil
}

// assemble converts operator output into a Result.
func assemble(op exec.Operator, batches []*storage.Batch) *Result {
	res := &Result{Columns: op.Schema().Names()}
	for _, b := range batches {
		for i := 0; i < b.Len(); i++ {
			res.Rows = append(res.Rows, b.Row(i))
		}
	}
	if rep, ok := op.(exec.IntervalReporter); ok {
		res.Intervals = rep.Intervals()
	}
	return res
}

// SetStorageBudget changes the warehouse quota at runtime and immediately
// retunes, evicting the lowest-gain synopses until the warehouse fits —
// the paper's storage elasticity (§V, §VI-D). Under asynchronous tuning the
// re-evaluated keep set is published as a fresh snapshot before returning,
// so queries planned after the call serve against the new budget.
func (e *Engine) SetStorageBudget(bytes int64) {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	e.wh.SetWarehouseQuota(bytes)
	if e.cfg.Mode != ModeTaster {
		return
	}
	dec := e.tn.Retune()
	evicted, _ := e.wh.ApplyMoves(dec.Evict, nil)
	for _, id := range evicted {
		e.store.SetLocation(id, meta.LocNone)
	}
	// A shrink can leave overflow even after set-based eviction (e.g. all
	// remaining synopses beneficial); drop the lowest-marginal-gain
	// leftovers — larger size breaking ties, so each eviction frees the
	// most bytes per unit of forfeited gain — until the quota holds.
	// Failed deletes are skipped, not fatal: one undeletable item must not
	// leave the warehouse permanently over quota.
	if e.wh.Overflow() > 0 {
		items := e.wh.WarehouseItems()
		sort.Slice(items, func(i, j int) bool {
			gi, gj := dec.Gains[items[i].ID], dec.Gains[items[j].ID]
			if gi != gj {
				return gi < gj
			}
			if items[i].Size != items[j].Size {
				return items[i].Size > items[j].Size
			}
			return items[i].ID < items[j].ID
		})
		for _, it := range items {
			if e.wh.Overflow() <= 0 {
				break
			}
			if it.Pinned {
				continue
			}
			if err := e.wh.Delete(it.ID); err != nil {
				continue
			}
			e.store.SetLocation(it.ID, meta.LocNone)
		}
	}
	if e.svc != nil {
		e.publishLocked(dec.Keep, dec.Gains)
	}
	if e.db != nil {
		e.noteCheckpointLocked()
	}
}

// PinSample registers an offline-built sample (user hints, §V): it is
// placed directly in the warehouse, marked pinned, and the tuner will never
// evict it. stratCols/aggCols/accuracy describe what queries it can serve.
// Pinning is synchronous in every mode — the hint is servable the moment
// the call returns (under asynchronous tuning via an immediate snapshot
// republish).
func (e *Engine) PinSample(table string, s *synopses.Sample, stratCols, aggCols []string, acc stats.AccuracySpec) (uint64, error) {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	tbl, err := e.cat.Table(table)
	if err != nil {
		return 0, err
	}
	desc := meta.Descriptor{
		Kind:      plan.DistinctSample,
		Sig:       plan.SignatureOf(&plan.Scan{Table: tbl}),
		StratCols: stratCols,
		P:         s.P,
		Delta:     s.Delta,
		AggCols:   aggCols,
		Accuracy:  acc,
		Pinned:    true,
	}
	if s.Strategy == "uniform" || s.Strategy == "variational" {
		desc.Kind = plan.UniformSample
	}
	entry := e.store.Intern(desc)
	id := entry.Desc.ID
	e.store.SetPinned(id, true)
	it := warehouse.NewSampleItem(id, s)
	it.Pinned = true
	loc := meta.LocWarehouse
	if e.wh.Has(id) {
		// Re-pinning an already-stored sample (e.g. a rebuilt hint after
		// ingestion) refreshes the stored copy in place.
		res, err := e.wh.Refresh(it)
		if err != nil {
			return 0, fmt.Errorf("core: pinning sample: %w", err)
		}
		if res == warehouse.AdmitBuffer {
			loc = meta.LocBuffer
		}
	} else if err := e.wh.PutWarehouse(it); err != nil {
		return 0, fmt.Errorf("core: pinning sample: %w", err)
	}
	e.store.SetActualSize(id, it.Size)
	e.store.SetLocation(id, loc)
	// Freshness is anchored to the rows the sample actually scanned (its
	// validated SourceRows), matching the admit path's plan-bound
	// convention: an ingest racing the offline build — or a hint built from
	// partial data — registers as staleness instead of being silently
	// absorbed by the catalog's current row count.
	rows := int64(s.SourceRows)
	if rows <= 0 {
		rows = int64(tbl.NumRows())
	}
	e.store.SetFreshness(id, tbl.Epoch(), map[string]int64{table: rows})
	if e.svc != nil {
		e.republishLocked()
	}
	if e.db != nil {
		// A pinned hint should be durable the moment the call returns: its
		// payload was spilled by PutWarehouse/Refresh above, so only the
		// manifest write remains. If that write fails the hint IS installed
		// and serving (this engine run answers from it) but would not
		// survive a restart — surface the failure alongside the id so the
		// caller can retry a checkpoint or treat the hint as volatile.
		if err := e.checkpointLocked(false); err != nil {
			return id, fmt.Errorf("core: pinned sample #%d installed but not yet durable: %w", id, err)
		}
	}
	return id, nil
}

// PinPartitionedSample builds and pins one uniform mini-sample per partition
// of a base table: each partition's sample is its own warehouse item with a
// partition-scoped descriptor, so the disk tier spills and faults partitions
// individually, an append landing in one partition leaves its siblings fully
// fresh (partition-scoped staleness), and refreshing after ingestion
// rebuilds only the partitions that changed. The planner serves whole-table
// queries from the complete set merged in partition order; the chunk-aligned
// build discipline (see synopses.BuildUniformRangeSample) makes that merge
// bit-identical to a monolithic sample at the same seed. Returns the
// per-partition synopsis IDs in partition order.
//
// A single-partition table is pinned at whole-table scope instead: a
// Partition=1 descriptor on a monolithic table could never serve a query
// (MatchSamples matches partition scope exactly, and the merged reuse path
// needs at least two partitions), so its bytes would hold warehouse budget
// with zero benefit. The one sample built covers the whole table anyway.
func (e *Engine) PinPartitionedSample(table string, prob float64, stratCols, aggCols []string, acc stats.AccuracySpec) ([]uint64, error) {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	tbl, err := e.cat.Table(table)
	if err != nil {
		return nil, err
	}
	if prob <= 0 {
		prob = 0.01
	}
	if prob > 1 {
		prob = 1
	}
	sig := plan.SignatureOf(&plan.Scan{Table: tbl})
	// One shared base seed per table: the chunk-aligned discipline keys every
	// draw to the row's global position under this seed, which is what makes
	// the per-partition builds merge into exactly the whole-table sample.
	seed := synopses.SeedFromString("pin-partitioned:"+table, e.cfg.Seed)
	counts := tbl.PartitionRowCounts()
	parts := tbl.Partitions()
	ids := make([]uint64, 0, parts)
	for pi := 0; pi < parts; pi++ {
		scope := pi + 1
		if parts == 1 {
			scope = 0 // monolithic table: pin at whole-table scope (see godoc)
		}
		desc := meta.Descriptor{
			Kind:      plan.UniformSample,
			Sig:       sig,
			StratCols: stratCols,
			P:         prob,
			AggCols:   aggCols,
			Accuracy:  acc,
			Pinned:    true,
			Partition: scope,
		}
		entry := e.store.Intern(desc)
		id := entry.Desc.ID
		s := synopses.BuildPartitionSample(fmt.Sprintf("synopsis_%d", id), tbl, pi, prob, seed, stratCols)
		it := warehouse.NewSampleItem(id, s)
		it.Pinned = true
		e.store.SetPinned(id, true)
		loc := meta.LocWarehouse
		if e.wh.Has(id) {
			// Re-pinning after ingestion refreshes the stored copy in place —
			// typically only the tail partition's descriptor resolves to a
			// stored item with different contents; untouched partitions
			// rebuild byte-identically and the refresh is a no-op overwrite.
			res, err := e.wh.Refresh(it)
			if err != nil {
				return ids, fmt.Errorf("core: pinning partition %d sample on %s: %w", pi+1, table, err)
			}
			if res == warehouse.AdmitBuffer {
				loc = meta.LocBuffer
			}
		} else if err := e.wh.PutWarehouse(it); err != nil {
			return ids, fmt.Errorf("core: pinning partition %d sample on %s: %w", pi+1, table, err)
		}
		e.store.SetActualSize(id, it.Size)
		e.store.SetLocation(id, loc)
		// Freshness is the partition's own row count: partition-scoped
		// staleness compares it against the observed layout, so an append
		// landing elsewhere contributes nothing.
		e.store.SetFreshness(id, tbl.Epoch(), map[string]int64{table: counts[pi]})
		ids = append(ids, id)
	}
	e.store.ObservePartitions(table, counts)
	if e.svc != nil {
		e.republishLocked()
	}
	if e.db != nil {
		if err := e.checkpointLocked(false); err != nil {
			return ids, fmt.Errorf("core: pinned partitioned sample on %s installed but not yet durable: %w", table, err)
		}
	}
	return ids, nil
}
