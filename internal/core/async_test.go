package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/tasterdb/taster/internal/storage"
)

// asyncTestEngine builds an engine on the default asynchronous tuning
// pipeline (background service + snapshot publishes).
func asyncTestEngine() *Engine {
	cat := testCatalog()
	return New(cat, Config{
		Mode:          ModeTaster,
		StorageBudget: cat.TotalBytes(),
		BufferSize:    cat.TotalBytes(),
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
	})
}

// reportFingerprint canonicalizes the deterministic part of a report.
// Warehouse/buffer occupancy is excluded: Execute samples it right after
// enqueueing its observation, so under asynchronous tuning it legitimately
// depends on whether the background admission already landed.
func reportFingerprint(r Report) string {
	return fmt.Sprintf("%d|%s|%v|%v|%v|%.9f|%.9f|%d",
		r.QueryID, r.PlanDesc, r.UsedSynopses, r.CreatedSynopses, r.Evicted,
		r.EstimatedCost, r.SimSeconds, r.Window)
}

// TestAsyncConvergesToReuse: the asynchronous pipeline must reach the same
// steady state as the inline round — materialize a synopsis as a byproduct,
// then serve subsequent queries from it — with at most one extra round of
// warmup (the first query plans against a snapshot that predates its own
// observation). Execute→Drain makes the loop deterministic.
func TestAsyncConvergesToReuse(t *testing.T) {
	e := asyncTestEngine()
	defer e.Close()
	truth := exactAnswer(t)

	var first, last *Result
	for i := 0; i < 8; i++ {
		res, err := e.Execute(catQuery(e))
		if err != nil {
			t.Fatal(err)
		}
		e.Drain()
		if i == 0 {
			first = res
		}
		last = res
		if len(res.Rows) != 4 {
			t.Fatalf("run %d: %d groups (missing groups!)", i, len(res.Rows))
		}
		for _, r := range res.Rows {
			want := truth[r[0].I]
			if rel := math.Abs(r[1].F-want) / want; rel > 0.15 {
				t.Fatalf("run %d cat %d: rel error %.3f > 15%%", i, r[0].I, rel)
			}
		}
	}
	if len(last.Report.UsedSynopses) == 0 {
		t.Fatalf("no synopsis reuse by run 8: %+v", last.Report)
	}
	if last.Report.SimSeconds >= first.Report.SimSeconds {
		t.Fatalf("reuse did not speed up: cold %.3f warm %.3f",
			first.Report.SimSeconds, last.Report.SimSeconds)
	}
	st := e.TuningStats()
	if st.Rounds == 0 || st.Observations != 8 || st.Admitted == 0 {
		t.Fatalf("tuning stats: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("unexpected shed observations: %+v", st)
	}
}

// TestAsyncExecuteDrainDeterministic: with the Drain barrier between
// queries, two identical asynchronous runs must be byte-identical — same
// plans, same synopsis activity, same rows. This is the async pipeline's
// determinism contract (the synchronous flag gives the same guarantee
// without barriers; see TestSyncModeDeterministic).
func TestAsyncExecuteDrainDeterministic(t *testing.T) {
	run := func() (reps []string, rows []string) {
		e := asyncTestEngine()
		defer e.Close()
		mix := mixedQueries(e)
		for round := 0; round < 3; round++ {
			for _, mk := range mix {
				res, err := e.Execute(mk())
				if err != nil {
					t.Fatal(err)
				}
				e.Drain()
				rows = append(rows, resultFingerprint(res))
			}
		}
		for _, r := range e.Reports() {
			reps = append(reps, reportFingerprint(r))
		}
		return reps, rows
	}
	repsA, rowsA := run()
	repsB, rowsB := run()
	for i := range repsA {
		if repsA[i] != repsB[i] {
			t.Fatalf("report %d diverges across async runs:\nA %s\nB %s", i, repsA[i], repsB[i])
		}
	}
	for i := range rowsA {
		if rowsA[i] != rowsB[i] {
			t.Fatalf("result %d diverges across async runs:\nA %.160s\nB %.160s", i, rowsA[i], rowsB[i])
		}
	}
}

// TestSyncModeDeterministic: Config.Synchronous preserves the pre-refactor
// engine byte for byte — the inline tune→evict/promote→execute→admit round
// on the calling goroutine. Two sequential runs must produce identical
// report streams including tuning activity (evictions, windows), which is
// what the figure experiments rely on.
func TestSyncModeDeterministic(t *testing.T) {
	run := func() []string {
		e := testEngine(ModeTaster) // Synchronous: true
		mix := mixedQueries(e)
		var out []string
		for round := 0; round < 3; round++ {
			for _, mk := range mix {
				res, err := e.Execute(mk())
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, reportFingerprint(res.Report), resultFingerprint(res))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sync run diverges at %d:\nA %.200s\nB %.200s", i, a[i], b[i])
		}
	}
}

// TestAsyncConcurrentStorm hammers the asynchronous engine from many
// goroutines — queries, online ingests and elastic budget changes all in
// flight while the background service tunes. Run under -race this is the
// tentpole's interleaving proof; the asserts check the system lands in a
// coherent state: accurate answers over the evolved data, accounting that
// adds up, and a warehouse within quota.
func TestAsyncConcurrentStorm(t *testing.T) {
	e := asyncTestEngine()
	defer e.Close()
	mix := mixedQueries(e)

	const goroutines = 8
	const perG = 6
	var executed atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG+16)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				mk := mix[(g*perG+i)%len(mix)]
				res, err := e.Execute(mk())
				if err != nil {
					errCh <- err
					return
				}
				executed.Add(1)
				if len(res.Rows) == 0 {
					errCh <- fmt.Errorf("goroutine %d query %d: empty result", g, i)
					return
				}
			}
		}(g)
	}
	// One ingester appending rows that mirror the seed distribution, and
	// one budget shaker, interleaved with the serving goroutines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := e.Ingest("sales", salesDelta(1000, 40)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		total := e.Catalog().TotalBytes()
		for _, div := range []int64{2, 8, 1, 4, 1} {
			e.SetStorageBudget(total / div)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	e.Quiesce()

	// Accounting: every served query either reached the tuner or was
	// counted as shed — none may vanish.
	st := e.TuningStats()
	if st.Observations+st.Dropped != executed.Load() {
		t.Fatalf("observations %d + dropped %d != executed %d", st.Observations, st.Dropped, executed.Load())
	}
	if st.SnapshotVersion == 0 || st.Rounds == 0 {
		t.Fatalf("tuning service never ran: %+v", st)
	}

	// The engine must still answer accurately over the evolved data.
	truth := exactOn(t, e)
	res, err := e.Execute(catQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		want := truth[r[0].I]
		if rel := math.Abs(r[1].F-want) / want; rel > 0.15 {
			t.Fatalf("category %d: rel error %.3f after concurrent storm", r[0].I, rel)
		}
	}
	// Telemetry: unique IDs, one report per query.
	reps := e.Reports()
	seen := make(map[int]bool, len(reps))
	for _, r := range reps {
		if seen[r.QueryID] {
			t.Fatalf("duplicate query ID %d in reports", r.QueryID)
		}
		seen[r.QueryID] = true
	}
	if int64(len(reps)) != executed.Load()+1 {
		t.Fatalf("reports = %d, want %d", len(reps), executed.Load()+1)
	}
}

// TestObservationQueueShedsNotBlocks: when the observation queue is full
// and the service cannot drain it (stopped here, which is the worst case),
// Execute must keep serving at full speed and account the shed
// observations — backpressure degrades tuning fidelity, never latency.
func TestObservationQueueShedsNotBlocks(t *testing.T) {
	cat := testCatalog()
	e := New(cat, Config{
		Mode:             ModeTaster,
		StorageBudget:    cat.TotalBytes(),
		BufferSize:       cat.TotalBytes(),
		CostModel:        storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:             7,
		ObservationQueue: 1,
	})
	e.Close() // service stopped: the queue can only fill
	for i := 0; i < 4; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	if d := e.TuningStats().Dropped; d != 3 { // 1 queued + 3 shed
		t.Fatalf("dropped = %d, want 3", d)
	}
	e.Drain() // must not hang against a stopped service
}

// TestTuneOverheadChargedOnlyInTaster: the simulated tuning overhead is
// the cost of running Taster's centralized tuner; charging it to the
// baselines would inflate Exact/Quickr/Offline and misstate every speedup
// (regression for the unconditional SimSeconds += overhead bug).
func TestTuneOverheadChargedOnlyInTaster(t *testing.T) {
	simWith := func(mode Mode, overhead float64) float64 {
		cat := testCatalog()
		e := New(cat, Config{
			Mode:                mode,
			StorageBudget:       cat.TotalBytes(),
			BufferSize:          cat.TotalBytes(),
			CostModel:           storage.ScaledCostModel(cat.TotalBytes(), 30040),
			Seed:                7,
			Synchronous:         true,
			TuneOverheadSeconds: overhead,
		})
		defer e.Close()
		res, err := e.Execute(catQuery(e))
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.SimSeconds
	}
	for _, mode := range []Mode{ModeTaster, ModeQuickr, ModeExact, ModeOffline} {
		delta := simWith(mode, 2.0) - simWith(mode, 0)
		want := 0.0
		if mode == ModeTaster {
			want = 2.0
		}
		if math.Abs(delta-want) > 1e-9 {
			t.Fatalf("mode %s: overhead charged %.3f, want %.1f", mode, delta, want)
		}
	}
}

// TestReportsRingBounded: sustained traffic must not grow telemetry without
// bound — the ring keeps the newest ReportCap reports, oldest first.
func TestReportsRingBounded(t *testing.T) {
	cat := testCatalog()
	e := New(cat, Config{
		Mode:          ModeTaster,
		StorageBudget: cat.TotalBytes(),
		BufferSize:    cat.TotalBytes(),
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
		Synchronous:   true,
		ReportCap:     8,
	})
	for i := 0; i < 12; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
	}
	reps := e.Reports()
	if len(reps) != 8 {
		t.Fatalf("reports = %d, want cap 8", len(reps))
	}
	for i, r := range reps {
		if r.QueryID != 4+i { // 12 queries, newest 8 are IDs 4..11
			t.Fatalf("report %d has query ID %d, want %d (newest-last order)", i, r.QueryID, 4+i)
		}
	}
}

// TestIngestRepublishesStaleness: an ingest must refresh the published
// snapshot's staleness immediately — before any new observation batch — so
// the serving path's refresh credits see the drift as soon as the append
// is visible.
func TestIngestRepublishesStaleness(t *testing.T) {
	e := asyncTestEngine()
	defer e.Close()
	for i := 0; i < 4; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			t.Fatal(err)
		}
		e.Drain()
	}
	v0 := e.TuningStats().SnapshotVersion
	if _, err := e.Ingest("sales", salesDelta(30000, 40)); err != nil {
		t.Fatal(err)
	}
	if v := e.TuningStats().SnapshotVersion; v <= v0 {
		t.Fatalf("ingest did not republish the tuning snapshot: %d <= %d", v, v0)
	}
	snap := e.snap.Load()
	stale := false
	for id, s := range snap.staleness {
		if s > 0.4 {
			stale = true
		}
		_ = id
	}
	if len(snap.staleness) > 0 && !stale {
		t.Fatalf("published staleness missed the append: %v", snap.staleness)
	}
}

// TestDrainClearsDeepBacklog: Drain's contract is "every observation
// enqueued before the call is tuned", even when the backlog is deeper than
// one tuning round's maxBatch. The tuning mutex is held to stall the
// service while the backlog builds (Execute never needs it, so serving
// proceeds), then released for the Drain (regression: the flush path used
// to ack after a single capped batch).
func TestDrainClearsDeepBacklog(t *testing.T) {
	e := asyncTestEngine()
	defer e.Close()

	e.tuneMu.Lock()
	const n = maxBatch + 44
	for i := 0; i < n; i++ {
		if _, err := e.Execute(catQuery(e)); err != nil {
			e.tuneMu.Unlock()
			t.Fatal(err)
		}
	}
	e.tuneMu.Unlock()

	e.Drain()
	st := e.TuningStats()
	if st.Observations+st.Dropped != n {
		t.Fatalf("after Drain: observations %d + dropped %d != executed %d",
			st.Observations, st.Dropped, n)
	}
	if st.Dropped != 0 { // queue default 1024 ≫ n: nothing may shed
		t.Fatalf("unexpected shedding: %+v", st)
	}
}
