package core

import "sync"

// reportRing is the capped per-query telemetry buffer: it grows one report
// at a time until the cap, then becomes a fixed ring overwriting the
// oldest entry, so short-lived engines pay only for the reports they hold
// while sustained traffic keeps memory constant. Its lock is engine-wide
// but held only for one struct copy per push — it never covers planning,
// tuning or execution, so it is not a serving-path serialization point
// (unlike the tuning mutex the snapshot refactor removed from Execute).
type reportRing struct {
	mu       sync.Mutex
	capacity int
	buf      []Report // grows to capacity, then ring-overwrites
	next     int      // ring phase: index the next push writes
	full     bool     // true once buf reached capacity
}

func newReportRing(capacity int) *reportRing {
	return &reportRing{capacity: capacity}
}

func (r *reportRing) push(rep Report) {
	r.mu.Lock()
	if !r.full {
		r.buf = append(r.buf, rep)
		if len(r.buf) == r.capacity {
			r.full = true // next push overwrites index 0, the oldest
		}
		r.mu.Unlock()
		return
	}
	r.buf[r.next] = rep
	r.next++
	if r.next == r.capacity {
		r.next = 0
	}
	r.mu.Unlock()
}

// list returns the retained reports oldest-first (newest last), at most
// the ring's capacity.
func (r *reportRing) list() []Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Report(nil), r.buf...)
	}
	out := make([]Report, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
