package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// partitionedEngine is testEngine over the shared catalog, tiled into
// PartitionRows-sized partitions. 9000 tiles the 30000-row sales table as
// [9000, 9000, 9000, 3000] — a short tail, so appends land inside an
// existing partition rather than always opening a new one.
func partitionedEngine(partRows int, maxStaleness float64) *Engine {
	cat := testCatalog()
	return New(cat, Config{
		Mode:          ModeTaster,
		StorageBudget: cat.TotalBytes(),
		BufferSize:    cat.TotalBytes(),
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
		PartitionRows: partRows,
		MaxStaleness:  maxStaleness,
		Synchronous:   true,
	})
}

var partPinAcc = stats.AccuracySpec{RelError: 0.05, Confidence: 0.99}

func pinPartitioned(t *testing.T, e *Engine) []uint64 {
	t.Helper()
	ids, err := e.PinPartitionedSample("sales", 0.05,
		[]string{"sales.product"}, []string{"sales.qty", "sales.price"}, partPinAcc)
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestPartitionedPinStalenessScoping is the PR's staleness regression: an
// append that lands in the tail partition must leave the sibling
// partitions' synopses fully fresh, while a whole-table synopsis of the same
// relation (the pre-partitioning granularity) goes stale. Before
// partition-scoped freshness epochs, ONE appended row staleness-marked every
// synopsis of the relation.
func TestPartitionedPinStalenessScoping(t *testing.T) {
	e := partitionedEngine(9000, 0)
	ids := pinPartitioned(t, e)
	if len(ids) != 4 {
		t.Fatalf("pinned %d per-partition samples, want 4", len(ids))
	}
	// A whole-table pinned sample for contrast.
	sales, _ := e.Catalog().Table("sales")
	whole, err := e.PinSample("sales",
		synopses.BuildSampleFromTable("whole", sales,
			synopses.NewDistinctSampler(0.01, 10, []int{0}, 3),
			[]string{"sales.product"}),
		[]string{"sales.product"}, []string{"sales.qty", "sales.price"}, partPinAcc)
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range append(ids, whole) {
		if s := e.Store().Staleness(id); s != 0 {
			t.Fatalf("synopsis #%d stale before any append: %v", id, s)
		}
	}

	// 2000 rows land in the 3000-row tail partition: [9000, 9000, 9000, 5000].
	if _, err := e.Ingest("sales", salesDelta(2000, 40)); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if s := e.Store().Staleness(ids[p]); s != 0 {
			t.Fatalf("partition %d synopsis stale after tail append: %v", p+1, s)
		}
	}
	if got, want := e.Store().Staleness(ids[3]), 2000.0/5000.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("tail synopsis staleness = %v, want %v", got, want)
	}
	if got, want := e.Store().Staleness(whole), 2000.0/32000.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("whole-table synopsis staleness = %v, want %v", got, want)
	}
}

// partQuery is catQuery with two fact-side aggregates: sketch-ineligible, so
// sample reuse is the only sub-exact plan shape (the PinSample test's trick).
func partQuery(e *Engine) *planner.Query {
	q := catQuery(e)
	q.Aggs = []plan.AggSpec{
		{Kind: stats.Sum, Col: "sales.qty"},
		{Kind: stats.Sum, Col: "sales.price"},
	}
	return q
}

func usedAllPartitions(res *Result, ids []uint64) bool {
	used := make(map[uint64]bool, len(res.Report.UsedSynopses))
	for _, u := range res.Report.UsedSynopses {
		used[u] = true
	}
	for _, id := range ids {
		if !used[id] {
			return false
		}
	}
	return true
}

// TestPartitionedPinServesMergedReuse: the complete per-partition sample set
// answers a whole-table aggregate — merged in partition order — and the
// per-partition staleness bound governs the SET: one over-bound partition
// disqualifies it, and within the bound it keeps serving.
func TestPartitionedPinServesMergedReuse(t *testing.T) {
	e := partitionedEngine(9000, 0) // fresh-only
	ids := pinPartitioned(t, e)
	res, err := e.Execute(partQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	if !usedAllPartitions(res, ids) {
		t.Fatalf("merged reuse must use all %d partition samples; used=%v plan=%q",
			len(ids), res.Report.UsedSynopses, res.Report.PlanDesc)
	}
	// Sanity: the merged estimate tracks the exact answer.
	truth := exactOn(t, e)
	for _, r := range res.Rows {
		want := truth[r[0].I]
		if math.Abs(r[1].F-want) > 0.2*math.Abs(want) {
			t.Fatalf("merged-sample estimate for group %d = %v, exact %v", r[0].I, r[1].F, want)
		}
	}

	// Under fresh-only, a tail append disqualifies the whole set. The delta
	// keeps qty inside the base distribution (1..7) so the disqualification
	// is attributable to the staleness policy alone — a qty far outside the
	// base range would inflate the column's CV and raise the per-group
	// sample-size bar, disqualifying the set for accuracy instead.
	if _, err := e.Ingest("sales", salesDelta(2000, 4)); err != nil {
		t.Fatal(err)
	}
	res, err = e.Execute(partQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	if usedAllPartitions(res, ids) {
		t.Fatalf("stale tail partition served under fresh-only policy; plan=%q", res.Report.PlanDesc)
	}

	// With a staleness allowance covering 2000/5000 drift, the set serves on.
	e2 := partitionedEngine(9000, 0.5)
	ids2 := pinPartitioned(t, e2)
	if _, err := e2.Ingest("sales", salesDelta(2000, 4)); err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Execute(partQuery(e2))
	if err != nil {
		t.Fatal(err)
	}
	if !usedAllPartitions(res2, ids2) {
		t.Fatalf("within-bound partition set not reused; used=%v plan=%q",
			res2.Report.UsedSynopses, res2.Report.PlanDesc)
	}
}

// TestPinPartitionedSampleMonolithicFallsBackToWholeTable: pinning the
// "per-partition" set on a single-partition table must degrade to one
// whole-table sample. A Partition=1 descriptor on a monolithic table is
// unreachable — MatchSamples matches partition scope exactly and the merged
// reuse path needs at least two partitions — so without the fallback the
// pinned bytes would hold warehouse budget while serving nothing.
func TestPinPartitionedSampleMonolithicFallsBackToWholeTable(t *testing.T) {
	e := partitionedEngine(1<<30, 0) // PartitionRows ≥ table: monolithic
	ids := pinPartitioned(t, e)
	if len(ids) != 1 {
		t.Fatalf("pinned %d samples on a monolithic table, want 1", len(ids))
	}
	for _, ent := range e.Store().Materialized() {
		if ent.Desc.ID == ids[0] && ent.Desc.Partition != 0 {
			t.Fatalf("monolithic pin kept partition scope %d, want whole-table (0)", ent.Desc.Partition)
		}
	}
	res, err := e.Execute(partQuery(e))
	if err != nil {
		t.Fatal(err)
	}
	if !usedAllPartitions(res, ids) {
		t.Fatalf("whole-table fallback pin never served; used=%v plan=%q",
			res.Report.UsedSynopses, res.Report.PlanDesc)
	}
}

// TestPartitionedIngestQuerySpillStorm races the partitioned engine end to
// end: concurrent queries (zone-pruned scans, merged partition-sample
// reuse, spill fault-ins off the tiny buffer) against appends that grow the
// tail partition and open new ones, plus elastic budget churn. Run under
// -race by the concurrency suite (`make test-race`); the asserts check the
// engine lands coherent — answers over evolved data, a warehouse that
// reopens cleanly.
func TestPartitionedIngestQuerySpillStorm(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	e, err := Open(cat, Config{
		Mode:          ModeTaster,
		StorageBudget: cat.TotalBytes(),
		BufferSize:    1 << 10, // admissions overflow straight to disk
		CostModel:     storage.ScaledCostModel(cat.TotalBytes(), 30040),
		Seed:          7,
		PartitionRows: 9000,
		MaxStaleness:  -1, // serve through the append churn
		WarehouseDir:  dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PinPartitionedSample("sales", 0.05,
		[]string{"sales.product"}, []string{"sales.qty", "sales.price"}, partPinAcc); err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 4, 10
	var wg sync.WaitGroup
	errCh := make(chan error, clients+2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := persistQuery(e, i+c)
				if i%3 == 0 {
					q = partQuery(e)
				}
				res, err := e.Execute(q)
				if err != nil {
					errCh <- err
					return
				}
				if len(res.Rows) == 0 {
					errCh <- fmt.Errorf("client %d query %d: empty result", c, i)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() { // appends grow the tail partition and open new ones
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := e.Ingest("sales", salesDelta(1500, 4)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // elastic budget churn forces spills and evictions
		defer wg.Done()
		for i := 0; i < 6; i++ {
			e.SetStorageBudget(cat.TotalBytes() / int64(1+i%3))
			e.Drain()
		}
		e.SetStorageBudget(cat.TotalBytes())
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	e.Quiesce()

	// The evolved table must have absorbed every append into the layout.
	sales, _ := e.Catalog().Table("sales")
	if got, want := sales.NumRows(), 30000+8*1500; got != want {
		t.Fatalf("sales rows after storm = %d, want %d", got, want)
	}
	if sales.Partitions() < 5 {
		t.Fatalf("appends opened no new partition: %d partitions", sales.Partitions())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := persistEngine(cat, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for _, ent := range e2.Store().Materialized() {
		if !e2.Warehouse().Has(ent.Desc.ID) {
			t.Fatalf("entry #%d inconsistent after storm restart", ent.Desc.ID)
		}
	}
}
