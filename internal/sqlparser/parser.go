package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

// Parse parses and binds one SQL query against the catalog, returning the
// planner IR.
func Parse(sql string, cat *storage.Catalog) (*planner.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("sql: %w (near position %d)", err, p.cur().pos)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	cat  *storage.Catalog
	q    *planner.Query
}

func (p *parser) cur() token { return p.toks[p.i] }

// next consumes the current token; EOF is sticky.
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.cur().kind == kind && (text == "" || p.cur().text == text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.cur().kind == kind && (text == "" || p.cur().text == text) {
		return p.next(), nil
	}
	return token{}, fmt.Errorf("expected %q, found %q", text, p.cur().text)
}

// selectItem is a parsed projection before binding.
type selectItem struct {
	isAgg bool
	kind  stats.AggKind
	col   string // raw column name; "" for COUNT(*)
	alias string
}

func (p *parser) parseQuery() (*planner.Query, error) {
	p.q = &planner.Query{}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "WHERE") {
		if err := p.parseWhere(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			p.q.GroupBy = append(p.q.GroupBy, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			name, err := p.parseOrderColumn(items)
			if err != nil {
				return nil, err
			}
			p.q.OrderBy = append(p.q.OrderBy, name)
			desc := p.accept(tokKeyword, "DESC")
			if !desc {
				p.accept(tokKeyword, "ASC")
			}
			p.q.Desc = append(p.q.Desc, desc)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad LIMIT %q", t.text)
		}
		p.q.Limit = n
	}
	if p.accept(tokKeyword, "ERROR") {
		if err := p.parseAccuracy(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "EXACT") {
		p.q.Exact = true
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("trailing input %q", p.cur().text)
	}
	return p.q, p.bindSelect(items)
}

func (p *parser) parseSelectList() ([]selectItem, error) {
	var items []selectItem
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return items, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			it := selectItem{isAgg: true}
			switch t.text {
			case "COUNT":
				it.kind = stats.Count
			case "SUM":
				it.kind = stats.Sum
			case "AVG":
				it.kind = stats.Avg
			case "MIN":
				it.kind = stats.Min
			case "MAX":
				it.kind = stats.Max
			}
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return it, err
			}
			if p.accept(tokSymbol, "*") {
				if it.kind != stats.Count {
					return it, fmt.Errorf("%s(*) is not valid SQL", t.text)
				}
			} else {
				col, err := p.parseColumnRef()
				if err != nil {
					return it, err
				}
				it.col = col
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return it, err
			}
			if p.accept(tokKeyword, "AS") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return it, err
				}
				it.alias = a.text
			}
			return it, nil
		}
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return selectItem{}, err
	}
	it := selectItem{col: col}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return it, err
		}
		it.alias = a.text
	}
	return it, nil
}

// parseColumnRef parses ident or ident.ident into a raw name.
func (p *parser) parseColumnRef() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", fmt.Errorf("expected column name, found %q", p.cur().text)
	}
	name := t.text
	if p.accept(tokSymbol, ".") {
		t2, err := p.expect(tokIdent, "")
		if err != nil {
			return "", err
		}
		name += "." + t2.text
	}
	return name, nil
}

// parseOrderColumn accepts either a column or an aggregate expression that
// also appears in the select list (resolved to its output alias).
func (p *parser) parseOrderColumn(items []selectItem) (string, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			it, err := p.parseSelectItem()
			if err != nil {
				return "", err
			}
			spec := plan.AggSpec{Kind: it.kind, Col: it.col, Alias: it.alias}
			return spec.DefaultAlias(), nil
		}
	}
	return p.parseColumnRef()
}

func (p *parser) parseFrom() error {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return fmt.Errorf("expected table name, found %q", p.cur().text)
	}
	if err := p.addTable(name.text); err != nil {
		return err
	}
	for {
		if p.accept(tokKeyword, "INNER") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			break
		}
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return fmt.Errorf("expected table name after JOIN")
		}
		if err := p.addTable(t.text); err != nil {
			return err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return err
		}
		for {
			lc, err := p.parseColumnRef()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokSymbol, "="); err != nil {
				return err
			}
			rc, err := p.parseColumnRef()
			if err != nil {
				return err
			}
			lq, lt, err := p.bindColumn(lc)
			if err != nil {
				return err
			}
			rq, rt, err := p.bindColumn(rc)
			if err != nil {
				return err
			}
			p.q.Joins = append(p.q.Joins, planner.JoinPred{
				LeftTable: lt, LeftCol: lq, RightTable: rt, RightCol: rq,
			})
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}
	return nil
}

func (p *parser) addTable(name string) error {
	tbl, err := p.cat.Table(name)
	if err != nil {
		return err
	}
	for _, t := range p.q.Tables {
		if t.Name == name {
			return fmt.Errorf("table %q appears twice (self-joins unsupported)", name)
		}
	}
	p.q.Tables = append(p.q.Tables, planner.TableRef{Name: name, Table: tbl})
	return nil
}

// bindColumn resolves a raw column reference to its qualified name and
// owning table across the FROM tables.
func (p *parser) bindColumn(raw string) (qualified, table string, err error) {
	var hits []int
	for i, t := range p.q.Tables {
		if t.Table.Schema().Index(raw) >= 0 {
			hits = append(hits, i)
		}
	}
	switch len(hits) {
	case 0:
		return "", "", fmt.Errorf("unknown column %q", raw)
	case 1:
		t := p.q.Tables[hits[0]]
		idx := t.Table.Schema().Index(raw)
		return t.Table.Schema()[idx].Name, t.Name, nil
	default:
		return "", "", fmt.Errorf("ambiguous column %q", raw)
	}
}

func (p *parser) parseWhere() error {
	for {
		c, err := p.parseConjunct()
		if err != nil {
			return err
		}
		p.q.Filter = expr.AndAll([]expr.Expr{p.q.Filter, c})
		if !p.accept(tokKeyword, "AND") {
			break
		}
	}
	return nil
}

func (p *parser) parseConjunct() (expr.Expr, error) {
	colRaw, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	qcol, table, err := p.bindColumn(colRaw)
	if err != nil {
		return nil, err
	}
	colTyp := p.columnType(table, qcol)
	col := &expr.Col{Name: qcol}

	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var vals []storage.Value
		for {
			v, err := p.parseLiteral(colTyp)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &expr.In{E: col, Vals: vals}, nil
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseLiteral(colTyp)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral(colTyp)
		if err != nil {
			return nil, err
		}
		return expr.AndAll([]expr.Expr{
			&expr.Cmp{Op: expr.GE, L: col, R: &expr.Const{Val: lo}},
			&expr.Cmp{Op: expr.LE, L: col, R: &expr.Const{Val: hi}},
		}), nil
	}
	opTok, err := p.expect(tokSymbol, "")
	if err != nil {
		return nil, fmt.Errorf("expected comparison operator, found %q", p.cur().text)
	}
	var op expr.CmpOp
	switch opTok.text {
	case "=":
		op = expr.EQ
	case "<":
		op = expr.LT
	case "<=":
		op = expr.LE
	case ">":
		op = expr.GT
	case ">=":
		op = expr.GE
	case "<>":
		op = expr.NE
	default:
		return nil, fmt.Errorf("unsupported operator %q", opTok.text)
	}
	v, err := p.parseLiteral(colTyp)
	if err != nil {
		return nil, err
	}
	return &expr.Cmp{Op: op, L: col, R: &expr.Const{Val: v}}, nil
}

// columnType returns the declared type of a bound column.
func (p *parser) columnType(table, qcol string) storage.Type {
	for _, t := range p.q.Tables {
		if t.Name != table {
			continue
		}
		if i := t.Table.Schema().Index(qcol); i >= 0 {
			return t.Table.Schema()[i].Typ
		}
	}
	return storage.Float64
}

// parseLiteral parses a literal coerced toward the column type (integer
// literals against DOUBLE columns become floats, etc.).
func (p *parser) parseLiteral(want storage.Type) (storage.Value, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return storage.StringValue(t.text), nil
	case tokNumber:
		if strings.ContainsRune(t.text, '.') || want == storage.Float64 {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return storage.Value{}, fmt.Errorf("bad number %q", t.text)
			}
			return storage.FloatValue(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("bad number %q", t.text)
		}
		return storage.IntValue(n), nil
	}
	return storage.Value{}, fmt.Errorf("expected literal, found %q", t.text)
}

// parseAccuracy parses "WITHIN x% AT CONFIDENCE y%" (ERROR consumed).
func (p *parser) parseAccuracy() error {
	if _, err := p.expect(tokKeyword, "WITHIN"); err != nil {
		return err
	}
	x, err := p.parsePercent()
	if err != nil {
		return err
	}
	p.accept(tokKeyword, "AT")
	if _, err := p.expect(tokKeyword, "CONFIDENCE"); err != nil {
		return err
	}
	y, err := p.parsePercent()
	if err != nil {
		return err
	}
	p.q.Accuracy = stats.AccuracySpec{RelError: x / 100, Confidence: y / 100}
	if !p.q.Accuracy.Valid() {
		return fmt.Errorf("invalid accuracy: error %v%% at confidence %v%%", x, y)
	}
	return nil
}

func (p *parser) parsePercent() (float64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, fmt.Errorf("expected percentage, found %q", p.cur().text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(tokSymbol, "%"); err != nil {
		return 0, err
	}
	return v, nil
}

// bindSelect validates the select list against GROUP BY and fills the IR's
// group/aggregate fields. Non-aggregate select items must appear in GROUP BY.
func (p *parser) bindSelect(items []selectItem) error {
	groupSet := make(map[string]bool)
	for i, g := range p.q.GroupBy {
		qg, _, err := p.bindColumn(g)
		if err != nil {
			return err
		}
		p.q.GroupBy[i] = qg
		groupSet[qg] = true
	}
	for _, it := range items {
		if !it.isAgg {
			qc, _, err := p.bindColumn(it.col)
			if err != nil {
				return err
			}
			if !groupSet[qc] {
				return fmt.Errorf("column %q must appear in GROUP BY", it.col)
			}
			continue
		}
		spec := plan.AggSpec{Kind: it.kind, Alias: it.alias}
		if it.col != "" {
			qc, _, err := p.bindColumn(it.col)
			if err != nil {
				return err
			}
			spec.Col = qc
		}
		p.q.Aggs = append(p.q.Aggs, spec)
	}
	if len(p.q.Aggs) == 0 {
		return fmt.Errorf("query has no aggregates (only aggregate queries are supported)")
	}
	// Order-by columns referencing aggregates were resolved during parsing;
	// group columns bind here.
	for i, o := range p.q.OrderBy {
		if groupSet[o] {
			continue
		}
		if qc, _, err := p.bindColumn(o); err == nil {
			p.q.OrderBy[i] = qc
		}
		// otherwise assume it is an aggregate alias; exec validates.
	}
	return nil
}
