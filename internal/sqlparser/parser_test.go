package sqlparser

import (
	"strings"
	"testing"

	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

func testCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	orders := storage.NewBuilder("orders", storage.Schema{
		{Name: "orders.id", Typ: storage.Int64},
		{Name: "orders.cust", Typ: storage.Int64},
		{Name: "orders.amount", Typ: storage.Float64},
		{Name: "orders.status", Typ: storage.String},
	})
	for i := 0; i < 100; i++ {
		orders.AddRow(storage.IntValue(int64(i)), storage.IntValue(int64(i%10)),
			storage.FloatValue(float64(i)), storage.StringValue("OK"))
	}
	cat.Register(orders.Build(1))
	cust := storage.NewBuilder("cust", storage.Schema{
		{Name: "cust.id", Typ: storage.Int64},
		{Name: "cust.region", Typ: storage.String},
	})
	for i := 0; i < 10; i++ {
		cust.AddRow(storage.IntValue(int64(i)), storage.StringValue("r"))
	}
	cat.Register(cust.Build(1))
	return cat
}

func TestParseSimpleAggregate(t *testing.T) {
	q, err := Parse("SELECT cust, SUM(amount) FROM orders GROUP BY cust", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 || q.Tables[0].Name != "orders" {
		t.Fatalf("tables = %v", q.Tables)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "orders.cust" {
		t.Fatalf("group by = %v (must bind to qualified name)", q.GroupBy)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Kind != stats.Sum || q.Aggs[0].Col != "orders.amount" {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
}

func TestParseJoinQuery(t *testing.T) {
	q, err := Parse(`SELECT region, COUNT(*) AS n, AVG(amount)
		FROM orders JOIN cust ON orders.cust = cust.id
		WHERE amount > 10 AND region = 'r'
		GROUP BY region ORDER BY n DESC LIMIT 5
		ERROR WITHIN 10% AT CONFIDENCE 95%`, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %+v", q.Joins)
	}
	j := q.Joins[0]
	if j.LeftCol != "orders.cust" || j.RightCol != "cust.id" {
		t.Fatalf("join = %+v", j)
	}
	if q.Filter == nil || !strings.Contains(q.Filter.String(), "orders.amount > 10") {
		t.Fatalf("filter = %v", q.Filter)
	}
	if q.Limit != 5 || len(q.OrderBy) != 1 || q.OrderBy[0] != "n" || !q.Desc[0] {
		t.Fatalf("order/limit = %v %v %d", q.OrderBy, q.Desc, q.Limit)
	}
	if q.Accuracy.RelError != 0.10 || q.Accuracy.Confidence != 0.95 {
		t.Fatalf("accuracy = %+v", q.Accuracy)
	}
	if len(q.Aggs) != 2 || q.Aggs[0].Alias != "n" {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
}

func TestParseInAndBetween(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM orders
		WHERE status IN ('OK', 'LATE') AND amount BETWEEN 5 AND 20`, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	s := q.Filter.String()
	if !strings.Contains(s, "IN") || !strings.Contains(s, ">= 5") || !strings.Contains(s, "<= 20") {
		t.Fatalf("filter = %s", s)
	}
}

func TestParseNumericCoercion(t *testing.T) {
	// Integer literal against DOUBLE column becomes a float constant so
	// predicate implication sees consistent types.
	q, err := Parse("SELECT SUM(amount) FROM orders WHERE amount > 10", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Filter.String(), "10") {
		t.Fatalf("filter = %s", q.Filter)
	}
	q2, err := Parse("SELECT SUM(amount) FROM orders WHERE cust = 3", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if q2.Filter.String() != "orders.cust = 3" {
		t.Fatalf("filter = %s", q2.Filter)
	}
}

func TestParseExactFlag(t *testing.T) {
	q, err := Parse("SELECT MAX(amount) FROM orders EXACT", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Exact {
		t.Fatal("EXACT not set")
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM orders",
		"SELECT cust FROM orders",         // non-agg col without GROUP BY
		"SELECT SUM(amount) FROM missing", // unknown table
		"SELECT SUM(bogus) FROM orders",   // unknown column
		"SELECT SUM(id) FROM orders JOIN cust ON id = id", // ambiguous column
		"SELECT SUM(amount) FROM orders WHERE",
		"SELECT SUM(amount) FROM orders WHERE amount >",
		"SELECT SUM(amount) FROM orders LIMIT x",
		"SELECT SUM(amount) FROM orders ERROR WITHIN 10 CONFIDENCE 95%",   // missing %
		"SELECT SUM(amount) FROM orders ERROR WITHIN 150% CONFIDENCE 95%", // invalid spec
		"SELECT SUM(*) FROM orders",
		"SELECT SUM(amount) FROM orders JOIN orders ON id = id", // self join
		"SELECT SUM(amount) FROM orders trailing",
		"SELECT SUM(amount) FROM orders WHERE status ~ 'x'",
	}
	for _, sql := range bad {
		if _, err := Parse(sql, cat); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, 'str', 1.5 <= <> !=")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.kind
	}
	if toks[0].text != "SELECT" || toks[0].kind != tokKeyword {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[5].kind != tokString || toks[5].text != "str" {
		t.Fatalf("string tok = %+v", toks[5])
	}
	if toks[7].kind != tokNumber || toks[7].text != "1.5" {
		t.Fatalf("number tok = %+v", toks[7])
	}
	if toks[8].text != "<=" || toks[9].text != "<>" || toks[10].text != "<>" {
		t.Fatalf("operators = %+v %+v %+v", toks[8], toks[9], toks[10])
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("want unterminated string error")
	}
	if _, err := lex("a $ b"); err == nil {
		t.Fatal("want bad character error")
	}
}

func TestParseMultiJoin(t *testing.T) {
	cat := testCatalog()
	extra := storage.NewBuilder("region", storage.Schema{
		{Name: "region.name", Typ: storage.String},
		{Name: "region.code", Typ: storage.Int64},
	})
	extra.AddRow(storage.StringValue("r"), storage.IntValue(1))
	cat.Register(extra.Build(1))
	q, err := Parse(`SELECT COUNT(*) FROM orders
		JOIN cust ON orders.cust = cust.id
		JOIN region ON cust.region = region.name`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 3 || len(q.Joins) != 2 {
		t.Fatalf("tables=%d joins=%d", len(q.Tables), len(q.Joins))
	}
}
