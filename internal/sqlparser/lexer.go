// Package sqlparser implements the SQL subset Taster accepts: single-block
// aggregate queries with equi-joins, conjunctive predicates, GROUP BY /
// ORDER BY / LIMIT, and the paper's approximation clause
// "ERROR WITHIN x% AT CONFIDENCE y%" (§III, Supported Queries).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . * = < > <= >= <> %
	tokKeyword
)

// token is one lexeme with its position for error messages.
type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

// keywords recognized by the parser (upper-case canonical).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "JOIN": true, "ON": true, "WHERE": true,
	"AND": true, "GROUP": true, "BY": true, "ORDER": true, "LIMIT": true,
	"AS": true, "IN": true, "BETWEEN": true, "DESC": true, "ASC": true,
	"ERROR": true, "WITHIN": true, "AT": true, "CONFIDENCE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"EXACT": true, "NOT": true, "INNER": true,
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'': // string literal
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != '\'' {
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated string literal at %d", i)
			}
			out = append(out, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i
			seenDot := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					// "1.5" vs "t.c": digit must follow the dot
					if j+1 >= n || input[j+1] < '0' || input[j+1] > '9' {
						break
					}
					seenDot = true
				}
				j++
			}
			out = append(out, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				out = append(out, token{kind: tokKeyword, text: up, pos: i})
			} else {
				out = append(out, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case c == '<' && i+1 < n && (input[i+1] == '=' || input[i+1] == '>'):
			out = append(out, token{kind: tokSymbol, text: input[i : i+2], pos: i})
			i += 2
		case c == '>' && i+1 < n && input[i+1] == '=':
			out = append(out, token{kind: tokSymbol, text: ">=", pos: i})
			i += 2
		case c == '!' && i+1 < n && input[i+1] == '=':
			out = append(out, token{kind: tokSymbol, text: "<>", pos: i})
			i += 2
		case strings.ContainsRune("(),.*=<>%", rune(c)):
			out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
