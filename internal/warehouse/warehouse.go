// Package warehouse implements the two-tier synopsis storage of paper §III:
// a fixed-size in-memory buffer holding synopses freshly built as query
// byproducts (fast, free of I/O at reuse time, decouples materialization
// from query latency), and a quota-bounded warehouse (the paper's HDFS tier)
// holding the synopses the tuner decided to keep. All sizes are
// byte-accurate; the tuner drives every promotion and eviction.
//
// With a Spiller attached the warehouse tier is disk-backed: payloads of
// synopses placed there are written durably and their in-memory pointer is
// dropped (the tier stops costing RAM — the elasticity the paper gets from
// HDFS), then faulted back lazily on first reuse and cached. Without a
// Spiller both tiers are memory-resident, exactly the pre-persistence
// behaviour.
//
// Concurrency model: reads are lock-free. Every mutation (serialized on an
// internal mutex and, above that, by the engine's tuning service) rebuilds
// an immutable View of both tiers and publishes it through an
// atomic.Pointer — RCU-style copy-on-write. The read path (Get/Has/Usage,
// taken by concurrent planners and executors) loads the current View with a
// single atomic load and never blocks behind a tuning round. Items are
// immutable once stored — a payload fault-in only fills the cache pointer,
// it never changes the bytes a plan observes — so a plan may keep executing
// against a sample that was concurrently evicted; View() hands out a whole
// coherent two-tier snapshot for callers that need several reads to be
// mutually consistent.
package warehouse

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tasterdb/taster/internal/synopses"
)

// ItemKind says which synopsis flavour an item wraps.
type ItemKind uint8

// Item kinds.
const (
	SampleItem ItemKind = iota + 1
	SketchItem
)

// String returns the kind name.
func (k ItemKind) String() string {
	switch k {
	case SampleItem:
		return "sample"
	case SketchItem:
		return "sketch"
	}
	return fmt.Sprintf("ItemKind(%d)", uint8(k))
}

// Payload is an item's in-memory synopsis value; exactly one field is set,
// matching the item's kind.
type Payload struct {
	Sample *synopses.Sample
	Sketch *synopses.SketchJoin
}

// Spiller persists warehouse-tier payloads. The engine wires the disk store
// (internal/persist) in through this interface; a nil Spiller keeps the
// warehouse tier memory-resident.
type Spiller interface {
	// Spill durably writes the payload for id (write-temp-fsync-rename).
	Spill(id uint64, p *Payload) error
	// Load reads the payload for id back.
	Load(id uint64) (*Payload, error)
	// Remove deletes id's payload file; a missing file is not an error.
	Remove(id uint64) error
}

// Item is one materialized synopsis. The payload sits behind an atomic
// pointer: memory-resident items carry it from construction; disk-resident
// items (warehouse tier with a Spiller) drop it after the durable write and
// fault it back lazily on first reuse — outside every engine lock, with the
// cached pointer published atomically so concurrent readers either load the
// same immutable payload or fault it in themselves.
type Item struct {
	ID     uint64
	Size   int64
	Rows   int64 // sample row count (0 for sketches); plan costing reads it without faulting
	Pinned bool

	kind    ItemKind
	payload atomic.Pointer[Payload]
	loadMu  sync.Mutex
	spiller Spiller // set once the payload has a durable copy
}

// NewSampleItem wraps a sample.
func NewSampleItem(id uint64, s *synopses.Sample) *Item {
	it := &Item{ID: id, Size: s.SizeBytes(), Rows: int64(s.Rows.NumRows()), kind: SampleItem}
	it.payload.Store(&Payload{Sample: s})
	return it
}

// NewSketchItem wraps a sketch-join synopsis.
func NewSketchItem(id uint64, sk *synopses.SketchJoin) *Item {
	it := &Item{ID: id, Size: sk.SizeBytes(), kind: SketchItem}
	it.payload.Store(&Payload{Sketch: sk})
	return it
}

// RestoredItem rebuilds an item from persisted metadata: the payload stays
// on disk (faulted in lazily via the spiller) unless the caller loads it
// eagerly afterwards.
func RestoredItem(id uint64, kind ItemKind, size, rows int64, pinned bool, sp Spiller) *Item {
	return &Item{ID: id, Size: size, Rows: rows, Pinned: pinned, kind: kind, spiller: sp}
}

// Kind returns the item's synopsis flavour.
func (it *Item) Kind() ItemKind { return it.kind }

// Loaded reports whether the payload is currently cached in memory. The
// planner charges the disk fault-in for unloaded items, which is what makes
// ChoosePlan discount cold warehouse hits against buffer hits.
func (it *Item) Loaded() bool { return it.payload.Load() != nil }

// Sample returns the item's sample payload, faulting it in from disk if
// spilled. Calling Sample on a sketch item is a programming error (checked).
func (it *Item) Sample() (*synopses.Sample, error) {
	if it.kind != SampleItem {
		return nil, fmt.Errorf("warehouse: synopsis #%d is a %s, not a sample", it.ID, it.kind)
	}
	p, err := it.load()
	if err != nil {
		return nil, err
	}
	return p.Sample, nil
}

// Sketch returns the item's sketch-join payload, faulting it in if spilled.
func (it *Item) Sketch() (*synopses.SketchJoin, error) {
	if it.kind != SketchItem {
		return nil, fmt.Errorf("warehouse: synopsis #%d is a %s, not a sketch", it.ID, it.kind)
	}
	p, err := it.load()
	if err != nil {
		return nil, err
	}
	return p.Sketch, nil
}

// load returns the cached payload or faults it in from the spiller. The
// mutex only serializes concurrent faults of the SAME item; the fast path
// is one atomic load, and faults never run under the manager's or the
// engine's locks.
func (it *Item) load() (*Payload, error) {
	if p := it.payload.Load(); p != nil {
		return p, nil
	}
	it.loadMu.Lock()
	defer it.loadMu.Unlock()
	if p := it.payload.Load(); p != nil {
		return p, nil
	}
	if it.spiller == nil {
		return nil, fmt.Errorf("warehouse: synopsis #%d has no payload and no backing store", it.ID)
	}
	p, err := it.spiller.Load(it.ID)
	if err != nil {
		return nil, fmt.Errorf("warehouse: loading synopsis #%d: %w", it.ID, err)
	}
	if p == nil ||
		(it.kind == SampleItem && p.Sample == nil) ||
		(it.kind == SketchItem && p.Sketch == nil) {
		return nil, fmt.Errorf("warehouse: synopsis #%d: backing store returned wrong payload kind", it.ID)
	}
	it.payload.Store(p)
	return p, nil
}

// EagerLoad faults the payload in immediately (recovery pre-warms items
// that were cached at checkpoint time, so post-restart plan costs match the
// uninterrupted engine's).
func (it *Item) EagerLoad() error {
	_, err := it.load()
	return err
}

// tier is shared bookkeeping for buffer and warehouse.
type tier struct {
	name  string
	quota int64
	used  int64
	items map[uint64]*Item
}

func (t *tier) put(it *Item) error {
	if _, dup := t.items[it.ID]; dup {
		return fmt.Errorf("warehouse: synopsis #%d already in %s", it.ID, t.name)
	}
	if t.used+it.Size > t.quota {
		return fmt.Errorf("warehouse: %s full: %d + %d > quota %d", t.name, t.used, it.Size, t.quota)
	}
	t.items[it.ID] = it
	t.used += it.Size
	return nil
}

func (t *tier) delete(id uint64) bool {
	it, ok := t.items[id]
	if !ok {
		return false
	}
	delete(t.items, id)
	t.used -= it.Size
	return true
}

// View is an immutable snapshot of both tiers, published atomically after
// every mutation. All its reads are coherent with each other: a planner
// holding one View sees the exact synopsis set some tuning round left
// behind, never a half-applied rearrangement. Views must not be mutated.
//
//taster:immutable
type View struct {
	buffer    map[uint64]*Item
	warehouse map[uint64]*Item
	bufUsed   int64
	whUsed    int64
	bufQuota  int64
	whQuota   int64
}

// Get returns the item and whether it was found in the buffer tier.
func (v *View) Get(id uint64) (it *Item, inBuffer bool, ok bool) {
	if it, ok := v.buffer[id]; ok {
		return it, true, true
	}
	if it, ok := v.warehouse[id]; ok {
		return it, false, true
	}
	return nil, false, false
}

// Has reports whether the synopsis is materialized in either tier.
func (v *View) Has(id uint64) bool {
	_, _, ok := v.Get(id)
	return ok
}

// SameContents reports whether two views hold the identical item set: the
// same ids bound to the same immutable *Item payloads in the same tiers.
// Item pointer equality is the right notion — a refresh swaps the pointer,
// so two views agreeing pointer-wise bind exactly the same synopsis bytes.
// Plan caching uses it to carry a snapshot identity across publishes that
// did not rearrange the warehouse.
func (v *View) SameContents(o *View) bool {
	if v == o {
		return true
	}
	if v == nil || o == nil {
		return false
	}
	return sameTier(v.buffer, o.buffer) && sameTier(v.warehouse, o.warehouse)
}

func sameTier(a, b map[uint64]*Item) bool {
	if len(a) != len(b) {
		return false
	}
	for id, it := range a {
		if b[id] != it {
			return false
		}
	}
	return true
}

// Usage returns (bufferUsed, warehouseUsed) bytes.
func (v *View) Usage() (buffer, warehouse int64) { return v.bufUsed, v.whUsed }

// Quotas returns (bufferQuota, warehouseQuota) bytes.
func (v *View) Quotas() (buffer, warehouse int64) { return v.bufQuota, v.whQuota }

// BufferItems lists the buffer tier sorted by synopsis id (fresh slice;
// items are shared and immutable).
func (v *View) BufferItems() []*Item { return listOf(v.buffer) }

// WarehouseItems lists the warehouse tier sorted by synopsis id.
func (v *View) WarehouseItems() []*Item { return listOf(v.warehouse) }

// Overflow returns how many bytes the warehouse exceeds its quota by
// (after an elastic shrink), zero when within quota.
func (v *View) Overflow() int64 {
	if over := v.whUsed - v.whQuota; over > 0 {
		return over
	}
	return 0
}

// FreeWarehouse returns the remaining warehouse capacity in bytes.
func (v *View) FreeWarehouse() int64 {
	free := v.whQuota - v.whUsed
	if free < 0 {
		return 0
	}
	return free
}

// listOf snapshots a tier map sorted by synopsis id. Deterministic
// enumeration matters beyond cosmetics: recovery replays the manifest and
// fallback evictions walk these lists, and both must behave identically
// across runs and restarts regardless of Go map iteration order.
func listOf(m map[uint64]*Item) []*Item {
	out := make([]*Item, 0, len(m))
	for _, it := range m {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Manager owns both tiers. Mutations serialize on mu and publish a fresh
// View; reads never take mu.
type Manager struct {
	mu        sync.Mutex
	buffer    tier
	warehouse tier
	view      atomic.Pointer[View]
	spiller   Spiller
}

// NewManager returns a memory-resident manager with the given byte quotas.
// The paper sets the warehouse quota as a fraction of the dataset size and
// the buffer to a small fixed size.
func NewManager(bufferQuota, warehouseQuota int64) *Manager {
	return NewManagerWithSpiller(bufferQuota, warehouseQuota, nil)
}

// NewManagerWithSpiller returns a manager whose warehouse tier is backed by
// sp: payloads placed there are durably written and dropped from memory,
// then faulted back lazily on reuse.
func NewManagerWithSpiller(bufferQuota, warehouseQuota int64, sp Spiller) *Manager {
	m := &Manager{
		buffer:    tier{name: "buffer", quota: bufferQuota, items: make(map[uint64]*Item)},
		warehouse: tier{name: "warehouse", quota: warehouseQuota, items: make(map[uint64]*Item)},
		spiller:   sp,
	}
	m.publishLocked()
	return m
}

// View returns the current immutable two-tier snapshot (one atomic load).
func (m *Manager) View() *View { return m.view.Load() }

// publishLocked rebuilds the read view from the mutable tiers. Caller
// holds mu. The maps are copied — O(items), and the tuner keeps the item
// count small — so readers holding an older View are never invalidated.
// Admissions deliberately publish per item rather than batching like
// ApplyMoves: a refresh must reach the live view BEFORE the metadata
// store's freshness update lands, or the planner's payload-identity gate
// (payloadCurrent) could see new metadata vouching for an old payload.
//
//taster:mutator construction: the View is filled privately and escapes only through the atomic Store that publishes it
func (m *Manager) publishLocked() {
	v := &View{
		buffer:    make(map[uint64]*Item, len(m.buffer.items)),
		warehouse: make(map[uint64]*Item, len(m.warehouse.items)),
		bufUsed:   m.buffer.used,
		whUsed:    m.warehouse.used,
		bufQuota:  m.buffer.quota,
		whQuota:   m.warehouse.quota,
	}
	for id, it := range m.buffer.items {
		v.buffer[id] = it
	}
	for id, it := range m.warehouse.items {
		v.warehouse[id] = it
	}
	m.view.Store(v)
}

// spillLocked durably writes it's payload and drops the in-memory copy —
// the step that makes a warehouse-tier placement disk-resident. No-op
// without a spiller (memory-resident mode) or when the item is already
// spilled (restored items). Caller holds mu; the write happens before the
// payload pointer drops, so a concurrent reader either sees the old cached
// payload or faults in the complete durable copy — never a torn file.
func (m *Manager) spillLocked(it *Item) error {
	if m.spiller == nil {
		return nil
	}
	p := it.payload.Load()
	if p == nil {
		return nil // already disk-resident
	}
	if err := m.spiller.Spill(it.ID, p); err != nil {
		return err
	}
	it.loadMu.Lock()
	it.spiller = m.spiller
	it.payload.Store(nil)
	it.loadMu.Unlock()
	return nil
}

// removeBacking deletes it's durable copy, if any.
func (m *Manager) removeBacking(id uint64) {
	if m.spiller != nil {
		_ = m.spiller.Remove(id)
	}
}

// PutBuffer stores a freshly built synopsis in the in-memory buffer.
func (m *Manager) PutBuffer(it *Item) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	return m.buffer.put(it)
}

// AdmitResult says where Admit placed (or found) a synopsis.
type AdmitResult uint8

// Admit outcomes.
const (
	// AdmitDropped: no tier had room; the synopsis was not stored.
	AdmitDropped AdmitResult = iota
	// AdmitBuffer: stored in (or already present in) the in-memory buffer.
	AdmitBuffer
	// AdmitWarehouse: stored in (or already present in) the warehouse.
	AdmitWarehouse
)

// Admit places a freshly built synopsis in the buffer, overflowing to the
// warehouse, as a single atomic operation. When the synopsis is already
// materialized in either tier — two concurrent queries can build the same
// descriptor — Admit is a no-op that reports where the existing copy lives,
// guaranteeing an ID never occupies both tiers. A warehouse placement that
// cannot be durably written (disk-backed tier) is dropped, not stored
// volatile: the warehouse tier's contract is that its contents survive a
// restart.
func (m *Manager) Admit(it *Item) AdmitResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	if _, ok := m.buffer.items[it.ID]; ok {
		return AdmitBuffer
	}
	if _, ok := m.warehouse.items[it.ID]; ok {
		return AdmitWarehouse
	}
	if m.buffer.put(it) == nil {
		return AdmitBuffer
	}
	if m.warehouse.put(it) == nil {
		if err := m.spillLocked(it); err != nil {
			m.warehouse.delete(it.ID)
			m.removeBacking(it.ID)
			return AdmitDropped
		}
		return AdmitWarehouse
	}
	return AdmitDropped
}

// Refresh atomically replaces a stored synopsis with a rebuilt copy of the
// same ID, preferring the tier the old copy occupied (pinned hints stay in
// the warehouse, byproducts in the buffer) and overflowing to the other.
// Unlike Delete it applies to pinned items — a refresh is not an eviction:
// the synopsis stays stored, only its payload is brought up to date, and
// the pin carries over to the fresh copy. If the rebuilt copy fits in
// neither tier, the old copy is reinstated and an error returned. Readers
// holding a pre-refresh View keep the old immutable item.
func (m *Manager) Refresh(it *Item) (AdmitResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	var oldTier, otherTier *tier
	var old *Item
	for i, t := range []*tier{&m.buffer, &m.warehouse} {
		if o, ok := t.items[it.ID]; ok {
			oldTier, old = t, o
			otherTier = [...]*tier{&m.warehouse, &m.buffer}[i]
			break
		}
	}
	if old == nil {
		return AdmitDropped, fmt.Errorf("warehouse: refresh: synopsis #%d not materialized", it.ID)
	}
	// Pins carry forward, never demote: a refresh of a pinned copy stays
	// pinned, and re-pinning a descriptor first materialized as an
	// unpinned byproduct must not silently lose the user's pin.
	it.Pinned = it.Pinned || old.Pinned
	oldTier.delete(it.ID)
	result := func(t *tier) AdmitResult {
		if t == &m.buffer {
			return AdmitBuffer
		}
		return AdmitWarehouse
	}
	// placed finalizes a successful put: warehouse placements must become
	// durable (failure rolls the put back), and a buffer placement leaves
	// no stale durable bytes behind — neither from a warehouse-resident old
	// copy nor from a buffer payload file a clean shutdown wrote earlier.
	placed := func(t *tier) (AdmitResult, bool) {
		if t == &m.warehouse {
			if err := m.spillLocked(it); err != nil {
				t.delete(it.ID)
				return AdmitDropped, false
			}
		} else {
			m.removeBacking(it.ID)
		}
		return result(t), true
	}
	if oldTier.put(it) == nil {
		if res, ok := placed(oldTier); ok {
			return res, nil
		}
	} else if !it.Pinned && otherTier.put(it) == nil {
		// Unpinned items may overflow to the other tier; pinned hints must
		// not strand in the buffer (the tuner never promotes pinned
		// entries), so they refresh same-tier or not at all.
		if res, ok := placed(otherTier); ok {
			return res, nil
		}
	}
	// No room for the (larger) rebuild, or its durable write failed: keep
	// the old copy (its bytes were just freed, so reinstating cannot fail).
	_ = oldTier.put(old)
	return AdmitDropped, fmt.Errorf("warehouse: refresh: no room for rebuilt synopsis #%d", it.ID)
}

// PutWarehouse stores a synopsis directly in the warehouse (offline builds,
// promotions). With a disk-backed tier the payload is durably written and
// dropped from memory before the call returns.
func (m *Manager) PutWarehouse(it *Item) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	if err := m.warehouse.put(it); err != nil {
		return err
	}
	if err := m.spillLocked(it); err != nil {
		m.warehouse.delete(it.ID)
		m.removeBacking(it.ID)
		return fmt.Errorf("warehouse: persisting synopsis #%d: %w", it.ID, err)
	}
	return nil
}

// Promote moves a synopsis from the buffer to the warehouse. The caller
// charges the simulated write cost. With a disk-backed warehouse the
// payload is spilled; a failed durable write aborts the promotion (the
// synopsis stays in the buffer, memory-resident).
func (m *Manager) Promote(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	it, ok := m.buffer.items[id]
	if !ok {
		return fmt.Errorf("warehouse: promote: synopsis #%d not in buffer", id)
	}
	if err := m.warehouse.put(it); err != nil {
		return err
	}
	if err := m.spillLocked(it); err != nil {
		m.warehouse.delete(id)
		m.removeBacking(id)
		return fmt.Errorf("warehouse: persisting synopsis #%d: %w", id, err)
	}
	m.buffer.delete(id)
	return nil
}

// RestoreItem reinstates a recovered item into the named tier (recovery
// replaying the manifest). Quota limits apply — a restart may come with a
// smaller budget than the checkpoint was taken under, in which case the
// overflow items simply fail to restore and the caller drops them.
func (m *Manager) RestoreItem(it *Item, intoBuffer bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	t := &m.warehouse
	if intoBuffer {
		t = &m.buffer
	}
	return t.put(it)
}

// Delete removes the synopsis from whichever tier holds it, along with any
// durable copy. Pinned synopses refuse deletion (user hints are never
// evicted, paper §V).
func (m *Manager) Delete(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	for _, t := range []*tier{&m.buffer, &m.warehouse} {
		if it, ok := t.items[id]; ok {
			if it.Pinned {
				return fmt.Errorf("warehouse: synopsis #%d is pinned", id)
			}
			t.delete(id)
			m.removeBacking(id)
			return nil
		}
	}
	return fmt.Errorf("warehouse: synopsis #%d not materialized", id)
}

// ApplyMoves performs a tuning round's whole warehouse rearrangement —
// evictions then promotions — under one lock hold with one view publish,
// instead of re-copying the tiers once per synopsis. Semantics per ID
// match Delete/Promote exactly: pinned or unmaterialized evictees and
// unpromotable entries (not in the buffer, no warehouse room, or a failed
// durable write) are skipped. Returns the IDs each action actually applied
// to, so the caller can update locations for exactly those.
func (m *Manager) ApplyMoves(evict, promote []uint64) (evicted, promoted []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	for _, id := range evict {
		for _, t := range []*tier{&m.buffer, &m.warehouse} {
			if it, ok := t.items[id]; ok {
				if !it.Pinned {
					t.delete(id)
					m.removeBacking(id)
					evicted = append(evicted, id)
				}
				break
			}
		}
	}
	for _, id := range promote {
		it, ok := m.buffer.items[id]
		if !ok {
			continue
		}
		if m.warehouse.put(it) != nil {
			continue
		}
		if err := m.spillLocked(it); err != nil {
			m.warehouse.delete(id)
			m.removeBacking(id)
			continue
		}
		m.buffer.delete(id)
		promoted = append(promoted, id)
	}
	return evicted, promoted
}

// Get returns the item and whether it was found in the buffer tier.
func (m *Manager) Get(id uint64) (it *Item, inBuffer bool, ok bool) {
	return m.View().Get(id)
}

// Has reports whether the synopsis is materialized in either tier.
func (m *Manager) Has(id uint64) bool { return m.View().Has(id) }

// BufferItems returns a snapshot of the buffer tier sorted by id.
func (m *Manager) BufferItems() []*Item { return m.View().BufferItems() }

// WarehouseItems returns a snapshot of the warehouse tier sorted by id.
func (m *Manager) WarehouseItems() []*Item { return m.View().WarehouseItems() }

// Usage returns (bufferUsed, warehouseUsed) bytes.
func (m *Manager) Usage() (buffer, warehouse int64) { return m.View().Usage() }

// Quotas returns (bufferQuota, warehouseQuota) bytes.
func (m *Manager) Quotas() (buffer, warehouse int64) { return m.View().Quotas() }

// SetWarehouseQuota changes the warehouse quota at runtime — the storage
// elasticity hook (paper §V). It does not evict; the tuner re-evaluates and
// issues deletions until Overflow reports zero.
func (m *Manager) SetWarehouseQuota(quota int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.warehouse.quota = quota
	m.publishLocked()
}

// Overflow returns how many bytes the warehouse exceeds its quota by
// (after an elastic shrink), zero when within quota.
func (m *Manager) Overflow() int64 { return m.View().Overflow() }

// FreeWarehouse returns the remaining warehouse capacity in bytes.
func (m *Manager) FreeWarehouse() int64 { return m.View().FreeWarehouse() }
