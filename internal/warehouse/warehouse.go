// Package warehouse implements the two-tier synopsis storage of paper §III:
// a fixed-size in-memory buffer holding synopses freshly built as query
// byproducts (fast, free of I/O at reuse time, decouples materialization
// from query latency), and a quota-bounded warehouse (the paper's HDFS tier)
// holding the synopses the tuner decided to keep. All sizes are
// byte-accurate; the tuner drives every promotion and eviction.
//
// Concurrency model: reads are lock-free. Every mutation (serialized on an
// internal mutex and, above that, by the engine's tuning service) rebuilds
// an immutable View of both tiers and publishes it through an
// atomic.Pointer — RCU-style copy-on-write. The read path (Get/Has/Usage,
// taken by concurrent planners and executors) loads the current View with a
// single atomic load and never blocks behind a tuning round. Items are
// immutable once stored, so a plan may keep executing against a sample that
// was concurrently evicted; View() hands out a whole coherent two-tier
// snapshot for callers that need several reads to be mutually consistent.
package warehouse

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tasterdb/taster/internal/synopses"
)

// Item is one materialized synopsis.
type Item struct {
	ID     uint64
	Sample *synopses.Sample // exactly one of Sample/Sketch is set
	Sketch *synopses.SketchJoin
	Size   int64
	Pinned bool
}

// NewSampleItem wraps a sample.
func NewSampleItem(id uint64, s *synopses.Sample) *Item {
	return &Item{ID: id, Sample: s, Size: s.SizeBytes()}
}

// NewSketchItem wraps a sketch-join synopsis.
func NewSketchItem(id uint64, sk *synopses.SketchJoin) *Item {
	return &Item{ID: id, Sketch: sk, Size: sk.SizeBytes()}
}

// tier is shared bookkeeping for buffer and warehouse.
type tier struct {
	name  string
	quota int64
	used  int64
	items map[uint64]*Item
}

func (t *tier) put(it *Item) error {
	if _, dup := t.items[it.ID]; dup {
		return fmt.Errorf("warehouse: synopsis #%d already in %s", it.ID, t.name)
	}
	if t.used+it.Size > t.quota {
		return fmt.Errorf("warehouse: %s full: %d + %d > quota %d", t.name, t.used, it.Size, t.quota)
	}
	t.items[it.ID] = it
	t.used += it.Size
	return nil
}

func (t *tier) delete(id uint64) bool {
	it, ok := t.items[id]
	if !ok {
		return false
	}
	delete(t.items, id)
	t.used -= it.Size
	return true
}

// View is an immutable snapshot of both tiers, published atomically after
// every mutation. All its reads are coherent with each other: a planner
// holding one View sees the exact synopsis set some tuning round left
// behind, never a half-applied rearrangement. Views must not be mutated.
type View struct {
	buffer    map[uint64]*Item
	warehouse map[uint64]*Item
	bufUsed   int64
	whUsed    int64
	bufQuota  int64
	whQuota   int64
}

// Get returns the item and whether it was found in the buffer tier.
func (v *View) Get(id uint64) (it *Item, inBuffer bool, ok bool) {
	if it, ok := v.buffer[id]; ok {
		return it, true, true
	}
	if it, ok := v.warehouse[id]; ok {
		return it, false, true
	}
	return nil, false, false
}

// Has reports whether the synopsis is materialized in either tier.
func (v *View) Has(id uint64) bool {
	_, _, ok := v.Get(id)
	return ok
}

// Usage returns (bufferUsed, warehouseUsed) bytes.
func (v *View) Usage() (buffer, warehouse int64) { return v.bufUsed, v.whUsed }

// Quotas returns (bufferQuota, warehouseQuota) bytes.
func (v *View) Quotas() (buffer, warehouse int64) { return v.bufQuota, v.whQuota }

// BufferItems lists the buffer tier (fresh slice; items are shared and
// immutable).
func (v *View) BufferItems() []*Item { return listOf(v.buffer) }

// WarehouseItems lists the warehouse tier.
func (v *View) WarehouseItems() []*Item { return listOf(v.warehouse) }

// Overflow returns how many bytes the warehouse exceeds its quota by
// (after an elastic shrink), zero when within quota.
func (v *View) Overflow() int64 {
	if over := v.whUsed - v.whQuota; over > 0 {
		return over
	}
	return 0
}

// FreeWarehouse returns the remaining warehouse capacity in bytes.
func (v *View) FreeWarehouse() int64 {
	free := v.whQuota - v.whUsed
	if free < 0 {
		return 0
	}
	return free
}

func listOf(m map[uint64]*Item) []*Item {
	out := make([]*Item, 0, len(m))
	for _, it := range m {
		out = append(out, it)
	}
	return out
}

// Manager owns both tiers. Mutations serialize on mu and publish a fresh
// View; reads never take mu.
type Manager struct {
	mu        sync.Mutex
	buffer    tier
	warehouse tier
	view      atomic.Pointer[View]
}

// NewManager returns a manager with the given byte quotas. The paper sets
// the warehouse quota as a fraction of the dataset size and the buffer to a
// small fixed size.
func NewManager(bufferQuota, warehouseQuota int64) *Manager {
	m := &Manager{
		buffer:    tier{name: "buffer", quota: bufferQuota, items: make(map[uint64]*Item)},
		warehouse: tier{name: "warehouse", quota: warehouseQuota, items: make(map[uint64]*Item)},
	}
	m.publishLocked()
	return m
}

// View returns the current immutable two-tier snapshot (one atomic load).
func (m *Manager) View() *View { return m.view.Load() }

// publishLocked rebuilds the read view from the mutable tiers. Caller
// holds mu. The maps are copied — O(items), and the tuner keeps the item
// count small — so readers holding an older View are never invalidated.
// Admissions deliberately publish per item rather than batching like
// ApplyMoves: a refresh must reach the live view BEFORE the metadata
// store's freshness update lands, or the planner's payload-identity gate
// (payloadCurrent) could see new metadata vouching for an old payload.
func (m *Manager) publishLocked() {
	v := &View{
		buffer:    make(map[uint64]*Item, len(m.buffer.items)),
		warehouse: make(map[uint64]*Item, len(m.warehouse.items)),
		bufUsed:   m.buffer.used,
		whUsed:    m.warehouse.used,
		bufQuota:  m.buffer.quota,
		whQuota:   m.warehouse.quota,
	}
	for id, it := range m.buffer.items {
		v.buffer[id] = it
	}
	for id, it := range m.warehouse.items {
		v.warehouse[id] = it
	}
	m.view.Store(v)
}

// PutBuffer stores a freshly built synopsis in the in-memory buffer.
func (m *Manager) PutBuffer(it *Item) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	return m.buffer.put(it)
}

// AdmitResult says where Admit placed (or found) a synopsis.
type AdmitResult uint8

// Admit outcomes.
const (
	// AdmitDropped: no tier had room; the synopsis was not stored.
	AdmitDropped AdmitResult = iota
	// AdmitBuffer: stored in (or already present in) the in-memory buffer.
	AdmitBuffer
	// AdmitWarehouse: stored in (or already present in) the warehouse.
	AdmitWarehouse
)

// Admit places a freshly built synopsis in the buffer, overflowing to the
// warehouse, as a single atomic operation. When the synopsis is already
// materialized in either tier — two concurrent queries can build the same
// descriptor — Admit is a no-op that reports where the existing copy lives,
// guaranteeing an ID never occupies both tiers.
func (m *Manager) Admit(it *Item) AdmitResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	if _, ok := m.buffer.items[it.ID]; ok {
		return AdmitBuffer
	}
	if _, ok := m.warehouse.items[it.ID]; ok {
		return AdmitWarehouse
	}
	if m.buffer.put(it) == nil {
		return AdmitBuffer
	}
	if m.warehouse.put(it) == nil {
		return AdmitWarehouse
	}
	return AdmitDropped
}

// Refresh atomically replaces a stored synopsis with a rebuilt copy of the
// same ID, preferring the tier the old copy occupied (pinned hints stay in
// the warehouse, byproducts in the buffer) and overflowing to the other.
// Unlike Delete it applies to pinned items — a refresh is not an eviction:
// the synopsis stays stored, only its payload is brought up to date, and
// the pin carries over to the fresh copy. If the rebuilt copy fits in
// neither tier, the old copy is reinstated and an error returned. Readers
// holding a pre-refresh View keep the old immutable item.
func (m *Manager) Refresh(it *Item) (AdmitResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	var oldTier, otherTier *tier
	var old *Item
	for i, t := range []*tier{&m.buffer, &m.warehouse} {
		if o, ok := t.items[it.ID]; ok {
			oldTier, old = t, o
			otherTier = [...]*tier{&m.warehouse, &m.buffer}[i]
			break
		}
	}
	if old == nil {
		return AdmitDropped, fmt.Errorf("warehouse: refresh: synopsis #%d not materialized", it.ID)
	}
	// Pins carry forward, never demote: a refresh of a pinned copy stays
	// pinned, and re-pinning a descriptor first materialized as an
	// unpinned byproduct must not silently lose the user's pin.
	it.Pinned = it.Pinned || old.Pinned
	oldTier.delete(it.ID)
	result := func(t *tier) AdmitResult {
		if t == &m.buffer {
			return AdmitBuffer
		}
		return AdmitWarehouse
	}
	if oldTier.put(it) == nil {
		return result(oldTier), nil
	}
	// Unpinned items may overflow to the other tier; pinned hints must not
	// strand in the buffer (the tuner never promotes pinned entries), so
	// they refresh same-tier or not at all.
	if !it.Pinned && otherTier.put(it) == nil {
		return result(otherTier), nil
	}
	// No room for the (larger) rebuild: keep the old copy (its bytes were
	// just freed, so reinstating cannot fail).
	_ = oldTier.put(old)
	return AdmitDropped, fmt.Errorf("warehouse: refresh: no room for rebuilt synopsis #%d", it.ID)
}

// PutWarehouse stores a synopsis directly in the warehouse (offline builds,
// promotions).
func (m *Manager) PutWarehouse(it *Item) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	return m.warehouse.put(it)
}

// Promote moves a synopsis from the buffer to the warehouse. The caller
// charges the simulated write cost.
func (m *Manager) Promote(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	it, ok := m.buffer.items[id]
	if !ok {
		return fmt.Errorf("warehouse: promote: synopsis #%d not in buffer", id)
	}
	if err := m.warehouse.put(it); err != nil {
		return err
	}
	m.buffer.delete(id)
	return nil
}

// Delete removes the synopsis from whichever tier holds it. Pinned synopses
// refuse deletion (user hints are never evicted, paper §V).
func (m *Manager) Delete(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	for _, t := range []*tier{&m.buffer, &m.warehouse} {
		if it, ok := t.items[id]; ok {
			if it.Pinned {
				return fmt.Errorf("warehouse: synopsis #%d is pinned", id)
			}
			t.delete(id)
			return nil
		}
	}
	return fmt.Errorf("warehouse: synopsis #%d not materialized", id)
}

// ApplyMoves performs a tuning round's whole warehouse rearrangement —
// evictions then promotions — under one lock hold with one view publish,
// instead of re-copying the tiers once per synopsis. Semantics per ID
// match Delete/Promote exactly: pinned or unmaterialized evictees and
// unpromotable entries (not in the buffer, or no warehouse room) are
// skipped. Returns the IDs each action actually applied to, so the caller
// can update locations for exactly those.
func (m *Manager) ApplyMoves(evict, promote []uint64) (evicted, promoted []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.publishLocked()
	for _, id := range evict {
		for _, t := range []*tier{&m.buffer, &m.warehouse} {
			if it, ok := t.items[id]; ok {
				if !it.Pinned {
					t.delete(id)
					evicted = append(evicted, id)
				}
				break
			}
		}
	}
	for _, id := range promote {
		it, ok := m.buffer.items[id]
		if !ok {
			continue
		}
		if m.warehouse.put(it) != nil {
			continue
		}
		m.buffer.delete(id)
		promoted = append(promoted, id)
	}
	return evicted, promoted
}

// Get returns the item and whether it was found in the buffer tier.
func (m *Manager) Get(id uint64) (it *Item, inBuffer bool, ok bool) {
	return m.View().Get(id)
}

// Has reports whether the synopsis is materialized in either tier.
func (m *Manager) Has(id uint64) bool { return m.View().Has(id) }

// BufferItems returns a snapshot of the buffer tier.
func (m *Manager) BufferItems() []*Item { return m.View().BufferItems() }

// WarehouseItems returns a snapshot of the warehouse tier.
func (m *Manager) WarehouseItems() []*Item { return m.View().WarehouseItems() }

// Usage returns (bufferUsed, warehouseUsed) bytes.
func (m *Manager) Usage() (buffer, warehouse int64) { return m.View().Usage() }

// Quotas returns (bufferQuota, warehouseQuota) bytes.
func (m *Manager) Quotas() (buffer, warehouse int64) { return m.View().Quotas() }

// SetWarehouseQuota changes the warehouse quota at runtime — the storage
// elasticity hook (paper §V). It does not evict; the tuner re-evaluates and
// issues deletions until Overflow reports zero.
func (m *Manager) SetWarehouseQuota(quota int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.warehouse.quota = quota
	m.publishLocked()
}

// Overflow returns how many bytes the warehouse exceeds its quota by
// (after an elastic shrink), zero when within quota.
func (m *Manager) Overflow() int64 { return m.View().Overflow() }

// FreeWarehouse returns the remaining warehouse capacity in bytes.
func (m *Manager) FreeWarehouse() int64 { return m.View().FreeWarehouse() }
