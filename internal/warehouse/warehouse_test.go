package warehouse

import (
	"fmt"
	"testing"

	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

func mkSample(rows int) *synopses.Sample {
	b := storage.NewBuilder("s", storage.Schema{
		{Name: "s.v", Typ: storage.Int64},
		{Name: synopses.WeightCol, Typ: storage.Float64},
	})
	for i := 0; i < rows; i++ {
		b.Int(0, int64(i))
		b.Float(1, 1)
	}
	return &synopses.Sample{Rows: b.Build(1), Strategy: "uniform", P: 1}
}

func TestPutGetDelete(t *testing.T) {
	m := NewManager(1<<20, 1<<20)
	it := NewSampleItem(1, mkSample(100))
	if err := m.PutBuffer(it); err != nil {
		t.Fatal(err)
	}
	got, inBuf, ok := m.Get(1)
	if !ok || !inBuf || got != it {
		t.Fatalf("Get = %v %v %v", got, inBuf, ok)
	}
	if !m.Has(1) || m.Has(2) {
		t.Fatal("Has")
	}
	bu, wu := m.Usage()
	if bu != it.Size || wu != 0 {
		t.Fatalf("usage = %d %d", bu, wu)
	}
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if m.Has(1) {
		t.Fatal("deleted item still present")
	}
	if err := m.Delete(1); err == nil {
		t.Fatal("double delete must error")
	}
	bu, _ = m.Usage()
	if bu != 0 {
		t.Fatalf("usage after delete = %d", bu)
	}
}

func TestQuotaEnforced(t *testing.T) {
	s := mkSample(100)
	m := NewManager(s.SizeBytes(), s.SizeBytes()*2)
	if err := m.PutBuffer(NewSampleItem(1, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutBuffer(NewSampleItem(2, s)); err == nil {
		t.Fatal("buffer overflow must error")
	}
	if err := m.PutWarehouse(NewSampleItem(2, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutWarehouse(NewSampleItem(3, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutWarehouse(NewSampleItem(4, s)); err == nil {
		t.Fatal("warehouse overflow must error")
	}
	if m.FreeWarehouse() != 0 {
		t.Fatalf("free = %d", m.FreeWarehouse())
	}
	// Duplicate ids rejected.
	if err := m.PutWarehouse(NewSampleItem(2, s)); err == nil {
		t.Fatal("duplicate id must error")
	}
}

func TestPromote(t *testing.T) {
	s := mkSample(50)
	m := NewManager(1<<20, 1<<20)
	if err := m.PutBuffer(NewSampleItem(7, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.Promote(7); err != nil {
		t.Fatal(err)
	}
	_, inBuf, ok := m.Get(7)
	if !ok || inBuf {
		t.Fatal("promotion must move item to warehouse")
	}
	if err := m.Promote(7); err == nil {
		t.Fatal("promoting a non-buffer item must error")
	}
	bu, wu := m.Usage()
	if bu != 0 || wu != s.SizeBytes() {
		t.Fatalf("usage = %d %d", bu, wu)
	}
}

func TestPinnedResistDeletion(t *testing.T) {
	m := NewManager(1<<20, 1<<20)
	it := NewSampleItem(1, mkSample(10))
	it.Pinned = true
	if err := m.PutWarehouse(it); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(1); err == nil {
		t.Fatal("pinned item must refuse deletion")
	}
	if !m.Has(1) {
		t.Fatal("pinned item vanished")
	}
}

func TestElasticQuota(t *testing.T) {
	s := mkSample(100)
	m := NewManager(1<<20, s.SizeBytes()*3)
	for id := uint64(1); id <= 3; id++ {
		if err := m.PutWarehouse(NewSampleItem(id, s)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Overflow() != 0 {
		t.Fatal("no overflow within quota")
	}
	// Shrink: overflow appears, existing data intact until tuner evicts.
	m.SetWarehouseQuota(s.SizeBytes())
	if m.Overflow() != 2*s.SizeBytes() {
		t.Fatalf("overflow = %d", m.Overflow())
	}
	if len(m.WarehouseItems()) != 3 {
		t.Fatal("shrink must not silently drop items")
	}
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(2); err != nil {
		t.Fatal(err)
	}
	if m.Overflow() != 0 {
		t.Fatalf("overflow after evictions = %d", m.Overflow())
	}
	_, q := m.Quotas()
	if q != s.SizeBytes() {
		t.Fatal("quota readback")
	}
}

func TestSketchItem(t *testing.T) {
	sk := synopses.NewSketchJoin(0.01, 0.01, []string{"k"}, "v", 1)
	it := NewSketchItem(9, sk)
	if it.Size != sk.SizeBytes() || it.Kind() != SketchItem || !it.Loaded() {
		t.Fatalf("item = %+v", it)
	}
	m := NewManager(1<<10, 1<<30)
	if err := m.PutWarehouse(it); err != nil {
		t.Fatal(err)
	}
	got, _, ok := m.Get(9)
	if !ok {
		t.Fatal("sketch item missing")
	}
	gotSk, err := got.Sketch()
	if err != nil || gotSk != sk {
		t.Fatalf("sketch round trip: %v %v", gotSk, err)
	}
	if _, err := got.Sample(); err == nil {
		t.Fatal("Sample() on a sketch item must error")
	}
	if len(m.BufferItems()) != 0 || len(m.WarehouseItems()) != 1 {
		t.Fatal("tier listings")
	}
}

func TestAdmitIsIdempotentAcrossTiers(t *testing.T) {
	s := mkSample(100)
	m := NewManager(s.SizeBytes(), s.SizeBytes()*4)

	if r := m.Admit(NewSampleItem(1, s)); r != AdmitBuffer {
		t.Fatalf("first admit = %v, want buffer", r)
	}
	// A concurrent build of the same ID must be a no-op — never a second
	// copy in the warehouse while the first sits in the buffer.
	if r := m.Admit(NewSampleItem(1, s)); r != AdmitBuffer {
		t.Fatalf("duplicate admit = %v, want buffer no-op", r)
	}
	if bu, wu := m.Usage(); bu != s.SizeBytes() || wu != 0 {
		t.Fatalf("usage after duplicate admit = %d/%d, want single buffer copy", bu, wu)
	}

	// Buffer full → overflow to warehouse; duplicate again → warehouse no-op.
	if r := m.Admit(NewSampleItem(2, s)); r != AdmitWarehouse {
		t.Fatalf("overflow admit = %v, want warehouse", r)
	}
	if r := m.Admit(NewSampleItem(2, s)); r != AdmitWarehouse {
		t.Fatalf("duplicate overflow admit = %v, want warehouse no-op", r)
	}

	// Both tiers full → dropped.
	big := mkSample(100000)
	if r := m.Admit(NewSampleItem(3, big)); r != AdmitDropped {
		t.Fatalf("oversized admit = %v, want dropped", r)
	}

	// Deleting an admitted ID frees its single copy everywhere.
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if m.Has(1) {
		t.Fatal("ID 1 still materialized after delete")
	}
}

// TestDeterministicEnumeration: BufferItems/WarehouseItems must come back
// sorted by synopsis id, not in Go map order — recovery replays and
// fallback evictions depend on deterministic listings.
func TestDeterministicEnumeration(t *testing.T) {
	s := mkSample(10)
	m := NewManager(1<<30, 1<<30)
	ids := []uint64{42, 7, 19, 3, 88, 55, 21, 64, 1, 30}
	for _, id := range ids {
		if err := m.PutWarehouse(NewSampleItem(id, s)); err != nil {
			t.Fatal(err)
		}
		if err := m.PutBuffer(NewSampleItem(id+1000, s)); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 5; pass++ {
		for i, it := range m.WarehouseItems() {
			if i > 0 && m.WarehouseItems()[i-1].ID >= it.ID {
				t.Fatalf("warehouse listing unsorted at %d", i)
			}
		}
		buf := m.BufferItems()
		if len(buf) != len(ids) {
			t.Fatalf("buffer listing = %d items", len(buf))
		}
		for i := 1; i < len(buf); i++ {
			if buf[i-1].ID >= buf[i].ID {
				t.Fatalf("buffer listing unsorted at %d: %d >= %d", i, buf[i-1].ID, buf[i].ID)
			}
		}
	}
}

// memSpiller is an in-memory Spiller for tier-behaviour tests.
type memSpiller struct {
	files   map[uint64]*Payload
	failPut bool
	loads   int
}

func newMemSpiller() *memSpiller { return &memSpiller{files: map[uint64]*Payload{}} }

func (m *memSpiller) Spill(id uint64, p *Payload) error {
	if m.failPut {
		return fmt.Errorf("disk full")
	}
	m.files[id] = p
	return nil
}

func (m *memSpiller) Load(id uint64) (*Payload, error) {
	p, ok := m.files[id]
	if !ok {
		return nil, fmt.Errorf("no file for %d", id)
	}
	m.loads++
	return p, nil
}

func (m *memSpiller) Remove(id uint64) error { delete(m.files, id); return nil }

// TestSpillOnPromoteAndLazyLoad: promotion to a disk-backed warehouse
// drops the payload pointer; the first payload access faults it back and
// caches it.
func TestSpillOnPromoteAndLazyLoad(t *testing.T) {
	sp := newMemSpiller()
	m := NewManagerWithSpiller(1<<20, 1<<20, sp)
	s := mkSample(50)
	if err := m.PutBuffer(NewSampleItem(5, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.Promote(5); err != nil {
		t.Fatal(err)
	}
	it, inBuf, ok := m.Get(5)
	if !ok || inBuf {
		t.Fatal("item not in warehouse")
	}
	if it.Loaded() {
		t.Fatal("promotion must drop the payload pointer")
	}
	if _, ok := sp.files[5]; !ok {
		t.Fatal("promotion must write the durable copy")
	}
	got, err := it.Sample()
	if err != nil || got == nil {
		t.Fatalf("lazy load: %v %v", got, err)
	}
	if !it.Loaded() || sp.loads != 1 {
		t.Fatalf("payload not cached after load (loads=%d)", sp.loads)
	}
	if _, err := it.Sample(); err != nil || sp.loads != 1 {
		t.Fatalf("second access must hit the cache (loads=%d)", sp.loads)
	}
	// Eviction removes the durable copy.
	if err := m.Delete(5); err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.files[5]; ok {
		t.Fatal("delete must remove the durable copy")
	}
}

// TestFailedSpillAbortsPlacement: a synopsis whose durable write fails
// must not occupy the (contractually durable) warehouse tier.
func TestFailedSpillAbortsPlacement(t *testing.T) {
	sp := newMemSpiller()
	sp.failPut = true
	m := NewManagerWithSpiller(1, 1<<20, sp)
	s := mkSample(50)

	if err := m.PutWarehouse(NewSampleItem(1, s)); err == nil {
		t.Fatal("PutWarehouse must surface a failed durable write")
	}
	if m.Has(1) {
		t.Fatal("failed placement left the item stored")
	}
	// Admit overflows to the warehouse (tiny buffer) and must drop.
	if r := m.Admit(NewSampleItem(2, s)); r != AdmitDropped {
		t.Fatalf("admit with failing disk = %v, want dropped", r)
	}
	// Promotion failure keeps the item in the buffer, payload intact.
	sp.failPut = false
	big := NewManagerWithSpiller(1<<20, 1<<20, sp)
	if err := big.PutBuffer(NewSampleItem(3, s)); err != nil {
		t.Fatal(err)
	}
	sp.failPut = true
	if err := big.Promote(3); err == nil {
		t.Fatal("promote must surface a failed durable write")
	}
	it, inBuf, ok := big.Get(3)
	if !ok || !inBuf || !it.Loaded() {
		t.Fatal("failed promotion must leave the buffer copy untouched")
	}
}

// TestRestoredItemQuota: restore honors tier quotas (restart under a
// smaller budget drops overflow).
func TestRestoredItemQuota(t *testing.T) {
	sp := newMemSpiller()
	s := mkSample(50)
	sp.files[9] = &Payload{Sample: s}
	m := NewManagerWithSpiller(1<<20, s.SizeBytes(), sp)
	it := RestoredItem(9, SampleItem, s.SizeBytes(), int64(s.Rows.NumRows()), false, sp)
	if err := m.RestoreItem(it, false); err != nil {
		t.Fatal(err)
	}
	if it.Loaded() {
		t.Fatal("restored item must start unloaded")
	}
	if err := it.EagerLoad(); err != nil {
		t.Fatal(err)
	}
	over := RestoredItem(10, SampleItem, s.SizeBytes(), 50, false, sp)
	if err := m.RestoreItem(over, false); err == nil {
		t.Fatal("restore past quota must fail")
	}
}
