package warehouse

import (
	"testing"

	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

func mkSample(rows int) *synopses.Sample {
	b := storage.NewBuilder("s", storage.Schema{
		{Name: "s.v", Typ: storage.Int64},
		{Name: synopses.WeightCol, Typ: storage.Float64},
	})
	for i := 0; i < rows; i++ {
		b.Int(0, int64(i))
		b.Float(1, 1)
	}
	return &synopses.Sample{Rows: b.Build(1), Strategy: "uniform", P: 1}
}

func TestPutGetDelete(t *testing.T) {
	m := NewManager(1<<20, 1<<20)
	it := NewSampleItem(1, mkSample(100))
	if err := m.PutBuffer(it); err != nil {
		t.Fatal(err)
	}
	got, inBuf, ok := m.Get(1)
	if !ok || !inBuf || got != it {
		t.Fatalf("Get = %v %v %v", got, inBuf, ok)
	}
	if !m.Has(1) || m.Has(2) {
		t.Fatal("Has")
	}
	bu, wu := m.Usage()
	if bu != it.Size || wu != 0 {
		t.Fatalf("usage = %d %d", bu, wu)
	}
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if m.Has(1) {
		t.Fatal("deleted item still present")
	}
	if err := m.Delete(1); err == nil {
		t.Fatal("double delete must error")
	}
	bu, _ = m.Usage()
	if bu != 0 {
		t.Fatalf("usage after delete = %d", bu)
	}
}

func TestQuotaEnforced(t *testing.T) {
	s := mkSample(100)
	m := NewManager(s.SizeBytes(), s.SizeBytes()*2)
	if err := m.PutBuffer(NewSampleItem(1, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutBuffer(NewSampleItem(2, s)); err == nil {
		t.Fatal("buffer overflow must error")
	}
	if err := m.PutWarehouse(NewSampleItem(2, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutWarehouse(NewSampleItem(3, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutWarehouse(NewSampleItem(4, s)); err == nil {
		t.Fatal("warehouse overflow must error")
	}
	if m.FreeWarehouse() != 0 {
		t.Fatalf("free = %d", m.FreeWarehouse())
	}
	// Duplicate ids rejected.
	if err := m.PutWarehouse(NewSampleItem(2, s)); err == nil {
		t.Fatal("duplicate id must error")
	}
}

func TestPromote(t *testing.T) {
	s := mkSample(50)
	m := NewManager(1<<20, 1<<20)
	if err := m.PutBuffer(NewSampleItem(7, s)); err != nil {
		t.Fatal(err)
	}
	if err := m.Promote(7); err != nil {
		t.Fatal(err)
	}
	_, inBuf, ok := m.Get(7)
	if !ok || inBuf {
		t.Fatal("promotion must move item to warehouse")
	}
	if err := m.Promote(7); err == nil {
		t.Fatal("promoting a non-buffer item must error")
	}
	bu, wu := m.Usage()
	if bu != 0 || wu != s.SizeBytes() {
		t.Fatalf("usage = %d %d", bu, wu)
	}
}

func TestPinnedResistDeletion(t *testing.T) {
	m := NewManager(1<<20, 1<<20)
	it := NewSampleItem(1, mkSample(10))
	it.Pinned = true
	if err := m.PutWarehouse(it); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(1); err == nil {
		t.Fatal("pinned item must refuse deletion")
	}
	if !m.Has(1) {
		t.Fatal("pinned item vanished")
	}
}

func TestElasticQuota(t *testing.T) {
	s := mkSample(100)
	m := NewManager(1<<20, s.SizeBytes()*3)
	for id := uint64(1); id <= 3; id++ {
		if err := m.PutWarehouse(NewSampleItem(id, s)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Overflow() != 0 {
		t.Fatal("no overflow within quota")
	}
	// Shrink: overflow appears, existing data intact until tuner evicts.
	m.SetWarehouseQuota(s.SizeBytes())
	if m.Overflow() != 2*s.SizeBytes() {
		t.Fatalf("overflow = %d", m.Overflow())
	}
	if len(m.WarehouseItems()) != 3 {
		t.Fatal("shrink must not silently drop items")
	}
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(2); err != nil {
		t.Fatal(err)
	}
	if m.Overflow() != 0 {
		t.Fatalf("overflow after evictions = %d", m.Overflow())
	}
	_, q := m.Quotas()
	if q != s.SizeBytes() {
		t.Fatal("quota readback")
	}
}

func TestSketchItem(t *testing.T) {
	sk := synopses.NewSketchJoin(0.01, 0.01, []string{"k"}, "v", 1)
	it := NewSketchItem(9, sk)
	if it.Size != sk.SizeBytes() || it.Sketch == nil {
		t.Fatalf("item = %+v", it)
	}
	m := NewManager(1<<10, 1<<30)
	if err := m.PutWarehouse(it); err != nil {
		t.Fatal(err)
	}
	got, _, ok := m.Get(9)
	if !ok || got.Sketch != sk {
		t.Fatal("sketch round trip")
	}
	if len(m.BufferItems()) != 0 || len(m.WarehouseItems()) != 1 {
		t.Fatal("tier listings")
	}
}

func TestAdmitIsIdempotentAcrossTiers(t *testing.T) {
	s := mkSample(100)
	m := NewManager(s.SizeBytes(), s.SizeBytes()*4)

	if r := m.Admit(NewSampleItem(1, s)); r != AdmitBuffer {
		t.Fatalf("first admit = %v, want buffer", r)
	}
	// A concurrent build of the same ID must be a no-op — never a second
	// copy in the warehouse while the first sits in the buffer.
	if r := m.Admit(NewSampleItem(1, s)); r != AdmitBuffer {
		t.Fatalf("duplicate admit = %v, want buffer no-op", r)
	}
	if bu, wu := m.Usage(); bu != s.SizeBytes() || wu != 0 {
		t.Fatalf("usage after duplicate admit = %d/%d, want single buffer copy", bu, wu)
	}

	// Buffer full → overflow to warehouse; duplicate again → warehouse no-op.
	if r := m.Admit(NewSampleItem(2, s)); r != AdmitWarehouse {
		t.Fatalf("overflow admit = %v, want warehouse", r)
	}
	if r := m.Admit(NewSampleItem(2, s)); r != AdmitWarehouse {
		t.Fatalf("duplicate overflow admit = %v, want warehouse no-op", r)
	}

	// Both tiers full → dropped.
	big := mkSample(100000)
	if r := m.Admit(NewSampleItem(3, big)); r != AdmitDropped {
		t.Fatalf("oversized admit = %v, want dropped", r)
	}

	// Deleting an admitted ID frees its single copy everywhere.
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if m.Has(1) {
		t.Fatal("ID 1 still materialized after delete")
	}
}
