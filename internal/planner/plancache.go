package planner

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/plan"
)

// CacheKey derives the plan cache identity of a query under a tuning
// snapshot. The key is invalidation-by-construction: it embeds
//
//   - the query's canonical signature in plan.Signature vocabulary (base
//     tables, canonical join predicates, filter conjuncts, output columns) —
//     kept in declaration order, not sorted, because the planner builds
//     left-deep join trees in table order and the seed derives from the
//     chosen plan's text, so order-insensitive keying could replay a
//     differently-shaped (still correct, but differently-sampled) plan;
//   - each table's version epoch, so Catalog.Append makes every prior entry
//     of that table unreachable;
//   - the full accuracy/order/limit/exact surface that steers candidate
//     generation;
//   - the snapshot identity (see core's tuningSnapshot.ident), so a publish
//     that rearranged the warehouse orphans every entry planned against the
//     old synopsis set.
//
// Stale entries are therefore never consulted; they age out of the LRU.
func CacheKey(q *Query, snapIdent uint64) string {
	var sig plan.Signature
	for _, t := range q.Tables {
		sig.Tables = append(sig.Tables, fmt.Sprintf("%s@%d", t.Name, t.Table.Epoch()))
	}
	for _, j := range q.Joins {
		sig.JoinPreds = append(sig.JoinPreds, j.Canonical())
	}
	for _, c := range expr.Conjuncts(q.Filter) {
		sig.Filters = append(sig.Filters, c.String())
	}
	sig.Output = append(append([]string(nil), q.GroupBy...), func() []string {
		out := make([]string, 0, len(q.Aggs))
		for _, a := range q.Aggs {
			out = append(out, a.Kind.String()+"("+a.Col+")as"+a.Alias)
		}
		return out
	}()...)

	var sb strings.Builder
	sb.WriteString(sig.Key())
	fmt.Fprintf(&sb, " ORD[%s", strings.Join(q.OrderBy, ","))
	for _, d := range q.Desc {
		if d {
			sb.WriteString(";d")
		} else {
			sb.WriteString(";a")
		}
	}
	fmt.Fprintf(&sb, "] L[%d] ACC[%g@%g] X[%v] SNAP[%d]",
		q.Limit, q.Accuracy.RelError, q.Accuracy.Confidence, q.Exact, snapIdent)
	return sb.String()
}

// PlanCacheStats is the cache's cumulative hit accounting.
type PlanCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// PlanCache is a bounded LRU from CacheKey to *PlanSet: the serving fast
// path's memo of candidate enumeration. Entries are immutable once stored —
// a hit re-runs only plan *choice* (gains change per snapshot) and
// execution, never candidate generation. Because keys embed table epochs
// and the snapshot identity, invalidation needs no explicit purge: stale
// keys simply stop being looked up and fall off the LRU tail. The bound
// keeps a many-tenant workload (millions of distinct query shapes) from
// growing the cache without limit; note each entry pins its plan trees and
// any resolved sample payloads until evicted.
type PlanCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	byKey map[string]*list.Element
	stats PlanCacheStats

	// Obs mirrors the hit/miss/eviction counters into the engine-wide metrics
	// registry. Write-only and nil-safe; the authoritative numbers for tuning
	// decisions stay in stats.
	Obs *obs.PlanCacheObs
}

type planCacheEntry struct {
	key string
	ps  *PlanSet
}

// NewPlanCache returns a cache bounded to max entries; max <= 0 disables
// caching (Get always misses, Put is a no-op).
func NewPlanCache(max int) *PlanCache {
	return &PlanCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached plan set for the key, promoting it to most
// recently used. Safe for concurrent use.
func (c *PlanCache) Get(key string) (*PlanSet, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.stats.Misses++
		c.Obs.Miss()
		return nil, false
	}
	c.stats.Hits++
	c.Obs.Hit()
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).ps, true
}

// Put stores a plan set under the key, evicting the least recently used
// entry when the bound is exceeded. Storing an existing key refreshes its
// recency and replaces the value.
func (c *PlanCache) Put(key string, ps *PlanSet) {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planCacheEntry).ps = ps
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&planCacheEntry{key: key, ps: ps})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*planCacheEntry).key)
		c.stats.Evictions++
		c.Obs.Evict()
	}
}

// Len returns the current entry count.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss/eviction counters.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RecordReuseBenefits replays a cached plan set's benefit records for a new
// query occurrence: the tail of PlanWith, extracted so the engine's cache
// hit path credits candidate synopses exactly as a cold planning pass would
// — the sliding benefit window must see every repetition of the workload,
// cached or not, or the tuner would stop selecting the synopses the hottest
// templates depend on.
func (p *Planner) RecordReuseBenefits(ps *PlanSet, queryID int) {
	for id, reuse := range ps.ReuseCost {
		p.Store.RecordBenefit(id, meta.QueryBenefit{
			QueryID:   queryID,
			CostWith:  reuse,
			CostExact: ps.Exact.Cost,
		}, p.BenefitKeep)
	}
}
