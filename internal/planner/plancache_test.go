package planner

import (
	"fmt"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

func cacheTestTable(t *testing.T, name string, rows int) *storage.Table {
	t.Helper()
	b := storage.NewBuilder(name, storage.Schema{
		{Name: name + ".k", Typ: storage.Int64},
		{Name: name + ".v", Typ: storage.Float64},
	})
	for i := 0; i < rows; i++ {
		b.Int(0, int64(i%7))
		b.Float(1, float64(i))
	}
	return b.Build(2)
}

func cacheTestQuery(tbl *storage.Table) *Query {
	return &Query{
		Tables:   []TableRef{{Name: tbl.Name, Table: tbl}},
		Filter:   &expr.Cmp{Op: expr.GE, L: &expr.Col{Name: tbl.Name + ".v"}, R: expr.Float(10)},
		GroupBy:  []string{tbl.Name + ".k"},
		Aggs:     []plan.AggSpec{{Kind: stats.Sum, Col: tbl.Name + ".v"}},
		Accuracy: stats.DefaultAccuracy,
	}
}

// TestCacheKeyInvalidation: every input that changes planning must change
// the key; repeated identical queries must not.
func TestCacheKeyInvalidation(t *testing.T) {
	tbl := cacheTestTable(t, "t", 100)
	q := cacheTestQuery(tbl)
	base := CacheKey(q, 1)

	if CacheKey(cacheTestQuery(tbl), 1) != base {
		t.Fatal("identical query must produce an identical key")
	}
	if CacheKey(q, 2) == base {
		t.Fatal("snapshot identity must be part of the key")
	}
	q2 := cacheTestQuery(tbl)
	q2.Accuracy.RelError = 0.01
	if CacheKey(q2, 1) == base {
		t.Fatal("accuracy must be part of the key")
	}
	q3 := cacheTestQuery(tbl)
	q3.Exact = true
	if CacheKey(q3, 1) == base {
		t.Fatal("exact flag must be part of the key")
	}
	q4 := cacheTestQuery(tbl)
	q4.Filter = nil
	if CacheKey(q4, 1) == base {
		t.Fatal("filter must be part of the key")
	}
	q5 := cacheTestQuery(tbl)
	q5.Limit, q5.OrderBy, q5.Desc = 3, []string{"t.k"}, []bool{true}
	if CacheKey(q5, 1) == base {
		t.Fatal("order/limit must be part of the key")
	}

	// Ingest produces a new table version with a bumped epoch: a query bound
	// to it must key differently, so stale entries are never consulted
	// (invalidation by construction).
	tbl2, err := tbl.Append(cacheTestTable(t, "t", 5))
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(cacheTestQuery(tbl2), 1) == base {
		t.Fatal("table epoch must be part of the key")
	}
}

// TestPlanCacheLRU: bound is enforced, eviction is least-recently-used, and
// the counters account every lookup.
func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	a, b, d := &PlanSet{}, &PlanSet{}, &PlanSet{}
	c.Put("a", a)
	c.Put("b", b)
	if got, ok := c.Get("a"); !ok || got != a {
		t.Fatal("expected hit for a")
	}
	c.Put("d", d) // evicts b (a was touched more recently)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if got, ok := c.Get("a"); !ok || got != a {
		t.Fatal("a must survive the eviction")
	}
	if got, ok := c.Get("d"); !ok || got != d {
		t.Fatal("d must be cached")
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 hits / 1 miss / 1 eviction", st)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestPlanCacheDisabled: max <= 0 and nil receivers never cache.
func TestPlanCacheDisabled(t *testing.T) {
	c := NewPlanCache(0)
	c.Put("a", &PlanSet{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must not store")
	}
	var nilC *PlanCache
	nilC.Put("a", &PlanSet{})
	if _, ok := nilC.Get("a"); ok {
		t.Fatal("nil cache must miss")
	}
	if nilC.Len() != 0 || nilC.Stats() != (PlanCacheStats{}) {
		t.Fatal("nil cache must report zero state")
	}
}

// TestPlanCacheManyTenants: a flood of distinct keys stays bounded.
func TestPlanCacheManyTenants(t *testing.T) {
	c := NewPlanCache(64)
	for i := 0; i < 10_000; i++ {
		c.Put(fmt.Sprintf("tenant-%d", i), &PlanSet{})
	}
	if c.Len() != 64 {
		t.Fatalf("len = %d, want 64", c.Len())
	}
	if ev := c.Stats().Evictions; ev != 10_000-64 {
		t.Fatalf("evictions = %d, want %d", ev, 10_000-64)
	}
}
