package planner

import (
	"math"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/storage"
)

// estimator provides cardinality and cost estimates over the query IR. It
// mirrors what the physical engine charges (scan bytes, shuffle bytes, CPU
// tuples) so estimated and measured simulated times track each other.
type estimator struct {
	model storage.CostModel
}

// scanEst describes one joined branch: cardinality and average row width.
type scanEst struct {
	rows  float64
	width float64 // bytes per row
}

// tableEst returns the branch estimate for a filtered base table.
func (e estimator) tableEst(t TableRef, filter expr.Expr) scanEst {
	rows := float64(t.Table.NumRows()) * expr.Selectivity(filter, t.Table)
	return scanEst{rows: rows, width: t.Table.AvgRowBytes()}
}

// joinEst estimates |L ⋈ R| with the textbook formula
// |L|·|R| / max(d(Lkey), d(Rkey)), composed over multiple key pairs.
func (e estimator) joinEst(q *Query, left scanEst, leftTables []string, right TableRef, rightFiltered scanEst) scanEst {
	denom := 1.0
	for _, j := range q.Joins {
		var keyTable, keyCol, otherCol string
		switch {
		case j.RightTable == right.Name && contains(leftTables, j.LeftTable):
			keyTable, keyCol, otherCol = j.LeftTable, j.LeftCol, j.RightCol
		case j.LeftTable == right.Name && contains(leftTables, j.RightTable):
			keyTable, keyCol, otherCol = j.RightTable, j.RightCol, j.LeftCol
		default:
			continue
		}
		dLeft := 1
		if ref, ok := q.ref(keyTable); ok {
			dLeft = ref.Table.DistinctOf(keyCol)
		}
		dRight := right.Table.DistinctOf(otherCol)
		d := dLeft
		if dRight > d {
			d = dRight
		}
		if d > 1 {
			denom *= float64(d)
		}
	}
	rows := left.rows * rightFiltered.rows / denom
	if rows < 1 {
		rows = 1
	}
	return scanEst{rows: rows, width: left.width + rightFiltered.width}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// planCost accumulates the simulated-seconds cost of a candidate.
//
// CPU work is split into two buckets: cpuTuples is pipeline work the
// morsel-driven executor spreads across workers (scans, samplers, hash
// joins, aggregation), serialTuples is Volcano-path work with no parallel
// runtime (sketch probes). seconds divides only the former by the planner's
// parallelism factor, so plan choice reflects which runtime a shape lands on.
type planCost struct {
	baseBytes      int64
	warehouseBytes int64
	// diskLoadBytes is the I/O-load term for disk-resident synopses: a
	// reuse candidate whose payload was spilled to the persistent warehouse
	// tier pays a fault-in (seek + bytes at cold-read bandwidth) on top of
	// the warehouse scan. Already-cached payloads and buffer residents skip
	// it, so ChoosePlan discounts cold warehouse hits against warm ones.
	diskLoadBytes int64
	cpuTuples     int64
	serialTuples  int64
	// vecTuples/serialVecTuples carry filter work running on the compiled
	// selection-kernel path (expr.KernelCompilable predicates): per tuple it
	// costs only the model's VectorizedFrac of the interpreted rate.
	// Interpreter-bound filter work charges into cpuTuples/serialTuples at
	// full rate. The split keys on the predicate's static shape, never on the
	// runtime kernel-disable switch, so disabling kernels for a differential
	// run cannot change plan choice.
	vecTuples       int64
	serialVecTuples int64
	shuffleBytes    int64
}

func (c *planCost) scanTable(t TableRef) {
	c.scanBase(t.Table.Bytes(), int64(t.Table.NumRows()), false)
}

// scanTableSerial is scanTable for join build branches: their scan is
// drained serially (drainBuild) before the morsel pool starts, so the CPU
// never spreads across workers.
func (c *planCost) scanTableSerial(t TableRef) {
	c.scanBase(t.Table.Bytes(), int64(t.Table.NumRows()), true)
}

// scanBase charges a base-table scan by explicit byte and row totals — the
// zone-prune-aware costing path passes only the surviving partitions'
// share, mirroring what the executor's pruned scans actually charge.
func (c *planCost) scanBase(bytes, rows int64, serial bool) {
	c.baseBytes += bytes
	if serial {
		c.serialTuples += rows
	} else {
		c.cpuTuples += rows
	}
}

func (c *planCost) scanSynopsis(bytes int64, rows float64) {
	c.warehouseBytes += bytes
	c.cpuTuples += int64(rows)
}

// loadSynopsis charges faulting a spilled synopsis payload back into
// memory (disk-resident warehouse items only).
func (c *planCost) loadSynopsis(bytes int64) {
	c.diskLoadBytes += bytes
}

// joinWork charges one hash join: both inputs shuffle, output pays CPU. The
// build side is materialized serially; probing and emitting run on the
// morsel pool.
func (c *planCost) joinWork(build, probe, out scanEst) {
	c.shuffleBytes += int64(build.rows*build.width) + int64(probe.rows*probe.width)
	c.serialTuples += int64(build.rows)
	c.cpuTuples += int64(probe.rows + out.rows)
}

// aggWork charges the aggregation exchange plus per-tuple work.
func (c *planCost) aggWork(in scanEst) {
	c.shuffleBytes += int64(in.rows * in.width)
	c.cpuTuples += int64(in.rows)
}

// samplerWork charges the pipelined sampler (one pass over its input).
// spine says whether the sampler rides the morsel-parallel probe spine
// (false: it sits in a serially drained build branch).
func (c *planCost) samplerWork(inRows float64, spine bool) {
	if spine {
		c.cpuTuples += int64(inRows)
	} else {
		c.serialTuples += int64(inRows)
	}
}

// filterWork charges evaluating a filter predicate over its input rows.
// vectorized says the predicate compiles to selection kernels (charged at the
// model's vectorized fraction); serial says the filter sits on a serially
// drained branch rather than the morsel-parallel spine.
func (c *planCost) filterWork(rows float64, vectorized, serial bool) {
	switch {
	case vectorized && serial:
		c.serialVecTuples += int64(rows)
	case vectorized:
		c.vecTuples += int64(rows)
	case serial:
		c.serialTuples += int64(rows)
	default:
		c.cpuTuples += int64(rows)
	}
}

// sketchProbeWork charges probing a CM sketch per probe tuple. Sketch joins
// run on the serial Volcano path, so this work does not shrink with the
// executor's worker count.
func (c *planCost) sketchProbeWork(probeRows float64) {
	c.serialTuples += int64(probeRows * 4) // d hash rows per probe
}

// serializeCPU reclassifies all pipeline CPU accumulated so far as serial
// work. Sketch-join candidates use it: their whole physical plan — build
// scan, CM updates, probe-side join tree and final aggregation — runs on the
// Volcano operators (matchParallelAgg rejects SketchJoin shapes), so none of
// it shrinks with the executor's worker count.
func (c *planCost) serializeCPU() {
	c.serialTuples += c.cpuTuples
	c.cpuTuples = 0
	c.serialVecTuples += c.vecTuples
	c.vecTuples = 0
}

// seconds converts accumulated work into simulated cluster time. The seek
// charge models per-query job startup and is paid once, not per source.
// parallelism (≥1) is the intra-query worker count of the morsel-driven
// executor: pipeline CPU work divides by it, serial work and I/O do not.
func (c *planCost) seconds(m storage.CostModel, parallelism float64) float64 {
	if parallelism < 1 {
		parallelism = 1
	}
	s := m.CPUSeconds(c.cpuTuples)/parallelism + m.CPUSeconds(c.serialTuples) +
		m.VectorizedFrac()*(m.CPUSeconds(c.vecTuples)/parallelism+m.CPUSeconds(c.serialVecTuples)) +
		m.ShuffleSeconds(c.shuffleBytes)
	if c.baseBytes > 0 || c.warehouseBytes > 0 {
		s += m.SeekSeconds
	}
	s += float64(c.baseBytes) / m.ScanBytesPerSec
	s += float64(c.warehouseBytes) / (m.ScanBytesPerSec * m.WarehouseReadFrac)
	s += m.DiskLoadSeconds(c.diskLoadBytes)
	if s <= 0 {
		s = 1e-6
	}
	return s
}

// sampleOutRows estimates the rows a sampler passes.
func sampleOutRows(inRows float64, uniform bool, p float64, delta, groups int) float64 {
	if uniform {
		return math.Max(1, inRows*p)
	}
	freq := float64(delta * groups)
	if freq > inRows {
		freq = inRows
	}
	return math.Max(1, freq+(inRows-freq)*p)
}

// sampleBytes estimates a materialized sample's size.
func sampleBytes(rows, width float64) int64 {
	return int64(rows * (width + 8)) // + weight column
}
