package planner

import (
	"fmt"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
)

// joinTree builds the left-deep join tree over q.Tables in order. branch
// overrides replace a table's leaf subplan (used to inject samplers or
// synopsis scans); when a table has no override and applyFilters is true,
// its single-table filter is pushed onto its scan.
func (p *Planner) joinTree(q *Query, overrides map[string]plan.Node, applyFilters bool) (plan.Node, error) {
	branch := func(t TableRef) plan.Node {
		if n, ok := overrides[t.Name]; ok {
			return n
		}
		var n plan.Node = &plan.Scan{Table: t.Table}
		if applyFilters {
			if f := q.filterForTable(t.Name); f != nil {
				n = &plan.Filter{Child: n, Pred: f}
			}
		}
		return n
	}

	root := branch(q.Tables[0])
	joined := []string{q.Tables[0].Name}
	for _, t := range q.Tables[1:] {
		var leftKeys, rightKeys []string
		for _, j := range q.Joins {
			switch {
			case j.RightTable == t.Name && contains(joined, j.LeftTable):
				leftKeys = append(leftKeys, j.LeftCol)
				rightKeys = append(rightKeys, j.RightCol)
			case j.LeftTable == t.Name && contains(joined, j.RightTable):
				leftKeys = append(leftKeys, j.RightCol)
				rightKeys = append(rightKeys, j.LeftCol)
			}
		}
		if len(leftKeys) == 0 {
			return nil, fmt.Errorf("planner: table %q does not join the preceding tables (cross joins unsupported)", t.Name)
		}
		root = &plan.Join{Left: root, Right: branch(t), LeftKeys: leftKeys, RightKeys: rightKeys}
		joined = append(joined, t.Name)
	}
	return root, nil
}

// finishPlan adds the residual filter, aggregation and ordering above the
// join tree.
func (p *Planner) finishPlan(q *Query, joinRoot plan.Node, extraFilter expr.Expr) plan.Node {
	root := joinRoot
	var filters []expr.Expr
	if extraFilter != nil {
		filters = append(filters, extraFilter)
	}
	if rf := q.residualFilter(); rf != nil {
		filters = append(filters, rf)
	}
	if f := expr.AndAll(filters); f != nil {
		root = &plan.Filter{Child: root, Pred: f}
	}
	root = &plan.Aggregate{Child: root, GroupBy: q.GroupBy, Aggs: q.Aggs}
	if len(q.OrderBy) > 0 || q.Limit > 0 {
		root = &plan.Sort{Child: root, By: q.OrderBy, Desc: q.Desc, Limit: q.Limit}
	}
	return root
}

// exactPlan builds the no-synopsis plan and its cost estimate.
func (p *Planner) exactPlan(q *Query) (Candidate, error) {
	root, err := p.joinTree(q, nil, true)
	if err != nil {
		return Candidate{}, err
	}
	full := p.finishPlan(q, root, nil)

	var cost planCost
	out := p.costFilteredJoinTree(q, nil, &cost)
	cost.aggWork(out)
	return Candidate{
		Root: full,
		Cost: cost.seconds(p.Model, p.Parallelism),
		Desc: "exact",
	}, nil
}

// costFilteredJoinTree charges the standard execution of the join tree with
// filters pushed down, allowing per-table branch estimate overrides (the
// override replaces both the branch's cardinality and its scan charge —
// overridden branches charge nothing here; callers charge them separately).
func (p *Planner) costFilteredJoinTree(q *Query, overrides map[string]scanEst, cost *planCost) scanEst {
	branchEst := func(t TableRef) scanEst {
		if e, ok := overrides[t.Name]; ok {
			return e
		}
		// The first FROM table is the probe spine of the morsel-parallel
		// executor; every other branch is a serially drained build side.
		// Either way the executor zone-prunes partitions the table's filter
		// provably rejects, so charge only the surviving partitions' share.
		bytes, rows := p.prunedScanCharge(t, q.filterForTable(t.Name))
		serial := t.Name != q.Tables[0].Name
		cost.scanBase(bytes, rows, serial)
		if f := q.filterForTable(t.Name); f != nil {
			cost.filterWork(float64(rows), expr.KernelCompilable(f, t.Table.Schema()), serial)
		}
		return p.est.tableEst(t, q.filterForTable(t.Name))
	}

	cur := branchEst(q.Tables[0])
	joined := []string{q.Tables[0].Name}
	for _, t := range q.Tables[1:] {
		right := branchEst(t)
		out := p.est.joinEst(q, cur, joined, t, right)
		cost.joinWork(right, cur, out)
		cur = out
		joined = append(joined, t.Name)
	}
	return cur
}
