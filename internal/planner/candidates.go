package planner

import (
	"fmt"
	"math"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/synopses"
	"github.com/tasterdb/taster/internal/warehouse"
)

// addJoinSampleCandidates generates position-B plans: a sampler over the
// *unfiltered* join result (the paper's intermediate-result synopses, §III:
// "synopses for summarizing both base tables and intermediary results of
// subplans (e.g., join results)"). Building one costs more than the exact
// plan for the query at hand — the unfiltered join is wider — but once
// materialized it serves every query over the same join pattern regardless
// of predicate values, which is where TPC-DS's recurring
// store_sales⋈date_dim pattern wins (paper §VI-A).
func (p *Planner) addJoinSampleCandidates(q *Query, ps *PlanSet) {
	// Stratify on grouping columns plus skewed equality-filter columns of
	// every table (the push-down rule applied at the join output).
	strat := append([]string(nil), q.GroupBy...)
	for _, t := range q.Tables {
		strat = append(strat, q.skewedEqFilterCols(t)...)
	}
	strat = expr.DedupCols(strat)

	// Estimate join cardinality and group structure.
	var probeCost planCost // throwaway accumulator for estimation
	joinOut := p.costUnfilteredJoinTree(q, &probeCost)
	groups := 1
	for _, c := range strat {
		if ref, ok := q.ref(q.tableOf(c)); ok {
			if d := ref.Table.DistinctOf(c); d > 0 {
				groups *= d
			}
		}
		if groups > 1<<20 {
			return // stratification space too large to sample usefully
		}
	}
	coverGroups := 1
	for _, c := range q.GroupBy {
		if ref, ok := q.ref(q.tableOf(c)); ok {
			if d := ref.Table.DistinctOf(c); d > 0 {
				coverGroups *= d
			}
		}
	}
	coverMinGroup := maxInt(1, int(joinOut.rows/float64(coverGroups)/2))
	sel := p.totalFilterSelectivity(q)
	cfg := p.configureSampler(q, strat, joinOut.rows, sel, groups, coverMinGroup, coverGroups)
	if !cfg.ok {
		return
	}

	unfiltered, err := p.joinTree(q, nil, false)
	if err != nil {
		return
	}
	sig := plan.SignatureOf(unfiltered)
	desc := meta.Descriptor{
		Kind:      cfg.kind,
		Sig:       sig,
		StratCols: strat,
		P:         cfg.p,
		Delta:     cfg.delta,
		AggCols:   q.aggCols(),
		Accuracy:  q.Accuracy,
	}
	outRows := sampleOutRows(joinOut.rows, cfg.kind == plan.UniformSample, cfg.p, cfg.delta, groups)
	desc.EstSizeBytes = sampleBytes(outRows, joinOut.width)
	entry := p.Store.Intern(desc)

	// Build-inline candidate: sampler over the unfiltered join, all filters
	// applied above the sampler.
	synNode := &plan.SynopsisOp{
		Child: unfiltered,
		Kind:  cfg.kind, P: cfg.p, Delta: cfg.delta,
		StratCols: strat, Accuracy: q.Accuracy,
	}
	var singleFilters []expr.Expr
	for _, t := range q.Tables {
		if f := q.filterForTable(t.Name); f != nil {
			singleFilters = append(singleFilters, f)
		}
	}
	full := p.finishPlan(q, synNode, expr.AndAll(singleFilters))

	var cost planCost
	joinEstOut := p.costUnfilteredJoinTree(q, &cost)
	cost.samplerWork(joinEstOut.rows, true) // sampler above the join root: on the spine
	// Filters lifted above the sampler evaluate over the sample stream; each
	// is priced by its own table's schema (the joined schema keeps the
	// qualified column names, so compilability carries over).
	for _, t := range q.Tables {
		if f := q.filterForTable(t.Name); f != nil {
			cost.filterWork(outRows, expr.KernelCompilable(f, t.Table.Schema()), false)
		}
	}
	// sel computed above for the sampler configuration.
	cost.aggWork(scanEst{rows: math.Max(outRows*sel, 1), width: joinOut.width + 8})
	ps.Candidates = append(ps.Candidates, Candidate{
		Root:    full,
		Cost:    cost.seconds(p.Model, p.Parallelism),
		Creates: []CreateSpec{{Entry: entry, SampleNode: synNode}},
		Desc:    fmt.Sprintf("build %s sample on join %v", cfg.kind, sig.Tables),
	})

	// Hypothetical reuse cost.
	var rc planCost
	rc.scanSynopsis(desc.EstSizeBytes, outRows)
	rc.aggWork(scanEst{rows: math.Max(outRows*sel, 1), width: joinOut.width + 8})
	reuseCost := rc.seconds(p.Model, p.Parallelism)
	if prev, ok := ps.ReuseCost[entry.Desc.ID]; !ok || reuseCost < prev {
		ps.ReuseCost[entry.Desc.ID] = reuseCost
	}

	// Reuse candidates from materialized join-result samples.
	need := append(append([]string(nil), q.GroupBy...), q.aggCols()...)
	if q.Filter != nil {
		need = append(need, q.Filter.Columns(nil)...)
	}
	req := meta.Requirements{
		Sig:       sig,
		Filter:    q.Filter,
		NeedCols:  expr.DedupCols(need),
		StratCols: strat,
		AggCols:   q.aggCols(),
		Accuracy:  q.Accuracy,
	}
	for _, m := range p.Store.MatchSamples(req) {
		item, inBuffer, ok := ps.wh.Get(m.Entry.Desc.ID)
		if !ok || item.Kind() != warehouse.SampleItem {
			continue
		}
		if !p.payloadCurrent(m.Entry.Desc.ID, item) {
			continue // live staleness metadata describes a newer build
		}
		stale := m.Entry.Staleness()
		if !p.stalenessAllowed(stale) {
			continue
		}
		sampleRows := float64(item.Rows)
		// Coverage feasibility under this query's filters (from item
		// metadata — no payload fault for infeasible candidates).
		if sampleRows*sel/float64(coverGroups) < float64(p.feasibilityRows(p.requiredK(q))) {
			continue
		}
		wasLoaded := item.Loaded()
		smp, err := item.Sample()
		if err != nil {
			continue // backing file lost or corrupt; next round re-tastes
		}
		ss := &plan.SynopsisScan{
			SynopsisID: m.Entry.Desc.ID,
			Sample:     smp,
			Label:      fmt.Sprintf("join %v", sig.Tables),
			InBuffer:   inBuffer,
		}
		rfull := p.finishPlan(q, ss, m.CompensateFilter)
		var rcost planCost
		if !inBuffer {
			rcost.scanSynopsis(item.Size, sampleRows)
			if !wasLoaded {
				rcost.loadSynopsis(item.Size)
			}
		} else {
			rcost.cpuTuples += int64(sampleRows)
		}
		if m.CompensateFilter != nil {
			rcost.filterWork(sampleRows, expr.KernelCompilable(m.CompensateFilter, smp.Rows.Schema()), false)
		}
		rcost.aggWork(scanEst{rows: math.Max(sampleRows*sel, 1), width: joinOut.width + 8})
		ps.Candidates = append(ps.Candidates, Candidate{
			Root: rfull,
			Cost: rcost.seconds(p.Model, p.Parallelism) * p.stalenessPenalty(stale),
			Uses: []uint64{m.Entry.Desc.ID},
			Desc: fmt.Sprintf("reuse join sample #%d", m.Entry.Desc.ID),
		})
	}
}

// costUnfilteredJoinTree charges the join tree with no filters pushed down.
func (p *Planner) costUnfilteredJoinTree(q *Query, cost *planCost) scanEst {
	branchEst := func(t TableRef) scanEst {
		if t.Name == q.Tables[0].Name {
			cost.scanTable(t)
		} else {
			cost.scanTableSerial(t)
		}
		return scanEst{rows: float64(t.Table.NumRows()), width: t.Table.AvgRowBytes()}
	}
	cur := branchEst(q.Tables[0])
	joined := []string{q.Tables[0].Name}
	for _, t := range q.Tables[1:] {
		right := branchEst(t)
		out := p.est.joinEst(q, cur, joined, t, right)
		cost.joinWork(right, cur, out)
		cur = out
		joined = append(joined, t.Name)
	}
	return cur
}

// sketchShape captures a validated sketch-join opportunity.
type sketchShape struct {
	fact       TableRef
	probe      []TableRef // remaining tables, connected among themselves
	buildKeys  []string   // fact-side join columns
	probeKeys  []string   // probe-side join columns (same order)
	aggCol     string     // fact-side aggregate column ("" = COUNT only)
	groupBy    []string   // grouping columns rewritten onto the probe side
	factFilter expr.Expr
}

// sketchEligible checks the paper's §IV-A conditions:
//
//	attrs(T) − jp = agg           (fact contributes only join keys + the
//	                               aggregate column)
//	attrs(T) ∩ grp = ∅  OR  attrs(T) ∩ grp = attrs(T) ∩ jp
//	                              (grouping never needs fact columns beyond
//	                               join keys, which the probe side mirrors)
func (p *Planner) sketchEligible(q *Query) (sketchShape, bool) {
	if len(q.Tables) < 2 || len(q.OrderBy) > 0 {
		return sketchShape{}, false
	}
	for _, a := range q.Aggs {
		if a.Kind != stats.Count && a.Kind != stats.Sum && a.Kind != stats.Avg {
			return sketchShape{}, false
		}
	}
	sh := sketchShape{fact: q.factTable()}

	// Exactly zero or one distinct fact-side aggregate column.
	factAggs := p.aggColsOn(q, sh.fact.Name)
	if len(factAggs) > 1 {
		return sketchShape{}, false
	}
	if len(factAggs) == 1 {
		sh.aggCol = factAggs[0]
	}
	// Any other aggregate columns must live on the probe side.
	for _, c := range q.aggCols() {
		if q.tableOf(c) == "" {
			return sketchShape{}, false
		}
	}

	// Probe side: every other table; they must interconnect without the
	// fact table (star flakes like products⋈departments qualify; two
	// dimensions only joinable through the fact do not).
	for _, t := range q.Tables {
		if t.Name != sh.fact.Name {
			sh.probe = append(sh.probe, t)
		}
	}
	if len(sh.probe) == 0 {
		return sketchShape{}, false
	}
	if len(sh.probe) > 1 && !connected(sh.probe, q.Joins, sh.fact.Name) {
		return sketchShape{}, false
	}

	// Fact↔probe join predicates become the sketch key.
	for _, j := range q.Joins {
		switch {
		case j.LeftTable == sh.fact.Name && j.RightTable != sh.fact.Name:
			sh.buildKeys = append(sh.buildKeys, j.LeftCol)
			sh.probeKeys = append(sh.probeKeys, j.RightCol)
		case j.RightTable == sh.fact.Name && j.LeftTable != sh.fact.Name:
			sh.buildKeys = append(sh.buildKeys, j.RightCol)
			sh.probeKeys = append(sh.probeKeys, j.LeftCol)
		}
	}
	if len(sh.buildKeys) == 0 {
		return sketchShape{}, false
	}

	// Grouping columns: rewrite fact-side group keys to their probe-side
	// join equivalents; anything else on the fact side disqualifies.
	for _, g := range q.GroupBy {
		if q.tableOf(g) != sh.fact.Name {
			sh.groupBy = append(sh.groupBy, g)
			continue
		}
		rewritten := ""
		for i, bk := range sh.buildKeys {
			if bk == g {
				rewritten = sh.probeKeys[i]
				break
			}
		}
		if rewritten == "" {
			return sketchShape{}, false
		}
		sh.groupBy = append(sh.groupBy, rewritten)
	}
	sh.factFilter = q.filterForTable(sh.fact.Name)
	if q.residualFilter() != nil {
		return sketchShape{}, false // cannot evaluate cross-table filters post-sketch
	}
	return sh, true
}

// connected reports whether the tables form a connected join graph using
// only predicates that avoid the excluded table.
func connected(tables []TableRef, joins []JoinPred, exclude string) bool {
	if len(tables) <= 1 {
		return true
	}
	adj := make(map[string][]string)
	for _, j := range joins {
		if j.LeftTable == exclude || j.RightTable == exclude {
			continue
		}
		adj[j.LeftTable] = append(adj[j.LeftTable], j.RightTable)
		adj[j.RightTable] = append(adj[j.RightTable], j.LeftTable)
	}
	seen := map[string]bool{tables[0].Name: true}
	stack := []string{tables[0].Name}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for _, t := range tables {
		if !seen[t.Name] {
			return false
		}
	}
	return true
}

// addSketchJoinCandidates generates sketch-join plans when eligible. The
// paper prioritizes sketch-joins "due to the immense ratio of performance
// gain to storage requirement" — the tuner sees that ratio through the
// sketch's tiny size.
func (p *Planner) addSketchJoinCandidates(q *Query, ps *PlanSet) {
	sh, ok := p.sketchEligible(q)
	if !ok {
		return
	}
	// Build-side subplan: σ(fact).
	var buildNode plan.Node = &plan.Scan{Table: sh.fact.Table}
	if sh.factFilter != nil {
		buildNode = &plan.Filter{Child: buildNode, Pred: sh.factFilter}
	}
	buildSig := plan.SignatureOf(buildNode)

	desc := meta.Descriptor{
		Kind:       plan.SketchJoinSynopsis,
		Sig:        buildSig,
		FilterPred: sh.factFilter,
		BuildKeys:  sh.buildKeys,
		AggCol:     sh.aggCol,
		Accuracy:   q.Accuracy,
	}
	// Width scales with the build side's distinct key count: with few keys,
	// collisions — not the εN tail bound — dominate point-query error. A
	// load factor of 1/3 with d=4 inflates ≲1% of point queries by ~N/w,
	// which stays inside the 10% group-error bar while keeping the sketch
	// ~96 bytes/key — below the fact table whenever the key fanout exceeds
	// a few rows (the paper's "few MB vs GB" regime holds at instacart's
	// ~10 items/order and ~600 purchases/product).
	distinctKeys := p.groupCountOf(sh.fact.Table, sh.buildKeys)
	w := maxInt(64, 3*distinctKeys)
	d := 4
	desc.EstSizeBytes = int64(w*d*8*2) + 128
	entry := p.Store.Intern(desc)

	// Probe-side subplan: join of the remaining (filtered) tables.
	probeQ := &Query{Tables: sh.probe, Joins: probeJoins(q, sh), Filter: probeFilter(q, sh)}
	probeNode, err := p.joinTree(probeQ, nil, true)
	if err != nil {
		return
	}

	mkNode := func(sketch *synopsesSketch) *plan.SketchJoin {
		n := &plan.SketchJoin{
			Probe:     probeNode,
			BuildDesc: sh.fact.Name,
			ProbeKeys: sh.probeKeys,
			BuildKeys: sh.buildKeys,
			AggCol:    sh.aggCol,
			GroupBy:   sh.groupBy,
			Aggs:      q.Aggs,
			CMWidth:   w,
			CMDepth:   d,
		}
		if sketch != nil {
			n.SynopsisID = sketch.id
			n.Sketch = sketch.sk
		} else {
			n.Build = buildNode
		}
		return n
	}

	// Probe-side cost, shared by both variants.
	probeEstimate := func(cost *planCost) scanEst {
		pp := &Planner{Store: p.Store, WH: p.WH, Model: p.Model, Parallelism: p.Parallelism, est: p.est, mgCache: map[string]int{}, mgEpochs: map[string]uint64{}}
		return pp.costFilteredJoinTree(probeQ, nil, cost)
	}

	// Build-inline candidate.
	buildPlan := mkNode(nil)
	var cost planCost
	cost.scanTable(sh.fact)
	cost.cpuTuples += int64(float64(sh.fact.Table.NumRows()) * 4) // d CM updates per row
	probeOut := probeEstimate(&cost)
	cost.sketchProbeWork(probeOut.rows)
	cost.aggWork(scanEst{rows: probeOut.rows, width: probeOut.width})
	cost.serializeCPU() // the whole sketch-join plan runs on the Volcano path
	ps.Candidates = append(ps.Candidates, Candidate{
		Root:    buildPlan,
		Cost:    cost.seconds(p.Model, p.Parallelism),
		Creates: []CreateSpec{{Entry: entry, SketchNode: buildPlan}},
		Desc:    fmt.Sprintf("build sketch-join on %s", sh.fact.Name),
	})

	// Hypothetical reuse cost.
	var rc planCost
	rc.warehouseBytes += desc.EstSizeBytes
	rOut := probeEstimate(&rc)
	rc.sketchProbeWork(rOut.rows)
	rc.aggWork(scanEst{rows: rOut.rows, width: rOut.width})
	rc.serializeCPU()
	reuseCost := rc.seconds(p.Model, p.Parallelism)
	if prev, ok := ps.ReuseCost[entry.Desc.ID]; !ok || reuseCost < prev {
		ps.ReuseCost[entry.Desc.ID] = reuseCost
	}

	// Reuse candidate when a matching sketch is materialized.
	req := meta.Requirements{Sig: buildSig, Filter: sh.factFilter, Accuracy: q.Accuracy}
	for _, m := range p.Store.MatchSketchJoins(req, sh.buildKeys, sh.aggCol) {
		item, _, ok := ps.wh.Get(m.Entry.Desc.ID)
		if !ok || item.Kind() != warehouse.SketchItem {
			continue
		}
		if !p.payloadCurrent(m.Entry.Desc.ID, item) {
			continue // live staleness metadata describes a newer build
		}
		// Sketches cannot be compensated, so the staleness bound applies to
		// them just like to samples (a stale sketch undercounts new rows).
		stale := m.Entry.Staleness()
		if !p.stalenessAllowed(stale) {
			continue
		}
		wasLoaded := item.Loaded()
		sk, err := item.Sketch()
		if err != nil {
			continue // backing file lost or corrupt; next round re-tastes
		}
		node := mkNode(&synopsesSketch{id: m.Entry.Desc.ID, sk: sk})
		var rcost planCost
		rcost.warehouseBytes += item.Size
		if !wasLoaded {
			rcost.loadSynopsis(item.Size)
		}
		ro := probeEstimate(&rcost)
		rcost.sketchProbeWork(ro.rows)
		rcost.aggWork(scanEst{rows: ro.rows, width: ro.width})
		rcost.serializeCPU()
		ps.Candidates = append(ps.Candidates, Candidate{
			Root: node,
			Cost: rcost.seconds(p.Model, p.Parallelism) * p.stalenessPenalty(stale),
			Uses: []uint64{m.Entry.Desc.ID},
			Desc: fmt.Sprintf("reuse sketch-join #%d on %s", m.Entry.Desc.ID, sh.fact.Name),
		})
	}
}

// synopsesSketch pairs a materialized sketch with its metadata id.
type synopsesSketch struct {
	id uint64
	sk *synopses.SketchJoin
}

// probeJoins returns the join predicates among probe tables only.
func probeJoins(q *Query, sh sketchShape) []JoinPred {
	var out []JoinPred
	for _, j := range q.Joins {
		if j.LeftTable != sh.fact.Name && j.RightTable != sh.fact.Name {
			out = append(out, j)
		}
	}
	return out
}

// probeFilter returns the filter conjuncts over probe tables.
func probeFilter(q *Query, sh sketchShape) expr.Expr {
	var keep []expr.Expr
	for _, c := range expr.Conjuncts(q.Filter) {
		if t := conjunctTable(c, q); t != "" && t != sh.fact.Name {
			keep = append(keep, c)
		}
	}
	return expr.AndAll(keep)
}
