// Package planner implements Taster's cost-based planner (paper §IV): it
// generates candidate logical plans that inject synopsis operators below
// aggregators, pushes them down under filters and joins (stratifying on
// skewed predicate columns and join keys), recognizes sketch-join
// eligibility, configures samplers from the query's accuracy requirements,
// matches subplans against materialized synopses through the metadata
// store, and costs every candidate with the simulated-cluster model.
package planner

import (
	"fmt"
	"strings"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

// TableRef names a base table participating in a query.
type TableRef struct {
	Name  string
	Table *storage.Table
}

// JoinPred is one equi-join predicate between two tables, with fully
// qualified column names.
type JoinPred struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// Canonical renders the predicate order-independently.
func (j JoinPred) Canonical() string {
	l, r := j.LeftCol, j.RightCol
	if r < l {
		l, r = r, l
	}
	return l + "=" + r
}

// Query is the bound intermediate representation the planner consumes —
// produced by the SQL binder or constructed directly by programmatic
// callers. Tables joined left-deep in the given order.
type Query struct {
	ID      int
	Tables  []TableRef
	Joins   []JoinPred
	Filter  expr.Expr // full WHERE conjunction over qualified columns
	GroupBy []string
	Aggs    []plan.AggSpec
	OrderBy []string
	Desc    []bool
	Limit   int

	Accuracy stats.AccuracySpec
	// Exact disables approximation for this query.
	Exact bool
}

// Validate sanity-checks the IR.
func (q *Query) Validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("planner: query has no tables")
	}
	if len(q.Aggs) == 0 {
		return fmt.Errorf("planner: query has no aggregates (only aggregate queries are supported)")
	}
	names := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		if t.Table == nil {
			return fmt.Errorf("planner: table %q not bound", t.Name)
		}
		names[t.Name] = true
	}
	for _, j := range q.Joins {
		if !names[j.LeftTable] || !names[j.RightTable] {
			return fmt.Errorf("planner: join %s references unknown table", j.Canonical())
		}
	}
	return nil
}

// FactTable exposes the fact-table choice to other packages (baselines).
func (q *Query) FactTable() TableRef { return q.factTable() }

// TableOf exposes column ownership resolution.
func (q *Query) TableOf(col string) string { return q.tableOf(col) }

// JoinKeysOf exposes a table's join-key columns.
func (q *Query) JoinKeysOf(name string) []string { return q.joinKeysOf(name) }

// FilterForTable exposes a table's single-table filter conjunction.
func (q *Query) FilterForTable(name string) expr.Expr { return q.filterForTable(name) }

// tableOf returns the table owning a qualified column name, or "".
func (q *Query) tableOf(col string) string {
	i := strings.IndexByte(col, '.')
	if i <= 0 {
		return ""
	}
	prefix := col[:i]
	for _, t := range q.Tables {
		if t.Name == prefix {
			return t.Name
		}
	}
	return ""
}

// ref returns the TableRef by name.
func (q *Query) ref(name string) (TableRef, bool) {
	for _, t := range q.Tables {
		if t.Name == name {
			return t, true
		}
	}
	return TableRef{}, false
}

// filterForTable returns the conjunction of filter conjuncts that reference
// only the given table's columns; ok is false when no conjunct applies.
func (q *Query) filterForTable(name string) expr.Expr {
	var keep []expr.Expr
	for _, c := range expr.Conjuncts(q.Filter) {
		if conjunctTable(c, q) == name {
			keep = append(keep, c)
		}
	}
	return expr.AndAll(keep)
}

// residualFilter returns conjuncts spanning multiple tables (applied above
// the join tree).
func (q *Query) residualFilter() expr.Expr {
	var keep []expr.Expr
	for _, c := range expr.Conjuncts(q.Filter) {
		if t := conjunctTable(c, q); t == "" {
			keep = append(keep, c)
		}
	}
	return expr.AndAll(keep)
}

// conjunctTable returns the single table a conjunct touches, or "".
func conjunctTable(c expr.Expr, q *Query) string {
	cols := c.Columns(nil)
	table := ""
	for _, col := range cols {
		t := q.tableOf(col)
		if t == "" {
			return ""
		}
		if table == "" {
			table = t
		} else if table != t {
			return ""
		}
	}
	return table
}

// joinKeysOf returns the qualified join-key columns of the given table
// across all join predicates.
func (q *Query) joinKeysOf(name string) []string {
	var out []string
	for _, j := range q.Joins {
		if j.LeftTable == name {
			out = append(out, j.LeftCol)
		}
		if j.RightTable == name {
			out = append(out, j.RightCol)
		}
	}
	return expr.DedupCols(out)
}

// factTable picks the relation "on which the aggregation takes place"
// (paper §IV-A): the table owning the first aggregate column; for pure
// COUNT(*) queries, the largest table (the side worth summarizing).
func (q *Query) factTable() TableRef {
	for _, a := range q.Aggs {
		if a.Col != "" {
			if t := q.tableOf(a.Col); t != "" {
				ref, _ := q.ref(t)
				return ref
			}
		}
	}
	best := q.Tables[0]
	for _, t := range q.Tables[1:] {
		if t.Table.NumRows() > best.Table.NumRows() {
			best = t
		}
	}
	return best
}

// aggCols returns the non-empty aggregate columns, deduped.
func (q *Query) aggCols() []string {
	var out []string
	for _, a := range q.Aggs {
		if a.Col != "" {
			out = append(out, a.Col)
		}
	}
	return expr.DedupCols(out)
}

// approximableAggs reports whether every aggregate supports HT estimation
// (MIN/MAX force exact execution, mirroring the paper's non-approximable
// query handling).
func (q *Query) approximableAggs() bool {
	for _, a := range q.Aggs {
		if !a.Kind.Approximable() {
			return false
		}
	}
	return true
}

// groupColsOn returns the grouping columns owned by the given table.
func (q *Query) groupColsOn(name string) []string {
	var out []string
	for _, g := range q.GroupBy {
		if q.tableOf(g) == name {
			out = append(out, g)
		}
	}
	return out
}

// skewedEqFilterCols returns equality-filtered columns of the table whose
// value distribution is skewed — the columns the push-down rule adds to the
// stratification set (paper §IV-A).
func (q *Query) skewedEqFilterCols(t TableRef) []string {
	f := q.filterForTable(t.Name)
	if f == nil {
		return nil
	}
	var out []string
	st := t.Table.Stats()
	for _, col := range expr.EqualityColumns(f) {
		i := t.Table.Schema().Index(col)
		if i >= 0 && st.Columns[i].Skewed {
			out = append(out, col)
		}
	}
	return out
}
