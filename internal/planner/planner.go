package planner

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
	"github.com/tasterdb/taster/internal/warehouse"
)

// CreateSpec describes a synopsis a candidate plan would materialize as a
// byproduct of its execution.
type CreateSpec struct {
	Entry *meta.Entry
	// SampleNode is the sampler operator whose output is materialized
	// (sample synopses).
	SampleNode *plan.SynopsisOp
	// SketchNode is the sketch-join node whose inline-built sketch is
	// retained (sketch synopses).
	SketchNode *plan.SketchJoin
}

// Candidate is one executable plan with its estimated cost and the synopses
// it consumes/produces.
type Candidate struct {
	Root    plan.Node
	Cost    float64 // estimated simulated seconds
	Uses    []uint64
	Creates []CreateSpec
	Desc    string
}

// PlanSet is the planner's output for one query: the exact plan plus every
// approximate candidate, and the hypothetical reuse cost per candidate
// synopsis (what the query would cost if that synopsis existed) — the
// quantity the tuner's gain function consumes.
type PlanSet struct {
	Query      *Query
	Exact      Candidate
	Candidates []Candidate
	ReuseCost  map[uint64]float64

	// wh is the immutable warehouse view this plan set was generated
	// against: every reuse candidate binds items from it, so the set is
	// internally consistent even while a background tuning round rearranges
	// the live warehouse.
	wh *warehouse.View
}

// Planner generates and costs candidate plans.
type Planner struct {
	Store *meta.Store
	WH    *warehouse.Manager
	Model storage.CostModel
	// BenefitKeep bounds the per-synopsis benefit history (≥ the tuner's
	// maximum window length).
	BenefitKeep int
	// Seed drives sampler seeds derived per synopsis.
	Seed uint64
	// Parallelism is the intra-query worker count the morsel-driven executor
	// will run pipeline shapes (scan→sample→filter→join→aggregate) with;
	// plan costing divides parallelizable CPU work by it while serial
	// Volcano work (sketch probes) stays undivided. The default 1 reproduces
	// serial estimates and keeps plan choice machine-independent; engines
	// configured with an explicit worker count set it so plan choice
	// reflects the parallel runtime.
	Parallelism float64
	// DisablePruning turns zone-map partition pruning off in scan costing,
	// mirroring exec.Context.DisablePrune: estimated and charged scan bytes
	// must describe the same executor behaviour or plan choice would chase a
	// cost the run never pays (or vice versa). Results are unaffected either
	// way; pruning is sound.
	DisablePruning bool
	// MaxStaleness is the bounded-staleness policy for synopsis reuse: a
	// materialized synopsis whose staleness (fraction of source rows it has
	// never seen) exceeds the bound is disqualified from reuse; within the
	// bound its reuse cost is inflated proportionally to its staleness so
	// fresher alternatives and refresh builds win as data evolves. 0 (the
	// default) admits only fully fresh synopses; negative disables the
	// bound entirely (reuse regardless of staleness).
	MaxStaleness float64

	est     estimator
	mu      sync.Mutex
	mgCache map[string]int
	// mgEpochs tracks the last table epoch seen per table so mgCache keys
	// of superseded versions are pruned (keys embed the epoch for
	// correctness; pruning bounds memory under continuous ingestion).
	mgEpochs map[string]uint64
}

// New returns a planner over the given metadata store and warehouse.
func New(store *meta.Store, wh *warehouse.Manager, model storage.CostModel) *Planner {
	return &Planner{
		Store:       store,
		WH:          wh,
		Model:       model,
		BenefitKeep: 64,
		Parallelism: 1,
		est:         estimator{model: model},
		mgCache:     make(map[string]int),
		mgEpochs:    make(map[string]uint64),
	}
}

// pruneStatsLocked drops cached statistics of superseded versions of t.
// It acts only when the table's epoch *advances* past the highest one seen:
// queries still planning against an older snapshot neither wipe the fresh
// entries nor regress the high-water mark (their few old-epoch keys are
// swept on the next advance), so interleaved snapshots cannot thrash the
// cache. Called with p.mu held before any mgCache lookup.
func (p *Planner) pruneStatsLocked(t *storage.Table) {
	if ep, ok := p.mgEpochs[t.Name]; ok && ep >= t.Epoch() {
		return
	}
	keep := fmt.Sprintf("%s@%d|", t.Name, t.Epoch())
	for k := range p.mgCache {
		body := strings.TrimPrefix(k, "g|")
		if strings.HasPrefix(body, t.Name+"@") && !strings.HasPrefix(body, keep) {
			delete(p.mgCache, k)
		}
	}
	p.mgEpochs[t.Name] = t.Epoch()
}

// Plan generates the candidate set for a query (paper §IV-A) against the
// warehouse's current published view.
func (p *Planner) Plan(q *Query) (*PlanSet, error) {
	return p.PlanWith(q, p.WH.View())
}

// PlanWith plans against a caller-supplied immutable warehouse view. The
// engine's lock-free serving path passes the view its published tuning
// snapshot was built from, so reuse candidates, synopsis presence and the
// tuner's keep/gain state all describe the same instant — planning never
// blocks on (or races with) a background tuning round.
func (p *Planner) PlanWith(q *Query, view *warehouse.View) (*PlanSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	exact, err := p.exactPlan(q)
	if err != nil {
		return nil, err
	}
	ps := &PlanSet{Query: q, Exact: exact, ReuseCost: make(map[uint64]float64), wh: view}
	ps.Candidates = append(ps.Candidates, exact)

	if q.Exact || !q.approximableAggs() || !q.Accuracy.Valid() {
		return ps, nil
	}

	p.addBaseSampleCandidates(q, ps)
	if len(q.Tables) > 1 {
		p.addJoinSampleCandidates(q, ps)
		p.addSketchJoinCandidates(q, ps)
	}

	// Record what this query would save for every candidate synopsis —
	// the metadata the tuner's gain function is computed from (§III, §V).
	for id, reuse := range ps.ReuseCost {
		p.Store.RecordBenefit(id, meta.QueryBenefit{
			QueryID:   q.ID,
			CostWith:  reuse,
			CostExact: exact.Cost,
		}, p.BenefitKeep)
	}
	return ps, nil
}

// samplerConfig decides between uniform and distinct sampling and sets the
// parameters for the given stratification set (paper §IV-A "Choosing and
// configuring the synopses").
type samplerConfig struct {
	kind  plan.SynopsisKind
	p     float64
	delta int
	ok    bool // false when sampling cannot pay for itself
}

// minCoverageRows is the expected post-filter sample rows per result group
// below which sampling is rejected: groups thinner than this have a real
// chance of vanishing from the result, violating the no-missing-groups
// guarantee.
const minCoverageRows = 16

// configureSampler sizes a sampler so that the query's *result groups* each
// receive ~k rows, while the (possibly wider) stratification set guarantees
// coverage. stratGroups counts distinct combinations of the stratification
// set; coverGroups/coverMinGroup describe the query's own grouping columns.
// When stratification includes join keys, stratGroups ≫ coverGroups and δ
// shrinks proportionally: δ rows per join key still covers every result
// group while thinning aggressively.
//
// sel is the combined selectivity of the filters that execute *above* the
// sampler (push-down puts the sampler below them): group coverage must hold
// on the filtered stream, so p is sized against inRows·sel and sampling is
// rejected when even the capped probability cannot keep groups populated —
// the paper's "requirements too restrictive" case falls out here.
func (p *Planner) configureSampler(q *Query, strat []string, inRows float64, sel float64, stratGroups, coverMinGroup, coverGroups int) samplerConfig {
	k := p.requiredK(q)
	if sel <= 0 {
		sel = 1
	}
	if sel > 1 {
		sel = 1
	}

	if len(strat) == 0 {
		pr, ok := stats.UniformProbability(k, int(inRows*sel))
		if !ok {
			return samplerConfig{}
		}
		return samplerConfig{kind: plan.UniformSample, p: pr, ok: true}
	}
	if coverMinGroup < 1 {
		coverMinGroup = 1
	}
	if coverGroups < 1 {
		coverGroups = 1
	}
	if stratGroups < 1 {
		stratGroups = 1
	}
	if pr, ok := stats.UniformProbability(k, int(float64(coverMinGroup)*sel)); ok {
		return samplerConfig{kind: plan.UniformSample, p: pr, ok: true}
	}
	// Distinct sampler: δ per stratification combo such that each result
	// group (≈ stratGroups/coverGroups combos) accumulates ~k rows.
	delta := int(math.Ceil(float64(k) * float64(coverGroups) / float64(stratGroups)))
	if delta < 1 {
		delta = 1
	}
	// p targets k probabilistic rows in the *smallest* result group on the
	// filtered stream — sizing against the average group would starve the
	// thin groups of skewed distributions.
	pr := float64(k) / (float64(coverMinGroup) * sel)
	if pr > 0.1 {
		pr = 0.1
	}
	if pr < 0.001 {
		pr = 0.001
	}
	// Feasibility: expected post-filter rows of the smallest result group
	// must support both coverage (absolute floor) and the error target
	// (a k-proportional bar).
	expected := pr * float64(coverMinGroup) * sel
	if expected < float64(p.feasibilityRows(k)) {
		// Paper: "Taster generates a plan without samplers if stratification
		// and accuracy requirements are so restrictive that they cannot be
		// satisfied with a reasonable sampling probability."
		return samplerConfig{}
	}
	out := sampleOutRows(inRows, false, pr, delta, stratGroups)
	if out > 0.5*inRows {
		return samplerConfig{}
	}
	return samplerConfig{kind: plan.DistinctSample, p: pr, delta: delta, ok: true}
}

// prunedScanCharge returns the scan bytes and tuples the executor will
// charge for a filtered base-table scan: partitions whose zone maps refute
// the filter are skipped by the pruned scans and cost nothing. With pruning
// disabled (or no filter) the full table is charged, exactly as before.
func (p *Planner) prunedScanCharge(t TableRef, filter expr.Expr) (bytes, rows int64) {
	tbl := t.Table
	if p.DisablePruning || filter == nil {
		return tbl.Bytes(), int64(tbl.NumRows())
	}
	sch := tbl.Schema()
	counts := tbl.PartitionRowCounts()
	for pi := 0; pi < tbl.Partitions(); pi++ {
		if expr.ZonePrunes(filter, sch, tbl.Zone(pi)) {
			continue
		}
		bytes += tbl.PartitionBytes(pi)
		rows += counts[pi]
	}
	return bytes, rows
}

// payloadCurrent reports whether the item a reuse candidate would bind from
// the plan-set's snapshot view is still the live stored copy. The staleness
// gate reads *live* metadata, which describes the latest build; if a
// background refresh swapped in a newer payload after our snapshot was
// published (or the copy was evicted), live metadata and the bound payload
// describe different builds and the gate would be meaningless — a stale
// pre-refresh sample could slip past Config.MaxStaleness on fresh
// metadata. Skipping restores the pre-snapshot gating exactly; the next
// query, planning against the republished view, reuses the fresh copy.
func (p *Planner) payloadCurrent(id uint64, bound *warehouse.Item) bool {
	cur, _, ok := p.WH.Get(id)
	return ok && cur == bound
}

// stalenessAllowed applies the bounded-staleness policy: may a synopsis
// with the given staleness fraction still serve queries?
func (p *Planner) stalenessAllowed(s float64) bool {
	if p.MaxStaleness < 0 {
		return true
	}
	return s <= p.MaxStaleness+1e-12
}

// stalenessPenalty inflates a reuse plan's effective cost for a stale (but
// still admissible) synopsis: linear in staleness, doubling the cost as the
// synopsis reaches the configured bound. The inflation is what lets the
// tuner weigh a refresh build (full cost now, fresh afterwards) against
// continued use of a drifting synopsis.
func (p *Planner) stalenessPenalty(s float64) float64 {
	if s <= 0 || p.MaxStaleness < 0 {
		return 1 // fresh, or the bound is disabled (pre-ingestion behavior)
	}
	bound := p.MaxStaleness
	if bound <= 0 {
		bound = 1
	}
	return 1 + s/bound
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// requiredK derives the per-group sample size from the query's accuracy
// spec and the worst coefficient of variation among its aggregate columns.
func (p *Planner) requiredK(q *Query) int {
	cv := 0.0
	for _, c := range q.aggCols() {
		t := q.tableOf(c)
		if ref, ok := q.ref(t); ok {
			if i := ref.Table.Schema().Index(c); i >= 0 {
				if v := ref.Table.Stats().Columns[i].CV(); v > cv {
					cv = v
				}
			}
		}
	}
	if cv == 0 {
		cv = 1 // COUNT-only queries: conservative default
	}
	return stats.RequiredRowsPerGroup(cv, q.Accuracy)
}

// feasibilityRows is the expected-rows-per-group bar a sampler (or a
// matched sample) must clear: the absolute coverage floor, or half the
// CLT requirement — whichever is higher.
func (p *Planner) feasibilityRows(k int) int {
	return maxInt(minCoverageRows, k/2)
}

// totalFilterSelectivity multiplies the per-table filter selectivities: the
// fraction of fact rows that survive the whole query's predicates through
// the joins (independence-assumption estimate).
func (p *Planner) totalFilterSelectivity(q *Query) float64 {
	sel := 1.0
	for _, t := range q.Tables {
		if f := q.filterForTable(t.Name); f != nil {
			sel *= expr.Selectivity(f, t.Table)
		}
	}
	return sel
}

// minGroupOf returns (cached) the smallest group size of the column set on
// a base table. Cache keys carry the table's epoch so ingestion invalidates
// them: post-append queries must size samplers and feasibility checks from
// the evolved statistics, not a frozen snapshot.
func (p *Planner) minGroupOf(t *storage.Table, cols []string) int {
	key := fmt.Sprintf("%s@%d|%s", t.Name, t.Epoch(), strings.Join(cols, ","))
	p.mu.Lock()
	p.pruneStatsLocked(t)
	if v, ok := p.mgCache[key]; ok {
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	v := t.MinGroupOf(cols)
	p.mu.Lock()
	p.mgCache[key] = v
	p.mu.Unlock()
	return v
}

// groupCountOf is minGroupOf's sibling for the number of groups.
func (p *Planner) groupCountOf(t *storage.Table, cols []string) int {
	key := fmt.Sprintf("g|%s@%d|%s", t.Name, t.Epoch(), strings.Join(cols, ","))
	p.mu.Lock()
	p.pruneStatsLocked(t)
	if v, ok := p.mgCache[key]; ok {
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	v := t.GroupCount(cols)
	p.mu.Lock()
	p.mgCache[key] = v
	p.mu.Unlock()
	return v
}

// addBaseSampleCandidates generates position-A plans: the sampler pushed all
// the way below the fact table's filter (paper §IV-A push-down), plus reuse
// plans for every matching materialized sample of that base relation.
func (p *Planner) addBaseSampleCandidates(q *Query, ps *PlanSet) {
	fact := q.factTable()
	factFilter := q.filterForTable(fact.Name)

	strat := expr.DedupCols(append(append(
		q.groupColsOn(fact.Name),
		q.joinKeysOf(fact.Name)...),
		q.skewedEqFilterCols(fact)...))

	inRows := float64(fact.Table.NumRows())
	stratGroups := 1
	if len(strat) > 0 {
		stratGroups = p.groupCountOf(fact.Table, strat)
	}
	// Result-group structure: every query group must end up with ~k fact
	// rows. Group columns on the fact table give exact counts; probe-side
	// group columns fan out over fact rows through the join, estimated by
	// their distinct counts.
	factCover := q.groupColsOn(fact.Name)
	coverGroups, coverMinGroup := 1, int(inRows)
	if len(factCover) > 0 {
		coverGroups = p.groupCountOf(fact.Table, factCover)
		coverMinGroup = p.minGroupOf(fact.Table, factCover)
	}
	for _, g := range q.GroupBy {
		owner := q.tableOf(g)
		if owner == fact.Name || owner == "" {
			continue
		}
		if ref, ok := q.ref(owner); ok {
			if d := ref.Table.DistinctOf(g); d > 0 {
				coverGroups *= d
			}
		}
	}
	if len(factCover) == 0 && coverGroups > 1 {
		coverMinGroup = maxInt(1, int(inRows)/coverGroups/2)
	}
	// Coverage must survive every filter in the query: probe-side filters
	// thin the fact rows through the join just like fact-side ones.
	selAll := p.totalFilterSelectivity(q)
	sel := expr.Selectivity(factFilter, fact.Table)
	cfg := p.configureSampler(q, strat, inRows, selAll, stratGroups, coverMinGroup, coverGroups)
	if !cfg.ok {
		return
	}
	groups := stratGroups

	scanSig := plan.SignatureOf(&plan.Scan{Table: fact.Table})
	desc := meta.Descriptor{
		Kind:      cfg.kind,
		Sig:       scanSig,
		StratCols: strat,
		P:         cfg.p,
		Delta:     cfg.delta,
		AggCols:   q.aggCols(),
		Accuracy:  q.Accuracy,
	}
	outRows := sampleOutRows(inRows, cfg.kind == plan.UniformSample, cfg.p, cfg.delta, groups)
	desc.EstSizeBytes = sampleBytes(outRows, fact.Table.AvgRowBytes())
	entry := p.Store.Intern(desc)

	// Build-inline candidate.
	synNode := &plan.SynopsisOp{
		Child: &plan.Scan{Table: fact.Table},
		Kind:  cfg.kind, P: cfg.p, Delta: cfg.delta,
		StratCols: strat, Accuracy: q.Accuracy,
	}
	var branch plan.Node = synNode
	if factFilter != nil {
		branch = &plan.Filter{Child: branch, Pred: factFilter}
	}
	root, err := p.joinTree(q, map[string]plan.Node{fact.Name: branch}, true)
	if err != nil {
		return
	}
	full := p.finishPlan(q, root, nil)

	var cost planCost
	overrides := map[string]scanEst{fact.Name: {rows: outRows * sel, width: fact.Table.AvgRowBytes() + 8}}
	// The sampler rides the morsel-parallel probe spine only when the fact
	// table is the join tree's leftmost leaf; otherwise the whole sampled
	// branch is a serially drained build side.
	factOnSpine := fact.Name == q.Tables[0].Name
	if factOnSpine {
		cost.scanTable(fact)
	} else {
		cost.scanTableSerial(fact)
	}
	cost.samplerWork(inRows, factOnSpine)
	out := p.costFilteredJoinTree(q, overrides, &cost)
	cost.aggWork(out)
	ps.Candidates = append(ps.Candidates, Candidate{
		Root:    full,
		Cost:    cost.seconds(p.Model, p.Parallelism),
		Creates: []CreateSpec{{Entry: entry, SampleNode: synNode}},
		Desc:    fmt.Sprintf("build %s sample on %s", cfg.kind, fact.Name),
	})

	// Hypothetical reuse cost (drives the tuner's gain for this synopsis).
	reuseCost := p.costBaseSampleReuse(q, fact, factFilter, desc.EstSizeBytes, outRows*sel)
	if prev, ok := ps.ReuseCost[entry.Desc.ID]; !ok || reuseCost < prev {
		ps.ReuseCost[entry.Desc.ID] = reuseCost
	}

	// Reuse candidates for every matching materialized sample. The match
	// requires only the stratification needed for group coverage (grouping
	// columns on the fact side plus skewed filter columns): join-key
	// stratification improves variance — Taster builds with it — but a
	// sample without it still yields unbiased HT estimates through the
	// join, so demanding it would reject BlinkDB-style QCS samples.
	requireStrat := expr.DedupCols(append(
		q.groupColsOn(fact.Name), q.skewedEqFilterCols(fact)...))
	req := meta.Requirements{
		Sig:       scanSig,
		Filter:    factFilter,
		NeedCols:  p.factNeedCols(q, fact),
		StratCols: requireStrat,
		AggCols:   p.aggColsOn(q, fact.Name),
		Accuracy:  q.Accuracy,
	}
	for _, m := range p.Store.MatchSamples(req) {
		item, inBuffer, ok := ps.wh.Get(m.Entry.Desc.ID)
		if !ok || item.Kind() != warehouse.SampleItem {
			continue
		}
		if !p.payloadCurrent(m.Entry.Desc.ID, item) {
			continue
		}
		// Bounded staleness: a sample missing too large a fraction of the
		// (evolved) base relation cannot serve within the freshness bound.
		stale := m.Entry.Staleness()
		if !p.stalenessAllowed(stale) {
			continue
		}
		// Coverage feasibility for THIS query's filters: the stored sample
		// must leave enough expected rows in the thinnest result group.
		// Item metadata carries the row count, so infeasible candidates are
		// rejected without faulting a spilled payload off disk.
		sampleRows := float64(item.Rows)
		if sampleRows*selAll/float64(coverGroups) < float64(p.feasibilityRows(p.requiredK(q))) {
			continue
		}
		// Resolve the payload last: a disk-resident sample faults in here —
		// outside every engine lock — and the fault is charged below based
		// on whether the payload was cached when this plan set bound it.
		wasLoaded := item.Loaded()
		smp, err := item.Sample()
		if err != nil {
			continue // backing file lost or corrupt; next round re-tastes
		}
		ss := &plan.SynopsisScan{
			SynopsisID: m.Entry.Desc.ID,
			Sample:     smp,
			Label:      fact.Name,
			InBuffer:   inBuffer,
		}
		var rbranch plan.Node = ss
		if m.CompensateFilter != nil {
			rbranch = &plan.Filter{Child: rbranch, Pred: m.CompensateFilter}
		}
		rroot, err := p.joinTree(q, map[string]plan.Node{fact.Name: rbranch}, true)
		if err != nil {
			continue
		}
		rfull := p.finishPlan(q, rroot, nil)
		// sampleRows computed above for the coverage check.
		var rcost planCost
		if !inBuffer {
			rcost.warehouseBytes += item.Size
			if !wasLoaded {
				rcost.loadSynopsis(item.Size)
			}
		}
		if factOnSpine {
			rcost.cpuTuples += int64(sampleRows)
		} else {
			rcost.serialTuples += int64(sampleRows)
		}
		rOverrides := map[string]scanEst{fact.Name: {rows: sampleRows * sel, width: fact.Table.AvgRowBytes() + 8}}
		rout := p.costFilteredJoinTree(q, rOverrides, &rcost)
		rcost.aggWork(rout)
		cost := rcost.seconds(p.Model, p.Parallelism) * p.stalenessPenalty(stale)
		ps.Candidates = append(ps.Candidates, Candidate{
			Root: rfull,
			Cost: cost,
			Uses: []uint64{m.Entry.Desc.ID},
			Desc: fmt.Sprintf("reuse sample #%d on %s", m.Entry.Desc.ID, fact.Name),
		})
		// Credit the stored sample with this query's savings, exactly as the
		// partitioned path below credits its set: without the benefit record
		// the synchronous tuner cannot see the query as already covered, and
		// a hypothetical build descriptor (a different intern whenever the
		// stored sampler configuration differs from the query-sized one, e.g.
		// a pinned hint) collects the full window gain as build credit and
		// outbids the cheaper reuse.
		if prev, ok := ps.ReuseCost[m.Entry.Desc.ID]; !ok || cost < prev {
			ps.ReuseCost[m.Entry.Desc.ID] = cost
		}
	}

	p.addPartitionedSampleReuse(q, ps, fact, req, sel, selAll, coverGroups, factOnSpine)
}

// addPartitionedSampleReuse adds the reuse candidate built from a complete
// set of partition-scoped samples of the fact relation: one usable sample
// per partition, merged in partition order, serves the same whole-table
// requirement as a monolithic sample (the merge is exact — see
// synopses.MergePartitionSamples). Staleness is enforced per partition:
// one partition over the bound disqualifies the set, but appends landing
// in other partitions never do. The candidate's cost penalty uses the
// build-rows-weighted mean staleness across partitions.
func (p *Planner) addPartitionedSampleReuse(q *Query, ps *PlanSet, fact TableRef, req meta.Requirements, sel, selAll float64, coverGroups int, factOnSpine bool) {
	parts := fact.Table.Partitions()
	if parts < 2 {
		return
	}
	matches := p.Store.MatchSamplePartitions(req, parts)
	if matches == nil {
		return
	}
	// Every partition sample must share one sampler configuration, or the
	// merged Horvitz-Thompson weights would mix estimators.
	first := &matches[0].Entry.Desc
	var (
		samples            []*synopses.Sample
		uses               []uint64
		totalRows          int64
		whBytes, loadBytes int64
		staleNum, staleDen float64
		inBufAll           = true
		compensate         bool
	)
	for _, m := range matches {
		d := &m.Entry.Desc
		if d.Kind != first.Kind || d.P != first.P || d.Delta != first.Delta ||
			strings.Join(d.StratCols, ",") != strings.Join(first.StratCols, ",") {
			return
		}
		item, inBuffer, ok := ps.wh.Get(d.ID)
		if !ok || item.Kind() != warehouse.SampleItem {
			return
		}
		if !p.payloadCurrent(d.ID, item) {
			return
		}
		stale := m.Entry.Staleness()
		if !p.stalenessAllowed(stale) {
			return
		}
		w := float64(d.BuildRows)
		if w <= 0 {
			w = 1
		}
		staleNum += stale * w
		staleDen += w
		totalRows += item.Rows
		if !inBuffer {
			inBufAll = false
			whBytes += item.Size
			if !item.Loaded() {
				loadBytes += item.Size
			}
		}
		smp, err := item.Sample()
		if err != nil {
			return // backing file lost or corrupt; next round re-tastes
		}
		samples = append(samples, smp)
		uses = append(uses, d.ID)
		if m.CompensateFilter != nil {
			compensate = true
		}
	}
	// Coverage feasibility on the merged sample, as for whole-table reuse.
	if float64(totalRows)*selAll/float64(coverGroups) < float64(p.feasibilityRows(p.requiredK(q))) {
		return
	}
	merged, err := synopses.MergePartitionSamples(fmt.Sprintf("partmerge_%s", fact.Name), samples)
	if err != nil {
		return
	}
	ss := &plan.SynopsisScan{
		SynopsisID: uses[0],
		Sample:     merged,
		Label:      fact.Name,
		InBuffer:   inBufAll,
	}
	var rbranch plan.Node = ss
	if compensate && req.Filter != nil {
		rbranch = &plan.Filter{Child: rbranch, Pred: req.Filter}
	}
	rroot, err := p.joinTree(q, map[string]plan.Node{fact.Name: rbranch}, true)
	if err != nil {
		return
	}
	rfull := p.finishPlan(q, rroot, nil)
	var rcost planCost
	rcost.warehouseBytes += whBytes
	rcost.loadSynopsis(loadBytes)
	sampleRows := float64(totalRows)
	if factOnSpine {
		rcost.cpuTuples += int64(sampleRows)
	} else {
		rcost.serialTuples += int64(sampleRows)
	}
	rOverrides := map[string]scanEst{fact.Name: {rows: sampleRows * sel, width: fact.Table.AvgRowBytes() + 8}}
	rout := p.costFilteredJoinTree(q, rOverrides, &rcost)
	rcost.aggWork(rout)
	stale := 0.0
	if staleDen > 0 {
		stale = staleNum / staleDen
	}
	cost := rcost.seconds(p.Model, p.Parallelism) * p.stalenessPenalty(stale)
	ps.Candidates = append(ps.Candidates, Candidate{
		Root: rfull,
		Cost: cost,
		Uses: uses,
		Desc: fmt.Sprintf("reuse %d-part sample on %s", parts, fact.Name),
	})
	// Credit the partition set with this query's savings. Without the
	// benefit records the tuner's greedy cannot see the query as already
	// covered, and a hypothetical whole-table build — a fresh descriptor,
	// never the interned twin of a partition-scoped one — collects the full
	// window gain as build credit and outbids the cheaper merged reuse.
	for _, id := range uses {
		if prev, ok := ps.ReuseCost[id]; !ok || cost < prev {
			ps.ReuseCost[id] = cost
		}
	}
}

// costBaseSampleReuse estimates what the query costs if the base sample
// existed in the warehouse.
func (p *Planner) costBaseSampleReuse(q *Query, fact TableRef, factFilter expr.Expr, sizeBytes int64, outRows float64) float64 {
	var cost planCost
	cost.warehouseBytes += sizeBytes
	if fact.Name == q.Tables[0].Name {
		cost.cpuTuples += int64(outRows)
	} else {
		cost.serialTuples += int64(outRows)
	}
	overrides := map[string]scanEst{fact.Name: {rows: math.Max(outRows, 1), width: fact.Table.AvgRowBytes() + 8}}
	out := p.costFilteredJoinTree(q, overrides, &cost)
	cost.aggWork(out)
	return cost.seconds(p.Model, p.Parallelism)
}

// factNeedCols lists the fact-table columns the query consumes.
func (p *Planner) factNeedCols(q *Query, fact TableRef) []string {
	need := append([]string(nil), q.groupColsOn(fact.Name)...)
	need = append(need, q.joinKeysOf(fact.Name)...)
	need = append(need, p.aggColsOn(q, fact.Name)...)
	if f := q.filterForTable(fact.Name); f != nil {
		need = append(need, f.Columns(nil)...)
	}
	return expr.DedupCols(need)
}

// aggColsOn returns the aggregate columns owned by the table.
func (p *Planner) aggColsOn(q *Query, table string) []string {
	var out []string
	for _, c := range q.aggCols() {
		if q.tableOf(c) == table {
			out = append(out, c)
		}
	}
	return out
}
