package planner

import (
	"strings"
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
	"github.com/tasterdb/taster/internal/warehouse"
)

// fixture: fact table "sales" (20k rows, 50 products, 10 stores) and
// dimension "products" (50 rows, 5 categories).
func salesTable() *storage.Table {
	b := storage.NewBuilder("sales", storage.Schema{
		{Name: "sales.product", Typ: storage.Int64},
		{Name: "sales.store", Typ: storage.Int64},
		{Name: "sales.amount", Typ: storage.Float64},
	})
	for i := 0; i < 20000; i++ {
		b.Int(0, int64(i%50))
		b.Int(1, int64(i%10))
		b.Float(2, float64(i%1000))
	}
	return b.Build(4)
}

func productsTable() *storage.Table {
	b := storage.NewBuilder("products", storage.Schema{
		{Name: "products.id", Typ: storage.Int64},
		{Name: "products.category", Typ: storage.Int64},
	})
	for i := 0; i < 50; i++ {
		b.Int(0, int64(i))
		b.Int(1, int64(i%5))
	}
	return b.Build(1)
}

func testPlanner() (*Planner, *meta.Store, *warehouse.Manager) {
	store := meta.NewStore()
	wh := warehouse.NewManager(64<<20, 256<<20)
	p := New(store, wh, storage.DefaultCostModel())
	return p, store, wh
}

func joinQuery() *Query {
	sales, products := salesTable(), productsTable()
	return &Query{
		Tables: []TableRef{{Name: "sales", Table: sales}, {Name: "products", Table: products}},
		Joins: []JoinPred{{
			LeftTable: "sales", LeftCol: "sales.product",
			RightTable: "products", RightCol: "products.id",
		}},
		GroupBy:  []string{"products.category"},
		Aggs:     []plan.AggSpec{{Kind: stats.Sum, Col: "sales.amount"}},
		Accuracy: stats.DefaultAccuracy,
	}
}

func singleTableQuery() *Query {
	return &Query{
		Tables:   []TableRef{{Name: "sales", Table: salesTable()}},
		GroupBy:  []string{"sales.store"},
		Aggs:     []plan.AggSpec{{Kind: stats.Avg, Col: "sales.amount"}},
		Accuracy: stats.DefaultAccuracy,
	}
}

func TestValidate(t *testing.T) {
	if err := (&Query{}).Validate(); err == nil {
		t.Fatal("empty query must fail")
	}
	q := singleTableQuery()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	q.Aggs = nil
	if err := q.Validate(); err == nil {
		t.Fatal("aggregate-free query must fail")
	}
	bad := joinQuery()
	bad.Joins[0].LeftTable = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown join table must fail")
	}
}

func TestQueryHelpers(t *testing.T) {
	q := joinQuery()
	q.Filter = &expr.Cmp{Op: expr.GT, L: &expr.Col{Name: "sales.amount"}, R: expr.Int(10)}
	if q.tableOf("sales.amount") != "sales" || q.tableOf("bogus") != "" {
		t.Fatal("tableOf")
	}
	if f := q.filterForTable("sales"); f == nil {
		t.Fatal("sales filter missing")
	}
	if f := q.filterForTable("products"); f != nil {
		t.Fatal("products filter must be empty")
	}
	if q.residualFilter() != nil {
		t.Fatal("no residual expected")
	}
	if got := q.joinKeysOf("sales"); len(got) != 1 || got[0] != "sales.product" {
		t.Fatalf("joinKeysOf = %v", got)
	}
	if q.factTable().Name != "sales" {
		t.Fatal("fact table must follow the aggregate column")
	}
	if got := q.groupColsOn("products"); len(got) != 1 {
		t.Fatalf("groupColsOn = %v", got)
	}
	if !q.approximableAggs() {
		t.Fatal("SUM is approximable")
	}
	q.Aggs = append(q.Aggs, plan.AggSpec{Kind: stats.Min, Col: "sales.amount"})
	if q.approximableAggs() {
		t.Fatal("MIN must disable approximation")
	}
}

func TestFactTableForCountStar(t *testing.T) {
	q := joinQuery()
	q.Aggs = []plan.AggSpec{{Kind: stats.Count}}
	if q.factTable().Name != "sales" {
		t.Fatal("COUNT(*) fact must be the largest table")
	}
}

func TestExactPlanShape(t *testing.T) {
	p, _, _ := testPlanner()
	q := joinQuery()
	ps, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	tree := plan.Format(ps.Exact.Root)
	if !strings.Contains(tree, "Aggregate") || !strings.Contains(tree, "Join") {
		t.Fatalf("exact plan:\n%s", tree)
	}
	if ps.Exact.Cost <= 0 {
		t.Fatal("exact cost must be positive")
	}
	if len(ps.Exact.Uses) != 0 || len(ps.Exact.Creates) != 0 {
		t.Fatal("exact plan must not involve synopses")
	}
}

func TestCandidatesIncludeBuildPlans(t *testing.T) {
	p, store, _ := testPlanner()
	ps, err := p.Plan(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	var hasBase, hasJoin, hasSketch bool
	for _, c := range ps.Candidates {
		switch {
		case strings.Contains(c.Desc, "sample on sales"):
			hasBase = true
		case strings.Contains(c.Desc, "sample on join"):
			hasJoin = true
		case strings.Contains(c.Desc, "sketch-join"):
			hasSketch = true
		}
	}
	if !hasBase || !hasJoin || !hasSketch {
		t.Fatalf("missing candidates (base=%v join=%v sketch=%v):\n%v",
			hasBase, hasJoin, hasSketch, descs(ps))
	}
	// Benefits must be recorded for every candidate synopsis.
	if len(store.Entries()) < 3 {
		t.Fatalf("interned synopses = %d", len(store.Entries()))
	}
	for _, e := range store.Entries() {
		if len(e.Benefits) == 0 {
			t.Fatalf("synopsis %s has no recorded benefit", e.Desc.Label())
		}
		if b := e.Benefits[0]; b.CostWith >= b.CostExact {
			t.Fatalf("synopsis %s: reuse cost %v must beat exact %v",
				e.Desc.Label(), b.CostWith, b.CostExact)
		}
	}
}

func descs(ps *PlanSet) []string {
	out := make([]string, len(ps.Candidates))
	for i, c := range ps.Candidates {
		out[i] = c.Desc
	}
	return out
}

func TestExactOnlyForMinMaxOrExactFlag(t *testing.T) {
	p, _, _ := testPlanner()
	q := singleTableQuery()
	q.Aggs = []plan.AggSpec{{Kind: stats.Max, Col: "sales.amount"}}
	ps, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Candidates) != 1 {
		t.Fatalf("MIN/MAX query must be exact-only, got %v", descs(ps))
	}
	q2 := singleTableQuery()
	q2.Exact = true
	ps2, _ := p.Plan(q2)
	if len(ps2.Candidates) != 1 {
		t.Fatal("Exact flag must suppress approximation")
	}
}

func TestReuseCandidateAfterMaterialization(t *testing.T) {
	p, store, wh := testPlanner()
	q := singleTableQuery()
	ps, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	// Find the base-sample create spec and materialize it manually.
	var spec *CreateSpec
	for i := range ps.Candidates {
		if len(ps.Candidates[i].Creates) == 1 {
			spec = &ps.Candidates[i].Creates[0]
			break
		}
	}
	if spec == nil {
		t.Fatalf("no build candidate in %v", descs(ps))
	}
	sample := synopses.BuildSampleFromTable("syn",
		salesTable(),
		synopses.NewDistinctSampler(spec.Entry.Desc.P, maxInt(spec.Entry.Desc.Delta, 1), []int{1}, 1),
		spec.Entry.Desc.StratCols)
	if err := wh.PutWarehouse(warehouse.NewSampleItem(spec.Entry.Desc.ID, sample)); err != nil {
		t.Fatal(err)
	}
	store.SetLocation(spec.Entry.Desc.ID, meta.LocWarehouse)
	store.SetActualSize(spec.Entry.Desc.ID, sample.SizeBytes())

	// Re-plan the same query: a reuse candidate must appear and be cheaper
	// than both exact and build.
	q2 := singleTableQuery()
	q2.ID = 1
	ps2, err := p.Plan(q2)
	if err != nil {
		t.Fatal(err)
	}
	var reuse *Candidate
	for i := range ps2.Candidates {
		if len(ps2.Candidates[i].Uses) > 0 {
			reuse = &ps2.Candidates[i]
		}
	}
	if reuse == nil {
		t.Fatalf("no reuse candidate after materialization: %v", descs(ps2))
	}
	if reuse.Cost >= ps2.Exact.Cost {
		t.Fatalf("reuse cost %v must beat exact %v", reuse.Cost, ps2.Exact.Cost)
	}
}

func TestSketchEligibility(t *testing.T) {
	p, _, _ := testPlanner()
	q := joinQuery()
	if _, ok := p.sketchEligible(q); !ok {
		t.Fatal("canonical star query must be sketch-eligible")
	}
	// Grouping on a non-key fact column disqualifies.
	q2 := joinQuery()
	q2.GroupBy = []string{"sales.store"}
	if _, ok := p.sketchEligible(q2); ok {
		t.Fatal("fact-side non-key grouping must disqualify")
	}
	// Grouping on the fact join key is rewritten to the probe side.
	q3 := joinQuery()
	q3.GroupBy = []string{"sales.product"}
	sh, ok := p.sketchEligible(q3)
	if !ok || sh.groupBy[0] != "products.id" {
		t.Fatalf("fact join-key grouping must rewrite, got %+v ok=%v", sh.groupBy, ok)
	}
	// MIN/MAX aggregates disqualify.
	q4 := joinQuery()
	q4.Aggs = []plan.AggSpec{{Kind: stats.Min, Col: "sales.amount"}}
	if _, ok := p.sketchEligible(q4); ok {
		t.Fatal("MIN must disqualify sketch-join")
	}
	// Two fact-side aggregate columns disqualify.
	q5 := joinQuery()
	q5.Aggs = []plan.AggSpec{
		{Kind: stats.Sum, Col: "sales.amount"},
		{Kind: stats.Sum, Col: "sales.store"},
	}
	if _, ok := p.sketchEligible(q5); ok {
		t.Fatal("two fact aggregate columns must disqualify")
	}
	// Single-table queries are not sketch-joins.
	if _, ok := p.sketchEligible(singleTableQuery()); ok {
		t.Fatal("single table must disqualify")
	}
}

func TestCrossJoinRejected(t *testing.T) {
	p, _, _ := testPlanner()
	q := joinQuery()
	q.Joins = nil
	if _, err := p.Plan(q); err == nil {
		t.Fatal("cross join must be rejected")
	}
}

func TestSamplerConfigurationFollowsAccuracy(t *testing.T) {
	p, _, _ := testPlanner()
	loose := p.configureSampler(singleTableQuery(), []string{"sales.store"}, 20000, 1, 10, 2000, 10)
	if !loose.ok {
		t.Fatal("loose accuracy must admit a sampler")
	}
	// Tighter accuracy needs more rows per group.
	strict := singleTableQuery()
	strict.Accuracy = stats.AccuracySpec{RelError: 0.01, Confidence: 0.99}
	sCfg := p.configureSampler(strict, []string{"sales.store"}, 20000, 1, 10, 2000, 10)
	if sCfg.ok && sCfg.kind == loose.kind && sCfg.p <= loose.p && sCfg.delta <= loose.delta {
		t.Fatalf("stricter accuracy must sample more: %+v vs %+v", sCfg, loose)
	}
	// Impossible accuracy (tiny groups) must reject sampling.
	none := p.configureSampler(strict, []string{"sales.store"}, 100, 1, 50, 2, 50)
	if none.ok {
		t.Fatal("infeasible accuracy must reject sampling")
	}
	// Join-key stratification: many strat combos, few result groups → tiny δ
	// (a smallest-group size below the uniform bar forces the distinct path).
	wide := p.configureSampler(singleTableQuery(), []string{"sales.store", "sales.product"},
		1e6, 1, 100000, 1200, 10)
	if !wide.ok || wide.kind != plan.DistinctSample {
		t.Fatalf("wide stratification should still sample: %+v", wide)
	}
	if wide.delta > 4 {
		t.Fatalf("δ must shrink with strat/cover ratio, got %d", wide.delta)
	}
}

func TestPlanCostParallelismFactor(t *testing.T) {
	m := storage.DefaultCostModel()
	c := planCost{cpuTuples: 4_000_000_000, serialTuples: 4_000_000_000, shuffleBytes: 1 << 30}
	s1 := c.seconds(m, 1)
	s8 := c.seconds(m, 8)
	if s8 >= s1 {
		t.Fatalf("parallelism must shrink pipeline CPU cost: %v vs %v", s8, s1)
	}
	// Exactly the pipeline bucket divides; serial (sketch-probe) work and
	// shuffle stay undivided.
	wantDrop := m.CPUSeconds(c.cpuTuples) * (1 - 1.0/8)
	if diff := (s1 - s8) - wantDrop; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cost drop %v, want %v (only cpuTuples divides)", s1-s8, wantDrop)
	}
	// Sub-1 factors clamp to serial.
	if c.seconds(m, 0) != s1 {
		t.Fatal("parallelism < 1 must clamp to 1")
	}

	// End to end: a higher-parallelism planner estimates every pipeline plan
	// cheaper, and relative candidate order is produced consistently.
	p1, _, _ := testPlanner()
	ps1, err := p1.Plan(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	p8, _, _ := testPlanner()
	p8.Parallelism = 8
	ps8, err := p8.Plan(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	if ps8.Exact.Cost >= ps1.Exact.Cost {
		t.Fatalf("exact plan at P=8 (%v) must be cheaper than at P=1 (%v)",
			ps8.Exact.Cost, ps1.Exact.Cost)
	}
	// Sketch-join candidates run entirely on the serial Volcano path, so
	// their cost must not shrink with the parallelism factor.
	sketchCost := func(ps *PlanSet) float64 {
		for _, c := range ps.Candidates {
			if strings.HasPrefix(c.Desc, "build sketch-join") {
				return c.Cost
			}
		}
		t.Fatal("no sketch-join candidate generated")
		return 0
	}
	if c1, c8 := sketchCost(ps1), sketchCost(ps8); c1 != c8 {
		t.Fatalf("sketch-join cost must be parallelism-invariant: %v vs %v", c1, c8)
	}
}
