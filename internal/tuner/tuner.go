// Package tuner implements Taster's continuous synopsis tuning (paper §V):
// after every query it chooses the execution plan that maximizes long-term
// throughput, and decides which synopses to keep in the quota-bounded
// warehouse by maximizing the submodular gain(Q⁺, S) with the greedy
// algorithm of Leskovec et al. (the (1−1/e)/2 guarantee comes from running
// both the plain-benefit and benefit-per-byte greedy variants and keeping
// the better set). The future workload Q⁺ is approximated by a sliding
// window Q⁻ of the last w queries whose length adapts online.
package tuner

import (
	"math"

	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/warehouse"
)

// Config controls the tuner.
type Config struct {
	// Window is the initial sliding window length w (paper default 10).
	Window int
	// Alpha is the adaptation step: candidates are ⌈(1+α)w⌉ and ⌊(1−α)w⌋.
	Alpha float64
	// Adaptive enables online window-length adaptation (§V).
	Adaptive bool
	// MaxWindow caps w (and the benefit history the tuner may consult).
	MaxWindow int
}

// DefaultConfig mirrors the paper's defaults (w=10, α=0.25, adaptive).
func DefaultConfig() Config {
	return Config{Window: 10, Alpha: 0.25, Adaptive: true, MaxWindow: 64}
}

// queryRecord is one past query in the sliding window.
type queryRecord struct {
	ID        int
	ExactCost float64
}

// Tuner owns the window state and the synopsis retention decisions.
type Tuner struct {
	cfg   Config
	store *meta.Store
	wh    *warehouse.Manager

	w          int
	history    []queryRecord // most recent last, capped at MaxWindow
	sinceAdapt int           // queries since the last window adaptation
}

// New returns a tuner over the metadata store and warehouse manager.
func New(cfg Config, store *meta.Store, wh *warehouse.Manager) *Tuner {
	if cfg.Window < 1 {
		cfg.Window = 10
	}
	if cfg.MaxWindow < cfg.Window {
		cfg.MaxWindow = cfg.Window * 4
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		cfg.Alpha = 0.25
	}
	return &Tuner{cfg: cfg, store: store, wh: wh, w: cfg.Window}
}

// Window returns the current window length (observable for experiments).
func (t *Tuner) Window() int { return t.w }

// Checkpoint snapshots the sliding-window state for persistence: the
// adapted window length, the adaptation counter, and the history records
// (oldest first) as plain observations.
func (t *Tuner) Checkpoint() (window, sinceAdapt int, history []Observation) {
	history = make([]Observation, len(t.history))
	for i, r := range t.history {
		history[i] = Observation{QueryID: r.ID, ExactCost: r.ExactCost}
	}
	return t.w, t.sinceAdapt, history
}

// Restore reinstates a checkpointed sliding window (warm restart): without
// it, the first post-restart tuning round would see an empty window, find
// no benefiting queries, and evict the entire recovered warehouse. The
// window length is clamped to [1, MaxWindow] and the history to its newest
// MaxWindow records, so a checkpoint taken under a different configuration
// degrades gracefully instead of corrupting the tuner.
func (t *Tuner) Restore(window, sinceAdapt int, history []Observation) {
	if window < 1 {
		window = 1
	}
	if window > t.cfg.MaxWindow {
		window = t.cfg.MaxWindow
	}
	t.w = window
	t.sinceAdapt = sinceAdapt
	t.history = t.history[:0]
	if len(history) > t.cfg.MaxWindow {
		history = history[len(history)-t.cfg.MaxWindow:]
	}
	for _, o := range history {
		t.history = append(t.history, queryRecord{ID: o.QueryID, ExactCost: o.ExactCost})
	}
}

// Decision is the tuner's verdict for one query.
type Decision struct {
	// Chosen is the plan to execute.
	Chosen planner.Candidate
	// Materialize is the subset of the chosen plan's creates worth keeping
	// (members of the selected synopsis set S*).
	Materialize []planner.CreateSpec
	// Evict lists materialized synopses no longer in S* (delete from both
	// tiers).
	Evict []uint64
	// Promote lists buffer-resident synopses in S* to move to the warehouse.
	Promote []uint64
	// Keep is S* itself.
	Keep map[uint64]bool
	// Gains maps each member of S* to the marginal window gain the greedy
	// attributed to it — the engine's elastic fallback eviction uses it to
	// pick lowest-gain victims when a shrink leaves overflow.
	Gains map[uint64]float64
}

// Observation is one served query's contribution to the sliding window:
// plain values, deliberately not a *planner.PlanSet — the asynchronous
// engine queues observations past the end of Execute, and retaining the
// caller's Query (which a later Execute may legally mutate in place) would
// turn the documented one-Execute-at-a-time contract into a data race.
type Observation struct {
	QueryID   int
	ExactCost float64
}

// observe folds one completed planning round into the sliding window:
// window-length adaptation (if enabled) followed by the history append.
// entries is the round's metadata snapshot — a batch shares one snapshot
// across its observations, a synchronous round reads its own.
func (t *Tuner) observe(o Observation, entries []*meta.Entry) {
	if t.cfg.Adaptive {
		t.adaptWindow(entries)
	}
	t.history = append(t.history, queryRecord{ID: o.QueryID, ExactCost: o.ExactCost})
	if len(t.history) > t.cfg.MaxWindow {
		t.history = t.history[len(t.history)-t.cfg.MaxWindow:]
	}
}

// deriveActions fills dec.Evict/dec.Promote from the selected set: evict
// every materialized synopsis outside S* (unless exempted), promote buffer
// residents inside S*. exempt lists synopses that must survive this round
// even when outside S* — plans costed on reusing them may not have executed
// yet, and deleting their input mid-flight would forfeit the reuse the
// candidate was priced on (the next round re-evaluates them unexempted).
func deriveActions(entries []*meta.Entry, keep map[uint64]bool, exempt map[uint64]bool, dec *Decision) {
	for _, e := range entries {
		id := e.Desc.ID
		if e.Desc.Location == meta.LocNone || e.Desc.Pinned {
			continue
		}
		if !keep[id] {
			if !exempt[id] {
				dec.Evict = append(dec.Evict, id)
			}
		} else if e.Desc.Location == meta.LocBuffer {
			dec.Promote = append(dec.Promote, id)
		}
	}
}

// Tune runs one synchronous tuning round (paper §V): adapt w, select S*,
// choose the plan, and derive eviction/promotion actions. The metadata
// store is read once per round — a single consistent snapshot shared by
// window adaptation and set selection — rather than re-cloned per lookup,
// keeping the serialized tuning path cheap. This is the engine's
// synchronous-mode round; the asynchronous pipeline uses TuneBatch and
// leaves plan choice to the serving path (ChoosePlan against the published
// snapshot).
func (t *Tuner) Tune(ps *planner.PlanSet) Decision {
	entries := t.store.Entries()
	t.observe(Observation{QueryID: ps.Query.ID, ExactCost: ps.Exact.Cost}, entries)

	_, quota := t.wh.Quotas()
	keep, marginal := t.selectSet(entries, t.windowRecords(t.w), quota)

	chosen := t.choosePlan(ps, keep, marginal)
	dec := Decision{Chosen: chosen, Keep: keep, Gains: marginal}
	for _, cs := range chosen.Creates {
		if keep[cs.Entry.Desc.ID] {
			dec.Materialize = append(dec.Materialize, cs)
		}
	}

	inUse := make(map[uint64]bool, len(chosen.Uses))
	for _, id := range chosen.Uses {
		inUse[id] = true
	}
	deriveActions(entries, keep, inUse, &dec)
	return dec
}

// TuneBatch runs one asynchronous tuning round over a batch of served
// queries (the engine's background service drains its observation queue
// into these). Every observation is folded into the sliding window in
// arrival order, then a single set selection covers the batch — the
// batching is what keeps tuning off the per-query critical path without
// starving the window of observations. protect lists synopsis IDs that
// recently-chosen plans read; they are exempt from eviction this round
// exactly like the synchronous round exempts the chosen plan's inputs.
// The decision carries no Chosen/Materialize: under the asynchronous
// pipeline the serving path makes those calls against the published
// snapshot (ChoosePlan).
func (t *Tuner) TuneBatch(batch []Observation, protect map[uint64]bool) Decision {
	entries := t.store.Entries()
	for _, o := range batch {
		t.observe(o, entries)
	}
	_, quota := t.wh.Quotas()
	keep, marginal := t.selectSet(entries, t.windowRecords(t.w), quota)
	dec := Decision{Keep: keep, Gains: marginal}
	deriveActions(entries, keep, protect, &dec)
	return dec
}

// Retune re-evaluates the warehouse against the (possibly changed) quota —
// the storage-elasticity entry point (paper §V). It returns the synopses to
// evict.
func (t *Tuner) Retune() Decision {
	entries := t.store.Entries()
	_, quota := t.wh.Quotas()
	keep, marginal := t.selectSet(entries, t.windowRecords(t.w), quota)
	dec := Decision{Keep: keep, Gains: marginal}
	deriveActions(entries, keep, nil, &dec)
	return dec
}

// windowRecords returns the last n history records.
func (t *Tuner) windowRecords(n int) []queryRecord {
	if n > len(t.history) {
		n = len(t.history)
	}
	return t.history[len(t.history)-n:]
}

// choosePlan scores candidates by immediate cost minus the amortized future
// gain of the reusable synopses they create (the "promote plans that
// generate reusable synopses" half of §V). The amortization divides the
// window gain by w: deferring a build to a later query forfeits roughly one
// query's worth of the synopsis' benefit, not the whole window's — counting
// the full gain would let speculative builds starve already-materialized
// synopses.
func (t *Tuner) choosePlan(ps *planner.PlanSet, keep map[uint64]bool, marginal map[uint64]float64) planner.Candidate {
	return ChoosePlan(ps, keep, marginal, t.w, t.wh.Has, t.store.Staleness)
}

// ChoosePlan is the §V plan-selection rule as a pure function of published
// tuning state, so the engine's lock-free serving path can run it against
// an immutable snapshot (keep set, marginal gains, window length, synopsis
// presence and staleness as of the last publish) without touching the
// tuner. The synchronous round funnels through it too, reading live state,
// so both paths score candidates identically.
func ChoosePlan(ps *planner.PlanSet, keep map[uint64]bool, marginal map[uint64]float64,
	w int, has func(uint64) bool, staleness func(uint64) float64) planner.Candidate {
	if w < 1 {
		w = 1
	}
	best := ps.Candidates[0]
	bestScore := math.Inf(1)
	for _, c := range ps.Candidates {
		score := c.Cost
		for _, cs := range c.Creates {
			id := cs.Entry.Desc.ID
			if !keep[id] {
				continue
			}
			credit := 0.0
			if !has(id) {
				credit = 1
			} else if s := staleness(id); s > 0 {
				// Refresh candidate: the synopsis exists but has drifted;
				// rebuilding recovers the stale fraction of its future gain.
				credit = s
			}
			score -= credit * marginal[id] / float64(w) * 2 // build now vs. ~2 queries' delay
		}
		if score < bestScore {
			bestScore = score
			best = c
		}
	}
	return best
}

// selectSet runs the Leskovec et al. cost-effective greedy: both the
// benefit-greedy and benefit-per-byte-greedy variants, returning whichever
// final set has the higher total gain. Pinned synopses are always included
// (their bytes count against the quota first).
func (t *Tuner) selectSet(entries []*meta.Entry, window []queryRecord, budget int64) (map[uint64]bool, map[uint64]float64) {
	universe, pinned := t.universe(entries, window)

	bestA, gainA, margA := t.greedy(universe, pinned, window, budget, false)
	bestB, gainB, margB := t.greedy(universe, pinned, window, budget, true)
	if gainB > gainA {
		return bestB, margB
	}
	return bestA, margA
}

// universe collects the synopses with any benefit inside the window, plus
// pinned ones.
func (t *Tuner) universe(all []*meta.Entry, window []queryRecord) (entries []*meta.Entry, pinned []*meta.Entry) {
	ids := make(map[int]bool, len(window))
	for _, r := range window {
		ids[r.ID] = true
	}
	for _, e := range all {
		if e.Desc.Pinned {
			pinned = append(pinned, e)
			continue
		}
		for _, b := range e.Benefits {
			if ids[b.QueryID] {
				entries = append(entries, e)
				break
			}
		}
	}
	return entries, pinned
}

// greedy builds S by repeatedly adding the synopsis with the highest
// marginal gain (optionally per byte) until the quota is exhausted.
func (t *Tuner) greedy(universe, pinned []*meta.Entry, window []queryRecord, budget int64, perByte bool) (map[uint64]bool, float64, map[uint64]float64) {
	keep := make(map[uint64]bool)
	marginal := make(map[uint64]float64)

	// best[q] = cheapest known cost for query q given the current S.
	best := make(map[int]float64, len(window))
	for _, r := range window {
		best[r.ID] = r.ExactCost
	}
	// A synopsis that is not yet materialized only delivers its gain after
	// some future query pays to build it; discounting its benefits keeps
	// speculative giants from evicting working, materialized synopses.
	// Materialized-but-stale synopses decay toward the same discount: the
	// unseen fraction of their source no longer contributes to answers.
	factor := func(e *meta.Entry) float64 {
		if e.Desc.Location == meta.LocNone {
			return 0.5
		}
		f := 1 - e.Staleness()
		if f < 0.5 {
			f = 0.5
		}
		return f
	}
	used := int64(0)
	addEntry := func(e *meta.Entry) float64 {
		gain := 0.0
		f := factor(e)
		for _, b := range e.Benefits {
			cur, ok := best[b.QueryID]
			if !ok {
				continue
			}
			if c := cur - (cur-b.CostWith)*f; b.CostWith < cur {
				gain += cur - c
				best[b.QueryID] = c
			}
		}
		keep[e.Desc.ID] = true
		used += e.Desc.SizeBytes()
		return gain
	}

	total := 0.0
	for _, e := range pinned {
		total += addEntry(e) // pinned are unconditional; quota may overflow by admin choice
	}

	remaining := append([]*meta.Entry(nil), universe...)
	for {
		bestIdx := -1
		bestScore := 0.0
		bestGain := 0.0
		for i, e := range remaining {
			if e == nil || keep[e.Desc.ID] {
				continue
			}
			size := e.Desc.SizeBytes()
			if size <= 0 {
				size = 1
			}
			if used+size > budget {
				continue
			}
			g := 0.0
			f := factor(e)
			for _, b := range e.Benefits {
				if cur, ok := best[b.QueryID]; ok && b.CostWith < cur {
					g += (cur - b.CostWith) * f
				}
			}
			if g <= 0 {
				continue
			}
			score := g
			if perByte {
				score = g / float64(size)
			}
			if score > bestScore {
				bestScore, bestGain, bestIdx = score, g, i
			}
		}
		if bestIdx < 0 {
			break
		}
		e := remaining[bestIdx]
		remaining[bestIdx] = nil
		got := addEntry(e)
		_ = bestGain
		marginal[e.Desc.ID] = got
		total += got
	}
	return keep, total, marginal
}

// adaptWindow implements the paper's w ∈ {⌊(1−α)w⌋, w, ⌈(1+α)w⌉} hill climb:
// it asks which window length would have produced the synopsis set that
// minimizes the estimated execution time of the queries that arrived since
// the previous invocation, and adopts it. entries is the tuning round's
// store snapshot.
func (t *Tuner) adaptWindow(entries []*meta.Entry) {
	t.sinceAdapt++
	if t.sinceAdapt < 1 || len(t.history) < 2 {
		return
	}
	t.sinceAdapt = 0
	byID := make(map[uint64]*meta.Entry, len(entries))
	for _, e := range entries {
		byID[e.Desc.ID] = e
	}

	newQuery := t.history[len(t.history)-1] // the most recent completed query
	prior := t.history[:len(t.history)-1]

	wMinus := int(math.Floor((1 - t.cfg.Alpha) * float64(t.w)))
	wPlus := int(math.Ceil((1 + t.cfg.Alpha) * float64(t.w)))
	if wMinus < 2 {
		wMinus = 2
	}
	if wPlus > t.cfg.MaxWindow {
		wPlus = t.cfg.MaxWindow
	}
	_, quota := t.wh.Quotas()

	// Evaluate the current w first: a change requires a strict improvement,
	// otherwise ties would drag w toward one end until the window lost all
	// predictive power (the failure mode the paper's Fig. 8 shows for tiny
	// fixed windows).
	bestW, bestCost := t.w, math.Inf(1)
	for _, wc := range []int{t.w, wMinus, wPlus} {
		n := wc
		if n > len(prior) {
			n = len(prior)
		}
		keep, _ := t.selectSet(entries, prior[len(prior)-n:], quota)
		cost := t.estimatedCostGiven(newQuery, keep, byID)
		if cost < bestCost-1e-12 {
			bestCost, bestW = cost, wc
		}
	}
	t.w = bestW
}

// estimatedCostGiven returns the estimated cost of the query under synopsis
// set S (exact cost when no member helps), resolving entries from the
// tuning round's snapshot.
func (t *Tuner) estimatedCostGiven(q queryRecord, keep map[uint64]bool, byID map[uint64]*meta.Entry) float64 {
	cost := q.ExactCost
	for id := range keep {
		e, ok := byID[id]
		if !ok {
			continue
		}
		if b, ok := e.BenefitFor(q.ID); ok && b.CostWith < cost {
			cost = b.CostWith
		}
	}
	return cost
}
