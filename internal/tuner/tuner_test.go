package tuner

import (
	"fmt"
	"testing"

	"github.com/tasterdb/taster/internal/meta"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/warehouse"
)

// harness: synthetic metadata with controllable benefits.
type harness struct {
	store *meta.Store
	wh    *warehouse.Manager
	t     *Tuner
}

func newHarness(quota int64, cfg Config) *harness {
	store := meta.NewStore()
	wh := warehouse.NewManager(1<<20, quota)
	return &harness{store: store, wh: wh, t: New(cfg, store, wh)}
}

// synopsis interns a descriptor of the given size with benefits for queries.
func (h *harness) synopsis(name string, size int64, benefits map[int][2]float64) *meta.Entry {
	d := meta.Descriptor{
		Kind:         plan.DistinctSample,
		Sig:          plan.Signature{Tables: []string{name}},
		EstSizeBytes: size,
		Accuracy:     stats.DefaultAccuracy,
	}
	e := h.store.Intern(d)
	for q, c := range benefits {
		h.store.RecordBenefit(e.Desc.ID, meta.QueryBenefit{QueryID: q, CostWith: c[0], CostExact: c[1]}, 64)
	}
	return e
}

func planSet(qid int, exactCost float64, cands ...planner.Candidate) *planner.PlanSet {
	exact := planner.Candidate{Cost: exactCost, Desc: "exact"}
	ps := &planner.PlanSet{
		Query:      &planner.Query{ID: qid},
		Exact:      exact,
		Candidates: append([]planner.Candidate{exact}, cands...),
	}
	return ps
}

func TestGreedyRespectsQuota(t *testing.T) {
	h := newHarness(100, DefaultConfig())
	// Three synopses: a (size 60, gain 10), b (size 60, gain 9), c (size 40, gain 8).
	a := h.synopsis("a", 60, map[int][2]float64{0: {0, 10}})
	b := h.synopsis("b", 60, map[int][2]float64{1: {1, 10}})
	c := h.synopsis("c", 40, map[int][2]float64{2: {2, 10}})
	for q := 0; q < 3; q++ {
		h.t.Tune(planSet(q, 10))
	}
	keep, _ := h.t.selectSet(h.store.Entries(), h.t.windowRecords(h.t.w), 100)
	size := int64(0)
	for id := range keep {
		e, _ := h.store.Get(id)
		size += e.Desc.SizeBytes()
	}
	if size > 100 {
		t.Fatalf("selected set size %d exceeds quota", size)
	}
	// Optimal under quota: a+c (gain 18) > a+b infeasible, b+c (17).
	if !keep[a.Desc.ID] || !keep[c.Desc.ID] || keep[b.Desc.ID] {
		t.Fatalf("greedy picked %v, want {a,c}", keep)
	}
}

func TestGreedySubmodularSharing(t *testing.T) {
	// Two synopses serving the SAME query: marginal gain of the second
	// must shrink to its incremental value only.
	h := newHarness(1000, DefaultConfig())
	a := h.synopsis("a", 10, map[int][2]float64{0: {2, 10}}) // saves 8
	b := h.synopsis("b", 10, map[int][2]float64{0: {1, 10}}) // saves 9
	h.t.Tune(planSet(0, 10))
	keep, marginal := h.t.selectSet(h.store.Entries(), h.t.windowRecords(h.t.w), 1000)
	if !keep[b.Desc.ID] {
		t.Fatal("b (bigger saving) must be selected")
	}
	// Unmaterialized synopses carry the 0.5 speculation discount: 9 × 0.5.
	if marginal[b.Desc.ID] != 4.5 {
		t.Fatalf("marginal(b) = %v", marginal[b.Desc.ID])
	}
	// Submodularity: a's marginal gain with b present must be strictly
	// below its standalone (discounted) gain of (10−2)·0.5 = 4.
	if marginal[a.Desc.ID] >= 4 {
		t.Fatalf("marginal(a) = %v, want < 4 (submodularity)", marginal[a.Desc.ID])
	}
}

func TestTuneChoosesReusePlan(t *testing.T) {
	h := newHarness(1<<20, DefaultConfig())
	e := h.synopsis("s", 100, map[int][2]float64{5: {1, 10}})
	reuse := planner.Candidate{Cost: 1, Uses: []uint64{e.Desc.ID}, Desc: "reuse"}
	dec := h.t.Tune(planSet(5, 10, reuse))
	if dec.Chosen.Desc != "reuse" {
		t.Fatalf("chose %q, want reuse", dec.Chosen.Desc)
	}
}

func TestTunePrefersBuildingKeptSynopses(t *testing.T) {
	h := newHarness(1<<20, DefaultConfig())
	// The synopsis pays off over several recent queries.
	e := h.synopsis("s", 100, map[int][2]float64{
		0: {1, 10}, 1: {1, 10}, 2: {1, 10},
	})
	for q := 0; q < 2; q++ {
		h.t.Tune(planSet(q, 10))
	}
	build := planner.Candidate{
		Cost:    11, // slightly above exact: building costs extra now
		Creates: []planner.CreateSpec{{Entry: e}},
		Desc:    "build",
	}
	dec := h.t.Tune(planSet(2, 10, build))
	if dec.Chosen.Desc != "build" {
		t.Fatalf("chose %q; future gain must justify building", dec.Chosen.Desc)
	}
	if len(dec.Materialize) != 1 {
		t.Fatal("chosen build's synopsis must be materialized")
	}
	if !dec.Keep[e.Desc.ID] {
		t.Fatal("built synopsis must be in S*")
	}
}

func TestEvictionOfUselessSynopses(t *testing.T) {
	h := newHarness(1<<20, DefaultConfig())
	// Materialized synopsis with benefits only for long-gone queries.
	old := h.synopsis("old", 100, map[int][2]float64{-50: {1, 10}})
	h.store.SetLocation(old.Desc.ID, meta.LocWarehouse)
	fresh := h.synopsis("fresh", 100, map[int][2]float64{0: {1, 10}})
	h.store.SetLocation(fresh.Desc.ID, meta.LocBuffer)

	dec := h.t.Tune(planSet(0, 10))
	if len(dec.Evict) != 1 || dec.Evict[0] != old.Desc.ID {
		t.Fatalf("evict = %v, want [old]", dec.Evict)
	}
	if len(dec.Promote) != 1 || dec.Promote[0] != fresh.Desc.ID {
		t.Fatalf("promote = %v, want [fresh]", dec.Promote)
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	h := newHarness(10, DefaultConfig()) // tiny quota
	p := h.synopsis("pinned", 1000, nil) // way over quota
	h.store.SetPinned(p.Desc.ID, true)
	h.store.SetLocation(p.Desc.ID, meta.LocWarehouse)
	dec := h.t.Tune(planSet(0, 10))
	for _, id := range dec.Evict {
		if id == p.Desc.ID {
			t.Fatal("pinned synopsis evicted")
		}
	}
	if !dec.Keep[p.Desc.ID] {
		t.Fatal("pinned synopsis must be in S*")
	}
}

func TestRetuneAfterQuotaShrink(t *testing.T) {
	h := newHarness(200, DefaultConfig())
	a := h.synopsis("a", 100, map[int][2]float64{0: {1, 10}})
	b := h.synopsis("b", 100, map[int][2]float64{1: {5, 10}})
	h.store.SetLocation(a.Desc.ID, meta.LocWarehouse)
	h.store.SetLocation(b.Desc.ID, meta.LocWarehouse)
	h.t.Tune(planSet(0, 10))
	h.t.Tune(planSet(1, 10))
	// Both fit at quota 200; shrink to 100 → keep only a (gain 9 > 5).
	h.wh.SetWarehouseQuota(100)
	dec := h.t.Retune()
	if !dec.Keep[a.Desc.ID] || dec.Keep[b.Desc.ID] {
		t.Fatalf("keep = %v, want only a", dec.Keep)
	}
	if len(dec.Evict) != 1 || dec.Evict[0] != b.Desc.ID {
		t.Fatalf("evict = %v", dec.Evict)
	}
}

func TestAdaptiveWindowMoves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 8
	h := newHarness(1000, cfg)
	// A synopsis that helps every query: larger windows see more of its
	// benefits, so w should not collapse.
	e := h.synopsis("s", 10, nil)
	for q := 0; q < 40; q++ {
		h.store.RecordBenefit(e.Desc.ID, meta.QueryBenefit{QueryID: q, CostWith: 1, CostExact: 10}, 64)
		h.t.Tune(planSet(q, 10))
	}
	if h.t.Window() < 2 || h.t.Window() > cfg.MaxWindow {
		t.Fatalf("window %d out of bounds", h.t.Window())
	}
}

func TestWindowedHistoryBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWindow = 16
	h := newHarness(1000, cfg)
	for q := 0; q < 100; q++ {
		h.t.Tune(planSet(q, 1))
	}
	if len(h.t.history) > 16 {
		t.Fatalf("history length %d exceeds MaxWindow", len(h.t.history))
	}
}

func TestConfigDefaults(t *testing.T) {
	tn := New(Config{}, meta.NewStore(), warehouse.NewManager(1, 1))
	if tn.w != 10 || tn.cfg.Alpha != 0.25 || tn.cfg.MaxWindow != 40 {
		t.Fatalf("defaults: %+v w=%d", tn.cfg, tn.w)
	}
}

func TestChoosePlanIgnoresAlreadyMaterialized(t *testing.T) {
	h := newHarness(1<<20, DefaultConfig())
	e := h.synopsis("s", 100, map[int][2]float64{0: {1, 10}})
	h.store.SetLocation(e.Desc.ID, meta.LocWarehouse)
	// Simulate it being in the warehouse manager too.
	if err := h.wh.PutWarehouse(&warehouse.Item{ID: e.Desc.ID, Size: 100}); err != nil {
		t.Fatal(err)
	}
	// A "build" plan for an already-materialized synopsis gets no bonus.
	build := planner.Candidate{Cost: 9.5, Creates: []planner.CreateSpec{{Entry: e}}, Desc: "build"}
	dec := h.t.Tune(planSet(0, 10, build))
	// build still wins on raw cost (9.5 < 10) but not via bonus; verify the
	// decision is deterministic and sane.
	if dec.Chosen.Desc != "build" {
		t.Fatalf("chose %q", dec.Chosen.Desc)
	}
}

func TestTuneNeverEvictsChosenPlanInputs(t *testing.T) {
	// Regression: a synopsis can fall out of S* (here: it no longer fits the
	// quota) in the same round its reuse plan is chosen. Evicting it would
	// delete the chosen plan's input before execution.
	h := newHarness(100, DefaultConfig())
	e := h.synopsis("s", 100, map[int][2]float64{7: {1, 10}})
	h.store.SetLocation(e.Desc.ID, meta.LocWarehouse)
	if err := h.wh.PutWarehouse(&warehouse.Item{ID: e.Desc.ID, Size: 100}); err != nil {
		t.Fatal(err)
	}
	h.wh.SetWarehouseQuota(50) // elastic shrink: the synopsis no longer fits S*
	reuse := planner.Candidate{Cost: 1, Uses: []uint64{e.Desc.ID}, Desc: "reuse"}
	dec := h.t.Tune(planSet(7, 10, reuse))
	if dec.Chosen.Desc != "reuse" {
		t.Fatalf("chose %q, want reuse", dec.Chosen.Desc)
	}
	if dec.Keep[e.Desc.ID] {
		t.Fatal("test setup: synopsis must not fit S*")
	}
	for _, id := range dec.Evict {
		if id == e.Desc.ID {
			t.Fatal("tuner evicted a synopsis the chosen plan uses")
		}
	}
	// The exemption is one round only: a later round without the reuse plan
	// evicts it normally.
	dec = h.t.Tune(planSet(8, 10))
	found := false
	for _, id := range dec.Evict {
		found = found || id == e.Desc.ID
	}
	if !found {
		t.Fatal("synopsis must be evictable once no chosen plan uses it")
	}
}

func TestChoosePlanCreditsRefreshOfStaleSynopsis(t *testing.T) {
	h := newHarness(1<<20, DefaultConfig())
	e := h.synopsis("s", 100, map[int][2]float64{
		0: {1, 10}, 1: {1, 10}, 2: {1, 10},
	})
	h.store.SetLocation(e.Desc.ID, meta.LocWarehouse)
	if err := h.wh.PutWarehouse(&warehouse.Item{ID: e.Desc.ID, Size: 100}); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2; q++ {
		h.t.Tune(planSet(q, 10))
	}
	build := planner.Candidate{Cost: 10.4, Creates: []planner.CreateSpec{{Entry: e}}, Desc: "build"}
	// Fully fresh: the already-materialized synopsis earns no build credit,
	// so the slightly-above-exact build loses.
	if dec := h.t.Tune(planSet(2, 10, build)); dec.Chosen.Desc != "exact" {
		t.Fatalf("fresh: chose %q, want exact", dec.Chosen.Desc)
	}
	// Mostly stale: the refresh recovers the stale fraction of the future
	// gain, which outweighs the small extra build cost.
	h.store.SetFreshness(e.Desc.ID, 0, map[string]int64{"s": 100})
	h.store.ObserveVersion("s", 1, 400) // staleness 0.75
	if dec := h.t.Tune(planSet(3, 10, build)); dec.Chosen.Desc != "build" {
		t.Fatalf("stale: chose %q, want refresh build", dec.Chosen.Desc)
	}
}

func TestGainNonNegative(t *testing.T) {
	h := newHarness(1000, DefaultConfig())
	// Benefit worse than exact: gain must clamp to 0, synopsis not selected.
	h.synopsis("bad", 10, map[int][2]float64{0: {20, 10}})
	h.t.Tune(planSet(0, 10))
	keep, _ := h.t.selectSet(h.store.Entries(), h.t.windowRecords(h.t.w), 1000)
	if len(keep) != 0 {
		t.Fatalf("harmful synopsis selected: %v", keep)
	}
}

func ExampleTuner_Tune() {
	store := meta.NewStore()
	wh := warehouse.NewManager(1<<20, 1<<20)
	tn := New(DefaultConfig(), store, wh)
	dec := tn.Tune(&planner.PlanSet{
		Query:      &planner.Query{ID: 0},
		Exact:      planner.Candidate{Cost: 5, Desc: "exact"},
		Candidates: []planner.Candidate{{Cost: 5, Desc: "exact"}},
	})
	fmt.Println(dec.Chosen.Desc)
	// Output: exact
}
