package expr

import (
	"math"
	"sort"

	"github.com/tasterdb/taster/internal/storage"
)

// Conjuncts splits a predicate into its top-level AND-ed parts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*Logic); ok && l.Op == And {
		return append(Conjuncts(l.L), Conjuncts(l.R)...)
	}
	return []Expr{e}
}

// AndAll combines predicates into one conjunction. nil for an empty list.
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Logic{Op: And, L: out, R: p}
		}
	}
	return out
}

// CanonicalPredicate renders a predicate with its conjuncts sorted, so that
// logically reordered but equal predicates produce identical signatures.
func CanonicalPredicate(e Expr) string {
	cs := Conjuncts(e)
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " AND "
		}
		out += p
	}
	return out
}

// colConstraint is the region a source predicate confines one column to:
// a numeric interval and/or a finite set of admissible values.
type colConstraint struct {
	hasRange       bool
	lo, hi         float64
	loOpen, hiOpen bool
	eq             []storage.Value // if non-empty: value ∈ eq (IN / string EQ)
}

func newColConstraint() *colConstraint {
	return &colConstraint{lo: math.Inf(-1), hi: math.Inf(1)}
}

func (c *colConstraint) tightenLo(v float64, open bool) {
	c.hasRange = true
	if v > c.lo || (v == c.lo && open && !c.loOpen) {
		c.lo, c.loOpen = v, open
	}
}

func (c *colConstraint) tightenHi(v float64, open bool) {
	c.hasRange = true
	if v < c.hi || (v == c.hi && open && !c.hiOpen) {
		c.hi, c.hiOpen = v, open
	}
}

// simpleConjunct is a conjunct of the form col ⟨op⟩ literal or col IN (...).
type simpleConjunct struct {
	col  string
	op   CmpOp
	val  storage.Value
	in   []storage.Value
	isIn bool
}

// asSimple recognizes col-op-const conjuncts (flipping const-op-col).
func asSimple(e Expr) (simpleConjunct, bool) {
	switch t := e.(type) {
	case *Cmp:
		if c, ok := t.L.(*Col); ok {
			if k, ok := t.R.(*Const); ok {
				return simpleConjunct{col: c.Name, op: t.Op, val: k.Val}, true
			}
		}
		if k, ok := t.L.(*Const); ok {
			if c, ok := t.R.(*Col); ok {
				// const op col  ⇒  col flipped-op const
				flip := [...]CmpOp{EQ, NE, GT, GE, LT, LE}[t.Op]
				return simpleConjunct{col: c.Name, op: flip, val: k.Val}, true
			}
		}
	case *In:
		if c, ok := t.E.(*Col); ok {
			return simpleConjunct{col: c.Name, isIn: true, in: t.Vals}, true
		}
	}
	return simpleConjunct{}, false
}

// constraintsOf folds the recognizable conjuncts of a predicate into
// per-column constraints. Unrecognized conjuncts are dropped, which is sound
// for implication checking: ignoring information from the antecedent can only
// make implication harder to prove, never easier.
func constraintsOf(e Expr) map[string]*colConstraint {
	out := make(map[string]*colConstraint)
	for _, cj := range Conjuncts(e) {
		sc, ok := asSimple(cj)
		if !ok {
			continue
		}
		cc := out[sc.col]
		if cc == nil {
			cc = newColConstraint()
			out[sc.col] = cc
		}
		if sc.isIn {
			cc.eq = mergeEqSets(cc.eq, sc.in)
			continue
		}
		switch sc.op {
		case EQ:
			if sc.val.Typ.Numeric() {
				v := sc.val.AsFloat()
				cc.tightenLo(v, false)
				cc.tightenHi(v, false)
			}
			cc.eq = mergeEqSets(cc.eq, []storage.Value{sc.val})
		case LT:
			if sc.val.Typ.Numeric() {
				cc.tightenHi(sc.val.AsFloat(), true)
			}
		case LE:
			if sc.val.Typ.Numeric() {
				cc.tightenHi(sc.val.AsFloat(), false)
			}
		case GT:
			if sc.val.Typ.Numeric() {
				cc.tightenLo(sc.val.AsFloat(), true)
			}
		case GE:
			if sc.val.Typ.Numeric() {
				cc.tightenLo(sc.val.AsFloat(), false)
			}
		}
	}
	return out
}

// mergeEqSets intersects two admissible-value sets; a nil set means
// "unconstrained", so the other set wins.
func mergeEqSets(a, b []storage.Value) []storage.Value {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	var out []storage.Value
	for _, x := range a {
		for _, y := range b {
			if x.Equal(y) {
				out = append(out, x)
				break
			}
		}
	}
	if out == nil {
		out = []storage.Value{} // contradictory; empty but non-nil
	}
	return out
}

// Implies reports whether predicate a logically implies predicate b, using a
// conservative, sound analysis over col-op-const conjuncts. nil b is
// TRUE (always implied); nil a implies only nil b.
//
// This is the subsumption direction the planner needs: a stored synopsis with
// filter F_s can serve a query with filter F_q when F_q ⇒ F_s (the synopsis
// retained at least the rows the query needs; a compensating filter removes
// the rest).
func Implies(a, b Expr) bool {
	if b == nil {
		return true
	}
	if a == nil {
		return false
	}
	if CanonicalPredicate(a) == CanonicalPredicate(b) {
		return true
	}
	src := constraintsOf(a)
	aRendered := make(map[string]bool)
	for _, cj := range Conjuncts(a) {
		aRendered[cj.String()] = true
	}
	for _, cj := range Conjuncts(b) {
		if aRendered[cj.String()] {
			continue // identical conjunct present in a
		}
		sc, ok := asSimple(cj)
		if !ok {
			return false // cannot reason about this target conjunct
		}
		cc := src[sc.col]
		if cc == nil || !impliedBy(cc, sc) {
			return false
		}
	}
	return true
}

// impliedBy reports whether every value admitted by cc satisfies sc.
func impliedBy(cc *colConstraint, sc simpleConjunct) bool {
	if sc.isIn {
		return eqSubset(cc.eq, sc.in)
	}
	switch sc.op {
	case EQ:
		if eqSubset(cc.eq, []storage.Value{sc.val}) {
			return true
		}
		return sc.val.Typ.Numeric() && cc.hasRange &&
			cc.lo == cc.hi && !cc.loOpen && !cc.hiOpen && cc.lo == sc.val.AsFloat()
	case NE:
		if len(cc.eq) > 0 {
			for _, v := range cc.eq {
				if v.Equal(sc.val) {
					return false
				}
			}
			return true
		}
		if sc.val.Typ.Numeric() && cc.hasRange {
			v := sc.val.AsFloat()
			return v < cc.lo || v > cc.hi ||
				(v == cc.lo && cc.loOpen) || (v == cc.hi && cc.hiOpen)
		}
		return false
	case LT, LE, GT, GE:
		if !sc.val.Typ.Numeric() {
			return false
		}
		v := sc.val.AsFloat()
		if len(cc.eq) > 0 && allEqNumericSatisfy(cc.eq, sc.op, v) {
			return true
		}
		if !cc.hasRange {
			return false
		}
		switch sc.op {
		case LT:
			return cc.hi < v || (cc.hi == v && cc.hiOpen)
		case LE:
			return cc.hi <= v
		case GT:
			return cc.lo > v || (cc.lo == v && cc.loOpen)
		case GE:
			return cc.lo >= v
		}
	}
	return false
}

func allEqNumericSatisfy(eq []storage.Value, op CmpOp, v float64) bool {
	if len(eq) == 0 {
		return false
	}
	for _, e := range eq {
		if !e.Typ.Numeric() {
			return false
		}
		x := e.AsFloat()
		ok := false
		switch op {
		case LT:
			ok = x < v
		case LE:
			ok = x <= v
		case GT:
			ok = x > v
		case GE:
			ok = x >= v
		}
		if !ok {
			return false
		}
	}
	return true
}

// eqSubset reports whether sub is a non-empty set entirely contained in sup.
func eqSubset(sub, sup []storage.Value) bool {
	if len(sub) == 0 {
		return false
	}
	for _, x := range sub {
		found := false
		for _, y := range sup {
			if x.Equal(y) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// EqualityColumns returns the columns constrained by equality or IN
// conjuncts in the predicate — the candidates the planner adds to the
// stratification set when their distribution is skewed (paper §IV-A).
func EqualityColumns(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	for _, cj := range Conjuncts(e) {
		sc, ok := asSimple(cj)
		if !ok {
			continue
		}
		if (sc.isIn || sc.op == EQ) && !seen[sc.col] {
			seen[sc.col] = true
			out = append(out, sc.col)
		}
	}
	sort.Strings(out)
	return out
}

// DedupCols returns the sorted, de-duplicated column list.
func DedupCols(cols []string) []string {
	seen := make(map[string]bool, len(cols))
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Selectivity estimates the fraction of rows of tbl satisfying the
// predicate's recognizable conjuncts, assuming independence. Used by the
// planner's cardinality model.
func Selectivity(e Expr, tbl *storage.Table) float64 {
	if e == nil {
		return 1
	}
	sel := 1.0
	st := tbl.Stats()
	for _, cj := range Conjuncts(e) {
		sc, ok := asSimple(cj)
		if !ok {
			sel *= 0.5 // unknown conjunct: textbook default
			continue
		}
		i := tbl.Schema().Index(sc.col)
		if i < 0 {
			continue // predicate on a column from another relation
		}
		cs := st.Columns[i]
		switch {
		case sc.isIn:
			if cs.Distinct > 0 {
				sel *= math.Min(1, float64(len(sc.in))/float64(cs.Distinct))
			}
		case sc.op == EQ:
			if cs.Distinct > 0 {
				sel *= 1 / float64(cs.Distinct)
			}
		case sc.op == NE:
			if cs.Distinct > 0 {
				sel *= 1 - 1/float64(cs.Distinct)
			}
		default: // range predicate on numeric column
			if sc.val.Typ.Numeric() && cs.Max > cs.Min {
				v := sc.val.AsFloat()
				frac := (v - cs.Min) / (cs.Max - cs.Min)
				frac = math.Max(0, math.Min(1, frac))
				if sc.op == GT || sc.op == GE {
					frac = 1 - frac
				}
				sel *= frac
			} else {
				sel *= 0.3
			}
		}
	}
	return math.Max(sel, 1e-9)
}
