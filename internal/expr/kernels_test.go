package expr

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/tasterdb/taster/internal/storage"
)

// kernelSchema covers every kernel-compilable column type.
var kernelSchema = storage.Schema{
	{Name: "i", Typ: storage.Int64},
	{Name: "f", Typ: storage.Float64},
	{Name: "s", Typ: storage.String},
	{Name: "b", Typ: storage.Bool},
}

// kernelBatch builds a batch over kernelSchema from parallel value slices.
func kernelBatch(is []int64, fs []float64, ss []string, bs []bool) *storage.Batch {
	b := storage.NewBatch(kernelSchema, len(is))
	b.Vecs[0].I64 = append(b.Vecs[0].I64, is...)
	b.Vecs[1].F64 = append(b.Vecs[1].F64, fs...)
	b.Vecs[2].Str = append(b.Vecs[2].Str, ss...)
	b.Vecs[3].B = append(b.Vecs[3].B, bs...)
	return b
}

// edgeBatch is the standing edge-case fixture: NaN, ±Inf, ±0, empty strings,
// int64 values beyond float64's 2^53 integer range.
func edgeBatch() *storage.Batch {
	return kernelBatch(
		[]int64{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 53, (1 << 53) + 1, 42},
		[]float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), 1.5, -1.5, 42},
		[]string{"", "a", "ab", "b", "", "zzz", "a\x00b", "42"},
		[]bool{true, false, true, false, true, false, true, false},
	)
}

// oracleSelect is the interpreted reference: Eval's boolean vector restricted
// to the candidate rows.
func oracleSelect(t testing.TB, e Expr, b *storage.Batch, in []int32) []int32 {
	t.Helper()
	v, err := e.Eval(b)
	if err != nil {
		t.Fatalf("oracle Eval(%s): %v", e, err)
	}
	var out []int32
	if in == nil {
		for i, ok := range v.B {
			if ok {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range in {
		if v.B[i] {
			out = append(out, i)
		}
	}
	return out
}

// checkKernel compiles e and compares Refine against the oracle, both dense
// (in = nil) and under a sparse candidate selection.
func checkKernel(t testing.TB, e Expr, b *storage.Batch) {
	t.Helper()
	f, ok := CompileFilter(e, b.Schema)
	if !ok {
		t.Fatalf("CompileFilter(%s): not compilable", e)
	}
	var sc Scratch
	sparse := make([]int32, 0, b.Len())
	for i := 0; i < b.Len(); i += 2 {
		sparse = append(sparse, int32(i))
	}
	for _, in := range [][]int32{nil, sparse, {}} {
		got := f.Refine(b, in, nil, &sc)
		want := oracleSelect(t, e, b, in)
		if len(got) != len(want) {
			t.Fatalf("%s (in=%v): kernel %v, oracle %v", e, in, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("%s (in=%v): kernel %v, oracle %v", e, in, got, want)
			}
		}
	}
}

func TestKernelCmpAllOpsAllTypes(t *testing.T) {
	b := edgeBatch()
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	for _, op := range ops {
		// Every column type, constant on the right.
		checkKernel(t, &Cmp{Op: op, L: &Col{Name: "i"}, R: Int(1)}, b)
		checkKernel(t, &Cmp{Op: op, L: &Col{Name: "f"}, R: Float(0)}, b)
		checkKernel(t, &Cmp{Op: op, L: &Col{Name: "f"}, R: Float(math.NaN())}, b)
		checkKernel(t, &Cmp{Op: op, L: &Col{Name: "s"}, R: Str("a")}, b)
		checkKernel(t, &Cmp{Op: op, L: &Col{Name: "s"}, R: Str("")}, b)
		checkKernel(t, &Cmp{Op: op, L: &Col{Name: "b"}, R: &Const{Val: storage.BoolValue(true)}}, b)
		// Mixed numeric: i64 column vs float constant (per-row coercion — the
		// 2^53+1 row distinguishes integer from float compare), f64 column vs
		// int constant.
		checkKernel(t, &Cmp{Op: op, L: &Col{Name: "i"}, R: Float(9007199254740992)}, b)
		checkKernel(t, &Cmp{Op: op, L: &Col{Name: "f"}, R: Int(1)}, b)
		// Constant on the left (mirrored operator).
		checkKernel(t, &Cmp{Op: op, L: Int(1), R: &Col{Name: "i"}}, b)
		checkKernel(t, &Cmp{Op: op, L: Float(1.5), R: &Col{Name: "f"}}, b)
		checkKernel(t, &Cmp{Op: op, L: Str("ab"), R: &Col{Name: "s"}}, b)
	}
}

func TestKernelNotIsComplementNotNegation(t *testing.T) {
	b := edgeBatch()
	// NOT(f < 5) must keep the NaN row; f >= 5 would drop it. The oracle
	// agrees by construction; this test additionally pins the row set.
	e := &Not{E: &Cmp{Op: LT, L: &Col{Name: "f"}, R: Float(5)}}
	checkKernel(t, e, b)
	f, _ := CompileFilter(e, b.Schema)
	var sc Scratch
	got := f.Refine(b, nil, nil, &sc)
	hasNaN := false
	for _, i := range got {
		if math.IsNaN(b.Vecs[1].F64[i]) {
			hasNaN = true
		}
	}
	if !hasNaN {
		t.Fatalf("NOT(f < 5) dropped the NaN row: %v", got)
	}
}

func TestKernelConnectives(t *testing.T) {
	b := edgeBatch()
	lt := &Cmp{Op: LT, L: &Col{Name: "i"}, R: Int(50)}
	gt := &Cmp{Op: GT, L: &Col{Name: "f"}, R: Float(0)}
	eq := &Cmp{Op: EQ, L: &Col{Name: "s"}, R: Str("")}
	checkKernel(t, &Logic{Op: And, L: lt, R: gt}, b)
	checkKernel(t, &Logic{Op: Or, L: lt, R: gt}, b)
	checkKernel(t, &Logic{Op: And, L: &Logic{Op: And, L: lt, R: gt}, R: eq}, b)
	checkKernel(t, &Logic{Op: Or, L: &Logic{Op: Or, L: lt, R: gt}, R: eq}, b)
	checkKernel(t, &Logic{Op: Or, L: &Logic{Op: And, L: lt, R: gt}, R: &Not{E: eq}}, b)
	checkKernel(t, &Not{E: &Logic{Op: Or, L: lt, R: &Not{E: gt}}}, b)
}

func TestKernelIn(t *testing.T) {
	b := edgeBatch()
	checkKernel(t, &In{E: &Col{Name: "i"}, Vals: []storage.Value{
		storage.IntValue(1), storage.IntValue(42), storage.FloatValue(0), // float never matches int64
	}}, b)
	checkKernel(t, &In{E: &Col{Name: "f"}, Vals: []storage.Value{
		storage.FloatValue(math.NaN()), storage.FloatValue(1.5), storage.IntValue(42),
	}}, b)
	checkKernel(t, &In{E: &Col{Name: "s"}, Vals: []storage.Value{
		storage.StringValue(""), storage.StringValue("zzz"),
	}}, b)
	checkKernel(t, &In{E: &Col{Name: "b"}, Vals: []storage.Value{
		storage.BoolValue(false),
	}}, b)
	checkKernel(t, &In{E: &Col{Name: "i"}, Vals: nil}, b)
}

func TestKernelCompilableBoundary(t *testing.T) {
	s := kernelSchema
	compilable := []Expr{
		&Cmp{Op: LT, L: &Col{Name: "f"}, R: Float(1)},
		&Logic{Op: And, L: &Cmp{Op: LT, L: &Col{Name: "i"}, R: Int(1)}, R: &Cmp{Op: EQ, L: &Col{Name: "s"}, R: Str("x")}},
		&Not{E: &In{E: &Col{Name: "i"}, Vals: []storage.Value{storage.IntValue(1)}}},
	}
	for _, e := range compilable {
		if !KernelCompilable(e, s) {
			t.Errorf("want compilable: %s", e)
		}
	}
	notCompilable := []Expr{
		&Cmp{Op: LT, L: &Col{Name: "i"}, R: &Col{Name: "f"}},                     // col vs col
		&Cmp{Op: LT, L: &Bin{Op: Add, L: &Col{Name: "i"}, R: Int(1)}, R: Int(2)}, // arithmetic operand
		&Cmp{Op: LT, L: &Col{Name: "missing"}, R: Int(1)},                        // unknown column
		&Cmp{Op: EQ, L: &Col{Name: "s"}, R: Int(1)},                              // type mismatch
		&In{E: &Bin{Op: Add, L: &Col{Name: "i"}, R: Int(1)}, Vals: nil},          // IN over expression
		&Logic{Op: And, L: &Cmp{Op: LT, L: &Col{Name: "i"}, R: Int(1)}, R: &Cmp{Op: LT, L: &Col{Name: "i"}, R: &Col{Name: "i"}}},
	}
	for _, e := range notCompilable {
		if KernelCompilable(e, s) {
			t.Errorf("want not compilable: %s", e)
		}
	}
}

// TestKernelScratchReuse exercises buffer recycling across batches and nested
// connectives (the Scratch free list must not alias live selections).
func TestKernelScratchReuse(t *testing.T) {
	b := edgeBatch()
	e := &Logic{Op: Or,
		L: &Logic{Op: And,
			L: &Cmp{Op: GE, L: &Col{Name: "i"}, R: Int(0)},
			R: &Not{E: &Cmp{Op: EQ, L: &Col{Name: "s"}, R: Str("")}}},
		R: &Logic{Op: Or,
			L: &Cmp{Op: NE, L: &Col{Name: "f"}, R: Float(42)},
			R: &In{E: &Col{Name: "b"}, Vals: []storage.Value{storage.BoolValue(true)}}},
	}
	f, ok := CompileFilter(e, b.Schema)
	if !ok {
		t.Fatal("not compilable")
	}
	var sc Scratch
	want := oracleSelect(t, e, b, nil)
	for pass := 0; pass < 5; pass++ {
		got := f.Refine(b, nil, nil, &sc)
		if len(got) != len(want) {
			t.Fatalf("pass %d: kernel %v, oracle %v", pass, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("pass %d: kernel %v, oracle %v", pass, got, want)
			}
		}
	}
}

// ---- fuzz targets: each typed kernel vs the scalar Eval oracle ----

// fuzzFloats decodes a byte string into float64s, folding some bit patterns
// onto the IEEE specials so NaN/±Inf appear far more often than raw bit
// decoding would produce.
func fuzzFloats(data []byte) []float64 {
	var out []float64
	for len(data) >= 8 {
		bits := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		switch bits % 7 {
		case 0:
			out = append(out, math.NaN())
		case 1:
			out = append(out, math.Inf(1))
		case 2:
			out = append(out, math.Inf(-1))
		case 3:
			out = append(out, math.Copysign(0, -1))
		default:
			out = append(out, math.Float64frombits(bits))
		}
	}
	if len(out) == 0 {
		out = []float64{0}
	}
	return out
}

func fuzzOp(b byte) CmpOp { return CmpOp(b % 6) }

func FuzzKernelCmpF64(f *testing.F) {
	f.Add(uint64(math.Float64bits(1.5)), byte(2), []byte("\x00\x01\x02\x03\x04\x05\x06\x07"))
	f.Add(math.Float64bits(math.NaN()), byte(1), make([]byte, 64))
	f.Add(math.Float64bits(math.Inf(-1)), byte(5), []byte("edgecasedgecase!"))
	f.Fuzz(func(t *testing.T, cbits uint64, opb byte, data []byte) {
		fs := fuzzFloats(data)
		n := len(fs)
		b := kernelBatch(make([]int64, n), fs, make([]string, n), make([]bool, n))
		c := math.Float64frombits(cbits)
		checkKernel(t, &Cmp{Op: fuzzOp(opb), L: &Col{Name: "f"}, R: Float(c)}, b)
		checkKernel(t, &Cmp{Op: fuzzOp(opb), L: Float(c), R: &Col{Name: "f"}}, b)
		checkKernel(t, &In{E: &Col{Name: "f"}, Vals: []storage.Value{storage.FloatValue(c), storage.FloatValue(fs[0])}}, b)
	})
}

func FuzzKernelCmpI64(f *testing.F) {
	f.Add(int64(0), byte(0), []byte("\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Add(int64(math.MinInt64), byte(4), make([]byte, 32))
	f.Fuzz(func(t *testing.T, c int64, opb byte, data []byte) {
		var is []int64
		for len(data) >= 8 {
			is = append(is, int64(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		if len(is) == 0 {
			is = []int64{0}
		}
		n := len(is)
		b := kernelBatch(is, make([]float64, n), make([]string, n), make([]bool, n))
		checkKernel(t, &Cmp{Op: fuzzOp(opb), L: &Col{Name: "i"}, R: Int(c)}, b)
		// Mixed numeric: the same constant as a float, exercising coercion
		// above 2^53.
		checkKernel(t, &Cmp{Op: fuzzOp(opb), L: &Col{Name: "i"}, R: Float(float64(c))}, b)
		checkKernel(t, &In{E: &Col{Name: "i"}, Vals: []storage.Value{storage.IntValue(c), storage.IntValue(is[0])}}, b)
	})
}

func FuzzKernelCmpStr(f *testing.F) {
	f.Add("", byte(0), "a\x00b\xffc")
	f.Add("needle", byte(3), "")
	f.Fuzz(func(t *testing.T, c string, opb byte, data string) {
		// Split data into short strings on a fixed stride, keeping empties.
		var ss []string
		for len(data) > 3 {
			ss = append(ss, data[:3])
			data = data[3:]
		}
		ss = append(ss, data, "")
		n := len(ss)
		b := kernelBatch(make([]int64, n), make([]float64, n), ss, make([]bool, n))
		checkKernel(t, &Cmp{Op: fuzzOp(opb), L: &Col{Name: "s"}, R: Str(c)}, b)
		checkKernel(t, &Cmp{Op: fuzzOp(opb), L: Str(c), R: &Col{Name: "s"}}, b)
		checkKernel(t, &In{E: &Col{Name: "s"}, Vals: []storage.Value{storage.StringValue(c), storage.StringValue(ss[0])}}, b)
	})
}

// FuzzKernelTree drives whole compiled programs — connective nesting, NOT
// complements, conjunct fusion — against the interpreter on an edge-heavy
// batch.
func FuzzKernelTree(f *testing.F) {
	f.Add(uint64(0x1234), byte(3), int64(7), uint64(math.Float64bits(2.5)))
	f.Add(uint64(0xffffffff), byte(6), int64(-1), math.Float64bits(math.NaN()))
	f.Fuzz(func(t *testing.T, shape uint64, depth byte, ic int64, fbits uint64) {
		b := edgeBatch()
		fc := math.Float64frombits(fbits)
		// Build a random tree: each shape bit pair picks a node kind.
		var build func(d int) Expr
		build = func(d int) Expr {
			k := shape & 3
			shape >>= 2
			if d <= 0 || shape == 0 {
				leaves := []Expr{
					&Cmp{Op: fuzzOp(byte(shape)), L: &Col{Name: "i"}, R: Int(ic)},
					&Cmp{Op: fuzzOp(byte(shape >> 1)), L: &Col{Name: "f"}, R: Float(fc)},
					&Cmp{Op: fuzzOp(byte(shape >> 2)), L: &Col{Name: "s"}, R: Str("a")},
					&In{E: &Col{Name: "f"}, Vals: []storage.Value{storage.FloatValue(fc)}},
				}
				return leaves[k]
			}
			switch k {
			case 0:
				return &Logic{Op: And, L: build(d - 1), R: build(d - 1)}
			case 1:
				return &Logic{Op: Or, L: build(d - 1), R: build(d - 1)}
			case 2:
				return &Not{E: build(d - 1)}
			default:
				return &Cmp{Op: fuzzOp(byte(shape)), L: &Col{Name: "f"}, R: Float(fc)}
			}
		}
		checkKernel(t, build(int(depth%4)), b)
	})
}
