package expr

import (
	"testing"
	"testing/quick"

	"github.com/tasterdb/taster/internal/storage"
)

func testBatch() *storage.Batch {
	schema := storage.Schema{
		{Name: "t.a", Typ: storage.Int64},
		{Name: "t.b", Typ: storage.Float64},
		{Name: "t.s", Typ: storage.String},
	}
	b := storage.NewBatch(schema, 4)
	for i := 0; i < 4; i++ {
		b.Vecs[0].Append(storage.IntValue(int64(i)))
		b.Vecs[1].Append(storage.FloatValue(float64(i) * 2.5))
		b.Vecs[2].Append(storage.StringValue(string(rune('a' + i))))
	}
	return b
}

func TestColAndConstEval(t *testing.T) {
	b := testBatch()
	v, err := (&Col{Name: "a"}).Eval(b)
	if err != nil || v.I64[3] != 3 {
		t.Fatalf("col eval: %v %v", v, err)
	}
	cv, err := Int(7).Eval(b)
	if err != nil || cv.Len() != 4 || cv.I64[0] != 7 {
		t.Fatalf("const eval: %v %v", cv, err)
	}
	if _, err := (&Col{Name: "zzz"}).Eval(b); err == nil {
		t.Fatal("want error for unknown column")
	}
}

func TestArithmetic(t *testing.T) {
	b := testBatch()
	e := &Bin{Op: Add, L: &Col{Name: "a"}, R: Int(10)}
	v, err := e.Eval(b)
	if err != nil || v.Typ != storage.Int64 || v.I64[2] != 12 {
		t.Fatalf("int add: %v %v", v, err)
	}
	e2 := &Bin{Op: Mul, L: &Col{Name: "a"}, R: &Col{Name: "b"}}
	v2, err := e2.Eval(b)
	if err != nil || v2.Typ != storage.Float64 || v2.F64[2] != 10 {
		t.Fatalf("mixed mul: %v %v", v2, err)
	}
	e3 := &Bin{Op: Div, L: Int(7), R: Int(2)}
	v3, err := e3.Eval(b)
	if err != nil || v3.Typ != storage.Float64 || v3.F64[0] != 3.5 {
		t.Fatalf("div promotes: %v %v", v3, err)
	}
	// Division by zero yields 0 rather than a panic.
	v4, err := (&Bin{Op: Div, L: Int(1), R: Int(0)}).Eval(b)
	if err != nil || v4.F64[0] != 0 {
		t.Fatalf("div by zero: %v %v", v4, err)
	}
	if _, err := (&Bin{Op: Add, L: &Col{Name: "s"}, R: Int(1)}).Type(b.Schema); err == nil {
		t.Fatal("want type error adding string")
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	b := testBatch()
	ge := &Cmp{Op: GE, L: &Col{Name: "a"}, R: Int(2)}
	idx, err := EvalBool(ge, b)
	if err != nil || len(idx) != 2 || idx[0] != 2 {
		t.Fatalf("GE: %v %v", idx, err)
	}
	sEq := &Cmp{Op: EQ, L: &Col{Name: "s"}, R: Str("b")}
	idx, _ = EvalBool(sEq, b)
	if len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("string EQ: %v", idx)
	}
	both := &Logic{Op: And, L: ge, R: &Cmp{Op: LT, L: &Col{Name: "b"}, R: Float(7)}}
	idx, _ = EvalBool(both, b)
	if len(idx) != 1 || idx[0] != 2 {
		t.Fatalf("AND: %v", idx)
	}
	either := &Logic{Op: Or, L: sEq, R: &Cmp{Op: EQ, L: &Col{Name: "a"}, R: Int(0)}}
	idx, _ = EvalBool(either, b)
	if len(idx) != 2 {
		t.Fatalf("OR: %v", idx)
	}
	neg := &Not{E: ge}
	idx, _ = EvalBool(neg, b)
	if len(idx) != 2 || idx[1] != 1 {
		t.Fatalf("NOT: %v", idx)
	}
	in := &In{E: &Col{Name: "s"}, Vals: []storage.Value{storage.StringValue("a"), storage.StringValue("d")}}
	idx, _ = EvalBool(in, b)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 3 {
		t.Fatalf("IN: %v", idx)
	}
	// Flipped const-op-col comparisons evaluate correctly too.
	flip := &Cmp{Op: LT, L: Int(1), R: &Col{Name: "a"}}
	idx, _ = EvalBool(flip, b)
	if len(idx) != 2 || idx[0] != 2 {
		t.Fatalf("flipped cmp: %v", idx)
	}
	if _, err := EvalBool(&Col{Name: "a"}, b); err == nil {
		t.Fatal("want error for non-bool filter")
	}
}

func TestMixedNumericCompare(t *testing.T) {
	b := testBatch()
	e := &Cmp{Op: GT, L: &Col{Name: "b"}, R: Int(4)}
	idx, err := EvalBool(e, b)
	if err != nil || len(idx) != 2 || idx[0] != 2 {
		t.Fatalf("mixed compare: %v %v", idx, err)
	}
}

func col(n string) Expr             { return &Col{Name: n} }
func eq(n string, v int64) Expr     { return &Cmp{Op: EQ, L: col(n), R: Int(v)} }
func lt(n string, v int64) Expr     { return &Cmp{Op: LT, L: col(n), R: Int(v)} }
func le(n string, v int64) Expr     { return &Cmp{Op: LE, L: col(n), R: Int(v)} }
func gt(n string, v int64) Expr     { return &Cmp{Op: GT, L: col(n), R: Int(v)} }
func ge(n string, v int64) Expr     { return &Cmp{Op: GE, L: col(n), R: Int(v)} }
func ne(n string, v int64) Expr     { return &Cmp{Op: NE, L: col(n), R: Int(v)} }
func and(a, b Expr) Expr            { return &Logic{Op: And, L: a, R: b} }
func strEq(n string, v string) Expr { return &Cmp{Op: EQ, L: col(n), R: Str(v)} }
func inList(n string, vs ...string) Expr {
	vals := make([]storage.Value, len(vs))
	for i, v := range vs {
		vals[i] = storage.StringValue(v)
	}
	return &In{E: col(n), Vals: vals}
}

func TestConjuncts(t *testing.T) {
	e := and(and(eq("x", 1), lt("y", 5)), gt("z", 0))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	if Conjuncts(nil) != nil {
		t.Fatal("nil conjuncts")
	}
	if AndAll(nil) != nil {
		t.Fatal("AndAll(nil)")
	}
	back := AndAll(cs)
	if CanonicalPredicate(back) != CanonicalPredicate(e) {
		t.Fatal("AndAll round trip")
	}
}

func TestImpliesBasics(t *testing.T) {
	cases := []struct {
		name string
		a, b Expr
		want bool
	}{
		{"anything implies nil", eq("x", 1), nil, true},
		{"nil implies nothing", nil, eq("x", 1), false},
		{"self", eq("x", 1), eq("x", 1), true},
		{"conjunct subset", and(eq("x", 1), lt("y", 5)), eq("x", 1), true},
		{"superset fails", eq("x", 1), and(eq("x", 1), lt("y", 5)), false},
		{"tighter range implies looser", lt("x", 5), lt("x", 10), true},
		{"looser range fails", lt("x", 10), lt("x", 5), false},
		{"le vs lt boundary", le("x", 5), lt("x", 5), false},
		{"lt implies le", lt("x", 5), le("x", 5), true},
		{"ge vs gt", gt("x", 5), ge("x", 5), true},
		{"eq implies range", eq("x", 5), lt("x", 10), true},
		{"eq implies ge", eq("x", 5), ge("x", 5), true},
		{"eq fails outside range", eq("x", 50), lt("x", 10), false},
		{"range sandwich implies eq never", and(ge("x", 5), le("x", 5)), eq("x", 5), true},
		{"eq implies ne other", eq("x", 5), ne("x", 7), true},
		{"eq fails ne same", eq("x", 5), ne("x", 5), false},
		{"range implies ne outside", lt("x", 5), ne("x", 9), true},
		{"string eq self", strEq("s", "a"), strEq("s", "a"), true},
		{"string eq other fails", strEq("s", "a"), strEq("s", "b"), false},
		{"string eq implies in", strEq("s", "a"), inList("s", "a", "b"), true},
		{"in subset implies in", inList("s", "a"), inList("s", "a", "b"), true},
		{"in superset fails", inList("s", "a", "c"), inList("s", "a", "b"), false},
		{"different columns fail", eq("x", 1), eq("y", 1), false},
	}
	for _, tc := range cases {
		if got := Implies(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: Implies=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestEqualityColumns(t *testing.T) {
	e := and(and(eq("x", 1), lt("y", 5)), inList("s", "a"))
	got := EqualityColumns(e)
	if len(got) != 2 || got[0] != "s" || got[1] != "x" {
		t.Fatalf("EqualityColumns = %v", got)
	}
}

func TestDedupCols(t *testing.T) {
	got := DedupCols([]string{"b", "a", "b", "a"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("DedupCols = %v", got)
	}
}

func TestSelectivity(t *testing.T) {
	b := storage.NewBuilder("t", storage.Schema{
		{Name: "t.k", Typ: storage.Int64},
		{Name: "t.v", Typ: storage.Float64},
	})
	for i := 0; i < 1000; i++ {
		b.Int(0, int64(i%10))
		b.Float(1, float64(i))
	}
	tbl := b.Build(1)
	if s := Selectivity(eq("t.k", 3), tbl); s < 0.09 || s > 0.11 {
		t.Fatalf("eq selectivity = %v", s)
	}
	if s := Selectivity(lt("t.v", 100), tbl); s < 0.05 || s > 0.15 {
		t.Fatalf("range selectivity = %v", s)
	}
	if s := Selectivity(nil, tbl); s != 1 {
		t.Fatalf("nil selectivity = %v", s)
	}
}

func TestCanonicalPredicateOrderIndependent(t *testing.T) {
	a := and(eq("x", 1), lt("y", 5))
	b := and(lt("y", 5), eq("x", 1))
	if CanonicalPredicate(a) != CanonicalPredicate(b) {
		t.Fatal("canonical predicate must ignore conjunct order")
	}
}

// Property: for random integer thresholds, a < min(x,y) implies a < max(x,y),
// and implication is consistent with direct evaluation on sample points.
func TestImpliesConsistentWithEvalQuick(t *testing.T) {
	f := func(x, y int8, probe int8) bool {
		lo, hi := int64(x), int64(y)
		if lo > hi {
			lo, hi = hi, lo
		}
		tight, loose := lt("c", lo), lt("c", hi)
		if !Implies(tight, loose) {
			return false
		}
		// If Implies claims tight⇒loose, any value passing tight passes loose.
		v := int64(probe)
		passesTight := v < lo
		passesLoose := v < hi
		return !passesTight || passesLoose
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExprStringsAreCanonical(t *testing.T) {
	if eq("x", 1).String() != "x = 1" {
		t.Fatalf("render: %q", eq("x", 1).String())
	}
	in1 := inList("s", "b", "a").String()
	in2 := inList("s", "a", "b").String()
	if in1 != in2 {
		t.Fatalf("IN rendering must sort values: %q vs %q", in1, in2)
	}
}
